package autoscale

import (
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/tracez"
)

// TestDecideZeroAlloc is the allocs-per-op regression guard for the decide
// fast path: observe -> dense state index -> lock-free RCU Q-row argmax.
// The path must not allocate — make verify runs this test, so any future
// allocation on the hot path fails the build rather than silently eroding
// throughput.
func TestDecideZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates on otherwise alloc-free paths")
	}
	e, m, c := trainedBenchEngine(t)
	e.Agent().Freeze()
	// One warm call materializes any row the training loop missed.
	if _, err := e.Predict(m, c); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		if _, err := e.Predict(m, c); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Predict fast path allocates %.2f allocs/op, want 0", avg)
	}
}

// TestTracedDecideAllocBudget guards the sampled decide path: capturing
// decision provenance into a caller-owned, reused DecisionProv must add at
// most 2 allocs/op over the plain filtered step. The prov slot's Q and Mask
// slices are refilled in place, so in practice the delta is zero once warm.
func TestTracedDecideAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates on otherwise alloc-free paths")
	}
	e, m, c := trainedBenchEngine(t)
	e.Agent().Freeze()
	var prov core.DecisionProv
	// Warm both paths so every row and scratch buffer is materialized.
	if _, err := e.RunInferenceFiltered(nil, m, c, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunInferenceProv(nil, m, c, nil, &prov); err != nil {
		t.Fatal(err)
	}
	plain := testing.AllocsPerRun(500, func() {
		if _, err := e.RunInferenceFiltered(nil, m, c, nil); err != nil {
			t.Fatal(err)
		}
	})
	traced := testing.AllocsPerRun(500, func() {
		if _, err := e.RunInferenceProv(nil, m, c, nil, &prov); err != nil {
			t.Fatal(err)
		}
	})
	if traced-plain > 2 {
		t.Fatalf("provenance capture adds %.2f allocs/op over plain decide (%.2f vs %.2f), budget 2",
			traced-plain, traced, plain)
	}
}

// TestTraceLifecycleAllocBudget bounds the tracer's own per-request cost: a
// full sampled lifecycle — Start, spans, provenance fill, Finish into the
// kept ring — must stay within 2 allocs/op once the trace pool and span
// slices are warm. The one unavoidable allocation is the Active handle.
func TestTraceLifecycleAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates on otherwise alloc-free paths")
	}
	tr := tracez.New(tracez.Config{SampleRate: 1, Ring: 8})
	lifecycle := func() {
		a := tr.Start("MobileNet v3", "batch", 0)
		a.SetShard("s0")
		a.Span("queue", 0.001, "local")
		a.Span("decide", 0.0001, "local")
		pr := a.Prov()
		pr.StateIdx = 7
		pr.Q = append(pr.Q[:0], 1.5, 2.5, 0.5)
		pr.Mask = append(pr.Mask[:0], true, true, false)
		a.Span("execute", 0.01, "local")
		a.Finish("served")
	}
	// Warm: fill the ring and pool so steady state recycles Trace structs.
	for i := 0; i < 64; i++ {
		lifecycle()
	}
	avg := testing.AllocsPerRun(1000, lifecycle)
	if avg > 2 {
		t.Fatalf("sampled trace lifecycle allocates %.2f allocs/op, budget 2", avg)
	}
}
