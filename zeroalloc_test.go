package autoscale

import "testing"

// TestDecideZeroAlloc is the allocs-per-op regression guard for the decide
// fast path: observe -> dense state index -> lock-free RCU Q-row argmax.
// The path must not allocate — make verify runs this test, so any future
// allocation on the hot path fails the build rather than silently eroding
// throughput.
func TestDecideZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates on otherwise alloc-free paths")
	}
	e, m, c := trainedBenchEngine(t)
	e.Agent().Freeze()
	// One warm call materializes any row the training loop missed.
	if _, err := e.Predict(m, c); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		if _, err := e.Predict(m, c); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Predict fast path allocates %.2f allocs/op, want 0", avg)
	}
}
