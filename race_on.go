//go:build race

package autoscale

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
