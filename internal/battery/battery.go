// Package battery models the energy reservoir the paper's whole optimization
// exists to protect: mobile devices "are energy constrained [60], so it is
// necessary to optimize energy efficiency of the DNN inference". It provides
// a simple coulomb-counting battery with a nominal voltage, drain/charge
// accounting and projected lifetime — used by the day-in-the-life example
// and the session simulator to translate per-inference joules into hours of
// battery life.
package battery

import (
	"errors"
	"fmt"
)

// Battery is a coulomb-counting energy reservoir. The zero value is unusable;
// construct with New.
type Battery struct {
	capacityJ float64
	remaining float64
	drained   float64
}

// New creates a battery from its datasheet rating: capacity in mAh and
// nominal voltage in volts (a phone's 3000 mAh at 3.85 V stores ~41.6 kJ).
func New(capacityMAh, nominalV float64) (*Battery, error) {
	if capacityMAh <= 0 || nominalV <= 0 {
		return nil, errors.New("battery: capacity and voltage must be positive")
	}
	capJ := capacityMAh / 1000 * 3600 * nominalV
	return &Battery{capacityJ: capJ, remaining: capJ}, nil
}

// CapacityJ returns the full capacity in joules.
func (b *Battery) CapacityJ() float64 { return b.capacityJ }

// RemainingJ returns the remaining charge in joules.
func (b *Battery) RemainingJ() float64 { return b.remaining }

// DrainedJ returns the total energy drawn since construction (or the last
// Recharge).
func (b *Battery) DrainedJ() float64 { return b.drained }

// SoC returns the state of charge in [0,1].
func (b *Battery) SoC() float64 {
	if b.capacityJ == 0 {
		return 0
	}
	return b.remaining / b.capacityJ
}

// Empty reports whether the battery is exhausted.
func (b *Battery) Empty() bool { return b.remaining <= 0 }

// Drain removes energy (joules). It returns an error for negative amounts;
// draining past empty clamps at zero and reports ErrEmpty.
func (b *Battery) Drain(joules float64) error {
	if joules < 0 {
		return errors.New("battery: negative drain")
	}
	b.drained += joules
	b.remaining -= joules
	if b.remaining <= 0 {
		b.remaining = 0
		return ErrEmpty
	}
	return nil
}

// ErrEmpty is reported by Drain when the battery hits zero.
var ErrEmpty = errors.New("battery: empty")

// Recharge restores the battery to full and resets the drain counter.
func (b *Battery) Recharge() {
	b.remaining = b.capacityJ
	b.drained = 0
}

// HoursAt projects the remaining lifetime in hours at a constant average
// power draw (watts). Non-positive power yields +Inf semantics via a large
// sentinel; callers should treat it as "not draining".
func (b *Battery) HoursAt(watts float64) float64 {
	if watts <= 0 {
		return 1e9
	}
	return b.remaining / watts / 3600
}

// String renders the state of charge.
func (b *Battery) String() string {
	return fmt.Sprintf("battery %.0f%% (%.1f of %.1f kJ)", b.SoC()*100, b.remaining/1e3, b.capacityJ/1e3)
}
