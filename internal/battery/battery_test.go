package battery

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	b, err := New(3000, 3.85)
	if err != nil {
		t.Fatal(err)
	}
	// 3 Ah x 3600 s x 3.85 V = 41.58 kJ.
	if math.Abs(b.CapacityJ()-41580) > 1 {
		t.Errorf("capacity = %v J, want ~41580", b.CapacityJ())
	}
	if b.SoC() != 1 || b.Empty() {
		t.Error("fresh battery must be full")
	}
	if _, err := New(0, 3.85); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(3000, -1); err == nil {
		t.Error("negative voltage should fail")
	}
}

func TestDrainAccounting(t *testing.T) {
	b, _ := New(1000, 3.6) // 12.96 kJ
	if err := b.Drain(1000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.DrainedJ()-1000) > 1e-9 {
		t.Errorf("drained = %v", b.DrainedJ())
	}
	if math.Abs(b.RemainingJ()-(b.CapacityJ()-1000)) > 1e-9 {
		t.Error("remaining inconsistent")
	}
	if err := b.Drain(-1); err == nil {
		t.Error("negative drain should fail")
	}
}

func TestDrainToEmpty(t *testing.T) {
	b, _ := New(100, 3.6) // 1296 J
	if err := b.Drain(b.CapacityJ() + 50); err != ErrEmpty {
		t.Errorf("overdrain error = %v, want ErrEmpty", err)
	}
	if !b.Empty() || b.RemainingJ() != 0 {
		t.Error("battery must clamp at empty")
	}
	b.Recharge()
	if b.Empty() || b.SoC() != 1 || b.DrainedJ() != 0 {
		t.Error("recharge must restore full state")
	}
}

func TestHoursAt(t *testing.T) {
	b, _ := New(3000, 3.85)
	h := b.HoursAt(2)
	// 41.58 kJ at 2 W = 5.775 hours.
	if math.Abs(h-5.775) > 0.01 {
		t.Errorf("HoursAt(2) = %v, want ~5.775", h)
	}
	if b.HoursAt(0) < 1e8 {
		t.Error("zero draw must project effectively forever")
	}
}

func TestString(t *testing.T) {
	b, _ := New(3000, 3.85)
	if !strings.Contains(b.String(), "100%") {
		t.Errorf("String = %q", b.String())
	}
}

func TestInvariantProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b, err := New(2000, 3.7)
		if err != nil {
			return false
		}
		for _, r := range raw {
			_ = b.Drain(float64(r))
			if b.RemainingJ() < 0 || b.RemainingJ() > b.CapacityJ() {
				return false
			}
			if b.SoC() < 0 || b.SoC() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
