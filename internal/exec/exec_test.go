package exec

import (
	"math"
	"sync"
	"testing"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := deriveSeed(1, "noise", 7)
	b := deriveSeed(1, "noise", 7)
	if a != b {
		t.Fatalf("same inputs gave %d and %d", a, b)
	}
	if deriveSeed(1, "noise", 8) == a {
		t.Fatal("different id collided")
	}
	if deriveSeed(1, "outage", 7) == a {
		t.Fatal("different purpose collided")
	}
	if deriveSeed(2, "noise", 7) == a {
		t.Fatal("different base collided")
	}
}

func TestStreamReproducible(t *testing.T) {
	root := NewRoot(42)
	a := root.Child("req", 3).Stream("noise")
	b := NewRoot(42).Child("req", 3).Stream("noise")
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}

func TestStreamsIndependentOfSiblingOrder(t *testing.T) {
	// Draws on one request's stream must not perturb a sibling's stream.
	root := NewRoot(7)
	want := make([]float64, 10)
	s := root.Child("req", 2).Stream("noise")
	for i := range want {
		want[i] = s.NormFloat64()
	}

	root2 := NewRoot(7)
	other := root2.Child("req", 1).Stream("noise")
	for i := 0; i < 1000; i++ { // interleave heavy sibling traffic
		other.NormFloat64()
	}
	s2 := root2.Child("req", 2).Stream("noise")
	for i := range want {
		if got := s2.NormFloat64(); got != want[i] {
			t.Fatalf("draw %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestStreamsConcurrentMatchSerial(t *testing.T) {
	const n = 64
	serial := make([]float64, n)
	root := NewRoot(11)
	for i := 0; i < n; i++ {
		serial[i] = root.Child("req", uint64(i)).Stream("noise").Float64()
	}

	parallel := make([]float64, n)
	root2 := NewRoot(11)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parallel[i] = root2.Child("req", uint64(i)).Stream("noise").Float64()
		}(i)
	}
	wg.Wait()
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("req %d: serial %v parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("NormFloat64 variance %v, want ~1", variance)
	}

	u := NewRand(100)
	var usum float64
	for i := 0; i < n; i++ {
		v := u.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		usum += v
	}
	if m := usum / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", m)
	}
}

func TestLowEntropySeedsDiverge(t *testing.T) {
	// Adjacent seeds must not produce correlated leading draws.
	seen := map[float64]bool{}
	for seed := uint64(0); seed < 100; seed++ {
		v := NewRand(seed).Float64()
		if seen[v] {
			t.Fatalf("seed %d repeated leading draw %v", seed, v)
		}
		seen[v] = true
	}
}

func TestClock(t *testing.T) {
	root := NewRoot(1)
	child := root.Child("req", 1)
	if root.Now() != 0 {
		t.Fatalf("fresh clock at %v", root.Now())
	}
	child.Advance(1.5)
	child.Advance(-3) // ignored
	if got := root.Now(); got != 1.5 {
		t.Fatalf("clock = %v, want 1.5 (shared with child)", got)
	}
}

func TestHooks(t *testing.T) {
	root := NewRoot(5)
	if root.Observing() {
		t.Fatal("fresh root should have no hooks")
	}
	var got []Event
	obs := root.WithHook(func(e Event) { got = append(got, e) })
	child := obs.Child("req", 9)
	child.Emit("sim.noise", 1.25)
	root.Emit("ignored", 0) // original root unaffected by WithHook copy
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1", len(got))
	}
	if got[0].Name != "sim.noise" || got[0].Value != 1.25 {
		t.Fatalf("event = %+v", got[0])
	}
	if got[0].Path != "root/req#9" {
		t.Fatalf("path = %q", got[0].Path)
	}
}

func TestSeedPurposeSeparation(t *testing.T) {
	root := NewRoot(3)
	if root.Seed("a") == root.Seed("b") {
		t.Fatal("distinct purposes produced identical seeds")
	}
	if root.Seed("a") != root.Seed("a") {
		t.Fatal("Seed not deterministic")
	}
}

func BenchmarkStreamDerive(b *testing.B) {
	root := NewRoot(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = root.Child("req", uint64(i)).Stream("noise").Float64()
	}
}
