package exec

import mrand "math/rand"

// Rand is a deterministic RNG stream. It embeds *math/rand.Rand so the
// full distribution surface (Float64, NormFloat64, ExpFloat64, Intn,
// Perm, Shuffle, ...) is available, but is backed by a 32-byte
// xoshiro256++ source instead of math/rand's ~5 KB lagged-Fibonacci
// state, so deriving a stream per request is cheap.
//
// Rand is intentionally a distinct type from *math/rand.Rand: APIs that
// take *exec.Rand advertise that their draws come from a named, derived
// stream rather than an ambient generator.
type Rand struct {
	*mrand.Rand
}

// NewRand returns a stream seeded from a 64-bit value. The seed is
// expanded into the xoshiro state with SplitMix64, as recommended by the
// xoshiro authors, so low-entropy seeds (0, 1, 2, ...) still produce
// well-separated sequences.
func NewRand(seed uint64) *Rand {
	s := &xoshiro{}
	s.state[0] = splitmix64(seed)
	s.state[1] = splitmix64(s.state[0])
	s.state[2] = splitmix64(s.state[1])
	s.state[3] = splitmix64(s.state[2])
	return &Rand{Rand: mrand.New(s)}
}

// xoshiro is the xoshiro256++ generator of Blackman & Vigna
// (https://prng.di.unimi.it/). 256 bits of state, period 2^256-1,
// passes BigCrush; more than adequate for simulation noise.
type xoshiro struct {
	state [4]uint64
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

func (s *xoshiro) Uint64() uint64 {
	result := rotl(s.state[0]+s.state[3], 23) + s.state[0]
	t := s.state[1] << 17
	s.state[2] ^= s.state[0]
	s.state[3] ^= s.state[1]
	s.state[1] ^= s.state[2]
	s.state[0] ^= s.state[3]
	s.state[2] ^= t
	s.state[3] = rotl(s.state[3], 45)
	return result
}

// Int63 implements math/rand.Source.
func (s *xoshiro) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements math/rand.Source. It re-expands the state as NewRand
// does, so Seed(n) on an existing stream matches a fresh NewRand(n).
func (s *xoshiro) Seed(seed int64) {
	s.state[0] = splitmix64(uint64(seed))
	s.state[1] = splitmix64(s.state[0])
	s.state[2] = splitmix64(s.state[1])
	s.state[3] = splitmix64(s.state[2])
}
