// Package exec provides request-scoped execution contexts for the
// simulation substrate: a deterministic splittable RNG, a virtual clock,
// and optional observation hooks.
//
// The central object is Context. A root Context is created from a single
// int64 seed; child contexts and RNG streams are derived from it by *name*
// (a purpose string plus optional numeric identifiers) rather than by call
// order. Because every derivation is a pure hash of (parent seed, purpose,
// ids), a request's stochastic draws are a pure function of the root seed
// and the request's identity — independent of goroutine interleaving, of
// how many other requests ran before it, and of whether the harness runs
// serially or on a worker pool.
//
//	root := exec.NewRoot(42)
//	reqCtx := root.Child("req", uint64(reqID))
//	noise := reqCtx.Stream("sim.noise")   // same values every run
//
// Two streams derived under different purpose names are statistically
// independent; two streams derived under the same (seed, purpose, ids) are
// identical. This is what makes parallel evaluation byte-identical to the
// serial order.
package exec

import (
	"strconv"
	"sync"
)

// splitmix64 is the SplitMix64 finalizer. It is used both to mix derived
// seeds and to expand a single 64-bit seed into the xoshiro state vector.
// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// deriveSeed hashes (base, purpose, ids) into a new 64-bit seed.
// FNV-1a accumulates the name and identifiers; SplitMix64 finalizes so
// that structurally similar names (e.g. "req"/1 vs "req"/2) land far
// apart in seed space.
func deriveSeed(base uint64, purpose string, ids ...uint64) uint64 {
	h := fnvOffset
	h ^= base
	h *= fnvPrime
	for i := 0; i < len(purpose); i++ {
		h ^= uint64(purpose[i])
		h *= fnvPrime
	}
	for _, id := range ids {
		for s := 0; s < 64; s += 8 {
			h ^= (id >> s) & 0xff
			h *= fnvPrime
		}
	}
	return splitmix64(h)
}

// Event is an observation emitted by instrumented components (e.g. the
// simulator's noise draw or an outage). Hooks receive events synchronously
// on the goroutine that emitted them.
type Event struct {
	// Path identifies the emitting context, e.g. "root/req#7".
	Path string
	// Name is the event kind, e.g. "sim.noise" or "sim.outage".
	Name string
	// Value is the event payload (semantics depend on Name).
	Value float64
}

// Hook observes events emitted through a Context. Hooks must be safe for
// concurrent use if the context tree is shared across goroutines.
type Hook func(Event)

// Clock is a virtual clock measured in seconds. It is safe for concurrent
// use; contexts derived from the same root share one clock.
type Clock struct {
	mu  sync.Mutex
	now float64
}

// NewClock returns a clock starting at the given time (seconds).
func NewClock(start float64) *Clock { return &Clock{now: start} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d seconds (negative d is ignored)
// and returns the new time.
func (c *Clock) Advance(d float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}

// Context is a request-scoped execution context: a derivation point for
// deterministic RNG streams, a shared virtual clock, and observation
// hooks. Contexts are immutable; Child/WithHook return new values (Rekey
// is the explicit exception for caller-owned scratch contexts).
// A nil *Context is not usable — components that accept an optional
// context must substitute their own fallback before drawing.
//
// The derivation path ("root/req#7") is materialized lazily from the
// parent chain: it is pure diagnostics (event hooks), and building the
// string eagerly was a measurable allocation on the per-request decide
// path.
type Context struct {
	seed  uint64
	clock *Clock
	hooks []Hook

	parent  *Context // nil at the root
	purpose string   // "root" at the root
	id      uint64
	hasID   bool
}

// NewRoot creates a root context from a seed. The root owns a fresh
// virtual clock starting at zero and has no hooks.
func NewRoot(seed int64) *Context {
	return &Context{
		seed:    splitmix64(uint64(seed)),
		purpose: "root",
		clock:   NewClock(0),
	}
}

// Child derives a context for a named sub-scope. The child shares the
// parent's clock and hooks; its seed is a pure function of the parent
// seed, purpose, and ids.
func (c *Context) Child(purpose string, ids ...uint64) *Context {
	child := &Context{clock: c.clock, hooks: c.hooks}
	c.rekeyInto(child, purpose, ids)
	return child
}

// Rekey repositions dst in place as the named child of c, reusing dst's
// storage — the allocation-free alternative to Child for a caller-owned
// scratch context. dst must not be retained past the scope of the call
// that rekeyed it or shared across goroutines while in use.
func (c *Context) Rekey(dst *Context, purpose string, ids ...uint64) {
	dst.clock = c.clock
	dst.hooks = c.hooks
	c.rekeyInto(dst, purpose, ids)
}

func (c *Context) rekeyInto(dst *Context, purpose string, ids []uint64) {
	dst.seed = deriveSeed(c.seed, purpose, ids...)
	dst.parent = c
	dst.purpose = purpose
	dst.hasID = len(ids) > 0
	dst.id = 0
	if dst.hasID {
		dst.id = ids[0]
	}
}

// Stream derives a deterministic RNG stream by name. Repeated calls with
// the same arguments return independent *Rand values positioned at the
// same point in the same sequence.
func (c *Context) Stream(purpose string, ids ...uint64) *Rand {
	return NewRand(deriveSeed(c.seed, purpose, ids...))
}

// randPool recycles Rand streams for GetStream/PutStream: reseeding a
// xoshiro-backed Rand repositions it exactly at the head of the named
// sequence (see xoshiro.Seed), so a pooled stream is indistinguishable
// from a fresh one.
var randPool = sync.Pool{New: func() any { return NewRand(0) }}

// GetStream returns a pooled *Rand positioned at the head of the named
// stream — identical draws to Stream with the same arguments, without
// allocating. Pass it back to PutStream when the draws are done.
func (c *Context) GetStream(purpose string, ids ...uint64) *Rand {
	r := randPool.Get().(*Rand)
	r.Seed(int64(deriveSeed(c.seed, purpose, ids...)))
	return r
}

// PutStream recycles a stream obtained from GetStream. The caller must not
// use r afterwards.
func PutStream(r *Rand) { randPool.Put(r) }

// Seed derives a raw int64 seed by name, for components that still
// construct their own generators (e.g. snapshot-restored agents).
func (c *Context) Seed(purpose string, ids ...uint64) int64 {
	return int64(deriveSeed(c.seed, purpose, ids...))
}

// WithHook returns a copy of the context with h appended to its hook
// chain. Children derived afterwards inherit the hook.
func (c *Context) WithHook(h Hook) *Context {
	cp := *c
	cp.hooks = append(append([]Hook(nil), c.hooks...), h)
	return &cp
}

// Path returns the derivation path, e.g. "root/eval/req#12", building it
// from the parent chain on demand.
func (c *Context) Path() string {
	if c.parent == nil {
		return c.purpose
	}
	p := c.parent.Path() + "/" + c.purpose
	if c.hasID {
		p += "#" + strconv.FormatUint(c.id, 10)
	}
	return p
}

// Clock returns the shared virtual clock.
func (c *Context) Clock() *Clock { return c.clock }

// Now returns the shared virtual clock's current time in seconds.
func (c *Context) Now() float64 { return c.clock.Now() }

// Advance moves the shared virtual clock forward by d seconds.
func (c *Context) Advance(d float64) float64 { return c.clock.Advance(d) }

// Emit delivers an event to every hook on the context. It is free when no
// hooks are installed.
func (c *Context) Emit(name string, value float64) {
	if len(c.hooks) == 0 {
		return
	}
	ev := Event{Path: c.Path(), Name: name, Value: value}
	for _, h := range c.hooks {
		h(ev)
	}
}

// Observing reports whether any hook is installed, so callers can skip
// building expensive event payloads.
func (c *Context) Observing() bool { return len(c.hooks) > 0 }
