package tracez

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Event is one structured entry in the flight recorder's ring: breaker
// transitions, supervisor ladder edges, planner actuations, checkpoint I/O
// verdicts. Times are virtual seconds.
type Event struct {
	AtS     float64 `json:"at_s"`
	Kind    string  `json:"kind"`
	Subject string  `json:"subject,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// FlightRecorder is the black box: a bounded structured-event ring plus the
// tracer's last-N kept traces, snapshotted to disk as a self-contained
// incident bundle whenever the supervisor fires a remediation. A nil
// *FlightRecorder is a valid disabled recorder — Note and Trigger are
// branch-only no-ops — so event sources can hold one unconditionally.
type FlightRecorder struct {
	tr       *Tracer
	dir      string
	maxEv    int
	maxDumps int

	mu     sync.Mutex
	events []Event
	next   int
	total  uint64
	dumps  int
	lastED error
}

// NewFlightRecorder builds a recorder over a tracer. dir is where incident
// bundles land ("" keeps the recorder in-memory only); maxEvents bounds the
// event ring (default 512) and maxDumps the number of bundles written per
// process (default 8), so a crash-looping fleet cannot fill the disk.
func NewFlightRecorder(tr *Tracer, dir string, maxEvents, maxDumps int) *FlightRecorder {
	if maxEvents <= 0 {
		maxEvents = 512
	}
	if maxDumps <= 0 {
		maxDumps = 8
	}
	return &FlightRecorder{tr: tr, dir: dir, maxEv: maxEvents, maxDumps: maxDumps}
}

// Note appends one event to the ring, evicting the oldest when full.
func (fr *FlightRecorder) Note(atS float64, kind, subject, detail string) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	if len(fr.events) < fr.maxEv {
		fr.events = append(fr.events, Event{AtS: atS, Kind: kind, Subject: subject, Detail: detail})
	} else {
		fr.events[fr.next%fr.maxEv] = Event{AtS: atS, Kind: kind, Subject: subject, Detail: detail}
	}
	fr.next = (fr.next + 1) % fr.maxEv
	fr.total++
	fr.mu.Unlock()
}

// Events returns the ring's events in chronological order.
func (fr *FlightRecorder) Events() []Event {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.eventsLocked()
}

func (fr *FlightRecorder) eventsLocked() []Event {
	if len(fr.events) < fr.maxEv {
		return append([]Event(nil), fr.events...)
	}
	out := make([]Event, 0, len(fr.events))
	for i := 0; i < len(fr.events); i++ {
		out = append(out, fr.events[(fr.next+i)%fr.maxEv])
	}
	return out
}

// Bundle is one incident snapshot: the trigger, the event ring, and the
// tracer's kept traces at the moment of the trigger.
type Bundle struct {
	AtS    float64 `json:"at_s"`
	Reason string  `json:"reason"`
	Stats  Stats   `json:"stats"`
	Events []Event `json:"events,omitempty"`
	Traces []Trace `json:"traces,omitempty"`
}

// BundleJSON renders the incident bundle that Trigger would write, without
// touching the disk.
func (fr *FlightRecorder) BundleJSON(atS float64, reason string) ([]byte, error) {
	if fr == nil {
		return nil, fmt.Errorf("tracez: nil flight recorder")
	}
	b := Bundle{
		AtS:    atS,
		Reason: reason,
		Stats:  fr.tr.Stats(),
		Events: fr.Events(),
		Traces: fr.tr.Kept(),
	}
	return json.MarshalIndent(b, "", "  ")
}

// Trigger snapshots an incident bundle. With a dump directory configured it
// writes incident-NNNN.json (bounded by maxDumps; further triggers only
// count) and returns the path written, "" when no file landed. Trigger
// never blocks the caller on anything slower than one JSON encode and one
// file write.
func (fr *FlightRecorder) Trigger(atS float64, reason string) string {
	if fr == nil {
		return ""
	}
	fr.mu.Lock()
	fr.dumps++
	seq := fr.dumps
	write := fr.dir != "" && seq <= fr.maxDumps
	fr.mu.Unlock()
	if !write {
		return ""
	}
	body, err := fr.BundleJSON(atS, reason)
	if err != nil {
		fr.setErr(err)
		return ""
	}
	path := filepath.Join(fr.dir, fmt.Sprintf("incident-%04d.json", seq))
	if err := os.MkdirAll(fr.dir, 0o755); err != nil {
		fr.setErr(err)
		return ""
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		fr.setErr(err)
		return ""
	}
	return path
}

func (fr *FlightRecorder) setErr(err error) {
	fr.mu.Lock()
	fr.lastED = err
	fr.mu.Unlock()
}

// Dumps reports how many triggers fired and the last dump error, if any.
func (fr *FlightRecorder) Dumps() (int, error) {
	if fr == nil {
		return 0, nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.dumps, fr.lastED
}

// Tracer returns the recorder's tracer (nil on a nil recorder).
func (fr *FlightRecorder) Tracer() *Tracer {
	if fr == nil {
		return nil
	}
	return fr.tr
}
