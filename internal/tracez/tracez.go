// Package tracez is the causal tracing plane: every traced request carries
// a trace ID and accumulates a span tree across router admission → DRR
// dispatch → gateway queue → decide → execute/offload → retries/hedges/
// failover, where the decide span carries decision provenance — the dense
// state index, per-action Q-values from the RCU snapshot, the breaker/lane
// mask applied, and whether the epsilon draw explored.
//
// Sampling is decided at Finish, after the request's fate is known:
// tail-based keep-all for interesting requests (deadline miss, shed,
// failover, hedge, failure, degraded mask), head sampling for the rest.
// The head draw comes from a named exec.Context stream keyed by the trace's
// sequence number, so a fixed-seed run — including the chaos soak and the
// storm/surge acceptance replays — keeps exactly the same traces on every
// replay. The tracer owns its own context root and never touches an
// engine's streams or clock, so enabling tracing cannot perturb a
// deterministic run.
//
// The kept-trace ring recycles evicted traces through a pool, so the traced
// steady state allocates only the per-request handle; the disabled path (a
// nil *Tracer and nil *Active) is branch-only and allocation-free.
package tracez

import (
	"sync"
	"sync/atomic"

	"autoscale/internal/exec"
	"autoscale/internal/obs"
)

// Keep-reason flags: any set bit makes a trace tail-kept regardless of the
// head-sampling draw.
const (
	// FlagExpired marks a deadline miss (dead on arrival or during service).
	FlagExpired uint8 = 1 << iota
	// FlagShed marks a load-shed rejection (queue full, admission gate).
	FlagShed
	// FlagFailed marks a failed response (outage, shard down, no viable action).
	FlagFailed
	// FlagFailover marks a local failover re-execution or a cross-shard
	// failover re-dispatch.
	FlagFailover
	// FlagHedged marks a hedged request (local hedge raced a slow remote).
	FlagHedged
	// FlagDegraded marks a breaker-degraded decision (the action mask was
	// narrowed by open breakers).
	FlagDegraded
)

// flagNames maps bit order to a stable name, for exports.
var flagNames = []string{"expired", "shed", "failed", "failover", "hedged", "degraded"}

// FlagNames renders a flag set as names in bit order.
func FlagNames(flags uint8) []string {
	var out []string
	for i, name := range flagNames {
		if flags&(1<<uint(i)) != 0 {
			out = append(out, name)
		}
	}
	return out
}

// Span is one leg of a traced request's lifecycle. Durations are seconds;
// legs measured on the virtual clock (execute, retry, hedge, failover) use
// virtual seconds and replay byte-identically, wall legs (admit, dispatch,
// queue, decide) use wall seconds.
type Span struct {
	Name   string  `json:"name"`
	DurS   float64 `json:"dur_s"`
	Detail string  `json:"detail,omitempty"`
}

// Provenance captures why the decide step chose what it chose: the dense
// state index, the epsilon in force, whether the draw explored, the applied
// breaker/lane mask, and the per-action Q-row from the RCU snapshot.
type Provenance struct {
	StateIdx  int32     `json:"state_idx"`
	State     string    `json:"state,omitempty"`
	Epsilon   float64   `json:"epsilon"`
	Frozen    bool      `json:"frozen,omitempty"`
	Explored  bool      `json:"explored"`
	Action    string    `json:"action,omitempty"`
	ActionIdx int       `json:"action_idx"`
	Q         []float64 `json:"q,omitempty"`
	Mask      []bool    `json:"mask,omitempty"`
	MaskedOut int       `json:"masked_out,omitempty"`
}

// Trace is one completed request's span tree plus its decision provenance.
// Kept traces live in the tracer's ring until evicted.
type Trace struct {
	ID      uint64     `json:"id"`
	Model   string     `json:"model"`
	Tenant  string     `json:"tenant,omitempty"`
	Shard   string     `json:"shard,omitempty"`
	Status  string     `json:"status,omitempty"`
	StartS  float64    `json:"start_s"`
	Flags   uint8      `json:"flags,omitempty"`
	Sampled bool       `json:"head_sampled,omitempty"`
	HasProv bool       `json:"has_prov,omitempty"`
	Prov    Provenance `json:"prov"`
	Spans   []Span     `json:"spans"`
}

// reset clears a trace for reuse, keeping slice capacity.
func (t *Trace) reset() {
	t.ID = 0
	t.Model, t.Tenant, t.Shard, t.Status = "", "", "", ""
	t.StartS = 0
	t.Flags = 0
	t.Sampled = false
	t.HasProv = false
	q, mask := t.Prov.Q[:0], t.Prov.Mask[:0]
	t.Prov = Provenance{Q: q, Mask: mask}
	t.Spans = t.Spans[:0]
}

// Active is the live handle a traced request carries through the pipeline.
// All methods are nil-receiver safe, so untraced call sites pay one branch
// and zero allocations. An Active belongs to exactly one request lifecycle:
// ownership moves with the request (channel hand-offs provide the
// happens-before), and Finish must be called exactly once by whoever
// completes the request.
type Active struct {
	tr *Tracer
	t  *Trace
}

// ID returns the trace ID, 0 for an untraced request.
func (a *Active) ID() uint64 {
	if a == nil || a.t == nil {
		return 0
	}
	return a.t.ID
}

// Span appends one completed leg.
func (a *Active) Span(name string, durS float64, detail string) {
	if a == nil || a.t == nil {
		return
	}
	a.t.Spans = append(a.t.Spans, Span{Name: name, DurS: durS, Detail: detail})
}

// Flag marks a keep reason; any flag makes the trace tail-kept.
func (a *Active) Flag(f uint8) {
	if a == nil || a.t == nil {
		return
	}
	a.t.Flags |= f
}

// SetShard records the shard that served the request.
func (a *Active) SetShard(shard string) {
	if a == nil || a.t == nil {
		return
	}
	a.t.Shard = shard
}

// Prov returns the trace's provenance slot for in-place fill, nil for an
// untraced request. The slot's Q and Mask slices are reused across
// requests — truncate before appending. Calling Prov marks the trace as
// carrying provenance.
func (a *Active) Prov() *Provenance {
	if a == nil || a.t == nil {
		return nil
	}
	a.t.HasProv = true
	return &a.t.Prov
}

// Finish completes the trace with a final status and hands it to the
// tracer's keep/drop decision. Repeated calls are no-ops.
func (a *Active) Finish(status string) {
	if a == nil || a.t == nil {
		return
	}
	t := a.t
	a.t = nil
	t.Status = status
	a.tr.finish(t)
}

// Config tunes a Tracer. Zero values select the defaults.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1] for requests
	// with no keep flag. 0 keeps only flagged (interesting) traces.
	SampleRate float64
	// Ring is the kept-trace ring capacity (default 256).
	Ring int
	// Seed seeds the tracer's own exec.Context root for the sampling
	// stream (default 1). The tracer never draws from an engine's streams.
	Seed int64
}

func (c Config) ring() int {
	if c.Ring <= 0 {
		return 256
	}
	return c.Ring
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Tracer assigns trace IDs, decides keep/drop at Finish, and retains the
// last kept traces in a fixed ring. A nil *Tracer is a valid disabled
// tracer: Start returns nil and every downstream call is a cheap branch.
type Tracer struct {
	rate float64
	ctx  *exec.Context
	seq  atomic.Uint64

	started atomic.Uint64
	sampled atomic.Uint64
	kept    atomic.Uint64
	dropped atomic.Uint64

	// mu guards the ring and its traces. The lock is touched only on the
	// keep path and by admin readers — never on the drop path.
	mu   sync.Mutex
	ring []*Trace
	next uint64

	tracePool sync.Pool
}

// New builds a tracer. The sampling stream derives from the tracer's own
// context root, independent of every engine seed.
func New(cfg Config) *Tracer {
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Tracer{
		rate: rate,
		ctx:  exec.NewRoot(cfg.seed()).Child("tracez"),
		ring: make([]*Trace, cfg.ring()),
		tracePool: sync.Pool{New: func() any {
			return &Trace{}
		}},
	}
}

// Start opens a trace for one request. Returns nil on a nil tracer, so the
// handle can be threaded unconditionally.
func (tr *Tracer) Start(model, tenant string, arrivalS float64) *Active {
	if tr == nil {
		return nil
	}
	tr.started.Add(1)
	t := tr.tracePool.Get().(*Trace)
	t.reset()
	t.ID = tr.seq.Add(1)
	t.Model, t.Tenant, t.StartS = model, tenant, arrivalS
	return &Active{tr: tr, t: t}
}

// finish applies the sampling decision: tail-keep any flagged trace, head
// sample the rest on the named stream keyed by trace ID — a pure function
// of (tracer seed, ID), so replays keep identical trace sets.
func (tr *Tracer) finish(t *Trace) {
	keep := t.Flags != 0
	if !keep && tr.rate > 0 {
		r := tr.ctx.GetStream("sample", t.ID)
		if r.Float64() < tr.rate {
			keep = true
			t.Sampled = true
			tr.sampled.Add(1)
		}
		exec.PutStream(r)
	}
	if !keep {
		tr.dropped.Add(1)
		tr.tracePool.Put(t)
		return
	}
	tr.kept.Add(1)
	tr.mu.Lock()
	slot := tr.next % uint64(len(tr.ring))
	old := tr.ring[slot]
	tr.ring[slot] = t
	tr.next++
	tr.mu.Unlock()
	if old != nil {
		// Safe to recycle: readers only touch ring traces under mu, and
		// old left the ring before the unlock.
		tr.tracePool.Put(old)
	}
}

// Stats is the tracer's counter snapshot.
type Stats struct {
	Started uint64 `json:"started"`
	Sampled uint64 `json:"sampled"`
	Kept    uint64 `json:"kept"`
	Dropped uint64 `json:"dropped"`
	RingLen int    `json:"ring_len"`
	RingCap int    `json:"ring_cap"`
}

// Stats snapshots the counters; zero values on a nil tracer.
func (tr *Tracer) Stats() Stats {
	if tr == nil {
		return Stats{}
	}
	st := Stats{
		Started: tr.started.Load(),
		Sampled: tr.sampled.Load(),
		Kept:    tr.kept.Load(),
		Dropped: tr.dropped.Load(),
		RingCap: len(tr.ring),
	}
	tr.mu.Lock()
	if tr.next < uint64(len(tr.ring)) {
		st.RingLen = int(tr.next)
	} else {
		st.RingLen = len(tr.ring)
	}
	tr.mu.Unlock()
	return st
}

// AppendProm emits the autoscale_trace_* series. Nil-safe: a disabled
// tracer emits nothing, so scrape bodies are unchanged when tracing is off.
func (tr *Tracer) AppendProm(p *obs.Prom) {
	if tr == nil {
		return
	}
	st := tr.Stats()
	p.Counter("autoscale_trace_started_total", "Requests that carried a trace handle.", float64(st.Started))
	p.Counter("autoscale_trace_sampled_total", "Traces kept by the head-sampling draw.", float64(st.Sampled))
	p.Counter("autoscale_trace_kept_total", "Traces kept (head-sampled plus tail-flagged).", float64(st.Kept))
	p.Counter("autoscale_trace_dropped_total", "Completed traces dropped by sampling.", float64(st.Dropped))
	p.Gauge("autoscale_trace_ring_occupancy", "Kept traces currently in the ring.", float64(st.RingLen))
	p.Gauge("autoscale_trace_ring_capacity", "Kept-trace ring capacity.", float64(st.RingCap))
}

// snapshot deep-copies kept traces, newest last. id 0 selects all; a
// non-zero id selects that trace only. Copies detach from the ring's pooled
// storage so callers can serialize without holding mu.
func (tr *Tracer) snapshot(id uint64) []Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := uint64(len(tr.ring))
	count := tr.next
	if count > n {
		count = n
	}
	out := make([]Trace, 0, count)
	for i := uint64(0); i < count; i++ {
		// Oldest-first: the slot after next (mod n) is the oldest survivor.
		t := tr.ring[(tr.next-count+i)%n]
		if t == nil || (id != 0 && t.ID != id) {
			continue
		}
		cp := *t
		cp.Spans = append([]Span(nil), t.Spans...)
		cp.Prov.Q = append([]float64(nil), t.Prov.Q...)
		cp.Prov.Mask = append([]bool(nil), t.Prov.Mask...)
		out = append(out, cp)
	}
	return out
}

// Kept returns deep copies of every kept trace, oldest first.
func (tr *Tracer) Kept() []Trace { return tr.snapshot(0) }

// Lookup returns a deep copy of one kept trace by ID.
func (tr *Tracer) Lookup(id uint64) (Trace, bool) {
	ts := tr.snapshot(id)
	if len(ts) == 0 {
		return Trace{}, false
	}
	return ts[0], true
}
