package tracez

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// IndexEntry is one row of the /traces index.
type IndexEntry struct {
	ID      uint64   `json:"id"`
	Model   string   `json:"model"`
	Tenant  string   `json:"tenant,omitempty"`
	Shard   string   `json:"shard,omitempty"`
	Status  string   `json:"status,omitempty"`
	StartS  float64  `json:"start_s"`
	Spans   int      `json:"spans"`
	Flags   []string `json:"flags,omitempty"`
	Sampled bool     `json:"head_sampled,omitempty"`
	HasProv bool     `json:"has_prov,omitempty"`
}

// Index is the /traces document: sampling counters plus one row per kept
// trace, oldest first.
type Index struct {
	Stats  Stats        `json:"stats"`
	Traces []IndexEntry `json:"traces"`
}

// IndexJSON renders the /traces index document.
func (tr *Tracer) IndexJSON() ([]byte, error) {
	idx := Index{Stats: tr.Stats()}
	for _, t := range tr.Kept() {
		idx.Traces = append(idx.Traces, IndexEntry{
			ID:      t.ID,
			Model:   t.Model,
			Tenant:  t.Tenant,
			Shard:   t.Shard,
			Status:  t.Status,
			StartS:  t.StartS,
			Spans:   len(t.Spans),
			Flags:   FlagNames(t.Flags),
			Sampled: t.Sampled,
			HasProv: t.HasProv,
		})
	}
	return json.MarshalIndent(idx, "", "  ")
}

// TraceJSON renders one kept trace as raw JSON.
func (tr *Tracer) TraceJSON(id uint64) ([]byte, error) {
	t, ok := tr.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("tracez: no kept trace %d", id)
	}
	return json.MarshalIndent(t, "", "  ")
}

// chromeEvent is one Chrome trace-event (the chrome://tracing and Perfetto
// import format). Times are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeJSON exports kept traces as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. id 0 exports every kept trace; a non-zero
// id exports that trace only. Each trace renders as one thread (tid =
// trace ID) whose spans are laid out cumulatively from the request's
// virtual arrival time — an honest picture of a sequential request
// lifecycle. The decide span carries the decision provenance in its args.
func (tr *Tracer) ChromeJSON(id uint64) ([]byte, error) {
	traces := tr.snapshot(id)
	if id != 0 && len(traces) == 0 {
		return nil, fmt.Errorf("tracez: no kept trace %d", id)
	}
	events := make([]chromeEvent, 0, 2*len(traces))
	for _, t := range traces {
		label := fmt.Sprintf("trace %d %s status=%s", t.ID, t.Model, t.Status)
		if names := FlagNames(t.Flags); len(names) > 0 {
			label += fmt.Sprintf(" flags=%v", names)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t.ID,
			Args: map[string]any{"name": label},
		})
		ts := t.StartS * 1e6
		for _, s := range t.Spans {
			ev := chromeEvent{Name: s.Name, Ph: "X", Ts: ts, Dur: s.DurS * 1e6, Pid: 1, Tid: t.ID}
			if s.Detail != "" {
				ev.Args = map[string]any{"detail": s.Detail}
			}
			if s.Name == "decide" && t.HasProv {
				if ev.Args == nil {
					ev.Args = map[string]any{}
				}
				ev.Args["state_idx"] = t.Prov.StateIdx
				ev.Args["state"] = t.Prov.State
				ev.Args["epsilon"] = t.Prov.Epsilon
				ev.Args["explored"] = t.Prov.Explored
				ev.Args["frozen"] = t.Prov.Frozen
				ev.Args["action"] = t.Prov.Action
				ev.Args["action_idx"] = t.Prov.ActionIdx
				ev.Args["q"] = t.Prov.Q
				ev.Args["mask"] = t.Prov.Mask
				ev.Args["masked_out"] = t.Prov.MaskedOut
			}
			events = append(events, ev)
			ts += ev.Dur
		}
	}
	return json.Marshal(map[string]any{"traceEvents": events})
}

// Binary dump format: a compact varint encoding for incident archival.
//
//	magic "ATRZ" | version byte | uvarint trace count | traces...
//
// Strings are uvarint length + bytes, floats are IEEE 754 bits in 8-byte
// little-endian, bools are single bytes.
const (
	binMagic   = "ATRZ"
	binVersion = 1
)

// Binary encodes kept traces in the compact binary dump format. id 0
// encodes every kept trace.
func (tr *Tracer) Binary(id uint64) ([]byte, error) {
	traces := tr.snapshot(id)
	if id != 0 && len(traces) == 0 {
		return nil, fmt.Errorf("tracez: no kept trace %d", id)
	}
	return EncodeBinary(traces), nil
}

type binWriter struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *binWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *binWriter) f64(v float64) {
	binary.LittleEndian.PutUint64(w.tmp[:8], math.Float64bits(v))
	w.buf.Write(w.tmp[:8])
}

func (w *binWriter) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf.WriteByte(b)
}

// EncodeBinary renders traces in the compact binary dump format.
func EncodeBinary(traces []Trace) []byte {
	var w binWriter
	w.buf.WriteString(binMagic)
	w.buf.WriteByte(binVersion)
	w.uvarint(uint64(len(traces)))
	for _, t := range traces {
		w.uvarint(t.ID)
		w.str(t.Model)
		w.str(t.Tenant)
		w.str(t.Shard)
		w.str(t.Status)
		w.f64(t.StartS)
		w.buf.WriteByte(t.Flags)
		w.bool(t.Sampled)
		w.uvarint(uint64(len(t.Spans)))
		for _, s := range t.Spans {
			w.str(s.Name)
			w.f64(s.DurS)
			w.str(s.Detail)
		}
		w.bool(t.HasProv)
		if t.HasProv {
			w.uvarint(uint64(uint32(t.Prov.StateIdx)))
			w.str(t.Prov.State)
			w.f64(t.Prov.Epsilon)
			w.bool(t.Prov.Frozen)
			w.bool(t.Prov.Explored)
			w.str(t.Prov.Action)
			w.uvarint(uint64(t.Prov.ActionIdx))
			w.uvarint(uint64(t.Prov.MaskedOut))
			w.uvarint(uint64(len(t.Prov.Q)))
			for _, q := range t.Prov.Q {
				w.f64(q)
			}
			w.uvarint(uint64(len(t.Prov.Mask)))
			for _, m := range t.Prov.Mask {
				w.bool(m)
			}
		}
	}
	return w.buf.Bytes()
}

type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = errors.New("tracez: truncated binary dump")
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil || r.off+int(n) > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *binReader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *binReader) bool() bool { return r.byte() != 0 }

// DecodeBinary parses a compact binary dump back into traces.
func DecodeBinary(b []byte) ([]Trace, error) {
	if len(b) < len(binMagic)+1 || string(b[:len(binMagic)]) != binMagic {
		return nil, errors.New("tracez: not a binary trace dump")
	}
	if b[len(binMagic)] != binVersion {
		return nil, fmt.Errorf("tracez: unsupported binary dump version %d", b[len(binMagic)])
	}
	r := &binReader{b: b, off: len(binMagic) + 1}
	count := r.uvarint()
	if count > uint64(len(b)) {
		return nil, errors.New("tracez: implausible trace count")
	}
	traces := make([]Trace, 0, count)
	for i := uint64(0); i < count && r.err == nil; i++ {
		var t Trace
		t.ID = r.uvarint()
		t.Model = r.str()
		t.Tenant = r.str()
		t.Shard = r.str()
		t.Status = r.str()
		t.StartS = r.f64()
		t.Flags = r.byte()
		t.Sampled = r.bool()
		nspans := r.uvarint()
		if nspans > uint64(len(b)) {
			return nil, errors.New("tracez: implausible span count")
		}
		for j := uint64(0); j < nspans && r.err == nil; j++ {
			var s Span
			s.Name = r.str()
			s.DurS = r.f64()
			s.Detail = r.str()
			t.Spans = append(t.Spans, s)
		}
		t.HasProv = r.bool()
		if t.HasProv {
			t.Prov.StateIdx = int32(uint32(r.uvarint()))
			t.Prov.State = r.str()
			t.Prov.Epsilon = r.f64()
			t.Prov.Frozen = r.bool()
			t.Prov.Explored = r.bool()
			t.Prov.Action = r.str()
			t.Prov.ActionIdx = int(r.uvarint())
			t.Prov.MaskedOut = int(r.uvarint())
			nq := r.uvarint()
			if nq > uint64(len(b)) {
				return nil, errors.New("tracez: implausible Q length")
			}
			for j := uint64(0); j < nq && r.err == nil; j++ {
				t.Prov.Q = append(t.Prov.Q, r.f64())
			}
			nm := r.uvarint()
			if nm > uint64(len(b)) {
				return nil, errors.New("tracez: implausible mask length")
			}
			for j := uint64(0); j < nm && r.err == nil; j++ {
				t.Prov.Mask = append(t.Prov.Mask, r.bool())
			}
		}
		traces = append(traces, t)
	}
	if r.err != nil {
		return nil, r.err
	}
	return traces, nil
}
