package tracez

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"autoscale/internal/obs"
)

// finishOne drives one request through a full trace lifecycle.
func finishOne(tr *Tracer, model, status string, flags uint8) *Active {
	a := tr.Start(model, "tenant-a", 1.5)
	a.Span("queue", 0.001, "")
	if p := a.Prov(); p != nil {
		p.StateIdx = 7
		p.State = "s7"
		p.Epsilon = 0.1
		p.Explored = true
		p.Action = "edge"
		p.ActionIdx = 2
		p.Q = append(p.Q[:0], 0.5, -0.25, 1.75)
		p.Mask = append(p.Mask[:0], true, false, true)
		p.MaskedOut = 1
	}
	a.Span("decide", 0.0001, "")
	a.Span("execute", 0.02, "edge")
	a.SetShard("shard-0")
	if flags != 0 {
		a.Flag(flags)
	}
	a.Finish(status)
	return a
}

// TestNilSafety drives every Active and Tracer method through nil
// receivers: the disabled path must be branch-only.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	a := tr.Start("m", "t", 0)
	if a != nil {
		t.Fatalf("nil tracer Start = %v, want nil", a)
	}
	a.Span("queue", 1, "")
	a.Flag(FlagShed)
	a.SetShard("s")
	if p := a.Prov(); p != nil {
		t.Fatalf("nil Active Prov = %v, want nil", p)
	}
	if id := a.ID(); id != 0 {
		t.Fatalf("nil Active ID = %d, want 0", id)
	}
	a.Finish("ok")
	a.Finish("ok") // double finish must be a no-op too
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v, want zero", st)
	}
	if got := tr.Kept(); got != nil {
		t.Fatalf("nil tracer Kept = %v, want nil", got)
	}

	var fr *FlightRecorder
	fr.Note(1, "k", "s", "d")
	if p := fr.Trigger(1, "r"); p != "" {
		t.Fatalf("nil recorder Trigger = %q, want empty", p)
	}
	if ev := fr.Events(); ev != nil {
		t.Fatalf("nil recorder Events = %v, want nil", ev)
	}
}

// TestTailKeepAndHeadSampling: flagged traces always survive; unflagged
// traces survive per the head draw, and the draw is a pure function of
// (seed, trace ID) — two tracers with the same seed keep identical sets.
func TestTailKeepAndHeadSampling(t *testing.T) {
	run := func() (*Tracer, []uint64) {
		tr := New(Config{SampleRate: 0.3, Ring: 64, Seed: 42})
		var keptIDs []uint64
		for i := 0; i < 200; i++ {
			flags := uint8(0)
			if i%17 == 0 {
				flags = FlagExpired
			}
			a := finishOne(tr, "m", "ok", flags)
			_ = a
		}
		for _, kt := range tr.Kept() {
			keptIDs = append(keptIDs, kt.ID)
		}
		return tr, keptIDs
	}
	tr1, ids1 := run()
	_, ids2 := run()
	if !reflect.DeepEqual(ids1, ids2) {
		t.Fatalf("replay kept different traces:\n%v\n%v", ids1, ids2)
	}
	st := tr1.Stats()
	if st.Started != 200 || st.Kept+st.Dropped != 200 {
		t.Fatalf("conservation broken: %+v", st)
	}
	if st.Sampled == 0 || st.Sampled == st.Kept {
		t.Fatalf("want a mix of head-sampled and tail-kept traces, got %+v", st)
	}
	// Every flagged trace still inside the ring window must have been kept
	// (tail-based keep-all), and carry its flag.
	inRing := map[uint64]uint8{}
	for _, kt := range tr1.Kept() {
		inRing[kt.ID] = kt.Flags
	}
	sawFlagged := false
	for id, flags := range inRing {
		if (id-1)%17 == 0 {
			sawFlagged = true
			if flags&FlagExpired == 0 {
				t.Fatalf("flagged trace %d kept without its flag", id)
			}
		}
	}
	if !sawFlagged {
		t.Fatal("no tail-kept trace survived in the ring")
	}
}

// TestZeroRateKeepsOnlyFlagged: SampleRate 0 is tail-only.
func TestZeroRateKeepsOnlyFlagged(t *testing.T) {
	tr := New(Config{SampleRate: 0, Ring: 16})
	finishOne(tr, "m", "ok", 0)
	finishOne(tr, "m", "failed", FlagFailed)
	kept := tr.Kept()
	if len(kept) != 1 || kept[0].Flags != FlagFailed {
		t.Fatalf("want exactly the flagged trace kept, got %+v", kept)
	}
	if st := tr.Stats(); st.Sampled != 0 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRingEvictionAndOccupancy: the ring holds the newest keeps and
// occupancy tops out at capacity.
func TestRingEvictionAndOccupancy(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 8})
	for i := 0; i < 20; i++ {
		finishOne(tr, "m", "ok", 0)
	}
	kept := tr.Kept()
	if len(kept) != 8 {
		t.Fatalf("ring holds %d, want 8", len(kept))
	}
	// Oldest first, newest last: IDs 13..20.
	for i, kt := range kept {
		if want := uint64(13 + i); kt.ID != want {
			t.Fatalf("kept[%d].ID = %d, want %d", i, kt.ID, want)
		}
	}
	if st := tr.Stats(); st.RingLen != 8 || st.RingCap != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestProvenanceRoundTrip: the provenance slot survives pooling and deep
// copies intact.
func TestProvenanceRoundTrip(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 4})
	for i := 0; i < 12; i++ { // recycle pooled traces several times
		finishOne(tr, "m", "ok", 0)
	}
	kt, ok := tr.Lookup(12)
	if !ok {
		t.Fatal("trace 12 not kept")
	}
	if !kt.HasProv || !kt.Prov.Explored || kt.Prov.StateIdx != 7 || kt.Prov.Action != "edge" {
		t.Fatalf("provenance lost: %+v", kt.Prov)
	}
	if want := []float64{0.5, -0.25, 1.75}; !reflect.DeepEqual(kt.Prov.Q, want) {
		t.Fatalf("Q = %v, want %v", kt.Prov.Q, want)
	}
	if want := []bool{true, false, true}; !reflect.DeepEqual(kt.Prov.Mask, want) {
		t.Fatalf("Mask = %v, want %v", kt.Prov.Mask, want)
	}
}

// TestBinaryRoundTrip: EncodeBinary/DecodeBinary is lossless.
func TestBinaryRoundTrip(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 8})
	finishOne(tr, "resnet", "ok", 0)
	finishOne(tr, "bert", "failed", FlagFailed|FlagHedged)
	want := tr.Kept()
	blob := EncodeBinary(want)
	got, err := DecodeBinary(blob)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if _, err := DecodeBinary(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated dump decoded without error")
	}
	if _, err := DecodeBinary([]byte("not a dump")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// TestChromeExport: the chrome trace-event document is well-formed, spans
// lay out cumulatively, and the decide span carries the provenance args.
func TestChromeExport(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 8})
	finishOne(tr, "resnet", "ok", 0)
	body, err := tr.ChromeJSON(1)
	if err != nil {
		t.Fatalf("ChromeJSON: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	var decide map[string]any
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "decide" {
			decide = ev
		}
	}
	if decide == nil {
		t.Fatalf("no decide event in %s", body)
	}
	args, _ := decide["args"].(map[string]any)
	if args == nil || args["explored"] != true || args["action"] != "edge" {
		t.Fatalf("decide args missing provenance: %v", args)
	}
	if _, ok := args["q"].([]any); !ok {
		t.Fatalf("decide args missing q: %v", args)
	}
	if _, err := tr.ChromeJSON(999); err == nil {
		t.Fatal("unknown trace ID exported without error")
	}
}

// TestIndexJSON: the /traces document carries stats and per-trace rows.
func TestIndexJSON(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 8})
	finishOne(tr, "resnet", "ok", 0)
	finishOne(tr, "bert", "expired", FlagExpired)
	body, err := tr.IndexJSON()
	if err != nil {
		t.Fatalf("IndexJSON: %v", err)
	}
	var idx Index
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("index is not JSON: %v", err)
	}
	if idx.Stats.Kept != 2 || len(idx.Traces) != 2 {
		t.Fatalf("index = %+v", idx)
	}
	if !reflect.DeepEqual(idx.Traces[1].Flags, []string{"expired"}) {
		t.Fatalf("flags = %v", idx.Traces[1].Flags)
	}
}

// TestAppendPromOnce: every autoscale_trace_* series appears with exactly
// one HELP/TYPE header (the PR 7 encoder contract), and a nil tracer emits
// nothing.
func TestAppendPromOnce(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 8})
	finishOne(tr, "m", "ok", 0)
	var p obs.Prom
	tr.AppendProm(&p)
	body := string(p.Bytes())
	for _, name := range []string{
		"autoscale_trace_started_total",
		"autoscale_trace_sampled_total",
		"autoscale_trace_kept_total",
		"autoscale_trace_dropped_total",
		"autoscale_trace_ring_occupancy",
		"autoscale_trace_ring_capacity",
	} {
		if got := strings.Count(body, "# HELP "+name+" "); got != 1 {
			t.Fatalf("HELP %s appears %d times, want 1\n%s", name, got, body)
		}
		if got := strings.Count(body, "# TYPE "+name+" "); got != 1 {
			t.Fatalf("TYPE %s appears %d times, want 1\n%s", name, got, body)
		}
	}
	var nilP obs.Prom
	var nilTr *Tracer
	nilTr.AppendProm(&nilP)
	if len(nilP.Bytes()) != 0 {
		t.Fatalf("nil tracer emitted %q", nilP.Bytes())
	}
}

// TestFlightRecorder: the event ring bounds and orders events, Trigger
// writes a bounded number of bundles, and a bundle carries events + traces.
func TestFlightRecorder(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 8})
	finishOne(tr, "m", "ok", 0)
	dir := t.TempDir()
	fr := NewFlightRecorder(tr, dir, 4, 2)
	for i := 0; i < 10; i++ {
		fr.Note(float64(i), "breaker", "edge", "closed->open")
	}
	ev := fr.Events()
	if len(ev) != 4 || ev[0].AtS != 6 || ev[3].AtS != 9 {
		t.Fatalf("event ring = %+v", ev)
	}

	p1 := fr.Trigger(10, "cordon shard-0")
	if p1 == "" {
		t.Fatal("first trigger wrote no bundle")
	}
	body, err := os.ReadFile(p1)
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	var b Bundle
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("bundle is not JSON: %v", err)
	}
	if b.Reason != "cordon shard-0" || len(b.Events) != 4 || len(b.Traces) != 1 {
		t.Fatalf("bundle = reason %q, %d events, %d traces", b.Reason, len(b.Events), len(b.Traces))
	}
	if !b.Traces[0].HasProv || len(b.Traces[0].Prov.Q) == 0 {
		t.Fatalf("bundle trace lost provenance: %+v", b.Traces[0])
	}

	fr.Trigger(11, "again")
	if p3 := fr.Trigger(12, "over budget"); p3 != "" {
		t.Fatalf("third trigger wrote %q, want dump cap to hold", p3)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(files) != 2 {
		t.Fatalf("found %d bundles, want 2: %v", len(files), files)
	}
	if n, err := fr.Dumps(); n != 3 || err != nil {
		t.Fatalf("Dumps = %d, %v", n, err)
	}
}

// TestConcurrentFinishAndRead: keeps, snapshots and stats race-cleanly.
func TestConcurrentFinishAndRead(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 16})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				finishOne(tr, "m", "ok", 0)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Kept()
			tr.Stats()
			tr.IndexJSON()
		}
	}()
	wg.Wait()
	<-done
	if st := tr.Stats(); st.Started != 800 || st.Kept != 800 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFinishAfterFinish: a second Finish (e.g. a defensive call site) must
// not corrupt the pooled trace another request now owns.
func TestFinishAfterFinish(t *testing.T) {
	tr := New(Config{SampleRate: 1, Ring: 4})
	a := tr.Start("m", "t", 0)
	a.Finish("ok")
	a.Finish("failed") // no-op
	a.Span("late", 1, "")
	if st := tr.Stats(); st.Kept != 1 {
		t.Fatalf("stats = %+v", st)
	}
	kt, ok := tr.Lookup(1)
	if !ok || kt.Status != "ok" || len(kt.Spans) != 0 {
		t.Fatalf("trace corrupted by post-finish calls: %+v", kt)
	}
}
