// Package perf is the latency model of the simulator: it converts a model's
// layers, an execution configuration (processor, DVFS step, precision), and
// the current interference conditions into per-layer and end-to-end compute
// latencies. The model is a roofline per layer — compute time versus memory
// time, whichever dominates — plus a per-layer dispatch overhead, scaled by
// DVFS, precision, thermal throttling, and co-runner contention. Its purpose
// is to reproduce the *relative* processor/layer profiles of Fig 3 of the
// paper, which is what drives every scheduling decision.
package perf

import (
	"errors"

	"autoscale/internal/dnn"
	"autoscale/internal/interfere"
	"autoscale/internal/soc"
)

// Exec is one execution configuration on a specific engine.
type Exec struct {
	Proc *soc.Processor
	// Step is the DVFS step (0 = slowest); ignored by single-step engines.
	Step int
	// Prec is the numeric precision to run at.
	Prec dnn.Precision
}

// Validate checks that the configuration is executable at all (precision
// supported, step meaningful). Model compatibility (RC layers) is checked
// per model by CanRun.
func (e Exec) Validate() error {
	if e.Proc == nil {
		return errors.New("perf: nil processor")
	}
	if !e.Proc.SupportsPrecision(e.Prec) {
		return errors.New("perf: precision not supported by " + e.Proc.Name)
	}
	return nil
}

// CanRun reports whether the configuration can execute model m.
func (e Exec) CanRun(m *dnn.Model) bool {
	return e.Proc != nil && e.Proc.CanRun(m, e.Prec)
}

// LayerLatency returns the latency in seconds of one layer under the given
// interference penalties.
func LayerLatency(e Exec, l dnn.Layer, pen interfere.Penalties) float64 {
	p := e.Proc

	// Effective compute rate: peak MACs x DVFS frequency x thermal cap x
	// layer-type efficiency x precision speedup, shared with co-runners on
	// the CPU and DMA-stalled on co-processors under memory pressure.
	freq := p.FreqRatio(e.Step)
	throttle := 1.0
	if p.Kind == soc.CPU {
		throttle = soc.ThrottleFactor(soc.CPU, pen.SustainedCPUUtil)
	}
	rate := p.PeakGMACs * 1e9 * freq * throttle * p.Eff(l.Type) * p.PrecisionSpeedup(e.Prec)
	if p.Kind == soc.CPU {
		rate *= pen.CPUShare
		rate /= pen.CPUComputeSlowdown
	} else {
		rate /= pen.CoprocSlowdown
	}
	tCompute := l.MACs / rate

	// Memory time: weights and activations at the precision's footprint
	// over the engine's effective bandwidth, inflated by memory-hog
	// co-runners. Bandwidth does not scale with engine frequency.
	bytes := (l.WeightBytes + l.ActivationBytes) * e.Prec.BytesPerValue() / 4
	tMem := bytes / (p.MemBWGBs * 1e9) * pen.MemSlowdown

	// Roofline: the layer is bound by the slower of the two paths, plus
	// the fixed dispatch overhead for this layer type.
	t := tCompute
	if tMem > t {
		t = tMem
	}
	return t + p.Overhead(l.Type)
}

// PerLayerLatencies returns the latency of every layer of m in order.
func PerLayerLatencies(e Exec, m *dnn.Model, pen interfere.Penalties) []float64 {
	out := make([]float64, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = LayerLatency(e, l, pen)
	}
	return out
}

// ModelLatency returns the end-to-end compute latency of m (excluding any
// network transfer, which the sim package adds for offloaded targets).
func ModelLatency(e Exec, m *dnn.Model, pen interfere.Penalties) float64 {
	var t float64
	for _, l := range m.Layers {
		t += LayerLatency(e, l, pen)
	}
	return t
}

// LatencyByType aggregates per-layer latency by layer type — the quantity
// Fig 3 of the paper plots.
func LatencyByType(e Exec, m *dnn.Model, pen interfere.Penalties) map[dnn.LayerType]float64 {
	out := make(map[dnn.LayerType]float64)
	for _, l := range m.Layers {
		out[l.Type] += LayerLatency(e, l, pen)
	}
	return out
}

// NoInterference returns the penalty set of an otherwise idle device.
func NoInterference() interfere.Penalties {
	return interfere.PenaltiesFor(interfere.Load{})
}
