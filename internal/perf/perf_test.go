package perf

import (
	"math"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/interfere"
	"autoscale/internal/soc"
)

func mi8CPU() Exec {
	cpu := soc.Mi8Pro().Processor(soc.CPU)
	return Exec{Proc: cpu, Step: cpu.Steps - 1, Prec: dnn.FP32}
}

func mi8GPU() Exec {
	gpu := soc.Mi8Pro().Processor(soc.GPU)
	return Exec{Proc: gpu, Step: gpu.Steps - 1, Prec: dnn.FP32}
}

func mi8DSP() Exec {
	return Exec{Proc: soc.Mi8Pro().Processor(soc.DSP), Prec: dnn.INT8}
}

func TestExecValidate(t *testing.T) {
	if err := mi8CPU().Validate(); err != nil {
		t.Error(err)
	}
	if (Exec{}).Validate() == nil {
		t.Error("nil processor should fail")
	}
	bad := mi8DSP()
	bad.Prec = dnn.FP32
	if bad.Validate() == nil {
		t.Error("DSP at FP32 should fail")
	}
}

func TestCanRun(t *testing.T) {
	bert := dnn.MustByName("MobileBERT")
	if mi8GPU().CanRun(bert) {
		t.Error("mobile GPU must reject MobileBERT")
	}
	if !mi8CPU().CanRun(bert) {
		t.Error("CPU must accept MobileBERT")
	}
}

func TestModelLatencySumsLayers(t *testing.T) {
	m := dnn.MustByName("Inception v1")
	pen := NoInterference()
	per := PerLayerLatencies(mi8CPU(), m, pen)
	if len(per) != len(m.Layers) {
		t.Fatalf("per-layer count %d != %d", len(per), len(m.Layers))
	}
	var sum float64
	for _, v := range per {
		if v <= 0 {
			t.Fatal("layer latency must be positive")
		}
		sum += v
	}
	if total := ModelLatency(mi8CPU(), m, pen); math.Abs(total-sum) > 1e-12 {
		t.Errorf("ModelLatency %v != sum %v", total, sum)
	}
	byType := LatencyByType(mi8CPU(), m, pen)
	var typeSum float64
	for _, v := range byType {
		typeSum += v
	}
	if math.Abs(typeSum-sum) > 1e-9 {
		t.Errorf("LatencyByType sum %v != %v", typeSum, sum)
	}
}

func TestDVFSMonotonic(t *testing.T) {
	m := dnn.MustByName("MobileNet v1")
	pen := NoInterference()
	cpu := soc.Mi8Pro().Processor(soc.CPU)
	prev := math.Inf(1)
	for s := 0; s < cpu.Steps; s++ {
		lat := ModelLatency(Exec{Proc: cpu, Step: s, Prec: dnn.FP32}, m, pen)
		if lat >= prev {
			t.Errorf("latency did not shrink at step %d", s)
		}
		prev = lat
	}
}

func TestQuantizationSpeedsUpCPU(t *testing.T) {
	m := dnn.MustByName("MobileNet v2")
	pen := NoInterference()
	cpu := soc.Mi8Pro().Processor(soc.CPU)
	fp32 := ModelLatency(Exec{Proc: cpu, Step: cpu.Steps - 1, Prec: dnn.FP32}, m, pen)
	int8 := ModelLatency(Exec{Proc: cpu, Step: cpu.Steps - 1, Prec: dnn.INT8}, m, pen)
	if int8 >= fp32 {
		t.Errorf("INT8 (%v) must beat FP32 (%v) on CPU", int8, fp32)
	}
}

func TestFig3Shapes(t *testing.T) {
	pen := NoInterference()
	// CONV-heavy Inception v1 runs faster on co-processors...
	iv1 := dnn.MustByName("Inception v1")
	cpuLat := ModelLatency(mi8CPU(), iv1, pen)
	gpuLat := ModelLatency(mi8GPU(), iv1, pen)
	dspLat := ModelLatency(mi8DSP(), iv1, pen)
	if gpuLat >= cpuLat || dspLat >= cpuLat {
		t.Errorf("Inception v1: GPU %v / DSP %v must beat CPU %v", gpuLat, dspLat, cpuLat)
	}
	// ...while FC-heavy MobileNet v3 runs faster on the CPU (Fig 3).
	mbv3 := dnn.MustByName("MobileNet v3")
	cpuLat = ModelLatency(mi8CPU(), mbv3, pen)
	gpuLat = ModelLatency(mi8GPU(), mbv3, pen)
	if cpuLat >= gpuLat {
		t.Errorf("MobileNet v3: CPU %v must beat GPU %v", cpuLat, gpuLat)
	}
	// The FC share of MobileNet v3 dominates its GPU time.
	byType := LatencyByType(mi8GPU(), mbv3, pen)
	if byType[dnn.FC] <= byType[dnn.Conv] {
		t.Errorf("MobileNet v3 on GPU: FC time %v must dominate CONV %v",
			byType[dnn.FC], byType[dnn.Conv])
	}
}

func TestInterferenceSlowsDown(t *testing.T) {
	m := dnn.MustByName("MobileNet v3")
	base := ModelLatency(mi8CPU(), m, NoInterference())
	cpuHog := ModelLatency(mi8CPU(), m, interfere.PenaltiesFor(interfere.CPUHog().Next()))
	if cpuHog <= base*1.5 {
		t.Errorf("CPU hog slowdown too small: %v vs %v", cpuHog, base)
	}
	memHog := ModelLatency(mi8CPU(), m, interfere.PenaltiesFor(interfere.MemHog().Next()))
	if memHog <= base {
		t.Error("memory hog must slow the CPU")
	}
	// A CPU hog barely touches the DSP; a memory hog slows it.
	dspBase := ModelLatency(mi8DSP(), m, NoInterference())
	dspCPUHog := ModelLatency(mi8DSP(), m, interfere.PenaltiesFor(interfere.CPUHog().Next()))
	dspMemHog := ModelLatency(mi8DSP(), m, interfere.PenaltiesFor(interfere.MemHog().Next()))
	if dspCPUHog > dspBase*1.2 {
		t.Errorf("CPU hog slowed the DSP too much: %v vs %v", dspCPUHog, dspBase)
	}
	if dspMemHog <= dspBase*1.2 {
		t.Errorf("memory hog must slow the DSP: %v vs %v", dspMemHog, dspBase)
	}
}

func TestOverheadDominatesTinyLayers(t *testing.T) {
	// A layer with negligible work still costs the dispatch overhead.
	tiny := dnn.Layer{Name: "tiny", Type: dnn.Conv, MACs: 1}
	gpu := mi8GPU()
	lat := LayerLatency(gpu, tiny, NoInterference())
	if lat < gpu.Proc.Overhead(dnn.Conv) {
		t.Errorf("latency %v below dispatch overhead", lat)
	}
}

func TestRooflineMemoryBound(t *testing.T) {
	// A layer with huge traffic and no compute is bound by memory time.
	l := dnn.Layer{Name: "membound", Type: dnn.FC, MACs: 1, WeightBytes: 1e9}
	cpu := mi8CPU()
	lat := LayerLatency(cpu, l, NoInterference())
	wantMem := 1e9 / (cpu.Proc.MemBWGBs * 1e9)
	if lat < wantMem {
		t.Errorf("latency %v below memory time %v", lat, wantMem)
	}
}
