// Package predict implements the prediction-based approaches the paper
// compares against in Section III-C: linear regression and support-vector
// regression (which estimate energy and latency per execution target),
// support-vector-machine and k-nearest-neighbour classifiers (which predict
// the optimal target directly), and a Bayesian-optimization approach built
// on a Gaussian-process surrogate with expected improvement. Their shared
// weakness — the reason Fig 7 shows a gap to Opt — is that they are fitted
// offline and cannot track stochastic runtime variance.
package predict

import (
	"errors"
)

// Sample is one profiled inference: the observed state features, the action
// index that was executed, and the measured outcome.
type Sample struct {
	// X is the raw state feature vector (see exp for the encoding).
	X []float64
	// Action is the executed action index.
	Action int
	// EnergyJ and LatencyS are the measured outcome.
	EnergyJ  float64
	LatencyS float64
}

// LabeledState is one training state with its oracle-optimal action, used by
// the classification approaches.
type LabeledState struct {
	X      []float64
	Action int
}

// Regressor estimates a scalar from a feature vector.
type Regressor interface {
	Predict(x []float64) float64
}

// Classifier predicts an action index from a state feature vector, given the
// set of feasible actions.
type Classifier interface {
	Classify(x []float64, feasible []bool) int
}

// appendOneHot encodes (state, action) pairs for the regression approaches:
// the state features followed by a one-hot action indicator.
func appendOneHot(x []float64, action, numActions int) []float64 {
	out := make([]float64, len(x)+numActions)
	copy(out, x)
	if action >= 0 && action < numActions {
		out[len(x)+action] = 1
	}
	return out
}

// EncodeSamples builds the (state ++ one-hot action) design matrix and the
// chosen target column from profiled samples.
func EncodeSamples(samples []Sample, numActions int, energy bool) ([][]float64, []float64, error) {
	if len(samples) == 0 {
		return nil, nil, errors.New("predict: no samples")
	}
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = appendOneHot(s.X, s.Action, numActions)
		if energy {
			ys[i] = s.EnergyJ
		} else {
			ys[i] = s.LatencyS
		}
	}
	return xs, ys, nil
}
