package predict

import (
	"errors"
)

// LinearRegression is ordinary least squares with a small ridge penalty,
// solved in closed form via the normal equations. The paper uses it as the
// canonical regression-based approach (Seber & Lee [96]).
type LinearRegression struct {
	scaler  *Scaler
	weights []float64 // last entry is the bias
}

// FitLinearRegression fits y ~ X with ridge strength lambda (>= 0).
func FitLinearRegression(xs [][]float64, ys []float64, lambda float64) (*LinearRegression, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("predict: linreg needs equal-length non-empty data")
	}
	scaler, err := FitScaler(xs)
	if err != nil {
		return nil, err
	}
	std := scaler.TransformAll(xs)
	d := len(std[0]) + 1 // + bias

	// Normal equations: (X^T X + lambda I) w = X^T y.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for n, x := range std {
		copy(row, x)
		row[d-1] = 1
		for i := 0; i < d; i++ {
			for j := 0; j <= i; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * ys[n]
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += lambda + 1e-9
	}
	w, err := solveSPD(xtx, xty)
	if err != nil {
		return nil, err
	}
	return &LinearRegression{scaler: scaler, weights: w}, nil
}

// Predict implements Regressor.
func (m *LinearRegression) Predict(x []float64) float64 {
	z := m.scaler.Transform(x)
	d := len(m.weights)
	var s float64
	for i := 0; i < d-1 && i < len(z); i++ {
		s += m.weights[i] * z[i]
	}
	return s + m.weights[d-1]
}

// SVR is a linear support-vector regressor with an epsilon-insensitive loss,
// trained by stochastic sub-gradient descent (Drucker et al. [21]).
type SVR struct {
	scaler  *Scaler
	weights []float64
	bias    float64
}

// SVRConfig holds SVR training hyperparameters.
type SVRConfig struct {
	// Epsilon is the insensitive-tube half width, in target units.
	Epsilon float64
	// C is the slack weight (inverse regularization).
	C float64
	// Epochs over the training set.
	Epochs int
	// LearningRate is the initial SGD step.
	LearningRate float64
}

// DefaultSVRConfig returns sensible defaults for the simulator's scales.
func DefaultSVRConfig() SVRConfig {
	return SVRConfig{Epsilon: 0.01, C: 100, Epochs: 250, LearningRate: 0.05}
}

// FitSVR trains a linear SVR on the data.
func FitSVR(xs [][]float64, ys []float64, cfg SVRConfig) (*SVR, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("predict: svr needs equal-length non-empty data")
	}
	scaler, err := FitScaler(xs)
	if err != nil {
		return nil, err
	}
	std := scaler.TransformAll(xs)
	d := len(std[0])
	w := make([]float64, d)
	var b float64
	// Sub-gradient steps decay with the global iteration count, and the
	// returned model averages the weights over the final quarter of the
	// run (Polyak averaging) — per-sample +-1 sub-gradients otherwise
	// oscillate around the optimum without converging.
	total := cfg.Epochs * len(std)
	avgFrom := total * 3 / 4
	avgW := make([]float64, d)
	var avgB float64
	var avgN int
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i, x := range std {
			lr := cfg.LearningRate / (1 + cfg.LearningRate*float64(t)/float64(len(std)))
			t++
			pred := dot(w, x) + b
			resid := pred - ys[i]
			// Epsilon-insensitive sub-gradient.
			var g float64
			switch {
			case resid > cfg.Epsilon:
				g = 1
			case resid < -cfg.Epsilon:
				g = -1
			}
			for j := range w {
				w[j] -= lr * (w[j]/cfg.C + g*x[j])
			}
			b -= lr * g
			if t >= avgFrom {
				for j := range w {
					avgW[j] += w[j]
				}
				avgB += b
				avgN++
			}
		}
	}
	if avgN > 0 {
		for j := range avgW {
			avgW[j] /= float64(avgN)
		}
		avgB /= float64(avgN)
		w, b = avgW, avgB
	}
	return &SVR{scaler: scaler, weights: w, bias: b}, nil
}

// Predict implements Regressor.
func (m *SVR) Predict(x []float64) float64 {
	return dot(m.weights, m.scaler.Transform(x)) + m.bias
}
