package predict

import (
	"errors"
	"math"
)

// Small dense linear algebra used by the regression and Gaussian-process
// predictors. Matrices are row-major [][]float64; sizes here are tens to a
// few hundred, so simplicity beats blocking.

// solveSPD solves A x = b for symmetric positive-definite A via Cholesky
// decomposition. A is not modified.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("predict: dimension mismatch")
	}
	// Cholesky: A = L L^T.
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errors.New("predict: matrix not positive definite")
				}
				l[i][j] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * y[k]
		}
		y[i] = sum / l[i][i]
	}
	// Back solve L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x, nil
}

// dot returns the inner product of equal-length vectors.
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Scaler standardizes feature vectors to zero mean and unit variance per
// dimension, fitted from training data.
type Scaler struct {
	mean []float64
	std  []float64
}

// FitScaler computes per-dimension statistics from xs.
func FitScaler(xs [][]float64) (*Scaler, error) {
	if len(xs) == 0 {
		return nil, errors.New("predict: no samples to fit scaler")
	}
	d := len(xs[0])
	mean := make([]float64, d)
	std := make([]float64, d)
	for _, x := range xs {
		if len(x) != d {
			return nil, errors.New("predict: ragged feature matrix")
		}
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(xs))
	}
	for _, x := range xs {
		for j, v := range x {
			dlt := v - mean[j]
			std[j] += dlt * dlt
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(xs)))
		if std[j] < 1e-9 {
			std[j] = 1
		}
	}
	return &Scaler{mean: mean, std: std}, nil
}

// Transform standardizes one vector (returns a new slice).
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// TransformAll standardizes a matrix.
func (s *Scaler) TransformAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = s.Transform(x)
	}
	return out
}
