package predict

import (
	"errors"
	"math"
	"sort"
)

// SVM is a linear multi-class classifier (one weight vector per action)
// trained with the multi-class hinge loss by stochastic sub-gradient
// descent; the paper's classification-based comparison uses least-squares
// SVMs (Suykens & Vandewalle [102]).
type SVM struct {
	scaler  *Scaler
	weights [][]float64 // [action][dim]
	bias    []float64
	classes int
}

// SVMConfig holds SVM training hyperparameters.
type SVMConfig struct {
	C            float64
	Epochs       int
	LearningRate float64
}

// DefaultSVMConfig returns sensible defaults.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{C: 100, Epochs: 300, LearningRate: 0.1}
}

// FitSVM trains a multi-class linear SVM on labeled optimal-action states.
func FitSVM(data []LabeledState, classes int, cfg SVMConfig) (*SVM, error) {
	if len(data) == 0 {
		return nil, errors.New("predict: svm needs data")
	}
	if classes < 2 {
		return nil, errors.New("predict: svm needs at least two classes")
	}
	xs := make([][]float64, len(data))
	for i, d := range data {
		xs[i] = d.X
	}
	scaler, err := FitScaler(xs)
	if err != nil {
		return nil, err
	}
	std := scaler.TransformAll(xs)
	dim := len(std[0])
	w := make([][]float64, classes)
	b := make([]float64, classes)
	for i := range w {
		w[i] = make([]float64, dim)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		for i, x := range std {
			y := data[i].Action
			if y < 0 || y >= classes {
				return nil, errors.New("predict: svm label out of range")
			}
			// Crammer-Singer style: most violating competitor.
			yScore := dot(w[y], x) + b[y]
			worst, worstScore := -1, math.Inf(-1)
			for c := 0; c < classes; c++ {
				if c == y {
					continue
				}
				s := dot(w[c], x) + b[c]
				if s > worstScore {
					worst, worstScore = c, s
				}
			}
			// Regularize every class.
			for c := 0; c < classes; c++ {
				for j := range w[c] {
					w[c][j] -= lr * w[c][j] / cfg.C
				}
			}
			if worst >= 0 && worstScore+1 > yScore {
				for j := range x {
					w[y][j] += lr * x[j]
					w[worst][j] -= lr * x[j]
				}
				b[y] += lr
				b[worst] -= lr
			}
		}
	}
	return &SVM{scaler: scaler, weights: w, bias: b, classes: classes}, nil
}

// Classify implements Classifier: the feasible class with the highest score.
func (m *SVM) Classify(x []float64, feasible []bool) int {
	z := m.scaler.Transform(x)
	best, bestScore := -1, math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		if feasible != nil && (c >= len(feasible) || !feasible[c]) {
			continue
		}
		s := dot(m.weights[c], z) + m.bias[c]
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// KNN is a k-nearest-neighbour classifier over standardized state features
// (Zhang & Srihari [114]).
type KNN struct {
	scaler *Scaler
	data   []LabeledState // with standardized X
	k      int
}

// FitKNN stores the training set. k values below 1 are raised to 1.
func FitKNN(data []LabeledState, k int) (*KNN, error) {
	if len(data) == 0 {
		return nil, errors.New("predict: knn needs data")
	}
	if k < 1 {
		k = 1
	}
	xs := make([][]float64, len(data))
	for i, d := range data {
		xs[i] = d.X
	}
	scaler, err := FitScaler(xs)
	if err != nil {
		return nil, err
	}
	std := make([]LabeledState, len(data))
	for i, d := range data {
		std[i] = LabeledState{X: scaler.Transform(d.X), Action: d.Action}
	}
	return &KNN{scaler: scaler, data: std, k: k}, nil
}

// Classify implements Classifier: majority vote over the k nearest feasible
// neighbours (falling back to nearest-feasible when the vote is empty).
func (m *KNN) Classify(x []float64, feasible []bool) int {
	z := m.scaler.Transform(x)
	type nb struct {
		dist  float64
		label int
	}
	nbs := make([]nb, 0, len(m.data))
	for _, d := range m.data {
		var dist float64
		for j := range z {
			dlt := z[j] - d.X[j]
			dist += dlt * dlt
		}
		nbs = append(nbs, nb{dist: dist, label: d.Action})
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].dist < nbs[j].dist })
	votes := make(map[int]int)
	counted := 0
	for _, n := range nbs {
		if feasible != nil && (n.label >= len(feasible) || !feasible[n.label]) {
			continue
		}
		votes[n.label]++
		counted++
		if counted == m.k {
			break
		}
	}
	best, bestVotes := -1, 0
	for label, v := range votes {
		if v > bestVotes || (v == bestVotes && label < best) {
			best, bestVotes = label, v
		}
	}
	return best
}
