package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScaler(t *testing.T) {
	xs := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	s, err := FitScaler(xs)
	if err != nil {
		t.Fatal(err)
	}
	z := s.Transform([]float64{3, 30})
	if math.Abs(z[0]) > 1e-9 || math.Abs(z[1]) > 1e-9 {
		t.Errorf("mean sample should standardize to zero: %v", z)
	}
	all := s.TransformAll(xs)
	var mean0 float64
	for _, x := range all {
		mean0 += x[0]
	}
	if math.Abs(mean0) > 1e-9 {
		t.Error("standardized mean must be zero")
	}
	// Constant columns must not divide by zero.
	s2, err := FitScaler([][]float64{{1, 5}, {1, 6}})
	if err != nil {
		t.Fatal(err)
	}
	z2 := s2.Transform([]float64{1, 5})
	if math.IsNaN(z2[0]) || math.IsInf(z2[0], 0) {
		t.Error("constant column produced NaN/Inf")
	}
	if _, err := FitScaler(nil); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := FitScaler([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestSolveSPD(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	b := []float64{1, 2}
	x, err := solveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A x = b.
	for i := range b {
		got := a[i][0]*x[0] + a[i][1]*x[1]
		if math.Abs(got-b[i]) > 1e-9 {
			t.Errorf("row %d: %v != %v", i, got, b[i])
		}
	}
	if _, err := solveSPD([][]float64{{-1}}, []float64{1}); err == nil {
		t.Error("non-PD matrix should fail")
	}
	if _, err := solveSPD(nil, nil); err == nil {
		t.Error("empty system should fail")
	}
}

func TestLinearRegressionRecoversLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		xs = append(xs, []float64{a, b})
		ys = append(ys, 3*a-2*b+5)
	}
	m, err := FitLinearRegression(xs, ys, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		want := 3*a - 2*b + 5
		got := m.Predict([]float64{a, b})
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("Predict(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
	if _, err := FitLinearRegression(nil, nil, 0); err == nil {
		t.Error("empty fit should fail")
	}
}

func TestSVRApproximatesLine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64() * 4
		xs = append(xs, []float64{a})
		ys = append(ys, 2*a+1)
	}
	cfg := DefaultSVRConfig()
	cfg.Epsilon = 0.01
	m, err := FitSVR(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	for i := 0; i < 50; i++ {
		a := rng.Float64() * 4
		errSum += math.Abs(m.Predict([]float64{a}) - (2*a + 1))
	}
	if avg := errSum / 50; avg > 0.5 {
		t.Errorf("SVR mean error %v too large", avg)
	}
}

func makeSeparable(rng *rand.Rand, n int) []LabeledState {
	var out []LabeledState
	for i := 0; i < n; i++ {
		c := i % 3
		base := float64(c) * 10
		out = append(out, LabeledState{
			X:      []float64{base + rng.Float64(), -base + rng.Float64()},
			Action: c,
		})
	}
	return out
}

func TestSVMSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := makeSeparable(rng, 300)
	m, err := FitSVM(data, 3, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, d := range data {
		if m.Classify(d.X, nil) == d.Action {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.95 {
		t.Errorf("SVM training accuracy %v too low", acc)
	}
	// Feasibility masking excludes classes.
	got := m.Classify(data[0].X, []bool{false, true, true})
	if got == 0 {
		t.Error("masked class selected")
	}
	if _, err := FitSVM(nil, 3, DefaultSVMConfig()); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := FitSVM(data, 1, DefaultSVMConfig()); err == nil {
		t.Error("single class should fail")
	}
	bad := append([]LabeledState(nil), data...)
	bad[0].Action = 99
	if _, err := FitSVM(bad, 3, DefaultSVMConfig()); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := makeSeparable(rng, 150)
	m, err := FitKNN(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, d := range data {
		if m.Classify(d.X, nil) == d.Action {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.95 {
		t.Errorf("KNN training accuracy %v too low", acc)
	}
	// k is clamped to >= 1.
	if _, err := FitKNN(data, 0); err != nil {
		t.Error("k=0 should be clamped, not fail")
	}
	if _, err := FitKNN(nil, 5); err == nil {
		t.Error("empty fit should fail")
	}
	// Masking: nearest feasible wins.
	got := m.Classify(data[0].X, []bool{false, true, true})
	if got == 0 {
		t.Error("masked class selected")
	}
	if got := m.Classify(data[0].X, []bool{false, false, false}); got != -1 {
		t.Error("fully masked classify must return -1")
	}
}

func TestGPInterpolates(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		x := float64(i) / 3
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x))
	}
	cfg := DefaultGPConfig()
	cfg.LengthScale = 0.5
	cfg.NoiseVar = 1e-6
	g, err := FitGP(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Near-exact at training points.
	for i := 0; i < 30; i += 5 {
		got := g.Predict(xs[i])
		if math.Abs(got-ys[i]) > 0.05 {
			t.Errorf("GP at training point %v: %v vs %v", xs[i], got, ys[i])
		}
	}
	// Reasonable between points.
	mid := g.Predict([]float64{1.5})
	if math.Abs(mid-math.Sin(1.5)) > 0.2 {
		t.Errorf("GP interpolation at 1.5: %v vs %v", mid, math.Sin(1.5))
	}
}

func TestGPSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 1000; i++ {
		x := rng.Float64() * 5
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x)
	}
	cfg := DefaultGPConfig()
	cfg.MaxPoints = 100
	g, err := FitGP(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.xs) != 100 {
		t.Errorf("subsample kept %d points, want 100", len(g.xs))
	}
	if _, err := FitGP(nil, nil, cfg); err == nil {
		t.Error("empty fit should fail")
	}
}

func TestExpectedImprovement(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 10; i++ {
		xs = append(xs, []float64{float64(i)})
		ys = append(ys, float64(i))
	}
	g, err := FitGP(xs, ys, DefaultGPConfig())
	if err != nil {
		t.Fatal(err)
	}
	// EI is non-negative everywhere.
	for i := -5.0; i < 15; i++ {
		if ei := g.ExpectedImprovement([]float64{i}, 5); ei < 0 {
			t.Fatalf("EI(%v) = %v < 0", i, ei)
		}
	}
	// EI is larger where the posterior mean is far below the incumbent.
	low := g.ExpectedImprovement([]float64{0}, 5)
	high := g.ExpectedImprovement([]float64{9}, 5)
	if low <= high {
		t.Errorf("EI at a good point (%v) must exceed a bad point (%v)", low, high)
	}
}

func TestEncodeSamples(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 2}, Action: 1, EnergyJ: 0.5, LatencyS: 0.01},
		{X: []float64{3, 4}, Action: 0, EnergyJ: 0.7, LatencyS: 0.02},
	}
	xs, ys, err := EncodeSamples(samples, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs[0]) != 5 {
		t.Errorf("encoded width = %d, want 5", len(xs[0]))
	}
	if xs[0][2+1] != 1 || xs[1][2+0] != 1 {
		t.Error("one-hot encoding wrong")
	}
	if ys[0] != 0.5 {
		t.Error("energy column wrong")
	}
	_, ys, _ = EncodeSamples(samples, 3, false)
	if ys[0] != 0.01 {
		t.Error("latency column wrong")
	}
	if _, _, err := EncodeSamples(nil, 3, true); err == nil {
		t.Error("empty samples should fail")
	}
}

func TestStdNormFunctions(t *testing.T) {
	if math.Abs(stdNormCDF(0)-0.5) > 1e-9 {
		t.Error("CDF(0) != 0.5")
	}
	if math.Abs(stdNormPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("PDF(0) wrong")
	}
	f := func(z float64) bool {
		z = math.Mod(z, 10)
		c := stdNormCDF(z)
		return c >= 0 && c <= 1 && stdNormPDF(z) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
