package predict

import (
	"errors"
	"math"

	"autoscale/internal/exec"
)

// GP is a Gaussian-process regressor with an RBF kernel — the surrogate
// model of the paper's Bayesian-optimization comparison (Section III-C,
// [32],[39],[92]). Exact GP inference is cubic in the training-set size, so
// FitGP subsamples when given more than MaxPoints samples.
type GP struct {
	scaler    *Scaler
	xs        [][]float64
	alpha     []float64
	lengthSq  float64
	signalVar float64
	meanY     float64
}

// GPConfig holds GP hyperparameters.
type GPConfig struct {
	// LengthScale of the RBF kernel in standardized feature units.
	LengthScale float64
	// SignalVar is the kernel amplitude.
	SignalVar float64
	// NoiseVar is the observation noise added to the kernel diagonal.
	NoiseVar float64
	// MaxPoints caps the training-set size (uniform subsample).
	MaxPoints int
	// Seed drives the subsample.
	Seed int64
}

// DefaultGPConfig returns defaults suited to standardized features. A zero
// LengthScale is resolved by FitGP to sqrt(dim), the natural scale at which
// standardized points in dim dimensions see each other.
func DefaultGPConfig() GPConfig {
	return GPConfig{LengthScale: 0, SignalVar: 1.0, NoiseVar: 0.01, MaxPoints: 400, Seed: 1}
}

// FitGP fits the GP to (xs, ys).
func FitGP(xs [][]float64, ys []float64, cfg GPConfig) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("predict: gp needs equal-length non-empty data")
	}
	if cfg.MaxPoints > 0 && len(xs) > cfg.MaxPoints {
		rng := exec.NewRoot(cfg.Seed).Stream("predict.gp.subsample")
		idx := rng.Perm(len(xs))[:cfg.MaxPoints]
		sx := make([][]float64, cfg.MaxPoints)
		sy := make([]float64, cfg.MaxPoints)
		for i, j := range idx {
			sx[i], sy[i] = xs[j], ys[j]
		}
		xs, ys = sx, sy
	}
	scaler, err := FitScaler(xs)
	if err != nil {
		return nil, err
	}
	std := scaler.TransformAll(xs)
	if cfg.LengthScale <= 0 {
		cfg.LengthScale = math.Sqrt(float64(len(std[0])))
	}

	var meanY float64
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	centered := make([]float64, len(ys))
	for i, y := range ys {
		centered[i] = y - meanY
	}

	g := &GP{
		scaler:    scaler,
		xs:        std,
		lengthSq:  cfg.LengthScale * cfg.LengthScale,
		signalVar: cfg.SignalVar,
		meanY:     meanY,
	}
	n := len(std)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := g.kernel(std[i], std[j])
			k[i][j] = v
			k[j][i] = v
		}
		k[i][i] += cfg.NoiseVar + 1e-8
	}
	alpha, err := solveSPD(k, centered)
	if err != nil {
		return nil, err
	}
	g.alpha = alpha
	return g, nil
}

func (g *GP) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		dlt := a[i] - b[i]
		d2 += dlt * dlt
	}
	return g.signalVar * math.Exp(-d2/(2*g.lengthSq))
}

// Predict implements Regressor (posterior mean).
func (g *GP) Predict(x []float64) float64 {
	m, _ := g.PredictVar(x)
	return m
}

// PredictVar returns the posterior mean and (approximate) variance at x.
func (g *GP) PredictVar(x []float64) (mean, variance float64) {
	z := g.scaler.Transform(x)
	kstar := make([]float64, len(g.xs))
	for i, xi := range g.xs {
		kstar[i] = g.kernel(z, xi)
	}
	mean = g.meanY + dot(kstar, g.alpha)
	// Cheap variance bound: prior variance minus explained part (clamped);
	// exact posterior variance would need another solve per query.
	explained := dot(kstar, kstar) / float64(len(kstar))
	variance = g.signalVar - explained
	if variance < 1e-6 {
		variance = 1e-6
	}
	return mean, variance
}

// ExpectedImprovement returns the EI acquisition value at x for a
// minimization problem with current best observed value best.
func (g *GP) ExpectedImprovement(x []float64, best float64) float64 {
	mean, variance := g.PredictVar(x)
	sigma := math.Sqrt(variance)
	if sigma < 1e-9 {
		return 0
	}
	z := (best - mean) / sigma
	return (best-mean)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
