package radio

import "testing"

func TestAllProfilesValidate(t *testing.T) {
	for name, l := range Profiles() {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if len(Profiles()) != 5 {
		t.Errorf("profiles = %d, want 5", len(Profiles()))
	}
}

func TestCellularCharacteristics(t *testing.T) {
	wifi, lte, fiveG := WiFi(), LTE(), FiveG()
	// Cellular PAs draw more than Wi-Fi on transmit.
	if lte.BaseTXW <= wifi.BaseTXW || fiveG.BaseTXW <= wifi.BaseTXW {
		t.Error("cellular transmit power must exceed Wi-Fi")
	}
	// LTE is slower than Wi-Fi; 5G sits between.
	if lte.BaseRateMBps >= wifi.BaseRateMBps {
		t.Error("LTE goodput must be below Wi-Fi")
	}
	if fiveG.BaseRateMBps <= lte.BaseRateMBps {
		t.Error("5G goodput must exceed LTE")
	}
	// Core-network RTTs exceed the local AP path.
	if lte.RTTSeconds <= wifi.RTTSeconds {
		t.Error("LTE RTT must exceed Wi-Fi")
	}
}

func TestBluetoothCharacteristics(t *testing.T) {
	bt, wd := Bluetooth(), WiFiDirect()
	if bt.Kind != P2P {
		t.Error("Bluetooth is a peer-to-peer link")
	}
	if bt.BaseTXW >= wd.BaseTXW {
		t.Error("Bluetooth must draw less than Wi-Fi Direct")
	}
	if bt.BaseRateMBps >= wd.BaseRateMBps/10 {
		t.Error("Bluetooth goodput must be far below Wi-Fi Direct")
	}
	// A 150 KB camera frame takes impractically long over Bluetooth...
	if bt.TransferSeconds(150e3, RegularRSSI) < 0.5 {
		t.Error("camera frames over Bluetooth should be slow")
	}
	// ...while a MobileBERT-sized payload remains interactive.
	if bt.TransferSeconds(1024, RegularRSSI) > 0.05 {
		t.Error("small payloads over Bluetooth should stay interactive")
	}
}
