package radio

// Additional link profiles. Table I of the paper names Wi-Fi, LTE and 5G as
// possible wireless LANs (SRSSI_W) and Bluetooth beside Wi-Fi Direct as
// peer-to-peer networks (SRSSI_P); the evaluation testbed uses Wi-Fi and
// Wi-Fi Direct, and these profiles let the simulator cover the rest of the
// taxonomy. Rates are effective goodput in megabytes/second; powers are the
// interface's system-level draw on a phone.

// LTE returns a cellular wide-area link: lower goodput and markedly higher
// transmit power than Wi-Fi (cellular PAs dominate phone radio budgets),
// with a longer RTT through the carrier core network.
func LTE() *Link {
	return &Link{
		Kind:         WLAN,
		BaseRateMBps: 3.5,
		BaseTXW:      2.80,
		BaseRXW:      1.80,
		IdleW:        0.45,
		RTTSeconds:   0.045,
	}
}

// FiveG returns a 5G (sub-6 GHz) link: Wi-Fi-class goodput with cellular
// power characteristics and a shorter core-network RTT than LTE.
func FiveG() *Link {
	return &Link{
		Kind:         WLAN,
		BaseRateMBps: 12,
		BaseTXW:      3.00,
		BaseRXW:      2.00,
		IdleW:        0.55,
		RTTSeconds:   0.022,
	}
}

// Bluetooth returns a Bluetooth (BR/EDR-class) peer-to-peer link: very low
// power but two orders of magnitude less goodput than Wi-Fi Direct — fine
// for MobileBERT-sized payloads, hopeless for camera frames.
func Bluetooth() *Link {
	return &Link{
		Kind:         P2P,
		BaseRateMBps: 0.25,
		BaseTXW:      0.15,
		BaseRXW:      0.12,
		IdleW:        0.03,
		RTTSeconds:   0.030,
	}
}

// Profiles returns every built-in link profile keyed by name.
func Profiles() map[string]*Link {
	return map[string]*Link{
		"wifi":        WiFi(),
		"wifi-direct": WiFiDirect(),
		"lte":         LTE(),
		"5g":          FiveG(),
		"bluetooth":   Bluetooth(),
	}
}
