// Package radio simulates the wireless links of the paper's edge–cloud
// testbed: the wireless LAN used to reach the cloud (Wi-Fi through an access
// point) and the peer-to-peer link to the locally connected edge device
// (Wi-Fi Direct). The model follows the paper's cited characterization
// ([19], [61]): data rate degrades exponentially and transmit power rises as
// the received signal strength (RSSI) weakens, with -80 dBm as the
// regular/weak boundary (Table I).
package radio

import (
	"autoscale/internal/exec"
	"fmt"
	"math"
)

// LinkKind distinguishes the two radio paths.
type LinkKind int

// Link kinds. WLAN reaches the access point and beyond it the cloud; P2P is
// the device-to-device Wi-Fi Direct link.
const (
	WLAN LinkKind = iota
	P2P
)

// String returns the link-kind name.
func (k LinkKind) String() string {
	switch k {
	case WLAN:
		return "WLAN"
	case P2P:
		return "P2P"
	}
	return fmt.Sprintf("LinkKind(%d)", int(k))
}

// RSSI boundaries used throughout the simulator (dBm).
const (
	// RegularRSSI is a comfortable strong-signal operating point.
	RegularRSSI = -55.0
	// WeakThresholdRSSI is the paper's regular/weak state boundary.
	WeakThresholdRSSI = -80.0
	// WeakRSSI is a representative weak-signal operating point.
	WeakRSSI = -88.0
	// MinRSSI and MaxRSSI clamp simulated signal strengths.
	MinRSSI = -95.0
	MaxRSSI = -40.0
)

// degradeOnsetRSSI is where rate begins to fall; above it the link runs at
// its base rate.
const degradeOnsetRSSI = -70.0

// Link models one radio path.
type Link struct {
	Kind LinkKind
	// BaseRateMBps is the goodput at strong signal, in megabytes/second.
	BaseRateMBps float64
	// BaseTXW / BaseRXW are interface powers at strong signal.
	BaseTXW float64
	BaseRXW float64
	// IdleW is the interface idle (connected, not transferring) power.
	IdleW float64
	// RTTSeconds is the round-trip latency of the path at strong signal
	// (for WLAN this includes AP and WAN hops to the server).
	RTTSeconds float64
}

// WiFi returns the wireless-LAN link profile (802.11ac-class through an AP,
// then a metro WAN hop to the cloud server).
func WiFi() *Link {
	return &Link{
		Kind:         WLAN,
		BaseRateMBps: 7,
		BaseTXW:      2.20,
		BaseRXW:      1.60,
		IdleW:        0.50,
		RTTSeconds:   0.016,
	}
}

// WiFiDirect returns the peer-to-peer link profile between the phone and the
// locally connected tablet.
func WiFiDirect() *Link {
	return &Link{
		Kind:         P2P,
		BaseRateMBps: 12,
		BaseTXW:      1.60,
		BaseRXW:      1.20,
		IdleW:        0.35,
		RTTSeconds:   0.004,
	}
}

// RateFactor returns the rate multiplier (0,1] at signal strength rssi:
// 1 above the degradation onset, then an exponential fall of one halving per
// 6 dB, which yields roughly a 10x slowdown at -90 dBm — the "exponential
// increase in transmission latency at weak signal" of the paper.
func RateFactor(rssi float64) float64 {
	rssi = clampRSSI(rssi)
	if rssi >= degradeOnsetRSSI {
		return 1
	}
	return math.Exp2((rssi - degradeOnsetRSSI) / 6)
}

// RateMBps returns the link goodput at the given signal strength.
func (l *Link) RateMBps(rssi float64) float64 { return l.BaseRateMBps * RateFactor(rssi) }

// TXPowerW returns the interface transmit power at the given signal
// strength: the radio raises its output (and retries more) as the signal
// weakens, up to roughly 2.2x at the floor.
func (l *Link) TXPowerW(rssi float64) float64 {
	rssi = clampRSSI(rssi)
	excess := math.Max(0, degradeOnsetRSSI-rssi)
	return l.BaseTXW * (1 + 1.2*excess/(degradeOnsetRSSI-MinRSSI))
}

// RXPowerW returns the interface receive power at the given signal strength;
// reception pays a milder weak-signal penalty than transmission.
func (l *Link) RXPowerW(rssi float64) float64 {
	rssi = clampRSSI(rssi)
	excess := math.Max(0, degradeOnsetRSSI-rssi)
	return l.BaseRXW * (1 + 0.5*excess/(degradeOnsetRSSI-MinRSSI))
}

// TransferSeconds returns the one-way time to move n bytes at the given
// signal strength, including half the path RTT.
func (l *Link) TransferSeconds(n float64, rssi float64) float64 {
	if n <= 0 {
		return l.RTTSeconds / 2
	}
	return n/(l.RateMBps(rssi)*1e6) + l.RTTSeconds/2
}

// Validate checks the profile invariants.
func (l *Link) Validate() error {
	if l.BaseRateMBps <= 0 || l.BaseTXW <= 0 || l.BaseRXW <= 0 || l.IdleW < 0 || l.RTTSeconds < 0 {
		return fmt.Errorf("radio: invalid %s link profile", l.Kind)
	}
	return nil
}

func clampRSSI(rssi float64) float64 {
	if rssi < MinRSSI {
		return MinRSSI
	}
	if rssi > MaxRSSI {
		return MaxRSSI
	}
	return rssi
}

// SignalProcess generates a signal-strength time series. The paper emulates
// random signal strength with a Gaussian distribution (Section V-B); Fixed
// processes model the static environments S1/S4/S5.
type SignalProcess interface {
	// Next returns the RSSI (dBm) observed at the next inference.
	Next() float64
}

// Fixed is a SignalProcess pinned to one RSSI value.
type Fixed float64

// Next returns the fixed RSSI.
func (f Fixed) Next() float64 { return clampRSSI(float64(f)) }

// Gaussian is a SignalProcess drawing i.i.d. normal samples, clamped to the
// physical RSSI range.
type Gaussian struct {
	Mean, StdDev float64
	rng          *exec.Rand
}

// NewGaussian creates a Gaussian RSSI process drawing from the context's
// "radio.rssi" stream.
func NewGaussian(mean, stddev float64, ctx *exec.Context) *Gaussian {
	return &Gaussian{Mean: mean, StdDev: stddev, rng: ctx.Stream("radio.rssi")}
}

// Next draws one RSSI sample.
func (g *Gaussian) Next() float64 {
	return clampRSSI(g.Mean + g.StdDev*g.rng.NormFloat64())
}
