package radio

import (
	"math"
	"testing"
	"testing/quick"

	"autoscale/internal/exec"
)

func TestLinksValidate(t *testing.T) {
	for _, l := range []*Link{WiFi(), WiFiDirect()} {
		if err := l.Validate(); err != nil {
			t.Errorf("%v: %v", l.Kind, err)
		}
	}
	bad := WiFi()
	bad.BaseRateMBps = 0
	if bad.Validate() == nil {
		t.Error("zero rate should fail")
	}
}

func TestRateFactorRegions(t *testing.T) {
	if RateFactor(-55) != 1 {
		t.Error("strong signal must run at full rate")
	}
	if RateFactor(-70) != 1 {
		t.Error("onset boundary must still be full rate")
	}
	// One halving per 6 dB below the onset.
	if got := RateFactor(-76); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("RateFactor(-76) = %v, want 0.5", got)
	}
	if got := RateFactor(-82); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("RateFactor(-82) = %v, want 0.25", got)
	}
	// Roughly 10x slowdown at -90 dBm, as the paper's model implies.
	if got := RateFactor(-90); got > 0.15 || got < 0.05 {
		t.Errorf("RateFactor(-90) = %v, want ~0.1", got)
	}
}

func TestRateFactorMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		fa, fb := RateFactor(a), RateFactor(b)
		return fa <= fb+1e-12 && fa > 0 && fb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTXPowerRisesAsSignalWeakens(t *testing.T) {
	l := WiFi()
	if got := l.TXPowerW(-55); got != l.BaseTXW {
		t.Errorf("strong-signal TX power = %v, want base %v", got, l.BaseTXW)
	}
	prev := 0.0
	for rssi := -40.0; rssi >= -95; rssi -= 5 {
		p := l.TXPowerW(rssi)
		if p < prev {
			t.Errorf("TX power decreased at %v dBm", rssi)
		}
		prev = p
	}
	// Roughly 2.2x at the floor.
	ratio := l.TXPowerW(MinRSSI) / l.BaseTXW
	if ratio < 2.0 || ratio > 2.4 {
		t.Errorf("floor TX ratio = %v, want ~2.2", ratio)
	}
	// RX pays a milder penalty than TX.
	rxRatio := l.RXPowerW(MinRSSI) / l.BaseRXW
	if rxRatio >= ratio {
		t.Errorf("RX penalty %v not milder than TX %v", rxRatio, ratio)
	}
}

func TestTransferSeconds(t *testing.T) {
	l := WiFi()
	// Zero/negative payloads still pay half the RTT.
	if got := l.TransferSeconds(0, -55); got != l.RTTSeconds/2 {
		t.Errorf("empty transfer = %v, want RTT/2", got)
	}
	strong := l.TransferSeconds(1e6, -55)
	weak := l.TransferSeconds(1e6, -88)
	if weak <= strong {
		t.Error("weak-signal transfer must be slower")
	}
	want := 1e6/(l.BaseRateMBps*1e6) + l.RTTSeconds/2
	if math.Abs(strong-want) > 1e-9 {
		t.Errorf("strong transfer = %v, want %v", strong, want)
	}
	// Monotone in payload size.
	if l.TransferSeconds(2e6, -55) <= strong {
		t.Error("transfer time must grow with payload")
	}
}

func TestWiFiDirectFasterSetup(t *testing.T) {
	// The P2P path has lower RTT than the WAN path.
	if WiFiDirect().RTTSeconds >= WiFi().RTTSeconds {
		t.Error("Wi-Fi Direct RTT must be below the WAN RTT")
	}
}

func TestFixedSignal(t *testing.T) {
	if Fixed(-60).Next() != -60 {
		t.Error("fixed signal must return its value")
	}
	if Fixed(-200).Next() != MinRSSI {
		t.Error("fixed signal must clamp to the floor")
	}
	if Fixed(0).Next() != MaxRSSI {
		t.Error("fixed signal must clamp to the ceiling")
	}
}

func TestGaussianSignal(t *testing.T) {
	g := NewGaussian(-70, 8, exec.NewRoot(3))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := g.Next()
		if v < MinRSSI || v > MaxRSSI {
			t.Fatalf("sample %v out of range", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-(-70)) > 1.5 {
		t.Errorf("sample mean = %v, want ~-70", mean)
	}
	// Determinism per seed.
	a := NewGaussian(-70, 8, exec.NewRoot(9))
	b := NewGaussian(-70, 8, exec.NewRoot(9))
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must reproduce the sequence")
		}
	}
}

func TestWeakThresholdConsistency(t *testing.T) {
	// The Table I weak boundary must lie inside the degradation region.
	if WeakThresholdRSSI >= degradeOnsetRSSI {
		t.Error("weak threshold must be below the degradation onset")
	}
	if RateFactor(WeakRSSI) >= RateFactor(WeakThresholdRSSI) {
		t.Error("representative weak point must be slower than the boundary")
	}
}

func TestLinkKindString(t *testing.T) {
	if WLAN.String() != "WLAN" || P2P.String() != "P2P" {
		t.Error("link kind names wrong")
	}
	if LinkKind(7).String() == "" {
		t.Error("out-of-range stringer must not be empty")
	}
}
