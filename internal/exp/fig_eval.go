package exp

import (
	"fmt"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// The evaluation figures are decomposed into pure cells — one per
// (world, policy) evaluation — so they parallelize on the harness pool.
// Every cell builds its own sim.World (and, for AutoScale, its own engines)
// from seeds derived of the Options, which keeps each cell's result
// independent of scheduling; the table rows are assembled from the merged
// results in a fixed order.

// newLOO builds the standard leave-one-out AutoScale policy for a world.
func newLOO(w *sim.World, opts Options, intensity sim.Intensity, accuracy float64) *LeaveOneOutAutoScale {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.RL.Seed = opts.Seed + 100
	return &LeaveOneOutAutoScale{
		World:  w,
		Config: cfg,
		Train: TrainConfig{
			Models:       dnn.Zoo(),
			RunsPerState: opts.TrainRuns,
			Intensity:    intensity,
			Accuracy:     accuracy,
			Seed:         opts.Seed + 200,
		},
	}
}

// Fig9 reproduces Fig 9: average normalized energy efficiency and QoS
// violation ratio of AutoScale against the four baselines, MOSAIC and
// NeuroSurgeon, and Opt, per device, in the static environments
// (non-streaming scenario).
func Fig9(opts Options) (*Table, error) {
	return figBaselines("fig9", sim.NonStreaming, opts)
}

// Fig10 reproduces Fig 10: the same comparison under the streaming scenario
// (30 FPS frame budget) where inference intensity rises.
func Fig10(opts Options) (*Table, error) {
	return figBaselines("fig10", sim.Streaming, opts)
}

func figBaselines(id string, intensity sim.Intensity, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("AutoScale vs baselines and prior work, static environments (%s)", intensity),
		Columns: []string{"Device", "Policy", "PPW (vs Edge CPU)", "QoS violation"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)
	order := []string{"Edge (CPU FP32)", "Edge (Best)", "Cloud", "Connected Edge",
		"MOSAIC", "NeuroSurgeon", "AutoScale", "Opt"}
	makePolicy := func(w *sim.World, name string) sched.Policy {
		switch name {
		case "Edge (CPU FP32)":
			return sched.EdgeCPU{World: w}
		case "Edge (Best)":
			return &sched.EdgeBest{World: w, Intensity: intensity}
		case "Cloud":
			return sched.CloudAll{World: w}
		case "Connected Edge":
			return &sched.ConnectedEdge{World: w, Intensity: intensity}
		case "MOSAIC":
			return &sched.MOSAIC{World: w, Intensity: intensity}
		case "NeuroSurgeon":
			return &sched.NeuroSurgeon{World: w, Intensity: intensity}
		case "AutoScale":
			return newLOO(w, opts, intensity, 0)
		default:
			return sched.Opt{World: w, Intensity: intensity}
		}
	}
	numDevices := len(soc.Phones())
	results, err := runCells(opts, numDevices*len(order), func(i int) (Result, error) {
		di, pi := i/len(order), i%len(order)
		w := sim.NewWorld(soc.Phones()[di], opts.Seed+int64(di))
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Intensity: intensity, Seed: opts.Seed + 10 + int64(di), WarmupRuns: opts.Warmup}
		return EvaluatePolicy(makePolicy(w, order[pi]), cfg)
	})
	if err != nil {
		return nil, err
	}
	for di, dev := range soc.Phones() {
		base := results[di*len(order)] // Edge (CPU FP32) normalizer
		for pi, name := range order {
			r := results[di*len(order)+pi]
			t.AddRow(dev.Name, name, r.MeanNormPPW(base, cells), r.MeanQoSViolation(cells))
		}
	}
	t.Notes = append(t.Notes,
		"paper (non-streaming): AutoScale improves 9.8x/2.3x/1.6x/2.7x over Edge CPU/Edge Best/"+
			"Cloud/Connected Edge, 1.9x over MOSAIC, 1.2x over NeuroSurgeon, within 3.2% of Opt")
	return t, nil
}

// Fig11 reproduces Fig 11: per-environment (S1-S5, D1-D4) normalized PPW and
// QoS violation ratio of AutoScale against the baselines and Opt.
func Fig11(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig11",
		Title:   "Adaptability to stochastic variance per environment (Mi8Pro)",
		Columns: []string{"Env", "Policy", "PPW (vs Edge CPU)", "QoS violation"},
	}
	models := dnn.Zoo()
	order := []string{"Edge (CPU FP32)", "Edge (Best)", "Cloud", "Connected Edge", "AutoScale", "Opt"}
	makePolicy := func(w *sim.World, name string) sched.Policy {
		switch name {
		case "Edge (CPU FP32)":
			return sched.EdgeCPU{World: w}
		case "Edge (Best)":
			return &sched.EdgeBest{World: w}
		case "Cloud":
			return sched.CloudAll{World: w}
		case "Connected Edge":
			return &sched.ConnectedEdge{World: w}
		case "AutoScale":
			return newLOO(w, opts, sim.NonStreaming, 0)
		default:
			return sched.Opt{World: w}
		}
	}
	results, err := runCells(opts, len(order), func(i int) (Result, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		cfg := EvalConfig{Models: models, EnvIDs: sim.AllEnvIDs(), Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		return EvaluatePolicy(makePolicy(w, order[i]), cfg)
	})
	if err != nil {
		return nil, err
	}
	base := results[0]
	for _, env := range sim.AllEnvIDs() {
		cells := Cells(models, []string{env})
		for pi, name := range order {
			r := results[pi]
			t.AddRow(env, name, r.MeanNormPPW(base, cells), r.MeanQoSViolation(cells))
		}
	}
	t.Notes = append(t.Notes,
		"paper: across environments AutoScale improves 10.7x/2.2x/1.4x/3.2x over "+
			"Edge CPU/Edge Best/Cloud/Connected Edge with a QoS violation ratio similar to Opt")
	return t, nil
}

// Fig12 reproduces Fig 12: AutoScale under different inference accuracy
// targets (none, 50%, 65%, 70%).
func Fig12(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig12",
		Title:   "Adaptability to inference quality targets (Mi8Pro)",
		Columns: []string{"Accuracy target", "Policy", "PPW (vs Edge CPU)", "QoS violation"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)
	accs := []float64{0, 50, 65, 70}
	order := []string{"Edge (CPU FP32)", "AutoScale", "Opt"}
	results, err := runCells(opts, len(accs)*len(order), func(i int) (Result, error) {
		acc := accs[i/len(order)]
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs, Accuracy: acc,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		var p sched.Policy
		switch order[i%len(order)] {
		case "Edge (CPU FP32)":
			p = sched.EdgeCPU{World: w}
		case "AutoScale":
			p = newLOO(w, opts, sim.NonStreaming, acc)
		default:
			p = sched.Opt{World: w, Accuracy: acc}
		}
		return EvaluatePolicy(p, cfg)
	})
	if err != nil {
		return nil, err
	}
	for ai, acc := range accs {
		label := "none"
		if acc > 0 {
			label = fmt.Sprintf("%.0f%%", acc)
		}
		base := results[ai*len(order)]
		as := results[ai*len(order)+1]
		opt := results[ai*len(order)+2]
		t.AddRow(label, "AutoScale", as.MeanNormPPW(base, cells), as.MeanQoSViolation(cells))
		t.AddRow(label, "Opt", opt.MeanNormPPW(base, cells), opt.MeanQoSViolation(cells))
	}
	t.Notes = append(t.Notes,
		"paper: higher accuracy targets forbid low-precision on-device targets, slightly "+
			"degrading PPW and QoS; below 50% the optimum no longer changes")
	return t, nil
}

// Fig13 reproduces Fig 13: the execution-location decision breakdown of
// AutoScale versus Opt per device, AutoScale's prediction accuracy, and the
// S4/D2 drill-downs quoted in the text. One cell per device: the scopes
// share the device's leave-one-out engines (which keep adapting online
// across scopes), so they stay sequential inside the cell.
func Fig13(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig13",
		Title:   "Decision breakdown and prediction accuracy",
		Columns: []string{"Device", "Scope", "Policy", "local", "connected", "cloud", "Pred acc (%)"},
	}
	models := dnn.Zoo()
	numDevices := len(soc.Phones())
	rowsPerDevice, err := runCells(opts, numDevices, func(i int) ([][]interface{}, error) {
		dev := soc.Phones()[i]
		w := sim.NewWorld(dev, opts.Seed+int64(i))
		loo := newLOO(w, opts, sim.NonStreaming, 0)
		scopes := []struct {
			label string
			envs  []string
		}{
			{"static", sim.StaticEnvIDs()},
			{"S4", []string{sim.EnvS4}},
			{"D2", []string{sim.EnvD2}},
		}
		var rows [][]interface{}
		for _, sc := range scopes {
			if dev.Name != "Mi8Pro" && sc.label != "static" {
				continue // the paper's drill-downs are single-device
			}
			cfg := EvalConfig{Models: models, EnvIDs: sc.envs, Runs: opts.Runs,
				Seed: opts.Seed + 20 + int64(i), WarmupRuns: opts.Warmup}
			asRes, err := EvaluatePolicy(loo, cfg)
			if err != nil {
				return nil, err
			}
			optRes, err := EvaluatePolicy(sched.Opt{World: w}, cfg)
			if err != nil {
				return nil, err
			}
			acc, err := predictionAccuracy(w, loo, models, sc.envs, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, []interface{}{dev.Name, sc.label, "AutoScale",
				share(asRes, sim.Local), share(asRes, sim.Connected), share(asRes, sim.Cloud), acc * 100})
			rows = append(rows, []interface{}{dev.Name, sc.label, "Opt",
				share(optRes, sim.Local), share(optRes, sim.Connected), share(optRes, sim.Cloud), "-"})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsPerDevice {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"paper: 97.9% average prediction accuracy; under weak Wi-Fi (S4) AutoScale selects "+
			"on-device 69.1% / connected 30.7% / cloud 0.2%; with a web browser (D2) cloud 46.1% / "+
			"connected 35.3% / on-device 18.6%")
	return t, nil
}

func share(r Result, loc sim.Location) float64 {
	if r.Inferences == 0 {
		return 0
	}
	return float64(r.Decisions[loc]) / float64(r.Inferences)
}

// predictionAccuracy compares the engine's greedy decision with Opt over
// fresh samples at the granularity Fig 13 plots — the execution target
// (location, engine, precision), not the exact DVFS step: a prediction is
// correct when it picks the oracle's engine, or a different engine within
// 10% of the oracle's energy while satisfying QoS. (The paper counts
// mis-predictions only when the energy difference exceeds 1%; its Renergy
// estimator resolves finer differences than ours, so the tolerance here
// matches the simulator's own noise floor — measurement noise plus the 7.3%
// estimator MAPE.)
func predictionAccuracy(w *sim.World, loo *LeaveOneOutAutoScale, models []*dnn.Model, envIDs []string, opts Options) (float64, error) {
	var correct, total int
	for _, m := range models {
		e, err := loo.EngineFor(m)
		if err != nil {
			return 0, err
		}
		qos := sim.QoSFor(m.Task == dnn.Translation, sim.NonStreaming)
		for _, envID := range envIDs {
			env, err := sim.NewEnvironment(envID, opts.Seed+300)
			if err != nil {
				return 0, err
			}
			for i := 0; i < opts.Runs/2+1; i++ {
				c := env.Sample()
				pred, err := e.Predict(m, c)
				if err != nil {
					return 0, err
				}
				opt, optMeas, err := w.BestTarget(m, c, qos, 0)
				if err != nil {
					return 0, err
				}
				total++
				if pred.Location == opt.Location && pred.Kind == opt.Kind && pred.Prec == opt.Prec {
					correct++
					continue
				}
				meas, err := w.Expected(m, pred, c)
				if err != nil {
					return 0, err
				}
				if optMeas.EnergyJ > 0 && meas.EnergyJ <= optMeas.EnergyJ*1.10 && meas.LatencyS <= qos*1.05 {
					correct++
				}
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("exp: no prediction samples")
	}
	return float64(correct) / float64(total), nil
}
