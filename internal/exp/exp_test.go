package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func tinyOpts() Options {
	return Options{Seed: 7, Runs: 8, TrainRuns: 4, Warmup: 6}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"tableI", "tableII", "tableIII", "tableIV"} {
		tab, err := Run(id, tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
		if !strings.Contains(tab.String(), tab.Title) {
			t.Errorf("%s rendering lacks the title", id)
		}
	}
}

func TestTableIContent(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != core.NumFeatures {
		t.Errorf("Table I rows = %d, want %d", len(tab.Rows), core.NumFeatures)
	}
	if !strings.Contains(tab.Notes[0], "3,072") {
		t.Error("Table I must note the paper's state-space size")
	}
}

func TestTableIIIContent(t *testing.T) {
	tab := TableIII()
	if len(tab.Rows) != 10 {
		t.Errorf("Table III rows = %d, want 10", len(tab.Rows))
	}
}

func TestTableIVContent(t *testing.T) {
	tab := TableIV()
	if len(tab.Rows) != 9 {
		t.Errorf("Table IV rows = %d, want 9", len(tab.Rows))
	}
}

func TestCharacterizationFigures(t *testing.T) {
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5", "fig6"} {
		tab, err := Run(id, tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Inception v1 total improves on co-processors; MobileNet v3 degrades.
	find := func(nn, proc string) float64 {
		for _, r := range tab.Rows {
			if r[0] == nn && strings.HasPrefix(r[1], proc) {
				v, err := strconv.ParseFloat(r[5], 64)
				if err != nil {
					t.Fatalf("parse %q: %v", r[5], err)
				}
				return v
			}
		}
		t.Fatalf("row %s/%s missing", nn, proc)
		return 0
	}
	if find("Inception v1", "GPU") >= 1 || find("Inception v1", "DSP") >= 1 {
		t.Error("Inception v1 must speed up on co-processors (Fig 3)")
	}
	if find("MobileNet v3", "GPU") <= 1 {
		t.Error("MobileNet v3 must slow down on the GPU (Fig 3)")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 25 {
		t.Errorf("registry has %d experiments, want 25", len(ids))
	}
	// Tables come first, figures in numeric order.
	if !strings.HasPrefix(ids[0], "table") {
		t.Errorf("first ID %s, want a table", ids[0])
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate ID %s", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"fig2", "fig9", "fig14", "ablation"} {
		if !seen[want] {
			t.Errorf("registry lacks %s", want)
		}
	}
	if _, err := Run("fig99", tinyOpts()); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestEvaluatePolicy(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	models := []*dnn.Model{dnn.MustByName("MobileNet v1"), dnn.MustByName("MobileBERT")}
	cfg := EvalConfig{Models: models, EnvIDs: []string{sim.EnvS1, sim.EnvS4}, Runs: 10, Seed: 3}
	res, err := EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferences != 2*2*10 {
		t.Errorf("inferences = %d, want 40", res.Inferences)
	}
	cells := Cells(models, cfg.EnvIDs)
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if res.MeanEnergyJ[c] <= 0 || res.MeanLatencyS[c] <= 0 {
			t.Errorf("cell %v lacks measurements", c)
		}
		if v := res.QoSViolRatio[c]; v < 0 || v > 1 {
			t.Errorf("cell %v violation ratio %v", c, v)
		}
	}
	// Normalizing against itself yields 1.
	if got := res.MeanNormPPW(res, cells); got != 1 {
		t.Errorf("self-normalized PPW = %v, want 1", got)
	}
	if res.Decisions[sim.Local] != res.Inferences {
		t.Error("EdgeCPU decisions must all be local")
	}
}

func TestVarianceGrid(t *testing.T) {
	grid := VarianceGrid()
	if len(grid) != 64 {
		t.Fatalf("variance grid = %d states, want 64 (4x4x2x2)", len(grid))
	}
	seen := map[VarianceState]bool{}
	for _, v := range grid {
		if seen[v] {
			t.Error("duplicate grid point")
		}
		seen[v] = true
	}
}

func TestVarianceStateConditions(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	_ = w
	states := core.NewStateSpace()
	// Every grid point must land in its intended variance bins.
	for _, vs := range VarianceGrid() {
		c := vs.Conditions(exec.NewRoot(1).Stream("test"))
		o := core.ObservationOf(dnn.MustByName("MobileNet v1"), c)
		key := string(states.Key(o))
		_ = key
		if vs.CoCPU == 0 && c.Load.CPUUtil != 0 {
			t.Error("zero CPU level must stay exactly zero")
		}
		if c.Load.CPUUtil < 0 || c.Load.CPUUtil > 1 {
			t.Errorf("jittered CPU load out of range: %v", c.Load.CPUUtil)
		}
	}
}

func TestTrainEngineAndPolicy(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 2)
	cfg := core.DefaultConfig()
	models := []*dnn.Model{dnn.MustByName("MobileNet v1"), dnn.MustByName("Inception v1")}
	e, err := NewTrainedEngine(w, cfg, TrainConfig{Models: models, RunsPerState: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Agent().States()) == 0 {
		t.Error("training materialized no states")
	}
	pol := &AutoScalePolicy{Engine: e}
	if pol.Name() != "AutoScale" {
		t.Error("policy name wrong")
	}
	meas, err := pol.Run(models[0], sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55})
	if err != nil {
		t.Fatal(err)
	}
	if meas.LatencyS <= 0 {
		t.Error("policy produced no measurement")
	}
	labeled := &AutoScalePolicy{Engine: e, Label: "AutoScale (custom)"}
	if labeled.Name() != "AutoScale (custom)" {
		t.Error("label override broken")
	}
}

func TestLeaveOneOutBuildsPerModelEngines(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 3)
	loo := &LeaveOneOutAutoScale{
		World:  w,
		Config: core.DefaultConfig(),
		Train:  TrainConfig{Models: dnn.Zoo()[:3], RunsPerState: 2, Seed: 9},
	}
	m0, m1 := dnn.Zoo()[0], dnn.Zoo()[1]
	e0, err := loo.EngineFor(m0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := loo.EngineFor(m1)
	if err != nil {
		t.Fatal(err)
	}
	if e0 == e1 {
		t.Error("each held-out model needs its own engine")
	}
	again, _ := loo.EngineFor(m0)
	if again != e0 {
		t.Error("engines must be cached")
	}
	if _, err := loo.Run(m0, sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}); err != nil {
		t.Fatal(err)
	}
	// A single-model training set cannot leave one out.
	bad := &LeaveOneOutAutoScale{
		World:  w,
		Config: core.DefaultConfig(),
		Train:  TrainConfig{Models: []*dnn.Model{m0}, RunsPerState: 1},
	}
	if _, err := bad.EngineFor(m0); err == nil {
		t.Error("empty leave-one-out training set should fail")
	}
}

func TestBaselinesList(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	ps := Baselines(w, sim.NonStreaming, 0)
	if len(ps) != 5 {
		t.Fatalf("baselines = %d, want 5", len(ps))
	}
	want := []string{"Edge (CPU FP32)", "Edge (Best)", "Cloud", "Connected Edge", "Opt"}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Errorf("baseline %d = %s, want %s", i, p.Name(), want[i])
		}
	}
}

func TestPhoneWorlds(t *testing.T) {
	ws := PhoneWorlds(1)
	if len(ws) != 3 {
		t.Fatalf("PhoneWorlds = %d", len(ws))
	}
	if ws[0].Device.Name != "Mi8Pro" || ws[2].Device.Name != "MotoXForce" {
		t.Error("device order wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow(1.23456, "hello")
	tab.Notes = append(tab.Notes, "a note")
	out := tab.String()
	for _, want := range []string{"== x: T ==", "hello", "note: a note", "1.23"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 100 || o.TrainRuns != 100 || o.Warmup != 60 || o.Seed != 42 {
		t.Errorf("defaults = %+v", o)
	}
	q := Quick(5)
	if q.Runs >= o.Runs || q.TrainRuns >= o.TrainRuns {
		t.Error("Quick must be cheaper than the defaults")
	}
}

func TestExtensionExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments are slow")
	}
	for _, id := range []string{"ext-npu", "ext-partition", "ext-sarsa", "ext-outage", "ext-links", "ext-actions"} {
		tab, err := Run(id, tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
	}
}

func TestFig14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig14 trains a full donor")
	}
	tab, err := Run("fig14", Options{Seed: 3, Runs: 5, TrainRuns: 5, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Errorf("fig14 rows = %d, want 12", len(tab.Rows))
	}
}

// TestExtensionPlanSmoke drives the capacity-planning drill: six rows
// (static/planned x gold/silver/best), with the planned fleet attaining
// every SLO target and the static fleet missing gold's.
func TestExtensionPlanSmoke(t *testing.T) {
	tab, err := Run("ext-plan", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("ext-plan rows = %d, want 6:\n%v", len(tab.Rows), tab.Rows)
	}
	attained := map[string]string{}
	for _, row := range tab.Rows {
		attained[row[0]+"/"+row[1]] = row[4]
	}
	if attained["planned/gold"] != "true" {
		t.Errorf("planned gold not attained: %v", tab.Rows)
	}
	if attained["static/gold"] != "false" {
		t.Errorf("static gold unexpectedly attained: %v", tab.Rows)
	}
}

func TestConvergePoint(t *testing.T) {
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 1.0
	}
	if got := convergePoint(flat); got != 1 {
		t.Errorf("flat series converges at %d, want 1", got)
	}
	// A series that drops into the band at run 50.
	series := make([]float64, 100)
	for i := range series {
		if i < 50 {
			series[i] = 3.0
		} else {
			series[i] = 1.0
		}
	}
	// The 15-wide median window crosses into the band once a majority of
	// the window sits past the step, a few runs before run 50.
	got := convergePoint(series)
	if got < 40 || got > 55 {
		t.Errorf("step series converges at %d, want ~44-50", got)
	}
	// Exploration spikes are ignored by the median window.
	for i := 55; i < 100; i += 10 {
		series[i] = 5.0
	}
	if got := convergePoint(series); got < 40 || got > 60 {
		t.Errorf("spiky series converges at %d, want ~44-55", got)
	}
	// Short series converge trivially at their length.
	if got := convergePoint([]float64{1, 2}); got != 2 {
		t.Errorf("short series = %d", got)
	}
}

func TestShare(t *testing.T) {
	r := Result{Decisions: map[sim.Location]int{sim.Local: 3, sim.Cloud: 1}, Inferences: 4}
	if share(r, sim.Local) != 0.75 || share(r, sim.Cloud) != 0.25 {
		t.Error("share fractions wrong")
	}
	if share(Result{}, sim.Local) != 0 {
		t.Error("empty result share must be 0")
	}
}

func TestEvaluationFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation figures train engines")
	}
	micro := Options{Seed: 11, Runs: 3, TrainRuns: 2, Warmup: 2}
	for _, id := range []string{"fig9", "fig10", "fig11", "fig12", "fig13"} {
		tab, err := Run(id, micro)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
		// Every numeric PPW cell must parse and be positive.
		for _, row := range tab.Rows {
			if v, err := strconv.ParseFloat(row[len(row)-2], 64); err == nil && v < 0 {
				t.Errorf("%s has negative PPW row %v", id, row)
			}
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 trains five predictors per fold")
	}
	tab, err := Run("fig7", Options{Seed: 12, Runs: 3, TrainRuns: 2, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Edge (CPU) + 5 approaches + Opt.
	if len(tab.Rows) != 7 {
		t.Errorf("fig7 rows = %d, want 7", len(tab.Rows))
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation trains nine engine sets")
	}
	tab, err := Run("ablation", Options{Seed: 13, Runs: 2, TrainRuns: 2, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	// (none) + 8 features.
	if len(tab.Rows) != 9 {
		t.Errorf("ablation rows = %d, want 9", len(tab.Rows))
	}
}

func TestRunCells(t *testing.T) {
	opts := tinyOpts().withDefaults()
	// Results come back in submission order regardless of scheduling.
	got, err := runCells(opts, 16, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("cell %d = %d, want %d", i, v, i*i)
		}
	}
	// Errors surface; Parallel=1 serializes without deadlocking.
	opts = Options{Seed: 1, Runs: 1, TrainRuns: 1, Warmup: 1, Parallel: 1}.withDefaults()
	_, err = runCells(opts, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, strconv.ErrRange
		}
		return i, nil
	})
	if err == nil {
		t.Error("cell error must propagate")
	}
}

func TestRunAllOrderAndErrors(t *testing.T) {
	outs := RunAll([]string{"tableI", "fig99", "tableII"}, tinyOpts())
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	if outs[0].ID != "tableI" || outs[0].Err != nil || outs[0].Table == nil {
		t.Errorf("tableI outcome broken: %+v", outs[0])
	}
	if outs[1].Err == nil {
		t.Error("unknown experiment must fail")
	}
	if outs[2].ID != "tableII" || outs[2].Err != nil {
		t.Errorf("tableII outcome broken: %+v", outs[2])
	}
}

func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("trains leave-one-out engines")
	}
	// The acceptance bar of the parallel harness: the same experiment at
	// Parallel=1 and Parallel=8 renders byte-identical tables.
	micro := Options{Seed: 11, Runs: 3, TrainRuns: 2, Warmup: 2}
	for _, id := range []string{"fig9", "fig7"} {
		serialOpts := micro
		serialOpts.Parallel = 1
		serial, err := Run(id, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := micro
		parOpts.Parallel = 8
		parallel, err := Run(id, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		if serial.String() != parallel.String() {
			t.Errorf("%s differs between Parallel=1 and Parallel=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "x,y"}, {"2", "z"}}}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestDeterministicOutput(t *testing.T) {
	// The reproducibility promise: same seed, same table.
	a, err := Run("fig3", Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig3", Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("fig3 is not deterministic for a fixed seed")
	}
	c, err := Run("fig5", Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run("fig5", Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != d.String() {
		t.Error("fig5 is not deterministic for a fixed seed")
	}
}
