package exp

import (
	"fmt"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/radio"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Extension experiments: studies the paper sketches but does not run.

// ExtensionNPU evaluates the Section V-C extension note — adding a mobile
// NPU and a cloud TPU to the action space — by comparing the standard
// Mi8Pro world against an augmented one under Opt and AutoScale.
func ExtensionNPU(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-npu",
		Title:   "Extension: mobile NPU and cloud TPU actions (Section V-C note)",
		Columns: []string{"World", "Policy", "PPW (vs Edge CPU)", "QoS violation", "Actions"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)

	worlds := []struct {
		label string
		world *sim.World
	}{
		{"standard", sim.NewWorld(soc.Mi8Pro(), opts.Seed)},
		{"NPU+TPU", npuWorld(opts.Seed)},
	}
	for _, wc := range worlds {
		w := wc.world
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
		if err != nil {
			return nil, err
		}
		as, err := EvaluatePolicy(newLOOWorld(w, opts), cfg)
		if err != nil {
			return nil, err
		}
		opt, err := EvaluatePolicy(sched.Opt{World: w}, cfg)
		if err != nil {
			return nil, err
		}
		actions := core.NewActionSpace(w).Len()
		t.AddRow(wc.label, "AutoScale", as.MeanNormPPW(base, cells), as.MeanQoSViolation(cells), actions)
		t.AddRow(wc.label, "Opt", opt.MeanNormPPW(base, cells), opt.MeanQoSViolation(cells), actions)
	}
	t.Notes = append(t.Notes,
		"paper (Section V-C): \"additional actions, such as mobile NPU or cloud TPU, could be "+
			"further considered\"; the NPU/TPU engines are hypothetical profiles (DESIGN.md)")
	return t, nil
}

// npuWorld builds the augmented world: NPU-equipped phone, TPU-equipped
// cloud.
func npuWorld(seed int64) *sim.World {
	w := sim.NewWorld(soc.Mi8ProNPU(), seed)
	w.Server = soc.CloudServerTPU()
	return w
}

// newLOOWorld is newLOO against an explicit world.
func newLOOWorld(w *sim.World, opts Options) *LeaveOneOutAutoScale {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.RL.Seed = opts.Seed + 100
	return &LeaveOneOutAutoScale{
		World:  w,
		Config: cfg,
		Train: TrainConfig{
			Models:       dnn.Zoo(),
			RunsPerState: opts.TrainRuns,
			Seed:         opts.Seed + 200,
		},
	}
}

// ExtensionSARSA compares the paper's Q-learning against the on-policy
// SARSA alternative it weighs in Section IV, on the standard Mi8Pro world.
func ExtensionSARSA(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-sarsa",
		Title:   "Extension: Q-learning vs SARSA update rule (Section IV design choice)",
		Columns: []string{"Algorithm", "PPW (vs Edge CPU)", "QoS violation"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)
	w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)

	cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
		Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
	base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
	if err != nil {
		return nil, err
	}
	for _, alg := range []core.Algorithm{core.AlgorithmQLearning, core.AlgorithmSARSA} {
		loo := newLOOWorld(w, opts)
		loo.Config.Algorithm = alg
		res, err := EvaluatePolicy(loo, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(alg.String(), res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells))
	}
	opt, err := EvaluatePolicy(sched.Opt{World: w}, cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("Opt", opt.MeanNormPPW(base, cells), opt.MeanQoSViolation(cells))
	t.Notes = append(t.Notes,
		"the paper picks Q-learning over TD alternatives for lookup-table latency (Section IV); "+
			"both rules share the table, so the overhead is identical and only policy quality differs")
	return t, nil
}

// ExtensionPartition evaluates the paper's footnote 4 extension — layer-
// granularity partition actions on top of AutoScale — against the plain
// engine, the NeuroSurgeon comparator and Opt (which searches whole-model
// targets only).
func ExtensionPartition(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-partition",
		Title:   "Extension: partition actions on top of AutoScale (footnote 4)",
		Columns: []string{"Policy", "PPW (vs Edge CPU)", "QoS violation", "Actions"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)
	w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)

	cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
		Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
	base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
	if err != nil {
		return nil, err
	}
	for _, withPartitions := range []bool{false, true} {
		loo := newLOOWorld(w, opts)
		loo.Config.PartitionActions = withPartitions
		res, err := EvaluatePolicy(loo, cfg)
		if err != nil {
			return nil, err
		}
		label := "AutoScale"
		actions := core.NewActionSpace(w).Len()
		if withPartitions {
			label = "AutoScale+partition"
			actions = core.NewActionSpaceWithPartitions(w).Len()
		}
		t.AddRow(label, res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells), actions)
	}
	ns, err := EvaluatePolicy(&sched.NeuroSurgeon{World: w}, cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("NeuroSurgeon", ns.MeanNormPPW(base, cells), ns.MeanQoSViolation(cells), "-")
	opt, err := EvaluatePolicy(sched.Opt{World: w}, cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("Opt (whole-model)", opt.MeanNormPPW(base, cells), opt.MeanQoSViolation(cells), "-")
	t.Notes = append(t.Notes,
		"paper (footnote 4): \"model partitioning at layer granularity is complementary to and "+
			"can be applied on top of AutoScale\"; the Opt oracle searches whole-model targets only, "+
			"so AutoScale+partition can exceed it where a split genuinely wins")
	return t, nil
}

// ExtensionOutage evaluates robustness to offload failures: with a per-
// request outage probability on the radio links, blind cloud offloading pays
// the timeout-plus-fallback penalty while AutoScale learns from its realized
// rewards to hedge toward on-device execution — stochastic runtime variance
// beyond what the paper's state space captures.
func ExtensionOutage(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-outage",
		Title:   "Extension: offload-outage robustness (Mi8Pro, S1)",
		Columns: []string{"Outage prob", "Policy", "PPW (vs Edge CPU)", "QoS violation", "Offload share"},
	}
	models := dnn.Zoo()
	envs := []string{sim.EnvS1}
	cells := Cells(models, envs)
	for _, outage := range []float64{0, 0.10, 0.30} {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		w.OutageProb = outage
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
		if err != nil {
			return nil, err
		}
		for _, p := range []sched.Policy{
			sched.CloudAll{World: w},
			newLOOWorld(w, opts),
		} {
			res, err := EvaluatePolicy(p, cfg)
			if err != nil {
				return nil, err
			}
			offload := 1 - share(res, sim.Local)
			t.AddRow(outage, p.Name(), res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells), offload)
		}
	}
	t.Notes = append(t.Notes,
		"outages are invisible to the Table I state space; AutoScale still hedges because "+
			"failed offloads feed their timeout-plus-fallback cost into the reward")
	return t, nil
}

// ExtensionLinks evaluates the rest of Table I's radio taxonomy — LTE and
// 5G as the wide-area network (SRSSI_W covers "Wi-Fi, LTE, and 5G") and
// Bluetooth as the peer-to-peer link ("Bluetooth, Wi-Fi Direct") — by
// re-running the Mi8Pro evaluation with each backhaul combination.
func ExtensionLinks(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-links",
		Title:   "Extension: radio taxonomy of Table I (Mi8Pro, static envs)",
		Columns: []string{"WAN", "P2P", "Policy", "PPW (vs Edge CPU)", "QoS violation", "Offload share"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)
	combos := []struct {
		wanName string
		wan     *radio.Link
		p2pName string
		p2p     *radio.Link
	}{
		{"wifi", radio.WiFi(), "wifi-direct", radio.WiFiDirect()},
		{"lte", radio.LTE(), "wifi-direct", radio.WiFiDirect()},
		{"5g", radio.FiveG(), "wifi-direct", radio.WiFiDirect()},
		{"wifi", radio.WiFi(), "bluetooth", radio.Bluetooth()},
	}
	for _, combo := range combos {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		w.WiFi = combo.wan
		w.P2P = combo.p2p
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
		if err != nil {
			return nil, err
		}
		for _, p := range []sched.Policy{newLOOWorld(w, opts), sched.Opt{World: w}} {
			res, err := EvaluatePolicy(p, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(combo.wanName, combo.p2pName, p.Name(),
				res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells), 1-share(res, sim.Local))
		}
	}
	t.Notes = append(t.Notes,
		"cellular backhaul raises transmit power and (for LTE) cuts goodput, pulling the "+
			"optimum on-device for vision; Bluetooth keeps the connected edge viable only for "+
			"tiny payloads like MobileBERT's")
	return t, nil
}

// ExtensionActions ablates the action space itself: how much of the oracle's
// energy efficiency comes from each augmentation the paper adds — DVFS
// steps, quantization, and the offload paths (Section V-C builds the ~66
// actions from exactly these). Each row restricts the oracle's search to a
// subset of the full space.
func ExtensionActions(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-actions",
		Title:   "Extension: action-space ablation (oracle, Mi8Pro, static envs)",
		Columns: []string{"Action space", "PPW (vs Edge CPU)", "QoS violation"},
	}
	w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)

	filters := []struct {
		label string
		keep  func(w *sim.World, tgt sim.Target) bool
	}{
		{"full (paper)", func(*sim.World, sim.Target) bool { return true }},
		{"no DVFS (top steps only)", func(w *sim.World, tgt sim.Target) bool {
			if tgt.Location != sim.Local {
				return true
			}
			proc := w.Device.Processor(tgt.Kind)
			return tgt.Step == proc.Steps-1
		}},
		{"no quantization (FP32 only)", func(_ *sim.World, tgt sim.Target) bool {
			return tgt.Prec == dnn.FP32
		}},
		{"local only", func(_ *sim.World, tgt sim.Target) bool {
			return tgt.Location == sim.Local
		}},
		{"offload only", func(_ *sim.World, tgt sim.Target) bool {
			return tgt.Location != sim.Local
		}},
	}

	cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs, Seed: opts.Seed + 10}
	base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
	if err != nil {
		return nil, err
	}
	for _, f := range filters {
		pol := &restrictedOpt{world: w, keep: f.keep}
		res, err := EvaluatePolicy(pol, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(f.label, res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells))
	}
	t.Notes = append(t.Notes,
		"quantifies the paper's Section V-C augmentations: the oracle restricted to FP32 or "+
			"to local-only execution loses the wins that quantized engines and offloading provide")
	return t, nil
}

// restrictedOpt is the oracle limited to a target subset.
type restrictedOpt struct {
	world *sim.World
	keep  func(*sim.World, sim.Target) bool
}

// Name implements Policy.
func (p *restrictedOpt) Name() string { return "Opt (restricted)" }

// Run implements Policy: exhaustive expectation search over the kept subset,
// same selection rule as sim.World.BestTarget.
func (p *restrictedOpt) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	qos := sim.QoSFor(m.Task == dnn.Translation, sim.NonStreaming)
	var (
		best      sim.Target
		bestE     = -1.0
		fallback  sim.Target
		fbLatency = -1.0
	)
	for _, tgt := range p.world.Targets(m) {
		if !p.keep(p.world, tgt) {
			continue
		}
		meas, err := p.world.Expected(m, tgt, c)
		if err != nil {
			return sim.Measurement{}, err
		}
		if fbLatency < 0 || meas.LatencyS < fbLatency {
			fallback, fbLatency = tgt, meas.LatencyS
		}
		if meas.LatencyS > qos {
			continue
		}
		if bestE < 0 || meas.EnergyJ < bestE {
			best, bestE = tgt, meas.EnergyJ
		}
	}
	if bestE < 0 {
		if fbLatency < 0 {
			return sim.Measurement{}, fmt.Errorf("exp: restricted space has no target for %s", m.Name)
		}
		best = fallback
	}
	return p.world.Execute(m, best, c)
}
