package exp

import (
	"fmt"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/radio"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Extension experiments: studies the paper sketches but does not run. Like
// the evaluation figures, each (world, policy) evaluation is a pure cell on
// the harness pool: the cell builds its own (possibly modified) world and
// policy from the Options.

// ExtensionNPU evaluates the Section V-C extension note — adding a mobile
// NPU and a cloud TPU to the action space — by comparing the standard
// Mi8Pro world against an augmented one under Opt and AutoScale.
func ExtensionNPU(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-npu",
		Title:   "Extension: mobile NPU and cloud TPU actions (Section V-C note)",
		Columns: []string{"World", "Policy", "PPW (vs Edge CPU)", "QoS violation", "Actions"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)

	worldLabels := []string{"standard", "NPU+TPU"}
	makeWorld := func(label string) *sim.World {
		if label == "NPU+TPU" {
			return npuWorld(opts.Seed)
		}
		return sim.NewWorld(soc.Mi8Pro(), opts.Seed)
	}
	order := []string{"Edge (CPU FP32)", "AutoScale", "Opt"}
	results, err := runCells(opts, len(worldLabels)*len(order), func(i int) (Result, error) {
		w := makeWorld(worldLabels[i/len(order)])
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		var p sched.Policy
		switch order[i%len(order)] {
		case "Edge (CPU FP32)":
			p = sched.EdgeCPU{World: w}
		case "AutoScale":
			p = newLOOWorld(w, opts)
		default:
			p = sched.Opt{World: w}
		}
		return EvaluatePolicy(p, cfg)
	})
	if err != nil {
		return nil, err
	}
	for wi, label := range worldLabels {
		base := results[wi*len(order)]
		as := results[wi*len(order)+1]
		opt := results[wi*len(order)+2]
		actions := core.NewActionSpace(makeWorld(label)).Len()
		t.AddRow(label, "AutoScale", as.MeanNormPPW(base, cells), as.MeanQoSViolation(cells), actions)
		t.AddRow(label, "Opt", opt.MeanNormPPW(base, cells), opt.MeanQoSViolation(cells), actions)
	}
	t.Notes = append(t.Notes,
		"paper (Section V-C): \"additional actions, such as mobile NPU or cloud TPU, could be "+
			"further considered\"; the NPU/TPU engines are hypothetical profiles (DESIGN.md)")
	return t, nil
}

// npuWorld builds the augmented world: NPU-equipped phone, TPU-equipped
// cloud.
func npuWorld(seed int64) *sim.World {
	w := sim.NewWorld(soc.Mi8ProNPU(), seed)
	w.Server = soc.CloudServerTPU()
	return w
}

// newLOOWorld is newLOO against an explicit world.
func newLOOWorld(w *sim.World, opts Options) *LeaveOneOutAutoScale {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.RL.Seed = opts.Seed + 100
	return &LeaveOneOutAutoScale{
		World:  w,
		Config: cfg,
		Train: TrainConfig{
			Models:       dnn.Zoo(),
			RunsPerState: opts.TrainRuns,
			Seed:         opts.Seed + 200,
		},
	}
}

// ExtensionSARSA compares the paper's Q-learning against the on-policy
// SARSA alternative it weighs in Section IV, on the standard Mi8Pro world.
func ExtensionSARSA(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-sarsa",
		Title:   "Extension: Q-learning vs SARSA update rule (Section IV design choice)",
		Columns: []string{"Algorithm", "PPW (vs Edge CPU)", "QoS violation"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)

	algs := []core.Algorithm{core.AlgorithmQLearning, core.AlgorithmSARSA}
	// Cell 0: baseline; cells 1..len(algs): algorithms; last: Opt.
	results, err := runCells(opts, len(algs)+2, func(i int) (Result, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		var p sched.Policy
		switch {
		case i == 0:
			p = sched.EdgeCPU{World: w}
		case i <= len(algs):
			loo := newLOOWorld(w, opts)
			loo.Config.Algorithm = algs[i-1]
			p = loo
		default:
			p = sched.Opt{World: w}
		}
		return EvaluatePolicy(p, cfg)
	})
	if err != nil {
		return nil, err
	}
	base := results[0]
	for ai, alg := range algs {
		res := results[ai+1]
		t.AddRow(alg.String(), res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells))
	}
	opt := results[len(algs)+1]
	t.AddRow("Opt", opt.MeanNormPPW(base, cells), opt.MeanQoSViolation(cells))
	t.Notes = append(t.Notes,
		"the paper picks Q-learning over TD alternatives for lookup-table latency (Section IV); "+
			"both rules share the table, so the overhead is identical and only policy quality differs")
	return t, nil
}

// ExtensionPartition evaluates the paper's footnote 4 extension — layer-
// granularity partition actions on top of AutoScale — against the plain
// engine, the NeuroSurgeon comparator and Opt (which searches whole-model
// targets only).
func ExtensionPartition(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-partition",
		Title:   "Extension: partition actions on top of AutoScale (footnote 4)",
		Columns: []string{"Policy", "PPW (vs Edge CPU)", "QoS violation", "Actions"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)

	// Cells: baseline, AutoScale, AutoScale+partition, NeuroSurgeon, Opt.
	results, err := runCells(opts, 5, func(i int) (Result, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		var p sched.Policy
		switch i {
		case 0:
			p = sched.EdgeCPU{World: w}
		case 1, 2:
			loo := newLOOWorld(w, opts)
			loo.Config.PartitionActions = i == 2
			p = loo
		case 3:
			p = &sched.NeuroSurgeon{World: w}
		default:
			p = sched.Opt{World: w}
		}
		return EvaluatePolicy(p, cfg)
	})
	if err != nil {
		return nil, err
	}
	base := results[0]
	w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
	for i, label := range []string{"AutoScale", "AutoScale+partition"} {
		res := results[i+1]
		actions := core.NewActionSpace(w).Len()
		if i == 1 {
			actions = core.NewActionSpaceWithPartitions(w).Len()
		}
		t.AddRow(label, res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells), actions)
	}
	ns := results[3]
	t.AddRow("NeuroSurgeon", ns.MeanNormPPW(base, cells), ns.MeanQoSViolation(cells), "-")
	opt := results[4]
	t.AddRow("Opt (whole-model)", opt.MeanNormPPW(base, cells), opt.MeanQoSViolation(cells), "-")
	t.Notes = append(t.Notes,
		"paper (footnote 4): \"model partitioning at layer granularity is complementary to and "+
			"can be applied on top of AutoScale\"; the Opt oracle searches whole-model targets only, "+
			"so AutoScale+partition can exceed it where a split genuinely wins")
	return t, nil
}

// ExtensionOutage evaluates robustness to offload failures: with a per-
// request outage probability on the radio links, blind cloud offloading pays
// the timeout-plus-fallback penalty while AutoScale learns from its realized
// rewards to hedge toward on-device execution — stochastic runtime variance
// beyond what the paper's state space captures.
func ExtensionOutage(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-outage",
		Title:   "Extension: offload-outage robustness (Mi8Pro, S1)",
		Columns: []string{"Outage prob", "Policy", "PPW (vs Edge CPU)", "QoS violation", "Offload share"},
	}
	models := dnn.Zoo()
	envs := []string{sim.EnvS1}
	cells := Cells(models, envs)

	outages := []float64{0, 0.10, 0.30}
	order := []string{"Edge (CPU FP32)", "Cloud", "AutoScale"}
	results, err := runCells(opts, len(outages)*len(order), func(i int) (Result, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		w.OutageProb = outages[i/len(order)]
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		var p sched.Policy
		switch order[i%len(order)] {
		case "Edge (CPU FP32)":
			p = sched.EdgeCPU{World: w}
		case "Cloud":
			p = sched.CloudAll{World: w}
		default:
			p = newLOOWorld(w, opts)
		}
		return EvaluatePolicy(p, cfg)
	})
	if err != nil {
		return nil, err
	}
	for oi, outage := range outages {
		base := results[oi*len(order)]
		for pi := 1; pi < len(order); pi++ {
			res := results[oi*len(order)+pi]
			offload := 1 - share(res, sim.Local)
			t.AddRow(outage, res.Policy, res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells), offload)
		}
	}
	t.Notes = append(t.Notes,
		"outages are invisible to the Table I state space; AutoScale still hedges because "+
			"failed offloads feed their timeout-plus-fallback cost into the reward")
	return t, nil
}

// DefaultStorm is the built-in scripted fault schedule the ext-faults
// experiment (and tests) use when no schedule file is given: a Markov
// cloud outage burst, then a WLAN signal fade, then full recovery —
// time-correlated failure dynamics the Bernoulli OutageProb shim cannot
// express.
func DefaultStorm() *fault.Schedule {
	return &fault.Schedule{
		Name: "default-storm",
		Faults: []fault.Spec{
			{Kind: fault.KindOutage, Site: fault.SiteCloud,
				StartS: 2, EndS: 12, MeanDownS: 2, MeanUpS: 0.5},
			{Kind: fault.KindRSSIRamp, Link: fault.LinkWLAN,
				StartS: 12, EndS: 20, DeltaDBm: -30},
			{Kind: fault.KindQueueSpike, Site: fault.SiteConnected,
				StartS: 4, EndS: 8, ExtraServiceS: 0.02},
		},
	}
}

// ExtensionFaults evaluates the scripted fault model: the same Mi8Pro/S1
// evaluation as ext-outage, but under the time-correlated storm schedule
// (Markov cloud outage windows, a WLAN RSSI fade, a connected-edge queue
// spike) instead of an i.i.d. coin flip. Blind cloud offloading eats every
// outage window; the fault-aware Opt oracle routes around scripted
// downtime; AutoScale adapts from realized rewards.
func ExtensionFaults(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	sched1 := opts.Faults
	if sched1 == nil {
		sched1 = DefaultStorm()
	}
	if err := sched1.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-faults",
		Title: fmt.Sprintf("Extension: scripted fault storm %q (Mi8Pro, S1)", sched1.Name),
		Columns: []string{"Faults", "Policy", "PPW (vs Edge CPU)",
			"QoS violation", "Offload share"},
	}
	models := dnn.Zoo()
	envs := []string{sim.EnvS1}
	cells := Cells(models, envs)

	schedules := []*fault.Schedule{nil, sched1}
	labels := []string{"none", sched1.Name}
	order := []string{"Edge (CPU FP32)", "Cloud", "Opt", "AutoScale"}
	results, err := runCells(opts, len(schedules)*len(order), func(i int) (Result, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		if s := schedules[i/len(order)]; s != nil {
			w.Faults = fault.New(s, exec.NewRoot(opts.Seed).Child("faults"))
		}
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		var p sched.Policy
		switch order[i%len(order)] {
		case "Edge (CPU FP32)":
			p = sched.EdgeCPU{World: w}
		case "Cloud":
			p = sched.CloudAll{World: w}
		case "Opt":
			p = sched.Opt{World: w, AvoidDown: true}
		default:
			p = newLOOWorld(w, opts)
		}
		return EvaluatePolicy(p, cfg)
	})
	if err != nil {
		return nil, err
	}
	for si := range schedules {
		base := results[si*len(order)]
		for pi := 1; pi < len(order); pi++ {
			res := results[si*len(order)+pi]
			offload := 1 - share(res, sim.Local)
			t.AddRow(labels[si], res.Policy, res.MeanNormPPW(base, cells),
				res.MeanQoSViolation(cells), offload)
		}
	}
	t.Notes = append(t.Notes,
		"fault windows are keyed on each cell's virtual clock: the same schedule and seed "+
			"replay the exact same outage/fade timeline under any -parallel setting")
	return t, nil
}

// ExtensionLinks evaluates the rest of Table I's radio taxonomy — LTE and
// 5G as the wide-area network (SRSSI_W covers "Wi-Fi, LTE, and 5G") and
// Bluetooth as the peer-to-peer link ("Bluetooth, Wi-Fi Direct") — by
// re-running the Mi8Pro evaluation with each backhaul combination.
func ExtensionLinks(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-links",
		Title:   "Extension: radio taxonomy of Table I (Mi8Pro, static envs)",
		Columns: []string{"WAN", "P2P", "Policy", "PPW (vs Edge CPU)", "QoS violation", "Offload share"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)
	combos := []struct {
		wanName string
		p2pName string
	}{
		{"wifi", "wifi-direct"},
		{"lte", "wifi-direct"},
		{"5g", "wifi-direct"},
		{"wifi", "bluetooth"},
	}
	makeWorld := func(ci int) *sim.World {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		switch combos[ci].wanName {
		case "lte":
			w.WiFi = radio.LTE()
		case "5g":
			w.WiFi = radio.FiveG()
		default:
			w.WiFi = radio.WiFi()
		}
		if combos[ci].p2pName == "bluetooth" {
			w.P2P = radio.Bluetooth()
		} else {
			w.P2P = radio.WiFiDirect()
		}
		return w
	}
	order := []string{"Edge (CPU FP32)", "AutoScale", "Opt"}
	results, err := runCells(opts, len(combos)*len(order), func(i int) (Result, error) {
		w := makeWorld(i / len(order))
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs,
			Seed: opts.Seed + 10, WarmupRuns: opts.Warmup}
		var p sched.Policy
		switch order[i%len(order)] {
		case "Edge (CPU FP32)":
			p = sched.EdgeCPU{World: w}
		case "AutoScale":
			p = newLOOWorld(w, opts)
		default:
			p = sched.Opt{World: w}
		}
		return EvaluatePolicy(p, cfg)
	})
	if err != nil {
		return nil, err
	}
	for ci, combo := range combos {
		base := results[ci*len(order)]
		for pi := 1; pi < len(order); pi++ {
			res := results[ci*len(order)+pi]
			t.AddRow(combo.wanName, combo.p2pName, res.Policy,
				res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells), 1-share(res, sim.Local))
		}
	}
	t.Notes = append(t.Notes,
		"cellular backhaul raises transmit power and (for LTE) cuts goodput, pulling the "+
			"optimum on-device for vision; Bluetooth keeps the connected edge viable only for "+
			"tiny payloads like MobileBERT's")
	return t, nil
}

// ExtensionActions ablates the action space itself: how much of the oracle's
// energy efficiency comes from each augmentation the paper adds — DVFS
// steps, quantization, and the offload paths (Section V-C builds the ~66
// actions from exactly these). Each row restricts the oracle's search to a
// subset of the full space.
func ExtensionActions(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ext-actions",
		Title:   "Extension: action-space ablation (oracle, Mi8Pro, static envs)",
		Columns: []string{"Action space", "PPW (vs Edge CPU)", "QoS violation"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()
	cells := Cells(models, envs)

	filters := []struct {
		label string
		keep  func(w *sim.World, tgt sim.Target) bool
	}{
		{"full (paper)", func(*sim.World, sim.Target) bool { return true }},
		{"no DVFS (top steps only)", func(w *sim.World, tgt sim.Target) bool {
			if tgt.Location != sim.Local {
				return true
			}
			proc := w.Device.Processor(tgt.Kind)
			return tgt.Step == proc.Steps-1
		}},
		{"no quantization (FP32 only)", func(_ *sim.World, tgt sim.Target) bool {
			return tgt.Prec == dnn.FP32
		}},
		{"local only", func(_ *sim.World, tgt sim.Target) bool {
			return tgt.Location == sim.Local
		}},
		{"offload only", func(_ *sim.World, tgt sim.Target) bool {
			return tgt.Location != sim.Local
		}},
	}

	// Cell 0: baseline; cells 1..len(filters): restricted oracles.
	results, err := runCells(opts, len(filters)+1, func(i int) (Result, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		cfg := EvalConfig{Models: models, EnvIDs: envs, Runs: opts.Runs, Seed: opts.Seed + 10}
		if i == 0 {
			return EvaluatePolicy(sched.EdgeCPU{World: w}, cfg)
		}
		return EvaluatePolicy(&restrictedOpt{world: w, keep: filters[i-1].keep}, cfg)
	})
	if err != nil {
		return nil, err
	}
	base := results[0]
	for fi, f := range filters {
		res := results[fi+1]
		t.AddRow(f.label, res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells))
	}
	t.Notes = append(t.Notes,
		"quantifies the paper's Section V-C augmentations: the oracle restricted to FP32 or "+
			"to local-only execution loses the wins that quantized engines and offloading provide")
	return t, nil
}

// restrictedOpt is the oracle limited to a target subset.
type restrictedOpt struct {
	world *sim.World
	keep  func(*sim.World, sim.Target) bool
}

// Name implements Policy.
func (p *restrictedOpt) Name() string { return "Opt (restricted)" }

// Run implements Policy.
func (p *restrictedOpt) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements sched.ContextPolicy: exhaustive expectation search over
// the kept subset, same selection rule as sim.World.BestTarget.
func (p *restrictedOpt) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	qos := sim.QoSFor(m.Task == dnn.Translation, sim.NonStreaming)
	var (
		best      sim.Target
		bestE     = -1.0
		fallback  sim.Target
		fbLatency = -1.0
	)
	for _, tgt := range p.world.Targets(m) {
		if !p.keep(p.world, tgt) {
			continue
		}
		meas, err := p.world.Expected(m, tgt, c)
		if err != nil {
			return sim.Measurement{}, err
		}
		if fbLatency < 0 || meas.LatencyS < fbLatency {
			fallback, fbLatency = tgt, meas.LatencyS
		}
		if meas.LatencyS > qos {
			continue
		}
		if bestE < 0 || meas.EnergyJ < bestE {
			best, bestE = tgt, meas.EnergyJ
		}
	}
	if bestE < 0 {
		if fbLatency < 0 {
			return sim.Measurement{}, fmt.Errorf("exp: restricted space has no target for %s", m.Name)
		}
		best = fallback
	}
	return p.world.ExecuteCtx(ctx, m, best, c)
}
