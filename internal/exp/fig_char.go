package exp

import (
	"fmt"
	"sort"

	"autoscale/internal/dnn"
	"autoscale/internal/interfere"
	"autoscale/internal/perf"
	"autoscale/internal/radio"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Characterization figures (Section III of the paper). These use the
// noise-free simulator expectations, matching the paper's averaged
// measurements.

func strongSignal() sim.Conditions {
	return sim.Conditions{RSSIWLAN: radio.RegularRSSI, RSSIP2P: radio.RegularRSSI}
}

// Fig2 reproduces Fig 2: energy efficiency (PPW, normalized to Edge (CPU))
// and latency (normalized to the QoS target) of three representative NNs on
// the three phones across edge/connected/cloud targets.
func Fig2(opts Options) (*Table, error) {
	t := &Table{
		ID:      "fig2",
		Title:   "Optimal execution target varies with NN and system (normalized PPW / latency vs QoS)",
		Columns: []string{"Device", "NN", "Target", "PPW (vs Edge CPU)", "Latency/QoS", "Meets QoS"},
	}
	models := []*dnn.Model{
		dnn.MustByName("Inception v1"),
		dnn.MustByName("MobileNet v3"),
		dnn.MustByName("MobileBERT"),
	}
	c := strongSignal()
	for _, dev := range soc.Phones() {
		w := sim.NewWorld(dev, opts.Seed)
		for _, m := range models {
			qos := sim.QoSFor(m.Task == dnn.Translation, sim.NonStreaming)
			targets, err := fig2Targets(w, m)
			if err != nil {
				return nil, err
			}
			baseMeas, err := w.Expected(m, targets["Edge (CPU)"], c)
			if err != nil {
				return nil, err
			}
			names := make([]string, 0, len(targets))
			for name := range targets {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				meas, err := w.Expected(m, targets[name], c)
				if err != nil {
					return nil, err
				}
				t.AddRow(dev.Name, m.Name, name,
					baseMeas.EnergyJ/meas.EnergyJ, meas.LatencyS/qos, meas.LatencyS <= qos)
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: light NNs favor edge on high-end phones, heavy NNs favor cloud; "+
			"mid-end phones always benefit from scaling out")
	return t, nil
}

// fig2Targets enumerates the Fig 2 comparison points for a model on a world.
func fig2Targets(w *sim.World, m *dnn.Model) (map[string]sim.Target, error) {
	cpu := w.Device.Processor(soc.CPU)
	if cpu == nil {
		return nil, fmt.Errorf("exp: device %s has no CPU", w.Device.Name)
	}
	out := map[string]sim.Target{
		"Edge (CPU)": {Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32},
	}
	// Best co-processor at FP-native precision when the model can use it.
	if dsp := w.Device.Processor(soc.DSP); dsp != nil && dsp.CanRun(m, dnn.INT8) {
		out["Edge (DSP)"] = sim.Target{Location: sim.Local, Kind: soc.DSP, Prec: dnn.INT8}
	}
	if gpu := w.Device.Processor(soc.GPU); gpu != nil && gpu.CanRun(m, dnn.FP32) {
		out["Edge (GPU)"] = sim.Target{Location: sim.Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP32}
	}
	if w.Feasible(m, sim.Target{Location: sim.Connected, Kind: soc.GPU, Prec: dnn.FP32}) {
		out["Connected (GPU)"] = sim.Target{Location: sim.Connected, Kind: soc.GPU, Prec: dnn.FP32}
	} else {
		out["Connected (CPU)"] = sim.Target{Location: sim.Connected, Kind: soc.CPU, Prec: dnn.FP32}
	}
	out["Cloud (GPU)"] = sim.Target{Location: sim.Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	return out, nil
}

// Fig3 reproduces Fig 3: cumulative latency by layer type for Inception v1
// and MobileNet v3 on the Mi8Pro's CPU, GPU and DSP, normalized to the CPU.
func Fig3(opts Options) (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Per-layer-type latency by processor, normalized to CPU (Mi8Pro)",
		Columns: []string{"NN", "Processor", "CONV", "FC", "Other", "Total"},
	}
	dev := soc.Mi8Pro()
	pen := perf.NoInterference()
	for _, name := range []string{"Inception v1", "MobileNet v3"} {
		m := dnn.MustByName(name)
		type engine struct {
			label string
			exec  perf.Exec
		}
		cpu := dev.Processor(soc.CPU)
		gpu := dev.Processor(soc.GPU)
		dsp := dev.Processor(soc.DSP)
		engines := []engine{
			{"CPU (FP32)", perf.Exec{Proc: cpu, Step: cpu.Steps - 1, Prec: dnn.FP32}},
			{"GPU (FP32)", perf.Exec{Proc: gpu, Step: gpu.Steps - 1, Prec: dnn.FP32}},
			{"DSP (INT8)", perf.Exec{Proc: dsp, Step: 0, Prec: dnn.INT8}},
		}
		base := perf.ModelLatency(engines[0].exec, m, pen)
		for _, e := range engines {
			byType := perf.LatencyByType(e.exec, m, pen)
			var conv, fc, other float64
			for lt, v := range byType {
				switch lt {
				case dnn.Conv:
					conv += v
				case dnn.FC, dnn.RC:
					fc += v
				default:
					other += v
				}
			}
			t.AddRow(m.Name, e.label, conv/base, fc/base, other/base, (conv+fc+other)/base)
		}
	}
	t.Notes = append(t.Notes,
		"paper: FC layers exhibit much longer latency on co-processors; FC-heavy NNs "+
			"(MobileNet v3) run more efficiently on CPUs, CONV-heavy (Inception v1) on co-processors")
	return t, nil
}

// Fig4 reproduces Fig 4: PPW (normalized to Edge CPU FP32) and accuracy per
// execution target/precision, with the optimal target at each accuracy
// requirement.
func Fig4(opts Options) (*Table, error) {
	t := &Table{
		ID:      "fig4",
		Title:   "PPW vs inference accuracy per target (Mi8Pro)",
		Columns: []string{"NN", "Target", "PPW (vs CPU FP32)", "Accuracy", "Optimal@50%", "Optimal@65%"},
	}
	w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
	c := strongSignal()
	for _, name := range []string{"Inception v1", "MobileNet v3"} {
		m := dnn.MustByName(name)
		qos := sim.QoSNonStreamingS
		cpu := w.Device.Processor(soc.CPU)
		gpu := w.Device.Processor(soc.GPU)
		targets := []struct {
			label  string
			target sim.Target
		}{
			{"CPU FP32", sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}},
			{"CPU INT8", sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.INT8}},
			{"GPU FP16", sim.Target{Location: sim.Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP16}},
			{"DSP INT8", sim.Target{Location: sim.Local, Kind: soc.DSP, Prec: dnn.INT8}},
			{"Cloud FP32", sim.Target{Location: sim.Cloud, Kind: soc.GPU, Prec: dnn.FP32}},
		}
		base, err := w.Expected(m, targets[0].target, c)
		if err != nil {
			return nil, err
		}
		opt50, _, err := w.BestTarget(m, c, qos, 50)
		if err != nil {
			return nil, err
		}
		opt65, _, err := w.BestTarget(m, c, qos, 65)
		if err != nil {
			return nil, err
		}
		for _, tgt := range targets {
			meas, err := w.Expected(m, tgt.target, c)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Name, tgt.label, base.EnergyJ/meas.EnergyJ, meas.Accuracy,
				sameEngine(tgt.target, opt50), sameEngine(tgt.target, opt65))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: oracle@50%%=%v, oracle@65%%=%v", m.Name, opt50, opt65))
	}
	t.Notes = append(t.Notes,
		"paper: at a 50% accuracy target the low-precision on-device targets win; "+
			"at 65% the optimum shifts toward full-precision/cloud execution")
	return t, nil
}

// sameEngine compares targets by location, engine kind and precision,
// ignoring the DVFS step (the oracle picks a specific step).
func sameEngine(a, b sim.Target) bool {
	return a.Location == b.Location && a.Kind == b.Kind && a.Prec == b.Prec
}

// Fig5 reproduces Fig 5: PPW and latency of MobileNet v3 under CPU- and
// memory-intensive co-runners, normalized to the CPU with no co-runner.
func Fig5(opts Options) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Interference shifts the optimal target (MobileNet v3, Mi8Pro)",
		Columns: []string{"Co-runner", "Target", "PPW (vs CPU/no-app)", "Latency/QoS", "Optimal"},
	}
	w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
	m := dnn.MustByName("MobileNet v3")
	qos := sim.QoSNonStreamingS
	cpu := w.Device.Processor(soc.CPU)
	gpu := w.Device.Processor(soc.GPU)
	targets := []struct {
		label  string
		target sim.Target
	}{
		{"CPU", sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}},
		{"GPU", sim.Target{Location: sim.Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP32}},
		{"DSP", sim.Target{Location: sim.Local, Kind: soc.DSP, Prec: dnn.INT8}},
		{"Connected", sim.Target{Location: sim.Connected, Kind: soc.CPU, Prec: dnn.FP32}},
		{"Cloud", sim.Target{Location: sim.Cloud, Kind: soc.GPU, Prec: dnn.FP32}},
	}
	apps := []struct {
		label string
		load  interfere.Load
	}{
		{"none", interfere.Load{}},
		{"CPU-intensive", interfere.CPUHog().Next()},
		{"memory-intensive", interfere.MemHog().Next()},
	}
	baseCond := strongSignal()
	base, err := w.Expected(m, targets[0].target, baseCond)
	if err != nil {
		return nil, err
	}
	for _, app := range apps {
		c := strongSignal()
		c.Load = app.load
		opt, _, err := w.BestTarget(m, c, qos, 0)
		if err != nil {
			return nil, err
		}
		for _, tgt := range targets {
			meas, err := w.Expected(m, tgt.target, c)
			if err != nil {
				return nil, err
			}
			t.AddRow(app.label, tgt.label, base.EnergyJ/meas.EnergyJ, meas.LatencyS/qos,
				tgt.target.Location == opt.Location && tgt.target.Kind == opt.Kind)
		}
	}
	t.Notes = append(t.Notes,
		"paper: a CPU-intensive co-runner shifts the optimum CPU->GPU; "+
			"a memory-intensive one degrades all on-device engines and shifts it to the cloud")
	return t, nil
}

// Fig6 reproduces Fig 6: PPW and latency of ResNet 50 as the Wi-Fi and
// Wi-Fi Direct signal strengths vary, normalized to the best edge processor.
func Fig6(opts Options) (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Signal strength shifts the optimal target (ResNet 50, Galaxy S10e)",
		Columns: []string{"Signal", "Target", "PPW (vs Edge best)", "Latency/QoS", "Optimal"},
	}
	w := sim.NewWorld(soc.GalaxyS10e(), opts.Seed)
	m := dnn.MustByName("ResNet 50")
	qos := sim.QoSNonStreamingS
	gpu := w.Device.Processor(soc.GPU)
	bestEdge := sim.Target{Location: sim.Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP16}
	scenarios := []struct {
		label string
		cond  sim.Conditions
	}{
		{"strong both", sim.Conditions{RSSIWLAN: radio.RegularRSSI, RSSIP2P: radio.RegularRSSI}},
		{"weak Wi-Fi", sim.Conditions{RSSIWLAN: radio.WeakRSSI, RSSIP2P: radio.RegularRSSI}},
		{"weak both", sim.Conditions{RSSIWLAN: radio.WeakRSSI, RSSIP2P: radio.WeakRSSI}},
	}
	targets := []struct {
		label  string
		target sim.Target
	}{
		{"Edge (GPU FP16)", bestEdge},
		{"Connected (DSP)", sim.Target{Location: sim.Connected, Kind: soc.DSP, Prec: dnn.INT8}},
		{"Cloud (GPU)", sim.Target{Location: sim.Cloud, Kind: soc.GPU, Prec: dnn.FP32}},
	}
	base, err := w.Expected(m, bestEdge, scenarios[0].cond)
	if err != nil {
		return nil, err
	}
	for _, sc := range scenarios {
		opt, _, err := w.BestTarget(m, sc.cond, qos, 0)
		if err != nil {
			return nil, err
		}
		for _, tgt := range targets {
			meas, err := w.Expected(m, tgt.target, sc.cond)
			if err != nil {
				return nil, err
			}
			t.AddRow(sc.label, tgt.label, base.EnergyJ/meas.EnergyJ, meas.LatencyS/qos,
				tgt.target.Location == opt.Location && tgt.target.Kind == opt.Kind)
		}
	}
	t.Notes = append(t.Notes,
		"paper: weak Wi-Fi shifts the optimum to the locally connected edge; "+
			"weak Wi-Fi Direct as well shifts it back onto the device")
	return t, nil
}
