package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"autoscale/internal/fault"
)

// Table is the uniform output of every experiment: an identifier matching
// the paper's table/figure number, column headers, string-rendered rows, and
// free-form notes (e.g. the paper's reported numbers for comparison).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			pad := 2
			if i == len(cells)-1 {
				pad = 0
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+pad, c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	for _, r := range t.Rows {
		printRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Options controls experiment fidelity. The zero value selects the paper's
// full protocol; Quick() shrinks everything for tests.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Runs is the number of measured inferences per (model, env) cell.
	Runs int
	// TrainRuns is the training budget per (model, variance state).
	TrainRuns int
	// Warmup is the per-cell adaptation budget before measurement.
	Warmup int
	// Parallel bounds the number of concurrently running experiment cells
	// (0 selects GOMAXPROCS). Results are identical for every setting:
	// cells are pure functions of (Options, cell index).
	Parallel int
	// Faults optionally overrides the scripted fault schedule used by the
	// fault-injection experiments (ext-faults); nil selects the built-in
	// storm. Compiled per cell against the cell's seed, so it composes
	// with parallel execution.
	Faults *fault.Schedule

	// pool is the shared worker semaphore; withDefaults creates it lazily
	// so that RunAll can share one pool across experiments.
	pool *pool
	// held records that the current goroutine owns a pool token (set by
	// Run), letting runCells lend it to cells while the experiment waits.
	held bool
	// busy, when set (by RunAll), accumulates the nanoseconds this
	// experiment's work actually occupied a pool worker: cell runtimes are
	// added, token-lend windows subtracted. Added to the admission-to-done
	// span it yields the experiment's own cost, net of pool contention.
	busy *int64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Runs == 0 {
		o.Runs = 100
	}
	if o.TrainRuns == 0 {
		o.TrainRuns = 100
	}
	if o.Warmup == 0 {
		o.Warmup = 60
	}
	if o.pool == nil {
		o.pool = newPool(o.Parallel)
	}
	return o
}

// Quick returns reduced-fidelity options for fast test runs.
func Quick(seed int64) Options {
	return Options{Seed: seed, Runs: 25, TrainRuns: 20, Warmup: 25}
}

// WriteCSV renders the table as RFC-4180 CSV (header row first); notes are
// omitted.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
