package exp

import (
	"fmt"
	"sort"
)

// Runner regenerates one table or figure.
type Runner func(Options) (*Table, error)

// registry maps experiment IDs to their runners, in the paper's numbering.
var registry = map[string]Runner{
	"tableI":        func(Options) (*Table, error) { return TableI(), nil },
	"tableII":       func(Options) (*Table, error) { return TableII(), nil },
	"tableIII":      func(Options) (*Table, error) { return TableIII(), nil },
	"tableIV":       func(Options) (*Table, error) { return TableIV(), nil },
	"fig2":          Fig2,
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"fig9":          Fig9,
	"fig10":         Fig10,
	"fig11":         Fig11,
	"fig12":         Fig12,
	"fig13":         Fig13,
	"fig14":         Fig14,
	"ablation":      StateAblation,
	"ext-actions":   ExtensionActions,
	"ext-faults":    ExtensionFaults,
	"ext-links":     ExtensionLinks,
	"ext-npu":       ExtensionNPU,
	"ext-outage":    ExtensionOutage,
	"ext-partition": ExtensionPartition,
	"ext-plan":      ExtensionPlan,
	"ext-sarsa":     ExtensionSARSA,
}

// IDs returns the registered experiment IDs in a stable order: tables first,
// then figures by number, then ablations.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return expOrder(out[i]) < expOrder(out[j]) })
	return out
}

func expOrder(id string) string {
	// tables sort before figN (zero-padded), ablations last
	switch {
	case len(id) >= 5 && id[:5] == "table":
		return "0" + id
	case len(id) >= 3 && id[:3] == "fig":
		return fmt.Sprintf("1fig%02s", id[3:])
	default:
		return "2" + id
	}
}

// Run executes the experiment with the given ID. The experiment occupies one
// slot of the options' worker pool while it computes and lends that slot to
// its cells during fan-out phases, so concurrent Run calls sharing Options
// (as in RunAll) never exceed Parallel units of running work.
func Run(id string, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	opts.pool.acquire()
	defer opts.pool.release()
	return runHeld(id, opts)
}

// runHeld executes the experiment's runner; the caller already holds one
// pool token on the options' pool.
func runHeld(id string, opts Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	opts.held = true
	return r(opts)
}
