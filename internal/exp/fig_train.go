package exp

import (
	"fmt"
	"sort"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Fig14 reproduces Fig 14 and the Section VI-C training-overhead analysis:
// how many inference runs the learning needs to converge when training from
// scratch, how much a model transferred from the Mi8Pro accelerates
// convergence on the other devices, and how dynamic environments slow
// convergence relative to static ones. The donor trains first (one serial
// phase); the 12 (device, mode, environment) series are then independent
// cells — each builds its own world and engines, reading the shared donor
// table only through TransferFrom.
func Fig14(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig14",
		Title:   "Training convergence and learning transfer",
		Columns: []string{"Device", "Mode", "Environment", "Converge runs (avg)"},
	}
	models := dnn.Zoo()

	// Donor: fully trained engine on the Mi8Pro. The donor's budget must
	// exceed the action-space size per state (the paper's 100 runs versus
	// ~66 actions): with fewer runs the optimistic initialization leaves
	// untried actions looking attractive and the transferred table would
	// mislead rather than help.
	donorRuns := opts.TrainRuns
	if donorRuns < 120 {
		donorRuns = 120
	}
	donorWorld := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
	donorCfg := core.DefaultConfig()
	donorCfg.Seed = opts.Seed
	donor, err := NewTrainedEngine(donorWorld, donorCfg, TrainConfig{
		Models: models, RunsPerState: donorRuns, Seed: opts.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	modes := []string{"scratch", "transfer"}
	envKinds := []string{"static", "dynamic"}
	numDevices := len(soc.Phones())
	perCombo := len(modes) * len(envKinds)
	runsPerCombo, err := runCells(opts, numDevices*perCombo, func(i int) (float64, error) {
		di := i / perCombo
		mode := modes[(i%perCombo)/len(envKinds)]
		envKind := envKinds[i%len(envKinds)]
		w := sim.NewWorld(soc.Phones()[di], opts.Seed+int64(di))
		return convergenceRuns(w, donor, models, mode == "transfer", envKind == "dynamic", opts, int64(di))
	})
	if err != nil {
		return nil, err
	}
	var scratchSum, transferSum float64
	var scratchN int
	for di, dev := range soc.Phones() {
		for mi, mode := range modes {
			for ei, envKind := range envKinds {
				runs := runsPerCombo[di*perCombo+mi*len(envKinds)+ei]
				t.AddRow(dev.Name, mode, envKind, runs)
				if envKind == "static" {
					if mode == "scratch" {
						scratchSum += runs
						scratchN++
					} else {
						transferSum += runs
					}
				}
			}
		}
	}
	if scratchN > 0 && scratchSum > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"measured: transfer reduces average convergence runs by %.1f%%",
			(1-transferSum/scratchSum)*100))
	}
	t.Notes = append(t.Notes,
		"paper: reward converges in 40-50 runs; learning transfer reduces training time by 21.2%; "+
			"dynamic environments converge 9.1% slower from scratch, 0.5% with transfer")
	return t, nil
}

// convergenceRuns measures, per model on a fresh engine (optionally
// transfer-seeded from the donor), the number of inference runs until the
// learned policy enters its convergence band, and returns the mean across
// the zoo — the Fig 14 "reward converges in 40-50 runs" quantity. A fresh
// engine per model isolates the cold-start dynamics the paper measures;
// within a dynamic environment the engine still generalizes across its own
// variance states.
func convergenceRuns(w *sim.World, donor *core.Engine, models []*dnn.Model, transfer, dynamic bool, opts Options, salt int64) (float64, error) {
	rng := exec.NewRoot(opts.Seed + 31*salt).Stream("exp.converge")
	const maxRuns = 300
	envID := sim.EnvS1
	if dynamic {
		envID = sim.EnvD4
	}
	var perModel []float64
	for mi, m := range models {
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed + salt
		cfg.RL.Seed = opts.Seed + salt + int64(mi)
		e, err := core.NewEngine(w, cfg)
		if err != nil {
			return 0, err
		}
		if transfer {
			if err := e.TransferFrom(donor); err != nil {
				return 0, err
			}
		}
		env, err := sim.NewEnvironment(envID, opts.Seed+salt)
		if err != nil {
			return 0, err
		}
		mask := e.Actions.Mask(m)
		qos := sim.QoSFor(m.Task == dnn.Translation, sim.NonStreaming)
		ratios := make([]float64, 0, maxRuns)
		for run := 1; run <= maxRuns; run++ {
			c := env.Sample()
			if dynamic {
				// extra jitter keeps the dynamic series noisy
				c.RSSIWLAN += 2 * rng.NormFloat64()
			}
			d, err := e.RunInference(m, c)
			if err != nil {
				return 0, err
			}
			best, err := e.Agent().BestAction(d.State, mask)
			if err != nil {
				return 0, err
			}
			greedyMeas, err := w.Expected(m, e.Actions.Target(best), c)
			if err != nil {
				return 0, err
			}
			_, optMeas, err := w.BestTarget(m, c, qos, 0)
			if err != nil {
				return 0, err
			}
			ratio := 1.0
			if optMeas.EnergyJ > 0 {
				ratio = greedyMeas.EnergyJ / optMeas.EnergyJ
			}
			ratios = append(ratios, ratio)
		}
		perModel = append(perModel, float64(convergePoint(ratios)))
	}
	var sum float64
	for _, v := range perModel {
		sum += v
	}
	return sum / float64(len(perModel)), nil
}

// convergePoint finds the run at which a greedy-to-oracle energy-ratio
// series converges: the first run whose windowed median enters the
// convergence band — within 10% of the oracle, or within 5% of the policy's
// own final plateau when that plateau sits above the oracle band (a model
// whose converged choice is, say, 25% off the oracle has still converged).
// The median window suppresses the epsilon-greedy exploration spikes that
// never disappear.
func convergePoint(ratios []float64) int {
	const window = 15
	if len(ratios) <= window {
		return len(ratios)
	}
	med := func(start int) float64 {
		w := append([]float64(nil), ratios[start:start+window]...)
		sort.Float64s(w)
		return w[window/2]
	}
	band := 1.10
	if final := med(len(ratios) - window); final*1.05 > band {
		band = final * 1.05
	}
	for i := 0; i+window <= len(ratios); i++ {
		if med(i) <= band {
			return i + 1
		}
	}
	return len(ratios)
}

// StateAblation reproduces the Section IV-A sensitivity study: removing any
// one state feature degrades prediction accuracy (the paper reports a 32.1%
// average drop). The full-space measurement and the eight single-feature
// removals are independent cells.
func StateAblation(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ablation-states",
		Title:   "State-feature ablation (prediction accuracy, Mi8Pro)",
		Columns: []string{"Removed feature", "Prediction accuracy (%)", "Drop vs full (pp)"},
	}
	models := dnn.Zoo()
	envs := sim.StaticEnvIDs()

	measure := func(disabled core.Feature, disable bool) (float64, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed
		states := core.NewStateSpace()
		if disable {
			states.Disable(disabled)
		}
		cfg.States = states
		loo := &LeaveOneOutAutoScale{
			World:  w,
			Config: cfg,
			Train: TrainConfig{Models: models, RunsPerState: opts.TrainRuns,
				Seed: opts.Seed + 2},
		}
		// Warm the engines over the evaluation envs before measuring.
		warmCfg := EvalConfig{Models: models, EnvIDs: envs, Runs: 1,
			Seed: opts.Seed + 3, WarmupRuns: opts.Warmup}
		if _, err := EvaluatePolicy(loo, warmCfg); err != nil {
			return 0, err
		}
		return predictionAccuracy(w, loo, models, envs, opts)
	}

	accs, err := runCells(opts, core.NumFeatures+1, func(i int) (float64, error) {
		if i == 0 {
			return measure(0, false)
		}
		return measure(core.Feature(i-1), true)
	})
	if err != nil {
		return nil, err
	}
	full := accs[0]
	t.AddRow("(none)", full*100, 0.0)
	for f := core.Feature(0); int(f) < core.NumFeatures; f++ {
		acc := accs[int(f)+1]
		t.AddRow(f.String(), acc*100, (full-acc)*100)
	}
	t.Notes = append(t.Notes, "paper: removing any one state degrades accuracy by 32.1% on average")
	return t, nil
}
