package exp

import (
	"fmt"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// TableI reproduces Table I: the state features with their discretization.
func TableI() *Table {
	s := core.NewStateSpace()
	t := &Table{
		ID:      "tableI",
		Title:   "State-related features",
		Columns: []string{"State", "Description", "Bins", "Cut points"},
	}
	desc := map[core.Feature]string{
		core.FeatConv:  "# of CONV layers",
		core.FeatFC:    "# of FC layers",
		core.FeatRC:    "# of RC layers",
		core.FeatMAC:   "# of MAC operations",
		core.FeatCoCPU: "CPU utilization of co-running apps (%)",
		core.FeatCoMem: "Memory usage of co-running apps (%)",
		core.FeatRSSIW: "RSSI of wireless LAN (dBm)",
		core.FeatRSSIP: "RSSI of peer-to-peer network (dBm)",
	}
	for f := core.Feature(0); int(f) < core.NumFeatures; f++ {
		t.AddRow(f.String(), desc[f], s.Bins(f), fmt.Sprintf("%v", cutsOf(s, f)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("state space size: %d (paper: 3,072)", s.Size()))
	return t
}

func cutsOf(s *core.StateSpace, f core.Feature) []float64 {
	// The StateSpace does not expose raw cuts; re-derive the canonical
	// Table I boundaries for display.
	switch f {
	case core.FeatConv:
		return []float64{30, 50, 90}
	case core.FeatFC, core.FeatRC:
		return []float64{10}
	case core.FeatMAC:
		return []float64{1000e6, 2000e6}
	case core.FeatCoCPU, core.FeatCoMem:
		return []float64{0, 25, 75}
	default:
		return []float64{-80}
	}
}

// TableII reproduces Table II: the mobile-device specifications of the
// simulated profiles.
func TableII() *Table {
	t := &Table{
		ID:      "tableII",
		Title:   "Mobile device specification (simulated profiles)",
		Columns: []string{"Device", "Engine", "Kind", "MaxGHz", "V/F steps", "Peak W", "GMAC/s", "Precisions"},
	}
	devices := append(soc.Phones(), soc.GalaxyTabS6(), soc.CloudServer())
	for _, d := range devices {
		for _, p := range d.Processors {
			precs := ""
			for i, pr := range p.Precisions {
				if i > 0 {
					precs += "/"
				}
				precs += pr.String()
			}
			t.AddRow(d.Name, p.Name, p.Kind.String(), p.MaxFreqGHz, p.Steps, p.PeakBusyW, p.PeakGMACs, precs)
		}
	}
	return t
}

// TableIII reproduces Table III: the DNN inference workloads with their
// layer compositions.
func TableIII() *Table {
	t := &Table{
		ID:      "tableIII",
		Title:   "DNN inference workloads",
		Columns: []string{"Workload", "DNN", "SCONV", "SFC", "SRC", "GMACs", "Params(M)", "FP32 acc"},
	}
	for _, m := range dnn.Zoo() {
		t.AddRow(m.Task.String(), m.Name, m.NumConv(), m.NumFC(), m.NumRC(),
			m.MACs()/1e9, m.WeightBytes()/4e6, m.Accuracy(dnn.FP32))
	}
	t.Notes = append(t.Notes,
		"paper layer counts: Inception v1 49/1/0, Inception v3 94/1/0, MobileNet v1 14/1/0, "+
			"MobileNet v2 35/1/0, MobileNet v3 23/20/0, ResNet 50 53/1/0, SSD MobileNet v1 19/1/0, "+
			"SSD MobileNet v2 52/1/0, SSD MobileNet v3 28/20/0, MobileBERT 0/1/24")
	return t
}

// TableIV reproduces Table IV: the execution environments.
func TableIV() *Table {
	t := &Table{
		ID:      "tableIV",
		Title:   "DNN inference execution environment",
		Columns: []string{"Type", "Environment", "Description"},
	}
	for _, id := range sim.AllEnvIDs() {
		env := sim.MustEnvironment(id, 1)
		typ := "Static"
		if env.Dynamic {
			typ = "Dynamic"
		}
		t.AddRow(typ, env.ID, env.Desc)
	}
	return t
}
