// Package exp contains the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section VI) on the simulated
// edge–cloud world: policy evaluation loops, the AutoScale training protocol
// of Section V-C (100 inference runs per NN per runtime-variance state,
// leave-one-out cross-validation across NNs), and one entry point per
// figure/table.
package exp

import (
	"fmt"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/interfere"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Cell identifies one (model, environment) aggregation bucket.
type Cell struct {
	Model string
	Env   string
}

// Result aggregates a policy's behaviour over an evaluation run.
type Result struct {
	Policy string
	// MeanEnergyJ / MeanLatencyS are per-cell means.
	MeanEnergyJ  map[Cell]float64
	MeanLatencyS map[Cell]float64
	// QoSViolRatio is the per-cell fraction of inferences over the QoS
	// target.
	QoSViolRatio map[Cell]float64
	// Decisions histograms the chosen execution locations.
	Decisions map[sim.Location]int
	// Inferences is the total number of requests served.
	Inferences int
}

// PPW returns the per-cell performance-per-watt (inferences per joule).
func (r Result) PPW(c Cell) float64 {
	e := r.MeanEnergyJ[c]
	if e <= 0 {
		return 0
	}
	return 1 / e
}

// MeanNormPPW averages, over the given cells, this result's PPW normalized
// to a baseline result (the paper's "average energy efficiency normalized to
// Edge (CPU FP32)").
func (r Result) MeanNormPPW(base Result, cells []Cell) float64 {
	var sum float64
	var n int
	for _, c := range cells {
		bp := base.PPW(c)
		if bp <= 0 {
			continue
		}
		sum += r.PPW(c) / bp
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanQoSViolation averages the per-cell QoS violation ratio.
func (r Result) MeanQoSViolation(cells []Cell) float64 {
	var sum float64
	var n int
	for _, c := range cells {
		if v, ok := r.QoSViolRatio[c]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Cells enumerates the (model, env) buckets of a model/environment matrix.
func Cells(models []*dnn.Model, envIDs []string) []Cell {
	var out []Cell
	for _, m := range models {
		for _, e := range envIDs {
			out = append(out, Cell{Model: m.Name, Env: e})
		}
	}
	return out
}

// EvalConfig parameterizes an evaluation run.
type EvalConfig struct {
	Models    []*dnn.Model
	EnvIDs    []string
	Runs      int // inferences per (model, env) cell
	Intensity sim.Intensity
	Accuracy  float64 // accuracy target in percent; 0 disables
	Seed      int64
	// WarmupRuns, when positive and the policy supports online learning,
	// runs this many unmeasured adaptation inferences per (model, env)
	// cell before measurement begins. The paper reports post-convergence
	// numbers (reward converges in 40-50 runs, Fig 14) and quantifies the
	// pre-convergence gap separately (Section VI-C).
	WarmupRuns int
}

// OnlineLearner is implemented by policies that adapt online (AutoScale);
// EvaluatePolicy uses it to run the warm-up phase with exploration enabled.
type OnlineLearner interface {
	// Warmup runs unmeasured adaptation inferences of m drawn from sample.
	Warmup(m *dnn.Model, sample func() sim.Conditions, runs int) error
}

// EvaluatePolicy runs a policy over every (model, env) cell and aggregates.
// Policies implementing sched.ContextPolicy receive a request-scoped
// execution context derived from (cfg.Seed, model, env, run index), so their
// stochastic draws are independent of any shared world state; the remaining
// policies fall back to Run and stay deterministic as long as the caller
// owns the world exclusively.
func EvaluatePolicy(p sched.Policy, cfg EvalConfig) (Result, error) {
	res := Result{
		Policy:       p.Name(),
		MeanEnergyJ:  make(map[Cell]float64),
		MeanLatencyS: make(map[Cell]float64),
		QoSViolRatio: make(map[Cell]float64),
		Decisions:    make(map[sim.Location]int),
	}
	root := exec.NewRoot(cfg.Seed).Child("eval")
	cp, _ := p.(sched.ContextPolicy)
	for _, m := range cfg.Models {
		qos := sim.QoSFor(m.Task == dnn.Translation, cfg.Intensity)
		for _, envID := range cfg.EnvIDs {
			env, err := sim.NewEnvironment(envID, cfg.Seed)
			if err != nil {
				return Result{}, err
			}
			cell := Cell{Model: m.Name, Env: envID}
			cellCtx := root.Child(m.Name + "/" + envID)
			if ol, ok := p.(OnlineLearner); ok && cfg.WarmupRuns > 0 {
				if err := ol.Warmup(m, env.Sample, cfg.WarmupRuns); err != nil {
					return Result{}, err
				}
			}
			var energy, latency float64
			var viol int
			for i := 0; i < cfg.Runs; i++ {
				var meas sim.Measurement
				var err error
				if cp != nil {
					meas, err = cp.RunCtx(cellCtx.Child("req", uint64(i)), m, env.Sample())
				} else {
					meas, err = p.Run(m, env.Sample())
				}
				if err != nil {
					return Result{}, fmt.Errorf("exp: %s on %s/%s: %w", p.Name(), m.Name, envID, err)
				}
				energy += meas.EnergyJ
				latency += meas.LatencyS
				if meas.LatencyS > qos {
					viol++
				}
				res.Decisions[meas.Target.Location]++
				res.Inferences++
			}
			n := float64(cfg.Runs)
			res.MeanEnergyJ[cell] = energy / n
			res.MeanLatencyS[cell] = latency / n
			res.QoSViolRatio[cell] = float64(viol) / n
		}
	}
	return res, nil
}

// VarianceState is one combination of the Table I runtime-variance features,
// used as a training condition generator (the paper trains 100 runs per NN
// in each runtime-variance-related state).
type VarianceState struct {
	CoCPU, CoMem float64 // fractions 0..1
	RSSIW, RSSIP float64 // dBm
}

// VarianceGrid enumerates representative points of every runtime-variance
// state of Table I: 4 co-CPU bins x 4 co-mem bins x 2 WLAN RSSI bins x
// 2 P2P RSSI bins = 64 states.
func VarianceGrid() []VarianceState {
	cpuLevels := []float64{0, 0.12, 0.50, 0.85}
	memLevels := []float64{0, 0.12, 0.50, 0.85}
	rssiLevels := []float64{-55, -88}
	var out []VarianceState
	for _, cu := range cpuLevels {
		for _, mu := range memLevels {
			for _, rw := range rssiLevels {
				for _, rp := range rssiLevels {
					out = append(out, VarianceState{CoCPU: cu, CoMem: mu, RSSIW: rw, RSSIP: rp})
				}
			}
		}
	}
	return out
}

// Conditions materializes the variance state into sim conditions with a
// little jitter so the training distribution covers each bin's interior.
func (v VarianceState) Conditions(rng *exec.Rand) sim.Conditions {
	jitter := func(x, sigma, lo, hi float64) float64 {
		if x == 0 {
			return 0 // keep the "none" bin exactly at zero load
		}
		y := x + sigma*rng.NormFloat64()
		if y < lo {
			y = lo
		}
		if y > hi {
			y = hi
		}
		return y
	}
	return sim.Conditions{
		Load: interfere.Load{
			CPUUtil: jitter(v.CoCPU, 0.04, 0.01, 1),
			MemUtil: jitter(v.CoMem, 0.04, 0.01, 1),
		},
		RSSIWLAN: v.RSSIW + 2*rng.NormFloat64(),
		RSSIP2P:  v.RSSIP + 2*rng.NormFloat64(),
	}
}

// TrainConfig parameterizes AutoScale training.
type TrainConfig struct {
	// Models to train on.
	Models []*dnn.Model
	// RunsPerState is the number of inference runs per (model, variance
	// state); the paper uses 100.
	RunsPerState int
	// Intensity and Accuracy flow into the engine's reward.
	Intensity sim.Intensity
	Accuracy  float64
	Seed      int64
}

// TrainEngine runs the paper's training protocol on an engine: for every
// model and every runtime-variance state of the grid, RunsPerState
// inferences with epsilon-greedy learning.
func TrainEngine(e *core.Engine, cfg TrainConfig) error {
	rng := exec.NewRoot(cfg.Seed).Stream("exp.train")
	grid := VarianceGrid()
	for _, m := range cfg.Models {
		for _, vs := range grid {
			for i := 0; i < cfg.RunsPerState; i++ {
				if _, err := e.RunInference(m, vs.Conditions(rng)); err != nil {
					return fmt.Errorf("exp: train %s: %w", m.Name, err)
				}
			}
		}
	}
	return e.Flush()
}

// NewTrainedEngine builds and trains an AutoScale engine on a world.
func NewTrainedEngine(w *sim.World, ecfg core.Config, tcfg TrainConfig) (*core.Engine, error) {
	ecfg.Intensity = tcfg.Intensity
	ecfg.Reward.AccuracyTarget = tcfg.Accuracy
	e, err := core.NewEngine(w, ecfg)
	if err != nil {
		return nil, err
	}
	if err := TrainEngine(e, tcfg); err != nil {
		return nil, err
	}
	return e, nil
}

// AutoScalePolicy adapts a trained engine to the Policy interface. The
// engine keeps learning unless frozen.
type AutoScalePolicy struct {
	Engine *core.Engine
	// Label overrides the policy name (default "AutoScale").
	Label string
}

// Name implements Policy.
func (p *AutoScalePolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "AutoScale"
}

// Run implements Policy.
func (p *AutoScalePolicy) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements sched.ContextPolicy.
func (p *AutoScalePolicy) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	d, err := p.Engine.RunInferenceCtx(ctx, m, c)
	if err != nil {
		return sim.Measurement{}, err
	}
	return d.Measurement, nil
}

// LeaveOneOutAutoScale implements the paper's testing protocol: for each
// tested model it uses an engine trained on the other nine (Section V-C).
// Engines are built lazily, one per held-out model, and frozen before use.
type LeaveOneOutAutoScale struct {
	World  *sim.World
	Config core.Config
	Train  TrainConfig

	engines map[string]*core.Engine
}

// Name implements Policy.
func (*LeaveOneOutAutoScale) Name() string { return "AutoScale" }

// Run implements Policy.
func (p *LeaveOneOutAutoScale) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements sched.ContextPolicy.
func (p *LeaveOneOutAutoScale) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	e, err := p.engineFor(m)
	if err != nil {
		return sim.Measurement{}, err
	}
	d, err := e.RunInferenceCtx(ctx, m, c)
	if err != nil {
		return sim.Measurement{}, err
	}
	return d.Measurement, nil
}

// EngineFor returns the engine used to test the given model (trained on
// every other training model, acting greedily, still learning online).
func (p *LeaveOneOutAutoScale) EngineFor(m *dnn.Model) (*core.Engine, error) {
	return p.engineFor(m)
}

// Warmup implements OnlineLearner: it re-enables exploration, adapts on
// unmeasured runs, then returns to greedy exploitation.
func (p *LeaveOneOutAutoScale) Warmup(m *dnn.Model, sample func() sim.Conditions, runs int) error {
	e, err := p.engineFor(m)
	if err != nil {
		return err
	}
	if err := e.Agent().SetEpsilon(p.Config.RL.Epsilon); err != nil {
		return err
	}
	for i := 0; i < runs; i++ {
		if _, err := e.RunInference(m, sample()); err != nil {
			return err
		}
	}
	return e.Agent().SetEpsilon(0)
}

// Warmup implements OnlineLearner for the single-engine adapter.
func (p *AutoScalePolicy) Warmup(m *dnn.Model, sample func() sim.Conditions, runs int) error {
	eps := p.Engine.Agent().Config().Epsilon
	for i := 0; i < runs; i++ {
		if _, err := p.Engine.RunInference(m, sample()); err != nil {
			return err
		}
	}
	_ = eps
	return nil
}

func (p *LeaveOneOutAutoScale) engineFor(m *dnn.Model) (*core.Engine, error) {
	if p.engines == nil {
		p.engines = make(map[string]*core.Engine)
	}
	if e, ok := p.engines[m.Name]; ok {
		return e, nil
	}
	tcfg := p.Train
	var trainSet []*dnn.Model
	for _, tm := range tcfg.Models {
		if tm.Name != m.Name {
			trainSet = append(trainSet, tm)
		}
	}
	if len(trainSet) == 0 {
		return nil, fmt.Errorf("exp: no training models besides %s", m.Name)
	}
	tcfg.Models = trainSet
	e, err := NewTrainedEngine(p.World, p.Config, tcfg)
	if err != nil {
		return nil, err
	}
	// Learning is complete: act greedily but keep learning online so the
	// engine adapts to the held-out model's states (Section IV-B).
	if err := e.Agent().SetEpsilon(0); err != nil {
		return nil, err
	}
	p.engines[m.Name] = e
	return e, nil
}

// Baselines constructs the paper's comparison policy set for a world:
// Edge (CPU FP32), Edge (Best), Cloud, Connected Edge, and Opt.
func Baselines(w *sim.World, intensity sim.Intensity, accuracy float64) []sched.Policy {
	return []sched.Policy{
		sched.EdgeCPU{World: w},
		&sched.EdgeBest{World: w, Intensity: intensity, Accuracy: accuracy},
		sched.CloudAll{World: w},
		&sched.ConnectedEdge{World: w, Intensity: intensity, Accuracy: accuracy},
		sched.Opt{World: w, Intensity: intensity, Accuracy: accuracy},
	}
}

// PhoneWorlds builds the three evaluation worlds of Table II.
func PhoneWorlds(seed int64) []*sim.World {
	var out []*sim.World
	for i, d := range soc.Phones() {
		out = append(out, sim.NewWorld(d, seed+int64(i)))
	}
	return out
}
