package exp

import (
	"fmt"
	"math"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/interfere"
	"autoscale/internal/predict"
	"autoscale/internal/sim"
)

// Feature encoding shared by all prediction-based approaches: the eight
// Table I observables in raw units (each predictor standardizes internally).
func featuresOf(m *dnn.Model, c sim.Conditions) []float64 {
	o := core.ObservationOf(m, c)
	return []float64{
		float64(o.NumConv), float64(o.NumFC), float64(o.NumRC),
		o.MACs / 1e9, o.CoCPU, o.CoMem, o.RSSIW, o.RSSIP,
	}
}

// ProfileConfig controls offline profiling-dataset generation.
type ProfileConfig struct {
	Models []*dnn.Model
	// ActionsPerState is how many randomly chosen actions are profiled in
	// each (model, variance state).
	ActionsPerState int
	// WithVariance includes the non-trivial variance-grid states; when
	// false only the no-variance state is profiled.
	WithVariance bool
	Intensity    sim.Intensity
	Accuracy     float64
	Seed         int64
}

// BuildDataset profiles random actions over the variance grid, producing the
// training samples the regression/BO approaches fit on.
func BuildDataset(w *sim.World, cfg ProfileConfig) ([]predict.Sample, error) {
	if cfg.ActionsPerState < 1 {
		cfg.ActionsPerState = 12
	}
	rng := exec.NewRoot(cfg.Seed).Stream("exp.profile")
	actions := core.NewActionSpace(w)
	grid := []VarianceState{{RSSIW: -55, RSSIP: -55}}
	if cfg.WithVariance {
		grid = VarianceGrid()
	}
	var out []predict.Sample
	for _, m := range cfg.Models {
		mask := actions.Mask(m)
		var feasible []int
		for i, ok := range mask {
			if ok {
				feasible = append(feasible, i)
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("exp: no feasible action for %s", m.Name)
		}
		for _, vs := range grid {
			for k := 0; k < cfg.ActionsPerState; k++ {
				c := vs.Conditions(rng)
				a := feasible[rng.Intn(len(feasible))]
				meas, err := w.Execute(m, actions.Target(a), c)
				if err != nil {
					return nil, err
				}
				out = append(out, predict.Sample{
					X:       featuresOf(m, c),
					Action:  a,
					EnergyJ: meas.EnergyJ, LatencyS: meas.LatencyS,
				})
			}
		}
	}
	return out, nil
}

// BuildLabels computes the oracle-optimal action over conditions drawn from
// the continuous runtime-variance distribution — the classification
// approaches' training labels. The continuous draw (rather than the clean
// variance-grid representatives) mirrors real profiling and is what leaves
// the boundary regions, where mispredictions are costly, imperfectly
// covered (Section III-C).
func BuildLabels(w *sim.World, cfg ProfileConfig) ([]predict.LabeledState, error) {
	rng := exec.NewRoot(cfg.Seed).Stream("exp.labels")
	actions := core.NewActionSpace(w)
	samplesPerModel := 64
	var out []predict.LabeledState
	for _, m := range cfg.Models {
		qos := sim.QoSFor(m.Task == dnn.Translation, cfg.Intensity)
		for i := 0; i < samplesPerModel; i++ {
			c := sim.Conditions{
				Load: interfere.Load{
					CPUUtil: rng.Float64(),
					MemUtil: rng.Float64(),
				},
				RSSIWLAN: -95 + 55*rng.Float64(),
				RSSIP2P:  -95 + 55*rng.Float64(),
			}
			t, _, err := w.BestTarget(m, c, qos, cfg.Accuracy)
			if err != nil {
				return nil, err
			}
			idx := actions.Index(t)
			if idx < 0 {
				return nil, fmt.Errorf("exp: oracle target %v not in action space", t)
			}
			out = append(out, predict.LabeledState{X: featuresOf(m, c), Action: idx})
		}
	}
	return out, nil
}

// logRegressor fits targets in log space: energy and latency span three
// orders of magnitude across the action space, so a linear (or kernel)
// model in raw units would be dominated by the heavy tail. Predictions are
// exponentiated back.
type logRegressor struct {
	inner predict.Regressor
}

// Predict implements predict.Regressor.
func (l logRegressor) Predict(x []float64) float64 {
	return math.Exp(l.inner.Predict(x))
}

func logTargets(ys []float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		if y < 1e-9 {
			y = 1e-9
		}
		out[i] = math.Log(y)
	}
	return out
}

// RegressionPolicy chooses actions by predicting energy and latency for
// every feasible action and picking the predicted-cheapest QoS-satisfier.
type RegressionPolicy struct {
	Label     string
	World     *sim.World
	Actions   *core.ActionSpace
	Energy    predict.Regressor
	Latency   predict.Regressor
	Intensity sim.Intensity
}

// Name implements Policy.
func (p *RegressionPolicy) Name() string { return p.Label }

// Run implements Policy.
func (p *RegressionPolicy) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements sched.ContextPolicy.
func (p *RegressionPolicy) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	x := featuresOf(m, c)
	qos := sim.QoSFor(m.Task == dnn.Translation, p.Intensity)
	mask := p.Actions.Mask(m)
	best, bestE := -1, 0.0
	fastest, fastestL := -1, 0.0
	for i, ok := range mask {
		if !ok {
			continue
		}
		xa := append(append([]float64(nil), x...), oneHot(i, p.Actions.Len())...)
		e := p.Energy.Predict(xa)
		l := p.Latency.Predict(xa)
		if fastest < 0 || l < fastestL {
			fastest, fastestL = i, l
		}
		if l > qos {
			continue
		}
		if best < 0 || e < bestE {
			best, bestE = i, e
		}
	}
	if best < 0 {
		best = fastest
	}
	if best < 0 {
		return sim.Measurement{}, fmt.Errorf("exp: %s found no action for %s", p.Label, m.Name)
	}
	return p.World.ExecuteCtx(ctx, m, p.Actions.Target(best), c)
}

func oneHot(i, n int) []float64 {
	v := make([]float64, n)
	if i >= 0 && i < n {
		v[i] = 1
	}
	return v
}

// ClassifierPolicy chooses actions with a trained classifier.
type ClassifierPolicy struct {
	Label   string
	World   *sim.World
	Actions *core.ActionSpace
	Clf     predict.Classifier
}

// Name implements Policy.
func (p *ClassifierPolicy) Name() string { return p.Label }

// Run implements Policy.
func (p *ClassifierPolicy) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements sched.ContextPolicy.
func (p *ClassifierPolicy) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	idx := p.Clf.Classify(featuresOf(m, c), p.Actions.Mask(m))
	if idx < 0 {
		return sim.Measurement{}, fmt.Errorf("exp: classifier found no action for %s", m.Name)
	}
	return p.World.ExecuteCtx(ctx, m, p.Actions.Target(idx), c)
}

// NewLRPolicy trains the linear-regression approach of Section III-C.
func NewLRPolicy(w *sim.World, data []predict.Sample, intensity sim.Intensity) (*RegressionPolicy, error) {
	actions := core.NewActionSpace(w)
	xe, ye, err := predict.EncodeSamples(data, actions.Len(), true)
	if err != nil {
		return nil, err
	}
	energy, err := predict.FitLinearRegression(xe, logTargets(ye), 1e-3)
	if err != nil {
		return nil, err
	}
	xl, yl, err := predict.EncodeSamples(data, actions.Len(), false)
	if err != nil {
		return nil, err
	}
	latency, err := predict.FitLinearRegression(xl, logTargets(yl), 1e-3)
	if err != nil {
		return nil, err
	}
	return &RegressionPolicy{Label: "LR", World: w, Actions: actions,
		Energy: logRegressor{energy}, Latency: logRegressor{latency}, Intensity: intensity}, nil
}

// NewSVRPolicy trains the support-vector-regression approach.
func NewSVRPolicy(w *sim.World, data []predict.Sample, intensity sim.Intensity) (*RegressionPolicy, error) {
	actions := core.NewActionSpace(w)
	xe, ye, err := predict.EncodeSamples(data, actions.Len(), true)
	if err != nil {
		return nil, err
	}
	cfg := predict.DefaultSVRConfig()
	cfg.Epsilon = 0.02 // log-space tube
	energy, err := predict.FitSVR(xe, logTargets(ye), cfg)
	if err != nil {
		return nil, err
	}
	xl, yl, err := predict.EncodeSamples(data, actions.Len(), false)
	if err != nil {
		return nil, err
	}
	latency, err := predict.FitSVR(xl, logTargets(yl), cfg)
	if err != nil {
		return nil, err
	}
	return &RegressionPolicy{Label: "SVR", World: w, Actions: actions,
		Energy: logRegressor{energy}, Latency: logRegressor{latency}, Intensity: intensity}, nil
}

// NewSVMPolicy trains the SVM classification approach.
func NewSVMPolicy(w *sim.World, labels []predict.LabeledState) (*ClassifierPolicy, error) {
	actions := core.NewActionSpace(w)
	clf, err := predict.FitSVM(labels, actions.Len(), predict.DefaultSVMConfig())
	if err != nil {
		return nil, err
	}
	return &ClassifierPolicy{Label: "SVM", World: w, Actions: actions, Clf: clf}, nil
}

// NewKNNPolicy trains the k-nearest-neighbour classification approach.
func NewKNNPolicy(w *sim.World, labels []predict.LabeledState, k int) (*ClassifierPolicy, error) {
	actions := core.NewActionSpace(w)
	clf, err := predict.FitKNN(labels, k)
	if err != nil {
		return nil, err
	}
	return &ClassifierPolicy{Label: "KNN", World: w, Actions: actions, Clf: clf}, nil
}

// NewBOPolicy builds the Bayesian-optimization approach: starting from the
// profiled seed set, it acquires extra samples by expected improvement
// (minimizing energy), then fits Gaussian-process estimators for energy and
// latency used at runtime exactly like the regression policies.
func NewBOPolicy(w *sim.World, seed []predict.Sample, acquisitions int, cfgSeed int64, intensity sim.Intensity) (*RegressionPolicy, error) {
	actions := core.NewActionSpace(w)
	rng := exec.NewRoot(cfgSeed).Stream("exp.bo")
	data := append([]predict.Sample(nil), seed...)
	models := dnn.Zoo()
	grid := VarianceGrid()

	gpCfg := predict.DefaultGPConfig()
	gpCfg.Seed = cfgSeed
	var energyGP *predict.GP
	refit := func() error {
		xe, ye, err := predict.EncodeSamples(data, actions.Len(), true)
		if err != nil {
			return err
		}
		energyGP, err = predict.FitGP(xe, logTargets(ye), gpCfg)
		return err
	}
	if err := refit(); err != nil {
		return nil, err
	}
	bestE := data[0].EnergyJ
	for _, s := range data {
		if s.EnergyJ < bestE {
			bestE = s.EnergyJ
		}
	}
	const candidates = 24
	for it := 0; it < acquisitions; it++ {
		var bestX []float64
		var bestModel *dnn.Model
		var bestAction int
		var bestCond sim.Conditions
		bestEI := -1.0
		for c := 0; c < candidates; c++ {
			m := models[rng.Intn(len(models))]
			vs := grid[rng.Intn(len(grid))]
			cond := vs.Conditions(rng)
			mask := actions.Mask(m)
			a := rng.Intn(actions.Len())
			for !mask[a] {
				a = rng.Intn(actions.Len())
			}
			x := featuresOf(m, cond)
			xa := append(append([]float64(nil), x...), oneHot(a, actions.Len())...)
			ei := energyGP.ExpectedImprovement(xa, math.Log(bestE))
			if ei > bestEI {
				bestEI, bestX, bestModel, bestAction, bestCond = ei, x, m, a, cond
			}
		}
		meas, err := w.Execute(bestModel, actions.Target(bestAction), bestCond)
		if err != nil {
			return nil, err
		}
		data = append(data, predict.Sample{X: bestX, Action: bestAction,
			EnergyJ: meas.EnergyJ, LatencyS: meas.LatencyS})
		if meas.EnergyJ < bestE {
			bestE = meas.EnergyJ
		}
		if (it+1)%50 == 0 {
			if err := refit(); err != nil {
				return nil, err
			}
		}
	}
	if err := refit(); err != nil {
		return nil, err
	}
	xl, yl, err := predict.EncodeSamples(data, actions.Len(), false)
	if err != nil {
		return nil, err
	}
	latencyGP, err := predict.FitGP(xl, logTargets(yl), gpCfg)
	if err != nil {
		return nil, err
	}
	return &RegressionPolicy{Label: "BO", World: w, Actions: actions,
		Energy: logRegressor{energyGP}, Latency: logRegressor{latencyGP}, Intensity: intensity}, nil
}

// RegressorMAPE evaluates a fitted energy estimator against fresh ground
// truth: for every model and variance state it predicts the energy of
// randomly drawn feasible actions and compares with the noise-free
// expectation, returning the mean absolute percentage error (percent).
func RegressorMAPE(w *sim.World, reg predict.Regressor, models []*dnn.Model, withVariance bool, runs int, seed int64) (float64, error) {
	rng := exec.NewRoot(seed).Stream("exp.mape")
	actions := core.NewActionSpace(w)
	grid := []VarianceState{{RSSIW: -55, RSSIP: -55}}
	if withVariance {
		grid = VarianceGrid()
	}
	var actual, pred []float64
	for _, m := range models {
		mask := actions.Mask(m)
		var feasible []int
		for i, ok := range mask {
			if ok {
				feasible = append(feasible, i)
			}
		}
		for i := 0; i < runs; i++ {
			vs := grid[rng.Intn(len(grid))]
			c := vs.Conditions(rng)
			a := feasible[rng.Intn(len(feasible))]
			meas, err := w.Expected(m, actions.Target(a), c)
			if err != nil {
				return 0, err
			}
			x := append(featuresOf(m, c), oneHot(a, actions.Len())...)
			actual = append(actual, meas.EnergyJ)
			pred = append(pred, reg.Predict(x))
		}
	}
	return mapeOf(actual, pred)
}

// ClassifierMisrate evaluates a classifier's mis-classification ratio
// against the Opt oracle over fresh variance-grid states.
func ClassifierMisrate(w *sim.World, clf predict.Classifier, models []*dnn.Model, intensity sim.Intensity, runs int, seed int64) (float64, error) {
	rng := exec.NewRoot(seed).Stream("exp.misrate")
	actions := core.NewActionSpace(w)
	grid := VarianceGrid()
	var mis, total int
	for _, m := range models {
		qos := sim.QoSFor(m.Task == dnn.Translation, intensity)
		mask := actions.Mask(m)
		for i := 0; i < runs; i++ {
			vs := grid[rng.Intn(len(grid))]
			c := vs.Conditions(rng)
			opt, optMeas, err := w.BestTarget(m, c, qos, 0)
			if err != nil {
				return 0, err
			}
			got := clf.Classify(featuresOf(m, c), mask)
			total++
			if got < 0 {
				mis++
				continue
			}
			if actions.Target(got) == opt {
				continue
			}
			meas, err := w.Expected(m, actions.Target(got), c)
			if err != nil {
				return 0, err
			}
			// Count as correct when the chosen target is within 1% of
			// the oracle's energy (the paper's tie criterion).
			if optMeas.EnergyJ > 0 && meas.EnergyJ <= optMeas.EnergyJ*1.01 && meas.LatencyS <= qos {
				continue
			}
			mis++
		}
	}
	return float64(mis) / float64(total), nil
}

func mapeOf(actual, pred []float64) (float64, error) {
	if len(actual) == 0 {
		return 0, fmt.Errorf("exp: no MAPE samples")
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		d := (pred[i] - actual[i]) / actual[i]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	return sum / float64(n) * 100, nil
}
