package exp

import (
	"fmt"

	"autoscale/internal/dnn"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Fig7 reproduces Fig 7 and the surrounding Section III-C analysis: the gap
// between the prediction-based approaches (LR, SVR, SVM, KNN, BO) and Opt in
// normalized PPW and QoS violations, plus the regressors' energy-estimation
// MAPE with and without runtime variance and the classifiers'
// mis-classification ratios. Like the main evaluation, the predictors are
// tested leave-one-out: each model is evaluated with predictors fitted on
// the other nine (Section V-C). Each fold is one cell (its five predictors
// fit and evaluate against a cell-private world), the full-zoo estimation
// metrics are a second cell kind, and the Edge/Opt anchors a third.
func Fig7(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:    "fig7",
		Title: "Prediction-based approaches vs Opt (Mi8Pro, leave-one-out)",
		Columns: []string{"Approach", "PPW (vs Edge CPU)", "QoS violation",
			"MAPE no-var (%)", "MAPE var (%)", "Misclass (%)"},
	}
	models := dnn.Zoo()
	envIDs := sim.StaticEnvIDs()
	cells := Cells(models, envIDs)
	approaches := []string{"LR", "SVR", "SVM", "KNN", "BO"}

	type mapeAcc struct{ noVarSum, varSum float64 }
	type fig7Cell struct {
		folds map[string]Result // fold cells: per-approach result on the held-out model
		mapes map[string]*mapeAcc
		misr  map[string]float64
		base  Result
		opt   Result
	}

	// Cells 0..len(models)-1 are the leave-one-out folds; cell len(models)
	// fits the full-zoo predictors and measures their estimation errors;
	// the last cell evaluates the Edge (CPU) and Opt anchors.
	outs, err := runCells(opts, len(models)+2, func(i int) (fig7Cell, error) {
		w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
		switch {
		case i < len(models):
			folds, err := fig7Fold(w, models, i, envIDs, opts)
			return fig7Cell{folds: folds}, err
		case i == len(models):
			out := fig7Cell{
				mapes: map[string]*mapeAcc{"LR": {}, "SVR": {}, "BO": {}},
				misr:  map[string]float64{"SVM": 0, "KNN": 0},
			}
			fullData, err := BuildDataset(w, ProfileConfig{
				Models: models, ActionsPerState: 12, WithVariance: true, Seed: opts.Seed + 501,
			})
			if err != nil {
				return out, err
			}
			fullLabels, err := BuildLabels(w, ProfileConfig{Models: models, Seed: opts.Seed + 502})
			if err != nil {
				return out, err
			}
			fullLR, err := NewLRPolicy(w, fullData, sim.NonStreaming)
			if err != nil {
				return out, err
			}
			fullSVR, err := NewSVRPolicy(w, fullData, sim.NonStreaming)
			if err != nil {
				return out, err
			}
			fullBO, err := NewBOPolicy(w, fullData[:len(fullData)/4], 120, opts.Seed+503, sim.NonStreaming)
			if err != nil {
				return out, err
			}
			fullSVM, err := NewSVMPolicy(w, fullLabels)
			if err != nil {
				return out, err
			}
			fullKNN, err := NewKNNPolicy(w, fullLabels, 5)
			if err != nil {
				return out, err
			}
			mapeRuns := opts.Runs
			for _, reg := range []struct {
				name string
				pol  *RegressionPolicy
			}{{"LR", fullLR}, {"SVR", fullSVR}, {"BO", fullBO}} {
				noVar, err := RegressorMAPE(w, reg.pol.Energy, models, false, mapeRuns, opts.Seed+504)
				if err != nil {
					return out, err
				}
				withVar, err := RegressorMAPE(w, reg.pol.Energy, models, true, mapeRuns, opts.Seed+505)
				if err != nil {
					return out, err
				}
				out.mapes[reg.name].noVarSum = noVar
				out.mapes[reg.name].varSum = withVar
			}
			for _, clf := range []struct {
				name string
				pol  *ClassifierPolicy
			}{{"SVM", fullSVM}, {"KNN", fullKNN}} {
				mis, err := ClassifierMisrate(w, clf.pol.Clf, models, sim.NonStreaming, mapeRuns/2+1, opts.Seed+506)
				if err != nil {
					return out, err
				}
				out.misr[clf.name] = mis
			}
			return out, nil
		default:
			evalCfg := EvalConfig{Models: models, EnvIDs: envIDs, Runs: opts.Runs, Seed: opts.Seed + 9}
			base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, evalCfg)
			if err != nil {
				return fig7Cell{}, err
			}
			opt, err := EvaluatePolicy(sched.Opt{World: w}, evalCfg)
			if err != nil {
				return fig7Cell{}, err
			}
			return fig7Cell{base: base, opt: opt}, nil
		}
	})
	if err != nil {
		return nil, err
	}

	// Merge the folds into per-approach aggregates (fold cell keys are
	// disjoint: each fold contributes only its held-out model's cells).
	agg := make(map[string]*Result, len(approaches))
	for _, name := range approaches {
		agg[name] = &Result{
			Policy:       name,
			MeanEnergyJ:  make(map[Cell]float64),
			MeanLatencyS: make(map[Cell]float64),
			QoSViolRatio: make(map[Cell]float64),
			Decisions:    make(map[sim.Location]int),
		}
	}
	for _, out := range outs[:len(models)] {
		for name, res := range out.folds {
			dst := agg[name]
			for c, v := range res.MeanEnergyJ {
				dst.MeanEnergyJ[c] = v
			}
			for c, v := range res.MeanLatencyS {
				dst.MeanLatencyS[c] = v
			}
			for c, v := range res.QoSViolRatio {
				dst.QoSViolRatio[c] = v
			}
			for l, n := range res.Decisions {
				dst.Decisions[l] += n
			}
			dst.Inferences += res.Inferences
		}
	}
	metrics := outs[len(models)]
	anchors := outs[len(models)+1]

	t.AddRow("Edge (CPU)", 1.0, anchors.base.MeanQoSViolation(cells), "-", "-", "-")
	for _, name := range approaches {
		res := agg[name]
		row := []interface{}{name, res.MeanNormPPW(anchors.base, cells), res.MeanQoSViolation(cells)}
		if m, ok := metrics.mapes[name]; ok {
			row = append(row, m.noVarSum, m.varSum, "-")
		} else {
			row = append(row, "-", "-", metrics.misr[name]*100)
		}
		t.AddRow(row...)
	}
	t.AddRow("Opt", anchors.opt.MeanNormPPW(anchors.base, cells), anchors.opt.MeanQoSViolation(cells), "-", "-", "-")

	t.Notes = append(t.Notes,
		"paper MAPE (no-var/var): LR 13.6/24.6, SVR 10.8/21.1, BO 9.2/15.7; "+
			"misclassification with variance: SVM 12.7%, KNN 14.3%; all leave a significant gap to Opt")
	t.Notes = append(t.Notes, fmt.Sprintf("leave-one-out over %d models, %d static environments", len(models), len(envIDs)))
	return t, nil
}

// fig7Fold fits the five prediction approaches on every model but the
// held-out one and evaluates them on the held-out model, returning the
// per-approach results.
func fig7Fold(w *sim.World, models []*dnn.Model, fold int, envIDs []string, opts Options) (map[string]Result, error) {
	held := models[fold]
	var trainSet []*dnn.Model
	for _, m := range models {
		if m.Name != held.Name {
			trainSet = append(trainSet, m)
		}
	}
	foldSeed := opts.Seed + int64(fold)*1000
	data, err := BuildDataset(w, ProfileConfig{
		Models: trainSet, ActionsPerState: 12, WithVariance: true, Seed: foldSeed + 1,
	})
	if err != nil {
		return nil, err
	}
	labels, err := BuildLabels(w, ProfileConfig{Models: trainSet, Seed: foldSeed + 2})
	if err != nil {
		return nil, err
	}

	lr, err := NewLRPolicy(w, data, sim.NonStreaming)
	if err != nil {
		return nil, err
	}
	svr, err := NewSVRPolicy(w, data, sim.NonStreaming)
	if err != nil {
		return nil, err
	}
	svm, err := NewSVMPolicy(w, labels)
	if err != nil {
		return nil, err
	}
	knn, err := NewKNNPolicy(w, labels, 5)
	if err != nil {
		return nil, err
	}
	bo, err := NewBOPolicy(w, data[:len(data)/4], 120, foldSeed+3, sim.NonStreaming)
	if err != nil {
		return nil, err
	}

	evalCfg := EvalConfig{Models: []*dnn.Model{held}, EnvIDs: envIDs,
		Runs: opts.Runs, Seed: foldSeed + 4}
	out := make(map[string]Result, 5)
	for _, p := range []sched.Policy{lr, svr, svm, knn, bo} {
		res, err := EvaluatePolicy(p, evalCfg)
		if err != nil {
			return nil, err
		}
		out[p.Name()] = res
	}
	return out, nil
}
