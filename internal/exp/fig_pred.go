package exp

import (
	"fmt"

	"autoscale/internal/dnn"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Fig7 reproduces Fig 7 and the surrounding Section III-C analysis: the gap
// between the prediction-based approaches (LR, SVR, SVM, KNN, BO) and Opt in
// normalized PPW and QoS violations, plus the regressors' energy-estimation
// MAPE with and without runtime variance and the classifiers'
// mis-classification ratios. Like the main evaluation, the predictors are
// tested leave-one-out: each model is evaluated with predictors fitted on
// the other nine (Section V-C).
func Fig7(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:    "fig7",
		Title: "Prediction-based approaches vs Opt (Mi8Pro, leave-one-out)",
		Columns: []string{"Approach", "PPW (vs Edge CPU)", "QoS violation",
			"MAPE no-var (%)", "MAPE var (%)", "Misclass (%)"},
	}
	w := sim.NewWorld(soc.Mi8Pro(), opts.Seed)
	models := dnn.Zoo()
	envIDs := sim.StaticEnvIDs()
	cells := Cells(models, envIDs)

	// Aggregates across folds.
	approaches := []string{"LR", "SVR", "SVM", "KNN", "BO"}
	agg := make(map[string]*Result, len(approaches))
	for _, name := range approaches {
		agg[name] = &Result{
			Policy:       name,
			MeanEnergyJ:  make(map[Cell]float64),
			MeanLatencyS: make(map[Cell]float64),
			QoSViolRatio: make(map[Cell]float64),
			Decisions:    make(map[sim.Location]int),
		}
	}
	type mapeAcc struct{ noVarSum, varSum float64 }
	mapes := map[string]*mapeAcc{"LR": {}, "SVR": {}, "BO": {}}
	misr := map[string]float64{"SVM": 0, "KNN": 0}

	for fold, held := range models {
		var trainSet []*dnn.Model
		for _, m := range models {
			if m.Name != held.Name {
				trainSet = append(trainSet, m)
			}
		}
		foldSeed := opts.Seed + int64(fold)*1000
		data, err := BuildDataset(w, ProfileConfig{
			Models: trainSet, ActionsPerState: 12, WithVariance: true, Seed: foldSeed + 1,
		})
		if err != nil {
			return nil, err
		}
		labels, err := BuildLabels(w, ProfileConfig{Models: trainSet, Seed: foldSeed + 2})
		if err != nil {
			return nil, err
		}

		lr, err := NewLRPolicy(w, data, sim.NonStreaming)
		if err != nil {
			return nil, err
		}
		svr, err := NewSVRPolicy(w, data, sim.NonStreaming)
		if err != nil {
			return nil, err
		}
		svm, err := NewSVMPolicy(w, labels)
		if err != nil {
			return nil, err
		}
		knn, err := NewKNNPolicy(w, labels, 5)
		if err != nil {
			return nil, err
		}
		bo, err := NewBOPolicy(w, data[:len(data)/4], 120, foldSeed+3, sim.NonStreaming)
		if err != nil {
			return nil, err
		}

		evalCfg := EvalConfig{Models: []*dnn.Model{held}, EnvIDs: envIDs,
			Runs: opts.Runs, Seed: foldSeed + 4}
		for _, p := range []sched.Policy{lr, svr, svm, knn, bo} {
			res, err := EvaluatePolicy(p, evalCfg)
			if err != nil {
				return nil, err
			}
			dst := agg[p.Name()]
			for c, v := range res.MeanEnergyJ {
				dst.MeanEnergyJ[c] = v
			}
			for c, v := range res.MeanLatencyS {
				dst.MeanLatencyS[c] = v
			}
			for c, v := range res.QoSViolRatio {
				dst.QoSViolRatio[c] = v
			}
			for l, n := range res.Decisions {
				dst.Decisions[l] += n
			}
			dst.Inferences += res.Inferences
		}

	}

	// Estimation-error metrics are properties of the fitted predictors on
	// their design space, so they are measured on models fitted to the
	// full zoo (not leave-one-out), matching the paper's MAPE protocol.
	fullData, err := BuildDataset(w, ProfileConfig{
		Models: models, ActionsPerState: 12, WithVariance: true, Seed: opts.Seed + 501,
	})
	if err != nil {
		return nil, err
	}
	fullLabels, err := BuildLabels(w, ProfileConfig{Models: models, Seed: opts.Seed + 502})
	if err != nil {
		return nil, err
	}
	fullLR, err := NewLRPolicy(w, fullData, sim.NonStreaming)
	if err != nil {
		return nil, err
	}
	fullSVR, err := NewSVRPolicy(w, fullData, sim.NonStreaming)
	if err != nil {
		return nil, err
	}
	fullBO, err := NewBOPolicy(w, fullData[:len(fullData)/4], 120, opts.Seed+503, sim.NonStreaming)
	if err != nil {
		return nil, err
	}
	fullSVM, err := NewSVMPolicy(w, fullLabels)
	if err != nil {
		return nil, err
	}
	fullKNN, err := NewKNNPolicy(w, fullLabels, 5)
	if err != nil {
		return nil, err
	}
	mapeRuns := opts.Runs
	for name, reg := range map[string]*RegressionPolicy{"LR": fullLR, "SVR": fullSVR, "BO": fullBO} {
		noVar, err := RegressorMAPE(w, reg.Energy, models, false, mapeRuns, opts.Seed+504)
		if err != nil {
			return nil, err
		}
		withVar, err := RegressorMAPE(w, reg.Energy, models, true, mapeRuns, opts.Seed+505)
		if err != nil {
			return nil, err
		}
		mapes[name].noVarSum = noVar
		mapes[name].varSum = withVar
	}
	for name, clf := range map[string]*ClassifierPolicy{"SVM": fullSVM, "KNN": fullKNN} {
		mis, err := ClassifierMisrate(w, clf.Clf, models, sim.NonStreaming, mapeRuns/2+1, opts.Seed+506)
		if err != nil {
			return nil, err
		}
		misr[name] = mis
	}

	evalCfg := EvalConfig{Models: models, EnvIDs: envIDs, Runs: opts.Runs, Seed: opts.Seed + 9}
	base, err := EvaluatePolicy(sched.EdgeCPU{World: w}, evalCfg)
	if err != nil {
		return nil, err
	}
	optRes, err := EvaluatePolicy(sched.Opt{World: w}, evalCfg)
	if err != nil {
		return nil, err
	}

	t.AddRow("Edge (CPU)", 1.0, base.MeanQoSViolation(cells), "-", "-", "-")
	for _, name := range approaches {
		res := agg[name]
		row := []interface{}{name, res.MeanNormPPW(base, cells), res.MeanQoSViolation(cells)}
		if m, ok := mapes[name]; ok {
			row = append(row, m.noVarSum, m.varSum, "-")
		} else {
			row = append(row, "-", "-", misr[name]*100)
		}
		t.AddRow(row...)
	}
	t.AddRow("Opt", optRes.MeanNormPPW(base, cells), optRes.MeanQoSViolation(cells), "-", "-", "-")

	t.Notes = append(t.Notes,
		"paper MAPE (no-var/var): LR 13.6/24.6, SVR 10.8/21.1, BO 9.2/15.7; "+
			"misclassification with variance: SVM 12.7%, KNN 14.3%; all leave a significant gap to Opt")
	t.Notes = append(t.Notes, fmt.Sprintf("leave-one-out over %d models, %d static environments", len(models), len(envIDs)))
	return t, nil
}
