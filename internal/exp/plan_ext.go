package exp

import (
	"context"
	"fmt"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/plan"
	"autoscale/internal/router"
	"autoscale/internal/serve"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// ExtensionPlan compares static provisioning against the model-driven
// capacity planner on the serving tier: the same four Mi8Pro lanes take
// gold/silver/best-effort traffic at a steady base rate, a scripted 12x
// arrival surge lands mid-run, and the table reports each class's p95
// virtual response time against its SLO target plus the shed share. The
// planner row set shows SLO-ordered shedding (best-effort absorbs the surge,
// gold never sheds and stays inside its target); the static row set shows
// every class riding the same unbounded backlog through the surge.
func ExtensionPlan(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:    "ext-plan",
		Title: "Extension: model-driven capacity planning vs static provisioning (4 Mi8Pro lanes, 12x surge)",
		Columns: []string{"Provisioning", "Class", "p95 resp (ms)", "SLO p95 (ms)",
			"Attained", "Shed share", "Lanes"},
	}

	classes := []plan.Class{
		{Name: "gold", TargetP95S: 1.0, Weight: 4, MaxQueueS: 2.0},
		{Name: "silver", TargetP95S: 1.2, Weight: 2, MaxQueueS: 0.5},
		{Name: "best", TargetP95S: 1.5, Weight: 1, MaxQueueS: 0.1},
	}
	for _, planned := range []bool{false, true} {
		st, err := runPlanDrill(opts.Seed, classes, planned)
		if err != nil {
			return nil, err
		}
		label := "static"
		if planned {
			label = "planned"
		}
		for _, cs := range st.Classes {
			total := cs.Admitted + cs.Shed
			shedShare := 0.0
			if total > 0 {
				shedShare = float64(cs.Shed) / float64(total)
			}
			t.AddRow(label, cs.Name, cs.AchievedP95S*1e3, cs.TargetP95S*1e3,
				cs.Attained, shedShare,
				fmt.Sprintf("%d/%d", st.Decision.ActiveLanes, st.Decision.TotalLanes))
		}
	}
	t.Notes = append(t.Notes,
		"arrivals ride a virtual clock (base 0.75 Erlangs per lane, scripted load_surge x12 over [4s,6s)): "+
			"the same seed replays the same plan decisions and shed sequence",
		"the planner starts on one active lane and must scale to four from its surge lookahead "+
			"before the wave lands; the static fleet always runs all four lanes with no admission gates")
	return t, nil
}

// runPlanDrill drives one static-or-planned pass of the surge drill and
// returns the planner-shaped status (for the static pass, a status assembled
// from an inert planner over the finished router, so both rows read the same
// fields).
func runPlanDrill(seed int64, classes []plan.Class, planned bool) (plan.Status, error) {
	model := dnn.MustByName("MobileNet v3")
	conditions := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	inj := fault.New(&fault.Schedule{Name: "plan-drill", Faults: []fault.Spec{
		{Kind: fault.KindLoadSurge, StartS: 4, EndS: 6, Factor: 12},
	}}, exec.NewRoot(seed).Child("faults"))

	// Probe the mean service time on a throwaway lane so the offered load
	// tracks the hardware model.
	probeEng, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seed+100), core.DefaultConfig())
	if err != nil {
		return plan.Status{}, err
	}
	probe, err := serve.New([]serve.Backend{{Device: "probe", Engine: probeEng}}, serve.Config{Name: "probe"})
	if err != nil {
		return plan.Status{}, err
	}
	for i := 0; i < 30; i++ {
		if _, err := probe.Do(serve.Request{Model: model, Conditions: conditions}); err != nil {
			return plan.Status{}, err
		}
	}
	snap := probe.Snapshot()
	probe.Shutdown(context.Background())
	if snap.Latency.Count == 0 {
		return plan.Status{}, fmt.Errorf("exp: plan drill probe served nothing")
	}
	svc := snap.Latency.Sum / float64(snap.Latency.Count)

	backends := make([]serve.Backend, 0, 4)
	for i := 0; i < 4; i++ {
		eng, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seed+int64(i)), core.DefaultConfig())
		if err != nil {
			return plan.Status{}, err
		}
		backends = append(backends, serve.Backend{Device: fmt.Sprintf("lane-%d", i), Engine: eng})
	}
	gw, err := serve.New(backends, serve.Config{Name: "shard-0"})
	if err != nil {
		return plan.Status{}, err
	}
	rt, err := router.New([]router.ShardGateway{{Name: "shard-0", Gateway: gw}}, router.Config{
		Tenants: plan.Tenants(classes),
	})
	if err != nil {
		return plan.Status{}, err
	}

	var p *plan.Planner
	if planned {
		rt.SetActiveLanes(1)
		p, err = plan.New(rt, plan.Config{
			Classes: classes, IntervalS: 0.5, SurgeLookaheadS: 1.5,
			MaxStepFactor: 2, Faults: inj,
		})
		if err != nil {
			return plan.Status{}, err
		}
	}

	names := []string{"gold", "silver", "best"}
	baseGap := svc / 0.75
	arrival := 0.0
	for i := 0; arrival < 8; i++ {
		arrival += baseGap / inj.SurgeFactor(arrival)
		if p != nil {
			p.MaybeTick(arrival)
		}
		// Sheds surface as an error alongside the terminal response; they are
		// the drill's point, not a failure.
		rt.Do(serve.Request{
			Model: model, Conditions: conditions,
			Tenant: names[i%len(names)], ArrivalS: arrival,
		})
	}
	if p == nil {
		// An inert planner over the finished router renders the static rows
		// through the same attainment accessor; it never ticks, so it
		// actuates nothing beyond the class weights and gates it would
		// apply — build it only now, after the drive.
		if p, err = plan.New(rt, plan.Config{Classes: classes, Faults: inj}); err != nil {
			return plan.Status{}, err
		}
	}
	st := p.Status()
	if st.Decision.Generation == 0 {
		// The static pass never ticked: report the fixed lane counts.
		st.Decision.ActiveLanes = rt.ActiveLanes()
		st.Decision.TotalLanes = rt.TotalLanes()
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		return plan.Status{}, err
	}
	return st, nil
}
