package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The experiment harness is parallel but deterministic: each experiment is
// decomposed into pure cell functions that build every stateful object they
// need (worlds, policies, engines) from seeds derived inside the cell, so a
// cell's result is a pure function of (Options, cell index) and independent
// of goroutine scheduling. Cells run on a bounded worker pool shared across
// experiments; results are merged in submission order, so the rendered
// tables are byte-identical to a serial run.

// pool is a counting semaphore bounding concurrently running work units
// (cells, plus whole experiments between their fan-out phases).
type pool struct {
	tokens chan struct{}
}

// newPool builds a pool admitting n concurrent work units (n <= 0 selects
// GOMAXPROCS).
func newPool(n int) *pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &pool{tokens: make(chan struct{}, n)}
}

func (p *pool) acquire() { p.tokens <- struct{}{} }
func (p *pool) release() { <-p.tokens }

// addBusy accumulates occupied-worker time for RunAll's per-experiment
// accounting; a no-op outside RunAll.
func (o Options) addBusy(d time.Duration) {
	if o.busy != nil {
		atomic.AddInt64(o.busy, int64(d))
	}
}

// runCells evaluates f(0..n-1) on the options' worker pool and returns the
// results in index order; the first error wins. Each cell must be pure in
// the sense above — in particular it must not share a sim.World or an engine
// with another cell. The calling experiment, if it holds a pool token (it
// does when entered through Run or RunAll), lends it to the cells while it
// waits, so Parallel=1 runs exactly one unit of work at a time and the
// harness never deadlocks on nested waits. Cells must not call runCells.
func runCells[T any](o Options, n int, f func(int) (T, error)) ([]T, error) {
	if o.pool == nil {
		o = o.withDefaults()
	}
	if o.held {
		o.pool.release()
		lendStart := time.Now()
		defer func() {
			o.pool.acquire()
			o.addBusy(-time.Since(lendStart))
		}()
	}
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o.pool.acquire()
			defer o.pool.release()
			start := time.Now()
			defer func() { o.addBusy(time.Since(start)) }()
			out[i], errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunOutcome is the result of one experiment inside RunAll. Elapsed is the
// wall-clock the experiment's own work occupied a pool worker — its serial
// phases plus its cells, excluding time its token was lent to other
// experiments' cells — so the per-experiment numbers reflect relative cost
// even though all experiments' spans overlap on the shared pool.
type RunOutcome struct {
	ID      string
	Table   *Table
	Err     error
	Elapsed time.Duration
}

// RunAll executes the given experiments concurrently on one shared worker
// pool and returns the outcomes in the input order. Because every
// experiment's cells are pure, the tables are identical to what sequential
// Run calls would produce, for any Parallel setting.
func RunAll(ids []string, opts Options) []RunOutcome {
	opts = opts.withDefaults() // share one pool across all experiments
	out := make([]RunOutcome, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			o := opts
			var busy int64
			o.busy = &busy
			o.pool.acquire()
			defer o.pool.release()
			start := time.Now()
			table, err := runHeld(id, o)
			elapsed := time.Since(start) + time.Duration(atomic.LoadInt64(&busy))
			out[i] = RunOutcome{ID: id, Table: table, Err: err, Elapsed: elapsed}
		}(i, id)
	}
	wg.Wait()
	return out
}
