package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/policy"
	"autoscale/internal/serve/metrics"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Gateway serves inference requests against a fleet of per-device engines,
// one worker goroutine per device. It is safe for concurrent use by any
// number of clients.
type Gateway struct {
	cfg     Config
	met     *metrics.Registry
	workers []*worker
	byName  map[string]*worker
	rr      atomic.Uint64
	warm    map[string]uint64 // device -> checkpoint generation warm-started from

	mu       sync.RWMutex
	closed   bool
	inflight sync.WaitGroup // Submit calls between admission and enqueue
	wg       sync.WaitGroup // worker goroutines

	syncMu sync.Mutex
	syncer *policy.Syncer
}

// worker is one device's serving lane: a warm engine and a bounded queue.
type worker struct {
	device      string
	engine      *core.Engine
	queue       chan *pending
	fallback    sim.Target
	hasFallback bool
}

// pending is one admitted request awaiting execution.
type pending struct {
	req         Request
	resp        chan Response
	submittedAt time.Time
}

// New builds a gateway over the given backends and starts one worker per
// device. Backends need distinct device names and non-nil engines.
func New(backends []Backend, cfg Config) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, errors.New("serve: no backends")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:    cfg,
		met:    metrics.New(),
		byName: make(map[string]*worker, len(backends)),
		warm:   make(map[string]uint64),
	}
	for _, b := range backends {
		if b.Engine == nil {
			return nil, fmt.Errorf("serve: backend %q has nil engine", b.Device)
		}
		if b.Device == "" {
			return nil, errors.New("serve: backend with empty device name")
		}
		if _, dup := g.byName[b.Device]; dup {
			return nil, fmt.Errorf("serve: duplicate backend %q", b.Device)
		}
		w := &worker{
			device: b.Device,
			engine: b.Engine,
			queue:  make(chan *pending, cfg.queueDepth()),
		}
		// The failover target mirrors the sim's outage fallback: local CPU
		// at top frequency, FP32.
		if cpu := b.Engine.World.Device.Processor(soc.CPU); cpu != nil {
			w.fallback = sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
			w.hasFallback = true
		}
		g.workers = append(g.workers, w)
		g.byName[b.Device] = w
	}
	// Warm-start before any worker goroutine runs, so a restarted device
	// resumes from its latest valid checkpoint (or the fleet's merged
	// policy) before it serves its first request.
	if cfg.Checkpoints != nil {
		for _, w := range g.workers {
			if gen, ok := warmStart(w, cfg.Checkpoints); ok {
				g.warm[w.device] = gen
			}
		}
	}
	for _, w := range g.workers {
		g.wg.Add(1)
		go g.runWorker(w)
	}
	return g, nil
}

// Devices returns the served device names in sorted order.
func (g *Gateway) Devices() []string {
	out := make([]string, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, w.device)
	}
	sort.Strings(out)
	return out
}

// Metrics exposes the live registry.
func (g *Gateway) Metrics() *metrics.Registry { return g.met }

// Snapshot copies the current metrics.
func (g *Gateway) Snapshot() metrics.Snapshot { return g.met.Snapshot() }

func (g *Gateway) now() time.Time {
	if g.cfg.Clock != nil {
		return g.cfg.Clock()
	}
	return time.Now()
}

// Submit runs admission control on one request and, when admitted, enqueues
// it; it never blocks on a full queue. The returned channel (buffered,
// always delivered to exactly once) carries the terminal Response — shed and
// expired requests get an immediate rejection response rather than an
// execution. The error return is reserved for misuse (nil model) and a
// closed gateway.
func (g *Gateway) Submit(req Request) (<-chan Response, error) {
	if req.Model == nil {
		return nil, errors.New("serve: request needs a model")
	}
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return nil, ErrClosed
	}
	// inflight is raised before the closed check releases so Shutdown
	// cannot close the queues while this request is between admission and
	// enqueue.
	g.inflight.Add(1)
	g.mu.RUnlock()
	defer g.inflight.Done()

	now := g.now()
	g.met.IncSubmitted()
	p := &pending{req: req, resp: make(chan Response, 1), submittedAt: now}

	// A dead-on-arrival deadline is failed fast without touching a queue.
	if !req.Deadline.IsZero() && now.After(req.Deadline) {
		g.met.IncExpired()
		p.resp <- Response{
			Status: StatusExpired, Err: ErrDeadlineExpired,
			SubmittedAt: now, DoneAt: now,
		}
		return p.resp, nil
	}

	w, err := g.pick(req.Device)
	if err != nil {
		g.met.IncFailed()
		p.resp <- Response{Status: StatusFailed, Err: err, SubmittedAt: now, DoneAt: now}
		return p.resp, nil
	}

	if g.enqueue(w, p) {
		return p.resp, nil
	}
	if g.cfg.Shed == ShedOldest {
		// Evict the oldest queued request to make room; if a worker drained
		// the queue in between, the eviction simply frees nothing and the
		// retry below usually succeeds.
		select {
		case old := <-w.queue:
			g.met.QueueExit()
			g.reject(old, w.device)
		default:
		}
		if g.enqueue(w, p) {
			return p.resp, nil
		}
	}
	g.reject(p, w.device)
	return p.resp, nil
}

func (g *Gateway) enqueue(w *worker, p *pending) bool {
	select {
	case w.queue <- p:
		g.met.QueueEnter()
		return true
	default:
		return false
	}
}

// reject sheds one request with a terminal response.
func (g *Gateway) reject(p *pending, device string) {
	g.met.IncShed()
	p.resp <- Response{
		Status: StatusShed, Device: device, Err: ErrQueueFull,
		SubmittedAt: p.submittedAt, DoneAt: g.now(),
	}
}

// pick routes a request: a named device directly, otherwise the least-loaded
// queue with a rotating tiebreak.
func (g *Gateway) pick(device string) (*worker, error) {
	if device != "" {
		w, ok := g.byName[device]
		if !ok {
			return nil, fmt.Errorf("%w: %q (serving %v)", ErrUnknownDevice, device, g.Devices())
		}
		return w, nil
	}
	offset := int(g.rr.Add(1))
	best := g.workers[offset%len(g.workers)]
	for i := 1; i < len(g.workers); i++ {
		w := g.workers[(offset+i)%len(g.workers)]
		if len(w.queue) < len(best.queue) {
			best = w
		}
	}
	return best, nil
}

// Do submits one request and waits for its response — the synchronous
// convenience for closed-loop clients. The response's Err is also returned
// for non-served outcomes.
func (g *Gateway) Do(req Request) (Response, error) {
	ch, err := g.Submit(req)
	if err != nil {
		return Response{}, err
	}
	r := <-ch
	if r.Status != StatusServed {
		return r, r.Err
	}
	return r, nil
}

// runWorker drains one device queue until Shutdown closes it.
func (g *Gateway) runWorker(w *worker) {
	defer g.wg.Done()
	for p := range w.queue {
		g.met.QueueExit()
		g.serveOne(w, p)
	}
}

// serveOne executes one admitted request: deadline fast-fail, the engine
// step, optional failover, metrics, response.
func (g *Gateway) serveOne(w *worker, p *pending) {
	start := g.now()
	wait := start.Sub(p.submittedAt).Seconds()
	g.met.ObserveWait(wait)

	base := Response{Device: w.device, SubmittedAt: p.submittedAt, WaitS: wait}

	// A request that waited past its deadline is failed fast, not executed:
	// the client has already moved on, and running it would only burn
	// device energy on a dead answer.
	if !p.req.Deadline.IsZero() && start.After(p.req.Deadline) {
		g.met.IncExpired()
		base.Status, base.Err, base.DoneAt = StatusExpired, ErrDeadlineExpired, start
		p.resp <- base
		return
	}

	d, err := w.engine.RunInference(p.req.Model, p.req.Conditions)
	if err != nil {
		g.met.IncFailed()
		base.Status, base.Err, base.DoneAt = StatusFailed, err, g.now()
		p.resp <- base
		return
	}

	// The sim reports an outage by executing the local fallback in place of
	// the chosen remote target.
	outage := d.Target.Location != sim.Local && d.Measurement.Target.Location == sim.Local
	if outage {
		g.met.IncOutage()
	}

	retried := false
	if g.cfg.FailoverLocal && d.QoSViolated && w.hasFallback &&
		!outage && d.Measurement.Target != w.fallback {
		// Outage results already ran the fallback; everything else that
		// missed QoS gets one local re-execution. Deadline permitting.
		if p.req.Deadline.IsZero() || g.now().Before(p.req.Deadline) {
			if meas, ferr := w.engine.World.Execute(p.req.Model, w.fallback, p.req.Conditions); ferr == nil {
				d.Measurement = meas
				d.QoSViolated = meas.LatencyS > d.QoSTargetS
				retried = true
				g.met.IncRetried()
			}
		}
	}

	if d.QoSViolated {
		g.met.IncQoSViolation()
	}
	g.met.IncServed()
	g.met.ObserveLatency(d.Measurement.LatencyS)
	g.met.ObserveEnergy(d.Measurement.EnergyJ)
	g.met.CountTarget(d.Measurement.Target.Location.String())
	g.met.CountDevice(w.device)

	base.Status, base.Decision, base.Retried, base.Outage, base.DoneAt =
		StatusServed, d, retried, outage, g.now()
	p.resp <- base
}

// Shutdown stops admission, drains every queue (queued requests still
// execute, deadline rules still apply), waits for the workers, then persists
// each engine's final Q-table to cfg.Checkpoints — exactly once per worker,
// guarded by the closed flag (a second Shutdown returns ErrClosed without
// re-flushing). The context bounds only the drain wait; on ctx expiry
// workers keep draining in the background but the final checkpoints are
// skipped.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.closed = true
	g.mu.Unlock()

	// The background policy sync (if running) must stop before the final
	// flush so its passes cannot interleave with shutdown persistence.
	g.syncMu.Lock()
	syncer := g.syncer
	g.syncMu.Unlock()
	if syncer != nil {
		syncer.Stop()
	}

	// Wait out Submits that passed the closed check, then close the queues
	// — after this no send can race the close.
	g.inflight.Wait()
	for _, w := range g.workers {
		close(w.queue)
	}

	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}

	if g.cfg.Checkpoints == nil {
		return nil
	}
	var errs []error
	for _, w := range g.workers {
		if err := checkpointWorker(w, g.cfg.Checkpoints, g.cfg.PolicySync); err != nil {
			errs = append(errs, fmt.Errorf("serve: checkpoint %s: %w", w.device, err))
		}
	}
	return errors.Join(errs...)
}
