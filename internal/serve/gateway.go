package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/fault"
	"autoscale/internal/obs"
	"autoscale/internal/policy"
	"autoscale/internal/serve/metrics"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
	"autoscale/internal/trace"
	"autoscale/internal/tracez"
)

// Gateway serves inference requests against a fleet of per-device engines,
// one worker goroutine per device. It is safe for concurrent use by any
// number of clients.
type Gateway struct {
	cfg Config
	met *metrics.Registry
	rr  atomic.Uint64

	// activeLanes bounds how many worker lanes (in registration order)
	// unpinned requests route to; 0 or >= len(workers) means all. The
	// capacity planner's worker-pool actuator: deactivated lanes drain what
	// they hold and then idle, pinned requests still reach them.
	activeLanes atomic.Int64

	// mu guards closed and the worker set: AddBackend grows workers/byName
	// at runtime (the routing tier re-homes devices onto live shards), so
	// every reader snapshots under the read lock.
	mu       sync.RWMutex
	closed   bool
	workers  []*worker
	byName   map[string]*worker
	warm     map[string]uint64 // device -> checkpoint generation warm-started from
	killed   atomic.Bool       // crash semantics: workers reject instead of serve
	inflight sync.WaitGroup    // Submit calls between admission and enqueue
	wg       sync.WaitGroup    // worker goroutines

	syncMu sync.Mutex
	syncer *policy.Syncer
}

// worker is one device's serving lane: a warm engine and a bounded queue.
// The resilience fields (breakers, scripted events, sequence counter) are
// only touched by the worker's own goroutine.
type worker struct {
	device      string
	engine      *core.Engine
	queue       chan *pending
	fallback    sim.Target
	hasFallback bool

	breakers  map[sim.Location]*breaker
	events    []fault.Event // scripted crash/corruption drills, time-ordered
	nextEvent int
	seq       uint64 // per-worker request sequence (trace + retry streams)

	// tbuf buffers this lane's trace records between batch flushes; only the
	// worker goroutine touches it. It drains to the shared writer when it
	// fills, when the lane's queue runs empty (so a synchronous client sees
	// its record in the trace before its response arrives), and when the
	// worker exits.
	tbuf []trace.Record

	// prov is the lane's decision-provenance scratch, reused across requests
	// so the traced decide path allocates nothing in steady state; only the
	// worker goroutine touches it, and it is copied into the request's trace
	// immediately after each engine step.
	prov core.DecisionProv
}

// traceBatch bounds a worker's trace buffer: under sustained load records
// drain to the shared writer in batches of this size.
const traceBatch = 64

// breakerFor returns the worker's breaker for a remote site (nil when the
// resilience layer is off or the location is local).
func (w *worker) breakerFor(loc sim.Location) *breaker {
	if w.breakers == nil {
		return nil
	}
	return w.breakers[loc]
}

// anyBreakerNotClosed reports whether the worker is in degraded mode.
func (w *worker) anyBreakerNotClosed() bool {
	for _, b := range w.breakers {
		if b.state != breakerClosed {
			return true
		}
	}
	return false
}

// pending is one admitted request awaiting execution.
type pending struct {
	req         Request
	resp        chan Response
	submittedAt time.Time
}

// New builds a gateway over the given backends and starts one worker per
// device. Backends need distinct device names and non-nil engines.
func New(backends []Backend, cfg Config) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, errors.New("serve: no backends")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.Resilience = cfg.Resilience.withDefaults()
	g := &Gateway{
		cfg:    cfg,
		met:    metrics.New(),
		byName: make(map[string]*worker, len(backends)),
		warm:   make(map[string]uint64),
	}
	for _, b := range backends {
		w, err := g.newWorker(b)
		if err != nil {
			return nil, err
		}
		g.workers = append(g.workers, w)
		g.byName[b.Device] = w
	}
	// Warm-start before any worker goroutine runs, so a restarted device
	// resumes from its latest valid checkpoint (or the fleet's merged
	// policy) before it serves its first request.
	if cfg.Checkpoints != nil {
		for _, w := range g.workers {
			if gen, ok := warmStart(w, cfg.Checkpoints); ok {
				g.warm[w.device] = gen
			}
		}
	}
	for _, w := range g.workers {
		g.wg.Add(1)
		go g.runWorker(w)
	}
	return g, nil
}

// newWorker validates one backend and builds its serving lane (queue,
// fallback target, fault drills, breakers). Callers hold g.mu or run before
// any worker goroutine exists.
func (g *Gateway) newWorker(b Backend) (*worker, error) {
	if b.Engine == nil {
		return nil, fmt.Errorf("serve: backend %q has nil engine", b.Device)
	}
	if b.Device == "" {
		return nil, errors.New("serve: backend with empty device name")
	}
	if _, dup := g.byName[b.Device]; dup {
		return nil, fmt.Errorf("serve: duplicate backend %q", b.Device)
	}
	w := &worker{
		device: b.Device,
		engine: b.Engine,
		queue:  make(chan *pending, g.cfg.queueDepth()),
	}
	// The failover target mirrors the sim's outage fallback: local CPU
	// at top frequency, FP32.
	if cpu := b.Engine.World.Device.Processor(soc.CPU); cpu != nil {
		w.fallback = sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
		w.hasFallback = true
	}
	// Scripted faults: install the injector on the backend world (unless
	// the caller already wired one) and stage this device's one-shot
	// crash/corruption drills.
	if g.cfg.Faults != nil {
		if b.Engine.World.Faults == nil {
			b.Engine.World.Faults = g.cfg.Faults
		}
		w.events = g.cfg.Faults.Events(b.Device)
	}
	if g.cfg.Resilience.Enabled {
		w.breakers = map[sim.Location]*breaker{
			sim.Connected: newBreaker(b.Device, sim.Connected, g.cfg.Resilience, g.met, g.cfg.Recorder),
			sim.Cloud:     newBreaker(b.Device, sim.Cloud, g.cfg.Resilience, g.met, g.cfg.Recorder),
		}
	}
	return w, nil
}

// AddBackend grows the gateway with one more device lane at runtime — the
// routing tier re-homes a dead shard's devices onto survivors through this.
// The new worker warm-starts from the device's latest valid checkpoint (or
// the fleet's merged policy) exactly like a boot-time backend, then starts
// serving immediately. It fails on a closed gateway and on duplicate or
// invalid backends.
func (g *Gateway) AddBackend(b Backend) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	w, err := g.newWorker(b)
	if err != nil {
		return err
	}
	if g.cfg.Checkpoints != nil {
		if gen, ok := warmStart(w, g.cfg.Checkpoints); ok {
			g.warm[w.device] = gen
		}
	}
	g.workers = append(g.workers, w)
	g.byName[w.device] = w
	g.wg.Add(1)
	go g.runWorker(w)
	return nil
}

// Devices returns the served device names in sorted order.
func (g *Gateway) Devices() []string {
	g.mu.RLock()
	out := make([]string, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, w.device)
	}
	g.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Metrics exposes the live registry.
func (g *Gateway) Metrics() *metrics.Registry { return g.met }

// Tracer exposes the gateway's causal tracer — nil when tracing is off. It
// lights up the admin server's /traces endpoints (TraceSource).
func (g *Gateway) Tracer() *tracez.Tracer { return g.cfg.Tracer }

// Snapshot copies the current metrics.
func (g *Gateway) Snapshot() metrics.Snapshot { return g.met.Snapshot() }

// Health samples each device engine's learning-health gauges (read-only;
// see core.Health). Keys are device names.
func (g *Gateway) Health() map[string]core.Health {
	ws := g.snapshotWorkers()
	out := make(map[string]core.Health, len(ws))
	for _, w := range ws {
		out[w.device] = w.engine.Health()
	}
	return out
}

// snapshotWorkers copies the current worker set under the read lock.
func (g *Gateway) snapshotWorkers() []*worker {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]*worker(nil), g.workers...)
}

// VirtualNow returns the shard's virtual time: the maximum of its workers'
// engine clocks. The routing tier schedules shard-lifecycle drills (crash
// events) against this reading, so lifecycle is as deterministic as the
// execution it rides on.
func (g *Gateway) VirtualNow() float64 {
	var now float64
	for _, w := range g.snapshotWorkers() {
		if t := w.engine.Now(); t > now {
			now = t
		}
	}
	return now
}

// Closed reports whether Shutdown has begun.
func (g *Gateway) Closed() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.closed
}

func (g *Gateway) now() time.Time {
	if g.cfg.Clock != nil {
		return g.cfg.Clock()
	}
	return time.Now()
}

// Submit runs admission control on one request and, when admitted, enqueues
// it; it never blocks on a full queue. The returned channel (buffered,
// always delivered to exactly once) carries the terminal Response — shed and
// expired requests get an immediate rejection response rather than an
// execution. The error return is reserved for misuse (nil model) and a
// closed gateway.
func (g *Gateway) Submit(req Request) (<-chan Response, error) {
	p := &pending{req: req, resp: make(chan Response, 1)}
	if err := g.submit(p); err != nil {
		return nil, err
	}
	return p.resp, nil
}

// submit runs admission control on one pending request. On a nil error the
// request's resp channel is guaranteed exactly one delivery; on an error
// (misuse, closed gateway) nothing was enqueued and nothing will be
// delivered, so a pooled pending can be recycled immediately.
func (g *Gateway) submit(p *pending) error {
	if p.req.Model == nil {
		return errors.New("serve: request needs a model")
	}
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return ErrClosed
	}
	// inflight is raised before the closed check releases so Shutdown
	// cannot close the queues while this request is between admission and
	// enqueue.
	g.inflight.Add(1)
	g.mu.RUnlock()
	defer g.inflight.Done()

	now := g.now()
	g.met.IncSubmitted()
	p.submittedAt = now

	// Standalone-gateway tracing: requests arriving without a trace handle
	// get one here, so the span tree starts at admission. Under the routing
	// tier requests already carry the handle the router started.
	if g.cfg.Tracer != nil && p.req.Trace == nil {
		p.req.Trace = g.cfg.Tracer.Start(p.req.Model.Name, p.req.Tenant, p.req.ArrivalS)
	}

	// A dead-on-arrival deadline is failed fast without touching a queue.
	if !p.req.Deadline.IsZero() && now.After(p.req.Deadline) {
		g.met.IncExpired()
		p.req.Trace.Flag(tracez.FlagExpired)
		p.req.Trace.Finish("expired")
		p.resp <- Response{
			Status: StatusExpired, Err: ErrDeadlineExpired,
			SubmittedAt: now, DoneAt: now,
		}
		return nil
	}

	w, err := g.pick(p.req.Device)
	if err != nil {
		g.met.IncFailed()
		p.req.Trace.Flag(tracez.FlagFailed)
		p.req.Trace.Finish("failed")
		p.resp <- Response{Status: StatusFailed, Err: err, SubmittedAt: now, DoneAt: now}
		return nil
	}

	if g.enqueue(w, p) {
		return nil
	}
	if g.cfg.Shed == ShedOldest {
		// Evict the oldest queued request to make room; if a worker drained
		// the queue in between, the eviction simply frees nothing and the
		// retry below usually succeeds.
		select {
		case old := <-w.queue:
			g.met.QueueExit()
			g.reject(old, w.device)
		default:
		}
		if g.enqueue(w, p) {
			return nil
		}
	}
	g.reject(p, w.device)
	return nil
}

func (g *Gateway) enqueue(w *worker, p *pending) bool {
	select {
	case w.queue <- p:
		g.met.QueueEnter()
		return true
	default:
		return false
	}
}

// reject sheds one request with a terminal response.
func (g *Gateway) reject(p *pending, device string) {
	g.met.IncShed()
	p.req.Trace.Flag(tracez.FlagShed)
	p.req.Trace.Finish("shed")
	p.resp <- Response{
		Status: StatusShed, Device: device, Err: ErrQueueFull,
		SubmittedAt: p.submittedAt, DoneAt: g.now(),
	}
}

// pick routes a request: a named device directly, otherwise the least-loaded
// queue with a rotating tiebreak. It reads the worker set under the lock so
// concurrent AddBackend calls cannot tear the slice under it.
func (g *Gateway) pick(device string) (*worker, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if device != "" {
		w, ok := g.byName[device]
		if !ok {
			names := make([]string, 0, len(g.workers))
			for _, w := range g.workers {
				names = append(names, w.device)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("%w: %q (serving %v)", ErrUnknownDevice, device, names)
		}
		return w, nil
	}
	lanes := g.activeWorkersLocked()
	offset := int(g.rr.Add(1))
	best := lanes[offset%len(lanes)]
	for i := 1; i < len(lanes); i++ {
		w := lanes[(offset+i)%len(lanes)]
		if len(w.queue) < len(best.queue) {
			best = w
		}
	}
	return best, nil
}

// activeWorkersLocked returns the lanes unpinned routing may use: the first
// ActiveLanes workers in registration order. Caller holds g.mu.
func (g *Gateway) activeWorkersLocked() []*worker {
	n := int(g.activeLanes.Load())
	if n <= 0 || n >= len(g.workers) {
		return g.workers
	}
	return g.workers[:n]
}

// SetActiveLanes resizes the worker pool unpinned requests route over to the
// first n lanes in registration order, clamped to [1, lane count]; n <= 0
// restores the full pool. Deactivated lanes finish what they already queued
// (never mid-request preemption) and pinned requests still reach them.
// Returns the effective active-lane count.
func (g *Gateway) SetActiveLanes(n int) int {
	g.mu.RLock()
	total := len(g.workers)
	g.mu.RUnlock()
	if n <= 0 || n > total {
		n = total
	}
	g.activeLanes.Store(int64(n))
	return n
}

// ActiveLanes returns the current unpinned-routing pool size.
func (g *Gateway) ActiveLanes() int {
	g.mu.RLock()
	total := len(g.workers)
	g.mu.RUnlock()
	n := int(g.activeLanes.Load())
	if n <= 0 || n > total {
		return total
	}
	return n
}

// LaneCount returns the total number of worker lanes (active or not).
func (g *Gateway) LaneCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.workers)
}

// MinLaneClock returns the smallest virtual clock among active lanes — the
// earliest moment a new unpinned request could start executing. Against an
// arrival stamp this estimates the backlog the routing tier's per-class
// admission gates compare to their wait bounds.
func (g *Gateway) MinLaneClock() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	lanes := g.activeWorkersLocked()
	min := math.Inf(1)
	for _, w := range lanes {
		if t := w.engine.Now(); t < min {
			min = t
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// pendingPool recycles pending envelopes (and their one-shot response
// channels) for the synchronous Do path. A pending's resp channel always
// receives exactly one delivery, so after Do drains it the channel is empty
// and the envelope is safe to reuse.
var pendingPool = sync.Pool{
	New: func() any { return &pending{resp: make(chan Response, 1)} },
}

// Do submits one request and waits for its response — the synchronous
// convenience for closed-loop clients. The response's Err is also returned
// for non-served outcomes.
func (g *Gateway) Do(req Request) (Response, error) {
	p := pendingPool.Get().(*pending)
	p.req = req
	if err := g.submit(p); err != nil {
		p.req = Request{}
		pendingPool.Put(p)
		return Response{}, err
	}
	r := <-p.resp
	p.req = Request{} // drop model/conditions references before pooling
	pendingPool.Put(p)
	if r.Status != StatusServed {
		return r, r.Err
	}
	return r, nil
}

// runWorker drains one device queue until Shutdown closes it. On a killed
// gateway (crash semantics) queued requests are rejected instead of served:
// a crashed shard's queue does not survive, but every stranded request still
// gets a terminal failover-able response rather than silence.
func (g *Gateway) runWorker(w *worker) {
	defer g.wg.Done()
	for p := range w.queue {
		g.met.QueueExit()
		if g.killed.Load() {
			g.met.IncFailed()
			// The trace handle is deliberately left open: an ErrShardDown
			// rejection bounces back to the routing tier, which either fails
			// the request over (the same trace keeps accumulating spans on the
			// surviving shard) or terminates it with a final status.
			p.resp <- Response{
				Status: StatusFailed, Device: w.device, Err: ErrShardDown,
				SubmittedAt: p.submittedAt, DoneAt: g.now(),
			}
			continue
		}
		g.serveOne(w, p)
	}
	// Queue closed: drain any trace records still buffered so Shutdown's
	// final writer flush covers the complete lane.
	g.flushTrace(w)
}

// flushTrace drains the worker's buffered trace records into the shared
// writer in one locked batch append. Write errors stick in the writer and
// surface at Shutdown's final flush, exactly as per-record appends did.
func (g *Gateway) flushTrace(w *worker) {
	if len(w.tbuf) == 0 || g.cfg.Trace == nil {
		return
	}
	g.cfg.Trace.AppendBatch(w.tbuf)
	w.tbuf = w.tbuf[:0]
}

// serveOne executes one admitted request: scripted fault drills, deadline
// fast-fail, the engine step (with open breakers masked out of the action
// space), the resilient offload path (retries, hedging, breaker feedback),
// optional failover, metrics, trace, response.
//
// Phase accounting: the execution legs (execute, retry, hedge, failover) are
// stamped on the worker engine's virtual clock, so they are a pure function
// of the deterministic execution and flow into the trace; the queue and
// decide phases are wall-clock (scheduling reality, not simulation) and feed
// the registry's phase histograms only.
func (g *Gateway) serveOne(w *worker, p *pending) {
	start := g.now()
	wait := start.Sub(p.submittedAt).Seconds()
	act := p.req.Trace // nil-safe handle; nil when tracing is off
	act.SetShard(g.cfg.Name)
	// pt accumulates the deterministic virtual-clock legs (execute, retry,
	// hedge, failover) without allocating; the wall-clock queue and decide
	// phases feed the registry's histograms directly and stay out of the
	// trace.
	var pt obs.PhaseTotals
	w.seq++

	// Virtual wait: how far the serving lane's clock has run past the
	// request's virtual arrival — exact FCFS queueing delay on the engines'
	// deterministic time scale, and the observable the capacity planner's
	// M/M/c model is calibrated against.
	vwait := 0.0
	hasVWait := p.req.ArrivalS > 0
	if hasVWait {
		if lag := w.engine.Now() - p.req.ArrivalS; lag > 0 {
			vwait = lag
		} else {
			// The lane sat idle since its last request: fast-forward its
			// clock to the arrival, so service starts when the request
			// exists rather than at the lane's accumulated busy time.
			w.engine.AdvanceTo(p.req.ArrivalS)
		}
	}
	g.met.ObserveAdmission(wait, vwait, hasVWait)
	act.Span("queue", wait, w.device)

	base := Response{Device: w.device, SubmittedAt: p.submittedAt, WaitS: wait, VWaitS: vwait}

	// Fire any scripted crash/corruption drills whose virtual time has come
	// before this request observes the engine.
	g.applyFaultEvents(w)

	// A request that waited past its deadline is failed fast, not executed:
	// the client has already moved on, and running it would only burn
	// device energy on a dead answer.
	if !p.req.Deadline.IsZero() && start.After(p.req.Deadline) {
		g.met.IncExpired()
		base.Status, base.Err, base.DoneAt = StatusExpired, ErrDeadlineExpired, start
		act.Flag(tracez.FlagExpired)
		act.Finish("expired")
		p.resp <- base
		return
	}

	// Open breakers mask their remote sites out of the action space:
	// graceful degradation to local execution. Half-open breakers let the
	// policy probe the recovering site.
	var allow func(sim.Target) bool
	degraded := false
	if w.breakers != nil {
		vnow := w.engine.Now()
		cloudOK := w.breakers[sim.Cloud].allow(vnow)
		connOK := w.breakers[sim.Connected].allow(vnow)
		degraded = w.anyBreakerNotClosed()
		if !cloudOK || !connOK {
			allow = func(t sim.Target) bool {
				switch t.Location {
				case sim.Cloud:
					return cloudOK
				case sim.Connected:
					return connOK
				}
				return true
			}
		}
	}

	// The engine call advances the virtual clock by exactly the executed
	// inference (execute phase); its wall duration is the scheduling
	// overhead — observe, Q-lookup, bookkeeping — the paper reports as the
	// decision cost (the simulated inference itself costs no wall time).
	decideStart := time.Now()
	execStart := w.engine.Now()
	var d core.Decision
	var err error
	pr := act.Prov()
	if pr != nil {
		// Traced decide: the engine fills the worker's reusable provenance
		// scratch with the exact Q-row, mask and exploration verdict behind
		// this selection — same RNG draws as the plain path, so enabling
		// tracing never changes what the policy chooses.
		d, err = w.engine.RunInferenceProv(nil, p.req.Model, p.req.Conditions, allow, &w.prov)
	} else {
		d, err = w.engine.RunInferenceFiltered(nil, p.req.Model, p.req.Conditions, allow)
	}
	pt.Add(obs.PhaseExecuteIdx, w.engine.Now()-execStart)
	decideWallS := time.Since(decideStart).Seconds()
	g.met.ObservePhase(obs.PhaseDecide, decideWallS)
	if err != nil {
		g.met.IncFailed()
		base.Status, base.Err, base.DoneAt = StatusFailed, err, g.now()
		act.Span("decide", decideWallS, "")
		act.Flag(tracez.FlagFailed)
		act.Finish("failed")
		p.resp <- base
		return
	}
	if pr != nil {
		pr.StateIdx = w.prov.StateIdx
		pr.State = string(d.State)
		pr.Epsilon = w.prov.Sel.Epsilon
		pr.Frozen = w.prov.Sel.Frozen
		pr.Explored = w.prov.Sel.Explored
		pr.Action = d.Target.String()
		pr.ActionIdx = d.ActionIndex
		pr.Q = append(pr.Q[:0], w.prov.Sel.Q...)
		pr.Mask = append(pr.Mask[:0], w.prov.Mask...)
		pr.MaskedOut = w.prov.MaskedOut
	}
	act.Span("decide", decideWallS, d.Target.Location.String())

	// Gray degradation: the lane is scripted slow-but-alive, so the executed
	// inference stretches by the injected factor — the lane's clock advances
	// by the extra time, latency and QoS are re-judged — while nothing
	// errors and no breaker sees a failure. The factor is a pure function of
	// the virtual execution start, so replays stay byte-identical.
	if f := g.cfg.Faults.GrayFactor(w.device, execStart); f > 1 {
		extra := d.Measurement.LatencyS * (f - 1)
		w.engine.AdvanceTo(w.engine.Now() + extra)
		pt.Add(obs.PhaseExecuteIdx, extra)
		d.Measurement.LatencyS += extra
		d.QoSViolated = d.Measurement.LatencyS > d.QoSTargetS
	}

	// The sim reports an outage by executing the local fallback in place of
	// the chosen remote target.
	outage := d.Target.Location != sim.Local && d.Measurement.Target.Location == sim.Local
	if outage {
		g.met.IncOutage()
	}
	if wastedJ := d.Measurement.WastedJ; wastedJ > 0 {
		g.met.AddOutageWastedJ(wastedJ)
	}
	if br := w.breakerFor(d.Target.Location); br != nil && d.Target.Location != sim.Local {
		if outage {
			br.recordFailure(w.engine.Now())
		} else {
			br.recordSuccess(w.engine.Now())
		}
	}

	retries, recovered := 0, false
	if outage && g.cfg.Resilience.Enabled && g.cfg.Resilience.MaxRetries > 0 {
		retryStart := w.engine.Now()
		retries, recovered = g.retryOffload(w, p, &d)
		pt.Add(obs.PhaseRetryIdx, w.engine.Now()-retryStart)
	}

	hedged, hedgeWon := false, false
	if g.cfg.Resilience.Enabled && g.cfg.Resilience.Hedge && !outage &&
		d.Measurement.Target.Location != sim.Local && w.hasFallback {
		hedgeStart := w.engine.Now()
		hedged, hedgeWon = g.hedge(w, p, &d)
		pt.Add(obs.PhaseHedgeIdx, w.engine.Now()-hedgeStart)
	}

	retried := false
	if g.cfg.FailoverLocal && d.QoSViolated && w.hasFallback &&
		!outage && d.Measurement.Target != w.fallback {
		// Outage results already ran the fallback; everything else that
		// missed QoS gets one local re-execution — but only when the
		// remaining deadline budget actually fits the fallback's expected
		// latency; a retry that cannot finish in time is abandoned.
		if g.fitsDeadline(w, p, w.fallback, 0) {
			if meas, ferr := w.engine.World.Execute(p.req.Model, w.fallback, p.req.Conditions); ferr == nil {
				// The failover runs on the world's own clock, not the
				// engine's, so its leg is added by measured duration.
				pt.Add(obs.PhaseFailoverIdx, meas.LatencyS)
				d.Measurement = meas
				d.QoSViolated = meas.LatencyS > d.QoSTargetS
				retried = true
				g.met.IncRetried()
			}
		} else if !p.req.Deadline.IsZero() {
			g.met.IncRetryAbandoned()
		}
	}

	// Span tree tail: the deterministic execution legs, emitted from the same
	// phase totals the trace record carries so span durations and the
	// record's phases field reconcile exactly for every serve.
	act.Span("execute", pt.Total(obs.PhaseExecuteIdx), d.Measurement.Target.Location.String())
	if v := pt.Total(obs.PhaseRetryIdx); v > 0 {
		act.Span("retry", v, "")
	}
	if v := pt.Total(obs.PhaseHedgeIdx); v > 0 {
		act.Span("hedge", v, "")
	}
	if v := pt.Total(obs.PhaseFailoverIdx); v > 0 {
		act.Span("failover", v, "")
	}
	if degraded {
		act.Flag(tracez.FlagDegraded)
	}
	if hedged {
		act.Flag(tracez.FlagHedged)
	}
	if retried {
		act.Flag(tracez.FlagFailover)
	}

	g.met.ObserveServed(metrics.ServedSample{
		QoSViolated: d.QoSViolated,
		LatencyS:    d.Measurement.LatencyS,
		EnergyJ:     d.Measurement.EnergyJ,
		Tenant:      p.req.Tenant,
		TenantRespS: vwait + d.Measurement.LatencyS,
		Target:      d.Measurement.Target.Location.String(),
		Device:      w.device,
		Phases:      pt,
	})

	if g.cfg.Trace != nil {
		rec := trace.FromDecision(int(w.seq), p.req.Model.Name, d)
		rec.Device = w.device
		rec.Shard = g.cfg.Name
		rec.Tenant = p.req.Tenant
		rec.Outage = outage
		rec.Retries = retries
		rec.Hedged = hedged
		rec.Degraded = degraded
		rec.VWaitS = vwait
		rec.Phases = pt.Durations()
		rec.TraceID = act.ID()
		// Buffer the record on the lane and drain in batches: when the lane
		// still has queued work the batch rides until it fills; an idle lane
		// flushes immediately so the record is visible before the response.
		w.tbuf = append(w.tbuf, rec)
		if len(w.tbuf) >= traceBatch || len(w.queue) == 0 {
			g.flushTrace(w)
		}
	}

	base.Status, base.Decision, base.Retried, base.Outage, base.DoneAt =
		StatusServed, d, retried, outage, g.now()
	base.OffloadRetries, base.RetryRecovered = retries, recovered
	base.Hedged, base.HedgeWon = hedged, hedgeWon
	base.Degraded = degraded
	act.Finish("served")
	p.resp <- base
}

// applyFaultEvents fires the worker's scripted one-shot drills whose
// virtual time has arrived: checkpoint corruption (damage the newest
// on-disk checkpoint) and worker crashes (drop the in-memory Q-table, then
// warm-start from the latest valid checkpoint — which, after a corruption
// drill, exercises the store's quarantine-and-fall-back path end to end).
func (g *Gateway) applyFaultEvents(w *worker) {
	for w.nextEvent < len(w.events) && w.events[w.nextEvent].AtS <= w.engine.Now() {
		ev := w.events[w.nextEvent]
		w.nextEvent++
		switch ev.Kind {
		case fault.KindCheckpointCorrupt:
			if c, ok := g.cfg.Checkpoints.(policy.Corrupter); ok {
				c.CorruptLatest(w.device)
				g.met.IncCorruptDrill()
			}
		case fault.KindWorkerCrash:
			if w.engine.Reset() == nil {
				g.met.IncWorkerCrash()
				if g.cfg.Checkpoints != nil {
					warmStart(w, g.cfg.Checkpoints)
				}
			}
		}
	}
}

// fitsDeadline reports whether the remaining wall budget fits overheadS
// plus the expected clean latency of executing the request on target t. A
// request without a deadline always fits.
func (g *Gateway) fitsDeadline(w *worker, p *pending, t sim.Target, overheadS float64) bool {
	if p.req.Deadline.IsZero() {
		return true
	}
	remaining := p.req.Deadline.Sub(g.now()).Seconds()
	if remaining <= 0 {
		return false
	}
	exp, err := w.engine.World.Expected(p.req.Model, t, p.req.Conditions)
	if err != nil {
		return false
	}
	return remaining >= overheadS+exp.LatencyS
}

// retryOffload re-drives a failed offload with exponential backoff and
// deterministic jitter from the request's named RNG stream, inside the
// request's deadline budget. Each attempt supersedes the previous answer:
// its latency and energy are charged to the episode as waste. On recovery
// the remote result replaces the outage fallback; on exhaustion the last
// fallback answer stands (graceful degradation). Every attempt feeds the
// site's circuit breaker.
func (g *Gateway) retryOffload(w *worker, p *pending, d *core.Decision) (retries int, recovered bool) {
	rc := g.cfg.Resilience
	world := w.engine.World
	br := w.breakerFor(d.Target.Location)
	cur := d.Measurement // current best answer (outage fallback)
	var wasteS, wasteJ float64

	for attempt := 1; attempt <= rc.MaxRetries; attempt++ {
		rctx := w.engine.StepContext("serve.retry", w.seq, uint64(attempt))
		backoff := rc.RetryBackoffS * math.Pow(2, float64(attempt-1))
		backoff += 0.5 * backoff * rctx.Stream("serve.retry.jitter").Float64()

		// Budget: the backoff plus a clean execution must fit in the
		// remaining deadline, or the retry is abandoned immediately
		// instead of burning another outage timeout.
		if !g.fitsDeadline(w, p, d.Target, backoff) {
			g.met.IncRetryAbandoned()
			break
		}

		rctx.Advance(backoff)
		retries++
		g.met.IncOffloadRetry()
		rmeas, err := world.ExecuteCtx(rctx, p.req.Model, d.Target, p.req.Conditions)
		if err != nil {
			break
		}
		// The previous answer is superseded: its cost becomes waste.
		wasteJ += cur.EnergyJ
		wasteS += cur.LatencyS + backoff
		cur = rmeas
		if rmeas.WastedJ > 0 {
			g.met.AddOutageWastedJ(rmeas.WastedJ)
		}
		if rmeas.Target.Location == sim.Local {
			// Failed again (outage fallback ran); keep backing off.
			if br != nil {
				br.recordFailure(w.engine.Now())
			}
			continue
		}
		if br != nil {
			br.recordSuccess(w.engine.Now())
		}
		recovered = true
		g.met.IncRetryRecovered()
		break
	}

	cur.LatencyS += wasteS
	cur.EnergyJ += wasteJ
	cur.WastedJ += wasteJ
	d.Measurement = cur
	d.QoSViolated = cur.LatencyS > d.QoSTargetS
	return retries, recovered
}

// hedge races a local leg against a slow remote answer: when the measured
// remote latency exceeds HedgeAfterS and the deadline budget fits the local
// leg, the gateway simulates having fired the fallback at the hedge point
// and takes whichever answer lands first, charging the loser's in-flight
// energy as waste.
func (g *Gateway) hedge(w *worker, p *pending, d *core.Decision) (hedged, won bool) {
	rc := g.cfg.Resilience
	remote := d.Measurement
	if remote.LatencyS <= rc.HedgeAfterS {
		return false, false
	}
	if !g.fitsDeadline(w, p, w.fallback, rc.HedgeAfterS) {
		return false, false
	}
	hctx := w.engine.StepContext("serve.hedge", w.seq)
	local, err := w.engine.World.ExecuteCtx(hctx, p.req.Model, w.fallback, p.req.Conditions)
	if err != nil {
		return false, false
	}
	g.met.IncHedge()
	hedgedLat := rc.HedgeAfterS + local.LatencyS
	if hedgedLat < remote.LatencyS {
		// Local leg wins: the remote answer is superseded; charge the
		// remote energy spent up to the hedged completion as waste.
		waste := remote.EnergyJ * (hedgedLat / remote.LatencyS)
		local.LatencyS = hedgedLat
		local.EnergyJ += waste
		local.WastedJ += waste
		d.Measurement = local
		d.QoSViolated = local.LatencyS > d.QoSTargetS
		g.met.IncHedgeWon()
		return true, true
	}
	// Remote answered first: the local leg ran (remote - hedge point) long
	// before cancellation; charge that fraction as waste.
	frac := (remote.LatencyS - rc.HedgeAfterS) / local.LatencyS
	if frac > 1 {
		frac = 1
	}
	waste := frac * local.EnergyJ
	d.Measurement.EnergyJ += waste
	d.Measurement.WastedJ += waste
	g.met.IncHedgeLost()
	return true, false
}

// Shutdown stops admission, drains every queue (queued requests still
// execute, deadline rules still apply), waits for the workers, flushes the
// audit trace (surfacing any write error — a dropped tail is a shutdown
// failure), then persists each engine's final Q-table to cfg.Checkpoints —
// exactly once per worker, guarded by the closed flag (a second Shutdown
// returns ErrClosed without re-flushing). The context bounds only the drain
// wait; on ctx expiry workers keep draining in the background but the trace
// flush and final checkpoints are skipped.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.closed = true
	g.mu.Unlock()

	// The background policy sync (if running) must stop before the final
	// flush so its passes cannot interleave with shutdown persistence.
	g.syncMu.Lock()
	syncer := g.syncer
	g.syncMu.Unlock()
	if syncer != nil {
		syncer.Stop()
	}

	// Wait out Submits that passed the closed check, then close the queues
	// — after this no send can race the close. The worker set is frozen once
	// closed is set (AddBackend refuses), so the snapshot is complete.
	workers := g.snapshotWorkers()
	g.inflight.Wait()
	for _, w := range workers {
		close(w.queue)
	}

	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}

	// Workers have exited: flush any degraded episode still open so the
	// degraded-seconds metric accounts shutdowns mid-storm.
	for _, w := range workers {
		for _, b := range w.breakers {
			b.closeOut(w.engine.Now())
		}
	}

	var errs []error
	// Flush the audit trail and surface any write failure: a trace whose
	// buffered tail was silently dropped would replay short, so a failed
	// final flush is a shutdown error, not a shrug.
	if g.cfg.Trace != nil {
		if err := g.cfg.Trace.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("serve: trace flush: %w", err))
		}
	}
	if g.cfg.Checkpoints != nil {
		for _, w := range workers {
			if err := checkpointWorker(w, g.cfg.Checkpoints, g.cfg.PolicySync); err != nil {
				errs = append(errs, fmt.Errorf("serve: checkpoint %s: %w", w.device, err))
			}
		}
	}
	return errors.Join(errs...)
}

// Kill stops the gateway with crash semantics: admission closes, every
// queued request is rejected with ErrShardDown instead of executing, and —
// unlike Shutdown — nothing is flushed: no trace flush, no final Q-table
// checkpoints. The routing tier uses it to simulate a shard process dying
// mid-traffic; whatever the last federation pass persisted is all the
// learning the shard leaves behind, which is exactly what re-homed devices
// warm-start from. A second Kill (or a Kill after Shutdown) returns
// ErrClosed.
func (g *Gateway) Kill() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.closed = true
	g.killed.Store(true)
	g.mu.Unlock()

	g.syncMu.Lock()
	syncer := g.syncer
	g.syncMu.Unlock()
	if syncer != nil {
		syncer.Stop()
	}

	workers := g.snapshotWorkers()
	g.inflight.Wait()
	for _, w := range workers {
		close(w.queue)
	}
	g.wg.Wait()
	return nil
}
