// Package metrics is the serving gateway's runtime instrumentation: a
// registry of lock-free counters and histograms every worker updates on the
// hot path, plus a consistent-enough Snapshot for tests, the CLI and
// operators. Counters are atomic so the gateway never serializes requests on
// bookkeeping; the only mutex guards the low-cardinality per-target and
// per-device maps.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
)

// Registry accumulates gateway counters. The zero value is not usable; call
// New.
type Registry struct {
	submitted     atomic.Int64
	served        atomic.Int64
	shed          atomic.Int64
	expired       atomic.Int64
	failed        atomic.Int64
	retried       atomic.Int64
	qosViolations atomic.Int64
	outages       atomic.Int64

	offloadRetries   atomic.Int64
	retriesRecovered atomic.Int64
	retriesAbandoned atomic.Int64
	hedges           atomic.Int64
	hedgesWon        atomic.Int64
	hedgesLost       atomic.Int64
	breakerOpens     atomic.Int64
	breakerHalfOpens atomic.Int64
	breakerCloses    atomic.Int64
	workerCrashes    atomic.Int64
	corruptDrills    atomic.Int64

	degradedSeconds atomicFloat
	outageWastedJ   atomicFloat

	queueDepth atomic.Int64
	queueMax   atomic.Int64

	latency *Histogram
	wait    *Histogram
	energy  *Histogram

	mu        sync.Mutex
	byTarget  map[string]int64
	byDevice  map[string]int64
	byBreaker map[string]string
}

// New builds a registry with the default latency/wait/energy bucket ladders:
// exponential from 1 ms to ~16 s for the two time axes (sub-millisecond
// lookups to radio-timeout stalls) and from 0.1 mJ to ~26 J for energy.
func New() *Registry {
	return &Registry{
		latency:   NewHistogram(ExponentialBounds(1e-3, 2, 15)),
		wait:      NewHistogram(ExponentialBounds(1e-3, 2, 15)),
		energy:    NewHistogram(ExponentialBounds(1e-4, 2, 19)),
		byTarget:  make(map[string]int64),
		byDevice:  make(map[string]int64),
		byBreaker: make(map[string]string),
	}
}

// IncSubmitted counts one request entering admission control.
func (r *Registry) IncSubmitted() { r.submitted.Add(1) }

// IncServed counts one executed request.
func (r *Registry) IncServed() { r.served.Add(1) }

// IncShed counts one request rejected by admission control (full queue).
func (r *Registry) IncShed() { r.shed.Add(1) }

// IncExpired counts one request failed fast on a passed deadline.
func (r *Registry) IncExpired() { r.expired.Add(1) }

// IncFailed counts one request whose execution returned an error.
func (r *Registry) IncFailed() { r.failed.Add(1) }

// IncRetried counts one failover re-execution on the local fallback target.
func (r *Registry) IncRetried() { r.retried.Add(1) }

// IncQoSViolation counts one served request over its latency target.
func (r *Registry) IncQoSViolation() { r.qosViolations.Add(1) }

// IncOutage counts one simulated radio outage absorbed by the sim's local
// fallback.
func (r *Registry) IncOutage() { r.outages.Add(1) }

// IncOffloadRetry counts one deadline-budgeted re-offload after an outage.
func (r *Registry) IncOffloadRetry() { r.offloadRetries.Add(1) }

// IncRetryRecovered counts one offload retry that came back clean.
func (r *Registry) IncRetryRecovered() { r.retriesRecovered.Add(1) }

// IncRetryAbandoned counts one retry skipped because the remaining deadline
// could not fit the backoff plus the expected execution.
func (r *Registry) IncRetryAbandoned() { r.retriesAbandoned.Add(1) }

// IncHedge counts one hedged offload launched against a slow remote.
func (r *Registry) IncHedge() { r.hedges.Add(1) }

// IncHedgeWon counts one hedge whose local leg beat the remote.
func (r *Registry) IncHedgeWon() { r.hedgesWon.Add(1) }

// IncHedgeLost counts one hedge whose remote leg answered first.
func (r *Registry) IncHedgeLost() { r.hedgesLost.Add(1) }

// IncBreakerOpen counts one circuit breaker tripping closed->open.
func (r *Registry) IncBreakerOpen() { r.breakerOpens.Add(1) }

// IncBreakerHalfOpen counts one breaker admitting a recovery probe.
func (r *Registry) IncBreakerHalfOpen() { r.breakerHalfOpens.Add(1) }

// IncBreakerClose counts one breaker closing after successful probes.
func (r *Registry) IncBreakerClose() { r.breakerCloses.Add(1) }

// IncWorkerCrash counts one scripted worker-crash drill.
func (r *Registry) IncWorkerCrash() { r.workerCrashes.Add(1) }

// IncCorruptDrill counts one scripted checkpoint-corruption drill.
func (r *Registry) IncCorruptDrill() { r.corruptDrills.Add(1) }

// AddDegradedSeconds accumulates wall time a worker spent with at least one
// breaker open (serving degraded, remote targets masked).
func (r *Registry) AddDegradedSeconds(s float64) { r.degradedSeconds.Add(s) }

// AddOutageWastedJ accumulates energy burned on failed offload attempts.
func (r *Registry) AddOutageWastedJ(j float64) { r.outageWastedJ.Add(j) }

// SetBreakerState records a breaker's current state under its label
// (e.g. "phone-0/cloud" -> "open").
func (r *Registry) SetBreakerState(label, state string) {
	r.mu.Lock()
	r.byBreaker[label] = state
	r.mu.Unlock()
}

// QueueEnter bumps the aggregate queue-depth gauge and its high watermark.
func (r *Registry) QueueEnter() {
	d := r.queueDepth.Add(1)
	for {
		max := r.queueMax.Load()
		if d <= max || r.queueMax.CompareAndSwap(max, d) {
			return
		}
	}
}

// QueueExit drops the aggregate queue-depth gauge.
func (r *Registry) QueueExit() { r.queueDepth.Add(-1) }

// QueueDepth returns the current aggregate queue depth.
func (r *Registry) QueueDepth() int64 { return r.queueDepth.Load() }

// ObserveLatency records one end-to-end execution latency (seconds).
func (r *Registry) ObserveLatency(s float64) { r.latency.Observe(s) }

// ObserveWait records one queue wait (seconds).
func (r *Registry) ObserveWait(s float64) { r.wait.Observe(s) }

// ObserveEnergy records one mobile-side energy cost (joules).
func (r *Registry) ObserveEnergy(j float64) { r.energy.Observe(j) }

// CountTarget counts one execution against a target label (the coarse
// location — local/connected/cloud — keeps the map small).
func (r *Registry) CountTarget(label string) {
	r.mu.Lock()
	r.byTarget[label]++
	r.mu.Unlock()
}

// CountDevice counts one execution against a gateway worker.
func (r *Registry) CountDevice(device string) {
	r.mu.Lock()
	r.byDevice[device]++
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of the registry. Individual fields are
// read atomically; the snapshot as a whole is not a single atomic cut, so
// cross-field invariants (Accounted == Submitted) only hold once the gateway
// is quiescent.
type Snapshot struct {
	Submitted     int64
	Served        int64
	Shed          int64
	Expired       int64
	Failed        int64
	Retried       int64
	QoSViolations int64
	Outages       int64

	// Resilience counters: the retry/hedge/breaker machinery.
	OffloadRetries   int64
	RetriesRecovered int64
	RetriesAbandoned int64
	Hedges           int64
	HedgesWon        int64
	HedgesLost       int64
	BreakerOpens     int64
	BreakerHalfOpens int64
	BreakerCloses    int64
	WorkerCrashes    int64
	CorruptDrills    int64
	DegradedSeconds  float64
	OutageWastedJ    float64

	QueueDepth    int64
	QueueMaxDepth int64

	Latency HistogramSnapshot
	Wait    HistogramSnapshot
	Energy  HistogramSnapshot

	// ByTarget counts executions per execution-location label; ByDevice per
	// gateway worker; ByBreaker holds each breaker's last recorded state.
	ByTarget  map[string]int64
	ByDevice  map[string]int64
	ByBreaker map[string]string
}

// Accounted returns the number of requests with a terminal outcome.
func (s Snapshot) Accounted() int64 { return s.Served + s.Shed + s.Expired + s.Failed }

// Snapshot copies the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Submitted:     r.submitted.Load(),
		Served:        r.served.Load(),
		Shed:          r.shed.Load(),
		Expired:       r.expired.Load(),
		Failed:        r.failed.Load(),
		Retried:       r.retried.Load(),
		QoSViolations: r.qosViolations.Load(),
		Outages:       r.outages.Load(),

		OffloadRetries:   r.offloadRetries.Load(),
		RetriesRecovered: r.retriesRecovered.Load(),
		RetriesAbandoned: r.retriesAbandoned.Load(),
		Hedges:           r.hedges.Load(),
		HedgesWon:        r.hedgesWon.Load(),
		HedgesLost:       r.hedgesLost.Load(),
		BreakerOpens:     r.breakerOpens.Load(),
		BreakerHalfOpens: r.breakerHalfOpens.Load(),
		BreakerCloses:    r.breakerCloses.Load(),
		WorkerCrashes:    r.workerCrashes.Load(),
		CorruptDrills:    r.corruptDrills.Load(),
		DegradedSeconds:  r.degradedSeconds.Load(),
		OutageWastedJ:    r.outageWastedJ.Load(),

		QueueDepth:    r.queueDepth.Load(),
		QueueMaxDepth: r.queueMax.Load(),
		Latency:       r.latency.Snapshot(),
		Wait:          r.wait.Snapshot(),
		Energy:        r.energy.Snapshot(),
		ByTarget:      make(map[string]int64),
		ByDevice:      make(map[string]int64),
		ByBreaker:     make(map[string]string),
	}
	r.mu.Lock()
	for k, v := range r.byTarget {
		s.ByTarget[k] = v
	}
	for k, v := range r.byDevice {
		s.ByDevice[k] = v
	}
	for k, v := range r.byBreaker {
		s.ByBreaker[k] = v
	}
	r.mu.Unlock()
	return s
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe. Bucket
// i counts observations <= Bounds[i]; the final (implicit) bucket counts the
// overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// NewHistogram builds a histogram over sorted ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExponentialBounds returns n upper bounds start, start*factor, ...
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time histogram copy.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// bucket.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) as the upper bound of the bucket
// holding it; overflow observations report +Inf.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// atomicFloat is a float64 accumulated with compare-and-swap.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
