// Package metrics is the serving gateway's runtime instrumentation: a
// registry of lock-cheap counters and log-linear histograms (internal/obs)
// every worker updates on the hot path, plus a torn-read-free Snapshot for
// the admin endpoint, tests, the CLI and operators.
//
// Consistency: every mutator holds the registry's snapshot lock in read
// (shared) mode — one uncontended atomic on the hot path — while Snapshot
// takes it exclusively, so a snapshot is a single consistent cut: no
// mutation is in flight while it copies, and cross-field invariants
// (Accounted <= Submitted, bucket sums matching counts) hold in every
// snapshot, not just at quiescence.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"

	"autoscale/internal/obs"
)

// Scheme returns the bucket ladder shared by the registry's histograms:
// log-linear from 1e-4 to ~104 with 8 sub-buckets per octave (≤ 12.5%
// relative quantile error). One ladder for seconds and joules keeps every
// snapshot mergeable with every other.
func Scheme() obs.BucketScheme { return obs.DefaultScheme() }

// HistogramSnapshot aliases the obs snapshot so existing callers keep their
// vocabulary.
type HistogramSnapshot = obs.HistogramSnapshot

// Registry accumulates gateway counters. The zero value is not usable; call
// New.
type Registry struct {
	// snapMu is the snapshot seqlock: mutators hold it shared, Snapshot
	// holds it exclusively. See the package comment.
	snapMu sync.RWMutex

	submitted     atomic.Int64
	served        atomic.Int64
	shed          atomic.Int64
	expired       atomic.Int64
	failed        atomic.Int64
	retried       atomic.Int64
	qosViolations atomic.Int64
	outages       atomic.Int64

	offloadRetries   atomic.Int64
	retriesRecovered atomic.Int64
	retriesAbandoned atomic.Int64
	hedges           atomic.Int64
	hedgesWon        atomic.Int64
	hedgesLost       atomic.Int64
	breakerOpens     atomic.Int64
	breakerHalfOpens atomic.Int64
	breakerCloses    atomic.Int64
	workerCrashes    atomic.Int64
	corruptDrills    atomic.Int64

	degradedSeconds atomicFloat
	outageWastedJ   atomicFloat

	queueDepth atomic.Int64
	queueMax   atomic.Int64

	syncPasses      atomic.Int64
	syncFailures    atomic.Int64
	syncConsecFails atomic.Int64

	latency *obs.Histogram
	wait    *obs.Histogram
	energy  *obs.Histogram
	vwait   *obs.Histogram
	// phases maps phase name -> histogram. Built complete at New and never
	// mutated after, so reads need no lock.
	phases map[string]*obs.Histogram

	mu        sync.Mutex
	byTarget  map[string]int64
	byDevice  map[string]int64
	byBreaker map[string]string
	// byTenant maps tenant -> virtual response-time histogram (vwait plus
	// execution latency), built lazily on first observation per tenant.
	byTenant map[string]*obs.Histogram
	// syncLastErr is the most recent policy-sync pass failure ("" after a
	// clean pass); guarded by mu like the label maps.
	syncLastErr string
}

// New builds a registry over the shared Scheme ladder, with one phase
// histogram per canonical request phase.
func New() *Registry {
	r := &Registry{
		latency:   obs.NewHistogram(Scheme()),
		wait:      obs.NewHistogram(Scheme()),
		energy:    obs.NewHistogram(Scheme()),
		vwait:     obs.NewHistogram(Scheme()),
		phases:    make(map[string]*obs.Histogram),
		byTarget:  make(map[string]int64),
		byDevice:  make(map[string]int64),
		byBreaker: make(map[string]string),
		byTenant:  make(map[string]*obs.Histogram),
	}
	for _, p := range obs.Phases() {
		r.phases[p] = obs.NewHistogram(Scheme())
	}
	return r
}

// shared brackets one mutation in the snapshot seqlock's read side.
func (r *Registry) shared(fn func()) {
	r.snapMu.RLock()
	fn()
	r.snapMu.RUnlock()
}

// IncSubmitted counts one request entering admission control.
func (r *Registry) IncSubmitted() { r.shared(func() { r.submitted.Add(1) }) }

// IncServed counts one executed request.
func (r *Registry) IncServed() { r.shared(func() { r.served.Add(1) }) }

// IncShed counts one request rejected by admission control (full queue).
func (r *Registry) IncShed() { r.shared(func() { r.shed.Add(1) }) }

// IncExpired counts one request failed fast on a passed deadline.
func (r *Registry) IncExpired() { r.shared(func() { r.expired.Add(1) }) }

// IncFailed counts one request whose execution returned an error.
func (r *Registry) IncFailed() { r.shared(func() { r.failed.Add(1) }) }

// IncRetried counts one failover re-execution on the local fallback target.
func (r *Registry) IncRetried() { r.shared(func() { r.retried.Add(1) }) }

// IncQoSViolation counts one served request over its latency target.
func (r *Registry) IncQoSViolation() { r.shared(func() { r.qosViolations.Add(1) }) }

// IncOutage counts one simulated radio outage absorbed by the sim's local
// fallback.
func (r *Registry) IncOutage() { r.shared(func() { r.outages.Add(1) }) }

// IncOffloadRetry counts one deadline-budgeted re-offload after an outage.
func (r *Registry) IncOffloadRetry() { r.shared(func() { r.offloadRetries.Add(1) }) }

// IncRetryRecovered counts one offload retry that came back clean.
func (r *Registry) IncRetryRecovered() { r.shared(func() { r.retriesRecovered.Add(1) }) }

// IncRetryAbandoned counts one retry skipped because the remaining deadline
// could not fit the backoff plus the expected execution.
func (r *Registry) IncRetryAbandoned() { r.shared(func() { r.retriesAbandoned.Add(1) }) }

// IncHedge counts one hedged offload launched against a slow remote.
func (r *Registry) IncHedge() { r.shared(func() { r.hedges.Add(1) }) }

// IncHedgeWon counts one hedge whose local leg beat the remote.
func (r *Registry) IncHedgeWon() { r.shared(func() { r.hedgesWon.Add(1) }) }

// IncHedgeLost counts one hedge whose remote leg answered first.
func (r *Registry) IncHedgeLost() { r.shared(func() { r.hedgesLost.Add(1) }) }

// IncBreakerOpen counts one circuit breaker tripping closed->open.
func (r *Registry) IncBreakerOpen() { r.shared(func() { r.breakerOpens.Add(1) }) }

// IncBreakerHalfOpen counts one breaker admitting a recovery probe.
func (r *Registry) IncBreakerHalfOpen() { r.shared(func() { r.breakerHalfOpens.Add(1) }) }

// IncBreakerClose counts one breaker closing after successful probes.
func (r *Registry) IncBreakerClose() { r.shared(func() { r.breakerCloses.Add(1) }) }

// IncWorkerCrash counts one scripted worker-crash drill.
func (r *Registry) IncWorkerCrash() { r.shared(func() { r.workerCrashes.Add(1) }) }

// IncCorruptDrill counts one scripted checkpoint-corruption drill.
func (r *Registry) IncCorruptDrill() { r.shared(func() { r.corruptDrills.Add(1) }) }

// AddDegradedSeconds accumulates wall time a worker spent with at least one
// breaker open (serving degraded, remote targets masked).
func (r *Registry) AddDegradedSeconds(s float64) { r.shared(func() { r.degradedSeconds.Add(s) }) }

// AddOutageWastedJ accumulates energy burned on failed offload attempts.
func (r *Registry) AddOutageWastedJ(j float64) { r.shared(func() { r.outageWastedJ.Add(j) }) }

// SetBreakerState records a breaker's current state under its label
// (e.g. "phone-0/cloud" -> "open").
func (r *Registry) SetBreakerState(label, state string) {
	r.shared(func() {
		r.mu.Lock()
		r.byBreaker[label] = state
		r.mu.Unlock()
	})
}

// QueueEnter bumps the aggregate queue-depth gauge and its high watermark.
func (r *Registry) QueueEnter() {
	r.shared(func() {
		d := r.queueDepth.Add(1)
		for {
			max := r.queueMax.Load()
			if d <= max || r.queueMax.CompareAndSwap(max, d) {
				return
			}
		}
	})
}

// QueueExit drops the aggregate queue-depth gauge.
func (r *Registry) QueueExit() { r.shared(func() { r.queueDepth.Add(-1) }) }

// QueueDepth returns the current aggregate queue depth.
func (r *Registry) QueueDepth() int64 { return r.queueDepth.Load() }

// ObserveLatency records one end-to-end execution latency (seconds).
func (r *Registry) ObserveLatency(s float64) { r.shared(func() { r.latency.Observe(s) }) }

// ObserveWait records one queue wait (seconds).
func (r *Registry) ObserveWait(s float64) { r.shared(func() { r.wait.Observe(s) }) }

// ObserveEnergy records one mobile-side energy cost (joules).
func (r *Registry) ObserveEnergy(j float64) { r.shared(func() { r.energy.Observe(j) }) }

// ObserveVWait records one virtual queue wait (seconds on the lane clock)
// for an arrival-stamped request.
func (r *Registry) ObserveVWait(s float64) { r.shared(func() { r.vwait.Observe(s) }) }

// ObserveTenantResponse records one virtual response time (vwait plus
// execution latency, seconds) against the request's tenant — the per-class
// series SLO attainment is judged on. No-op for an empty tenant.
func (r *Registry) ObserveTenantResponse(tenant string, s float64) {
	if tenant == "" {
		return
	}
	r.shared(func() {
		r.mu.Lock()
		h, ok := r.byTenant[tenant]
		if !ok {
			h = obs.NewHistogram(Scheme())
			r.byTenant[tenant] = h
		}
		r.mu.Unlock()
		h.Observe(s)
	})
}

// ObservePhase records one phase duration (seconds) into that phase's
// histogram. Unknown phases are dropped — the phase set is the obs package's
// canonical list, fixed at New.
func (r *Registry) ObservePhase(phase string, s float64) {
	h, ok := r.phases[phase]
	if !ok {
		return
	}
	r.shared(func() { h.Observe(s) })
}

// ObserveAdmission batches the per-request admission observations — queue
// wait into both the wait and queue-phase histograms, plus the virtual wait
// when the request carried an arrival stamp — under one shared bracket of
// the snapshot seqlock.
func (r *Registry) ObserveAdmission(waitS, vwaitS float64, hasVWait bool) {
	r.shared(func() {
		r.wait.Observe(waitS)
		if h, ok := r.phases[obs.PhaseQueue]; ok {
			h.Observe(waitS)
		}
		if hasVWait {
			r.vwait.Observe(vwaitS)
		}
	})
}

// ServedSample batches every observation the gateway records when a request
// completes service, so the hot path crosses the snapshot seqlock once at
// the tail instead of once per metric.
type ServedSample struct {
	QoSViolated bool
	LatencyS    float64
	EnergyJ     float64
	// Tenant, when non-empty, records TenantRespS (virtual wait plus
	// execution latency) into the tenant's response-time histogram.
	Tenant      string
	TenantRespS float64
	// Target and Device label the execution for the per-target and
	// per-device counters.
	Target string
	Device string
	// Phases feeds each non-zero phase total into its phase histogram.
	Phases obs.PhaseTotals
}

// ObserveServed records one served request as a single batched mutation:
// the same counters and histograms the individual mutators update, in one
// consistent cut relative to Snapshot.
func (r *Registry) ObserveServed(s ServedSample) {
	r.shared(func() {
		r.served.Add(1)
		if s.QoSViolated {
			r.qosViolations.Add(1)
		}
		r.latency.Observe(s.LatencyS)
		r.energy.Observe(s.EnergyJ)
		if s.Tenant != "" {
			r.mu.Lock()
			h, ok := r.byTenant[s.Tenant]
			if !ok {
				h = obs.NewHistogram(Scheme())
				r.byTenant[s.Tenant] = h
			}
			r.mu.Unlock()
			h.Observe(s.TenantRespS)
		}
		r.mu.Lock()
		r.byTarget[s.Target]++
		r.byDevice[s.Device]++
		r.mu.Unlock()
		s.Phases.ForEach(func(phase string, durS float64) {
			if h, ok := r.phases[phase]; ok {
				h.Observe(durS)
			}
		})
	})
}

// ObserveSyncPass records one policy-sync pass outcome: failures bump the
// consecutive-failure gauge and remember the error, a clean pass resets
// both. The health endpoint alarms once consecutive failures cross its
// threshold.
func (r *Registry) ObserveSyncPass(failed bool, errStr string) {
	r.shared(func() {
		r.syncPasses.Add(1)
		if failed {
			r.syncFailures.Add(1)
			r.syncConsecFails.Add(1)
		} else {
			r.syncConsecFails.Store(0)
			errStr = ""
		}
		r.mu.Lock()
		r.syncLastErr = errStr
		r.mu.Unlock()
	})
}

// CountTarget counts one execution against a target label (the coarse
// location — local/connected/cloud — keeps the map small).
func (r *Registry) CountTarget(label string) {
	r.shared(func() {
		r.mu.Lock()
		r.byTarget[label]++
		r.mu.Unlock()
	})
}

// CountDevice counts one execution against a gateway worker.
func (r *Registry) CountDevice(device string) {
	r.shared(func() {
		r.mu.Lock()
		r.byDevice[device]++
		r.mu.Unlock()
	})
}

// Snapshot is a point-in-time copy of the registry, taken as one consistent
// cut (see the package comment).
type Snapshot struct {
	Submitted     int64
	Served        int64
	Shed          int64
	Expired       int64
	Failed        int64
	Retried       int64
	QoSViolations int64
	Outages       int64

	// Resilience counters: the retry/hedge/breaker machinery.
	OffloadRetries   int64
	RetriesRecovered int64
	RetriesAbandoned int64
	Hedges           int64
	HedgesWon        int64
	HedgesLost       int64
	BreakerOpens     int64
	BreakerHalfOpens int64
	BreakerCloses    int64
	WorkerCrashes    int64
	CorruptDrills    int64
	DegradedSeconds  float64
	OutageWastedJ    float64

	QueueDepth    int64
	QueueMaxDepth int64

	// Policy-sync failure state: total passes, failed passes, failed passes
	// since the last clean one (the health-endpoint alarm signal), and the
	// most recent failure message.
	SyncPasses              int64
	SyncFailures            int64
	SyncConsecutiveFailures int64
	SyncLastError           string

	Latency HistogramSnapshot
	Wait    HistogramSnapshot
	Energy  HistogramSnapshot
	// VWait is the virtual queue-wait histogram (arrival-stamped requests
	// only; see serve.Request.ArrivalS).
	VWait HistogramSnapshot
	// Phases holds one histogram per request phase that recorded at least
	// one observation (obs.Phases names the full set).
	Phases map[string]HistogramSnapshot

	// ByTarget counts executions per execution-location label; ByDevice per
	// gateway worker; ByBreaker holds each breaker's last recorded state.
	ByTarget  map[string]int64
	ByDevice  map[string]int64
	ByBreaker map[string]string
	// ByTenant holds one virtual response-time histogram per tenant that
	// served at least one request.
	ByTenant map[string]HistogramSnapshot
}

// Accounted returns the number of requests with a terminal outcome.
func (s Snapshot) Accounted() int64 { return s.Served + s.Shed + s.Expired + s.Failed }

// Snapshot copies the registry as one consistent cut: it excludes every
// mutator for the duration of the copy.
func (r *Registry) Snapshot() Snapshot {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	s := Snapshot{
		Submitted:     r.submitted.Load(),
		Served:        r.served.Load(),
		Shed:          r.shed.Load(),
		Expired:       r.expired.Load(),
		Failed:        r.failed.Load(),
		Retried:       r.retried.Load(),
		QoSViolations: r.qosViolations.Load(),
		Outages:       r.outages.Load(),

		OffloadRetries:   r.offloadRetries.Load(),
		RetriesRecovered: r.retriesRecovered.Load(),
		RetriesAbandoned: r.retriesAbandoned.Load(),
		Hedges:           r.hedges.Load(),
		HedgesWon:        r.hedgesWon.Load(),
		HedgesLost:       r.hedgesLost.Load(),
		BreakerOpens:     r.breakerOpens.Load(),
		BreakerHalfOpens: r.breakerHalfOpens.Load(),
		BreakerCloses:    r.breakerCloses.Load(),
		WorkerCrashes:    r.workerCrashes.Load(),
		CorruptDrills:    r.corruptDrills.Load(),
		DegradedSeconds:  r.degradedSeconds.Load(),
		OutageWastedJ:    r.outageWastedJ.Load(),

		QueueDepth:    r.queueDepth.Load(),
		QueueMaxDepth: r.queueMax.Load(),

		SyncPasses:              r.syncPasses.Load(),
		SyncFailures:            r.syncFailures.Load(),
		SyncConsecutiveFailures: r.syncConsecFails.Load(),

		Latency:   r.latency.Snapshot(),
		Wait:      r.wait.Snapshot(),
		Energy:    r.energy.Snapshot(),
		VWait:     r.vwait.Snapshot(),
		Phases:    make(map[string]HistogramSnapshot),
		ByTarget:  make(map[string]int64),
		ByDevice:  make(map[string]int64),
		ByBreaker: make(map[string]string),
		ByTenant:  make(map[string]HistogramSnapshot),
	}
	for p, h := range r.phases {
		if hs := h.Snapshot(); hs.Count > 0 {
			s.Phases[p] = hs
		}
	}
	// No mutator is in flight (they all hold snapMu shared), so locking mu
	// here is belt-and-braces for the map copies.
	r.mu.Lock()
	s.SyncLastError = r.syncLastErr
	for k, v := range r.byTarget {
		s.ByTarget[k] = v
	}
	for k, v := range r.byDevice {
		s.ByDevice[k] = v
	}
	for k, v := range r.byBreaker {
		s.ByBreaker[k] = v
	}
	for t, h := range r.byTenant {
		s.ByTenant[t] = h.Snapshot()
	}
	r.mu.Unlock()
	return s
}

// Merge folds any number of snapshots into one fleet-wide view — the
// routing tier's merged registry across gateway shards. Counters and gauges
// sum; histograms merge bucket-wise (every registry shares the Scheme
// ladder, so merging cannot fail across gateways; a foreign-scheme snapshot
// keeps the accumulated histogram). Merging a zero-valued or empty snapshot
// is an identity operation in any operand position, and same-scheme merges
// are commutative. QueueMaxDepth sums the per-shard watermarks, which
// upper-bounds the (unknowable) aggregate watermark. Label maps union with
// summed counts; breaker labels are device-scoped and devices are unique
// across shards, so states never collide.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Phases:    make(map[string]HistogramSnapshot),
		ByTarget:  make(map[string]int64),
		ByDevice:  make(map[string]int64),
		ByBreaker: make(map[string]string),
		ByTenant:  make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		out.Submitted += s.Submitted
		out.Served += s.Served
		out.Shed += s.Shed
		out.Expired += s.Expired
		out.Failed += s.Failed
		out.Retried += s.Retried
		out.QoSViolations += s.QoSViolations
		out.Outages += s.Outages
		out.OffloadRetries += s.OffloadRetries
		out.RetriesRecovered += s.RetriesRecovered
		out.RetriesAbandoned += s.RetriesAbandoned
		out.Hedges += s.Hedges
		out.HedgesWon += s.HedgesWon
		out.HedgesLost += s.HedgesLost
		out.BreakerOpens += s.BreakerOpens
		out.BreakerHalfOpens += s.BreakerHalfOpens
		out.BreakerCloses += s.BreakerCloses
		out.WorkerCrashes += s.WorkerCrashes
		out.CorruptDrills += s.CorruptDrills
		out.DegradedSeconds += s.DegradedSeconds
		out.OutageWastedJ += s.OutageWastedJ
		out.QueueDepth += s.QueueDepth
		out.QueueMaxDepth += s.QueueMaxDepth
		out.SyncPasses += s.SyncPasses
		out.SyncFailures += s.SyncFailures
		// Consecutive failures merge by max: the sickest sync plane in the
		// fleet decides the alarm. Its error message rides along.
		if s.SyncConsecutiveFailures > out.SyncConsecutiveFailures {
			out.SyncConsecutiveFailures = s.SyncConsecutiveFailures
		}
		if out.SyncLastError == "" && s.SyncLastError != "" {
			out.SyncLastError = s.SyncLastError
		}
		out.Latency = mergeHist(out.Latency, s.Latency)
		out.Wait = mergeHist(out.Wait, s.Wait)
		out.Energy = mergeHist(out.Energy, s.Energy)
		out.VWait = mergeHist(out.VWait, s.VWait)
		for p, h := range s.Phases {
			if have, ok := out.Phases[p]; ok {
				out.Phases[p] = mergeHist(have, h)
			} else {
				out.Phases[p] = h
			}
		}
		for k, v := range s.ByTarget {
			out.ByTarget[k] += v
		}
		for k, v := range s.ByDevice {
			out.ByDevice[k] += v
		}
		for k, v := range s.ByBreaker {
			out.ByBreaker[k] = v
		}
		for t, h := range s.ByTenant {
			if have, ok := out.ByTenant[t]; ok {
				out.ByTenant[t] = mergeHist(have, h)
			} else {
				out.ByTenant[t] = h
			}
		}
	}
	return out
}

// mergeHist merges two histogram snapshots. An empty operand — a zero-valued
// snapshot (no scheme, no buckets) or one with no observations — is the
// merge identity on either side, so Merge(zero, s) == Merge(s, zero) == s;
// before this rule a zero first operand's empty scheme poisoned every later
// merge. On a genuine scheme mismatch the accumulated side wins (cannot
// happen between registries built by New, which share one ladder).
func mergeHist(a, b HistogramSnapshot) HistogramSnapshot {
	if b.Count == 0 && len(b.Counts) == 0 {
		return a
	}
	if a.Count == 0 && len(a.Counts) == 0 {
		return b
	}
	m, err := a.Merge(b)
	if err != nil {
		return a
	}
	return m
}

// atomicFloat is a float64 accumulated with compare-and-swap.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
