// Package metrics is the serving gateway's runtime instrumentation: a
// registry of lock-free counters and histograms every worker updates on the
// hot path, plus a consistent-enough Snapshot for tests, the CLI and
// operators. Counters are atomic so the gateway never serializes requests on
// bookkeeping; the only mutex guards the low-cardinality per-target and
// per-device maps.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
)

// Registry accumulates gateway counters. The zero value is not usable; call
// New.
type Registry struct {
	submitted     atomic.Int64
	served        atomic.Int64
	shed          atomic.Int64
	expired       atomic.Int64
	failed        atomic.Int64
	retried       atomic.Int64
	qosViolations atomic.Int64
	outages       atomic.Int64

	queueDepth atomic.Int64
	queueMax   atomic.Int64

	latency *Histogram
	wait    *Histogram
	energy  *Histogram

	mu       sync.Mutex
	byTarget map[string]int64
	byDevice map[string]int64
}

// New builds a registry with the default latency/wait/energy bucket ladders:
// exponential from 1 ms to ~16 s for the two time axes (sub-millisecond
// lookups to radio-timeout stalls) and from 0.1 mJ to ~26 J for energy.
func New() *Registry {
	return &Registry{
		latency:  NewHistogram(ExponentialBounds(1e-3, 2, 15)),
		wait:     NewHistogram(ExponentialBounds(1e-3, 2, 15)),
		energy:   NewHistogram(ExponentialBounds(1e-4, 2, 19)),
		byTarget: make(map[string]int64),
		byDevice: make(map[string]int64),
	}
}

// IncSubmitted counts one request entering admission control.
func (r *Registry) IncSubmitted() { r.submitted.Add(1) }

// IncServed counts one executed request.
func (r *Registry) IncServed() { r.served.Add(1) }

// IncShed counts one request rejected by admission control (full queue).
func (r *Registry) IncShed() { r.shed.Add(1) }

// IncExpired counts one request failed fast on a passed deadline.
func (r *Registry) IncExpired() { r.expired.Add(1) }

// IncFailed counts one request whose execution returned an error.
func (r *Registry) IncFailed() { r.failed.Add(1) }

// IncRetried counts one failover re-execution on the local fallback target.
func (r *Registry) IncRetried() { r.retried.Add(1) }

// IncQoSViolation counts one served request over its latency target.
func (r *Registry) IncQoSViolation() { r.qosViolations.Add(1) }

// IncOutage counts one simulated radio outage absorbed by the sim's local
// fallback.
func (r *Registry) IncOutage() { r.outages.Add(1) }

// QueueEnter bumps the aggregate queue-depth gauge and its high watermark.
func (r *Registry) QueueEnter() {
	d := r.queueDepth.Add(1)
	for {
		max := r.queueMax.Load()
		if d <= max || r.queueMax.CompareAndSwap(max, d) {
			return
		}
	}
}

// QueueExit drops the aggregate queue-depth gauge.
func (r *Registry) QueueExit() { r.queueDepth.Add(-1) }

// QueueDepth returns the current aggregate queue depth.
func (r *Registry) QueueDepth() int64 { return r.queueDepth.Load() }

// ObserveLatency records one end-to-end execution latency (seconds).
func (r *Registry) ObserveLatency(s float64) { r.latency.Observe(s) }

// ObserveWait records one queue wait (seconds).
func (r *Registry) ObserveWait(s float64) { r.wait.Observe(s) }

// ObserveEnergy records one mobile-side energy cost (joules).
func (r *Registry) ObserveEnergy(j float64) { r.energy.Observe(j) }

// CountTarget counts one execution against a target label (the coarse
// location — local/connected/cloud — keeps the map small).
func (r *Registry) CountTarget(label string) {
	r.mu.Lock()
	r.byTarget[label]++
	r.mu.Unlock()
}

// CountDevice counts one execution against a gateway worker.
func (r *Registry) CountDevice(device string) {
	r.mu.Lock()
	r.byDevice[device]++
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of the registry. Individual fields are
// read atomically; the snapshot as a whole is not a single atomic cut, so
// cross-field invariants (Accounted == Submitted) only hold once the gateway
// is quiescent.
type Snapshot struct {
	Submitted     int64
	Served        int64
	Shed          int64
	Expired       int64
	Failed        int64
	Retried       int64
	QoSViolations int64
	Outages       int64

	QueueDepth    int64
	QueueMaxDepth int64

	Latency HistogramSnapshot
	Wait    HistogramSnapshot
	Energy  HistogramSnapshot

	// ByTarget counts executions per execution-location label; ByDevice per
	// gateway worker.
	ByTarget map[string]int64
	ByDevice map[string]int64
}

// Accounted returns the number of requests with a terminal outcome.
func (s Snapshot) Accounted() int64 { return s.Served + s.Shed + s.Expired + s.Failed }

// Snapshot copies the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Submitted:     r.submitted.Load(),
		Served:        r.served.Load(),
		Shed:          r.shed.Load(),
		Expired:       r.expired.Load(),
		Failed:        r.failed.Load(),
		Retried:       r.retried.Load(),
		QoSViolations: r.qosViolations.Load(),
		Outages:       r.outages.Load(),
		QueueDepth:    r.queueDepth.Load(),
		QueueMaxDepth: r.queueMax.Load(),
		Latency:       r.latency.Snapshot(),
		Wait:          r.wait.Snapshot(),
		Energy:        r.energy.Snapshot(),
		ByTarget:      make(map[string]int64),
		ByDevice:      make(map[string]int64),
	}
	r.mu.Lock()
	for k, v := range r.byTarget {
		s.ByTarget[k] = v
	}
	for k, v := range r.byDevice {
		s.ByDevice[k] = v
	}
	r.mu.Unlock()
	return s
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe. Bucket
// i counts observations <= Bounds[i]; the final (implicit) bucket counts the
// overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// NewHistogram builds a histogram over sorted ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExponentialBounds returns n upper bounds start, start*factor, ...
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time histogram copy.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// bucket.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) as the upper bound of the bucket
// holding it; overflow observations report +Inf.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// atomicFloat is a float64 accumulated with compare-and-swap.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
