package metrics

import (
	"fmt"
	"reflect"
	"testing"

	"autoscale/internal/exec"
	"autoscale/internal/obs"
)

// seededSnapshot drives a fresh registry with a seed-derived mix of counter
// bumps, histogram observations, per-phase/per-tenant samples and breaker
// states, and returns its snapshot. The tag keeps label spaces (devices,
// breakers) disjoint between operands so last-writer-wins breaker state
// cannot masquerade as a commutativity failure.
func seededSnapshot(seed uint64, tag string) Snapshot {
	rng := exec.NewRand(seed)
	r := New()
	bump := []func(){
		r.IncSubmitted, r.IncServed, r.IncShed, r.IncExpired, r.IncFailed,
		r.IncRetried, r.IncQoSViolation, r.IncOutage, r.IncOffloadRetry,
		r.IncHedge, r.IncBreakerOpen, r.IncWorkerCrash,
	}
	for i, n := 0, 20+rng.Intn(60); i < n; i++ {
		bump[rng.Intn(len(bump))]()
		switch rng.Intn(4) {
		case 0:
			r.ObserveLatency(rng.ExpFloat64() * 0.05)
		case 1:
			r.ObserveVWait(rng.ExpFloat64() * 0.2)
		case 2:
			r.ObservePhase(obs.PhaseQueue, rng.ExpFloat64()*0.01)
		case 3:
			r.ObserveTenantResponse("tenant-"+string(rune('a'+rng.Intn(3))), rng.ExpFloat64()*0.1)
		}
	}
	r.AddDegradedSeconds(rng.Float64())
	r.CountTarget("edge")
	r.CountDevice(tag + "-device")
	r.SetBreakerState(tag+"-breaker", "closed")
	return r.Snapshot()
}

// TestMergeEmptyIdentity checks merging a zero-valued snapshot — from an
// untouched registry or a plain zero struct — changes nothing, regardless
// of operand order.
func TestMergeEmptyIdentity(t *testing.T) {
	empties := map[string]Snapshot{
		"zero struct":        {},
		"untouched registry": New().Snapshot(),
	}
	for seed := uint64(1); seed <= 10; seed++ {
		s := seededSnapshot(seed, "x")
		want := Merge(s)
		for name, empty := range empties {
			if got := Merge(s, empty); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Merge(s, %s) != Merge(s)", seed, name)
			}
			if got := Merge(empty, s); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Merge(%s, s) != Merge(s)", seed, name)
			}
		}
	}
}

// TestMergeCommutative checks counter sums and bucket-wise histogram merges
// are order-independent over seeded snapshot pairs.
func TestMergeCommutative(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		a := seededSnapshot(seed, "a")
		b := seededSnapshot(seed+100, "b")
		ab, ba := Merge(a, b), Merge(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("seed %d: Merge(a, b) != Merge(b, a):\n%+v\nvs\n%+v", seed, ab, ba)
		}
		// Spot-check the histogram actually merged (not adopted from one
		// side): counts add up.
		if ab.Latency.Count != a.Latency.Count+b.Latency.Count {
			t.Fatalf("seed %d: merged latency count %d, want %d",
				seed, ab.Latency.Count, a.Latency.Count+b.Latency.Count)
		}
		if ab.VWait.Count != a.VWait.Count+b.VWait.Count {
			t.Fatalf("seed %d: merged vwait count %d, want %d",
				seed, ab.VWait.Count, a.VWait.Count+b.VWait.Count)
		}
	}
}

// TestMergeZeroFirstRegression pins the fixed edge case: a zero-valued
// first operand must not poison later histogram merges (the old code
// adopted the first snapshot's zero bucket scheme and then rejected every
// real histogram against it).
func TestMergeZeroFirstRegression(t *testing.T) {
	s := seededSnapshot(7, "x")
	if s.Latency.Count == 0 {
		t.Fatal("seeded snapshot recorded no latency; test is vacuous")
	}
	got := Merge(Snapshot{}, s, Snapshot{})
	if got.Latency.Count != s.Latency.Count {
		t.Fatalf("zero-first merge dropped latency: count %d, want %d", got.Latency.Count, s.Latency.Count)
	}
	if got.Latency.Sum != s.Latency.Sum {
		t.Fatalf("zero-first merge dropped latency sum: %g, want %g", got.Latency.Sum, s.Latency.Sum)
	}
	for name, h := range s.ByTenant {
		if got.ByTenant[name].Count != h.Count {
			t.Fatalf("zero-first merge dropped tenant %q histogram", name)
		}
	}
}

// TestMergeAssociativeAcrossShards mirrors the router's real call shape:
// merging N shard snapshots pairwise-left must equal one flat merge.
func TestMergeAssociativeAcrossShards(t *testing.T) {
	var shards []Snapshot
	for i := 0; i < 4; i++ {
		shards = append(shards, seededSnapshot(uint64(40+i), fmt.Sprintf("s%d", i)))
	}
	flat := Merge(shards...)
	left := Merge(shards[0])
	for _, s := range shards[1:] {
		left = Merge(left, s)
	}
	if !reflect.DeepEqual(flat, left) {
		t.Fatal("pairwise-left merge differs from flat merge")
	}
}
