package metrics

import (
	"math"
	"sync"
	"testing"

	"autoscale/internal/obs"
)

func TestCountersAndSnapshot(t *testing.T) {
	r := New()
	r.IncSubmitted()
	r.IncSubmitted()
	r.IncServed()
	r.IncShed()
	r.IncRetried()
	r.IncQoSViolation()
	r.IncOutage()
	r.CountTarget("local")
	r.CountTarget("local")
	r.CountTarget("cloud")
	r.CountDevice("Mi8Pro")

	s := r.Snapshot()
	if s.Submitted != 2 || s.Served != 1 || s.Shed != 1 || s.Expired != 0 {
		t.Fatalf("snapshot counters: %+v", s)
	}
	if s.Retried != 1 || s.QoSViolations != 1 || s.Outages != 1 {
		t.Fatalf("snapshot counters: %+v", s)
	}
	if s.Accounted() != 2 {
		t.Fatalf("accounted = %d", s.Accounted())
	}
	if s.ByTarget["local"] != 2 || s.ByTarget["cloud"] != 1 || s.ByDevice["Mi8Pro"] != 1 {
		t.Fatalf("maps: %+v %+v", s.ByTarget, s.ByDevice)
	}
	// The snapshot must be a copy, not a view.
	s.ByTarget["local"] = 99
	if r.Snapshot().ByTarget["local"] != 2 {
		t.Fatal("snapshot aliases the registry map")
	}
}

func TestQueueGauge(t *testing.T) {
	r := New()
	r.QueueEnter()
	r.QueueEnter()
	r.QueueEnter()
	r.QueueExit()
	if d := r.QueueDepth(); d != 2 {
		t.Fatalf("depth = %d", d)
	}
	s := r.Snapshot()
	if s.QueueDepth != 2 || s.QueueMaxDepth != 3 {
		t.Fatalf("gauge: depth %d max %d", s.QueueDepth, s.QueueMaxDepth)
	}
}

func TestRegistryHistograms(t *testing.T) {
	r := New()
	r.ObserveLatency(0.010)
	r.ObserveLatency(0.020)
	r.ObserveWait(0.001)
	r.ObserveEnergy(0.5)
	s := r.Snapshot()
	if s.Latency.Count != 2 || s.Wait.Count != 1 || s.Energy.Count != 1 {
		t.Fatalf("histogram counts: %d %d %d", s.Latency.Count, s.Wait.Count, s.Energy.Count)
	}
	if got := s.Latency.Mean(); math.Abs(got-0.015) > 1e-12 {
		t.Fatalf("latency mean = %v", got)
	}
	if s.Latency.Scheme != Scheme() {
		t.Fatalf("latency scheme = %+v", s.Latency.Scheme)
	}
	// All registry histograms share one scheme so they can merge.
	if _, err := s.Latency.Merge(s.Wait); err != nil {
		t.Fatalf("merge across axes: %v", err)
	}
	// Quantiles are within one sub-bucket of the observation and capped at
	// the observed max.
	p99 := s.Latency.Quantile(0.99)
	if p99 < 0.020 || p99 > 0.020*(1+1.0/float64(Scheme().Sub)) {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestObservePhase(t *testing.T) {
	r := New()
	r.ObservePhase(obs.PhaseExecute, 0.010)
	r.ObservePhase(obs.PhaseExecute, 0.030)
	r.ObservePhase(obs.PhaseRetry, 0.005)
	r.ObservePhase("no-such-phase", 1.0) // dropped, not panicking
	s := r.Snapshot()
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %v", s.Phases)
	}
	ex := s.Phases[obs.PhaseExecute]
	if ex.Count != 2 || math.Abs(ex.Sum-0.040) > 1e-12 {
		t.Fatalf("execute phase: %+v", ex)
	}
	if s.Phases[obs.PhaseRetry].Count != 1 {
		t.Fatalf("retry phase: %+v", s.Phases[obs.PhaseRetry])
	}
	if _, ok := s.Phases["no-such-phase"]; ok {
		t.Fatal("unknown phase recorded")
	}
	// Phases that never observed stay out of the snapshot.
	if _, ok := s.Phases[obs.PhaseHedge]; ok {
		t.Fatal("empty phase present in snapshot")
	}
}

// TestSnapshotIsConsistentCut pins the torn-read fix: writers bump submitted
// then served inside one shared-lock section, so no snapshot may ever
// observe served > submitted.
func TestSnapshotIsConsistentCut(t *testing.T) {
	r := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			r.shared(func() {
				r.submitted.Add(1)
				r.served.Add(1)
			})
		}
	}()
	for {
		s := r.Snapshot()
		if s.Served > s.Submitted {
			t.Fatalf("torn snapshot: served %d > submitted %d", s.Served, s.Submitted)
		}
		if s.Submitted != s.Served {
			t.Fatalf("mid-mutation snapshot: submitted %d served %d", s.Submitted, s.Served)
		}
		select {
		case <-done:
			s := r.Snapshot()
			if s.Submitted != 20000 || s.Served != 20000 {
				t.Fatalf("lost counts: %+v", s)
			}
			return
		default:
		}
	}
}

// TestConcurrentUpdates hammers every mutator from many goroutines; run with
// -race this is the registry's thread-safety regression test.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.IncSubmitted()
				r.IncServed()
				r.QueueEnter()
				r.ObserveLatency(0.01)
				r.ObserveEnergy(0.5)
				r.ObserveWait(0.001)
				r.ObservePhase(obs.PhaseExecute, 0.01)
				r.CountTarget("local")
				r.CountDevice("dev")
				r.QueueExit()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Submitted != workers*each || s.Served != workers*each {
		t.Fatalf("lost counts: %+v", s)
	}
	if s.Latency.Count != workers*each {
		t.Fatalf("lost latency observations: %d", s.Latency.Count)
	}
	if got := s.Latency.Sum; math.Abs(got-workers*each*0.01) > 1e-6 {
		t.Fatalf("latency sum = %v", got)
	}
	if s.Phases[obs.PhaseExecute].Count != workers*each {
		t.Fatalf("lost phase observations: %d", s.Phases[obs.PhaseExecute].Count)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth = %d", s.QueueDepth)
	}
	if s.ByTarget["local"] != workers*each {
		t.Fatalf("target counts = %d", s.ByTarget["local"])
	}
}
