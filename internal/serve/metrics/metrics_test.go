package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCountersAndSnapshot(t *testing.T) {
	r := New()
	r.IncSubmitted()
	r.IncSubmitted()
	r.IncServed()
	r.IncShed()
	r.IncRetried()
	r.IncQoSViolation()
	r.IncOutage()
	r.CountTarget("local")
	r.CountTarget("local")
	r.CountTarget("cloud")
	r.CountDevice("Mi8Pro")

	s := r.Snapshot()
	if s.Submitted != 2 || s.Served != 1 || s.Shed != 1 || s.Expired != 0 {
		t.Fatalf("snapshot counters: %+v", s)
	}
	if s.Retried != 1 || s.QoSViolations != 1 || s.Outages != 1 {
		t.Fatalf("snapshot counters: %+v", s)
	}
	if s.Accounted() != 2 {
		t.Fatalf("accounted = %d", s.Accounted())
	}
	if s.ByTarget["local"] != 2 || s.ByTarget["cloud"] != 1 || s.ByDevice["Mi8Pro"] != 1 {
		t.Fatalf("maps: %+v %+v", s.ByTarget, s.ByDevice)
	}
	// The snapshot must be a copy, not a view.
	s.ByTarget["local"] = 99
	if r.Snapshot().ByTarget["local"] != 2 {
		t.Fatal("snapshot aliases the registry map")
	}
}

func TestQueueGauge(t *testing.T) {
	r := New()
	r.QueueEnter()
	r.QueueEnter()
	r.QueueEnter()
	r.QueueExit()
	if d := r.QueueDepth(); d != 2 {
		t.Fatalf("depth = %d", d)
	}
	s := r.Snapshot()
	if s.QueueDepth != 2 || s.QueueMaxDepth != 3 {
		t.Fatalf("gauge: depth %d max %d", s.QueueDepth, s.QueueMaxDepth)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	want := []int64{2, 1, 1, 1} // <=1, <=10, <=100, overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := s.Mean(); math.Abs(got-111.3) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %v", q)
	}
	if q := s.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %v, want +Inf (overflow bucket)", q)
	}
	if q := s.Quantile(0.2); q != 1 {
		t.Fatalf("p20 = %v", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram(ExponentialBounds(1e-3, 2, 4)).Snapshot()
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram: mean %v p50 %v", s.Mean(), s.Quantile(0.5))
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v", b)
		}
	}
}

// TestConcurrentUpdates hammers every mutator from many goroutines; run with
// -race this is the registry's thread-safety regression test.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.IncSubmitted()
				r.IncServed()
				r.QueueEnter()
				r.ObserveLatency(0.01)
				r.ObserveEnergy(0.5)
				r.ObserveWait(0.001)
				r.CountTarget("local")
				r.CountDevice("dev")
				r.QueueExit()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Submitted != workers*each || s.Served != workers*each {
		t.Fatalf("lost counts: %+v", s)
	}
	if s.Latency.Count != workers*each {
		t.Fatalf("lost latency observations: %d", s.Latency.Count)
	}
	if got := s.Latency.Sum; math.Abs(got-workers*each*0.01) > 1e-6 {
		t.Fatalf("latency sum = %v", got)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth = %d", s.QueueDepth)
	}
	if s.ByTarget["local"] != workers*each {
		t.Fatalf("target counts = %d", s.ByTarget["local"])
	}
}
