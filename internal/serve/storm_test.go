package serve

import (
	"bytes"
	"context"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/serve/metrics"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
	"autoscale/internal/trace"
)

// stormSchedule is the acceptance storm: phase 1 takes both remote sites
// solid-down (all offloads fail, breakers trip, the gateway degrades to
// local execution), phase 2 restores connectivity under a deep WLAN fade
// (offloads work but cost more), phase 3 is full recovery — where the
// half-open probes close the breakers again.
func stormSchedule() *fault.Schedule {
	return &fault.Schedule{Name: "acceptance-storm", Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0.2, EndS: 3.2},
		{Kind: fault.KindOutage, Site: fault.SiteConnected, StartS: 0.2, EndS: 3.2},
		{Kind: fault.KindRSSIRamp, Link: fault.LinkWLAN, StartS: 3.2, EndS: 6.2, DeltaDBm: -20},
	}}
}

// runStorm serves one full pass of the acceptance storm on a fresh gateway
// and returns the final metrics, the serialized decision trace, and every
// response in order.
func runStorm(t *testing.T, seed int64) (metrics.Snapshot, []byte, []Response) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = seed // the engine's decision/noise streams must track the storm seed
	// A cold policy rarely offloads; high exploration keeps remote attempts
	// flowing through every storm phase so the breakers see traffic.
	cfg.RL.Epsilon = 0.5
	e := testEngine(t, soc.Mi8Pro(), seed, cfg)
	e.World.Faults = fault.New(stormSchedule(), exec.NewRoot(seed).Child("faults"))

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	g, err := New([]Backend{{Device: "Mi8Pro", Engine: e}}, Config{
		Trace: tw,
		Resilience: ResilienceConfig{
			Enabled:          true,
			FailureThreshold: 1,
			OpenForS:         4, // probes start only after phase 1 has ended
			HalfOpenProbes:   1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v3")
	var responses []Response
	for i := 0; i < 900; i++ {
		r, err := g.Do(Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if r.Status != StatusServed {
			t.Fatalf("request %d not served mid-storm: %+v", i, r)
		}
		responses = append(responses, r)
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return g.Snapshot(), buf.Bytes(), responses
}

// TestStormAcceptance replays the scripted three-phase outage storm end to
// end: the gateway must keep serving throughout (graceful local
// degradation), the breaker must walk closed -> open -> half-open -> closed,
// degraded-mode requests must stay within the paper's 50 ms QoS budget plus
// 50 ms, and replaying the same schedule and seed must yield a byte-identical
// decision trace.
func TestStormAcceptance(t *testing.T) {
	const seed = 31
	snap, traceBytes, responses := runStorm(t, seed)

	// The breaker lifecycle must complete within the storm.
	if snap.BreakerOpens == 0 {
		t.Error("no breaker tripped during the dual-site outage phase")
	}
	if snap.BreakerHalfOpens == 0 {
		t.Error("no breaker reached half-open after the cool-off")
	}
	if snap.BreakerCloses == 0 {
		t.Error("no breaker closed after recovery probes")
	}
	if snap.DegradedSeconds <= 0 {
		t.Error("closed-out breakers must account their degraded episode")
	}

	// The gateway degraded gracefully: masked requests ran locally, and no
	// degraded local answer blew the QoS target by more than the paper's
	// 50 ms budget.
	degradedLocal := 0
	for i, r := range responses {
		if !r.Degraded {
			continue
		}
		if r.Decision.Target.Location != sim.Local {
			continue // half-open probe: the policy is allowed to test the site
		}
		degradedLocal++
		if lat := r.Decision.Measurement.LatencyS; lat > sim.QoSNonStreamingS+0.050 {
			t.Errorf("degraded request %d: latency %.1f ms blows the 50 ms QoS target plus 50 ms budget",
				i, lat*1e3)
		}
	}
	if degradedLocal == 0 {
		t.Error("no request was served in degraded local mode while breakers were open")
	}

	// Deterministic replay: an identical fresh run produces a byte-identical
	// per-request decision log.
	_, traceBytes2, _ := runStorm(t, seed)
	if !bytes.Equal(traceBytes, traceBytes2) {
		t.Fatalf("replay diverged: trace sizes %d vs %d bytes", len(traceBytes), len(traceBytes2))
	}
	// And the trace is a well-formed decision log covering every request.
	records, err := trace.ReadAll(bytes.NewReader(traceBytes))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(responses) {
		t.Fatalf("trace carries %d records for %d requests", len(records), len(responses))
	}
	sawDegraded := false
	for _, rec := range records {
		if rec.Degraded {
			sawDegraded = true
			break
		}
	}
	if !sawDegraded {
		t.Error("trace did not record the degraded phase")
	}

	// A different seed must give a different storm (the Markov-free windows
	// are fixed, but decisions and noise differ) — guarding against the
	// trace accidentally ignoring the RNG.
	_, traceOther, _ := runStorm(t, seed+1)
	if bytes.Equal(traceBytes, traceOther) {
		t.Error("different seeds produced identical traces")
	}
}
