package serve

import (
	"errors"
	"fmt"

	"autoscale/internal/policy"
)

// Policy-plane glue: warm-starting workers from the checkpoint store,
// flushing final tables at shutdown, and the periodic federation loop.

// warmStart restores a worker's engine from the newest compatible
// checkpoint: the device's own latest generation when its config hash still
// matches the engine, otherwise the fleet's merged policy for that hash. It
// is best-effort by design — a missing, incompatible or invalid checkpoint
// leaves the engine on its donor-transferred (or cold) table; the store has
// already quarantined anything corrupt.
func warmStart(w *worker, sink policy.Sink) (uint64, bool) {
	hash := w.engine.ConfigHash()
	for _, device := range []string{w.device, policy.FleetDevice(hash)} {
		ck, err := sink.Latest(device)
		if err != nil || ck.ConfigHash != hash {
			continue
		}
		if err := w.engine.RestoreQTable(ck.Snapshot); err != nil {
			continue
		}
		return ck.Generation, true
	}
	return 0, false
}

// checkpointWorker persists one worker's current Q-table with retry/backoff.
func checkpointWorker(w *worker, sink policy.Sink, cfg policy.SyncConfig) error {
	data, err := w.engine.SnapshotQTable()
	if err != nil {
		return err
	}
	ck, err := policy.NewCheckpoint(w.device, w.engine.ConfigHash(), data)
	if err != nil {
		return err
	}
	_, err = policy.SaveWithRetry(sink, ck, cfg)
	if errors.Is(err, policy.ErrStaleGeneration) {
		// A fresher generation is already on disk; nothing to add.
		return nil
	}
	return err
}

// WarmStarts reports which devices were warm-started from the checkpoint
// store — at construction or when AddBackend re-homed them here — mapped to
// the generation they resumed from.
func (g *Gateway) WarmStarts() map[string]uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]uint64, len(g.warm))
	for d, gen := range g.warm {
		out[d] = gen
	}
	return out
}

// PolicyNodes exposes the gateway's workers to a federation syncer. The
// routing tier aggregates every shard's nodes into one cross-shard learning
// plane, so experience merges fleet-wide, not just within a shard.
func (g *Gateway) PolicyNodes() []policy.Node {
	ws := g.snapshotWorkers()
	nodes := make([]policy.Node, 0, len(ws))
	for _, w := range ws {
		nodes = append(nodes, policy.Node{Device: w.device, Engine: w.engine})
	}
	return nodes
}

// policySyncer lazily builds the gateway's federation syncer.
func (g *Gateway) policySyncer() (*policy.Syncer, error) {
	if g.cfg.Checkpoints == nil {
		return nil, errors.New("serve: no checkpoint store configured")
	}
	g.syncMu.Lock()
	defer g.syncMu.Unlock()
	if g.syncer == nil {
		cfg := g.cfg.PolicySync
		if cfg.OnPass == nil {
			// Export pass outcomes into the registry so /healthz and the
			// autoscale_policy_sync_* series see persistent failure.
			cfg.OnPass = func(rep policy.Report) {
				if err := rep.Err(); err != nil {
					g.met.ObserveSyncPass(true, err.Error())
				} else {
					g.met.ObserveSyncPass(false, "")
				}
			}
		}
		if cfg.Unreachable == nil && g.cfg.Faults != nil {
			// Scripted sync partitions: the device serves traffic but the
			// syncer cannot reach it while its window holds.
			cfg.Unreachable = func(dev string) bool {
				return g.cfg.Faults.Partitioned(dev, g.VirtualNow())
			}
		}
		s, err := policy.NewSyncer(g.cfg.Checkpoints, g.PolicyNodes, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: policy sync: %w", err)
		}
		g.syncer = s
	}
	return g.syncer, nil
}

// SyncPolicies runs one federation pass synchronously: checkpoint every
// worker's table, merge each compatibility group into the fleet policy, and
// warm-start workers that have not learned anything yet. It fails on a
// closed gateway (shutdown already persisted the final tables).
func (g *Gateway) SyncPolicies() (policy.Report, error) {
	g.mu.RLock()
	closed := g.closed
	g.mu.RUnlock()
	if closed {
		return policy.Report{}, ErrClosed
	}
	s, err := g.policySyncer()
	if err != nil {
		return policy.Report{}, err
	}
	return s.SyncOnce(), nil
}

// StartPolicySync launches the background federation loop (one SyncPolicies
// pass per cfg.PolicySync.Interval). Shutdown stops it before the final
// flush; it can also be stopped early via StopPolicySync.
func (g *Gateway) StartPolicySync() error {
	s, err := g.policySyncer()
	if err != nil {
		return err
	}
	s.Start()
	return nil
}

// StopPolicySync halts the background federation loop (no-op when not
// running).
func (g *Gateway) StopPolicySync() {
	g.syncMu.Lock()
	s := g.syncer
	g.syncMu.Unlock()
	if s != nil {
		s.Stop()
	}
}
