// Package serve is the fleet-serving layer on top of the AutoScale engine:
// a Gateway that owns one warm-started engine per device, accepts inference
// requests through bounded per-device queues, and returns responses on
// per-request channels. The paper's engine decides one inference at a time
// on one device; a production deployment faces a stream of requests from
// many services against a heterogeneous fleet, and needs the plumbing the
// paper never had to build — admission control instead of unbounded
// blocking, deadline-aware dispatch that fails stale work fast, failover to
// the local fallback target on QoS misses, runtime metrics, and a graceful
// shutdown that drains queues and persists what each engine learned.
//
// The gateway deliberately preserves the paper's per-decision semantics:
// every executed request goes through Engine.RunInference — observe, select
// epsilon-greedily, execute, reward, stage the Q update — so engines keep
// learning online under production traffic exactly as they do in the
// single-stream experiments.
package serve

import (
	"errors"
	"fmt"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/fault"
	"autoscale/internal/policy"
	"autoscale/internal/sim"
	"autoscale/internal/trace"
	"autoscale/internal/tracez"
)

// Sentinel errors surfaced on rejected or failed requests.
var (
	// ErrClosed is returned by Submit after Shutdown has begun.
	ErrClosed = errors.New("serve: gateway closed")
	// ErrQueueFull marks a request shed by admission control.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDeadlineExpired marks a request whose deadline passed before
	// execution.
	ErrDeadlineExpired = errors.New("serve: deadline expired")
	// ErrUnknownDevice marks a request routed to a device the gateway does
	// not serve.
	ErrUnknownDevice = errors.New("serve: unknown device")
	// ErrShardDown marks a request stranded in a killed gateway's queues: a
	// crashed shard rejects its queued work instead of executing it, so the
	// routing tier can fail the request over to a surviving shard.
	ErrShardDown = errors.New("serve: shard down")
)

// Status is the terminal outcome of a request.
type Status int

// Request outcomes.
const (
	// StatusServed: the request executed (possibly with a failover retry).
	StatusServed Status = iota
	// StatusShed: admission control rejected the request on a full queue.
	StatusShed
	// StatusExpired: the deadline passed before execution; the request
	// never ran.
	StatusExpired
	// StatusFailed: execution returned an error, or routing failed.
	StatusFailed
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusServed:
		return "served"
	case StatusShed:
		return "shed"
	case StatusExpired:
		return "expired"
	case StatusFailed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Request is one inference to serve.
type Request struct {
	// Model is the network to run.
	Model *dnn.Model
	// Conditions is the stochastic runtime variance at this request.
	Conditions sim.Conditions
	// Deadline, when non-zero, is the latest useful completion time: a
	// request still queued past it is failed fast, never executed.
	Deadline time.Time
	// Device pins the request to a named worker; empty routes to the
	// least-loaded queue.
	Device string
	// Tenant is the fairness class the request is billed to. The gateway
	// itself only records it (metrics, trace attribution); the routing tier
	// uses it for weighted admission across shards.
	Tenant string
	// ArrivalS, when positive, is the request's virtual arrival stamp on the
	// engines' clock scale (seconds of accumulated service time). Load
	// generators that stamp it get deterministic queueing semantics: the
	// gateway records vwait = max(0, lane clock - ArrivalS), the routing
	// tier's admission gates compare the estimated backlog against per-class
	// wait bounds, and the capacity planner ticks on it. Zero disables
	// virtual-wait accounting.
	ArrivalS float64
	// Trace is the request's causal-trace handle; nil means untraced. The
	// routing tier starts it at admission so one span tree covers the whole
	// path (admit, dispatch, queue, decide, execute, recovery legs); a
	// standalone gateway with a Tracer configured starts one at submit. All
	// handle methods are nil-safe, so serving code annotates unconditionally.
	Trace *tracez.Active
}

// Response is the terminal outcome delivered on the request's channel.
type Response struct {
	// Status classifies the outcome.
	Status Status
	// Device is the worker that handled the request (empty when rejected at
	// admission before routing).
	Device string
	// Decision is the engine step for served requests (zero otherwise —
	// shed and expired requests never execute).
	Decision core.Decision
	// Retried marks a failover re-execution on the local fallback target.
	Retried bool
	// Outage marks a simulated radio outage absorbed by the sim's local
	// fallback during execution.
	Outage bool
	// OffloadRetries counts the deadline-budgeted offload retries this
	// request ran after an outage; RetryRecovered marks that one of them
	// reached the remote target cleanly.
	OffloadRetries int
	RetryRecovered bool
	// Hedged marks that a local hedge leg raced the remote answer;
	// HedgeWon marks that the hedge leg finished first.
	Hedged   bool
	HedgeWon bool
	// Degraded marks that the request was served while at least one of its
	// worker's circuit breakers was open (remote targets masked).
	Degraded bool
	// Err carries the rejection or execution error (nil for clean serves).
	Err error
	// SubmittedAt / DoneAt bracket the request's life in the gateway.
	SubmittedAt time.Time
	DoneAt      time.Time
	// WaitS is the queue wait in gateway wall-clock seconds.
	WaitS float64
	// VWaitS is the virtual queue wait — the serving lane's clock minus the
	// request's ArrivalS at execution start, floored at zero. Always zero
	// for unstamped requests and for requests terminated before execution.
	VWaitS float64
}

// ShedPolicy selects which request a full queue sacrifices.
type ShedPolicy int

// Shed policies.
const (
	// ShedNewest rejects the arriving request (default): queued work is
	// older and closer to its deadline, so it keeps its slot.
	ShedNewest ShedPolicy = iota
	// ShedOldest evicts the oldest queued request to admit the new one:
	// under overload the freshest request has the best chance of meeting
	// its deadline.
	ShedOldest
)

// String returns the policy name.
func (p ShedPolicy) String() string {
	if p == ShedOldest {
		return "oldest"
	}
	return "newest"
}

// Config tunes a Gateway.
type Config struct {
	// Name labels the gateway in multi-shard deployments: traces record it
	// as the serving shard, and the routing tier's admin endpoint keys
	// per-shard documents by it. Empty is fine for a standalone gateway.
	Name string
	// QueueDepth bounds each worker's queue (default 64).
	QueueDepth int
	// Shed selects the admission-control victim on a full queue.
	Shed ShedPolicy
	// FailoverLocal re-executes a QoS-missed decision on the worker's local
	// fallback target (CPU at top frequency, FP32 — the same fallback the
	// sim's outage machinery uses). The retry is an operator action outside
	// the learning loop: the engine already staged its reward for the
	// original decision, so the Q-table still learns that the remote choice
	// missed.
	FailoverLocal bool
	// Checkpoints, when non-nil, connects the gateway to the policy plane
	// (it replaces the old ad-hoc Snapshot flush callback). New warm-starts
	// every worker from its device's latest valid checkpoint — falling back
	// to the fleet's merged policy for the engine's config hash — and
	// Shutdown persists each worker's final table exactly once after the
	// queues drain. StartPolicySync adds the periodic checkpoint/merge loop
	// on top.
	Checkpoints policy.Sink
	// PolicySync tunes the policy plane's retry/backoff and the
	// StartPolicySync interval (zero values mean policy defaults).
	PolicySync policy.SyncConfig
	// Clock overrides the gateway's time source (tests; default time.Now).
	Clock func() time.Time
	// Resilience tunes the resilient offload path: circuit breakers over
	// remote sites, deadline-budgeted offload retries and hedged offloads.
	// The zero value disables it.
	Resilience ResilienceConfig
	// Faults, when non-nil, is the scripted fault injector: New installs it
	// on every backend world that has none, and each worker drills the
	// injector's crash/corruption events for its device. The injector's
	// window faults (outages, ramps, spikes, throttles) act inside the sim.
	Faults *fault.Injector
	// Trace, when non-nil, receives one decision record per served request
	// — the per-request decision log the replay tests compare.
	Trace *trace.Writer
	// Tracer, when non-nil, switches on the causal tracing plane: requests
	// not already carrying a trace handle get one at submit, and served
	// requests accumulate a span tree (queue, decide with decision
	// provenance, execute, retry, hedge, failover). The tracer owns its own
	// RNG root, so enabling it never perturbs the engines' deterministic
	// streams.
	Tracer *tracez.Tracer
	// Recorder, when non-nil, is the incident flight recorder: circuit
	// breaker transitions are noted into its event ring (the supervision and
	// planning tiers add their own events at higher layers).
	Recorder *tracez.FlightRecorder
}

// Backend pairs a device name with its (typically warm-started) engine.
type Backend struct {
	Device string
	Engine *core.Engine
}

func (c Config) queueDepth() int {
	if c.QueueDepth == 0 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) validate() error {
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: negative queue depth %d", c.QueueDepth)
	}
	if c.Shed != ShedNewest && c.Shed != ShedOldest {
		return fmt.Errorf("serve: unknown shed policy %d", c.Shed)
	}
	return nil
}
