package serve

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/obs"
	"autoscale/internal/soc"
	"autoscale/internal/trace"
	"autoscale/internal/tracez"
)

// TestPhaseSumInvariant pins the phase-span accounting contract: for every
// served request without hedging or local failover, the virtual-clock legs in
// the trace (execute + retry) reconstruct the recorded end-to-end latency
// exactly, and the wall-clock legs (queue, decide) never leak into the trace
// — they would break byte-identical replay.
func TestPhaseSumInvariant(t *testing.T) {
	const seed = 47
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.RL.Epsilon = 0.5 // keep offloads flowing into the outage window

	e := testEngine(t, soc.Mi8Pro(), seed, cfg)
	e.World.Faults = fault.New(&fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0.1, EndS: 2.0},
		{Kind: fault.KindOutage, Site: fault.SiteConnected, StartS: 0.1, EndS: 2.0},
	}}, exec.NewRoot(seed).Child("faults"))

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	g, err := New([]Backend{{Device: "Mi8Pro", Engine: e}}, Config{
		Trace: tw,
		// Retries on, hedge and failover off: every served request must then
		// decompose exactly into execute + retry on the virtual clock.
		Resilience: ResilienceConfig{Enabled: true, MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 400; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	recs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 400 {
		t.Fatalf("trace has %d records", len(recs))
	}

	withRetry := 0
	for i, rec := range recs {
		p := rec.Phases
		if p == nil {
			t.Fatalf("record %d has no phases", i)
		}
		for _, wallOnly := range []string{obs.PhaseQueue, obs.PhaseDecide} {
			if _, ok := p[wallOnly]; ok {
				t.Fatalf("record %d leaked wall-clock phase %q into the trace", i, wallOnly)
			}
		}
		if _, ok := p[obs.PhaseHedge]; ok {
			t.Fatalf("record %d has a hedge leg with hedging disabled", i)
		}
		if _, ok := p[obs.PhaseFailover]; ok {
			t.Fatalf("record %d has a failover leg with failover disabled", i)
		}
		if p[obs.PhaseExecute] <= 0 {
			t.Fatalf("record %d: execute leg %v", i, p[obs.PhaseExecute])
		}
		if p[obs.PhaseRetry] > 0 {
			withRetry++
			if rec.Retries == 0 {
				t.Fatalf("record %d has a retry leg but zero retries", i)
			}
		}
		sum := p[obs.PhaseExecute] + p[obs.PhaseRetry]
		if math.Abs(sum-rec.LatencyS) > 1e-9 {
			t.Fatalf("record %d: phases sum to %.12f but latency is %.12f (phases %v)",
				i, sum, rec.LatencyS, p)
		}
	}
	if withRetry == 0 {
		t.Fatal("storm produced no retry legs; the invariant was tested vacuously")
	}

	// The registry sees every phase, including the wall-clock-only ones.
	snap := g.Snapshot()
	for _, phase := range []string{obs.PhaseQueue, obs.PhaseDecide, obs.PhaseExecute} {
		hs, ok := snap.Phases[phase]
		if !ok || hs.Count != 400 {
			t.Fatalf("registry phase %q: ok=%v count=%d, want 400", phase, ok, hs.Count)
		}
	}
	if hs, ok := snap.Phases[obs.PhaseRetry]; !ok || hs.Count != int64(withRetry) {
		t.Fatalf("registry retry phase: ok=%v count=%d, want %d", ok, hs.Count, withRetry)
	}
}

// TestSpansReconcileWithPhases pins the causal-trace accounting contract:
// for non-hedged serves, the execution-leg spans in a kept causal trace
// (execute, retry, failover) carry exactly the durations the request-trace
// record's Phases map reports — both are emitted from the same PhaseTotals,
// so any drift means the span tree and the audit trail disagree about the
// same request. Decide spans must carry full provenance.
func TestSpansReconcileWithPhases(t *testing.T) {
	const seed = 47
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.RL.Epsilon = 0.5

	e := testEngine(t, soc.Mi8Pro(), seed, cfg)
	e.World.Faults = fault.New(&fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0.1, EndS: 2.0},
		{Kind: fault.KindOutage, Site: fault.SiteConnected, StartS: 0.1, EndS: 2.0},
	}}, exec.NewRoot(seed).Child("faults"))

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	tr := tracez.New(tracez.Config{SampleRate: 1, Ring: 512, Seed: seed})
	g, err := New([]Backend{{Device: "Mi8Pro", Engine: e}}, Config{
		Trace:      tw,
		Tracer:     tr,
		Resilience: ResilienceConfig{Enabled: true, MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 300; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	recs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[uint64]trace.Record, len(recs))
	for _, rec := range recs {
		if rec.TraceID != 0 {
			byID[rec.TraceID] = rec
		}
	}
	if len(byID) != len(recs) {
		t.Fatalf("%d of %d trace records carry a trace ID, want all (sample rate 1)",
			len(byID), len(recs))
	}

	kept := tr.Kept()
	if len(kept) == 0 {
		t.Fatal("tracer kept no traces at sample rate 1")
	}
	reconciled, withRetry := 0, 0
	for _, ct := range kept {
		rec, ok := byID[ct.ID]
		if !ok {
			t.Fatalf("kept trace %d has no matching trace record", ct.ID)
		}
		spans := make(map[string]float64, len(ct.Spans))
		for _, sp := range ct.Spans {
			spans[sp.Name] += sp.DurS
		}
		for _, leg := range []string{obs.PhaseExecute, obs.PhaseRetry, obs.PhaseFailover} {
			if math.Abs(spans[leg]-rec.Phases[leg]) > 1e-12 {
				t.Fatalf("trace %d: span %q = %.12f but phases say %.12f",
					ct.ID, leg, spans[leg], rec.Phases[leg])
			}
		}
		if spans[obs.PhaseQueue] <= 0 || spans[obs.PhaseDecide] <= 0 {
			t.Fatalf("trace %d missing queue/decide spans: %v", ct.ID, spans)
		}
		if !ct.HasProv {
			t.Fatalf("trace %d served without provenance", ct.ID)
		}
		if len(ct.Prov.Q) == 0 || len(ct.Prov.Mask) == 0 || ct.Prov.Action == "" {
			t.Fatalf("trace %d provenance incomplete: %+v", ct.ID, ct.Prov)
		}
		if spans[obs.PhaseRetry] > 0 {
			withRetry++
		}
		reconciled++
	}
	if withRetry == 0 {
		t.Fatalf("none of the %d reconciled traces had a retry leg; invariant tested vacuously", reconciled)
	}
}

// TestShutdownSurfacesTraceError pins satellite (b): a trace writer whose
// sink failed must fail Gateway.Shutdown instead of silently dropping the
// audit trail.
func TestShutdownSurfacesTraceError(t *testing.T) {
	sink := &failingSink{err: errors.New("disk full")}
	tw := trace.NewWriter(sink)
	g := testGateway(t, Config{Trace: tw})
	m := dnn.MustByName("MobileNet v3")
	// Enough records to overflow the bufio buffer so the sink failure is hit
	// during serving; the sticky error must still surface at Shutdown.
	for i := 0; i < 500; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	err := g.Shutdown(context.Background())
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Shutdown = %v, want the trace sink failure", err)
	}
}

// failingSink fails every write.
type failingSink struct{ err error }

func (s *failingSink) Write(p []byte) (int, error) { return 0, s.err }
