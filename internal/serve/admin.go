package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/obs"
	"autoscale/internal/serve/metrics"
	"autoscale/internal/tracez"
)

// Source is what the admin endpoint observes: anything that can produce a
// metrics snapshot, per-device learning health, and a liveness bit. A single
// Gateway satisfies it directly; the routing tier satisfies it by merging its
// shards, which is why the admin server no longer assumes one registry.
type Source interface {
	Snapshot() metrics.Snapshot
	Health() map[string]core.Health
	Closed() bool
}

// ShardStatus is one shard's row in the /shards document.
type ShardStatus struct {
	// Name is the shard label (Config.Name).
	Name string `json:"name"`
	// State is the lifecycle state: "healthy", "cordoned", "draining",
	// "drained" or "dead".
	State string `json:"state"`
	// Incarnation counts gateway rebuilds (supervisor revives); 0 for the
	// original gateway.
	Incarnation int `json:"incarnation,omitempty"`
	// Devices are the device lanes currently homed on the shard, sorted.
	Devices []string `json:"devices"`
	// QueueDepth is the shard's aggregate queued-request gauge.
	QueueDepth int64 `json:"queue_depth"`
	// Served / Shed / Failed are the shard's terminal-outcome counters.
	Served int64 `json:"served"`
	Shed   int64 `json:"shed"`
	Failed int64 `json:"failed"`
	// VirtualS is the shard's virtual clock (max over its engines).
	VirtualS float64 `json:"virtual_s"`
}

// TenantQueueStatus is one tenant's row in the /shards document: the
// routing-tier fairness queue for that tenant.
type TenantQueueStatus struct {
	// Tenant is the fairness class name.
	Tenant string `json:"tenant"`
	// Weight is the tenant's configured DRR weight.
	Weight int `json:"weight"`
	// Queued is the number of requests waiting in the tenant's queue.
	Queued int `json:"queued"`
	// Admitted / Shed count the tenant's requests past admission and
	// sacrificed at admission.
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	// Depth is the queue's effective bound (the router default until a
	// planner overrides it per tenant).
	Depth int `json:"depth,omitempty"`
	// MaxVWaitS, when positive, is the admission gate: arrival-stamped
	// requests are shed while the estimated backlog exceeds it.
	MaxVWaitS float64 `json:"max_vwait_s,omitempty"`
}

// ShardSource is the optional Source extension that lights up the /shards
// handler: per-shard lifecycle plus per-tenant fairness queues. The routing
// tier implements it; a standalone gateway does not, and /shards answers 404.
type ShardSource interface {
	ShardStatuses() []ShardStatus
	TenantQueues() []TenantQueueStatus
}

// PromSource is the optional Source extension that overrides the default
// Prometheus rendering — the routing tier appends its own router series
// after the merged gateway body.
type PromSource interface {
	PromText() []byte
}

// PlanSource is the optional Source extension that lights up the /plan
// handler: the capacity planner's current decision and per-class SLO
// attainment, already rendered to JSON. Bytes rather than a struct keep the
// serving layer free of a dependency on the planning layer above it.
type PlanSource interface {
	PlanJSON() ([]byte, error)
}

// SuperSource is the optional Source extension that lights up the
// /supervisor handler: the supervision tier's per-shard health scores,
// remediation state and budgets, already rendered to JSON (bytes for the
// same layering reason as PlanSource).
type SuperSource interface {
	SupervisorJSON() ([]byte, error)
}

// TraceSource is the optional Source extension that lights up the /traces
// handlers: the causal tracer holding the kept span trees. A gateway or
// routing tier with tracing configured implements it (returning nil when the
// tracer is off answers 404, same as not implementing it).
type TraceSource interface {
	Tracer() *tracez.Tracer
}

// HealthzSyncFailThreshold is the consecutive policy-sync failure count at
// which /healthz flips to 503: one or two failed passes are retried noise,
// a persistent streak means the fleet's learning plane is down and the node
// should be pulled from rotation.
const HealthzSyncFailThreshold = 3

// Admin is the serving layer's opt-in observability endpoint: a small HTTP
// server exposing the source's metrics as Prometheus text (/metrics), the
// full snapshot plus per-device learning health as JSON (/snapshot.json), a
// liveness probe (/healthz), breaker states (/breakers), per-shard routing
// state when the source is a routing tier (/shards) and the standard
// net/http/pprof handlers (/debug/pprof/). Everything it serves is read-side
// observation — handlers never draw random numbers, advance virtual clocks,
// or mutate the source — so scraping a deterministic run cannot perturb it.
type Admin struct {
	src Source
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin binds the admin server for one gateway — the pre-routing-tier
// entry point, kept for callers that serve a single shard.
func ServeAdmin(g *Gateway, addr string) (*Admin, error) {
	if g == nil {
		return nil, fmt.Errorf("serve: admin needs a gateway")
	}
	return ServeAdminSource(g, addr)
}

// ServeAdminSource binds the admin server on addr (e.g. ":9090" or
// "127.0.0.1:0") for any Source and serves it on a background goroutine until
// Close.
func ServeAdminSource(src Source, addr string) (*Admin, error) {
	if src == nil {
		return nil, fmt.Errorf("serve: admin needs a source")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: admin listen %s: %w", addr, err)
	}
	a := &Admin{src: src, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/snapshot.json", a.handleSnapshot)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/breakers", a.handleBreakers)
	mux.HandleFunc("/shards", a.handleShards)
	mux.HandleFunc("/plan", a.handlePlan)
	mux.HandleFunc("/supervisor", a.handleSupervisor)
	mux.HandleFunc("/traces", a.handleTraces)
	mux.HandleFunc("/traces/", a.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return a, nil
}

// Addr returns the bound address (resolving ":0" to the chosen port).
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server gracefully: the listener closes immediately
// (no new connections) and in-flight handlers get up to a second to finish
// writing their responses before the server is torn down. The old behavior —
// http.Server.Close alone — could sever a /metrics or /traces response
// mid-body and leave handler goroutines running behind a "closed" admin.
func (a *Admin) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	if err != nil {
		// Drain timed out (a wedged handler): fall back to the hard close so
		// Close never leaks the server, and report the drain failure.
		if cerr := a.srv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if ps, ok := a.src.(PromSource); ok {
		body = ps.PromText()
	} else {
		body = PromText(a.src.Snapshot(), a.src.Health())
	}
	// Trace-plane series ride after the source body; they live in their own
	// autoscale_trace_* namespace, so the HELP/TYPE-once invariant holds for
	// the concatenation. Appending here (not in each PromText) keeps every
	// source's renderer ignorant of the tracer.
	if tr := a.tracer(); tr != nil {
		var p obs.Prom
		tr.AppendProm(&p)
		body = append(append([]byte(nil), body...), p.Bytes()...)
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(body) //nolint:errcheck
}

// tracer resolves the source's causal tracer, nil when the source has none
// (or tracing is off).
func (a *Admin) tracer() *tracez.Tracer {
	if ts, ok := a.src.(TraceSource); ok {
		return ts.Tracer()
	}
	return nil
}

// handleTraces serves the /traces index (sampling counters plus one row per
// kept trace). ?format=chrome exports the whole ring as one Chrome
// trace-event document for chrome://tracing; ?format=bin as the compact
// binary dump.
func (a *Admin) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := a.tracer()
	if tr == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	a.writeTraceDoc(w, tr, 0, r.URL.Query().Get("format"))
}

// handleTrace serves one kept trace by ID (/traces/{id}): the full span tree
// with decision provenance as JSON by default, ?format=chrome / ?format=bin
// for the other codecs.
func (a *Admin) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := a.tracer()
	if tr == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	id, err := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/traces/"), 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	a.writeTraceDoc(w, tr, id, r.URL.Query().Get("format"))
}

// writeTraceDoc renders one trace (or, with id 0, the whole ring) in the
// requested format. The empty format means the natural default: the index
// document for the ring, raw JSON for a single trace.
func (a *Admin) writeTraceDoc(w http.ResponseWriter, tr *tracez.Tracer, id uint64, format string) {
	var b []byte
	var err error
	ct := "application/json"
	switch format {
	case "":
		if id == 0 {
			b, err = tr.IndexJSON()
		} else {
			b, err = tr.TraceJSON(id)
		}
	case "json":
		if id == 0 {
			b, err = tr.IndexJSON()
		} else {
			b, err = tr.TraceJSON(id)
		}
	case "chrome":
		b, err = tr.ChromeJSON(id)
	case "bin":
		b, err = tr.Binary(id)
		ct = "application/octet-stream"
	default:
		http.Error(w, "unknown format "+format, http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Write(b) //nolint:errcheck
}

// adminSnapshot is the /snapshot.json document.
type adminSnapshot struct {
	Metrics metrics.Snapshot       `json:"metrics"`
	Health  map[string]core.Health `json:"health"`
}

func (a *Admin) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(adminSnapshot{Metrics: a.src.Snapshot(), Health: a.src.Health()}) //nolint:errcheck
}

func (a *Admin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if a.src.Closed() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	if s := a.src.Snapshot(); s.SyncConsecutiveFailures >= HealthzSyncFailThreshold {
		http.Error(w, fmt.Sprintf("policy sync failing (%d consecutive): %s",
			s.SyncConsecutiveFailures, s.SyncLastError), http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n")) //nolint:errcheck
}

func (a *Admin) handleBreakers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(a.src.Snapshot().ByBreaker) //nolint:errcheck
}

// shardsDoc is the /shards document: the routing tier's lifecycle and
// fairness view.
type shardsDoc struct {
	Shards  []ShardStatus       `json:"shards"`
	Tenants []TenantQueueStatus `json:"tenants"`
}

func (a *Admin) handleShards(w http.ResponseWriter, r *http.Request) {
	ss, ok := a.src.(ShardSource)
	if !ok {
		http.Error(w, "not a sharded source", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(shardsDoc{Shards: ss.ShardStatuses(), Tenants: ss.TenantQueues()}) //nolint:errcheck
}

func (a *Admin) handleSupervisor(w http.ResponseWriter, r *http.Request) {
	ss, ok := a.src.(SuperSource)
	if !ok {
		http.Error(w, "not a supervised source", http.StatusNotFound)
		return
	}
	b, err := ss.SupervisorJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b) //nolint:errcheck
}

func (a *Admin) handlePlan(w http.ResponseWriter, r *http.Request) {
	ps, ok := a.src.(PlanSource)
	if !ok {
		http.Error(w, "not a planned source", http.StatusNotFound)
		return
	}
	b, err := ps.PlanJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b) //nolint:errcheck
}

// breakerStateValue encodes a breaker state for the gauge: closed is healthy
// (0), half-open probing (1), open tripped (2).
func breakerStateValue(state string) float64 {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return 0
}

// PromText renders a metrics snapshot and per-device learning health as one
// Prometheus text-exposition body. The output is deterministic for a given
// input: map-keyed series are emitted in sorted key order, phase histograms
// in the obs package's canonical phase order.
func PromText(s metrics.Snapshot, health map[string]core.Health) []byte {
	var p obs.Prom

	// Request flow.
	p.Counter("autoscale_requests_submitted_total", "Requests entering admission control.", float64(s.Submitted))
	p.Counter("autoscale_requests_total", "Requests by terminal outcome.", float64(s.Served), "outcome", "served")
	p.Counter("autoscale_requests_total", "Requests by terminal outcome.", float64(s.Shed), "outcome", "shed")
	p.Counter("autoscale_requests_total", "Requests by terminal outcome.", float64(s.Expired), "outcome", "expired")
	p.Counter("autoscale_requests_total", "Requests by terminal outcome.", float64(s.Failed), "outcome", "failed")
	p.Counter("autoscale_qos_violations_total", "Served requests over their latency target.", float64(s.QoSViolations))
	p.Gauge("autoscale_queue_depth", "Aggregate queued requests right now.", float64(s.QueueDepth))
	p.Gauge("autoscale_queue_depth_max", "High watermark of the aggregate queue depth.", float64(s.QueueMaxDepth))

	// Resilience machinery.
	p.Counter("autoscale_outages_total", "Simulated radio outages absorbed by the local fallback.", float64(s.Outages))
	p.Counter("autoscale_failover_retries_total", "QoS-missed requests re-executed on the local fallback.", float64(s.Retried))
	p.Counter("autoscale_offload_retries_total", "Deadline-budgeted offload retries launched.", float64(s.OffloadRetries))
	p.Counter("autoscale_offload_retries_recovered_total", "Offload retries that reached the remote cleanly.", float64(s.RetriesRecovered))
	p.Counter("autoscale_offload_retries_abandoned_total", "Retries skipped for an unaffordable deadline budget.", float64(s.RetriesAbandoned))
	p.Counter("autoscale_hedges_total", "Hedged offloads launched against slow remotes.", float64(s.Hedges))
	p.Counter("autoscale_hedges_won_total", "Hedges whose local leg answered first.", float64(s.HedgesWon))
	p.Counter("autoscale_hedges_lost_total", "Hedges whose remote leg answered first.", float64(s.HedgesLost))
	p.Counter("autoscale_breaker_transitions_total", "Circuit-breaker transitions by destination state.", float64(s.BreakerOpens), "to", "open")
	p.Counter("autoscale_breaker_transitions_total", "Circuit-breaker transitions by destination state.", float64(s.BreakerHalfOpens), "to", "half-open")
	p.Counter("autoscale_breaker_transitions_total", "Circuit-breaker transitions by destination state.", float64(s.BreakerCloses), "to", "closed")
	p.Counter("autoscale_worker_crashes_total", "Scripted worker-crash drills fired.", float64(s.WorkerCrashes))
	p.Counter("autoscale_checkpoint_corruptions_total", "Scripted checkpoint-corruption drills fired.", float64(s.CorruptDrills))
	p.Counter("autoscale_degraded_seconds_total", "Seconds served with at least one breaker open.", s.DegradedSeconds)
	p.Counter("autoscale_wasted_joules_total", "Energy burned on failed or superseded offload attempts.", s.OutageWastedJ)

	// Policy-sync plane.
	p.Counter("autoscale_policy_sync_passes_total", "Completed policy-sync passes.", float64(s.SyncPasses))
	p.Counter("autoscale_policy_sync_failures_total", "Policy-sync passes reporting errors.", float64(s.SyncFailures))
	p.Gauge("autoscale_policy_sync_consecutive_failures", "Failed sync passes since the last clean one.", float64(s.SyncConsecutiveFailures))

	for _, label := range sortedKeys(s.ByBreaker) {
		p.Gauge("autoscale_breaker_state", "Breaker state: 0 closed, 1 half-open, 2 open.",
			breakerStateValue(s.ByBreaker[label]), "breaker", label)
	}
	for _, loc := range sortedKeys(s.ByTarget) {
		p.Counter("autoscale_executions_total", "Executions by location.", float64(s.ByTarget[loc]), "location", loc)
	}
	for _, dev := range sortedKeys(s.ByDevice) {
		p.Counter("autoscale_device_requests_total", "Executions by serving device.", float64(s.ByDevice[dev]), "device", dev)
	}

	// Distributions.
	p.Histogram("autoscale_request_latency_seconds", "End-to-end execution latency.", s.Latency)
	p.Histogram("autoscale_queue_wait_seconds", "Admission-to-pickup queue wait.", s.Wait)
	p.Histogram("autoscale_request_energy_joules", "Mobile-side energy per request.", s.Energy)
	if s.VWait.Count > 0 {
		p.Histogram("autoscale_virtual_wait_seconds", "Virtual queue wait (lane clock minus arrival stamp).", s.VWait)
	}
	for _, tenant := range sortedKeys(s.ByTenant) {
		p.Histogram("autoscale_tenant_response_seconds", "Virtual response time (vwait plus execution latency) per tenant.",
			s.ByTenant[tenant], "tenant", tenant)
	}
	for _, phase := range obs.Phases() {
		hs, ok := s.Phases[phase]
		if !ok {
			continue
		}
		p.Histogram("autoscale_phase_seconds", "Per-phase request time decomposition.", hs, "phase", phase)
	}

	// Learning health, one gauge set per device.
	for _, dev := range sortedKeys(health) {
		h := health[dev]
		frozen := 0.0
		if h.Frozen {
			frozen = 1
		}
		p.Gauge("autoscale_rl_epsilon", "Exploration probability.", h.Epsilon, "device", dev)
		p.Gauge("autoscale_rl_frozen", "1 when the agent is exploitation-only.", frozen, "device", dev)
		p.Gauge("autoscale_rl_states", "Materialized Q-table rows.", float64(h.States), "device", dev)
		p.Gauge("autoscale_rl_state_space_size", "Full discrete state-space size.", float64(h.StateSpaceSize), "device", dev)
		p.Gauge("autoscale_rl_coverage", "Fraction of the state space materialized.", h.Coverage, "device", dev)
		p.Gauge("autoscale_rl_visits", "Total action selections.", float64(h.TotalVisits), "device", dev)
		p.Gauge("autoscale_rl_visit_entropy", "Normalized entropy of state-visit counts.", h.VisitEntropy, "device", dev)
		p.Gauge("autoscale_rl_exploration_ratio", "Fraction of selections that explored.", h.ExplorationRatio, "device", dev)
		p.Gauge("autoscale_rl_td_error_ema", "Moving average of |TD error|.", h.TDErrorEMA, "device", dev)
		p.Gauge("autoscale_rl_mean_reward", "Mean reward over the recent window.", h.MeanReward, "device", dev)
		p.Gauge("autoscale_rl_virtual_seconds", "Engine virtual-clock reading.", h.VirtualS, "device", dev)
	}

	return p.Bytes()
}

// sortedKeys returns a map's keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
