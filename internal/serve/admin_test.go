package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"autoscale/internal/dnn"
	"autoscale/internal/obs"
	"autoscale/internal/tracez"
)

// adminGet fetches a path from the admin server.
func adminGet(t *testing.T, a *Admin, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + a.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestAdminEndpoints(t *testing.T) {
	g := testGateway(t, Config{})
	a, err := ServeAdmin(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 40; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// /healthz is alive before shutdown.
	code, _, body := adminGet(t, a, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /metrics serves the exposition format with the full series set.
	code, ctype, body := adminGet(t, a, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ctype != obs.PromContentType {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"autoscale_requests_submitted_total 40",
		`autoscale_requests_total{outcome="served"} 40`,
		"# TYPE autoscale_request_latency_seconds histogram",
		"autoscale_request_latency_seconds_count 40",
		"# TYPE autoscale_queue_wait_seconds histogram",
		"# TYPE autoscale_request_energy_joules histogram",
		`autoscale_phase_seconds_count{phase="execute"} 40`,
		`autoscale_phase_seconds_count{phase="decide"} 40`,
		`autoscale_phase_seconds_count{phase="queue"} 40`,
		`autoscale_rl_epsilon{device="GalaxyS10e"} 0.1`,
		`autoscale_rl_epsilon{device="Mi8Pro"} 0.1`,
		`autoscale_rl_state_space_size{device="Mi8Pro"}`,
		`autoscale_rl_coverage{device="Mi8Pro"}`,
		`autoscale_rl_td_error_ema{device="Mi8Pro"}`,
		`autoscale_rl_visit_entropy{device="Mi8Pro"}`,
		`autoscale_rl_mean_reward{device="Mi8Pro"}`,
		`autoscale_executions_total{location=`,
		`autoscale_device_requests_total{device="Mi8Pro"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	assertHistogramsWellFormed(t, body)

	// A second scrape with no traffic in between is byte-identical — the
	// exposition is deterministic and scraping mutates nothing.
	_, _, body2 := adminGet(t, a, "/metrics")
	if body != body2 {
		t.Error("idle rescrape changed the exposition body")
	}

	// /snapshot.json carries metrics and per-device health.
	code, ctype, body = adminGet(t, a, "/snapshot.json")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/snapshot.json = %d %q", code, ctype)
	}
	var snap struct {
		Metrics struct{ Served int64 }
		Health  map[string]struct {
			Algorithm string  `json:"algorithm"`
			Coverage  float64 `json:"coverage"`
		}
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot.json decode: %v", err)
	}
	if snap.Metrics.Served != 40 {
		t.Fatalf("snapshot served = %d", snap.Metrics.Served)
	}
	if h, ok := snap.Health["Mi8Pro"]; !ok || h.Algorithm != "Q-learning" || h.Coverage <= 0 {
		t.Fatalf("snapshot health: %+v", snap.Health)
	}

	// /breakers decodes as a JSON object.
	code, _, body = adminGet(t, a, "/breakers")
	if code != http.StatusOK {
		t.Fatalf("/breakers = %d", code)
	}
	var breakers map[string]string
	if err := json.Unmarshal([]byte(body), &breakers); err != nil {
		t.Fatalf("/breakers decode: %v", err)
	}

	// pprof is mounted.
	code, _, _ = adminGet(t, a, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	// After Shutdown the probe flips to 503 while /metrics stays readable
	// for a final scrape.
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, _, _ = adminGet(t, a, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after shutdown = %d", code)
	}
	code, _, _ = adminGet(t, a, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics after shutdown = %d", code)
	}
}

// assertHistogramsWellFormed checks every histogram series in an exposition
// body: cumulative buckets are non-decreasing per series and the +Inf bucket
// equals the series count.
func assertHistogramsWellFormed(t *testing.T, body string) {
	t.Helper()
	lastCum := map[string]float64{}  // series key -> last cumulative value
	infCount := map[string]float64{} // series key -> +Inf bucket value
	counts := map[string]float64{}   // series key -> _count value
	for _, ln := range strings.Split(body, "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		sp := strings.LastIndexByte(ln, ' ')
		name, valStr := ln[:sp], ln[sp+1:]
		if valStr == "+Inf" {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", ln, err)
		}
		switch {
		case strings.Contains(name, "_bucket{"):
			key := stripLabel(name, "le")
			if v < lastCum[key] {
				t.Fatalf("cumulative decreased: %q after %v", ln, lastCum[key])
			}
			lastCum[key] = v
			if strings.Contains(name, `le="+Inf"`) {
				infCount[key] = v
			}
		case strings.Contains(name, "_count"):
			counts[strings.Replace(name, "_count", "_bucket", 1)] = v
		}
	}
	if len(infCount) == 0 {
		t.Fatal("no histogram buckets found")
	}
	for key, inf := range infCount {
		if want, ok := counts[key]; ok && inf != want {
			t.Fatalf("series %s: +Inf bucket %v != count %v", key, inf, want)
		}
	}
}

// stripLabel removes one label (e.g. le) from a sample name so bucket lines
// of one series share a key.
func stripLabel(name, label string) string {
	i := strings.Index(name, label+`="`)
	if i < 0 {
		return name
	}
	j := strings.Index(name[i+len(label)+2:], `"`)
	if j < 0 {
		return name
	}
	out := name[:i] + name[i+len(label)+2+j+1:]
	return strings.NewReplacer(`{,`, `{`, `,}`, `}`, `,,`, `,`).Replace(out)
}

func TestServeAdminValidation(t *testing.T) {
	if _, err := ServeAdmin(nil, "127.0.0.1:0"); err == nil {
		t.Fatal("nil gateway accepted")
	}
	g := testGateway(t, Config{})
	defer g.Shutdown(context.Background()) //nolint:errcheck
	if _, err := ServeAdmin(g, "256.0.0.1:bad"); err == nil {
		t.Fatal("bad address accepted")
	}
	// Two admins on distinct ports can serve one gateway.
	a1, err := ServeAdmin(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := ServeAdmin(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a1.Addr() == a2.Addr() {
		t.Fatal("two admins share an address")
	}
}

func TestPromTextDeterministic(t *testing.T) {
	g := testGateway(t, Config{})
	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 10; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Shutdown(context.Background()) //nolint:errcheck
	s, h := g.Snapshot(), g.Health()
	if !bytes.Equal(PromText(s, h), PromText(s, h)) {
		t.Fatal("PromText is not deterministic for a fixed snapshot")
	}
	// Sanity: the body parses line by line as "name value" or comments.
	for _, ln := range strings.Split(strings.TrimSuffix(string(PromText(s, h)), "\n"), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if sp := strings.LastIndexByte(ln, ' '); sp <= 0 {
			t.Fatalf("malformed sample line %q", ln)
		}
	}
}

// TestAdminCloseDrains pins the admin-shutdown satellite: Close performs a
// context-bounded graceful drain, the listener stops accepting, and the
// server's goroutines are released rather than leaked.
func TestAdminCloseDrains(t *testing.T) {
	g := testGateway(t, Config{})
	defer g.Shutdown(context.Background()) //nolint:errcheck

	before := runtime.NumGoroutine()
	a, err := ServeAdmin(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	resp, err := client.Get("http://" + a.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	client.CloseIdleConnections()
	if _, err := client.Get("http://" + a.Addr() + "/healthz"); err == nil {
		t.Fatal("admin accepted a connection after Close")
	}
	client.CloseIdleConnections()

	// The serve loop and any idle-connection goroutines must wind down;
	// allow scheduler slack but fail on a persistent leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdminTraceEndpoints covers the /traces surface: the index, single-trace
// JSON, chrome and binary formats, bad-id handling, and the autoscale_trace_*
// series appearing in /metrics exactly once.
func TestAdminTraceEndpoints(t *testing.T) {
	tr := tracez.New(tracez.Config{SampleRate: 1, Ring: 64, Seed: 3})
	g := testGateway(t, Config{Tracer: tr})
	defer g.Shutdown(context.Background()) //nolint:errcheck
	a, err := ServeAdmin(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 20; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Index: every request kept at sample rate 1, with provenance.
	code, ctype, body := adminGet(t, a, "/traces")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/traces = %d %q", code, ctype)
	}
	var idx tracez.Index
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("/traces decode: %v", err)
	}
	if idx.Stats.Kept != 20 || len(idx.Traces) != 20 {
		t.Fatalf("index kept=%d rows=%d, want 20", idx.Stats.Kept, len(idx.Traces))
	}
	id := idx.Traces[0].ID
	if !idx.Traces[0].HasProv {
		t.Fatalf("kept trace %d has no provenance", id)
	}

	// Single trace as raw JSON exposes the decide provenance.
	code, _, body = adminGet(t, a, "/traces/"+strconv.FormatUint(id, 10))
	if code != http.StatusOK {
		t.Fatalf("/traces/%d = %d", id, code)
	}
	var one tracez.Trace
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if one.ID != id || len(one.Prov.Q) == 0 || len(one.Spans) == 0 {
		t.Fatalf("trace %d: spans=%d qlen=%d", one.ID, len(one.Spans), len(one.Prov.Q))
	}

	// Chrome trace-event export carries the provenance in the decide args.
	code, _, body = adminGet(t, a, "/traces/"+strconv.FormatUint(id, 10)+"?format=chrome")
	if code != http.StatusOK || !strings.Contains(body, "traceEvents") ||
		!strings.Contains(body, `"state_idx"`) {
		t.Fatalf("chrome export = %d, body %.120s", code, body)
	}

	// Binary export round-trips through the decoder.
	code, ctype, body = adminGet(t, a, "/traces?format=bin")
	if code != http.StatusOK || ctype != "application/octet-stream" {
		t.Fatalf("binary export = %d %q", code, ctype)
	}
	decoded, err := tracez.DecodeBinary([]byte(body))
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if len(decoded) != 20 {
		t.Fatalf("binary export decoded %d traces, want 20", len(decoded))
	}

	// Error paths: malformed id, id 0, unknown id, unknown format.
	for path, want := range map[string]int{
		"/traces/abc":        http.StatusBadRequest,
		"/traces/0":          http.StatusBadRequest,
		"/traces/999999":     http.StatusNotFound,
		"/traces?format=wat": http.StatusBadRequest,
		"/traces/" + strconv.FormatUint(id, 10) + "?format=wat": http.StatusBadRequest,
	} {
		if code, _, _ := adminGet(t, a, path); code != want {
			t.Errorf("%s = %d, want %d", path, code, want)
		}
	}

	// /metrics gains the trace series, HELP/TYPE exactly once.
	_, _, body = adminGet(t, a, "/metrics")
	for _, want := range []string{
		"autoscale_trace_started_total 20",
		"autoscale_trace_kept_total 20",
		"# TYPE autoscale_trace_started_total counter",
		"autoscale_trace_ring_occupancy 20",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if n := strings.Count(body, "# TYPE autoscale_trace_started_total"); n != 1 {
		t.Errorf("trace series TYPE line appears %d times, want once", n)
	}
}

// TestAdminTracesWithoutTracer: a gateway with no tracer 404s the trace
// endpoints instead of panicking or returning empty documents.
func TestAdminTracesWithoutTracer(t *testing.T) {
	g := testGateway(t, Config{})
	defer g.Shutdown(context.Background()) //nolint:errcheck
	a, err := ServeAdmin(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, path := range []string{"/traces", "/traces/1"} {
		if code, _, _ := adminGet(t, a, path); code != http.StatusNotFound {
			t.Errorf("%s without tracer = %d, want 404", path, code)
		}
	}
}

func TestGatewayHealthPerDevice(t *testing.T) {
	g := testGateway(t, Config{})
	defer g.Shutdown(context.Background()) //nolint:errcheck
	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 20; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds(), Device: "Mi8Pro"}); err != nil {
			t.Fatal(err)
		}
	}
	h := g.Health()
	if len(h) != 2 {
		t.Fatalf("health for %d devices", len(h))
	}
	if h["Mi8Pro"].Selections != 20 {
		t.Fatalf("Mi8Pro selections = %d", h["Mi8Pro"].Selections)
	}
	if h["GalaxyS10e"].Selections != 0 {
		t.Fatalf("idle device selections = %d", h["GalaxyS10e"].Selections)
	}
	if h["Mi8Pro"].VirtualS <= 0 {
		t.Fatal("served device's virtual clock did not advance")
	}
}
