package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/policy"
	"autoscale/internal/serve/metrics"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func testEngine(t testing.TB, dev *soc.Device, seed int64, cfg core.Config) *core.Engine {
	t.Helper()
	w := sim.NewWorld(dev, seed)
	e, err := core.NewEngine(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testGateway(t testing.TB, cfg Config) *Gateway {
	t.Helper()
	g, err := New([]Backend{
		{Device: "Mi8Pro", Engine: testEngine(t, soc.Mi8Pro(), 1, core.DefaultConfig())},
		{Device: "GalaxyS10e", Engine: testEngine(t, soc.GalaxyS10e(), 2, core.DefaultConfig())},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func conds() sim.Conditions { return sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55} }

// TestGatewayStress floods two devices from 16 concurrent clients and checks
// the accounting invariants: no request is lost (served + shed + expired ==
// submitted), rejected requests never execute, and the metrics snapshot
// agrees with the per-request responses.
func TestGatewayStress(t *testing.T) {
	const clients, perClient = 16, 50
	g := testGateway(t, Config{QueueDepth: 1})
	m := dnn.MustByName("MobileNet v3")
	devices := g.Devices()

	var mu sync.Mutex
	var chans []<-chan Response
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]<-chan Response, 0, perClient)
			for i := 0; i < perClient; i++ {
				req := Request{Model: m, Conditions: conds(), Device: devices[(c+i)%len(devices)]}
				if i%7 == 3 {
					// Dead on arrival: must expire, never execute.
					req.Deadline = time.Now().Add(-time.Second)
				}
				ch, err := g.Submit(req)
				if err != nil {
					t.Errorf("client %d: submit: %v", c, err)
					return
				}
				local = append(local, ch)
			}
			mu.Lock()
			chans = append(chans, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	tally := map[Status]int64{}
	for _, ch := range chans {
		select {
		case r := <-ch:
			tally[r.Status]++
			if r.Status != StatusServed {
				// Shed and expired requests must never have executed.
				if r.Decision.Measurement.LatencyS != 0 || r.Decision.Measurement.EnergyJ != 0 {
					t.Fatalf("%s request carries an execution: %+v", r.Status, r.Decision)
				}
				if r.Err == nil {
					t.Fatalf("%s request without a cause", r.Status)
				}
			}
		default:
			t.Fatal("request lost: no response after drain")
		}
	}

	total := int64(clients * perClient)
	if got := tally[StatusServed] + tally[StatusShed] + tally[StatusExpired] + tally[StatusFailed]; got != total {
		t.Fatalf("responses = %d, want %d (tally %v)", got, total, tally)
	}
	if tally[StatusFailed] != 0 {
		t.Fatalf("unexpected failures: %v", tally)
	}
	if tally[StatusServed] == 0 || tally[StatusExpired] == 0 {
		t.Fatalf("degenerate stress mix: %v", tally)
	}

	snap := g.Snapshot()
	if snap.Submitted != total {
		t.Errorf("snapshot submitted = %d, want %d", snap.Submitted, total)
	}
	if snap.Accounted() != total {
		t.Errorf("snapshot accounts for %d of %d", snap.Accounted(), total)
	}
	for status, want := range map[Status]int64{
		StatusServed:  snap.Served,
		StatusShed:    snap.Shed,
		StatusExpired: snap.Expired,
		StatusFailed:  snap.Failed,
	} {
		if tally[status] != want {
			t.Errorf("%s: responses %d vs snapshot %d", status, tally[status], want)
		}
	}
	if snap.Latency.Count != snap.Served {
		t.Errorf("latency observations = %d, want %d", snap.Latency.Count, snap.Served)
	}
	var byDevice int64
	for _, n := range snap.ByDevice {
		byDevice += n
	}
	if byDevice != snap.Served {
		t.Errorf("per-device counts sum to %d, want %d", byDevice, snap.Served)
	}
	if snap.QueueDepth != 0 {
		t.Errorf("queue depth after drain = %d", snap.QueueDepth)
	}
}

// TestShedPolicies drives admission control deterministically against a
// gateway whose worker is never started, so the queue state is fully
// controlled by the test.
func TestShedPolicies(t *testing.T) {
	m := dnn.MustByName("MobileNet v1")
	build := func(policy ShedPolicy) *Gateway {
		w := &worker{device: "Mi8Pro", engine: testEngine(t, soc.Mi8Pro(), 1, core.DefaultConfig()),
			queue: make(chan *pending, 1)}
		return &Gateway{
			cfg:     Config{QueueDepth: 1, Shed: policy},
			met:     metrics.New(),
			workers: []*worker{w},
			byName:  map[string]*worker{"Mi8Pro": w},
		}
	}

	t.Run("newest", func(t *testing.T) {
		g := build(ShedNewest)
		first, err := g.Submit(Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		second, err := g.Submit(Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-second:
			if r.Status != StatusShed || r.Err != ErrQueueFull {
				t.Fatalf("second request: %+v", r)
			}
		default:
			t.Fatal("newest arrival not shed on full queue")
		}
		select {
		case r := <-first:
			t.Fatalf("queued request disturbed: %+v", r)
		default:
		}
		if snap := g.Snapshot(); snap.Shed != 1 || snap.Submitted != 2 {
			t.Fatalf("snapshot: %+v", snap)
		}
	})

	t.Run("oldest", func(t *testing.T) {
		g := build(ShedOldest)
		first, err := g.Submit(Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Submit(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-first:
			if r.Status != StatusShed || r.Err != ErrQueueFull {
				t.Fatalf("oldest request: %+v", r)
			}
		default:
			t.Fatal("oldest queued request not evicted")
		}
		if got := len(g.workers[0].queue); got != 1 {
			t.Fatalf("queue depth after eviction = %d, want 1 (the new arrival)", got)
		}
	})
}

// TestDeadlineExpiredAtSubmit checks that dead-on-arrival requests are
// rejected by admission control without ever touching a queue.
func TestDeadlineExpiredAtSubmit(t *testing.T) {
	g := testGateway(t, Config{})
	defer g.Shutdown(context.Background())
	r, err := g.Do(Request{
		Model:      dnn.MustByName("MobileNet v1"),
		Conditions: conds(),
		Deadline:   time.Now().Add(-time.Minute),
	})
	if err != ErrDeadlineExpired {
		t.Fatalf("err = %v, want ErrDeadlineExpired", err)
	}
	if r.Status != StatusExpired || r.Decision.Measurement.LatencyS != 0 {
		t.Fatalf("response: %+v", r)
	}
	if snap := g.Snapshot(); snap.Expired != 1 || snap.Served != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestDeadlineExpiredInQueue covers the dispatch-time fast-fail: a request
// admitted with a live deadline that dies while queued must not execute.
func TestDeadlineExpiredInQueue(t *testing.T) {
	// The clock jumps forward between admission and dispatch.
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	w := &worker{device: "Mi8Pro", engine: testEngine(t, soc.Mi8Pro(), 1, core.DefaultConfig()),
		queue: make(chan *pending, 4)}
	g := &Gateway{
		cfg:     Config{QueueDepth: 4, Clock: clock},
		met:     metrics.New(),
		workers: []*worker{w},
		byName:  map[string]*worker{"Mi8Pro": w},
	}
	ch, err := g.Submit(Request{
		Model:      dnn.MustByName("MobileNet v1"),
		Conditions: conds(),
		Deadline:   now.Add(time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(time.Minute)
	mu.Unlock()
	g.serveOne(w, <-w.queue)
	r := <-ch
	if r.Status != StatusExpired || r.Err != ErrDeadlineExpired {
		t.Fatalf("response: %+v", r)
	}
	if r.Decision.Measurement.LatencyS != 0 {
		t.Fatal("expired request executed")
	}
	if snap := g.Snapshot(); snap.Expired != 1 || snap.Served != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestFailoverLocal forces QoS misses (impossibly tight target) and checks
// that the gateway re-executes on the local fallback target.
func TestFailoverLocal(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Reward.QoSTargetS = 1e-9 // everything violates
	g, err := New([]Backend{{Device: "Mi8Pro", Engine: testEngine(t, soc.Mi8Pro(), 1, cfg)}},
		Config{FailoverLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Shutdown(context.Background())
	m := dnn.MustByName("MobileNet v3")
	sawRetry := false
	for i := 0; i < 100; i++ {
		r, err := g.Do(Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		if r.Retried {
			sawRetry = true
			tgt := r.Decision.Measurement.Target
			if tgt.Location != sim.Local || tgt.Kind != soc.CPU {
				t.Fatalf("retry executed on %v, want local CPU fallback", tgt)
			}
		}
	}
	if !sawRetry {
		t.Fatal("no failover retry in 100 forced QoS misses")
	}
	if snap := g.Snapshot(); snap.Retried == 0 {
		t.Fatal("metrics missed the retries")
	}
}

// TestOutageCounting turns every offload into a simulated radio outage and
// checks the gateway records the sim's local fallback.
func TestOutageCounting(t *testing.T) {
	e := testEngine(t, soc.Mi8Pro(), 1, core.DefaultConfig())
	e.World.OutageProb = 1
	g, err := New([]Backend{{Device: "Mi8Pro", Engine: e}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Shutdown(context.Background())
	m := dnn.MustByName("MobileNet v3")
	sawOutage := false
	// Offloads only happen when epsilon-exploration (or a favourable random
	// Q init) picks a remote action, so give the loop enough attempts that
	// the remote-action draw is effectively certain for any seed.
	for i := 0; i < 2000 && !sawOutage; i++ {
		r, err := g.Do(Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		if r.Outage {
			sawOutage = true
			if r.Decision.Target.Location == sim.Local {
				t.Fatal("outage flagged on a local decision")
			}
			if r.Decision.Measurement.Target.Location != sim.Local {
				t.Fatal("outage measurement did not fall back to local")
			}
		}
	}
	if !sawOutage {
		t.Fatal("no outage in 2000 runs with OutageProb=1 (engine never offloaded?)")
	}
	if snap := g.Snapshot(); snap.Outages == 0 {
		t.Fatal("metrics missed the outages")
	}
}

// countingSink wraps a policy store and counts SaveNext calls per device.
type countingSink struct {
	inner policy.Sink
	mu    sync.Mutex
	saves map[string]int
}

func newCountingSink(inner policy.Sink) *countingSink {
	return &countingSink{inner: inner, saves: map[string]int{}}
}

func (c *countingSink) SaveNext(ck *policy.Checkpoint) (uint64, error) {
	c.mu.Lock()
	c.saves[ck.Device]++
	c.mu.Unlock()
	return c.inner.SaveNext(ck)
}

func (c *countingSink) Latest(device string) (*policy.Checkpoint, error) {
	return c.inner.Latest(device)
}

func (c *countingSink) count(device string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves[device]
}

func testStore(t testing.TB) *policy.Store {
	t.Helper()
	st, err := policy.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShutdownDrainsAndCheckpoints checks graceful shutdown: queued requests
// still execute (workers are mid-request when the drain begins), Submit is
// rejected afterwards, and every worker's final Q-table reaches the
// checkpoint store exactly once — a second Shutdown must not re-flush.
func TestShutdownDrainsAndCheckpoints(t *testing.T) {
	sink := newCountingSink(testStore(t))
	g := testGateway(t, Config{QueueDepth: 256, Checkpoints: sink})
	m := dnn.MustByName("MobileNet v1")
	var chans []<-chan Response
	for i := 0; i < 40; i++ {
		ch, err := g.Submit(Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	// The workers are still chewing through the queues here, so the drain
	// below overlaps in-flight request execution.
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		r := <-ch
		if r.Status != StatusServed {
			t.Fatalf("request %d not drained: %+v", i, r)
		}
	}
	if _, err := g.Submit(Request{Model: m, Conditions: conds()}); err != ErrClosed {
		t.Fatalf("submit after shutdown: %v, want ErrClosed", err)
	}
	if err := g.Shutdown(context.Background()); err != ErrClosed {
		t.Fatalf("second shutdown: %v, want ErrClosed", err)
	}
	for _, dev := range g.Devices() {
		if got := sink.count(dev); got != 1 {
			t.Errorf("device %s checkpointed %d times at shutdown, want exactly 1", dev, got)
		}
		ck, err := sink.Latest(dev)
		if err != nil {
			t.Fatalf("no checkpoint for %s: %v", dev, err)
		}
		if ck.States == 0 || ck.Meta.TotalVisits() == 0 {
			t.Errorf("%s checkpoint carries no learning: %+v", dev, ck.Meta)
		}
		if ck.Generation != 1 {
			t.Errorf("%s checkpoint generation = %d, want 1", dev, ck.Generation)
		}
	}
	if _, err := g.SyncPolicies(); err != ErrClosed {
		t.Errorf("sync after shutdown: %v, want ErrClosed", err)
	}
}

// TestWarmStartFromStore checks that a new gateway resumes each device from
// its latest valid checkpoint, and that an unknown device falls back to the
// fleet's merged policy for its config hash.
func TestWarmStartFromStore(t *testing.T) {
	st := testStore(t)
	g := testGateway(t, Config{Checkpoints: st})
	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 30; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds(), Device: "Mi8Pro"}); err != nil {
			t.Fatal(err)
		}
	}
	if len(g.WarmStarts()) != 0 {
		t.Fatalf("fresh store produced warm-starts: %v", g.WarmStarts())
	}
	if _, err := g.SyncPolicies(); err != nil {
		t.Fatal(err)
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart the same device: it must resume from its latest generation
	// (gen 2: one sync pass + the shutdown flush).
	e2 := testEngine(t, soc.Mi8Pro(), 7, core.DefaultConfig())
	g2, err := New([]Backend{{Device: "Mi8Pro", Engine: e2}}, Config{Checkpoints: st})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Shutdown(context.Background())
	gen, ok := g2.WarmStarts()["Mi8Pro"]
	if !ok || gen != 2 {
		t.Fatalf("restarted device warm-start generation = %d (ok=%v), want 2", gen, ok)
	}
	if e2.Agent().TotalVisits() == 0 {
		t.Fatal("restarted engine resumed with no experience")
	}

	// A brand-new device name with the same engine config warm-starts from
	// the merged fleet policy.
	e3 := testEngine(t, soc.Mi8Pro(), 8, core.DefaultConfig())
	g3, err := New([]Backend{{Device: "brand-new", Engine: e3}}, Config{Checkpoints: st})
	if err != nil {
		t.Fatal(err)
	}
	defer g3.Shutdown(context.Background())
	if _, ok := g3.WarmStarts()["brand-new"]; !ok {
		t.Fatal("new device did not warm-start from the merged fleet policy")
	}
	if e3.Agent().TotalVisits() == 0 {
		t.Fatal("new engine inherited no fleet experience")
	}
}

// TestRouting covers pinned-device routing and the unknown-device failure.
func TestRouting(t *testing.T) {
	g := testGateway(t, Config{})
	defer g.Shutdown(context.Background())
	m := dnn.MustByName("MobileNet v1")
	r, err := g.Do(Request{Model: m, Conditions: conds(), Device: "GalaxyS10e"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Device != "GalaxyS10e" {
		t.Fatalf("pinned request served by %s", r.Device)
	}
	r, err = g.Do(Request{Model: m, Conditions: conds(), Device: "Pixel"})
	if r.Status != StatusFailed || err == nil {
		t.Fatalf("unknown device: %+v, err %v", r, err)
	}
	if snap := g.Snapshot(); snap.Failed != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestNewValidation covers constructor misuse.
func TestNewValidation(t *testing.T) {
	e := testEngine(t, soc.Mi8Pro(), 1, core.DefaultConfig())
	cases := []struct {
		name     string
		backends []Backend
		cfg      Config
	}{
		{"no backends", nil, Config{}},
		{"nil engine", []Backend{{Device: "a"}}, Config{}},
		{"empty name", []Backend{{Engine: e}}, Config{}},
		{"duplicate", []Backend{{Device: "a", Engine: e}, {Device: "a", Engine: e}}, Config{}},
		{"negative queue", []Backend{{Device: "a", Engine: e}}, Config{QueueDepth: -1}},
		{"bad shed", []Backend{{Device: "a", Engine: e}}, Config{Shed: ShedPolicy(9)}},
	}
	for _, c := range cases {
		if _, err := New(c.backends, c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if _, err := New([]Backend{{Device: "a", Engine: e}}, Config{}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestSubmitNilModel covers request misuse.
func TestSubmitNilModel(t *testing.T) {
	g := testGateway(t, Config{})
	defer g.Shutdown(context.Background())
	if _, err := g.Submit(Request{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

// resilientWorker builds a single-device gateway without starting the worker
// goroutine, so tests can drive serveOne and the retry/hedge helpers
// directly with fully controlled decisions.
func resilientWorker(t testing.TB, e *core.Engine, cfg Config) (*Gateway, *worker) {
	t.Helper()
	cfg.Resilience = cfg.Resilience.withDefaults()
	w := &worker{device: "Mi8Pro", engine: e, queue: make(chan *pending, 16)}
	if cpu := e.World.Device.Processor(soc.CPU); cpu != nil {
		w.fallback = sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
		w.hasFallback = true
	}
	g := &Gateway{cfg: cfg, met: metrics.New(), workers: []*worker{w}, byName: map[string]*worker{w.device: w}}
	if cfg.Faults != nil {
		if e.World.Faults == nil {
			e.World.Faults = cfg.Faults
		}
		w.events = cfg.Faults.Events(w.device)
	}
	if cfg.Resilience.Enabled {
		w.breakers = map[sim.Location]*breaker{
			sim.Connected: newBreaker(w.device, sim.Connected, cfg.Resilience, g.met, nil),
			sim.Cloud:     newBreaker(w.device, sim.Cloud, cfg.Resilience, g.met, nil),
		}
	}
	return g, w
}

// cloudOnly masks the action space down to cloud targets, forcing the engine
// to offload so the resilient path is exercised deterministically.
func cloudOnly(tg sim.Target) bool { return tg.Location == sim.Cloud }

// scheduleWorld installs a compiled fault schedule on a fresh engine.
func faultEngine(t testing.TB, seed int64, s *fault.Schedule) *core.Engine {
	t.Helper()
	e := testEngine(t, soc.Mi8Pro(), seed, core.DefaultConfig())
	e.World.Faults = fault.New(s, exec.NewRoot(seed).Child("faults"))
	return e
}

// TestRetryRecoversWhenOutageClears covers the compound path "outage during
// retry": the first attempt lands inside a scripted outage window, the
// retry's backoff advances the virtual clock past the window's end, and the
// re-driven offload succeeds — superseding the fallback answer and charging
// it as waste.
func TestRetryRecoversWhenOutageClears(t *testing.T) {
	e := faultEngine(t, 21, &fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0, EndS: 0.0005},
	}})
	g, w := resilientWorker(t, e, Config{Resilience: ResilienceConfig{Enabled: true, MaxRetries: 2}})
	m := dnn.MustByName("MobileNet v3")

	w.seq = 1
	d, err := e.RunInferenceFiltered(nil, m, conds(), cloudOnly)
	if err != nil {
		t.Fatal(err)
	}
	if d.Target.Location != sim.Cloud || d.Measurement.Target.Location != sim.Local {
		t.Fatalf("premise broken: decision %v executed on %v, want cloud decision falling back local",
			d.Target, d.Measurement.Target)
	}
	fallbackJ := d.Measurement.EnergyJ

	p := &pending{req: Request{Model: m, Conditions: conds()}, resp: make(chan Response, 1)}
	retries, recovered := g.retryOffload(w, p, &d)
	if retries != 1 || !recovered {
		t.Fatalf("retries=%d recovered=%v, want 1 recovered retry (clock passed the window at %v)",
			retries, recovered, e.Now())
	}
	if d.Measurement.Target.Location != sim.Cloud {
		t.Fatalf("recovered measurement ran on %v, want cloud", d.Measurement.Target)
	}
	if d.Measurement.WastedJ < fallbackJ {
		t.Errorf("WastedJ = %v, must charge at least the superseded fallback's %v J",
			d.Measurement.WastedJ, fallbackJ)
	}
	snap := g.Snapshot()
	if snap.OffloadRetries != 1 || snap.RetriesRecovered != 1 {
		t.Errorf("metrics: %d retries / %d recovered, want 1/1", snap.OffloadRetries, snap.RetriesRecovered)
	}
}

// TestRetryExhaustsGracefully keeps the outage window solid through every
// backoff: the retries burn out and the last local fallback answer stands.
func TestRetryExhaustsGracefully(t *testing.T) {
	e := faultEngine(t, 22, &fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0, EndS: 1e6},
	}})
	g, w := resilientWorker(t, e, Config{Resilience: ResilienceConfig{Enabled: true, MaxRetries: 2, FailureThreshold: 100}})
	m := dnn.MustByName("MobileNet v3")

	w.seq = 1
	d, err := e.RunInferenceFiltered(nil, m, conds(), cloudOnly)
	if err != nil {
		t.Fatal(err)
	}
	p := &pending{req: Request{Model: m, Conditions: conds()}, resp: make(chan Response, 1)}
	retries, recovered := g.retryOffload(w, p, &d)
	if retries != 2 || recovered {
		t.Fatalf("retries=%d recovered=%v, want 2 exhausted retries", retries, recovered)
	}
	if d.Measurement.Target.Location != sim.Local {
		t.Fatalf("degraded answer ran on %v, want the local fallback", d.Measurement.Target)
	}
	if d.Measurement.WastedJ <= 0 {
		t.Error("exhausted retries must charge the superseded attempts as waste")
	}
	snap := g.Snapshot()
	if snap.OffloadRetries != 2 || snap.RetriesRecovered != 0 {
		t.Errorf("metrics: %d retries / %d recovered, want 2/0", snap.OffloadRetries, snap.RetriesRecovered)
	}
}

// TestRetryAbandonedOnTightDeadline covers the deadline budget: a retry whose
// backoff plus clean execution cannot finish before the request's deadline is
// abandoned immediately, without burning another outage timeout.
func TestRetryAbandonedOnTightDeadline(t *testing.T) {
	e := faultEngine(t, 23, &fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0, EndS: 1e6},
	}})
	now := time.Unix(5000, 0)
	g, w := resilientWorker(t, e, Config{
		Clock:      func() time.Time { return now },
		Resilience: ResilienceConfig{Enabled: true, MaxRetries: 3},
	})
	m := dnn.MustByName("MobileNet v3")

	w.seq = 1
	d, err := e.RunInferenceFiltered(nil, m, conds(), cloudOnly)
	if err != nil {
		t.Fatal(err)
	}
	p := &pending{req: Request{Model: m, Conditions: conds(), Deadline: now.Add(time.Microsecond)},
		resp: make(chan Response, 1)}
	retries, recovered := g.retryOffload(w, p, &d)
	if retries != 0 || recovered {
		t.Fatalf("retries=%d recovered=%v, want immediate abandonment", retries, recovered)
	}
	snap := g.Snapshot()
	if snap.RetriesAbandoned != 1 || snap.OffloadRetries != 0 {
		t.Errorf("metrics: %d abandoned / %d attempted, want 1/0", snap.RetriesAbandoned, snap.OffloadRetries)
	}
	if d.Measurement.Target.Location != sim.Local {
		t.Error("abandoned retry must keep the graceful local fallback answer")
	}
}

// TestHedgeOutcomes drives the hedged-offload race both ways against a
// recovering backend: a slow remote answer loses to the local leg, a fast
// one wins but still pays the cancelled leg's in-flight energy.
func TestHedgeOutcomes(t *testing.T) {
	cloud := sim.Target{Location: sim.Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	m := dnn.MustByName("MobileNet v3")

	t.Run("local leg wins", func(t *testing.T) {
		e := testEngine(t, soc.Mi8Pro(), 24, core.DefaultConfig())
		g, w := resilientWorker(t, e, Config{Resilience: ResilienceConfig{Enabled: true, Hedge: true, HedgeAfterS: 0.001}})
		w.seq = 1
		d := core.Decision{Target: cloud,
			Measurement: sim.Measurement{Target: cloud, LatencyS: 10, EnergyJ: 1}, QoSTargetS: 0.05}
		p := &pending{req: Request{Model: m, Conditions: conds()}, resp: make(chan Response, 1)}
		hedged, won := g.hedge(w, p, &d)
		if !hedged || !won {
			t.Fatalf("hedged=%v won=%v, want the local leg to beat a 10 s remote", hedged, won)
		}
		if d.Measurement.Target.Location != sim.Local {
			t.Errorf("winning measurement ran on %v, want local", d.Measurement.Target)
		}
		if d.Measurement.WastedJ <= 0 {
			t.Error("the superseded remote leg's in-flight energy must be charged as waste")
		}
		if snap := g.Snapshot(); snap.Hedges != 1 || snap.HedgesWon != 1 {
			t.Errorf("metrics: %+v", snap)
		}
	})

	t.Run("remote answers first", func(t *testing.T) {
		e := testEngine(t, soc.Mi8Pro(), 25, core.DefaultConfig())
		g, w := resilientWorker(t, e, Config{Resilience: ResilienceConfig{Enabled: true, Hedge: true, HedgeAfterS: 0.001}})
		w.seq = 1
		d := core.Decision{Target: cloud,
			Measurement: sim.Measurement{Target: cloud, LatencyS: 0.0011, EnergyJ: 0.01}, QoSTargetS: 0.05}
		before := d.Measurement.EnergyJ
		p := &pending{req: Request{Model: m, Conditions: conds()}, resp: make(chan Response, 1)}
		hedged, won := g.hedge(w, p, &d)
		if !hedged || won {
			t.Fatalf("hedged=%v won=%v, want a lost hedge against a 1.1 ms remote", hedged, won)
		}
		if d.Measurement.Target != cloud {
			t.Errorf("losing hedge replaced the remote answer: %v", d.Measurement.Target)
		}
		if d.Measurement.EnergyJ <= before || d.Measurement.WastedJ <= 0 {
			t.Errorf("cancelled local leg not charged: energy %v (was %v), wasted %v",
				d.Measurement.EnergyJ, before, d.Measurement.WastedJ)
		}
		if snap := g.Snapshot(); snap.Hedges != 1 || snap.HedgesLost != 1 {
			t.Errorf("metrics: %+v", snap)
		}
	})
}

// TestBreakerLifecycle walks one breaker through closed -> open (masking the
// site mid-drain) -> half-open -> closed, checking the action-space mask and
// the metrics at each step.
func TestBreakerLifecycle(t *testing.T) {
	e := testEngine(t, soc.Mi8Pro(), 26, core.DefaultConfig())
	g, w := resilientWorker(t, e, Config{Resilience: ResilienceConfig{
		Enabled: true, FailureThreshold: 2, OpenForS: 1, HalfOpenProbes: 1}})
	br := w.breakers[sim.Cloud]

	br.recordFailure(0)
	if br.state != breakerClosed || !br.allow(0.1) {
		t.Fatal("one failure below threshold must not trip the breaker")
	}
	br.recordFailure(0.2)
	if br.state != breakerOpen || br.allow(0.3) {
		t.Fatal("threshold failures must trip the breaker open and mask the site")
	}
	if snap := g.Snapshot(); snap.BreakerOpens != 1 || snap.ByBreaker["Mi8Pro/cloud"] != "open" {
		t.Fatalf("metrics after trip: %+v", snap.ByBreaker)
	}
	// Cool-off elapses: the next allow flips to half-open (probe traffic).
	if !br.allow(1.5) || br.state != breakerHalfOpen {
		t.Fatal("cool-off must admit half-open probes")
	}
	// A failed probe reopens without closing the degraded episode.
	br.recordFailure(1.6)
	if br.state != breakerOpen || br.degradedSince != 0.2 {
		t.Fatalf("failed probe: state %v, degradedSince %v (want open, 0.2)", br.state, br.degradedSince)
	}
	if !br.allow(2.7) || br.state != breakerHalfOpen {
		t.Fatal("second cool-off must admit probes again")
	}
	br.recordSuccess(3.0)
	if br.state != breakerClosed {
		t.Fatal("successful probe quota must close the breaker")
	}
	snap := g.Snapshot()
	if snap.BreakerOpens != 2 || snap.BreakerHalfOpens != 2 || snap.BreakerCloses != 1 {
		t.Errorf("transition counters: %d opens, %d half-opens, %d closes, want 2/2/1",
			snap.BreakerOpens, snap.BreakerHalfOpens, snap.BreakerCloses)
	}
	// Degraded from the first trip (0.2) to the final close (3.0).
	if got, want := snap.DegradedSeconds, 2.8; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("degraded seconds = %v, want %v (episode survives the reopen)", got, want)
	}
}

// TestShutdownFlushesOpenBreakers covers Shutdown while breakers are open:
// the unfinished degraded episode must land in the degraded-seconds metric.
func TestShutdownFlushesOpenBreakers(t *testing.T) {
	e := testEngine(t, soc.Mi8Pro(), 27, core.DefaultConfig())
	e.World.OutageProb = 1
	g, err := New([]Backend{{Device: "Mi8Pro", Engine: e}},
		Config{Resilience: ResilienceConfig{Enabled: true, FailureThreshold: 1, OpenForS: 1e9, MaxRetries: -1}})
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v3")
	sawDegraded := false
	for i := 0; i < 2000; i++ {
		r, derr := g.Do(Request{Model: m, Conditions: conds()})
		if derr != nil {
			t.Fatal(derr)
		}
		if r.Degraded {
			sawDegraded = true
			if i > 1900 {
				break
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no degraded response in 2000 requests with OutageProb=1")
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	if snap.BreakerOpens == 0 {
		t.Fatal("no breaker tripped despite every offload failing")
	}
	if snap.DegradedSeconds <= 0 {
		t.Error("shutdown with open breakers must flush the degraded episode into the metric")
	}
}

// TestScriptedDrills fires the one-shot fault events: a checkpoint-corruption
// drill followed by a worker crash, after which the worker must keep serving
// from a fresh (re-warm-started) agent.
func TestScriptedDrills(t *testing.T) {
	st := testStore(t)
	sched := &fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindCheckpointCorrupt, Device: "Mi8Pro", StartS: 0},
		{Kind: fault.KindWorkerCrash, Device: "Mi8Pro", StartS: 0},
	}}
	e := testEngine(t, soc.Mi8Pro(), 28, core.DefaultConfig())
	g, err := New([]Backend{{Device: "Mi8Pro", Engine: e}}, Config{
		Checkpoints: st,
		Faults:      fault.New(sched, exec.NewRoot(28).Child("faults")),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Shutdown(context.Background())
	m := dnn.MustByName("MobileNet v3")
	r, err := g.Do(Request{Model: m, Conditions: conds()})
	if err != nil || r.Status != StatusServed {
		t.Fatalf("serve after drills: %+v, err %v", r, err)
	}
	snap := g.Snapshot()
	if snap.CorruptDrills != 1 {
		t.Errorf("corrupt drills = %d, want 1", snap.CorruptDrills)
	}
	if snap.WorkerCrashes != 1 {
		t.Errorf("worker crashes = %d, want 1", snap.WorkerCrashes)
	}
	// The gateway must stay healthy after the crash.
	for i := 0; i < 20; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatalf("request %d after crash: %v", i, err)
		}
	}
}
