package serve

import (
	"autoscale/internal/serve/metrics"
	"autoscale/internal/sim"
	"autoscale/internal/tracez"
)

// ResilienceConfig tunes the gateway's resilient offload path: per-target
// circuit breakers, deadline-budgeted offload retries and hedged offloads.
// The zero value disables the whole layer (Enabled false); an enabled
// config with zero fields gets the defaults below.
type ResilienceConfig struct {
	// Enabled switches the resilience layer on.
	Enabled bool
	// FailureThreshold is the consecutive offload failures at one remote
	// site that trip its breaker open (default 3).
	FailureThreshold int
	// OpenForS is how long (virtual seconds on the engine's clock) an open
	// breaker masks its site before admitting half-open probes (default 5).
	OpenForS float64
	// HalfOpenProbes is the consecutive successful probes that close a
	// half-open breaker (default 2).
	HalfOpenProbes int
	// MaxRetries bounds the deadline-budgeted offload retries after an
	// outage (default 1; negative disables retries).
	MaxRetries int
	// RetryBackoffS is the base backoff before the first retry, doubled
	// per attempt, plus up to 50% deterministic jitter from the request's
	// named RNG stream (default 2 ms).
	RetryBackoffS float64
	// Hedge enables hedged offloads: when a remote answer is slower than
	// HedgeAfterS and the deadline budget allows, a local leg races it and
	// the earlier answer wins.
	Hedge bool
	// HedgeAfterS is the remote latency beyond which the local hedge leg
	// fires (default 25 ms — half the paper's 50 ms QoS budget).
	HedgeAfterS float64
}

func (rc ResilienceConfig) withDefaults() ResilienceConfig {
	if !rc.Enabled {
		return rc
	}
	if rc.FailureThreshold <= 0 {
		rc.FailureThreshold = 3
	}
	if rc.OpenForS <= 0 {
		rc.OpenForS = 5
	}
	if rc.HalfOpenProbes <= 0 {
		rc.HalfOpenProbes = 2
	}
	if rc.MaxRetries == 0 {
		rc.MaxRetries = 1
	}
	if rc.RetryBackoffS <= 0 {
		rc.RetryBackoffS = 0.002
	}
	if rc.HedgeAfterS <= 0 {
		rc.HedgeAfterS = 0.025
	}
	return rc
}

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is one (worker, remote site) circuit breaker, keyed on the
// engine's virtual clock. Closed: offloads flow and consecutive failures
// count. Open: the site is masked out of the action space until OpenForS
// has elapsed. Half-open: the site is unmasked so the policy can probe it;
// HalfOpenProbes consecutive successes close it, any failure reopens it.
//
// A breaker is only touched by its worker goroutine (the gateway serializes
// each device's requests), so it needs no lock; the metrics registry it
// reports into is atomic.
type breaker struct {
	label string
	cfg   ResilienceConfig
	met   *metrics.Registry
	// rec, when non-nil, receives one flight-recorder event per state
	// transition, stamped on the virtual clock the transition happened at.
	rec      *tracez.FlightRecorder
	state    breakerState
	failures int // consecutive failures while closed
	probes   int // consecutive successes while half-open
	// openedAt is the cool-off origin: the virtual time of the most recent
	// closed/half-open -> open transition.
	openedAt float64
	// degradedSince is the start of the current degraded episode (the first
	// trip); it survives reopen cycles and is closed out — into the
	// degraded-seconds metric — when the breaker finally closes.
	degradedSince float64
}

func newBreaker(device string, loc sim.Location, cfg ResilienceConfig, met *metrics.Registry, rec *tracez.FlightRecorder) *breaker {
	b := &breaker{label: device + "/" + loc.String(), cfg: cfg, met: met, rec: rec}
	met.SetBreakerState(b.label, b.state.String())
	return b
}

// setState is the single transition choke point: every state change updates
// the metrics gauge and, when a flight recorder is wired, lands one
// "breaker" event carrying the edge (prev->next) at virtual time now.
func (b *breaker) setState(now float64, s breakerState) {
	prev := b.state
	b.state = s
	b.met.SetBreakerState(b.label, s.String())
	if prev != s {
		b.rec.Note(now, "breaker", b.label, prev.String()+"->"+s.String())
	}
}

// allow reports whether the site may receive offloads at virtual time now,
// transitioning open->half-open once the cool-off has elapsed.
func (b *breaker) allow(now float64) bool {
	if b.state == breakerOpen && now-b.openedAt >= b.cfg.OpenForS {
		b.probes = 0
		b.met.IncBreakerHalfOpen()
		b.setState(now, breakerHalfOpen)
	}
	return b.state != breakerOpen
}

// recordSuccess feeds one clean offload outcome at virtual time now.
func (b *breaker) recordSuccess(now float64) {
	switch b.state {
	case breakerClosed:
		b.failures = 0
	case breakerHalfOpen:
		b.probes++
		if b.probes >= b.cfg.HalfOpenProbes {
			b.failures = 0
			b.met.IncBreakerClose()
			b.met.AddDegradedSeconds(now - b.degradedSince)
			b.setState(now, breakerClosed)
		}
	}
}

// recordFailure feeds one failed offload outcome at virtual time now.
func (b *breaker) recordFailure(now float64) {
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openedAt, b.degradedSince = now, now
			b.met.IncBreakerOpen()
			b.setState(now, breakerOpen)
		}
	case breakerHalfOpen:
		// A failed probe reopens immediately; the degraded episode keeps
		// accumulating from the original trip.
		b.openedAt = now
		b.met.IncBreakerOpen()
		b.setState(now, breakerOpen)
	}
}

// closeOut flushes an unfinished degraded episode at shutdown time.
func (b *breaker) closeOut(now float64) {
	if b.state != breakerClosed {
		b.met.AddDegradedSeconds(now - b.degradedSince)
	}
}
