package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"autoscale/internal/dnn"
	"autoscale/internal/policy"
)

// TestHealthzFlipsOnSyncFailure pins the control-plane health surface:
// /healthz reports 503 once the policy sync has failed
// HealthzSyncFailThreshold consecutive passes (with the last error in the
// body), and recovers to 200 after one clean pass resets the counter.
func TestHealthzFlipsOnSyncFailure(t *testing.T) {
	store, err := policy.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	partitioned := true
	g := testGateway(t, Config{
		Checkpoints: store,
		PolicySync: policy.SyncConfig{
			Sleep:       func(time.Duration) {},
			Unreachable: func(string) bool { return partitioned },
		},
	})
	defer g.Shutdown(context.Background()) //nolint:errcheck
	a, err := ServeAdmin(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 10; i++ {
		if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Healthy before any sync has run; /supervisor stays 404 on an
	// unsupervised source.
	if code, _, body := adminGet(t, a, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before failures = %d %q", code, body)
	}
	if code, _, _ := adminGet(t, a, "/supervisor"); code != http.StatusNotFound {
		t.Fatalf("/supervisor on a plain gateway = %d, want 404", code)
	}

	// Failures below the threshold keep the endpoint green.
	for i := 0; i < HealthzSyncFailThreshold; i++ {
		if i == HealthzSyncFailThreshold-1 {
			if code, _, _ := adminGet(t, a, "/healthz"); code != http.StatusOK {
				t.Fatalf("/healthz flipped after only %d failures", i)
			}
		}
		rep, err := g.SyncPolicies()
		if err != nil {
			t.Fatalf("sync pass %d: %v", i, err)
		}
		if !errors.Is(rep.Err(), policy.ErrPartitioned) {
			t.Fatalf("sync pass %d under partition: %v", i, rep.Err())
		}
	}

	code, _, body := adminGet(t, a, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "policy sync failing") {
		t.Fatalf("/healthz after %d failures = %d %q", HealthzSyncFailThreshold, code, body)
	}
	s := g.Snapshot()
	if s.SyncConsecutiveFailures != HealthzSyncFailThreshold || s.SyncLastError == "" {
		t.Fatalf("snapshot sync health: %d consecutive, last error %q",
			s.SyncConsecutiveFailures, s.SyncLastError)
	}

	// The partition heals: one clean pass resets the counter and the
	// endpoint goes green again.
	partitioned = false
	rep, err := g.SyncPolicies()
	if err != nil || rep.Err() != nil {
		t.Fatalf("healed sync pass: %v / %v", err, rep.Err())
	}
	if code, _, body := adminGet(t, a, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after heal = %d %q", code, body)
	}
	if s := g.Snapshot(); s.SyncConsecutiveFailures != 0 || s.SyncLastError != "" {
		t.Fatalf("snapshot after heal: %d consecutive, last error %q",
			s.SyncConsecutiveFailures, s.SyncLastError)
	}
}

// TestShutdownFlushSurvivesCheckpointIOFaults pins the durability story for
// the final checkpoint flush: when the store's disk fails mid-shutdown
// (write failure or disk full), Shutdown surfaces the injected error but the
// prior-generation tables survive untouched in the raw store — a replacement
// gateway warm-starts from them, and once the fault clears the generation
// sequence resumes without tripping the stale-generation guard.
func TestShutdownFlushSurvivesCheckpointIOFaults(t *testing.T) {
	cases := []struct {
		name string
		mode policy.IOVerdict
	}{
		{"write_fail", policy.IOFailWrite},
		{"disk_full", policy.IOFailAll},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store, err := policy.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			verdict := policy.IOHealthy
			fsink := &policy.FaultSink{
				Inner:   store,
				Now:     func() float64 { return 0 },
				Verdict: func(string, float64) policy.IOVerdict { return verdict },
			}
			sync := policy.SyncConfig{MaxAttempts: 2, Sleep: func(time.Duration) {}}
			g := testGateway(t, Config{Checkpoints: fsink, PolicySync: sync})

			m := dnn.MustByName("MobileNet v3")
			for i := 0; i < 40; i++ {
				if _, err := g.Do(Request{Model: m, Conditions: conds()}); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
			// One clean federation pass lands a generation for every device
			// while the disk is still healthy.
			if rep, err := g.SyncPolicies(); err != nil || rep.Err() != nil {
				t.Fatalf("healthy sync: %v / %v", err, rep.Err())
			}
			gens := map[string]uint64{}
			for _, dev := range g.Devices() {
				ck, err := store.Latest(dev)
				if err != nil {
					t.Fatalf("no checkpoint for %s after sync: %v", dev, err)
				}
				gens[dev] = ck.Generation
			}

			// The disk fails before the final flush: Shutdown must surface
			// the injected error, not swallow it.
			verdict = tc.mode
			if err := g.Shutdown(context.Background()); !errors.Is(err, policy.ErrInjectedIO) {
				t.Fatalf("shutdown under %s: %v, want ErrInjectedIO", tc.name, err)
			}
			// The prior generations survive untouched in the raw store.
			for dev, gen := range gens {
				ck, err := store.Latest(dev)
				if err != nil || ck.Generation != gen {
					t.Fatalf("%s after failed flush: gen=%v err=%v, want gen %d intact",
						dev, ck, err, gen)
				}
			}

			// The fault clears: a replacement gateway warm-starts from the
			// surviving tables...
			verdict = policy.IOHealthy
			g2 := testGateway(t, Config{Checkpoints: fsink, PolicySync: sync})
			warm := g2.WarmStarts()
			for dev, gen := range gens {
				if warm[dev] != gen {
					t.Errorf("replacement warm start for %s: gen %d, want %d", dev, warm[dev], gen)
				}
			}
			// ...and the generation guard is intact: the next save resumes
			// the sequence with no gap and no stale-generation trip.
			if rep, err := g2.SyncPolicies(); err != nil || rep.Err() != nil {
				t.Fatalf("post-recovery sync: %v / %v", err, rep.Err())
			}
			for dev, gen := range gens {
				ck, err := store.Latest(dev)
				if err != nil || ck.Generation != gen+1 {
					t.Errorf("%s after recovery: gen=%v err=%v, want %d", dev, ck, err, gen+1)
				}
			}
			if err := g2.Shutdown(context.Background()); err != nil {
				t.Fatalf("clean shutdown: %v", err)
			}
		})
	}
}
