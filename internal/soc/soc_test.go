package soc

import (
	"testing"
	"testing/quick"

	"autoscale/internal/dnn"
)

func allDevices() []*Device {
	return []*Device{Mi8Pro(), GalaxyS10e(), MotoXForce(), GalaxyTabS6(), CloudServer()}
}

func TestDevicesValidate(t *testing.T) {
	for _, d := range allDevices() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestTableIISpecs(t *testing.T) {
	mi8 := Mi8Pro()
	if cpu := mi8.Processor(CPU); cpu.Steps != 23 || cpu.MaxFreqGHz != 2.8 {
		t.Errorf("Mi8Pro CPU = %d steps @ %.1f GHz, want 23 @ 2.8", cpu.Steps, cpu.MaxFreqGHz)
	}
	if gpu := mi8.Processor(GPU); gpu.Steps != 7 || gpu.MaxFreqGHz != 0.7 {
		t.Errorf("Mi8Pro GPU = %d steps @ %.1f GHz, want 7 @ 0.7", gpu.Steps, gpu.MaxFreqGHz)
	}
	if dsp := mi8.Processor(DSP); dsp == nil || dsp.Steps != 1 {
		t.Error("Mi8Pro must have a single-step DSP")
	}
	s10e := GalaxyS10e()
	if cpu := s10e.Processor(CPU); cpu.Steps != 21 || cpu.MaxFreqGHz != 2.7 {
		t.Errorf("S10e CPU = %d steps @ %.1f GHz, want 21 @ 2.7", cpu.Steps, cpu.MaxFreqGHz)
	}
	if s10e.HasKind(DSP) {
		t.Error("S10e must not have a DSP")
	}
	moto := MotoXForce()
	if cpu := moto.Processor(CPU); cpu.Steps != 15 || cpu.MaxFreqGHz != 1.9 {
		t.Errorf("Moto CPU = %d steps @ %.1f GHz, want 15 @ 1.9", cpu.Steps, cpu.MaxFreqGHz)
	}
	if gpu := moto.Processor(GPU); gpu.Steps != 6 || gpu.MaxFreqGHz != 0.6 {
		t.Errorf("Moto GPU = %d steps @ %.1f GHz, want 6 @ 0.6", gpu.Steps, gpu.MaxFreqGHz)
	}
	if moto.DRAMGB != 3 {
		t.Errorf("Moto DRAM = %v GB, want 3 (paper Section VI-C)", moto.DRAMGB)
	}
}

func TestPhones(t *testing.T) {
	phones := Phones()
	if len(phones) != 3 {
		t.Fatalf("Phones() = %d", len(phones))
	}
	want := []Class{HighEndWithDSP, HighEndNoDSP, MidEnd}
	for i, p := range phones {
		if p.Class != want[i] {
			t.Errorf("phone %d class = %v, want %v", i, p.Class, want[i])
		}
	}
}

func TestFreqMonotonic(t *testing.T) {
	for _, d := range allDevices() {
		for _, p := range d.Processors {
			prev := -1.0
			for s := 0; s < p.Steps; s++ {
				f := p.FreqGHz(s)
				if f <= prev {
					t.Errorf("%s/%s freq not strictly increasing at step %d", d.Name, p.Name, s)
				}
				prev = f
			}
			if got := p.FreqGHz(p.Steps - 1); got != p.MaxFreqGHz {
				t.Errorf("%s/%s top-step freq = %v, want %v", d.Name, p.Name, got, p.MaxFreqGHz)
			}
		}
	}
}

func TestFreqClamping(t *testing.T) {
	cpu := Mi8Pro().Processor(CPU)
	if cpu.FreqRatio(-5) != cpu.FreqRatio(0) {
		t.Error("negative step must clamp to 0")
	}
	if cpu.FreqRatio(999) != cpu.FreqRatio(cpu.Steps-1) {
		t.Error("overlarge step must clamp to top")
	}
}

func TestBusyPowerMonotonicAndBounded(t *testing.T) {
	for _, d := range allDevices() {
		for _, p := range d.Processors {
			prev := 0.0
			for s := 0; s < p.Steps; s++ {
				w := p.BusyPowerW(s)
				if w < prev {
					t.Errorf("%s/%s busy power decreases at step %d", d.Name, p.Name, s)
				}
				if w < p.IdleW || w > p.PeakBusyW+1e-9 {
					t.Errorf("%s/%s busy power %v outside [idle %v, peak %v]",
						d.Name, p.Name, w, p.IdleW, p.PeakBusyW)
				}
				prev = w
			}
			if got := p.BusyPowerW(p.Steps - 1); got < p.PeakBusyW-1e-9 {
				t.Errorf("%s/%s top-step power %v below peak %v", d.Name, p.Name, got, p.PeakBusyW)
			}
		}
	}
}

func TestBusyPowerProperty(t *testing.T) {
	cpu := GalaxyS10e().Processor(CPU)
	f := func(step int) bool {
		w := cpu.BusyPowerW(step)
		return w >= cpu.IdleW-1e-12 && w <= cpu.PeakBusyW+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrecisionSpeedups(t *testing.T) {
	mi8 := Mi8Pro()
	cpu, gpu, dsp := mi8.Processor(CPU), mi8.Processor(GPU), mi8.Processor(DSP)
	if cpu.PrecisionSpeedup(dnn.INT8) <= 1 {
		t.Error("CPU INT8 must be faster than FP32")
	}
	if cpu.PrecisionSpeedup(dnn.FP32) != 1 {
		t.Error("CPU FP32 speedup must be 1")
	}
	if gpu.PrecisionSpeedup(dnn.FP16) <= 1 {
		t.Error("GPU FP16 must be faster than FP32")
	}
	if dsp.PrecisionSpeedup(dnn.INT8) != 1 {
		t.Error("DSP is INT8-native; speedup must be 1")
	}
}

func TestCanRun(t *testing.T) {
	mi8 := Mi8Pro()
	bert := dnn.MustByName("MobileBERT")
	resnet := dnn.MustByName("ResNet 50")
	if mi8.Processor(GPU).CanRun(bert, dnn.FP32) {
		t.Error("mobile GPU must not run RC models")
	}
	if mi8.Processor(DSP).CanRun(bert, dnn.INT8) {
		t.Error("mobile DSP must not run RC models")
	}
	if !mi8.Processor(CPU).CanRun(bert, dnn.FP32) {
		t.Error("CPU must run MobileBERT")
	}
	if mi8.Processor(DSP).CanRun(resnet, dnn.FP32) {
		t.Error("DSP must reject FP32")
	}
	if !mi8.Processor(DSP).CanRun(resnet, dnn.INT8) {
		t.Error("DSP must run ResNet 50 at INT8")
	}
	if !CloudServer().Processor(GPU).CanRun(bert, dnn.FP32) {
		t.Error("server GPU must run RC models")
	}
}

func TestLayerEffOrdering(t *testing.T) {
	mi8 := Mi8Pro()
	cpu, gpu, dsp := mi8.Processor(CPU), mi8.Processor(GPU), mi8.Processor(DSP)
	if gpu.Eff(dnn.Conv) <= cpu.Eff(dnn.Conv) {
		t.Error("GPU must be relatively better at CONV than CPU")
	}
	if gpu.Eff(dnn.FC) >= cpu.Eff(dnn.FC) {
		t.Error("CPU must be relatively better at FC than GPU (Fig 3)")
	}
	if dsp.Eff(dnn.FC) >= cpu.Eff(dnn.FC) {
		t.Error("CPU must be relatively better at FC than DSP (Fig 3)")
	}
	// Unknown layer types fall back to 0.5.
	p := &Processor{LayerEff: map[dnn.LayerType]float64{}}
	if p.Eff(dnn.Conv) != 0.5 {
		t.Error("missing efficiency must default to 0.5")
	}
}

func TestThrottleFactor(t *testing.T) {
	if ThrottleFactor(CPU, 0.3) != 1 {
		t.Error("below-onset utilization must not throttle")
	}
	if f := ThrottleFactor(CPU, 1.0); absDiff(f, cpuThrottleFloor) > 1e-9 {
		t.Errorf("full-utilization CPU throttle = %v, want %v", f, cpuThrottleFloor)
	}
	if ThrottleFactor(DSP, 1.0) != 1 {
		t.Error("DSP must never throttle")
	}
	if absDiff(ThrottleFactor(GPU, 1.0), gpuThrottleFloor) > 1e-9 {
		t.Error("GPU floor wrong")
	}
	// Monotonically non-increasing in utilization.
	prev := 2.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		f := ThrottleFactor(CPU, u)
		if f > prev+1e-12 {
			t.Errorf("throttle increased at u=%v", u)
		}
		if f <= 0 || f > 1 {
			t.Errorf("throttle %v out of (0,1] at u=%v", f, u)
		}
		prev = f
	}
	// Clamping.
	if ThrottleFactor(CPU, -1) != 1 || absDiff(ThrottleFactor(CPU, 2), cpuThrottleFloor) > 1e-9 {
		t.Error("utilization clamping broken")
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestValidateRejectsBadProcessors(t *testing.T) {
	good := Mi8Pro().Processor(CPU)
	cases := []func(p *Processor){
		func(p *Processor) { p.Name = "" },
		func(p *Processor) { p.Steps = 0 },
		func(p *Processor) { p.MaxFreqGHz = 0 },
		func(p *Processor) { p.MinFreqRatio = 0 },
		func(p *Processor) { p.MinFreqRatio = 1.5 },
		func(p *Processor) { p.PeakBusyW = p.IdleW },
		func(p *Processor) { p.PeakGMACs = 0 },
		func(p *Processor) { p.Precisions = nil },
	}
	for i, mutate := range cases {
		p := *good
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation failure", i)
		}
	}
}

func TestDeviceValidateRejectsDuplicates(t *testing.T) {
	d := Mi8Pro()
	d.Processors = append(d.Processors, d.Processors[0])
	if d.Validate() == nil {
		t.Error("duplicate kind should fail validation")
	}
}

func TestKindClassStrings(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || DSP.String() != "DSP" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" || Class(9).String() == "" {
		t.Error("out-of-range stringers must not be empty")
	}
	if MidEnd.String() != "mid-end" || Server.String() != "server" {
		t.Error("class names wrong")
	}
}

func TestNPUTPUProfiles(t *testing.T) {
	npu := Mi8ProNPU()
	if err := npu.Validate(); err != nil {
		t.Fatal(err)
	}
	p := npu.Processor(NPU)
	if p == nil {
		t.Fatal("Mi8Pro+NPU lacks the NPU")
	}
	if p.Steps != 1 {
		t.Error("NPU must be fixed-frequency")
	}
	if !p.SupportsPrecision(dnn.INT8) || p.SupportsPrecision(dnn.FP32) {
		t.Error("NPU must be INT8-native")
	}
	if p.CanRun(dnn.MustByName("MobileBERT"), dnn.INT8) {
		t.Error("mobile NPU must reject RC models")
	}
	// The NPU should beat the DSP on raw convolution throughput.
	if dsp := npu.Processor(DSP); p.PeakGMACs <= dsp.PeakGMACs {
		t.Error("NPU should out-rate the DSP")
	}

	tpu := CloudServerTPU()
	if err := tpu.Validate(); err != nil {
		t.Fatal(err)
	}
	tp := tpu.Processor(TPU)
	if tp == nil {
		t.Fatal("CloudServer+TPU lacks the TPU")
	}
	if !tp.SupportsRC {
		t.Error("datacenter TPU must run RC models")
	}
	if gpu := tpu.Processor(GPU); tp.PeakGMACs <= gpu.PeakGMACs {
		t.Error("TPU should out-rate the P100")
	}
}

func TestIsCoprocessor(t *testing.T) {
	if CPU.IsCoprocessor() {
		t.Error("CPU is the host")
	}
	for _, k := range []Kind{GPU, DSP, NPU, TPU} {
		if !k.IsCoprocessor() {
			t.Errorf("%v must be a coprocessor", k)
		}
	}
	if NPU.String() != "NPU" || TPU.String() != "TPU" {
		t.Error("kind names wrong")
	}
}
