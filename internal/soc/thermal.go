package soc

// Thermal throttling model. The paper observes that a CPU-intensive
// co-runner causes "frequent thermal throttling due to high CPU utilization"
// (Section III-B, [59]). We model the thermal governor as a frequency cap
// that tightens with sustained engine utilization: below the onset the
// engine runs unthrottled, beyond it the cap falls linearly to the floor.

// Throttle onset and floor per engine kind. CPUs throttle first and hardest;
// GPUs have more thermal headroom in these chassis; DSPs run at low enough
// power that they do not throttle.
const (
	cpuThrottleOnset = 0.60
	cpuThrottleFloor = 0.65
	gpuThrottleOnset = 0.75
	gpuThrottleFloor = 0.80
)

// ThrottleFactor returns the effective frequency multiplier (in (0,1]) the
// thermal governor imposes on an engine of kind k under sustained
// utilization u (0..1 of the engine's full power budget, including
// co-running work).
func ThrottleFactor(k Kind, u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	var onset, floor float64
	switch k {
	case CPU:
		onset, floor = cpuThrottleOnset, cpuThrottleFloor
	case GPU:
		onset, floor = gpuThrottleOnset, gpuThrottleFloor
	default:
		return 1
	}
	if u <= onset {
		return 1
	}
	// Linear descent from 1.0 at onset to floor at u == 1.
	return 1 - (1-floor)*(u-onset)/(1-onset)
}
