// Package soc simulates the mobile and server systems-on-chip of the paper's
// testbed (Table II): processors with DVFS ladders and power curves, and the
// devices that aggregate them. The simulator reproduces the *relative*
// per-layer latency and power profiles that drive the paper's findings — the
// exact silicon is simulated, not measured.
package soc

import (
	"fmt"

	"autoscale/internal/dnn"
)

// Kind classifies a processor.
type Kind int

// Processor kinds available as AutoScale actions. NPU and TPU realize the
// paper's Section V-C extension note: "additional actions, such as mobile
// NPU or cloud TPU, could be further considered".
const (
	CPU Kind = iota
	GPU
	DSP
	NPU
	TPU
)

// String returns the conventional kind name.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case DSP:
		return "DSP"
	case NPU:
		return "NPU"
	case TPU:
		return "TPU"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsCoprocessor reports whether the kind is an accelerator sharing DRAM with
// the host (everything except the CPU).
func (k Kind) IsCoprocessor() bool { return k != CPU }

// Processor models one execution engine of an SoC: a DVFS ladder, a power
// curve fitted to the Table II peak powers, a peak MAC rate, and per-layer
// efficiency/overhead profiles that encode which layer types the engine is
// good at (Fig 3 of the paper).
type Processor struct {
	// Name identifies the engine (e.g. "Adreno 630").
	Name string
	// Kind is the engine class.
	Kind Kind
	// Steps is the number of DVFS voltage/frequency steps (Table II).
	// DSPs have a single step: the paper does not apply DVFS to them.
	Steps int
	// MaxFreqGHz is the frequency at the top step.
	MaxFreqGHz float64
	// MinFreqRatio is the bottom step's frequency as a fraction of max.
	MinFreqRatio float64
	// PeakBusyW is the busy power at the top step (Table II parenthesis).
	PeakBusyW float64
	// IdleW is the idle power of the engine.
	IdleW float64
	// PeakGMACs is the sustained MAC rate (in 1e9 MAC/s) at the top step
	// in the engine's native precision for a perfectly suited layer.
	PeakGMACs float64
	// MemBWGBs is the effective memory bandwidth available to inference.
	MemBWGBs float64
	// LayerEff scales PeakGMACs per layer type; FC inefficiency on
	// co-processors is what makes FC-heavy networks CPU-friendly.
	LayerEff map[dnn.LayerType]float64
	// LayerOverheadS is the per-layer dispatch/synchronization overhead in
	// seconds per layer type (kernel launches, data marshalling).
	LayerOverheadS map[dnn.LayerType]float64
	// Precisions lists the numeric formats the engine executes.
	Precisions []dnn.Precision
	// SupportsRC reports whether the engine's runtime can execute
	// recurrent layers (mobile co-processor middleware cannot; paper
	// footnote 3).
	SupportsRC bool
}

// voltage range of the simulated DVFS ladders, relative to nominal.
const (
	vMinRatio = 0.60
	vMaxRatio = 1.00
)

// FreqRatio returns the frequency of DVFS step i as a fraction of the top
// frequency. Steps are 0 (slowest) through Steps-1 (fastest). Out-of-range
// steps are clamped.
func (p *Processor) FreqRatio(step int) float64 {
	step = clampStep(step, p.Steps)
	if p.Steps <= 1 {
		return 1
	}
	return p.MinFreqRatio + (1-p.MinFreqRatio)*float64(step)/float64(p.Steps-1)
}

// FreqGHz returns the absolute frequency of DVFS step i.
func (p *Processor) FreqGHz(step int) float64 { return p.MaxFreqGHz * p.FreqRatio(step) }

// VoltRatio returns the relative supply voltage at DVFS step i, scaling
// linearly from vMinRatio to vMaxRatio with frequency as on real rails.
func (p *Processor) VoltRatio(step int) float64 {
	step = clampStep(step, p.Steps)
	if p.Steps <= 1 {
		return vMaxRatio
	}
	return vMinRatio + (vMaxRatio-vMinRatio)*float64(step)/float64(p.Steps-1)
}

// BusyPowerW returns the busy power at DVFS step i following the classical
// P = Pidle + (Ppeak-Pidle)·(V/Vmax)²·(f/fmax) dynamic-power model.
func (p *Processor) BusyPowerW(step int) float64 {
	v := p.VoltRatio(step) / vMaxRatio
	f := p.FreqRatio(step)
	return p.IdleW + (p.PeakBusyW-p.IdleW)*v*v*f
}

// Eff returns the layer-type efficiency factor (defaults to 0.5 for types
// not in the profile).
func (p *Processor) Eff(t dnn.LayerType) float64 {
	if e, ok := p.LayerEff[t]; ok {
		return e
	}
	return 0.5
}

// Overhead returns the per-layer dispatch overhead for a layer type.
func (p *Processor) Overhead(t dnn.LayerType) float64 { return p.LayerOverheadS[t] }

// SupportsPrecision reports whether the engine executes precision pr.
func (p *Processor) SupportsPrecision(pr dnn.Precision) bool {
	for _, q := range p.Precisions {
		if q == pr {
			return true
		}
	}
	return false
}

// PrecisionSpeedup returns the compute-rate multiplier of running at
// precision pr relative to the engine's FP32 rate. Mobile CPUs gain from
// INT8 dot-product instructions; GPUs from FP16 packed math; DSPs are
// INT8-native so their PeakGMACs already is the INT8 rate.
func (p *Processor) PrecisionSpeedup(pr dnn.Precision) float64 {
	switch p.Kind {
	case CPU:
		if pr == dnn.INT8 {
			return 2.5
		}
	case GPU:
		if pr == dnn.FP16 {
			return 1.8
		}
	case DSP, NPU, TPU:
		return 1 // fixed-function engines run at their native rate
	}
	return 1
}

// CanRun reports whether the engine can execute the model at the precision:
// the precision must be supported and recurrent layers require RC support.
func (p *Processor) CanRun(m *dnn.Model, pr dnn.Precision) bool {
	if !p.SupportsPrecision(pr) {
		return false
	}
	if m.HasRC() && !p.SupportsRC {
		return false
	}
	return true
}

// Validate checks the profile invariants.
func (p *Processor) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("soc: processor has no name")
	case p.Steps < 1:
		return fmt.Errorf("soc: %s has %d DVFS steps", p.Name, p.Steps)
	case p.MaxFreqGHz <= 0:
		return fmt.Errorf("soc: %s has non-positive frequency", p.Name)
	case p.MinFreqRatio <= 0 || p.MinFreqRatio > 1:
		return fmt.Errorf("soc: %s has MinFreqRatio outside (0,1]", p.Name)
	case p.PeakBusyW <= p.IdleW:
		return fmt.Errorf("soc: %s peak power below idle", p.Name)
	case p.PeakGMACs <= 0 || p.MemBWGBs <= 0:
		return fmt.Errorf("soc: %s has non-positive rate", p.Name)
	case len(p.Precisions) == 0:
		return fmt.Errorf("soc: %s supports no precision", p.Name)
	}
	return nil
}

func clampStep(step, steps int) int {
	if step < 0 {
		return 0
	}
	if step >= steps {
		return steps - 1
	}
	return step
}
