package soc

import (
	"fmt"

	"autoscale/internal/dnn"
)

// Class positions a device within the paper's taxonomy (Section III).
type Class int

// Device classes used in the evaluation.
const (
	// HighEndWithDSP is a flagship SoC with GPU and an NN-capable DSP
	// (Xiaomi Mi8Pro).
	HighEndWithDSP Class = iota
	// HighEndNoDSP is a flagship SoC with GPU but no programmable DSP
	// (Samsung Galaxy S10e).
	HighEndNoDSP
	// MidEnd is a previous-generation SoC (Motorola Moto X Force).
	MidEnd
	// Tablet is the locally connected higher-end edge device
	// (Samsung Galaxy Tab S6 over Wi-Fi Direct).
	Tablet
	// Server is the cloud system (Xeon E5-2640 + Tesla P100).
	Server
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case HighEndWithDSP:
		return "high-end+DSP"
	case HighEndNoDSP:
		return "high-end"
	case MidEnd:
		return "mid-end"
	case Tablet:
		return "tablet"
	case Server:
		return "server"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Device aggregates the processors of one system plus its platform idle
// power (rails, DRAM refresh, display subsystem share attributed to the
// measurement, as a Monsoon meter would see it).
type Device struct {
	Name       string
	Class      Class
	Processors []*Processor
	// PlatformIdleW is the system-wide idle power outside the engines.
	PlatformIdleW float64
	// DRAMGB is installed memory (the paper quotes a 3 GB mid-end device
	// when sizing the Q-table footprint).
	DRAMGB float64
}

// Processor returns the device's engine of the given kind, or nil.
func (d *Device) Processor(k Kind) *Processor {
	for _, p := range d.Processors {
		if p.Kind == k {
			return p
		}
	}
	return nil
}

// HasKind reports whether the device has an engine of kind k.
func (d *Device) HasKind(k Kind) bool { return d.Processor(k) != nil }

// Validate checks the device and all its processors.
func (d *Device) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("soc: device has no name")
	}
	if len(d.Processors) == 0 {
		return fmt.Errorf("soc: device %s has no processors", d.Name)
	}
	seen := make(map[Kind]bool)
	for _, p := range d.Processors {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("device %s: %w", d.Name, err)
		}
		if seen[p.Kind] {
			return fmt.Errorf("soc: device %s has duplicate %s", d.Name, p.Kind)
		}
		seen[p.Kind] = true
	}
	return nil
}

// Per-kind layer-efficiency profiles. CPUs are balanced and the best place
// for FC/RC work; GPUs excel at convolutions but collapse on FC layers
// (reduction-heavy, little parallelism) and pay per-kernel launch costs;
// DSPs are convolution engines with even weaker FC paths. These asymmetries
// are what Fig 3 of the paper measures.
func cpuEff() map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: 0.60, dnn.FC: 0.90, dnn.RC: 0.70,
		dnn.Pool: 0.50, dnn.Norm: 0.50, dnn.Softmax: 0.50, dnn.Argmax: 0.50, dnn.Dropout: 0.50,
	}
}

func gpuEff() map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: 1.00, dnn.FC: 0.05, dnn.RC: 0.10,
		dnn.Pool: 0.60, dnn.Norm: 0.60, dnn.Softmax: 0.30, dnn.Argmax: 0.30, dnn.Dropout: 0.60,
	}
}

func dspEff() map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: 1.00, dnn.FC: 0.04, dnn.RC: 0.05,
		dnn.Pool: 0.50, dnn.Norm: 0.50, dnn.Softmax: 0.20, dnn.Argmax: 0.20, dnn.Dropout: 0.50,
	}
}

// serverGPUEff: datacenter GPUs (and cuDNN-era runtimes) handle FC/RC far
// better than mobile co-processor stacks.
func serverGPUEff() map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: 1.00, dnn.FC: 0.50, dnn.RC: 0.35,
		dnn.Pool: 0.70, dnn.Norm: 0.70, dnn.Softmax: 0.50, dnn.Argmax: 0.50, dnn.Dropout: 0.70,
	}
}

func cpuOverhead(perLayer float64) map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: perLayer, dnn.FC: perLayer, dnn.RC: perLayer,
		dnn.Pool: perLayer / 2, dnn.Norm: perLayer / 2, dnn.Softmax: perLayer / 2,
		dnn.Argmax: perLayer / 2, dnn.Dropout: perLayer / 2,
	}
}

// coprocOverhead gives co-processors a per-kernel launch cost plus a much
// larger FC/RC marshalling cost (host round-trips around reductions).
func coprocOverhead(launch, fcSync float64) map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: launch, dnn.FC: fcSync, dnn.RC: fcSync,
		dnn.Pool: launch, dnn.Norm: launch, dnn.Softmax: launch,
		dnn.Argmax: launch, dnn.Dropout: launch,
	}
}

const (
	us = 1e-6
	ms = 1e-3
)

// Mi8Pro returns the Xiaomi Mi8Pro profile: Cortex-A75 CPU (2.8 GHz, 23 V/F
// steps), Adreno 630 GPU (0.7 GHz, 7 V/F steps), Hexagon 685 DSP (Table II).
func Mi8Pro() *Device {
	return &Device{
		Name:          "Mi8Pro",
		Class:         HighEndWithDSP,
		PlatformIdleW: 1.20,
		DRAMGB:        6,
		Processors: []*Processor{
			{
				Name: "Cortex-A75", Kind: CPU, Steps: 23,
				MaxFreqGHz: 2.8, MinFreqRatio: 0.30,
				PeakBusyW: 5.5, IdleW: 0.25,
				PeakGMACs: 28, MemBWGBs: 24,
				LayerEff: cpuEff(), LayerOverheadS: cpuOverhead(15 * us),
				Precisions: []dnn.Precision{dnn.FP32, dnn.INT8},
				SupportsRC: true,
			},
			{
				Name: "Adreno 630", Kind: GPU, Steps: 7,
				MaxFreqGHz: 0.7, MinFreqRatio: 0.40,
				PeakBusyW: 2.8, IdleW: 0.15,
				PeakGMACs: 70, MemBWGBs: 20,
				LayerEff: gpuEff(), LayerOverheadS: coprocOverhead(80*us, 1.2*ms),
				Precisions: []dnn.Precision{dnn.FP32, dnn.FP16},
			},
			{
				Name: "Hexagon 685", Kind: DSP, Steps: 1,
				MaxFreqGHz: 1.2, MinFreqRatio: 1,
				PeakBusyW: 1.8, IdleW: 0.10,
				PeakGMACs: 180, MemBWGBs: 18,
				LayerEff: dspEff(), LayerOverheadS: coprocOverhead(100*us, 1.5*ms),
				Precisions: []dnn.Precision{dnn.INT8},
			},
		},
	}
}

// GalaxyS10e returns the Samsung Galaxy S10e profile: Mongoose CPU (2.7 GHz,
// 21 V/F steps) and Mali-G76 GPU (0.7 GHz, 9 V/F steps); no programmable DSP.
func GalaxyS10e() *Device {
	return &Device{
		Name:          "GalaxyS10e",
		Class:         HighEndNoDSP,
		PlatformIdleW: 1.20,
		DRAMGB:        6,
		Processors: []*Processor{
			{
				Name: "Mongoose-M4", Kind: CPU, Steps: 21,
				MaxFreqGHz: 2.7, MinFreqRatio: 0.30,
				PeakBusyW: 5.6, IdleW: 0.25,
				PeakGMACs: 26, MemBWGBs: 26,
				LayerEff: cpuEff(), LayerOverheadS: cpuOverhead(15 * us),
				Precisions: []dnn.Precision{dnn.FP32, dnn.INT8},
				SupportsRC: true,
			},
			{
				Name: "Mali-G76", Kind: GPU, Steps: 9,
				MaxFreqGHz: 0.7, MinFreqRatio: 0.40,
				PeakBusyW: 2.4, IdleW: 0.15,
				PeakGMACs: 60, MemBWGBs: 22,
				LayerEff: gpuEff(), LayerOverheadS: coprocOverhead(90*us, 1.3*ms),
				Precisions: []dnn.Precision{dnn.FP32, dnn.FP16},
			},
		},
	}
}

// MotoXForce returns the Motorola Moto X Force profile: Cortex-A57 CPU
// (1.9 GHz, 15 V/F steps) and Adreno 430 GPU (0.6 GHz, 6 V/F steps) — the
// paper's mid-end device with the widest market coverage.
func MotoXForce() *Device {
	return &Device{
		Name:          "MotoXForce",
		Class:         MidEnd,
		PlatformIdleW: 1.00,
		DRAMGB:        3,
		Processors: []*Processor{
			{
				Name: "Cortex-A57", Kind: CPU, Steps: 15,
				MaxFreqGHz: 1.9, MinFreqRatio: 0.30,
				PeakBusyW: 3.6, IdleW: 0.20,
				PeakGMACs: 12, MemBWGBs: 13,
				LayerEff: cpuEff(), LayerOverheadS: cpuOverhead(25 * us),
				Precisions: []dnn.Precision{dnn.FP32, dnn.INT8},
				SupportsRC: true,
			},
			{
				Name: "Adreno 430", Kind: GPU, Steps: 6,
				MaxFreqGHz: 0.6, MinFreqRatio: 0.40,
				PeakBusyW: 2.0, IdleW: 0.12,
				PeakGMACs: 12, MemBWGBs: 12,
				LayerEff: gpuEff(), LayerOverheadS: coprocOverhead(150*us, 2.0*ms),
				Precisions: []dnn.Precision{dnn.FP32, dnn.FP16},
			},
		},
	}
}

// GalaxyTabS6 returns the locally connected tablet profile: Cortex-A76 CPU
// (2.84 GHz), Adreno 640 GPU, Hexagon 690 DSP (Section V-A).
func GalaxyTabS6() *Device {
	return &Device{
		Name:          "GalaxyTabS6",
		Class:         Tablet,
		PlatformIdleW: 1.50,
		DRAMGB:        8,
		Processors: []*Processor{
			{
				Name: "Cortex-A76", Kind: CPU, Steps: 20,
				MaxFreqGHz: 2.84, MinFreqRatio: 0.30,
				PeakBusyW: 6.0, IdleW: 0.25,
				PeakGMACs: 36, MemBWGBs: 30,
				LayerEff: cpuEff(), LayerOverheadS: cpuOverhead(13 * us),
				Precisions: []dnn.Precision{dnn.FP32, dnn.INT8},
				SupportsRC: true,
			},
			{
				Name: "Adreno 640", Kind: GPU, Steps: 8,
				MaxFreqGHz: 0.75, MinFreqRatio: 0.40,
				PeakBusyW: 3.2, IdleW: 0.15,
				PeakGMACs: 95, MemBWGBs: 26,
				LayerEff: gpuEff(), LayerOverheadS: coprocOverhead(70*us, 1.1*ms),
				Precisions: []dnn.Precision{dnn.FP32, dnn.FP16},
			},
			{
				Name: "Hexagon 690", Kind: DSP, Steps: 1,
				MaxFreqGHz: 1.4, MinFreqRatio: 1,
				PeakBusyW: 2.0, IdleW: 0.10,
				PeakGMACs: 240, MemBWGBs: 22,
				LayerEff: dspEff(), LayerOverheadS: coprocOverhead(90*us, 1.4*ms),
				Precisions: []dnn.Precision{dnn.INT8},
			},
		},
	}
}

// CloudServer returns the cloud profile: Intel Xeon E5-2640 (2.4 GHz, 40
// cores) and NVIDIA Tesla P100 (Section V-A). Server power draws are large
// but are not billed to the device's battery; the mobile side pays only the
// radio and the wait (eq 4 of the paper). The busy powers here are used when
// reporting datacenter-side energy in diagnostics.
func CloudServer() *Device {
	return &Device{
		Name:          "CloudServer",
		Class:         Server,
		PlatformIdleW: 60,
		DRAMGB:        256,
		Processors: []*Processor{
			{
				Name: "Xeon E5-2640", Kind: CPU, Steps: 15,
				MaxFreqGHz: 2.4, MinFreqRatio: 0.50,
				PeakBusyW: 90, IdleW: 30,
				PeakGMACs: 220, MemBWGBs: 60,
				LayerEff: cpuEff(), LayerOverheadS: cpuOverhead(8 * us),
				Precisions: []dnn.Precision{dnn.FP32},
				SupportsRC: true,
			},
			{
				Name: "Tesla P100", Kind: GPU, Steps: 10,
				MaxFreqGHz: 1.33, MinFreqRatio: 0.40,
				PeakBusyW: 250, IdleW: 30,
				PeakGMACs: 4500, MemBWGBs: 500,
				LayerEff: serverGPUEff(), LayerOverheadS: coprocOverhead(30*us, 150*us),
				Precisions: []dnn.Precision{dnn.FP32},
				SupportsRC: true,
			},
		},
	}
}

// Phones returns the three evaluation smartphones in Table II order.
func Phones() []*Device {
	return []*Device{Mi8Pro(), GalaxyS10e(), MotoXForce()}
}

// npuEff: mobile NPUs are convolution/GEMM engines with a better FC path
// than DSPs (dedicated matrix units) but still no recurrent-layer runtime.
func npuEff() map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: 1.00, dnn.FC: 0.15, dnn.RC: 0.10,
		dnn.Pool: 0.60, dnn.Norm: 0.60, dnn.Softmax: 0.30, dnn.Argmax: 0.30, dnn.Dropout: 0.60,
	}
}

// tpuEff: datacenter matrix engines handle FC and attention workloads well.
func tpuEff() map[dnn.LayerType]float64 {
	return map[dnn.LayerType]float64{
		dnn.Conv: 1.00, dnn.FC: 0.60, dnn.RC: 0.50,
		dnn.Pool: 0.70, dnn.Norm: 0.70, dnn.Softmax: 0.50, dnn.Argmax: 0.50, dnn.Dropout: 0.70,
	}
}

// Mi8ProNPU returns a hypothetical NPU-equipped variant of the Mi8Pro — the
// paper's Section V-C extension ("additional actions, such as mobile NPU
// ... could be further considered"; the paper could not program the NPUs of
// its day because vendor SDKs were unreleased). The NPU is an INT8-native
// fixed-frequency engine faster and leaner than the Hexagon DSP.
func Mi8ProNPU() *Device {
	d := Mi8Pro()
	d.Name = "Mi8Pro+NPU"
	d.Processors = append(d.Processors, &Processor{
		Name: "NPU", Kind: NPU, Steps: 1,
		MaxFreqGHz: 1.0, MinFreqRatio: 1,
		PeakBusyW: 1.5, IdleW: 0.08,
		PeakGMACs: 320, MemBWGBs: 25,
		LayerEff: npuEff(), LayerOverheadS: coprocOverhead(60*us, 1.0*ms),
		Precisions: []dnn.Precision{dnn.INT8},
	})
	return d
}

// CloudServerTPU returns the cloud profile augmented with a TPU-class
// matrix accelerator — the other half of the Section V-C extension note.
func CloudServerTPU() *Device {
	d := CloudServer()
	d.Name = "CloudServer+TPU"
	d.Processors = append(d.Processors, &Processor{
		Name: "TPU", Kind: TPU, Steps: 8,
		MaxFreqGHz: 0.94, MinFreqRatio: 0.50,
		PeakBusyW: 200, IdleW: 25,
		PeakGMACs: 12000, MemBWGBs: 600,
		LayerEff: tpuEff(), LayerOverheadS: coprocOverhead(25*us, 120*us),
		Precisions: []dnn.Precision{dnn.FP32},
		SupportsRC: true,
	})
	return d
}
