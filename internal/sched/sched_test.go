package sched

import (
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func strongCond() sim.Conditions {
	return sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
}

func TestEdgeCPU(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := EdgeCPU{World: w}
	if p.Name() != "Edge (CPU FP32)" {
		t.Error("name wrong")
	}
	meas, err := p.Run(dnn.MustByName("MobileNet v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != sim.Local || meas.Target.Kind != soc.CPU || meas.Target.Prec != dnn.FP32 {
		t.Errorf("EdgeCPU ran on %v", meas.Target)
	}
	cpu := w.Device.Processor(soc.CPU)
	if meas.Target.Step != cpu.Steps-1 {
		t.Error("EdgeCPU must run at top frequency")
	}
}

func TestEdgeBestStaysLocalAndMeetsQoS(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &EdgeBest{World: w}
	for _, name := range []string{"Inception v1", "MobileNet v3", "MobileNet v1"} {
		m := dnn.MustByName(name)
		meas, err := p.Run(m, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if meas.Target.Location != sim.Local {
			t.Errorf("%s: EdgeBest went %v", name, meas.Target.Location)
		}
		exp, err := w.Expected(m, meas.Target, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if exp.LatencyS > sim.QoSNonStreamingS {
			t.Errorf("%s: EdgeBest plan violates QoS in calm conditions", name)
		}
	}
}

func TestEdgeBestPlanIsBestLocal(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &EdgeBest{World: w}
	m := dnn.MustByName("Inception v1")
	meas, err := p.Run(m, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.Expected(m, meas.Target, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range w.Targets(m) {
		if tgt.Location != sim.Local {
			continue
		}
		e, err := w.Expected(m, tgt, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if e.LatencyS <= sim.QoSNonStreamingS && e.EnergyJ < plan.EnergyJ-1e-12 {
			t.Errorf("local target %v beats EdgeBest plan", tgt)
		}
	}
}

func TestEdgeBestAccuracyConstraint(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &EdgeBest{World: w, Accuracy: 65}
	meas, err := p.Run(dnn.MustByName("Inception v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Accuracy < 65 {
		t.Errorf("EdgeBest chose accuracy %v under a 65%% target", meas.Accuracy)
	}
}

func TestCloudAll(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := CloudAll{World: w}
	meas, err := p.Run(dnn.MustByName("ResNet 50"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != sim.Cloud || meas.Target.Kind != soc.GPU {
		t.Errorf("CloudAll ran on %v", meas.Target)
	}
	// MobileBERT also lands on the server GPU (it supports RC).
	meas, err = p.Run(dnn.MustByName("MobileBERT"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != sim.Cloud {
		t.Error("CloudAll must stay in the cloud")
	}
}

func TestConnectedEdge(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &ConnectedEdge{World: w}
	meas, err := p.Run(dnn.MustByName("Inception v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != sim.Connected {
		t.Errorf("ConnectedEdge ran on %v", meas.Target)
	}
	// BERT has only the tablet CPU available.
	meas, err = p.Run(dnn.MustByName("MobileBERT"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != sim.Connected || meas.Target.Kind != soc.CPU {
		t.Errorf("ConnectedEdge BERT target = %v", meas.Target)
	}
}

func TestOptBeatsBaselines(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	opt := Opt{World: w}
	baselines := []Policy{
		EdgeCPU{World: w},
		&EdgeBest{World: w},
		CloudAll{World: w},
		&ConnectedEdge{World: w},
	}
	for _, m := range dnn.Zoo() {
		c := strongCond()
		optT, optMeas, err := opt.Choose(m, c)
		if err != nil {
			t.Fatal(err)
		}
		_ = optT
		qos := sim.QoSFor(m.Task == dnn.Translation, sim.NonStreaming)
		for _, b := range baselines {
			meas, err := b.Run(m, c)
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name(), m.Name, err)
			}
			exp, err := w.Expected(m, meas.Target, c)
			if err != nil {
				t.Fatal(err)
			}
			// If the baseline satisfies QoS, Opt must not be more
			// expensive (it may instead pick a pricier satisfying
			// target only if the baseline violates QoS).
			if exp.LatencyS <= qos && optMeas.EnergyJ > exp.EnergyJ*1.0001 {
				t.Errorf("%s: %s (%v) beats Opt", m.Name, b.Name(), meas.Target)
			}
		}
	}
}

func TestNeuroSurgeonBERTFullOffload(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &NeuroSurgeon{World: w}
	meas, err := p.Run(dnn.MustByName("MobileBERT"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	// Local BERT is hopeless: the chosen plan lands in the cloud.
	if meas.Target.Location != sim.Cloud {
		t.Errorf("NeuroSurgeon BERT target = %v", meas.Target)
	}
}

func TestNeuroSurgeonLightStaysLocal(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &NeuroSurgeon{World: w}
	meas, err := p.Run(dnn.MustByName("MobileNet v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	// For a light NN the transmission overhead dominates; partitioning
	// keeps most or all of the work local.
	if meas.Breakdown.Compute == 0 && meas.TTXSeconds > 0 {
		t.Logf("NeuroSurgeon chose full offload for MobileNet v1 (target %v)", meas.Target)
	}
	if meas.LatencyS <= 0 {
		t.Fatal("bad measurement")
	}
}

func TestNeuroSurgeonIgnoresVariance(t *testing.T) {
	// The plan is fixed offline: weak signal at runtime hurts it.
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &NeuroSurgeon{World: w}
	m := dnn.MustByName("ResNet 50")
	strong, err := p.Run(m, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	weak, err := p.Run(m, sim.Conditions{RSSIWLAN: -90, RSSIP2P: -55})
	if err != nil {
		t.Fatal(err)
	}
	if strong.Target.Location == sim.Cloud && weak.LatencyS <= strong.LatencyS {
		t.Error("weak signal must hurt the fixed cloud plan")
	}
}

func TestMOSAICCoversAllLayersLocally(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &MOSAIC{World: w}
	for _, name := range []string{"Inception v1", "MobileNet v3", "MobileBERT"} {
		m := dnn.MustByName(name)
		meas, err := p.Run(m, strongCond())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if meas.Target.Location != sim.Local {
			t.Errorf("%s: MOSAIC must stay on-device, got %v", name, meas.Target)
		}
		if meas.Breakdown.Radio != 0 {
			t.Errorf("%s: MOSAIC must not use the radio", name)
		}
	}
}

func TestMOSAICRespectsAccuracy(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &MOSAIC{World: w, Accuracy: 65}
	meas, err := p.Run(dnn.MustByName("Inception v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Accuracy < 65 {
		t.Errorf("MOSAIC delivered accuracy %v under a 65%% target", meas.Accuracy)
	}
}

func TestMOSAICPlanIsCached(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &MOSAIC{World: w}
	m := dnn.MustByName("Inception v1")
	a, err := p.Run(m, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(m, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	// Identical conditions, identical cached plan -> identical outcome.
	if a.Target != b.Target {
		t.Error("MOSAIC plan must be cached per model")
	}
}

func TestPolicyNames(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	names := map[string]Policy{
		"Edge (CPU FP32)": EdgeCPU{World: w},
		"Edge (Best)":     &EdgeBest{World: w},
		"Cloud":           CloudAll{World: w},
		"Connected Edge":  &ConnectedEdge{World: w},
		"Opt":             Opt{World: w},
		"MOSAIC":          &MOSAIC{World: w},
		"NeuroSurgeon":    &NeuroSurgeon{World: w},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("name = %q, want %q", p.Name(), want)
		}
	}
}

func TestEdgeBestFallbackWhenNothingMeetsQoS(t *testing.T) {
	// On the Moto, no local target holds ResNet 50 under 50 ms: EdgeBest
	// must fall back to the fastest local option rather than fail.
	w := sim.NewWorld(soc.MotoXForce(), 1)
	p := &EdgeBest{World: w}
	meas, err := p.Run(dnn.MustByName("ResNet 50"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != sim.Local {
		t.Error("fallback must stay local")
	}
	// Verify it picked the minimum-latency local target.
	plan, err := w.Expected(dnn.MustByName("ResNet 50"), meas.Target, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range w.Targets(dnn.MustByName("ResNet 50")) {
		if tgt.Location != sim.Local {
			continue
		}
		e, err := w.Expected(dnn.MustByName("ResNet 50"), tgt, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if e.LatencyS < plan.LatencyS-1e-12 {
			t.Errorf("faster local target %v exists", tgt)
		}
	}
}

func TestConnectedEdgeAccuracyConstraint(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &ConnectedEdge{World: w, Accuracy: 65}
	meas, err := p.Run(dnn.MustByName("Inception v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Accuracy < 65 {
		t.Errorf("accuracy %v under a 65%% target", meas.Accuracy)
	}
	if meas.Target.Kind == soc.DSP {
		t.Error("the INT8 DSP cannot satisfy 65% for Inception v1")
	}
}

func TestNeuroSurgeonStreamingQoS(t *testing.T) {
	// Streaming tightens the budget; the planner must still produce a plan.
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &NeuroSurgeon{World: w, Intensity: sim.Streaming}
	meas, err := p.Run(dnn.MustByName("SSD MobileNet v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.LatencyS <= 0 {
		t.Fatal("no measurement")
	}
}

func TestMOSAICUsesMultipleEngines(t *testing.T) {
	// Inception v1's CONV body belongs on a co-processor; with the DSP
	// excluded by accuracy, the DP still has CPU and GPU to slice across.
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := &MOSAIC{World: w, Accuracy: 65}
	meas, err := p.Run(dnn.MustByName("Inception v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Accuracy < 65 {
		t.Error("accuracy constraint violated")
	}
}

func TestOptWithExplicitQoS(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	p := Opt{World: w, QoSTarget: 0.010} // very tight: 10 ms
	meas, err := p.Run(dnn.MustByName("MobileNet v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := w.Expected(dnn.MustByName("MobileNet v1"), meas.Target, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if exp.LatencyS > 0.010 {
		t.Errorf("10 ms oracle picked a %v-s target", exp.LatencyS)
	}
}
