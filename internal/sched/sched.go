// Package sched implements the paper's comparison policies: the four fixed
// baselines of Section V-A (Edge CPU FP32, Edge Best, Cloud, Connected
// Edge), the Opt oracle, and the two prior works of Fig 9 — MOSAIC-style
// on-device layer slicing and NeuroSurgeon-style edge–cloud partitioning,
// both of which plan offline with no knowledge of stochastic runtime
// variance (their documented weakness).
package sched

import (
	"fmt"

	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Policy decides and executes one inference request, returning the measured
// outcome. Implementations may keep per-model plans but must not learn from
// runtime variance (only AutoScale does).
type Policy interface {
	// Name is the label used in figures.
	Name() string
	// Run executes one inference of m under conditions c.
	Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error)
}

// ContextPolicy is implemented by policies that thread a request-scoped
// execution context down to the simulator, making every stochastic draw of
// the request a pure function of the context identity. Harnesses should
// prefer RunCtx when available; Run remains for callers without a context.
type ContextPolicy interface {
	Policy
	// RunCtx executes one inference of m under conditions c, drawing all
	// randomness from ctx's named streams. A nil ctx behaves like Run.
	RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error)
}

// noVariance is the conditions offline planners assume.
func noVariance() sim.Conditions {
	return sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
}

// EdgeCPU always runs on the local CPU at FP32, top frequency — the paper's
// primary baseline.
type EdgeCPU struct{ World *sim.World }

// Name implements Policy.
func (EdgeCPU) Name() string { return "Edge (CPU FP32)" }

// Run implements Policy.
func (p EdgeCPU) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements ContextPolicy.
func (p EdgeCPU) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	cpu := p.World.Device.Processor(soc.CPU)
	if cpu == nil {
		return sim.Measurement{}, fmt.Errorf("sched: device has no CPU")
	}
	t := sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	return p.World.ExecuteCtx(ctx, m, t, c)
}

// EdgeBest runs each model on the most energy-efficient on-device target,
// chosen offline per model under no-variance conditions subject to the QoS
// and accuracy constraints (the paper's Edge (Best) baseline).
type EdgeBest struct {
	World     *sim.World
	QoSTarget float64 // seconds; 0 derives from the model's task
	Accuracy  float64 // percent; 0 disables
	Intensity sim.Intensity

	plans map[string]sim.Target
}

// Name implements Policy.
func (*EdgeBest) Name() string { return "Edge (Best)" }

// Run implements Policy.
func (p *EdgeBest) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements ContextPolicy.
func (p *EdgeBest) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	t, err := p.plan(m)
	if err != nil {
		return sim.Measurement{}, err
	}
	return p.World.ExecuteCtx(ctx, m, t, c)
}

func (p *EdgeBest) qos(m *dnn.Model) float64 {
	if p.QoSTarget > 0 {
		return p.QoSTarget
	}
	return sim.QoSFor(m.Task == dnn.Translation, p.Intensity)
}

func (p *EdgeBest) plan(m *dnn.Model) (sim.Target, error) {
	if p.plans == nil {
		p.plans = make(map[string]sim.Target)
	}
	if t, ok := p.plans[m.Name]; ok {
		return t, nil
	}
	qos := p.qos(m)
	cond := noVariance()
	var best sim.Target
	bestE := -1.0
	var fastest sim.Target
	fastestLat := -1.0
	for _, t := range p.World.Targets(m) {
		if t.Location != sim.Local {
			continue
		}
		meas, err := p.World.Expected(m, t, cond)
		if err != nil {
			return sim.Target{}, err
		}
		if p.Accuracy > 0 && meas.Accuracy < p.Accuracy {
			continue
		}
		if fastestLat < 0 || meas.LatencyS < fastestLat {
			fastest, fastestLat = t, meas.LatencyS
		}
		if meas.LatencyS > qos {
			continue
		}
		if bestE < 0 || meas.EnergyJ < bestE {
			best, bestE = t, meas.EnergyJ
		}
	}
	if bestE < 0 {
		if fastestLat < 0 {
			return sim.Target{}, fmt.Errorf("sched: no local target for %s", m.Name)
		}
		best = fastest // nothing meets QoS: run the fastest local option
	}
	p.plans[m.Name] = best
	return best, nil
}

// CloudAll always offloads to the cloud, using the server GPU when it can
// run the model (the paper's Cloud baseline).
type CloudAll struct{ World *sim.World }

// Name implements Policy.
func (CloudAll) Name() string { return "Cloud" }

// Run implements Policy.
func (p CloudAll) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements ContextPolicy.
func (p CloudAll) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	t := sim.Target{Location: sim.Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	if !p.World.Feasible(m, t) {
		t = sim.Target{Location: sim.Cloud, Kind: soc.CPU, Prec: dnn.FP32}
	}
	return p.World.ExecuteCtx(ctx, m, t, c)
}

// ConnectedEdge always offloads to the locally connected device, on its most
// energy-efficient engine chosen offline per model (the paper's Connected
// Edge baseline).
type ConnectedEdge struct {
	World     *sim.World
	QoSTarget float64
	Accuracy  float64
	Intensity sim.Intensity

	plans map[string]sim.Target
}

// Name implements Policy.
func (*ConnectedEdge) Name() string { return "Connected Edge" }

// Run implements Policy.
func (p *ConnectedEdge) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements ContextPolicy.
func (p *ConnectedEdge) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	if p.plans == nil {
		p.plans = make(map[string]sim.Target)
	}
	t, ok := p.plans[m.Name]
	if !ok {
		qos := p.QoSTarget
		if qos == 0 {
			qos = sim.QoSFor(m.Task == dnn.Translation, p.Intensity)
		}
		cond := noVariance()
		bestE := -1.0
		var fallback sim.Target
		fbLat := -1.0
		found := false
		for _, cand := range p.World.Targets(m) {
			if cand.Location != sim.Connected {
				continue
			}
			meas, err := p.World.Expected(m, cand, cond)
			if err != nil {
				return sim.Measurement{}, err
			}
			if p.Accuracy > 0 && meas.Accuracy < p.Accuracy {
				continue
			}
			if fbLat < 0 || meas.LatencyS < fbLat {
				fallback, fbLat = cand, meas.LatencyS
			}
			if meas.LatencyS > qos {
				continue
			}
			if bestE < 0 || meas.EnergyJ < bestE {
				t, bestE = cand, meas.EnergyJ
				found = true
			}
		}
		if !found {
			if fbLat < 0 {
				return sim.Measurement{}, fmt.Errorf("sched: no connected target for %s", m.Name)
			}
			t = fallback
		}
		p.plans[m.Name] = t
	}
	return p.World.ExecuteCtx(ctx, m, t, c)
}

// Opt is the oracular design: for every request it exhaustively evaluates
// the whole action space under the *actual* current conditions and runs the
// most energy-efficient target satisfying the QoS and accuracy constraints
// (Section V-A footnote 8).
type Opt struct {
	World     *sim.World
	QoSTarget float64
	Accuracy  float64
	Intensity sim.Intensity
	// AvoidDown makes the oracle fault-aware: when the world carries a
	// scripted fault injector and the policy runs with a context, targets
	// whose site is inside an outage window at the request's virtual time
	// are excluded and conditions reflect any active RSSI ramp. An oracle
	// that plans into a known outage isn't an oracle.
	AvoidDown bool
}

// Name implements Policy.
func (Opt) Name() string { return "Opt" }

// Run implements Policy.
func (p Opt) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements ContextPolicy.
func (p Opt) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	var (
		t   sim.Target
		err error
	)
	if p.AvoidDown && ctx != nil {
		t, _, err = p.ChooseAt(ctx.Now(), m, c)
	} else {
		t, _, err = p.Choose(m, c)
	}
	if err != nil {
		return sim.Measurement{}, err
	}
	return p.World.ExecuteCtx(ctx, m, t, c)
}

// Choose returns the oracle's target and its expected measurement.
func (p Opt) Choose(m *dnn.Model, c sim.Conditions) (sim.Target, sim.Measurement, error) {
	return p.World.BestTarget(m, c, p.qos(m), p.Accuracy)
}

// ChooseAt is Choose evaluated at virtual time now: scripted RSSI ramps
// degrade the planning conditions and targets at sites inside an outage
// window are excluded from the search.
func (p Opt) ChooseAt(now float64, m *dnn.Model, c sim.Conditions) (sim.Target, sim.Measurement, error) {
	return p.World.BestTargetAt(now, m, c, p.qos(m), p.Accuracy)
}

func (p Opt) qos(m *dnn.Model) float64 {
	if p.QoSTarget > 0 {
		return p.QoSTarget
	}
	return sim.QoSFor(m.Task == dnn.Translation, p.Intensity)
}
