package sched

import (
	"fmt"

	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// NeuroSurgeon emulates Kang et al. (ASPLOS'17): per model it selects one
// edge–cloud partition point — run a layer prefix on the phone, ship the
// intermediate activation, finish on the server — using latency/energy
// predictions made under *no-variance* conditions (the regression models of
// the original work are trained offline). The plan is fixed per model, so
// on-device interference and signal-strength swings at runtime hit it
// unmitigated, which is exactly the weakness Fig 9 of the paper exposes.
type NeuroSurgeon struct {
	World     *sim.World
	QoSTarget float64
	Accuracy  float64
	Intensity sim.Intensity

	plans map[string]nsPlan
}

type nsPlan struct {
	cut   int
	local sim.Target
}

// Name implements Policy.
func (*NeuroSurgeon) Name() string { return "NeuroSurgeon" }

// Run implements Policy.
func (p *NeuroSurgeon) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements ContextPolicy.
func (p *NeuroSurgeon) RunCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	plan, err := p.plan(m)
	if err != nil {
		return sim.Measurement{}, err
	}
	if plan.cut == len(m.Layers) {
		return p.World.ExecuteCtx(ctx, m, plan.local, c)
	}
	return p.World.Partitioned(m, plan.cut, plan.local, sim.Cloud, c)
}

func (p *NeuroSurgeon) qos(m *dnn.Model) float64 {
	if p.QoSTarget > 0 {
		return p.QoSTarget
	}
	return sim.QoSFor(m.Task == dnn.Translation, p.Intensity)
}

// plan sweeps every partition point under no-variance conditions and keeps
// the most energy-efficient cut satisfying QoS (fallback: minimum latency).
func (p *NeuroSurgeon) plan(m *dnn.Model) (nsPlan, error) {
	if p.plans == nil {
		p.plans = make(map[string]nsPlan)
	}
	if pl, ok := p.plans[m.Name]; ok {
		return pl, nil
	}
	cond := noVariance()
	qos := p.qos(m)
	local := p.bestLocalEngine(m)

	var (
		best    nsPlan
		bestE   = -1.0
		fastest nsPlan
		fastLat = -1.0
	)
	for cut := 0; cut <= len(m.Layers); cut++ {
		var meas sim.Measurement
		var err error
		if cut == len(m.Layers) {
			if !p.World.Feasible(m, local) {
				continue
			}
			meas, err = p.World.Expected(m, local, cond)
		} else {
			meas, err = p.World.Partitioned(m, cut, local, sim.Cloud, cond)
		}
		if err != nil {
			continue // e.g. RC layers in the local prefix
		}
		if p.Accuracy > 0 && meas.Accuracy < p.Accuracy {
			continue
		}
		if fastLat < 0 || meas.LatencyS < fastLat {
			fastest, fastLat = nsPlan{cut: cut, local: local}, meas.LatencyS
		}
		if meas.LatencyS > qos {
			continue
		}
		if bestE < 0 || meas.EnergyJ < bestE {
			best, bestE = nsPlan{cut: cut, local: local}, meas.EnergyJ
		}
	}
	if bestE < 0 {
		if fastLat < 0 {
			return nsPlan{}, fmt.Errorf("sched: neurosurgeon found no plan for %s", m.Name)
		}
		best = fastest
	}
	p.plans[m.Name] = best
	return best, nil
}

// bestLocalEngine picks the engine NeuroSurgeon runs the local prefix on:
// the GPU when the device has one that can hold the model's prefix types,
// otherwise the CPU, always at FP32 and top frequency (the original system
// does not co-optimize DVFS or quantization).
func (p *NeuroSurgeon) bestLocalEngine(m *dnn.Model) sim.Target {
	if gpu := p.World.Device.Processor(soc.GPU); gpu != nil && !m.HasRC() {
		return sim.Target{Location: sim.Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP32}
	}
	cpu := p.World.Device.Processor(soc.CPU)
	return sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
}

// MOSAIC emulates Han et al. (PACT'19): heterogeneity- and communication-
// aware slicing of the model across the *on-device* engines. Per model it
// solves a small dynamic program assigning each layer to a local engine so
// as to minimize predicted energy including context-switch costs — again
// with predictions made under no-variance conditions, and with no offload
// path, so heavy networks and runtime variance both hurt it (Fig 9 shows
// AutoScale 1.9x ahead on average).
type MOSAIC struct {
	World     *sim.World
	QoSTarget float64
	Accuracy  float64
	Intensity sim.Intensity

	plans map[string][]sim.Slice
}

// Name implements Policy.
func (*MOSAIC) Name() string { return "MOSAIC" }

// Run implements Policy.
func (p *MOSAIC) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	return p.RunCtx(nil, m, c)
}

// RunCtx implements ContextPolicy. The sliced execution plan is evaluated
// on expected values, so the context carries no draws here; implementing
// the interface keeps the harness's request-derivation uniform.
func (p *MOSAIC) RunCtx(_ *exec.Context, m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	plan, err := p.plan(m)
	if err != nil {
		return sim.Measurement{}, err
	}
	return p.World.ExpectedSliced(m, plan, c)
}

// candidate engines for slicing: each local engine at top frequency, FP32
// (or the DSP's INT8) — MOSAIC's published system slices FP32 graphs but is
// quantization-aware per processor; we admit the DSP at INT8 only when the
// accuracy constraint allows.
func (p *MOSAIC) candidates(m *dnn.Model) []sim.Target {
	var out []sim.Target
	for _, proc := range p.World.Device.Processors {
		prec := dnn.FP32
		if proc.Kind == soc.DSP {
			prec = dnn.INT8
			if p.Accuracy > 0 && m.Accuracy(prec) < p.Accuracy {
				continue
			}
		}
		if !proc.SupportsPrecision(prec) {
			continue
		}
		out = append(out, sim.Target{Location: sim.Local, Kind: proc.Kind, Step: proc.Steps - 1, Prec: prec})
	}
	return out
}

// plan runs the assignment DP under no-variance conditions.
func (p *MOSAIC) plan(m *dnn.Model) ([]sim.Slice, error) {
	if p.plans == nil {
		p.plans = make(map[string][]sim.Slice)
	}
	if pl, ok := p.plans[m.Name]; ok {
		return pl, nil
	}
	cands := p.candidates(m)
	if len(cands) == 0 {
		return nil, fmt.Errorf("sched: mosaic has no engine for %s", m.Name)
	}
	cond := noVariance()

	// Per-layer energy on each candidate engine (no-variance predictions).
	n := len(m.Layers)
	cost := make([][]float64, n)
	feasible := make([][]bool, n)
	for i, l := range m.Layers {
		cost[i] = make([]float64, len(cands))
		feasible[i] = make([]bool, len(cands))
		for j, t := range cands {
			proc := p.World.Device.Processor(t.Kind)
			if l.Type == dnn.RC && !proc.SupportsRC {
				continue
			}
			feasible[i][j] = true
			lat := layerLatencyNoVar(p.World, t, l, cond)
			cost[i][j] = lat * proc.BusyPowerW(t.Step)
		}
	}

	// switchCost[j][k]: energy of a boundary between engines j and k.
	switchCost := func(i, j, k int) float64 {
		if j == k {
			return 0
		}
		proc := p.World.Device.Processor(cands[k].Kind)
		boundary := m.Layers[i-1].ActivationBytes
		lat := 1.5e-3 + boundary/(proc.MemBWGBs*1e9)
		return lat * proc.BusyPowerW(cands[k].Step)
	}

	const inf = 1e300
	dp := make([][]float64, n)
	prev := make([][]int, n)
	for i := range dp {
		dp[i] = make([]float64, len(cands))
		prev[i] = make([]int, len(cands))
		for j := range dp[i] {
			dp[i][j] = inf
			prev[i][j] = -1
		}
	}
	for j := range cands {
		if feasible[0][j] {
			dp[0][j] = cost[0][j]
		}
	}
	for i := 1; i < n; i++ {
		for j := range cands {
			if !feasible[i][j] {
				continue
			}
			for k := range cands {
				if dp[i-1][k] >= inf {
					continue
				}
				v := dp[i-1][k] + switchCost(i, k, j) + cost[i][j]
				if v < dp[i][j] {
					dp[i][j] = v
					prev[i][j] = k
				}
			}
		}
	}
	bestJ := -1
	for j := range cands {
		if dp[n-1][j] < inf && (bestJ < 0 || dp[n-1][j] < dp[n-1][bestJ]) {
			bestJ = j
		}
	}
	if bestJ < 0 {
		return nil, fmt.Errorf("sched: mosaic DP found no feasible plan for %s", m.Name)
	}

	// Backtrack into contiguous slices.
	assign := make([]int, n)
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		assign[i] = j
		if i > 0 {
			j = prev[i][j]
		}
	}
	var slices []sim.Slice
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || assign[i] != assign[start] {
			slices = append(slices, sim.Slice{From: start, To: i, Target: cands[assign[start]]})
			start = i
		}
	}
	p.plans[m.Name] = slices
	return slices, nil
}

// layerLatencyNoVar predicts one layer's latency on a local target with no
// runtime variance, via a single-layer slicing query.
func layerLatencyNoVar(w *sim.World, t sim.Target, l dnn.Layer, cond sim.Conditions) float64 {
	tmp := &dnn.Model{Name: "layer", Task: dnn.ImageClassification, Layers: []dnn.Layer{l}, InputBytes: 1, OutputBytes: 1}
	meas, err := w.ExpectedSliced(tmp, []sim.Slice{{From: 0, To: 1, Target: t}}, cond)
	if err != nil {
		return 0
	}
	return meas.LatencyS
}
