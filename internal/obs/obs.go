// Package obs is the unified telemetry plane: lock-cheap log-linear-bucket
// histograms with mergeable snapshots, phase-span stopwatches stamped on the
// virtual clock, learning-health helpers (visit entropy), and a Prometheus
// text-exposition writer.
//
// The paper's whole argument is distributional — its figures report energy
// and latency behaviour under stochastic variance — so a serving stack that
// can only report counters and means is blind to exactly the effects the
// system exists to manage. This package provides the read-side primitives
// the gateway, the metrics registry and the admin endpoint are built on.
//
// Everything here is observation only: nothing in this package draws random
// numbers, advances clocks, or otherwise perturbs the execution it watches,
// so enabling telemetry cannot change a deterministic replay.
package obs
