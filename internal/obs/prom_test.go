package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestPromCountersGaugesAndEscaping(t *testing.T) {
	var p Prom
	p.Counter("reqs_total", "Requests.", 3, "device", "jetson-tx2")
	p.Counter("reqs_total", "Requests.", 5, "device", `weird"dev\x`)
	p.Gauge("queue_depth", "Depth.", 7)

	got := string(p.Bytes())
	want := strings.Join([]string{
		"# HELP reqs_total Requests.",
		"# TYPE reqs_total counter",
		`reqs_total{device="jetson-tx2"} 3`,
		`reqs_total{device="weird\"dev\\x"} 5`,
		"# HELP queue_depth Depth.",
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	h := NewHistogram(BucketScheme{Min: 0.001, Octaves: 4, Sub: 2})
	for _, v := range []float64{0.0005, 0.0012, 0.0013, 0.006, 100} {
		h.Observe(v)
	}
	var p Prom
	p.Histogram("latency_seconds", "Latency.", h.Snapshot(), "device", "d0")
	lines := strings.Split(strings.TrimSuffix(string(p.Bytes()), "\n"), "\n")

	if lines[0] != "# HELP latency_seconds Latency." || lines[1] != "# TYPE latency_seconds histogram" {
		t.Fatalf("bad header: %q", lines[:2])
	}
	// Buckets must be cumulative and non-decreasing, ending at +Inf == count.
	var prev float64
	var infSeen bool
	for _, ln := range lines[2:] {
		if !strings.HasPrefix(ln, "latency_seconds_bucket{") {
			continue
		}
		v, err := strconv.ParseFloat(ln[strings.LastIndexByte(ln, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", ln, err)
		}
		if v < prev {
			t.Fatalf("cumulative counts decreased at %q", ln)
		}
		prev = v
		if strings.Contains(ln, `le="+Inf"`) {
			infSeen = true
			if v != 5 {
				t.Fatalf("+Inf bucket = %v, want 5", v)
			}
		}
		if !strings.Contains(ln, `device="d0"`) {
			t.Fatalf("label missing on %q", ln)
		}
	}
	if !infSeen {
		t.Fatal("+Inf bucket missing")
	}
	last2 := lines[len(lines)-2:]
	if !strings.HasPrefix(last2[0], `latency_seconds_sum{device="d0"} `) {
		t.Fatalf("sum line = %q", last2[0])
	}
	if last2[1] != `latency_seconds_count{device="d0"} 5` {
		t.Fatalf("count line = %q", last2[1])
	}
	// A second series of the same name must not repeat the header.
	before := bytes.Count(p.Bytes(), []byte("# TYPE latency_seconds histogram"))
	p.Histogram("latency_seconds", "Latency.", h.Snapshot(), "device", "d1")
	after := bytes.Count(p.Bytes(), []byte("# TYPE latency_seconds histogram"))
	if before != 1 || after != 1 {
		t.Fatalf("header emitted %d then %d times", before, after)
	}
}

func TestPromDeterministic(t *testing.T) {
	build := func() []byte {
		var p Prom
		p.Gauge("g", "G.", math.Pi)
		p.Counter("c", "C.", 42, "a", "b")
		return p.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical call sequences produced different bodies")
	}
}

func TestPromWriteTo(t *testing.T) {
	var p Prom
	p.Gauge("g", "G.", 1)
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) || buf.Len() == 0 {
		t.Fatalf("WriteTo = (%d, %v), buf %d bytes", n, err, buf.Len())
	}
}

func TestPromOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list accepted")
		}
	}()
	var p Prom
	p.Gauge("g", "G.", 1, "dangling-key")
}
