package obs

import (
	"math"
	"testing"
)

// fakeClock is a settable clock for span tests.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64 { return c.t }

func TestStopwatchBracketsAndSums(t *testing.T) {
	clk := &fakeClock{}
	w := NewStopwatch(clk.now)

	stop := w.Start(PhaseExecute)
	clk.t = 0.25
	stop()

	stop = w.Start(PhaseRetry)
	clk.t = 0.40
	stop()
	stop = w.Start(PhaseRetry)
	clk.t = 0.55
	stop()

	w.Add(PhaseFailover, 0.1)

	spans := w.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0] != (Span{Phase: PhaseExecute, StartS: 0, EndS: 0.25}) {
		t.Fatalf("execute span = %+v", spans[0])
	}
	if spans[3].Phase != PhaseFailover || math.Abs(spans[3].DurS()-0.1) > 1e-12 || spans[3].EndS != 0.55 {
		t.Fatalf("failover span = %+v", spans[3])
	}

	durs := w.Durations()
	want := map[string]float64{PhaseExecute: 0.25, PhaseRetry: 0.30, PhaseFailover: 0.1}
	if len(durs) != len(want) {
		t.Fatalf("durations = %v, want %v", durs, want)
	}
	for p, d := range want {
		if math.Abs(durs[p]-d) > 1e-12 {
			t.Fatalf("phase %s = %v, want %v", p, durs[p], d)
		}
	}
	if got := SumDurations(durs); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("SumDurations = %v", got)
	}
	if got := SumDurations(durs, PhaseExecute, PhaseRetry); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("SumDurations(execute,retry) = %v", got)
	}
}

func TestStopwatchDropsZeroPhases(t *testing.T) {
	clk := &fakeClock{}
	w := NewStopwatch(clk.now)
	// A zero-width span (clock did not advance) must not leak into the map.
	w.Start(PhaseHedge)()
	if durs := w.Durations(); durs != nil {
		t.Fatalf("zero-width span leaked: %v", durs)
	}
	// And an empty stopwatch reports nil so trace records omit the field.
	if durs := NewStopwatch(clk.now).Durations(); durs != nil {
		t.Fatalf("empty stopwatch reported %v", durs)
	}
}

func TestPhasesCanonicalOrder(t *testing.T) {
	got := Phases()
	want := []string{PhaseQueue, PhaseDecide, PhaseExecute, PhaseRetry, PhaseHedge, PhaseFailover}
	if len(got) != len(want) {
		t.Fatalf("Phases() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Phases()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestEntropy(t *testing.T) {
	if e := Entropy(nil); e != 0 {
		t.Fatalf("Entropy(nil) = %v", e)
	}
	if e := Entropy([]int{5}); e != 0 {
		t.Fatalf("single state entropy = %v", e)
	}
	if e := Entropy([]int{3, 3, 3, 0, -1}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want 1", e)
	}
	skew := Entropy([]int{1000, 1, 1})
	if skew <= 0 || skew >= 0.5 {
		t.Fatalf("skewed entropy = %v, want small positive", skew)
	}
	if m := MaxCount([]int{2, 9, 4}); m != 9 {
		t.Fatalf("MaxCount = %d", m)
	}
	if m := MaxCount(nil); m != 0 {
		t.Fatalf("MaxCount(nil) = %d", m)
	}
}
