package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format served
// on /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Prom accumulates metrics in the Prometheus text exposition format
// (version 0.0.4). Callers add series in the order they should appear —
// the writer emits each metric's # HELP/# TYPE header once, on first use of
// the name — and the output is deterministic for a fixed call sequence, so
// scrape bodies can be compared byte-for-byte in tests.
//
// Labels are passed as alternating key/value strings; an odd trailing key
// is a programming error and panics.
type Prom struct {
	buf    bytes.Buffer
	headed map[string]bool
}

// header emits # HELP/# TYPE for a metric name once.
func (p *Prom) header(name, help, typ string) {
	if p.headed == nil {
		p.headed = make(map[string]bool)
	}
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	fmt.Fprintf(&p.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter appends one counter sample.
func (p *Prom) Counter(name, help string, v float64, labels ...string) {
	p.header(name, help, "counter")
	p.sample(name, "", labels, v)
}

// Gauge appends one gauge sample.
func (p *Prom) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	p.sample(name, "", labels, v)
}

// Histogram appends one histogram series: cumulative _bucket samples with
// le edges (empty buckets are skipped — the cumulative value is unchanged,
// and Prometheus accepts any le subset), the +Inf bucket, _sum and _count.
func (p *Prom) Histogram(name, help string, s HistogramSnapshot, labels ...string) {
	p.header(name, help, "histogram")
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if c == 0 {
			continue
		}
		le := formatFloat(s.Scheme.UpperBound(i))
		p.sample(name+"_bucket", le, labels, float64(cum))
	}
	p.sample(name+"_bucket", "+Inf", labels, float64(s.Count))
	p.sample(name+"_sum", "", labels, s.Sum)
	p.sample(name+"_count", "", labels, float64(s.Count))
}

// sample writes one line: name{labels,le="..."} value.
func (p *Prom) sample(name, le string, labels []string, v float64) {
	if len(labels)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	p.buf.WriteString(name)
	if len(labels) > 0 || le != "" {
		p.buf.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				p.buf.WriteByte(',')
			}
			fmt.Fprintf(&p.buf, `%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		if le != "" {
			if len(labels) > 0 {
				p.buf.WriteByte(',')
			}
			fmt.Fprintf(&p.buf, `le="%s"`, le)
		}
		p.buf.WriteByte('}')
	}
	p.buf.WriteByte(' ')
	p.buf.WriteString(formatFloat(v))
	p.buf.WriteByte('\n')
}

// Bytes returns the accumulated exposition body.
func (p *Prom) Bytes() []byte { return p.buf.Bytes() }

// WriteTo writes the accumulated body to w.
func (p *Prom) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(p.buf.Bytes())
	return int64(n), err
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation, +Inf spelled "+Inf".
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
