package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketSchemeEdges(t *testing.T) {
	b := BucketScheme{Min: 1e-3, Octaves: 4, Sub: 4}
	n := b.Octaves * b.Sub
	if got := b.NumBuckets(); got != n+2 {
		t.Fatalf("NumBuckets = %d, want %d", got, n+2)
	}
	if got := b.Max(); math.Abs(got-16e-3) > 1e-15 {
		t.Fatalf("Max = %v", got)
	}
	// Tails.
	for _, v := range []float64{0, -1, 1e-9, b.Min, math.NaN()} {
		if i := b.Index(v); i != 0 {
			t.Fatalf("Index(%v) = %d, want underflow 0", v, i)
		}
	}
	for _, v := range []float64{b.Max(), b.Max() * 2, math.Inf(1)} {
		if i := b.Index(v); i != n+1 {
			t.Fatalf("Index(%v) = %d, want overflow %d", v, i, n+1)
		}
	}
	// Every in-range value lands in a bucket whose bounds contain it
	// (lower-inclusive), and upper bounds are strictly increasing.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := b.Min * math.Pow(2, rng.Float64()*float64(b.Octaves))
		if v >= b.Max() {
			continue
		}
		idx := b.Index(v)
		if idx < 1 || idx > n {
			t.Fatalf("Index(%v) = %d out of regular range", v, idx)
		}
		lower, upper := b.UpperBound(idx-1), b.UpperBound(idx)
		if v < lower || v >= upper {
			t.Fatalf("v=%v in bucket %d [%v,%v)", v, idx, lower, upper)
		}
	}
	for i := 1; i <= n; i++ {
		if b.UpperBound(i) <= b.UpperBound(i-1) {
			t.Fatalf("bounds not increasing at %d: %v <= %v", i, b.UpperBound(i), b.UpperBound(i-1))
		}
	}
	// Bucket edges are lower-inclusive: an exact edge indexes into the
	// bucket it opens.
	for i := 1; i < n; i++ {
		edge := b.UpperBound(i)
		if got := b.Index(edge); got != i+1 {
			t.Fatalf("Index(edge %v) = %d, want %d", edge, got, i+1)
		}
	}
}

// TestHistogramQuantileBounds is the quantile property test: against an
// exact sort of random samples, the histogram quantile must never
// underestimate and must overestimate by at most the scheme's 1/Sub
// relative bucket width.
func TestHistogramQuantileBounds(t *testing.T) {
	scheme := DefaultScheme()
	slack := 1 + 1/float64(scheme.Sub)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(scheme)
		n := 100 + rng.Intn(2000)
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform across the ladder, away from the tail buckets.
			samples[i] = scheme.Min * math.Pow(2, 0.01+rng.Float64()*(float64(scheme.Octaves)-0.02))
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		s := h.Snapshot()
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			got := s.Quantile(q)
			if got < exact {
				t.Fatalf("seed %d q=%v: histogram %v below exact %v", seed, q, got, exact)
			}
			if got > exact*slack+1e-12 {
				t.Fatalf("seed %d q=%v: histogram %v above exact %v by more than 1/Sub", seed, q, got, exact)
			}
		}
		if s.Max != samples[n-1] || s.Min != samples[0] {
			t.Fatalf("seed %d: extremes [%v,%v], want [%v,%v]", seed, s.Min, s.Max, samples[0], samples[n-1])
		}
		if q := s.Quantile(1.0); q != s.Max {
			t.Fatalf("seed %d: p100 %v != max %v", seed, q, s.Max)
		}
	}
}

// TestHistogramMergeAssociativity is the merge property test: (a+b)+c and
// a+(b+c) must agree exactly on counts/extremes and within float tolerance
// on the sum, and both must equal one histogram that observed everything.
func TestHistogramMergeAssociativity(t *testing.T) {
	scheme := BucketScheme{Min: 1e-3, Octaves: 10, Sub: 4}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		all := NewHistogram(scheme)
		parts := make([]HistogramSnapshot, 3)
		for p := range parts {
			h := NewHistogram(scheme)
			for i, n := 0, rng.Intn(500); i < n; i++ {
				v := scheme.Min * math.Pow(2, rng.Float64()*float64(scheme.Octaves)*1.2) // spills into overflow
				h.Observe(v)
				all.Observe(v)
			}
			parts[p] = h.Snapshot()
		}
		ab, err := parts[0].Merge(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		abc1, err := ab.Merge(parts[2])
		if err != nil {
			t.Fatal(err)
		}
		bc, err := parts[1].Merge(parts[2])
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := parts[0].Merge(bc)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]HistogramSnapshot{{abc1, abc2}, {abc1, all.Snapshot()}} {
			x, y := pair[0], pair[1]
			if x.Count != y.Count || x.Min != y.Min || x.Max != y.Max {
				t.Fatalf("seed %d: merged aggregates differ: %+v vs %+v", seed, x, y)
			}
			for i := range x.Counts {
				if x.Counts[i] != y.Counts[i] {
					t.Fatalf("seed %d bucket %d: %d vs %d", seed, i, x.Counts[i], y.Counts[i])
				}
			}
			if math.Abs(x.Sum-y.Sum) > 1e-9*math.Max(1, math.Abs(x.Sum)) {
				t.Fatalf("seed %d: sums diverge: %v vs %v", seed, x.Sum, y.Sum)
			}
		}
	}
	// Mismatched schemes refuse to merge.
	a := NewHistogram(scheme).Snapshot()
	b := NewHistogram(BucketScheme{Min: 1e-3, Octaves: 10, Sub: 8}).Snapshot()
	if _, err := a.Merge(b); err == nil {
		t.Fatal("mismatched schemes merged")
	}
}

func TestHistogramEmptyAndNaN(t *testing.T) {
	h := NewHistogram(DefaultScheme())
	h.Observe(math.NaN())
	s := h.Snapshot()
	if s.Count != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("NaN polluted the histogram: %+v", s)
	}
}

func TestNewHistogramRejectsBadScheme(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid scheme accepted")
		}
	}()
	NewHistogram(BucketScheme{Min: -1, Octaves: 4, Sub: 4})
}

// TestHistogramConcurrent hammers Observe from many goroutines; with -race
// this is the lock-free hot path's regression test.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultScheme())
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < each; i++ {
				h.Observe(0.001 + rng.Float64())
				_ = h.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("lost observations: %d", s.Count)
	}
	var bucketed int64
	for _, c := range s.Counts {
		bucketed += c
	}
	if bucketed != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketed, s.Count)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultScheme())
	vals := make([]float64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = 1e-4 * math.Pow(2, rng.Float64()*20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i&1023])
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(DefaultScheme())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0017
		for pb.Next() {
			h.Observe(v)
		}
	})
}
