package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// BucketScheme defines a log-linear bucket ladder: Octaves power-of-two
// ranges above Min, each split into Sub linear buckets. Bucket edges are
// exact (Min scaled by powers of two), so the relative quantile error is
// bounded by 1/Sub across the whole range — the same layout HDR histograms
// use, picked here because the bucket index is a pair of float tricks
// (Frexp plus a multiply) instead of a log call on the hot path.
//
// Two extra buckets catch the tails: index 0 holds values below (or at) Min,
// the last index holds values above Max().
type BucketScheme struct {
	// Min is the lower edge of the first log-linear bucket. Must be > 0.
	Min float64 `json:"min"`
	// Octaves is how many power-of-two ranges the ladder spans above Min.
	Octaves int `json:"octaves"`
	// Sub is the number of linear buckets per octave.
	Sub int `json:"sub"`
}

// DefaultScheme spans 1e-4 to ~104 (2^20 octaves) with 8 linear buckets per
// octave — 100 µs to 100 s when observing seconds, 0.1 mJ to 100 J when
// observing joules — with ≤ 12.5% relative quantile error.
func DefaultScheme() BucketScheme { return BucketScheme{Min: 1e-4, Octaves: 20, Sub: 8} }

// valid reports whether the scheme is well-formed.
func (b BucketScheme) valid() bool {
	return b.Min > 0 && !math.IsInf(b.Min, 0) && b.Octaves >= 1 && b.Sub >= 1
}

// Max returns the upper edge of the last log-linear bucket.
func (b BucketScheme) Max() float64 { return math.Ldexp(b.Min, b.Octaves) }

// NumBuckets returns the total bucket count including the two tail buckets.
func (b BucketScheme) NumBuckets() int { return b.Octaves*b.Sub + 2 }

// Index maps a value to its bucket. Buckets are lower-inclusive: bucket i
// covers [UpperBound(i-1), UpperBound(i)).
func (b BucketScheme) Index(v float64) int {
	if !(v > b.Min) { // NaN also lands in the underflow bucket
		return 0
	}
	n := b.Octaves * b.Sub
	if v >= b.Max() {
		return n + 1
	}
	// v/Min in (1, 2^Octaves): Frexp gives f in [0.5,1) with v/Min = f*2^e,
	// so the octave is e-1 and 2f in [1,2) is the position within it.
	f, e := math.Frexp(v / b.Min)
	o := e - 1
	if o < 0 { // v barely above Min with rounding
		return 1
	}
	s := int((2*f - 1) * float64(b.Sub))
	if s >= b.Sub {
		s = b.Sub - 1
	}
	idx := 1 + o*b.Sub + s
	if idx > n {
		idx = n
	}
	return idx
}

// UpperBound returns the exclusive upper edge of bucket i. The underflow
// bucket's bound is Min; the overflow bucket's is +Inf.
func (b BucketScheme) UpperBound(i int) float64 {
	n := b.Octaves * b.Sub
	switch {
	case i <= 0:
		return b.Min
	case i > n:
		return math.Inf(1)
	}
	o := (i - 1) / b.Sub
	s := (i - 1) % b.Sub
	return math.Ldexp(b.Min*(1+(float64(s)+1)/float64(b.Sub)), o)
}

// Histogram is a fixed-scheme log-linear histogram safe for concurrent
// Observe: every field is an atomic, so the hot path never takes a lock.
// A concurrent Snapshot may be mid-observation torn by a few counts; callers
// that need a consistent cut (the metrics registry) serialize observation
// against snapshotting themselves.
type Histogram struct {
	scheme  BucketScheme
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewHistogram builds a histogram over the scheme. It panics on a malformed
// scheme — bucket layout is a compile-time decision, not runtime input.
func NewHistogram(scheme BucketScheme) *Histogram {
	if !scheme.valid() {
		panic(fmt.Sprintf("obs: invalid bucket scheme %+v", scheme))
	}
	h := &Histogram{
		scheme: scheme,
		counts: make([]atomic.Int64, scheme.NumBuckets()),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Scheme returns the bucket layout.
func (h *Histogram) Scheme() BucketScheme { return h.scheme }

// Observe records one value. NaN observations are dropped. The total count
// is bumped last, so a reader that sees count > 0 also sees the min/max set.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[h.scheme.Index(v)].Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
	h.count.Add(1)
}

// Snapshot copies the histogram. See the Histogram doc for the consistency
// contract under concurrent Observe.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Scheme: h.scheme,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time histogram copy. Snapshots with the
// same scheme merge losslessly, so per-shard histograms can be aggregated
// into fleet views.
type HistogramSnapshot struct {
	Scheme BucketScheme `json:"scheme"`
	// Counts has one entry per bucket (NumBuckets, including both tails).
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	// Min and Max are the observed extremes (both zero when Count is 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) as the upper bound of the bucket
// holding it, capped at the observed maximum — so the estimate never
// exceeds any value actually seen, and overflow-bucket quantiles degrade to
// the exact max instead of +Inf. Empty snapshots report 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return math.Min(s.Scheme.UpperBound(i), s.Max)
		}
	}
	return s.Max
}

// Merge returns the union of two snapshots. The schemes must match; counts
// add bucket-wise, so merging is associative and commutative up to
// floating-point addition order in Sum.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if s.Scheme != o.Scheme {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging mismatched schemes %+v vs %+v", s.Scheme, o.Scheme)
	}
	if len(s.Counts) != len(o.Counts) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging %d buckets with %d", len(s.Counts), len(o.Counts))
	}
	out := HistogramSnapshot{
		Scheme: s.Scheme,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	switch {
	case s.Count == 0:
		out.Min, out.Max = o.Min, o.Max
	case o.Count == 0:
		out.Min, out.Max = s.Min, s.Max
	default:
		out.Min, out.Max = math.Min(s.Min, o.Min), math.Max(s.Max, o.Max)
	}
	return out, nil
}

// atomicAddFloat accumulates v into a float64 stored as bits.
func atomicAddFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// atomicMinFloat lowers the stored float to v if v is smaller.
func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises the stored float to v if v is larger.
func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
