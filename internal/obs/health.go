package obs

import "math"

// Entropy returns the normalized Shannon entropy of a visit-count
// distribution, in [0, 1]: 1 when every visited state is visited equally,
// approaching 0 when the visits concentrate on one state. Zero and negative
// counts are ignored; fewer than two visited states yield 0.
//
// It is the learning-health gauge for experience balance: a converging
// agent under stochastic load keeps a high entropy (it still sees the whole
// state space), while a stuck or starved agent's entropy collapses.
func Entropy(counts []int) float64 {
	visited, total := 0, 0
	for _, c := range counts {
		if c > 0 {
			visited++
			total += c
		}
	}
	if visited < 2 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / float64(total)
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(visited))
}

// MaxCount returns the largest count (0 for an empty slice).
func MaxCount(counts []int) int {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}
