package obs

// Canonical request phases of the serving pipeline, in pipeline order:
// admission wait, queue wait, the engine's decision overhead, the executed
// inference, and the optional resilience legs.
const (
	// PhaseQueue is the wait between admission and worker pickup, measured
	// on the gateway clock.
	PhaseQueue = "queue"
	// PhaseDecide is the engine step's scheduling overhead — observe,
	// Q-lookup, bookkeeping — measured in wall time (the simulated inference
	// itself costs no wall time, so the engine call's wall duration IS the
	// decision overhead the paper reports in Section VI-C).
	PhaseDecide = "decide"
	// PhaseExecute is the executed inference (including any in-sim outage
	// timeout), measured on the virtual clock.
	PhaseExecute = "execute"
	// PhaseRetry covers the deadline-budgeted offload retry legs (backoffs
	// plus re-executions), measured on the virtual clock.
	PhaseRetry = "retry"
	// PhaseHedge is the local hedge leg raced against a slow remote,
	// measured on the virtual clock.
	PhaseHedge = "hedge"
	// PhaseFailover is the local re-execution after a QoS miss; its duration
	// is the fallback measurement's latency (the failover runs outside the
	// engine's clocked path).
	PhaseFailover = "failover"
)

// Phase indices for PhaseTotals, in the same pipeline order as Phases().
const (
	PhaseQueueIdx = iota
	PhaseDecideIdx
	PhaseExecuteIdx
	PhaseRetryIdx
	PhaseHedgeIdx
	PhaseFailoverIdx
	// NumPhases is the number of canonical phases.
	NumPhases
)

// phaseNames maps phase index -> canonical name.
var phaseNames = [NumPhases]string{PhaseQueue, PhaseDecide, PhaseExecute, PhaseRetry, PhaseHedge, PhaseFailover}

// PhaseName returns the canonical name of a phase index.
func PhaseName(idx int) string { return phaseNames[idx] }

// Phases returns the canonical phase names in pipeline order.
func Phases() []string {
	return []string{PhaseQueue, PhaseDecide, PhaseExecute, PhaseRetry, PhaseHedge, PhaseFailover}
}

// PhaseTotals accumulates per-phase durations in a fixed array — the
// allocation-free alternative to Stopwatch for hot paths that only need
// per-phase totals, not individual spans. The zero value is ready to use;
// like Stopwatch it belongs to one request and is not safe for concurrent
// use.
type PhaseTotals struct {
	totals [NumPhases]float64
}

// Add accumulates durS seconds into the indexed phase.
func (p *PhaseTotals) Add(idx int, durS float64) { p.totals[idx] += durS }

// Total returns the accumulated seconds of the indexed phase.
func (p PhaseTotals) Total(idx int) float64 { return p.totals[idx] }

// ForEach calls fn for every phase with a non-zero total, in pipeline
// order — the same phase set Durations exposes, without building a map.
func (p PhaseTotals) ForEach(fn func(phase string, durS float64)) {
	for i, d := range p.totals {
		if d != 0 {
			fn(phaseNames[i], d)
		}
	}
}

// Durations materializes the non-zero totals as a map, nil when every
// phase is zero — the same shape and zero-drop semantics as
// Stopwatch.Durations, for the trace's phases field.
func (p PhaseTotals) Durations() map[string]float64 {
	n := 0
	for _, d := range p.totals {
		if d != 0 {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make(map[string]float64, n)
	for i, d := range p.totals {
		if d != 0 {
			out[phaseNames[i]] = d
		}
	}
	return out
}

// Span is one named phase of a request, stamped on a clock (virtual seconds
// for the execution legs).
type Span struct {
	Phase  string  `json:"phase"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
}

// DurS returns the span's duration in seconds.
func (s Span) DurS() float64 { return s.EndS - s.StartS }

// Stopwatch stamps phase spans on a caller-supplied clock — the gateway
// passes the worker engine's virtual clock, so spans are a pure function of
// the deterministic execution and replay byte-identically. It belongs to
// one request and is not safe for concurrent use.
type Stopwatch struct {
	now   func() float64
	spans []Span
}

// NewStopwatch builds a stopwatch over a clock function.
func NewStopwatch(now func() float64) *Stopwatch { return &Stopwatch{now: now} }

// Start opens a span for the phase at the current clock reading and returns
// the function that closes it. Spans may nest or repeat; each Start/stop
// pair appends one span.
func (w *Stopwatch) Start(phase string) (stop func()) {
	start := w.now()
	return func() {
		w.spans = append(w.spans, Span{Phase: phase, StartS: start, EndS: w.now()})
	}
}

// Add appends a span of the given duration ending at the current clock
// reading — for legs whose duration is known from a measurement rather than
// bracketed on the shared clock (e.g. the failover re-execution).
func (w *Stopwatch) Add(phase string, durS float64) {
	end := w.now()
	w.spans = append(w.spans, Span{Phase: phase, StartS: end - durS, EndS: end})
}

// Spans returns the recorded spans in completion order.
func (w *Stopwatch) Spans() []Span { return w.spans }

// Durations sums the recorded spans per phase, dropping phases whose total
// is zero — a request that never retried carries no retry key, keeping the
// trace's phases field compact.
func (w *Stopwatch) Durations() map[string]float64 {
	if len(w.spans) == 0 {
		return nil
	}
	out := make(map[string]float64, len(w.spans))
	for _, s := range w.spans {
		out[s.Phase] += s.DurS()
	}
	for phase, d := range out {
		if d == 0 {
			delete(out, phase)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// SumDurations totals the named phases of a duration map (all phases when
// none are named).
func SumDurations(durs map[string]float64, phases ...string) float64 {
	var total float64
	if len(phases) == 0 {
		for _, d := range durs {
			total += d
		}
		return total
	}
	for _, p := range phases {
		total += durs[p]
	}
	return total
}
