package dnn

import (
	"testing"
	"testing/quick"
)

// tableIII is the paper's exact layer composition (Table III).
var tableIII = []struct {
	name         string
	conv, fc, rc int
	task         Task
}{
	{"Inception v1", 49, 1, 0, ImageClassification},
	{"Inception v3", 94, 1, 0, ImageClassification},
	{"MobileNet v1", 14, 1, 0, ImageClassification},
	{"MobileNet v2", 35, 1, 0, ImageClassification},
	{"MobileNet v3", 23, 20, 0, ImageClassification},
	{"ResNet 50", 53, 1, 0, ImageClassification},
	{"SSD MobileNet v1", 19, 1, 0, ObjectDetection},
	{"SSD MobileNet v2", 52, 1, 0, ObjectDetection},
	{"SSD MobileNet v3", 28, 20, 0, ObjectDetection},
	{"MobileBERT", 0, 1, 24, Translation},
}

func TestZooMatchesTableIII(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 10 {
		t.Fatalf("zoo has %d models, want 10", len(zoo))
	}
	for i, want := range tableIII {
		m := zoo[i]
		if m.Name != want.name {
			t.Fatalf("zoo[%d] = %s, want %s", i, m.Name, want.name)
		}
		if m.NumConv() != want.conv || m.NumFC() != want.fc || m.NumRC() != want.rc {
			t.Errorf("%s layers = %d/%d/%d, want %d/%d/%d",
				m.Name, m.NumConv(), m.NumFC(), m.NumRC(), want.conv, want.fc, want.rc)
		}
		if m.Task != want.task {
			t.Errorf("%s task = %v, want %v", m.Name, m.Task, want.task)
		}
	}
}

func TestZooValidates(t *testing.T) {
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestZooBudgets(t *testing.T) {
	for _, m := range Zoo() {
		if m.MACs() <= 0 {
			t.Errorf("%s has no MACs", m.Name)
		}
		if m.WeightBytes() <= 0 {
			t.Errorf("%s has no weights", m.Name)
		}
		// Per-layer sums must match the totals within float tolerance.
		var macs float64
		for _, l := range m.Layers {
			macs += l.MACs
		}
		if diff := macs - m.MACs(); diff > 1 || diff < -1 {
			t.Errorf("%s MAC sum mismatch", m.Name)
		}
	}
}

func TestMACMagnitudes(t *testing.T) {
	// Spot checks against the published architectures (order of magnitude).
	cases := map[string]struct{ lo, hi float64 }{
		"MobileNet v3": {0.1e9, 0.5e9},
		"Inception v1": {1e9, 2e9},
		"ResNet 50":    {3e9, 5e9},
		"Inception v3": {4e9, 7e9},
		"MobileBERT":   {4e9, 7e9},
	}
	for name, want := range cases {
		m := MustByName(name)
		if got := m.MACs(); got < want.lo || got > want.hi {
			t.Errorf("%s MACs = %.2g, want in [%.2g, %.2g]", name, got, want.lo, want.hi)
		}
	}
}

func TestAccuracyOrdering(t *testing.T) {
	for _, m := range Zoo() {
		fp32 := m.Accuracy(FP32)
		if fp32 <= 0 || fp32 > 100 {
			t.Errorf("%s FP32 accuracy %v out of range", m.Name, fp32)
		}
		for _, p := range []Precision{FP16, INT8} {
			if a := m.Accuracy(p); a > fp32 {
				t.Errorf("%s %v accuracy %v exceeds FP32 %v", m.Name, p, a, fp32)
			}
		}
		// Unknown precision falls back to FP32.
		if m.Accuracy(Precision(99)) != fp32 {
			t.Errorf("%s unknown-precision fallback broken", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("ResNet 50")
	if err != nil || m.Name != "ResNet 50" {
		t.Fatalf("ByName: %v, %v", m, err)
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Error("unknown model should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic on unknown model")
		}
	}()
	MustByName("AlexNet")
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("Names() = %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted at %d", i)
		}
	}
}

func TestLightHeavySplit(t *testing.T) {
	light := LightModels()
	heavy := HeavyModels()
	if len(light)+len(heavy) != 10 {
		t.Fatalf("light %d + heavy %d != 10", len(light), len(heavy))
	}
	for _, m := range light {
		if m.MACs() >= 2000e6 {
			t.Errorf("%s misclassified as light", m.Name)
		}
	}
	for _, m := range heavy {
		if m.MACs() < 2000e6 {
			t.Errorf("%s misclassified as heavy", m.Name)
		}
	}
	// The known heavies must be in the heavy set.
	found := map[string]bool{}
	for _, m := range heavy {
		found[m.Name] = true
	}
	for _, name := range []string{"Inception v3", "ResNet 50", "MobileBERT"} {
		if !found[name] {
			t.Errorf("%s missing from heavy set", name)
		}
	}
}

func TestCountByType(t *testing.T) {
	m := MustByName("MobileNet v3")
	c := m.CountByType()
	if c[Conv] != 23 || c[FC] != 20 {
		t.Errorf("CountByType = %v", c)
	}
	if c[Softmax] != 1 || c[Argmax] != 1 {
		t.Errorf("missing light layers: %v", c)
	}
}

func TestHasRC(t *testing.T) {
	if !MustByName("MobileBERT").HasRC() {
		t.Error("MobileBERT must have RC layers")
	}
	if MustByName("ResNet 50").HasRC() {
		t.Error("ResNet 50 must not have RC layers")
	}
}

func TestPrecisionBytes(t *testing.T) {
	if FP32.BytesPerValue() != 4 || FP16.BytesPerValue() != 2 || INT8.BytesPerValue() != 1 {
		t.Error("precision byte sizes wrong")
	}
}

func TestStringers(t *testing.T) {
	if Conv.String() != "CONV" || FC.String() != "FC" || RC.String() != "RC" {
		t.Error("layer type names wrong")
	}
	if FP32.String() != "FP32" || INT8.String() != "INT8" {
		t.Error("precision names wrong")
	}
	if Translation.String() != "Translation" {
		t.Error("task name wrong")
	}
	if LayerType(99).String() == "" || Precision(99).String() == "" || Task(99).String() == "" {
		t.Error("out-of-range stringers must not be empty")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	good := MustByName("ResNet 50")
	bad := &Model{Name: "", Layers: good.Layers, InputBytes: 1, OutputBytes: 1}
	if bad.Validate() == nil {
		t.Error("nameless model should fail")
	}
	bad = &Model{Name: "x", InputBytes: 1, OutputBytes: 1}
	if bad.Validate() == nil {
		t.Error("layerless model should fail")
	}
	bad = &Model{Name: "x", Layers: []Layer{{Name: "l", MACs: -1}}, InputBytes: 1, OutputBytes: 1}
	if bad.Validate() == nil {
		t.Error("negative MACs should fail")
	}
}

func TestConvRampsProperty(t *testing.T) {
	f := func(rawI, rawN uint8) bool {
		n := int(rawN%100) + 1
		i := int(rawI) % n
		mr := convMACRamp(i, n)
		wr := convWeightRamp(i, n)
		return mr >= 0.5-1e-9 && mr <= 1.5+1e-9 && wr >= 0.5-1e-9 && wr <= 1.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayerFootprintsNonNegative(t *testing.T) {
	for _, m := range Zoo() {
		for _, l := range m.Layers {
			if l.MACs < 0 || l.WeightBytes < 0 || l.ActivationBytes < 0 {
				t.Fatalf("%s layer %s has negative footprint", m.Name, l.Name)
			}
		}
	}
}

func TestNewModel(t *testing.T) {
	layers := []Layer{
		{Name: "conv_0", Type: Conv, MACs: 5e8, WeightBytes: 1e6, ActivationBytes: 2e5},
		{Name: "fc_0", Type: FC, MACs: 2e6, WeightBytes: 4e6, ActivationBytes: 4e3},
	}
	m, err := NewModel("CustomNet", ImageClassification, layers, 150528, 4004,
		map[Precision]float64{FP32: 72.5, INT8: 68.0})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumConv() != 1 || m.NumFC() != 1 {
		t.Error("layer counts wrong")
	}
	if m.Accuracy(INT8) != 68 || m.Accuracy(FP16) != 72.5 {
		t.Error("accuracy map wrong")
	}
	// The constructor copies its inputs.
	layers[0].MACs = 0
	if m.Layers[0].MACs != 5e8 {
		t.Error("layers aliased")
	}
	// Validation failures propagate.
	if _, err := NewModel("", ImageClassification, layers, 1, 1,
		map[Precision]float64{FP32: 70}); err == nil {
		t.Error("nameless model should fail")
	}
	if _, err := NewModel("x", ImageClassification, layers, 1, 1,
		map[Precision]float64{INT8: 70}); err == nil {
		t.Error("missing FP32 accuracy should fail")
	}
}
