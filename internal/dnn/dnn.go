// Package dnn models deep neural networks at the granularity AutoScale
// observes them: a sequence of typed layers with compute (MAC) and memory
// (weight/activation byte) footprints, plus per-precision inference accuracy.
//
// The package ships the ten-network zoo of Table III of the paper with the
// exact CONV/FC/RC layer counts the paper reports; per-layer MAC and byte
// budgets are derived from the published architectures so that the relative
// compute/memory intensity — what the scheduler actually reacts to — matches
// the real networks.
package dnn

import (
	"fmt"
)

// LayerType classifies a network layer (Section II-A of the paper).
type LayerType int

// Layer types. CONV, FC and RC are the compute/memory-intensive types that
// the paper found most correlated with latency and energy; the others are
// lightweight.
const (
	Conv LayerType = iota
	FC
	RC
	Pool
	Norm
	Softmax
	Argmax
	Dropout
)

var layerTypeNames = [...]string{"CONV", "FC", "RC", "POOL", "NORM", "SOFTMAX", "ARGMAX", "DROPOUT"}

// String returns the conventional upper-case layer-type name.
func (t LayerType) String() string {
	if int(t) < len(layerTypeNames) {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Precision is the numeric format an inference executes in. Quantization
// (Section II-B) shrinks both compute and memory intensity at some accuracy
// cost.
type Precision int

// Supported precisions. FP32 is the reference; FP16 is used by mobile GPUs,
// INT8 by mobile CPUs and DSPs.
const (
	FP32 Precision = iota
	FP16
	INT8
)

// String returns the conventional precision name.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case INT8:
		return "INT8"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// BytesPerValue returns the storage size of one scalar in this precision.
func (p Precision) BytesPerValue() float64 {
	switch p {
	case FP16:
		return 2
	case INT8:
		return 1
	default:
		return 4
	}
}

// Task is the application domain a network serves (Table III).
type Task int

// Tasks of the zoo networks.
const (
	ImageClassification Task = iota
	ObjectDetection
	Translation
)

// String returns the task name as used in Table III.
func (t Task) String() string {
	switch t {
	case ImageClassification:
		return "Image Classification"
	case ObjectDetection:
		return "Object Detection"
	case Translation:
		return "Translation"
	}
	return fmt.Sprintf("Task(%d)", int(t))
}

// Layer is one functional layer of a network. MACs counts multiply-accumulate
// operations at FP32; WeightBytes and ActivationBytes are the FP32 parameter
// and output-activation footprints. Precision scaling is applied by the
// performance model, not stored here.
type Layer struct {
	Name            string
	Type            LayerType
	MACs            float64
	WeightBytes     float64
	ActivationBytes float64
}

// Model is an inference workload: an ordered layer list plus the I/O sizes
// that matter for offloading (what must cross the network) and the
// per-precision accuracy table.
type Model struct {
	Name string
	Task Task
	// Layers in execution order.
	Layers []Layer
	// InputBytes is the size of one inference input as transmitted when
	// offloading (e.g. a resized camera frame).
	InputBytes float64
	// OutputBytes is the size of one inference result.
	OutputBytes float64
	// accuracy[p] is the inference accuracy (0..100) at precision p.
	accuracy map[Precision]float64
}

// MACs returns the total multiply-accumulate count of the model.
func (m *Model) MACs() float64 {
	var s float64
	for _, l := range m.Layers {
		s += l.MACs
	}
	return s
}

// WeightBytes returns the total FP32 parameter footprint.
func (m *Model) WeightBytes() float64 {
	var s float64
	for _, l := range m.Layers {
		s += l.WeightBytes
	}
	return s
}

// CountByType returns the number of layers of each type.
func (m *Model) CountByType() map[LayerType]int {
	c := make(map[LayerType]int)
	for _, l := range m.Layers {
		c[l.Type]++
	}
	return c
}

// countOf counts layers of one type without allocating (these sit on the
// per-inference hot path of the scheduler).
func (m *Model) countOf(t LayerType) int {
	n := 0
	for i := range m.Layers {
		if m.Layers[i].Type == t {
			n++
		}
	}
	return n
}

// NumConv, NumFC and NumRC are the SCONV, SFC and SRC state features of
// Table I.
func (m *Model) NumConv() int { return m.countOf(Conv) }

// NumFC returns the number of fully-connected layers.
func (m *Model) NumFC() int { return m.countOf(FC) }

// NumRC returns the number of recurrent layers.
func (m *Model) NumRC() int { return m.countOf(RC) }

// HasRC reports whether the model contains recurrent layers; the mobile
// middleware of the paper (footnote 3) cannot run such models on mobile
// co-processors.
func (m *Model) HasRC() bool {
	for i := range m.Layers {
		if m.Layers[i].Type == RC {
			return true
		}
	}
	return false
}

// Accuracy returns the inference accuracy (percent) at precision p. Unknown
// precisions fall back to the FP32 value.
func (m *Model) Accuracy(p Precision) float64 {
	if a, ok := m.accuracy[p]; ok {
		return a
	}
	return m.accuracy[FP32]
}

// Validate checks structural invariants: a non-empty name and layer list and
// non-negative footprints.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("dnn: model has no name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("dnn: model %s has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if l.MACs < 0 || l.WeightBytes < 0 || l.ActivationBytes < 0 {
			return fmt.Errorf("dnn: model %s layer %d (%s) has negative footprint", m.Name, i, l.Name)
		}
	}
	if m.InputBytes <= 0 || m.OutputBytes <= 0 {
		return fmt.Errorf("dnn: model %s has non-positive I/O size", m.Name)
	}
	if _, ok := m.accuracy[FP32]; !ok {
		return fmt.Errorf("dnn: model %s lacks FP32 accuracy", m.Name)
	}
	return nil
}

// NewModel constructs a custom inference workload for scheduling — the path
// for networks outside the Table III zoo. The accuracy map gives the
// inference accuracy (0..100) per precision and must include FP32; the model
// is validated before being returned.
func NewModel(name string, task Task, layers []Layer, inputBytes, outputBytes float64, accuracy map[Precision]float64) (*Model, error) {
	acc := make(map[Precision]float64, len(accuracy))
	for p, a := range accuracy {
		acc[p] = a
	}
	m := &Model{
		Name:        name,
		Task:        task,
		Layers:      append([]Layer(nil), layers...),
		InputBytes:  inputBytes,
		OutputBytes: outputBytes,
		accuracy:    acc,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
