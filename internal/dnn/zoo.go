package dnn

import (
	"fmt"
	"sort"
)

// spec drives the programmatic construction of a zoo model. Layer counts for
// CONV/FC/RC follow Table III of the paper exactly; MAC and parameter budgets
// follow the published architectures; the share fields control how the
// budgets are distributed across layer types.
type spec struct {
	name    string
	task    Task
	conv    int
	fc      int
	rc      int
	pool    int
	norm    int
	gmacs   float64 // total MACs in units of 1e9
	mparams float64 // total parameters in units of 1e6

	convMACShare float64 // remainder after fc+rc goes to light layers
	fcMACShare   float64
	rcMACShare   float64

	convWeightShare float64 // remainder after fc+rc is spread over light layers
	fcWeightShare   float64
	rcWeightShare   float64

	inputBytes  float64
	outputBytes float64

	acc map[Precision]float64
}

const (
	giga = 1e9
	mega = 1e6
)

// build materializes a Model from the spec: CONV MACs ramp down through the
// network (early layers see high-resolution feature maps), CONV weights ramp
// up (late layers have more channels), FC/RC budgets are spread evenly, and
// the light layers (POOL/NORM/SOFTMAX/ARGMAX) receive the leftover crumbs.
func (s spec) build() *Model {
	m := &Model{
		Name:        s.name,
		Task:        s.task,
		InputBytes:  s.inputBytes,
		OutputBytes: s.outputBytes,
		accuracy:    s.acc,
	}
	totalMACs := s.gmacs * giga
	totalWeights := s.mparams * mega * 4 // FP32 bytes
	lightShare := 1 - s.convMACShare - s.fcMACShare - s.rcMACShare
	// Total activation traffic scales with input size and depth.
	totalActs := s.inputBytes * 3 * float64(1+s.conv/8+s.rc)

	nLight := s.pool + s.norm + 2 // + softmax + argmax
	layers := make([]Layer, 0, s.conv+s.fc+s.rc+nLight)

	// CONV stack with interleaved POOL/NORM.
	if s.conv > 0 {
		var rampSum, wRampSum float64
		for i := 0; i < s.conv; i++ {
			rampSum += convMACRamp(i, s.conv)
			wRampSum += convWeightRamp(i, s.conv)
		}
		poolEvery := 0
		if s.pool > 0 {
			poolEvery = s.conv/s.pool + 1
		}
		normEvery := 0
		if s.norm > 0 {
			normEvery = s.conv/s.norm + 1
		}
		poolsLeft, normsLeft := s.pool, s.norm
		for i := 0; i < s.conv; i++ {
			layers = append(layers, Layer{
				Name:            fmt.Sprintf("conv_%d", i),
				Type:            Conv,
				MACs:            totalMACs * s.convMACShare * convMACRamp(i, s.conv) / rampSum,
				WeightBytes:     totalWeights * s.convWeightShare * convWeightRamp(i, s.conv) / wRampSum,
				ActivationBytes: totalActs * 0.8 * convMACRamp(i, s.conv) / rampSum,
			})
			if poolsLeft > 0 && poolEvery > 0 && (i+1)%poolEvery == 0 {
				layers = append(layers, lightLayer(fmt.Sprintf("pool_%d", s.pool-poolsLeft), Pool, totalMACs, totalActs, lightShare, float64(nLight)))
				poolsLeft--
			}
			if normsLeft > 0 && normEvery > 0 && (i+1)%normEvery == 0 {
				layers = append(layers, lightLayer(fmt.Sprintf("norm_%d", s.norm-normsLeft), Norm, totalMACs, totalActs, lightShare, float64(nLight)))
				normsLeft--
			}
		}
		for ; poolsLeft > 0; poolsLeft-- {
			layers = append(layers, lightLayer(fmt.Sprintf("pool_%d", s.pool-poolsLeft), Pool, totalMACs, totalActs, lightShare, float64(nLight)))
		}
		for ; normsLeft > 0; normsLeft-- {
			layers = append(layers, lightLayer(fmt.Sprintf("norm_%d", s.norm-normsLeft), Norm, totalMACs, totalActs, lightShare, float64(nLight)))
		}
	}

	// Recurrent stack (transformer/LSTM blocks in the paper's taxonomy).
	for i := 0; i < s.rc; i++ {
		layers = append(layers, Layer{
			Name:            fmt.Sprintf("rc_%d", i),
			Type:            RC,
			MACs:            totalMACs * s.rcMACShare / float64(max(1, s.rc)),
			WeightBytes:     totalWeights * s.rcWeightShare / float64(max(1, s.rc)),
			ActivationBytes: totalActs * 0.15 / float64(max(1, s.rc)),
		})
	}

	// Fully-connected stack (classifier head and, for MobileNet v3 /
	// SSD MobileNet v3, the squeeze-and-excitation FCs).
	for i := 0; i < s.fc; i++ {
		layers = append(layers, Layer{
			Name:            fmt.Sprintf("fc_%d", i),
			Type:            FC,
			MACs:            totalMACs * s.fcMACShare / float64(max(1, s.fc)),
			WeightBytes:     totalWeights * s.fcWeightShare / float64(max(1, s.fc)),
			ActivationBytes: totalActs * 0.05 / float64(max(1, s.fc)),
		})
	}

	layers = append(layers,
		lightLayer("softmax", Softmax, totalMACs, totalActs, lightShare, float64(nLight)),
		lightLayer("argmax", Argmax, totalMACs, totalActs, lightShare, float64(nLight)))

	m.Layers = layers
	return m
}

// convMACRamp weights early CONV layers more heavily (high-resolution maps).
func convMACRamp(i, n int) float64 {
	if n == 1 {
		return 1
	}
	return 1.5 - float64(i)/float64(n-1)
}

// convWeightRamp weights late CONV layers more heavily (more channels).
func convWeightRamp(i, n int) float64 {
	if n == 1 {
		return 1
	}
	return 0.5 + float64(i)/float64(n-1)
}

func lightLayer(name string, t LayerType, totalMACs, totalActs, share, n float64) Layer {
	return Layer{
		Name:            name,
		Type:            t,
		MACs:            totalMACs * share / n,
		ActivationBytes: totalActs * 0.02 / n,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

const (
	imgInput224 = 224 * 224 * 3
	imgInput299 = 299 * 299 * 3
	imgInput300 = 300 * 300 * 3
	clsOutput   = 4004 // 1000-way logits + header
	detOutput   = 8192 // boxes + classes + scores
	bertInput   = 1024 // tokenized sentence
	bertOutput  = 512  // translated sentence
)

// zooSpecs lists the ten networks of Table III with their exact CONV/FC/RC
// layer counts and architecture-derived budgets.
var zooSpecs = []spec{
	{
		name: "Inception v1", task: ImageClassification,
		conv: 49, fc: 1, rc: 0, pool: 14, norm: 2,
		gmacs: 1.43, mparams: 6.6,
		convMACShare: 0.96, fcMACShare: 0.001,
		convWeightShare: 0.80, fcWeightShare: 0.19,
		inputBytes: imgInput224, outputBytes: clsOutput,
		acc: map[Precision]float64{FP32: 69.8, FP16: 64.0, INT8: 62.0},
	},
	{
		name: "Inception v3", task: ImageClassification,
		conv: 94, fc: 1, rc: 0, pool: 14, norm: 94 / 8,
		gmacs: 5.71, mparams: 23.8,
		convMACShare: 0.97, fcMACShare: 0.0004,
		convWeightShare: 0.90, fcWeightShare: 0.09,
		inputBytes: imgInput299, outputBytes: clsOutput,
		acc: map[Precision]float64{FP32: 78.0, FP16: 77.6, INT8: 74.0},
	},
	{
		name: "MobileNet v1", task: ImageClassification,
		conv: 14, fc: 1, rc: 0, pool: 1, norm: 14,
		gmacs: 0.57, mparams: 4.2,
		convMACShare: 0.94, fcMACShare: 0.002,
		convWeightShare: 0.72, fcWeightShare: 0.26,
		inputBytes: imgInput224, outputBytes: clsOutput,
		acc: map[Precision]float64{FP32: 70.9, FP16: 70.5, INT8: 65.5},
	},
	{
		name: "MobileNet v2", task: ImageClassification,
		conv: 35, fc: 1, rc: 0, pool: 1, norm: 35 / 2,
		gmacs: 0.30, mparams: 3.5,
		convMACShare: 0.93, fcMACShare: 0.004,
		convWeightShare: 0.60, fcWeightShare: 0.38,
		inputBytes: imgInput224, outputBytes: clsOutput,
		acc: map[Precision]float64{FP32: 71.8, FP16: 71.4, INT8: 66.0},
	},
	{
		name: "MobileNet v3", task: ImageClassification,
		conv: 23, fc: 20, rc: 0, pool: 1, norm: 12,
		gmacs: 0.22, mparams: 5.4,
		// The 20 squeeze-and-excitation/classifier FCs carry a real share
		// of the compute: this is what makes MobileNet v3 CPU-friendly
		// (Fig 3 of the paper).
		convMACShare: 0.70, fcMACShare: 0.26,
		convWeightShare: 0.40, fcWeightShare: 0.58,
		inputBytes: imgInput224, outputBytes: clsOutput,
		acc: map[Precision]float64{FP32: 67.4, FP16: 63.0, INT8: 58.0},
	},
	{
		name: "ResNet 50", task: ImageClassification,
		conv: 53, fc: 1, rc: 0, pool: 2, norm: 53,
		gmacs: 4.10, mparams: 25.5,
		convMACShare: 0.97, fcMACShare: 0.0005,
		convWeightShare: 0.91, fcWeightShare: 0.08,
		inputBytes: imgInput224, outputBytes: clsOutput,
		acc: map[Precision]float64{FP32: 76.1, FP16: 75.9, INT8: 74.5},
	},
	{
		name: "SSD MobileNet v1", task: ObjectDetection,
		conv: 19, fc: 1, rc: 0, pool: 1, norm: 19 / 2,
		gmacs: 1.20, mparams: 6.8,
		convMACShare: 0.95, fcMACShare: 0.002,
		convWeightShare: 0.76, fcWeightShare: 0.22,
		inputBytes: imgInput300, outputBytes: detOutput,
		acc: map[Precision]float64{FP32: 65.0, FP16: 64.6, INT8: 60.0},
	},
	{
		name: "SSD MobileNet v2", task: ObjectDetection,
		conv: 52, fc: 1, rc: 0, pool: 1, norm: 52 / 2,
		gmacs: 1.60, mparams: 4.5,
		convMACShare: 0.95, fcMACShare: 0.003,
		convWeightShare: 0.64, fcWeightShare: 0.34,
		inputBytes: imgInput300, outputBytes: detOutput,
		acc: map[Precision]float64{FP32: 67.0, FP16: 66.6, INT8: 61.5},
	},
	{
		name: "SSD MobileNet v3", task: ObjectDetection,
		conv: 28, fc: 20, rc: 0, pool: 1, norm: 14,
		gmacs: 1.02, mparams: 7.0,
		convMACShare: 0.72, fcMACShare: 0.24,
		convWeightShare: 0.42, fcWeightShare: 0.56,
		inputBytes: imgInput300, outputBytes: detOutput,
		acc: map[Precision]float64{FP32: 66.0, FP16: 62.5, INT8: 57.0},
	},
	{
		name: "MobileBERT", task: Translation,
		conv: 0, fc: 1, rc: 24, pool: 0, norm: 24,
		gmacs: 5.30, mparams: 25.3,
		fcMACShare: 0.01, rcMACShare: 0.96,
		fcWeightShare: 0.10, rcWeightShare: 0.88,
		inputBytes: bertInput, outputBytes: bertOutput,
		acc: map[Precision]float64{FP32: 90.0, FP16: 89.6, INT8: 84.0},
	},
}

var (
	zoo    []*Model
	byName map[string]*Model
)

func init() {
	byName = make(map[string]*Model, len(zooSpecs))
	for _, s := range zooSpecs {
		m := s.build()
		if err := m.Validate(); err != nil {
			panic(err)
		}
		zoo = append(zoo, m)
		byName[m.Name] = m
	}
}

// Zoo returns the ten networks of Table III in the paper's order. The
// returned slice is fresh but the models are shared; callers must not mutate
// them.
func Zoo() []*Model { return append([]*Model(nil), zoo...) }

// ByName looks up a zoo model by its Table III name.
func ByName(name string) (*Model, error) {
	if m, ok := byName[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("dnn: unknown model %q", name)
}

// MustByName is ByName for static names; it panics on unknown names.
func MustByName(name string) *Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns the zoo model names in sorted order.
func Names() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LightModels returns the zoo models whose total MACs are below the paper's
// "medium" threshold boundary used for SMAC (2000M MACs); these are the
// networks for which edge inference tends to win (Section III-A).
func LightModels() []*Model {
	var out []*Model
	for _, m := range zoo {
		if m.MACs() < 2000*mega {
			out = append(out, m)
		}
	}
	return out
}

// HeavyModels returns the zoo models at or above 2000M MACs.
func HeavyModels() []*Model {
	var out []*Model
	for _, m := range zoo {
		if m.MACs() >= 2000*mega {
			out = append(out, m)
		}
	}
	return out
}
