package rl

import (
	"encoding/json"
	"testing"
)

func TestVisitCountsAndRowsAreCopies(t *testing.T) {
	ag := newTestAgent(t, 2)
	ag.SelectAction("a", nil)
	ag.SelectAction("a", nil)
	ag.Update("a", 0, 3, "a", nil)

	visits := ag.VisitCounts()
	if visits["a"] != 2 || len(visits) != 1 {
		t.Fatalf("VisitCounts = %v", visits)
	}
	if ag.TotalVisits() != 2 {
		t.Fatalf("TotalVisits = %d, want 2", ag.TotalVisits())
	}
	rows := ag.Rows()
	if len(rows) != 1 || len(rows["a"]) != 2 {
		t.Fatalf("Rows = %v", rows)
	}
	// Mutating the copies must not reach the agent.
	visits["a"] = 99
	rows["a"][0] = -1e9
	if ag.Visits("a") != 2 || ag.Q("a", 0) == -1e9 {
		t.Fatal("accessor returned aliased internals")
	}
}

// TestRestoreLegacySnapshot: snapshots written before visit counts existed
// (no "visits" key) restore with one visit per materialized state, so
// visit-weighted federation still counts them as minimal experience.
func TestRestoreLegacySnapshot(t *testing.T) {
	legacy, err := json.Marshal(map[string]any{
		"config":  DefaultConfig(),
		"actions": 2,
		"q":       map[string][]float64{"s1": {1, 2}, "s2": {3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := Restore(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Visits("s1") != 1 || ag.Visits("s2") != 1 || ag.TotalVisits() != 2 {
		t.Fatalf("legacy restore visits: s1=%d s2=%d", ag.Visits("s1"), ag.Visits("s2"))
	}
	if ag.Q("s2", 1) != 4 {
		t.Fatalf("legacy restore Q(s2,1) = %v", ag.Q("s2", 1))
	}
}

func TestRestoreRejectsNegativeVisits(t *testing.T) {
	data, err := json.Marshal(map[string]any{
		"config":  DefaultConfig(),
		"actions": 1,
		"q":       map[string][]float64{"s": {1}},
		"visits":  map[string]int{"s": -3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(data); err == nil {
		t.Fatal("negative visit count restored silently")
	}
}

func TestNewAgentFromTable(t *testing.T) {
	cfg := DefaultConfig()
	ag, err := NewAgentFromTable(cfg, 2,
		map[State][]float64{"s1": {1, 2}, "s2": {3, 4}},
		map[State]int{"s1": 7})
	if err != nil {
		t.Fatal(err)
	}
	if ag.Q("s1", 1) != 2 || ag.Q("s2", 0) != 3 {
		t.Fatal("table rows not installed")
	}
	// Explicit visits kept; missing visits default to one.
	if ag.Visits("s1") != 7 || ag.Visits("s2") != 1 {
		t.Fatalf("visits: s1=%d s2=%d", ag.Visits("s1"), ag.Visits("s2"))
	}
	// Rows are copied in, not aliased.
	src := map[State][]float64{"s": {5}}
	ag2, err := NewAgentFromTable(cfg, 1, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	src["s"][0] = -1
	if ag2.Q("s", 0) != 5 {
		t.Fatal("constructor aliased the caller's rows")
	}

	if _, err := NewAgentFromTable(cfg, 2, map[State][]float64{"s": {1}}, nil); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := NewAgentFromTable(cfg, 1, map[State][]float64{"s": {1}},
		map[State]int{"s": -1}); err == nil {
		t.Fatal("negative visits accepted")
	}
}
