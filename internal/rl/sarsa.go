package rl

import (
	"errors"
	"fmt"
	"math"
)

// SarsaAgent is an on-policy TD(0) alternative to the Q-learning Agent. The
// paper weighs Q-learning against TD-learning and deep RL (Section IV,
// [14],[70],[79]) and picks Q-learning for its lookup-table latency; SARSA
// shares the table representation (and thus the overhead) but bootstraps
// from the action the policy *actually* takes next instead of the greedy
// maximum:
//
//	Q(S,A) <- Q(S,A) + gamma [ R + mu Q(S',A') - Q(S,A) ]
//
// It exists so the design choice can be evaluated empirically (see the
// ablation benches); it reuses the Agent's table, exploration, persistence
// and transfer machinery via embedding.
type SarsaAgent struct {
	*Agent
}

// NewSarsaAgent creates an on-policy agent over a fixed-size action space.
func NewSarsaAgent(cfg Config, numActions int) (*SarsaAgent, error) {
	ag, err := NewAgent(cfg, numActions)
	if err != nil {
		return nil, err
	}
	return &SarsaAgent{Agent: ag}, nil
}

// NewSarsaAgentInterned creates an on-policy agent whose state indices come
// from a fixed base interner (see NewAgentInterned).
func NewSarsaAgentInterned(cfg Config, numActions int, base Interner) (*SarsaAgent, error) {
	ag, err := NewAgentInterned(cfg, numActions, base)
	if err != nil {
		return nil, err
	}
	return &SarsaAgent{Agent: ag}, nil
}

// UpdateSarsa applies the SARSA rule using nextAction — the action the
// policy selected in the next state. Frozen agents ignore updates.
func (a *SarsaAgent) UpdateSarsa(s State, action int, reward float64, next State, nextAction int) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if a.frozen.Load() {
		return nil
	}
	return a.updateSarsaLocked(a.internLocked(s), action, reward, a.internLocked(next), nextAction)
}

// UpdateSarsaIdx is UpdateSarsa over dense state indices (the engine's hot
// path).
func (a *SarsaAgent) UpdateSarsaIdx(si int32, action int, reward float64, ni int32, nextAction int) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if a.frozen.Load() {
		return nil
	}
	if _, err := a.tableForLocked(si); err != nil {
		return err
	}
	if _, err := a.tableForLocked(ni); err != nil {
		return err
	}
	return a.updateSarsaLocked(si, action, reward, ni, nextAction)
}

func (a *SarsaAgent) updateSarsaLocked(si int32, action int, reward float64, ni int32, nextAction int) error {
	if action < 0 || action >= a.actions {
		return fmt.Errorf("rl: action %d out of range", action)
	}
	if nextAction < 0 || nextAction >= a.actions {
		return fmt.Errorf("rl: next action %d out of range", nextAction)
	}
	t := a.tab.Load()
	a.ensureRowLocked(t, ni)
	nextQ := loadQ(t, ni, nextAction)
	a.ensureRowLocked(t, si)
	cell := &t.q[int(si)*t.actions+action]
	q := math.Float64frombits(cell.Load())
	delta := reward + a.cfg.Discount*nextQ - q
	a.noteTDLocked(delta)
	cell.Store(math.Float64bits(q + a.cfg.LearningRate*delta))
	return nil
}

// Update implements the off-policy signature by bootstrapping from the
// greedy next action restricted to nextMask — allowing a SarsaAgent to stand
// in anywhere an Agent is used. For the true on-policy rule use UpdateSarsa.
func (a *SarsaAgent) Update(s State, action int, reward float64, next State, nextMask []bool) error {
	return a.Agent.Update(s, action, reward, next, nextMask)
}

// ErrNotSarsa is returned when a SARSA-only operation is invoked on a plain
// Q-learning agent.
var ErrNotSarsa = errors.New("rl: agent is not a SARSA agent")
