// Package rl implements the tabular Q-learning algorithm AutoScale is built
// on (Algorithm 1 of the paper): a lazily materialized Q-table over discrete
// states, epsilon-greedy action selection, the standard one-step Q update,
// snapshot/restore for persistence, and table transfer for the paper's
// learning-transfer experiments (Section VI-C).
package rl

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"autoscale/internal/exec"
)

// State is a discrete state key. The core package composes it from the
// Table I feature bins.
type State string

// Config holds the Q-learning hyperparameters.
type Config struct {
	// LearningRate is gamma in the paper's update rule (how much new
	// information overrides old). The paper selects 0.9.
	LearningRate float64
	// Discount is mu, the weight of future reward. The paper selects 0.1:
	// consecutive inference states are weakly related under stochastic
	// variance.
	Discount float64
	// Epsilon is the exploration probability of the epsilon-greedy
	// policy. The paper uses 0.1.
	Epsilon float64
	// InitLo/InitHi bound the random initialization of Q rows
	// ("Initialize Q(S,A) as random values").
	InitLo, InitHi float64
	// Seed drives exploration and initialization.
	Seed int64
}

// DefaultConfig returns the paper's hyperparameters (Section V-C).
func DefaultConfig() Config {
	return Config{
		LearningRate: 0.9,
		Discount:     0.1,
		Epsilon:      0.1,
		InitLo:       -1,
		InitHi:       1,
		Seed:         1,
	}
}

// Validate checks hyperparameter ranges.
func (c Config) Validate() error {
	switch {
	case c.LearningRate <= 0 || c.LearningRate > 1:
		return errors.New("rl: learning rate must be in (0,1]")
	case c.Discount < 0 || c.Discount >= 1:
		return errors.New("rl: discount must be in [0,1)")
	case c.Epsilon < 0 || c.Epsilon > 1:
		return errors.New("rl: epsilon must be in [0,1]")
	case c.InitLo > c.InitHi:
		return errors.New("rl: InitLo above InitHi")
	}
	return nil
}

// Agent is a tabular Q-learning agent. It is safe for concurrent use.
type Agent struct {
	mu      sync.Mutex
	cfg     Config
	actions int
	q       map[State][]float64
	visits  map[State]int
	rng     *exec.Rand
	frozen  bool

	// Learning-health counters, sampled read-only by the telemetry plane.
	// They are deliberately excluded from Snapshot: they describe this
	// process's learning dynamics, not the policy, so checkpoint envelopes
	// stay byte-compatible.
	tdEMA      float64 // EMA of |TD error|, alpha 1/16
	tdSamples  int64
	selections int64 // SelectAction calls that returned an action
	explores   int64 // of those, how many took the epsilon branch
}

// tdAlpha is the smoothing factor of the TD-error EMA: 1/16 averages over
// roughly the last 16 updates — long enough to smooth per-request reward
// noise, short enough to show convergence stalls within a scrape interval.
const tdAlpha = 1.0 / 16

// NewAgent creates an agent over a fixed-size action space.
func NewAgent(cfg Config, numActions int) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numActions < 1 {
		return nil, errors.New("rl: need at least one action")
	}
	return &Agent{
		cfg:     cfg,
		actions: numActions,
		q:       make(map[State][]float64),
		visits:  make(map[State]int),
		rng:     exec.NewRoot(cfg.Seed).Stream("rl.agent"),
	}, nil
}

// NumActions returns the size of the action space.
func (a *Agent) NumActions() int { return a.actions }

// Config returns the agent's hyperparameters.
func (a *Agent) Config() Config { return a.cfg }

// Freeze disables exploration and learning: SelectAction becomes purely
// greedy and Update becomes a no-op. This is the paper's post-convergence
// exploitation mode.
func (a *Agent) Freeze() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.frozen = true
}

// SetEpsilon changes the exploration probability at runtime. AutoScale uses
// this to switch a converged agent to greedy selection ("after the learning
// is complete, the Q-table is used to select A which maximizes Q(S,A)",
// Section IV-B) while leaving online learning active so the agent keeps
// adapting to never-seen states.
func (a *Agent) SetEpsilon(eps float64) error {
	if eps < 0 || eps > 1 {
		return errors.New("rl: epsilon must be in [0,1]")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg.Epsilon = eps
	return nil
}

// Epsilon returns the current exploration probability (which SetEpsilon may
// change at runtime).
func (a *Agent) Epsilon() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.Epsilon
}

// Frozen reports whether the agent is in exploitation-only mode.
func (a *Agent) Frozen() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.frozen
}

// row returns the Q row for s, materializing it with random values on first
// touch. Caller must hold the lock.
func (a *Agent) row(s State) []float64 {
	r, ok := a.q[s]
	if !ok {
		r = make([]float64, a.actions)
		span := a.cfg.InitHi - a.cfg.InitLo
		for i := range r {
			r[i] = a.cfg.InitLo + span*a.rng.Float64()
		}
		a.q[s] = r
	}
	return r
}

// SelectAction chooses an action for state s with the epsilon-greedy policy
// over the actions enabled in mask. A nil mask enables every action. It
// returns an error if the mask disables everything.
func (a *Agent) SelectAction(s State, mask []bool) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	enabled := enabledActions(mask, a.actions)
	if len(enabled) == 0 {
		return 0, errors.New("rl: no enabled action")
	}
	a.visits[s]++
	a.selections++
	a.row(s) // materialize so a visited state exists even when exploring
	if !a.frozen && a.rng.Float64() < a.cfg.Epsilon {
		a.explores++
		return enabled[a.rng.Intn(len(enabled))], nil
	}
	return a.argmaxLocked(s, enabled), nil
}

// BestAction returns the greedy action for s over the enabled actions.
func (a *Agent) BestAction(s State, mask []bool) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	enabled := enabledActions(mask, a.actions)
	if len(enabled) == 0 {
		return 0, errors.New("rl: no enabled action")
	}
	return a.argmaxLocked(s, enabled), nil
}

func (a *Agent) argmaxLocked(s State, enabled []int) int {
	r := a.row(s)
	best := enabled[0]
	for _, i := range enabled[1:] {
		if r[i] > r[best] {
			best = i
		}
	}
	return best
}

func enabledActions(mask []bool, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if mask == nil || (i < len(mask) && mask[i]) {
			out = append(out, i)
		}
	}
	return out
}

// Update applies the one-step Q-learning rule of Algorithm 1:
//
//	Q(S,A) <- Q(S,A) + gamma [ R + mu max_A' Q(S',A') - Q(S,A) ]
//
// nextMask restricts which next-state actions are considered (feasibility of
// the next request's model). Frozen agents ignore updates.
func (a *Agent) Update(s State, action int, reward float64, next State, nextMask []bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.frozen {
		return nil
	}
	if action < 0 || action >= a.actions {
		return fmt.Errorf("rl: action %d out of range", action)
	}
	enabled := enabledActions(nextMask, a.actions)
	var nextBest float64
	if len(enabled) > 0 {
		nr := a.row(next)
		nextBest = nr[enabled[0]]
		for _, i := range enabled[1:] {
			if nr[i] > nextBest {
				nextBest = nr[i]
			}
		}
	}
	r := a.row(s)
	delta := reward + a.cfg.Discount*nextBest - r[action]
	a.noteTDLocked(delta)
	r[action] += a.cfg.LearningRate * delta
	return nil
}

// noteTDLocked folds one TD error into the health EMA. Caller holds the lock.
func (a *Agent) noteTDLocked(delta float64) {
	if delta < 0 {
		delta = -delta
	}
	if a.tdSamples == 0 {
		a.tdEMA = delta
	} else {
		a.tdEMA += tdAlpha * (delta - a.tdEMA)
	}
	a.tdSamples++
}

// TDErrorEMA returns the exponential moving average of the absolute TD error
// and how many updates fed it. A shrinking EMA is the paper's convergence
// signal ("the error rate is gradually decreasing", Section VI-A) made
// observable at runtime; zero samples means the agent has never learned.
func (a *Agent) TDErrorEMA() (ema float64, samples int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tdEMA, a.tdSamples
}

// ExplorationStats returns how many SelectAction calls took the epsilon
// (exploration) branch out of the total. The ratio should track epsilon for
// a healthy unfrozen agent and fall to zero once frozen.
func (a *Agent) ExplorationStats() (explores, selections int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.explores, a.selections
}

// NumStates returns how many Q rows are materialized — the numerator of the
// state-space coverage gauge.
func (a *Agent) NumStates() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.q)
}

// HasState reports whether state s has a materialized Q row.
func (a *Agent) HasState(s State) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.q[s]
	return ok
}

// CopyRow initializes dst's Q row as a copy of src's current row. It is the
// generalization hook AutoScale uses to seed a never-visited state from its
// nearest trained neighbour (the "energy trend knowledge" the paper says a
// trained model carries implicitly). Copying from a missing src materializes
// it first (random init).
func (a *Agent) CopyRow(dst, src State) {
	a.mu.Lock()
	defer a.mu.Unlock()
	srcRow := a.row(src)
	a.q[dst] = append([]float64(nil), srcRow...)
}

// Q returns the current Q value of (s, action); untouched states return
// their lazily initialized values.
func (a *Agent) Q(s State, action int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if action < 0 || action >= a.actions {
		return 0
	}
	return a.row(s)[action]
}

// States returns the visited/materialized states in sorted order.
func (a *Agent) States() []State {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]State, 0, len(a.q))
	for s := range a.q {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Visits returns how many times s was selected against.
func (a *Agent) Visits(s State) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.visits[s]
}

// VisitCounts returns a copy of the per-state visit counts — the experience
// weights the policy plane uses when federating Q-tables across a fleet.
func (a *Agent) VisitCounts() map[State]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[State]int, len(a.visits))
	for s, n := range a.visits {
		out[s] = n
	}
	return out
}

// TotalVisits returns the total number of action selections across all
// states — zero means the agent has never been asked for a decision, which
// the fleet syncer treats as "new device, warm-start me".
func (a *Agent) TotalVisits() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, n := range a.visits {
		total += n
	}
	return total
}

// Rows returns a deep copy of the materialized Q-table.
func (a *Agent) Rows() map[State][]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[State][]float64, len(a.q))
	for s, row := range a.q {
		out[s] = append([]float64(nil), row...)
	}
	return out
}

// MemoryBytes estimates the Q-table's resident footprint: one float64 per
// (materialized state, action) pair plus key overhead. The paper reports
// 0.4 MB for its full table.
func (a *Agent) MemoryBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for s := range a.q {
		total += len(s) + 8*a.actions
	}
	return total
}

// snapshot is the serialized agent state.
type snapshot struct {
	Config  Config              `json:"config"`
	Actions int                 `json:"actions"`
	Q       map[State][]float64 `json:"q"`
	Visits  map[State]int       `json:"visits"`
}

// Snapshot serializes the agent (Q-table, visit counts, config) to JSON.
func (a *Agent) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return json.Marshal(snapshot{Config: a.cfg, Actions: a.actions, Q: a.q, Visits: a.visits})
}

// Restore creates an agent from a Snapshot payload. Snapshots written before
// visit counts existed restore with every materialized state credited one
// visit, so downstream visit-weighted federation still counts the table as
// (minimal) experience instead of discarding it.
func Restore(data []byte) (*Agent, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("rl: restore: %w", err)
	}
	ag, err := NewAgent(snap.Config, snap.Actions)
	if err != nil {
		return nil, err
	}
	for s, row := range snap.Q {
		if len(row) != snap.Actions {
			return nil, fmt.Errorf("rl: restore: state %q has %d actions, want %d", s, len(row), snap.Actions)
		}
		ag.q[s] = row
	}
	switch {
	case snap.Visits == nil:
		// Backward compat: pre-visit-count snapshot.
		for s := range ag.q {
			ag.visits[s] = 1
		}
	default:
		for s, n := range snap.Visits {
			if n < 0 {
				return nil, fmt.Errorf("rl: restore: state %q has negative visit count %d", s, n)
			}
		}
		ag.visits = snap.Visits
	}
	return ag, nil
}

// NewAgentFromTable builds an agent directly from a Q-table and its visit
// counts — the constructor the policy plane uses to materialize a federated
// (merged) table as a live agent. Rows must all span the action space; nil
// visits defaults every row to one visit.
func NewAgentFromTable(cfg Config, actions int, q map[State][]float64, visits map[State]int) (*Agent, error) {
	ag, err := NewAgent(cfg, actions)
	if err != nil {
		return nil, err
	}
	for s, row := range q {
		if len(row) != actions {
			return nil, fmt.Errorf("rl: table: state %q has %d actions, want %d", s, len(row), actions)
		}
		ag.q[s] = append([]float64(nil), row...)
	}
	for s := range ag.q {
		n, ok := visits[s]
		switch {
		case !ok:
			ag.visits[s] = 1
		case n < 0:
			return nil, fmt.Errorf("rl: table: state %q has negative visit count %d", s, n)
		default:
			ag.visits[s] = n
		}
	}
	return ag, nil
}

// TransferFrom warm-starts this agent's Q-table from a donor trained on
// another device (the paper's learning transfer): every donor row is copied
// in, overwriting local initialization, while this agent keeps its own
// hyperparameters and exploration state. The action spaces must match; use
// ImportMapped when they do not.
func (a *Agent) TransferFrom(donor *Agent) error {
	if donor == nil {
		return errors.New("rl: nil donor")
	}
	if donor.actions != a.actions {
		return fmt.Errorf("rl: transfer: action spaces differ (%d vs %d)", donor.actions, a.actions)
	}
	identity := make([]int, a.actions)
	for i := range identity {
		identity[i] = i
	}
	return a.ImportMapped(donor, identity)
}

// ImportMapped warm-starts this agent from a donor whose action space
// differs: srcForDst[i] names the donor action whose Q value seeds this
// agent's action i (-1 keeps the local initialization). This is how
// AutoScale transfers a model between devices with different DVFS ladders
// and co-processor sets (Section VI-C).
func (a *Agent) ImportMapped(donor *Agent, srcForDst []int) error {
	if donor == nil {
		return errors.New("rl: nil donor")
	}
	if len(srcForDst) != a.actions {
		return fmt.Errorf("rl: mapping has %d entries, want %d", len(srcForDst), a.actions)
	}
	donor.mu.Lock()
	donorQ := make(map[State][]float64, len(donor.q))
	for s, row := range donor.q {
		donorQ[s] = append([]float64(nil), row...)
	}
	donorActions := donor.actions
	donor.mu.Unlock()
	for _, src := range srcForDst {
		if src >= donorActions {
			return fmt.Errorf("rl: mapping refers to donor action %d of %d", src, donorActions)
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	for s, donorRow := range donorQ {
		row := a.row(s)
		for i, src := range srcForDst {
			if src >= 0 {
				row[i] = donorRow[src]
			}
		}
	}
	return nil
}
