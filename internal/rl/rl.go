// Package rl implements the tabular Q-learning algorithm AutoScale is built
// on (Algorithm 1 of the paper): a lazily materialized Q-table over discrete
// states, epsilon-greedy action selection, the standard one-step Q update,
// snapshot/restore for persistence, and table transfer for the paper's
// learning-transfer experiments (Section VI-C).
//
// Hot-path representation (DESIGN.md §14): the table is a flat
// [states*actions] array of float64 bit patterns stored in atomic.Uint64
// cells, published through an atomic.Pointer. States are dense int32 indices
// minted by an Interner (the core StateSpace's mixed-radix grid plus a
// dynamic overflow for alien keys); string keys survive only at the
// snapshot/checkpoint boundary, where they are re-rendered so envelopes stay
// byte-compatible with the map-based format. Reads (greedy selection, Q
// lookups, HasState) are lock-free and allocation-free once a row is
// materialized; every write — RNG draws, row materialization, Q updates,
// interning, growth — funnels through one writer mutex (the single-writer
// rule), so readers can never observe a torn row: values are stored before
// the row's ready flag, and per-cell loads are atomic.
package rl

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"autoscale/internal/exec"
)

// State is a discrete state key. The core package composes it from the
// Table I feature bins.
type State string

// Config holds the Q-learning hyperparameters.
type Config struct {
	// LearningRate is gamma in the paper's update rule (how much new
	// information overrides old). The paper selects 0.9.
	LearningRate float64
	// Discount is mu, the weight of future reward. The paper selects 0.1:
	// consecutive inference states are weakly related under stochastic
	// variance.
	Discount float64
	// Epsilon is the exploration probability of the epsilon-greedy
	// policy. The paper uses 0.1.
	Epsilon float64
	// InitLo/InitHi bound the random initialization of Q rows
	// ("Initialize Q(S,A) as random values").
	InitLo, InitHi float64
	// Seed drives exploration and initialization.
	Seed int64
}

// DefaultConfig returns the paper's hyperparameters (Section V-C).
func DefaultConfig() Config {
	return Config{
		LearningRate: 0.9,
		Discount:     0.1,
		Epsilon:      0.1,
		InitLo:       -1,
		InitHi:       1,
		Seed:         1,
	}
}

// Validate checks hyperparameter ranges.
func (c Config) Validate() error {
	switch {
	case c.LearningRate <= 0 || c.LearningRate > 1:
		return errors.New("rl: learning rate must be in (0,1]")
	case c.Discount < 0 || c.Discount >= 1:
		return errors.New("rl: discount must be in [0,1)")
	case c.Epsilon < 0 || c.Epsilon > 1:
		return errors.New("rl: epsilon must be in [0,1]")
	case c.InitLo > c.InitHi:
		return errors.New("rl: InitLo above InitHi")
	}
	return nil
}

// Per-state flag bits in table.flags. flagRow gates every lock-free row
// read: it is set (atomically, after the row's values) only once the row is
// fully materialized, so observing it implies the values are visible.
// flagVisit marks states carrying a visit-count entry — including restored
// zero-count entries, which must round-trip through snapshots.
const (
	flagRow   uint32 = 1 << 0
	flagVisit uint32 = 1 << 1
)

// table is one RCU-published generation of the dense Q storage. Cells hold
// float64 bit patterns; growth (dynamic interners only) copies into a larger
// table and republishes, so a reader holding the old generation still sees a
// consistent (if momentarily stale) snapshot.
type table struct {
	actions int
	states  int
	q       []atomic.Uint64 // states*actions float64 bits, row-major
	flags   []atomic.Uint32
	visits  []atomic.Int64
}

func newTable(actions, states int) *table {
	return &table{
		actions: actions,
		states:  states,
		q:       make([]atomic.Uint64, states*actions),
		flags:   make([]atomic.Uint32, states),
		visits:  make([]atomic.Int64, states),
	}
}

// Agent is a tabular Q-learning agent. It is safe for concurrent use:
// greedy reads are lock-free against the published table, and all mutation
// serializes on the writer lock.
type Agent struct {
	cfg     Config // Epsilon herein is the initial value; live value in epsBits
	actions int

	tab    atomic.Pointer[table]
	intern intern

	// wmu is the single-writer lock: everything that draws from rng,
	// materializes rows, writes Q values, interns overflow keys or grows
	// the table holds it. Readers never do.
	wmu sync.Mutex
	rng *exec.Rand

	epsBits      atomic.Uint64 // float64 bits of the live epsilon
	frozen       atomic.Bool
	materialized atomic.Int64

	// Learning-health counters, sampled read-only by the telemetry plane.
	// They are deliberately excluded from Snapshot: they describe this
	// process's learning dynamics, not the policy, so checkpoint envelopes
	// stay byte-compatible.
	tdEMABits  atomic.Uint64 // EMA of |TD error|, alpha 1/16
	tdSamples  atomic.Int64
	selections atomic.Int64 // SelectAction calls that returned an action
	explores   atomic.Int64 // of those, how many took the epsilon branch
}

// tdAlpha is the smoothing factor of the TD-error EMA: 1/16 averages over
// roughly the last 16 updates — long enough to smooth per-request reward
// noise, short enough to show convergence stalls within a scrape interval.
const tdAlpha = 1.0 / 16

// NewAgent creates an agent over a fixed-size action space with a fully
// dynamic state interner (states get indices in first-touch order).
func NewAgent(cfg Config, numActions int) (*Agent, error) {
	return newAgent(cfg, numActions, nil)
}

// NewAgentInterned creates an agent whose state indices come from a fixed
// base interner — the engine passes its StateSpace so the whole decide path
// runs on arithmetic indices. Keys outside the base grid (foreign checkpoint
// states) still work through the dynamic overflow.
func NewAgentInterned(cfg Config, numActions int, base Interner) (*Agent, error) {
	return newAgent(cfg, numActions, base)
}

func newAgent(cfg Config, numActions int, base Interner) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numActions < 1 {
		return nil, errors.New("rl: need at least one action")
	}
	a := &Agent{
		cfg:     cfg,
		actions: numActions,
		rng:     exec.NewRoot(cfg.Seed).Stream("rl.agent"),
	}
	a.intern.base = base
	a.epsBits.Store(math.Float64bits(cfg.Epsilon))
	// The base grid is pre-sized so base indices never trigger growth; the
	// zeroed cells are untouched pages until rows materialize.
	a.tab.Store(newTable(numActions, a.intern.baseSize()))
	return a, nil
}

// NumActions returns the size of the action space.
func (a *Agent) NumActions() int { return a.actions }

// Config returns the agent's hyperparameters (with the live epsilon).
func (a *Agent) Config() Config {
	c := a.cfg
	c.Epsilon = math.Float64frombits(a.epsBits.Load())
	return c
}

// Freeze disables exploration and learning: SelectAction becomes purely
// greedy and Update becomes a no-op. This is the paper's post-convergence
// exploitation mode.
func (a *Agent) Freeze() { a.frozen.Store(true) }

// SetEpsilon changes the exploration probability at runtime. AutoScale uses
// this to switch a converged agent to greedy selection ("after the learning
// is complete, the Q-table is used to select A which maximizes Q(S,A)",
// Section IV-B) while leaving online learning active so the agent keeps
// adapting to never-seen states.
func (a *Agent) SetEpsilon(eps float64) error {
	if eps < 0 || eps > 1 {
		return errors.New("rl: epsilon must be in [0,1]")
	}
	a.epsBits.Store(math.Float64bits(eps))
	return nil
}

// Epsilon returns the current exploration probability (which SetEpsilon may
// change at runtime).
func (a *Agent) Epsilon() float64 { return math.Float64frombits(a.epsBits.Load()) }

// Frozen reports whether the agent is in exploitation-only mode.
func (a *Agent) Frozen() bool { return a.frozen.Load() }

// StateIndex resolves a key to its dense index without interning it; ok is
// false for keys the agent has never seen and cannot represent in its base
// grid.
func (a *Agent) StateIndex(s State) (int32, bool) { return a.intern.lookup(s) }

// KeyOf renders the string key of a dense state index.
func (a *Agent) KeyOf(i int32) State { return a.intern.keyOf(i) }

// internLocked resolves or mints the index for s. Caller holds wmu.
func (a *Agent) internLocked(s State) int32 {
	if i, ok := a.intern.lookup(s); ok {
		return i
	}
	i := a.intern.add(s)
	a.growToLocked(int(i) + 1)
	return i
}

// growToLocked republishes a table with capacity >= states. Caller holds wmu.
func (a *Agent) growToLocked(states int) *table {
	t := a.tab.Load()
	if t.states >= states {
		return t
	}
	n := t.states * 2
	if n < 16 {
		n = 16
	}
	if n < states {
		n = states
	}
	nt := newTable(a.actions, n)
	for i := 0; i < t.states*t.actions; i++ {
		nt.q[i].Store(t.q[i].Load())
	}
	for i := 0; i < t.states; i++ {
		nt.flags[i].Store(t.flags[i].Load())
		nt.visits[i].Store(t.visits[i].Load())
	}
	a.tab.Store(nt)
	return nt
}

// tableForLocked validates an externally supplied index and returns a table
// covering it. Caller holds wmu.
func (a *Agent) tableForLocked(i int32) (*table, error) {
	if i < 0 || int(i) >= a.intern.count() {
		return nil, fmt.Errorf("rl: state index %d out of range", i)
	}
	return a.growToLocked(int(i) + 1), nil
}

// ensureRowLocked materializes row i with random values on first touch —
// the same draw sequence (one Float64 per action, in action order) as the
// historical map-backed table, so fixed-seed runs replay identically.
// Values are stored before flagRow, which readers acquire-load to gate the
// lock-free fast path. Caller holds wmu.
func (a *Agent) ensureRowLocked(t *table, i int32) {
	if t.flags[i].Load()&flagRow != 0 {
		return
	}
	row := t.q[int(i)*t.actions : (int(i)+1)*t.actions]
	span := a.cfg.InitHi - a.cfg.InitLo
	for j := range row {
		row[j].Store(math.Float64bits(a.cfg.InitLo + span*a.rng.Float64()))
	}
	t.flags[i].Or(flagRow)
	a.materialized.Add(1)
}

// installRowLocked writes explicit values into row i without consuming any
// randomness (restore/copy paths). Caller holds wmu.
func (a *Agent) installRowLocked(t *table, i int32, values []float64) {
	row := t.q[int(i)*t.actions : (int(i)+1)*t.actions]
	for j, v := range values {
		row[j].Store(math.Float64bits(v))
	}
	if t.flags[i].Load()&flagRow == 0 {
		t.flags[i].Or(flagRow)
		a.materialized.Add(1)
	}
}

func actionEnabled(mask []bool, j int) bool {
	return mask == nil || (j < len(mask) && mask[j])
}

func countEnabled(mask []bool, n int) int {
	if mask == nil {
		return n
	}
	c := 0
	for j := 0; j < n; j++ {
		if j < len(mask) && mask[j] {
			c++
		}
	}
	return c
}

// nthEnabled returns the index of the k-th (0-based) enabled action.
func nthEnabled(mask []bool, n, k int) int {
	for j := 0; j < n; j++ {
		if actionEnabled(mask, j) {
			if k == 0 {
				return j
			}
			k--
		}
	}
	return 0
}

func loadQ(t *table, i int32, j int) float64 {
	return math.Float64frombits(t.q[int(i)*t.actions+j].Load())
}

// argmaxRow returns the first-enabled argmax of row i (strict > keeps the
// historical first-wins tie-break). Returns -1 when mask disables everything.
func argmaxRow(t *table, i int32, mask []bool) int {
	best := -1
	var bestQ float64
	for j := 0; j < t.actions; j++ {
		if !actionEnabled(mask, j) {
			continue
		}
		q := loadQ(t, i, j)
		if best < 0 || q > bestQ {
			best, bestQ = j, q
		}
	}
	return best
}

// maxRowQ returns the max Q of row i over enabled actions. Caller guarantees
// at least one enabled action.
func maxRowQ(t *table, i int32, mask []bool) float64 {
	first := true
	var best float64
	for j := 0; j < t.actions; j++ {
		if !actionEnabled(mask, j) {
			continue
		}
		q := loadQ(t, i, j)
		if first || q > best {
			best, first = q, false
		}
	}
	return best
}

var errNoEnabled = errors.New("rl: no enabled action")

// SelectAction chooses an action for state s with the epsilon-greedy policy
// over the actions enabled in mask. A nil mask enables every action. It
// returns an error if the mask disables everything.
func (a *Agent) SelectAction(s State, mask []bool) (int, error) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return a.selectLocked(a.internLocked(s), mask)
}

// SelectActionIdx is SelectAction over a dense state index — the engine's
// hot path. It allocates nothing; the epsilon-greedy draw serializes on the
// writer lock because it advances the agent's RNG.
func (a *Agent) SelectActionIdx(i int32, mask []bool) (int, error) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if _, err := a.tableForLocked(i); err != nil {
		return 0, err
	}
	return a.selectLocked(i, mask)
}

func (a *Agent) selectLocked(i int32, mask []bool) (int, error) {
	n := countEnabled(mask, a.actions)
	if n == 0 {
		return 0, errNoEnabled
	}
	t := a.tab.Load()
	t.visits[i].Add(1)
	t.flags[i].Or(flagVisit)
	a.selections.Add(1)
	a.ensureRowLocked(t, i) // materialize so a visited state exists even when exploring
	if !a.frozen.Load() && a.rng.Float64() < math.Float64frombits(a.epsBits.Load()) {
		a.explores.Add(1)
		return nthEnabled(mask, a.actions, a.rng.Intn(n)), nil
	}
	return argmaxRow(t, i, mask), nil
}

// SelectProv captures why one epsilon-greedy selection chose its action:
// the epsilon in force, whether the agent was frozen, whether the draw
// explored, and the per-action Q-row from the published RCU snapshot. The
// Q slice is truncated and refilled in place so a caller-owned SelectProv
// is allocation-free in steady state.
type SelectProv struct {
	Epsilon  float64
	Frozen   bool
	Explored bool
	Q        []float64
}

// SelectActionProvIdx is SelectActionIdx with decision-provenance capture.
// It mirrors selectLocked draw for draw — the same ensureRowLocked init
// draws, the same epsilon comparison, the same exploration Intn — so a run
// that swaps it in for SelectActionIdx replays byte-identically. p must be
// non-nil.
func (a *Agent) SelectActionProvIdx(i int32, mask []bool, p *SelectProv) (int, error) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if _, err := a.tableForLocked(i); err != nil {
		return 0, err
	}
	n := countEnabled(mask, a.actions)
	if n == 0 {
		return 0, errNoEnabled
	}
	t := a.tab.Load()
	t.visits[i].Add(1)
	t.flags[i].Or(flagVisit)
	a.selections.Add(1)
	a.ensureRowLocked(t, i)
	p.Epsilon = math.Float64frombits(a.epsBits.Load())
	p.Frozen = a.frozen.Load()
	p.Explored = false
	var idx int
	if !p.Frozen && a.rng.Float64() < p.Epsilon {
		a.explores.Add(1)
		p.Explored = true
		idx = nthEnabled(mask, a.actions, a.rng.Intn(n))
	} else {
		idx = argmaxRow(t, i, mask)
	}
	p.Q = p.Q[:0]
	for j := 0; j < a.actions; j++ {
		p.Q = append(p.Q, loadQ(t, i, j))
	}
	return idx, nil
}

// BestAction returns the greedy action for s over the enabled actions.
func (a *Agent) BestAction(s State, mask []bool) (int, error) {
	if i, ok := a.intern.lookup(s); ok {
		if t := a.tab.Load(); int(i) < t.states && t.flags[i].Load()&flagRow != 0 {
			if best := argmaxRow(t, i, mask); best >= 0 {
				return best, nil
			}
			return 0, errNoEnabled
		}
	}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return a.bestLocked(a.internLocked(s), mask)
}

// BestActionIdx is the lock-free greedy read the serving fast path uses: for
// a materialized state it reads the published table with zero locks and zero
// allocations. Never-seen states fall to the writer path, which materializes
// the row (consuming the same init draws the map-backed table did).
func (a *Agent) BestActionIdx(i int32, mask []bool) (int, error) {
	if t := a.tab.Load(); i >= 0 && int(i) < t.states && t.flags[i].Load()&flagRow != 0 {
		if best := argmaxRow(t, i, mask); best >= 0 {
			return best, nil
		}
		return 0, errNoEnabled
	}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if _, err := a.tableForLocked(i); err != nil {
		return 0, err
	}
	return a.bestLocked(i, mask)
}

func (a *Agent) bestLocked(i int32, mask []bool) (int, error) {
	if countEnabled(mask, a.actions) == 0 {
		return 0, errNoEnabled
	}
	t := a.tab.Load()
	a.ensureRowLocked(t, i)
	return argmaxRow(t, i, mask), nil
}

// Update applies the one-step Q-learning rule of Algorithm 1:
//
//	Q(S,A) <- Q(S,A) + gamma [ R + mu max_A' Q(S',A') - Q(S,A) ]
//
// nextMask restricts which next-state actions are considered (feasibility of
// the next request's model). Frozen agents ignore updates.
func (a *Agent) Update(s State, action int, reward float64, next State, nextMask []bool) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if a.frozen.Load() {
		return nil
	}
	return a.updateLocked(a.internLocked(s), action, reward, a.internLocked(next), nextMask)
}

// UpdateIdx is Update over dense state indices (the engine's deferred-update
// hot path).
func (a *Agent) UpdateIdx(si int32, action int, reward float64, ni int32, nextMask []bool) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if a.frozen.Load() {
		return nil
	}
	if _, err := a.tableForLocked(si); err != nil {
		return err
	}
	if _, err := a.tableForLocked(ni); err != nil {
		return err
	}
	return a.updateLocked(si, action, reward, ni, nextMask)
}

func (a *Agent) updateLocked(si int32, action int, reward float64, ni int32, nextMask []bool) error {
	if action < 0 || action >= a.actions {
		return fmt.Errorf("rl: action %d out of range", action)
	}
	t := a.tab.Load()
	var nextBest float64
	if countEnabled(nextMask, a.actions) > 0 {
		a.ensureRowLocked(t, ni)
		nextBest = maxRowQ(t, ni, nextMask)
	}
	a.ensureRowLocked(t, si)
	cell := &t.q[int(si)*t.actions+action]
	q := math.Float64frombits(cell.Load())
	delta := reward + a.cfg.Discount*nextBest - q
	a.noteTDLocked(delta)
	cell.Store(math.Float64bits(q + a.cfg.LearningRate*delta))
	return nil
}

// noteTDLocked folds one TD error into the health EMA. Caller holds wmu.
func (a *Agent) noteTDLocked(delta float64) {
	if delta < 0 {
		delta = -delta
	}
	if a.tdSamples.Load() == 0 {
		a.tdEMABits.Store(math.Float64bits(delta))
	} else {
		ema := math.Float64frombits(a.tdEMABits.Load())
		a.tdEMABits.Store(math.Float64bits(ema + tdAlpha*(delta-ema)))
	}
	a.tdSamples.Add(1)
}

// TDErrorEMA returns the exponential moving average of the absolute TD error
// and how many updates fed it. A shrinking EMA is the paper's convergence
// signal ("the error rate is gradually decreasing", Section VI-A) made
// observable at runtime; zero samples means the agent has never learned.
func (a *Agent) TDErrorEMA() (ema float64, samples int64) {
	return math.Float64frombits(a.tdEMABits.Load()), a.tdSamples.Load()
}

// ExplorationStats returns how many SelectAction calls took the epsilon
// (exploration) branch out of the total. The ratio should track epsilon for
// a healthy unfrozen agent and fall to zero once frozen.
func (a *Agent) ExplorationStats() (explores, selections int64) {
	return a.explores.Load(), a.selections.Load()
}

// NumStates returns how many Q rows are materialized — the numerator of the
// state-space coverage gauge.
func (a *Agent) NumStates() int { return int(a.materialized.Load()) }

// HasState reports whether state s has a materialized Q row. Lock-free.
func (a *Agent) HasState(s State) bool {
	i, ok := a.intern.lookup(s)
	return ok && a.HasStateIdx(i)
}

// HasStateIdx reports whether the state at dense index i has a materialized
// Q row. Lock-free.
func (a *Agent) HasStateIdx(i int32) bool {
	t := a.tab.Load()
	return i >= 0 && int(i) < t.states && t.flags[i].Load()&flagRow != 0
}

// ForEachMaterialized calls fn for every materialized state in ascending
// dense-index order (for a grid-interned agent that is also ascending
// lexicographic key order). fn must not mutate the agent.
func (a *Agent) ForEachMaterialized(fn func(i int32, key State)) {
	t := a.tab.Load()
	for i := 0; i < t.states; i++ {
		if t.flags[i].Load()&flagRow != 0 {
			fn(int32(i), a.intern.keyOf(int32(i)))
		}
	}
}

// CopyRow initializes dst's Q row as a copy of src's current row. It is the
// generalization hook AutoScale uses to seed a never-visited state from its
// nearest trained neighbour (the "energy trend knowledge" the paper says a
// trained model carries implicitly). Copying from a missing src materializes
// it first (random init).
func (a *Agent) CopyRow(dst, src State) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	di := a.internLocked(dst)
	si := a.internLocked(src)
	a.copyRowLocked(di, si)
}

// CopyRowIdx is CopyRow over dense state indices.
func (a *Agent) CopyRowIdx(dst, src int32) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if _, err := a.tableForLocked(dst); err != nil {
		return err
	}
	if _, err := a.tableForLocked(src); err != nil {
		return err
	}
	a.copyRowLocked(dst, src)
	return nil
}

func (a *Agent) copyRowLocked(di, si int32) {
	t := a.tab.Load()
	a.ensureRowLocked(t, si)
	if di == si {
		return
	}
	for j := 0; j < t.actions; j++ {
		t.q[int(di)*t.actions+j].Store(t.q[int(si)*t.actions+j].Load())
	}
	if t.flags[di].Load()&flagRow == 0 {
		t.flags[di].Or(flagRow)
		a.materialized.Add(1)
	}
}

// Q returns the current Q value of (s, action); untouched states return
// their lazily initialized values.
func (a *Agent) Q(s State, action int) float64 {
	if action < 0 || action >= a.actions {
		return 0
	}
	if i, ok := a.intern.lookup(s); ok {
		if t := a.tab.Load(); int(i) < t.states && t.flags[i].Load()&flagRow != 0 {
			return loadQ(t, i, action)
		}
	}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	i := a.internLocked(s)
	t := a.tab.Load()
	a.ensureRowLocked(t, i)
	return loadQ(t, i, action)
}

// States returns the visited/materialized states in sorted order.
func (a *Agent) States() []State {
	out := make([]State, 0, a.materialized.Load())
	a.ForEachMaterialized(func(_ int32, key State) { out = append(out, key) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Visits returns how many times s was selected against. Lock-free.
func (a *Agent) Visits(s State) int {
	i, ok := a.intern.lookup(s)
	if !ok {
		return 0
	}
	t := a.tab.Load()
	if int(i) >= t.states {
		return 0
	}
	return int(t.visits[i].Load())
}

// VisitCounts returns a copy of the per-state visit counts — the experience
// weights the policy plane uses when federating Q-tables across a fleet.
func (a *Agent) VisitCounts() map[State]int {
	t := a.tab.Load()
	out := make(map[State]int)
	for i := 0; i < t.states; i++ {
		if t.flags[i].Load()&flagVisit != 0 {
			out[a.intern.keyOf(int32(i))] = int(t.visits[i].Load())
		}
	}
	return out
}

// TotalVisits returns the total number of action selections across all
// states — zero means the agent has never been asked for a decision, which
// the fleet syncer treats as "new device, warm-start me".
func (a *Agent) TotalVisits() int {
	t := a.tab.Load()
	total := 0
	for i := 0; i < t.states; i++ {
		total += int(t.visits[i].Load())
	}
	return total
}

// Rows returns a deep copy of the materialized Q-table.
func (a *Agent) Rows() map[State][]float64 {
	t := a.tab.Load()
	out := make(map[State][]float64, a.materialized.Load())
	for i := 0; i < t.states; i++ {
		if t.flags[i].Load()&flagRow == 0 {
			continue
		}
		row := make([]float64, t.actions)
		for j := range row {
			row[j] = loadQ(t, int32(i), j)
		}
		out[a.intern.keyOf(int32(i))] = row
	}
	return out
}

// MemoryBytes estimates the Q-table's resident footprint: one float64 per
// (materialized state, action) pair plus key overhead. The paper reports
// 0.4 MB for its full table. (The dense backing array reserves the full
// grid up front, but untouched rows are never written, so their pages stay
// unmapped; this reports the touched working set, as the map did.)
func (a *Agent) MemoryBytes() int {
	total := 0
	a.ForEachMaterialized(func(_ int32, key State) { total += len(key) + 8*a.actions })
	return total
}

// snapshot is the serialized agent state.
type snapshot struct {
	Config  Config              `json:"config"`
	Actions int                 `json:"actions"`
	Q       map[State][]float64 `json:"q"`
	Visits  map[State]int       `json:"visits"`
}

// Snapshot serializes the agent (Q-table, visit counts, config) to JSON.
// The dense table is re-rendered as string-keyed maps, so the payload is
// byte-compatible with snapshots written by the historical map-backed table
// (json.Marshal sorts map keys).
func (a *Agent) Snapshot() ([]byte, error) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return json.Marshal(snapshot{
		Config:  a.Config(),
		Actions: a.actions,
		Q:       a.Rows(),
		Visits:  a.VisitCounts(),
	})
}

// Restore creates an agent from a Snapshot payload. Snapshots written before
// visit counts existed restore with every materialized state credited one
// visit, so downstream visit-weighted federation still counts the table as
// (minimal) experience instead of discarding it.
func Restore(data []byte) (*Agent, error) {
	return RestoreInterned(data, nil)
}

// RestoreInterned is Restore with a fixed base interner: snapshot keys on
// the base grid land on their arithmetic indices (so a restored engine agent
// keeps the zero-alloc decide path), foreign keys go to the overflow.
func RestoreInterned(data []byte, base Interner) (*Agent, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("rl: restore: %w", err)
	}
	ag, err := newAgent(snap.Config, snap.Actions, base)
	if err != nil {
		return nil, err
	}
	ag.wmu.Lock()
	defer ag.wmu.Unlock()
	for s, row := range snap.Q {
		if len(row) != snap.Actions {
			return nil, fmt.Errorf("rl: restore: state %q has %d actions, want %d", s, len(row), snap.Actions)
		}
		i := ag.internLocked(s)
		ag.installRowLocked(ag.tab.Load(), i, row)
	}
	switch {
	case snap.Visits == nil:
		// Backward compat: pre-visit-count snapshot.
		t := ag.tab.Load()
		for i := 0; i < t.states; i++ {
			if t.flags[i].Load()&flagRow != 0 {
				t.visits[i].Store(1)
				t.flags[i].Or(flagVisit)
			}
		}
	default:
		for s, n := range snap.Visits {
			if n < 0 {
				return nil, fmt.Errorf("rl: restore: state %q has negative visit count %d", s, n)
			}
		}
		for s, n := range snap.Visits {
			i := ag.internLocked(s)
			t := ag.tab.Load()
			t.visits[i].Store(int64(n))
			t.flags[i].Or(flagVisit)
		}
	}
	return ag, nil
}

// NewAgentFromTable builds an agent directly from a Q-table and its visit
// counts — the constructor the policy plane uses to materialize a federated
// (merged) table as a live agent. Rows must all span the action space; nil
// visits defaults every row to one visit.
func NewAgentFromTable(cfg Config, actions int, q map[State][]float64, visits map[State]int) (*Agent, error) {
	ag, err := NewAgent(cfg, actions)
	if err != nil {
		return nil, err
	}
	ag.wmu.Lock()
	defer ag.wmu.Unlock()
	for s, row := range q {
		if len(row) != actions {
			return nil, fmt.Errorf("rl: table: state %q has %d actions, want %d", s, len(row), actions)
		}
		i := ag.internLocked(s)
		ag.installRowLocked(ag.tab.Load(), i, row)
	}
	t := ag.tab.Load()
	for i := 0; i < t.states; i++ {
		if t.flags[i].Load()&flagRow == 0 {
			continue
		}
		s := ag.intern.keyOf(int32(i))
		n, ok := visits[s]
		switch {
		case !ok:
			n = 1
		case n < 0:
			return nil, fmt.Errorf("rl: table: state %q has negative visit count %d", s, n)
		}
		t.visits[i].Store(int64(n))
		t.flags[i].Or(flagVisit)
	}
	return ag, nil
}

// TransferFrom warm-starts this agent's Q-table from a donor trained on
// another device (the paper's learning transfer): every donor row is copied
// in, overwriting local initialization, while this agent keeps its own
// hyperparameters and exploration state. The action spaces must match; use
// ImportMapped when they do not.
func (a *Agent) TransferFrom(donor *Agent) error {
	if donor == nil {
		return errors.New("rl: nil donor")
	}
	if donor.actions != a.actions {
		return fmt.Errorf("rl: transfer: action spaces differ (%d vs %d)", donor.actions, a.actions)
	}
	identity := make([]int, a.actions)
	for i := range identity {
		identity[i] = i
	}
	return a.ImportMapped(donor, identity)
}

// ImportMapped warm-starts this agent from a donor whose action space
// differs: srcForDst[i] names the donor action whose Q value seeds this
// agent's action i (-1 keeps the local initialization). This is how
// AutoScale transfers a model between devices with different DVFS ladders
// and co-processor sets (Section VI-C).
func (a *Agent) ImportMapped(donor *Agent, srcForDst []int) error {
	if donor == nil {
		return errors.New("rl: nil donor")
	}
	if len(srcForDst) != a.actions {
		return fmt.Errorf("rl: mapping has %d entries, want %d", len(srcForDst), a.actions)
	}
	donorQ := donor.Rows()
	donorActions := donor.actions
	for _, src := range srcForDst {
		if src >= donorActions {
			return fmt.Errorf("rl: mapping refers to donor action %d of %d", src, donorActions)
		}
	}

	a.wmu.Lock()
	defer a.wmu.Unlock()
	for s, donorRow := range donorQ {
		i := a.internLocked(s)
		t := a.tab.Load()
		a.ensureRowLocked(t, i)
		for j, src := range srcForDst {
			if src >= 0 {
				t.q[int(i)*t.actions+j].Store(math.Float64bits(donorRow[src]))
			}
		}
	}
	return nil
}
