package rl

import (
	"math"
	"testing"
)

// TestSelectActionProvMirrorsPlain: two agents with identical seeds must
// take identical action sequences whether or not provenance is captured —
// the provenance variant consumes exactly the same RNG draws — and the
// captured provenance must be internally consistent with the choice.
func TestSelectActionProvMirrorsPlain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 99
	cfg.Epsilon = 0.3 // high enough to exercise both branches
	mk := func() *Agent {
		ag, err := NewAgent(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		return ag
	}
	plain, traced := mk(), mk()

	states := []State{"a", "b", "c"}
	for _, s := range states { // intern + row-init draws, identical on both
		if _, err := plain.SelectAction(s, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := traced.SelectAction(s, nil); err != nil {
			t.Fatal(err)
		}
	}

	masks := [][]bool{nil, {true, true, true, true}, {true, false, true, true}, {false, true, false, true}}
	var p SelectProv
	explored, exploited := 0, 0
	for step := 0; step < 400; step++ {
		s := states[step%len(states)]
		mask := masks[step%len(masks)]
		i1, ok1 := plain.StateIndex(s)
		i2, ok2 := traced.StateIndex(s)
		if !ok1 || !ok2 || i1 != i2 {
			t.Fatalf("state index mismatch: %v/%v %d/%d", ok1, ok2, i1, i2)
		}
		a1, err1 := plain.SelectActionIdx(i1, mask)
		a2, err2 := traced.SelectActionProvIdx(i2, mask, &p)
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: errors %v / %v", step, err1, err2)
		}
		if a1 != a2 {
			t.Fatalf("step %d: plain chose %d, traced chose %d", step, a1, a2)
		}
		if len(p.Q) != 4 {
			t.Fatalf("step %d: Q row has %d entries, want 4", step, len(p.Q))
		}
		if p.Epsilon != cfg.Epsilon || p.Frozen {
			t.Fatalf("step %d: prov = %+v", step, p)
		}
		if mask != nil && !mask[a2] {
			t.Fatalf("step %d: chose masked-out action %d", step, a2)
		}
		if p.Explored {
			explored++
		} else {
			exploited++
			// Greedy choice must be the first-wins argmax of the captured row.
			best, bestQ := -1, 0.0
			for j, q := range p.Q {
				if mask != nil && !mask[j] {
					continue
				}
				if best < 0 || q > bestQ {
					best, bestQ = j, q
				}
			}
			if a2 != best {
				t.Fatalf("step %d: exploit chose %d, argmax of captured row is %d (%v)", step, a2, best, p.Q)
			}
		}
		reward := math.Sin(float64(step)) // arbitrary, identical on both
		if err := plain.UpdateIdx(i1, a1, reward, i1, nil); err != nil {
			t.Fatal(err)
		}
		if err := traced.UpdateIdx(i2, a2, reward, i2, nil); err != nil {
			t.Fatal(err)
		}
	}
	if explored == 0 || exploited == 0 {
		t.Fatalf("want both branches exercised: explored=%d exploited=%d", explored, exploited)
	}

	if _, err := traced.SelectActionProvIdx(0, []bool{false, false, false, false}, &p); err == nil {
		t.Fatal("fully masked selection should fail")
	}
}
