package rl

import "sync/atomic"

// Interner maps between string state keys and dense int32 indices. The core
// package's StateSpace implements it over the mixed-radix Table I grid, which
// lets the engine drive the agent entirely through indices on the hot path
// while string keys survive only at the checkpoint/serialization boundary.
//
// Implementations must be safe for concurrent use and must be stable: an
// index, once returned, always maps back to the same key.
type Interner interface {
	// Size returns the number of representable states; every index in
	// [0, Size) is valid for KeyOf.
	Size() int
	// KeyOf renders the canonical string key of a dense index.
	KeyOf(i int32) State
	// Lookup parses a key into its dense index. ok is false when the key
	// is not representable in this interner (alien formatting, bins out of
	// range) — the agent then falls back to its dynamic overflow table.
	Lookup(s State) (int32, bool)
}

// overflow is the dynamic half of the agent's state interner: keys the fixed
// base interner cannot represent (or every key, for agents built without a
// base) get indices at base.Size() and beyond. It is published through an
// atomic.Pointer and copied on insert, so lookups are lock-free; inserts are
// serialized by the agent's writer lock and are rare on engine-backed agents
// (only checkpoint keys from foreign state spaces land here).
type overflow struct {
	index map[State]int32
	keys  []State // keys[i] is the key of index base+i
}

// intern is the agent's hybrid key<->index mapping.
type intern struct {
	base Interner // optional fixed interner; nil = fully dynamic
	over atomic.Pointer[overflow]
}

func (t *intern) baseSize() int {
	if t.base == nil {
		return 0
	}
	return t.base.Size()
}

// count returns how many states are currently interned (valid index bound).
func (t *intern) count() int {
	n := t.baseSize()
	if ov := t.over.Load(); ov != nil {
		n += len(ov.keys)
	}
	return n
}

// lookup resolves a key without interning it. Lock-free.
func (t *intern) lookup(s State) (int32, bool) {
	if t.base != nil {
		if i, ok := t.base.Lookup(s); ok {
			return i, true
		}
	}
	if ov := t.over.Load(); ov != nil {
		if i, ok := ov.index[s]; ok {
			return i, true
		}
	}
	return 0, false
}

// add assigns the next overflow index to s. Caller holds the agent's writer
// lock; concurrent lookups keep reading the previous published table.
func (t *intern) add(s State) int32 {
	old := t.over.Load()
	var next *overflow
	if old == nil {
		next = &overflow{index: make(map[State]int32, 8)}
	} else {
		next = &overflow{
			index: make(map[State]int32, len(old.index)+1),
			keys:  old.keys,
		}
		for k, v := range old.index {
			next.index[k] = v
		}
	}
	i := int32(t.baseSize() + len(next.keys))
	next.index[s] = i
	next.keys = append(next.keys, s)
	t.over.Store(next)
	return i
}

// keyOf renders the key for an interned index. Lock-free.
func (t *intern) keyOf(i int32) State {
	if b := t.baseSize(); int(i) < b {
		return t.base.KeyOf(i)
	}
	ov := t.over.Load()
	return ov.keys[int(i)-t.baseSize()]
}
