package rl

import (
	"math"
	"testing"
)

func TestTDErrorEMATracksConvergence(t *testing.T) {
	ag, err := NewAgent(Config{LearningRate: 0.9, Discount: 0, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ema, n := ag.TDErrorEMA(); ema != 0 || n != 0 {
		t.Fatalf("fresh agent EMA = (%v, %d)", ema, n)
	}
	// First update: Q=0, reward=1 -> |delta|=1 seeds the EMA exactly.
	if err := ag.Update("s", 0, 1, "s", nil); err != nil {
		t.Fatal(err)
	}
	ema, n := ag.TDErrorEMA()
	if n != 1 || math.Abs(ema-1) > 1e-12 {
		t.Fatalf("after first update EMA = (%v, %d), want (1, 1)", ema, n)
	}
	// Repeated identical updates converge Q toward the reward, so the EMA
	// must decay toward zero.
	for i := 0; i < 200; i++ {
		if err := ag.Update("s", 0, 1, "s", nil); err != nil {
			t.Fatal(err)
		}
	}
	ema, n = ag.TDErrorEMA()
	if n != 201 {
		t.Fatalf("sample count = %d", n)
	}
	if ema >= 1e-4 {
		t.Fatalf("EMA did not decay under a converged policy: %v", ema)
	}
}

func TestTDErrorEMASkipsFrozenAndSarsaFeedsIt(t *testing.T) {
	ag, err := NewAgent(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ag.Freeze()
	if err := ag.Update("s", 0, 5, "s", nil); err != nil {
		t.Fatal(err)
	}
	if _, n := ag.TDErrorEMA(); n != 0 {
		t.Fatalf("frozen update fed the EMA (%d samples)", n)
	}

	sa, err := NewSarsaAgent(Config{LearningRate: 0.5, Discount: 0, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.UpdateSarsa("s", 0, 2, "s", 1); err != nil {
		t.Fatal(err)
	}
	ema, n := sa.TDErrorEMA()
	if n != 1 || math.Abs(ema-2) > 1e-12 {
		t.Fatalf("SARSA EMA = (%v, %d), want (2, 1)", ema, n)
	}
}

func TestExplorationStats(t *testing.T) {
	ag, err := NewAgent(Config{LearningRate: 0.9, Discount: 0.1, Epsilon: 0.5, InitLo: -1, InitHi: 1, Seed: 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := ag.SelectAction("s", nil); err != nil {
			t.Fatal(err)
		}
	}
	explores, selections := ag.ExplorationStats()
	if selections != n {
		t.Fatalf("selections = %d, want %d", selections, n)
	}
	ratio := float64(explores) / float64(selections)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("exploration ratio %v far from epsilon 0.5", ratio)
	}
	// Frozen agents stop exploring but keep counting selections.
	ag.Freeze()
	for i := 0; i < 100; i++ {
		if _, err := ag.SelectAction("s", nil); err != nil {
			t.Fatal(err)
		}
	}
	explores2, selections2 := ag.ExplorationStats()
	if selections2 != n+100 || explores2 != explores {
		t.Fatalf("frozen stats = (%d, %d), want (%d, %d)", explores2, selections2, explores, n+100)
	}
}

func TestNumStatesAndEpsilonAccessors(t *testing.T) {
	ag, err := NewAgent(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ag.NumStates() != 0 {
		t.Fatalf("fresh agent has %d states", ag.NumStates())
	}
	ag.Q("a", 0) // materializes
	ag.Q("b", 0)
	if ag.NumStates() != 2 {
		t.Fatalf("NumStates = %d, want 2", ag.NumStates())
	}
	if eps := ag.Epsilon(); eps != DefaultConfig().Epsilon {
		t.Fatalf("Epsilon = %v", eps)
	}
	if err := ag.SetEpsilon(0.25); err != nil {
		t.Fatal(err)
	}
	if eps := ag.Epsilon(); eps != 0.25 {
		t.Fatalf("Epsilon after set = %v", eps)
	}
}

// TestSnapshotExcludesHealthCounters pins the checkpoint compatibility
// contract: learning-health state must not leak into the persisted snapshot.
func TestSnapshotExcludesHealthCounters(t *testing.T) {
	ag, err := NewAgent(Config{LearningRate: 0.9, Discount: 0.1, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ag.SelectAction("s", nil); err != nil {
		t.Fatal(err)
	}
	before, err := ag.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Update("s", 0, 3, "s", nil); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(before)
	if err != nil {
		t.Fatal(err)
	}
	if ema, n := restored.TDErrorEMA(); ema != 0 || n != 0 {
		t.Fatalf("restored agent carries TD state (%v, %d)", ema, n)
	}
	if ex, sel := restored.ExplorationStats(); ex != 0 || sel != 0 {
		t.Fatalf("restored agent carries exploration state (%d, %d)", ex, sel)
	}
}
