package rl

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestAgent(t *testing.T, actions int) *Agent {
	t.Helper()
	cfg := DefaultConfig()
	ag, err := NewAgent(cfg, actions)
	if err != nil {
		t.Fatal(err)
	}
	return ag
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LearningRate: 0, Discount: 0.1, Epsilon: 0.1},
		{LearningRate: 1.5, Discount: 0.1, Epsilon: 0.1},
		{LearningRate: 0.9, Discount: 1, Epsilon: 0.1},
		{LearningRate: 0.9, Discount: -0.1, Epsilon: 0.1},
		{LearningRate: 0.9, Discount: 0.1, Epsilon: 2},
		{LearningRate: 0.9, Discount: 0.1, Epsilon: 0.1, InitLo: 1, InitHi: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	if _, err := NewAgent(DefaultConfig(), 0); err == nil {
		t.Error("zero actions should fail")
	}
}

func TestDefaultHyperparameters(t *testing.T) {
	cfg := DefaultConfig()
	// Section V-C: gamma = 0.9, mu = 0.1, epsilon = 0.1.
	if cfg.LearningRate != 0.9 || cfg.Discount != 0.1 || cfg.Epsilon != 0.1 {
		t.Errorf("defaults drifted from the paper: %+v", cfg)
	}
}

func TestUpdateRule(t *testing.T) {
	cfg := Config{LearningRate: 0.5, Discount: 0.2, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}
	ag, err := NewAgent(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All Q start at 0. Update (s,0) with reward 10, next state t.
	if err := ag.Update("s", 0, 10, "t", nil); err != nil {
		t.Fatal(err)
	}
	// Q(s,0) = 0 + 0.5*(10 + 0.2*0 - 0) = 5.
	if got := ag.Q("s", 0); math.Abs(got-5) > 1e-12 {
		t.Errorf("Q = %v, want 5", got)
	}
	// Seed next-state value and update again.
	if err := ag.Update("t", 1, 20, "u", nil); err != nil {
		t.Fatal(err)
	}
	// Q(t,1) = 10. Now Q(s,0) += 0.5*(10 + 0.2*10 - 5) = 5 + 3.5 = 8.5.
	if err := ag.Update("s", 0, 10, "t", nil); err != nil {
		t.Fatal(err)
	}
	if got := ag.Q("s", 0); math.Abs(got-8.5) > 1e-12 {
		t.Errorf("Q = %v, want 8.5", got)
	}
}

func TestUpdateRespectsNextMask(t *testing.T) {
	cfg := Config{LearningRate: 1, Discount: 0.5, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}
	ag, err := NewAgent(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	ag.Update("n", 0, 100, "end", nil) // Q(n,0)=100
	// With action 0 masked in the next state, the bootstrap must use the
	// remaining action (Q=0), not the 100.
	ag.Update("s", 1, 0, "n", []bool{false, true})
	if got := ag.Q("s", 1); got != 0 {
		t.Errorf("masked bootstrap Q = %v, want 0", got)
	}
	ag.Update("s2", 1, 0, "n", nil)
	if got := ag.Q("s2", 1); got != 50 {
		t.Errorf("unmasked bootstrap Q = %v, want 50", got)
	}
}

func TestUpdateErrors(t *testing.T) {
	ag := newTestAgent(t, 3)
	if err := ag.Update("s", 5, 0, "t", nil); err == nil {
		t.Error("out-of-range action should fail")
	}
}

func TestGreedySelection(t *testing.T) {
	cfg := Config{LearningRate: 0.9, Discount: 0.1, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}
	ag, _ := NewAgent(cfg, 3)
	ag.Update("s", 2, 100, "s", nil)
	for i := 0; i < 20; i++ {
		a, err := ag.SelectAction("s", nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != 2 {
			t.Fatalf("greedy agent chose %d, want 2", a)
		}
	}
	if b, _ := ag.BestAction("s", nil); b != 2 {
		t.Error("BestAction disagrees")
	}
}

func TestMaskedSelection(t *testing.T) {
	cfg := Config{LearningRate: 0.9, Discount: 0.1, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}
	ag, _ := NewAgent(cfg, 3)
	ag.Update("s", 2, 100, "s", nil)
	a, err := ag.SelectAction("s", []bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if a == 2 {
		t.Error("masked action selected")
	}
	if _, err := ag.SelectAction("s", []bool{false, false, false}); err == nil {
		t.Error("fully masked selection should fail")
	}
}

func TestEpsilonExplores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon = 1 // always explore
	cfg.InitLo, cfg.InitHi = 0, 0
	ag, _ := NewAgent(cfg, 4)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		a, err := ag.SelectAction("s", nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("pure exploration visited %d of 4 actions", len(seen))
	}
}

func TestSetEpsilon(t *testing.T) {
	ag := newTestAgent(t, 2)
	if err := ag.SetEpsilon(0); err != nil {
		t.Fatal(err)
	}
	if err := ag.SetEpsilon(1.5); err == nil {
		t.Error("epsilon > 1 should fail")
	}
}

func TestFreeze(t *testing.T) {
	cfg := Config{LearningRate: 0.9, Discount: 0.1, Epsilon: 1, InitLo: 0, InitHi: 0, Seed: 1}
	ag, _ := NewAgent(cfg, 2)
	ag.Update("s", 1, 50, "s", nil)
	ag.Freeze()
	if !ag.Frozen() {
		t.Error("agent should report frozen")
	}
	// Frozen agents act greedily despite epsilon=1 and ignore updates.
	for i := 0; i < 20; i++ {
		if a, _ := ag.SelectAction("s", nil); a != 1 {
			t.Fatal("frozen agent must be greedy")
		}
	}
	before := ag.Q("s", 1)
	ag.Update("s", 1, -1000, "s", nil)
	if ag.Q("s", 1) != before {
		t.Error("frozen agent must not learn")
	}
}

func TestRandomInitRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitLo, cfg.InitHi = -2, 3
	ag, _ := NewAgent(cfg, 50)
	for i := 0; i < 50; i++ {
		q := ag.Q("fresh", i)
		if q < -2 || q > 3 {
			t.Fatalf("init Q %v outside [-2,3]", q)
		}
	}
}

func TestStatesAndVisits(t *testing.T) {
	ag := newTestAgent(t, 2)
	if len(ag.States()) != 0 {
		t.Error("fresh agent must have no states")
	}
	ag.SelectAction("b", nil)
	ag.SelectAction("a", nil)
	ag.SelectAction("a", nil)
	states := ag.States()
	if len(states) != 2 || states[0] != "a" || states[1] != "b" {
		t.Errorf("States = %v", states)
	}
	if ag.Visits("a") != 2 || ag.Visits("b") != 1 || ag.Visits("c") != 0 {
		t.Error("visit counts wrong")
	}
}

func TestHasStateCopyRow(t *testing.T) {
	ag := newTestAgent(t, 3)
	if ag.HasState("x") {
		t.Error("fresh state must not exist")
	}
	ag.Update("x", 0, 42, "x", nil)
	if !ag.HasState("x") {
		t.Error("updated state must exist")
	}
	ag.CopyRow("y", "x")
	for i := 0; i < 3; i++ {
		if ag.Q("y", i) != ag.Q("x", i) {
			t.Fatal("copied row differs")
		}
	}
	// Copies are independent.
	ag.Update("y", 1, 7, "y", nil)
	if ag.Q("x", 1) == ag.Q("y", 1) {
		t.Error("rows aliased after copy")
	}
}

func TestSnapshotRestore(t *testing.T) {
	ag := newTestAgent(t, 4)
	ag.Update("s1", 0, 5, "s2", nil)
	ag.Update("s2", 3, -2, "s1", nil)
	ag.SelectAction("s1", nil)
	data, err := ag.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 4 {
		t.Error("restored action count wrong")
	}
	for _, s := range ag.States() {
		for i := 0; i < 4; i++ {
			if got.Q(s, i) != ag.Q(s, i) {
				t.Fatalf("restored Q(%s,%d) differs", s, i)
			}
		}
	}
	if got.Visits("s1") != ag.Visits("s1") {
		t.Error("restored visits differ")
	}
	if _, err := Restore([]byte("not json")); err == nil {
		t.Error("garbage restore should fail")
	}
}

func TestTransferFrom(t *testing.T) {
	donor := newTestAgent(t, 3)
	donor.Update("s", 1, 99, "s", nil)
	dst := newTestAgent(t, 3)
	if err := dst.TransferFrom(donor); err != nil {
		t.Fatal(err)
	}
	if dst.Q("s", 1) != donor.Q("s", 1) {
		t.Error("transfer did not copy Q values")
	}
	other := newTestAgent(t, 5)
	if err := other.TransferFrom(donor); err == nil {
		t.Error("mismatched action spaces should fail")
	}
	if err := dst.TransferFrom(nil); err == nil {
		t.Error("nil donor should fail")
	}
}

func TestImportMapped(t *testing.T) {
	donor := newTestAgent(t, 3)
	donor.Update("s", 0, 10, "s", nil)
	donor.Update("s", 2, 30, "s", nil)
	cfg := DefaultConfig()
	cfg.InitLo, cfg.InitHi = 0, 0
	dst, _ := NewAgent(cfg, 2)
	// dst action 0 <- donor action 2; dst action 1 keeps local init.
	if err := dst.ImportMapped(donor, []int{2, -1}); err != nil {
		t.Fatal(err)
	}
	if dst.Q("s", 0) != donor.Q("s", 2) {
		t.Error("mapped import wrong")
	}
	if dst.Q("s", 1) != 0 {
		t.Error("unmapped action must keep local init")
	}
	if err := dst.ImportMapped(donor, []int{0}); err == nil {
		t.Error("wrong mapping length should fail")
	}
	if err := dst.ImportMapped(donor, []int{0, 7}); err == nil {
		t.Error("out-of-range donor index should fail")
	}
}

func TestMemoryBytes(t *testing.T) {
	ag := newTestAgent(t, 66)
	if ag.MemoryBytes() != 0 {
		t.Error("fresh table must be empty")
	}
	ag.Update("0|1|0|2|1|0|1|1", 0, 1, "0|1|0|2|1|0|1|1", nil)
	got := ag.MemoryBytes()
	want := len("0|1|0|2|1|0|1|1") + 8*66
	if got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestFullTableFootprintNearPaper(t *testing.T) {
	// The paper reports a 0.4 MB Q-table (3,072 states x ~66 actions).
	ag := newTestAgent(t, 66)
	count := 0
	for a := 0; a < 4; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				for d := 0; d < 3; d++ {
					for e := 0; e < 4; e++ {
						for f := 0; f < 4; f++ {
							for g := 0; g < 2; g++ {
								for h := 0; h < 2; h++ {
									s := State(string(rune('0'+a)) + "|" + string(rune('0'+b)) + "|" +
										string(rune('0'+c)) + "|" + string(rune('0'+d)) + "|" +
										string(rune('0'+e)) + "|" + string(rune('0'+f)) + "|" +
										string(rune('0'+g)) + "|" + string(rune('0'+h)))
									ag.CopyRow(s, s)
									count++
								}
							}
						}
					}
				}
			}
		}
	}
	if count != 3072 {
		t.Fatalf("state enumeration = %d, want 3072", count)
	}
	mb := float64(ag.MemoryBytes()) / 1e6
	if mb < 0.3 || mb > 3 {
		t.Errorf("full-table footprint = %.2f MB, want within a few x of the paper's 0.4 MB", mb)
	}
}

func TestQOutOfRangeAction(t *testing.T) {
	ag := newTestAgent(t, 2)
	if ag.Q("s", -1) != 0 || ag.Q("s", 5) != 0 {
		t.Error("out-of-range Q must be 0")
	}
}

func TestUpdateContractionProperty(t *testing.T) {
	// One Q update moves the value a (1-gamma) fraction of the way toward
	// the TD target.
	f := func(rawQ, rawR int16) bool {
		cfg := Config{LearningRate: 0.9, Discount: 0, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}
		ag, err := NewAgent(cfg, 1)
		if err != nil {
			return false
		}
		r := float64(rawR)
		// Seed Q by one update from zero: Q = 0.9 * q0.
		q0 := float64(rawQ)
		ag.Update("s", 0, q0, "t", nil)
		before := ag.Q("s", 0)
		ag.Update("s", 0, r, "t", nil)
		after := ag.Q("s", 0)
		want := before + 0.9*(r-before)
		return math.Abs(after-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSarsaUpdate(t *testing.T) {
	cfg := Config{LearningRate: 0.5, Discount: 0.5, Epsilon: 0, InitLo: 0, InitHi: 0, Seed: 1}
	ag, err := NewSarsaAgent(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Seed Q(next, 1) = 10 via one plain update.
	ag.Agent.Update("next", 1, 20, "end", nil)
	if got := ag.Q("next", 1); got != 10 {
		t.Fatalf("setup Q = %v", got)
	}
	// SARSA bootstraps from the taken action (1), not the max.
	ag.Agent.Update("next", 2, 100, "end", nil) // Q(next,2)=50, the max
	if err := ag.UpdateSarsa("s", 0, 4, "next", 1); err != nil {
		t.Fatal(err)
	}
	// Q(s,0) = 0 + 0.5*(4 + 0.5*10 - 0) = 4.5 (not 0.5*(4+25)).
	if got := ag.Q("s", 0); got != 4.5 {
		t.Errorf("SARSA Q = %v, want 4.5", got)
	}
	if err := ag.UpdateSarsa("s", 9, 0, "next", 0); err == nil {
		t.Error("out-of-range action should fail")
	}
	if err := ag.UpdateSarsa("s", 0, 0, "next", 9); err == nil {
		t.Error("out-of-range next action should fail")
	}
	// Frozen SARSA agents ignore updates.
	ag.Freeze()
	before := ag.Q("s", 0)
	ag.UpdateSarsa("s", 0, 1000, "next", 1)
	if ag.Q("s", 0) != before {
		t.Error("frozen SARSA agent must not learn")
	}
}

func TestSarsaSharesAgentMachinery(t *testing.T) {
	ag, err := NewSarsaAgent(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Selection, snapshot and transfer all come from the embedded Agent.
	if _, err := ag.SelectAction("s", nil); err != nil {
		t.Fatal(err)
	}
	data, err := ag.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(data); err != nil {
		t.Fatal(err)
	}
}
