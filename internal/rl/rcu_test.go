package rl

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestRCUTornReadHunt hammers the lock-free read paths (Q, BestAction,
// HasState, NumStates, Visits) while a single writer materializes rows,
// rewrites cells between two bit-distinct values, and forces repeated
// table growth and republication. Run under -race this is the data-race
// proof for the RCU table design; the bit-pattern assertion additionally
// catches torn float64 reads directly — both chosen values have non-zero,
// distinct high and low 32-bit halves, so any half-and-half mix is a value
// outside the allowed set.
func TestRCUTornReadHunt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitLo, cfg.InitHi = 0, 0 // rows materialize to exactly zero
	cfg.LearningRate = 1          // Update writes the reward verbatim...
	cfg.Discount = 0              // ...with no bootstrap term
	const actions = 4
	ag, err := NewAgent(cfg, actions)
	if err != nil {
		t.Fatal(err)
	}

	// 64 states against the initial 16-row table forces several growth
	// republications while readers are live.
	states := make([]State, 64)
	for i := range states {
		states[i] = State(fmt.Sprintf("torn|%d", i))
	}
	valA := math.Float64frombits(0x4010123456789ABC)
	valB := math.Float64frombits(0xC01FEDCBA9876543)
	allowed := map[uint64]bool{
		0:                      true, // unmaterialized or freshly seeded cell
		math.Float64bits(valA): true,
		math.Float64bits(valB): true,
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := states[(i*7+r)%len(states)]
				q := ag.Q(s, (i+r)%actions)
				if !allowed[math.Float64bits(q)] {
					t.Errorf("torn read: Q=%v (bits %#x) is neither 0, %v nor %v",
						q, math.Float64bits(q), valA, valB)
					return
				}
				if a, err := ag.BestAction(s, nil); err == nil && (a < 0 || a >= actions) {
					t.Errorf("BestAction(%q) = %d out of range", s, a)
					return
				}
				ag.HasState(s)
				ag.NumStates()
				ag.Visits(s)
			}
		}(r)
	}

	for i := 0; i < 20000; i++ {
		s := states[i%len(states)]
		v := valA
		if i%2 == 1 {
			v = valB
		}
		if err := ag.Update(s, i%actions, v, states[(i+1)%len(states)], nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
