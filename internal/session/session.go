// Package session drives a scheduling policy with realistic inference
// request streams — periodic camera frames, Poisson user interactions,
// bursts — over simulated wall-clock time, accounting battery drain for both
// the inferences and the idle gaps between them. It is the layer a service
// integrating AutoScale would actually run: the paper's Android application
// scenarios (Section V-B) are instances of it.
package session

import (
	"errors"
	"fmt"
	"math"

	"autoscale/internal/battery"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
)

// Arrival generates the idle gap before the next inference request.
type Arrival interface {
	// NextGapS returns the seconds of idle time before the next request,
	// drawing from the session's named arrival stream.
	NextGapS(rng *exec.Rand) float64
}

// Periodic issues requests at a fixed cadence (e.g. one per video frame).
type Periodic struct {
	// PeriodS is the request period in seconds.
	PeriodS float64
}

// NextGapS implements Arrival.
func (p Periodic) NextGapS(*exec.Rand) float64 { return math.Max(0, p.PeriodS) }

// Poisson issues requests with exponentially distributed gaps — the classic
// model of user-initiated interactions.
type Poisson struct {
	// RatePerS is the mean request rate.
	RatePerS float64
}

// NextGapS implements Arrival.
func (p Poisson) NextGapS(rng *exec.Rand) float64 {
	if p.RatePerS <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / p.RatePerS
}

// Bursty alternates active bursts of back-to-back requests with long idle
// gaps (a user taking a burst of photos, then pocketing the phone).
type Bursty struct {
	// BurstLen is the number of requests per burst.
	BurstLen int
	// WithinGapS is the gap between requests inside a burst.
	WithinGapS float64
	// BetweenGapS is the mean (exponential) gap between bursts.
	BetweenGapS float64

	left int
}

// NextGapS implements Arrival.
func (b *Bursty) NextGapS(rng *exec.Rand) float64 {
	if b.left > 0 {
		b.left--
		return b.WithinGapS
	}
	b.left = b.BurstLen - 1
	if b.left < 0 {
		b.left = 0
	}
	if b.BetweenGapS <= 0 {
		return b.WithinGapS
	}
	return rng.ExpFloat64() * b.BetweenGapS
}

// Config describes one session.
type Config struct {
	// Model is the network the service runs.
	Model *dnn.Model
	// Env supplies the runtime-variance conditions.
	Env *sim.Environment
	// Arrival generates the request stream.
	Arrival Arrival
	// DurationS is the simulated wall-clock length of the session.
	DurationS float64
	// Intensity picks the QoS target for vision models.
	Intensity sim.Intensity
	// IdleW is the platform power drawn during idle gaps (screen-on
	// baseline); the per-inference energies already include the platform
	// share during execution.
	IdleW float64
	// Seed drives the arrival process.
	Seed int64
}

// Stats summarizes a session.
type Stats struct {
	// SimulatedS is the wall-clock time covered.
	SimulatedS float64
	// Inferences served.
	Inferences int
	// EnergyJ spent on inference; IdleEnergyJ on the gaps between.
	EnergyJ     float64
	IdleEnergyJ float64
	// MeanLatencyS over the served inferences.
	MeanLatencyS float64
	// QoSViolations counts inferences over the target.
	QoSViolations int
	// ByLocation histograms the chosen execution locations.
	ByLocation map[sim.Location]int
	// BatteryDrainedJ is what the session took from the battery (when one
	// was supplied), inference plus idle.
	BatteryDrainedJ float64
}

// ViolationRatio returns the fraction of inferences over the QoS target.
func (s Stats) ViolationRatio() float64 {
	if s.Inferences == 0 {
		return 0
	}
	return float64(s.QoSViolations) / float64(s.Inferences)
}

// AvgPowerW returns the session's average total power draw.
func (s Stats) AvgPowerW() float64 {
	if s.SimulatedS <= 0 {
		return 0
	}
	return (s.EnergyJ + s.IdleEnergyJ) / s.SimulatedS
}

// Run replays the session against a policy, optionally draining a battery
// (pass nil to skip). The session ends at the configured duration or when
// the battery empties, whichever comes first.
func Run(p sched.Policy, cfg Config, b *battery.Battery) (Stats, error) {
	if p == nil {
		return Stats{}, errors.New("session: nil policy")
	}
	if cfg.Model == nil || cfg.Env == nil || cfg.Arrival == nil {
		return Stats{}, errors.New("session: config needs Model, Env and Arrival")
	}
	if cfg.DurationS <= 0 {
		return Stats{}, errors.New("session: non-positive duration")
	}
	// The session owns an execution context: the arrival process draws from
	// a named stream of it, and simulated wall-clock time lives on its
	// virtual clock.
	ctx := exec.NewRoot(cfg.Seed).Child("session")
	rng := ctx.Stream("session.arrival")
	clk := ctx.Clock()
	qos := sim.QoSFor(cfg.Model.Task == dnn.Translation, cfg.Intensity)

	stats := Stats{ByLocation: make(map[sim.Location]int)}
	now := clk.Now()
	var latencySum float64
	drain := func(j float64) bool {
		if b == nil {
			return true
		}
		stats.BatteryDrainedJ += j
		return b.Drain(j) == nil
	}
	for now < cfg.DurationS {
		gap := cfg.Arrival.NextGapS(rng)
		if math.IsInf(gap, 1) || now+gap >= cfg.DurationS {
			// Idle out the remaining time.
			idle := (cfg.DurationS - now) * cfg.IdleW
			stats.IdleEnergyJ += idle
			drain(idle)
			now = cfg.DurationS
			break
		}
		now = clk.Advance(gap)
		idle := gap * cfg.IdleW
		stats.IdleEnergyJ += idle
		if !drain(idle) {
			break
		}
		meas, err := p.Run(cfg.Model, cfg.Env.Sample())
		if err != nil {
			return Stats{}, fmt.Errorf("session: %w", err)
		}
		now = clk.Advance(meas.LatencyS)
		stats.Inferences++
		stats.EnergyJ += meas.EnergyJ
		latencySum += meas.LatencyS
		if meas.LatencyS > qos {
			stats.QoSViolations++
		}
		stats.ByLocation[meas.Target.Location]++
		if !drain(meas.EnergyJ) {
			break
		}
	}
	stats.SimulatedS = now
	if stats.Inferences > 0 {
		stats.MeanLatencyS = latencySum / float64(stats.Inferences)
	}
	return stats, nil
}
