package session

import (
	"math"
	"testing"

	"autoscale/internal/battery"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Model:     dnn.MustByName("MobileNet v1"),
		Env:       sim.MustEnvironment(sim.EnvS1, 1),
		Arrival:   Periodic{PeriodS: 0.5},
		DurationS: 30,
		IdleW:     1.0,
		Seed:      1,
	}
}

func optPolicy(t *testing.T) sched.Policy {
	t.Helper()
	return sched.Opt{World: sim.NewWorld(soc.Mi8Pro(), 1)}
}

func TestPeriodicSession(t *testing.T) {
	stats, err := Run(optPolicy(t), testConfig(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	// ~60 requests in 30 s at 0.5 s cadence (latency eats a little time).
	if stats.Inferences < 50 || stats.Inferences > 61 {
		t.Errorf("inferences = %d, want ~58", stats.Inferences)
	}
	if stats.SimulatedS != 30 {
		t.Errorf("simulated = %v, want 30", stats.SimulatedS)
	}
	if stats.EnergyJ <= 0 || stats.IdleEnergyJ <= 0 {
		t.Error("both energy components must be positive")
	}
	if stats.MeanLatencyS <= 0 {
		t.Error("mean latency missing")
	}
	if stats.AvgPowerW() <= 0 {
		t.Error("average power missing")
	}
	total := 0
	for _, n := range stats.ByLocation {
		total += n
	}
	if total != stats.Inferences {
		t.Error("location histogram inconsistent")
	}
}

func TestPoissonSessionRate(t *testing.T) {
	cfg := testConfig(t)
	cfg.Arrival = Poisson{RatePerS: 4}
	cfg.DurationS = 60
	stats, err := Run(optPolicy(t), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ~240 requests at 4/s over 60 s (minus inference time).
	if stats.Inferences < 150 || stats.Inferences > 260 {
		t.Errorf("inferences = %d, want ~220", stats.Inferences)
	}
}

func TestPoissonZeroRateIdles(t *testing.T) {
	cfg := testConfig(t)
	cfg.Arrival = Poisson{}
	stats, err := Run(optPolicy(t), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inferences != 0 {
		t.Error("zero-rate arrivals must produce no requests")
	}
	if math.Abs(stats.IdleEnergyJ-30) > 1e-9 {
		t.Errorf("idle energy = %v, want duration x IdleW", stats.IdleEnergyJ)
	}
}

func TestBurstyArrival(t *testing.T) {
	b := &Bursty{BurstLen: 5, WithinGapS: 0.01, BetweenGapS: 10}
	rng := exec.NewRoot(2).Stream("test")
	// First call pays the between-burst gap, then four short gaps follow.
	first := b.NextGapS(rng)
	short := 0
	for i := 0; i < 4; i++ {
		if b.NextGapS(rng) == 0.01 {
			short++
		}
	}
	if short != 4 {
		t.Errorf("within-burst gaps = %d of 4", short)
	}
	if next := b.NextGapS(rng); next == 0.01 {
		t.Error("burst must end after BurstLen requests")
	}
	_ = first
}

func TestBatteryDrainAndCutoff(t *testing.T) {
	cfg := testConfig(t)
	b, err := battery.New(1, 3.6) // 12.96 J: dies mid-session
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(optPolicy(t), cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Empty() {
		t.Error("tiny battery should empty")
	}
	if stats.SimulatedS >= cfg.DurationS {
		t.Error("session must stop when the battery dies")
	}
	if stats.BatteryDrainedJ < b.CapacityJ() {
		t.Errorf("drained %v < capacity %v", stats.BatteryDrainedJ, b.CapacityJ())
	}
}

func TestQoSAccounting(t *testing.T) {
	// Edge CPU FP32 on ResNet 50 violates the 50 ms target every time.
	w := sim.NewWorld(soc.Mi8Pro(), 2)
	cfg := testConfig(t)
	cfg.Model = dnn.MustByName("ResNet 50")
	stats, err := Run(sched.EdgeCPU{World: w}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ViolationRatio() != 1 {
		t.Errorf("violation ratio = %v, want 1", stats.ViolationRatio())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(nil, testConfig(t), nil); err == nil {
		t.Error("nil policy should fail")
	}
	cfg := testConfig(t)
	cfg.Model = nil
	if _, err := Run(optPolicy(t), cfg, nil); err == nil {
		t.Error("nil model should fail")
	}
	cfg = testConfig(t)
	cfg.DurationS = 0
	if _, err := Run(optPolicy(t), cfg, nil); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestStatsZeroValues(t *testing.T) {
	var s Stats
	if s.ViolationRatio() != 0 || s.AvgPowerW() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}
