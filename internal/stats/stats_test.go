package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); !almostEq(got, 2.8, 1e-12) {
		t.Errorf("Mean = %v, want 2.8", got)
	}
	if got := Sum(xs); got != 14 {
		t.Errorf("Sum = %v, want 14", got)
	}
	if got, err := Min(xs); err != nil || got != 1 {
		t.Errorf("Min = %v, %v", got, err)
	}
	if got, err := Max(xs); err != nil || got != 5 {
		t.Errorf("Max = %v, %v", got, err)
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v", err)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil) should fail")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) should fail")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Errorf("Variance of one sample = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
	if got, err := Percentile([]float64{42}, 73); err != nil || got != 42 {
		t.Errorf("single-sample percentile = %v, %v", got, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{100, 200}
	pred := []float64{110, 180}
	got, err := MAPE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 10, 1e-9) {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := MAPE([]float64{0}, []float64{1}); err == nil {
		t.Error("all-zero actuals should fail")
	}
	// Zero actuals are skipped, not divided by.
	got, err = MAPE([]float64{0, 100}, []float64{5, 150})
	if err != nil || !almostEq(got, 50, 1e-9) {
		t.Errorf("MAPE with zero actual = %v, %v", got, err)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil || !almostEq(got, 4, 1e-9) {
		t.Errorf("GeoMean = %v, %v", got, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative input should fail")
	}
}

func TestNormalizeClamp(t *testing.T) {
	out := Normalize([]float64{2, 4}, 2)
	if out[0] != 1 || out[1] != 2 {
		t.Errorf("Normalize = %v", out)
	}
	zeros := Normalize([]float64{2, 4}, 0)
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Errorf("Normalize by zero = %v", zeros)
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-6) {
		t.Errorf("Welford variance %v vs batch %v", w.Variance(), Variance(xs))
	}
	if !almostEq(w.StdDev(), StdDev(xs), 1e-6) {
		t.Errorf("Welford stddev %v vs batch %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(xs[i])
		}
		return almostEq(w.Mean(), Mean(xs), 1e-6) && almostEq(w.Variance(), Variance(xs), 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []int16, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pf := float64(p) / 255 * 100
		got, err := Percentile(xs, pf)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return got >= mn-1e-9 && got <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvergenceDetector(t *testing.T) {
	det := NewConvergenceDetector(5, 0.05)
	// Ramping series never converges.
	for i := 0; i < 20; i++ {
		if det.Observe(float64(i)) {
			t.Fatalf("ramp converged at %d", i)
		}
	}
	det.Reset()
	// Flat series converges once the window fills.
	for i := 0; i < 4; i++ {
		if det.Observe(10) {
			t.Fatalf("converged before window filled (i=%d)", i)
		}
	}
	if !det.Observe(10) {
		t.Error("flat series should converge at window size")
	}
}

func TestConvergenceDetectorTolerance(t *testing.T) {
	det := NewConvergenceDetector(4, 0.10)
	vals := []float64{100, 101, 99, 100}
	converged := false
	for _, v := range vals {
		converged = det.Observe(v)
	}
	if !converged {
		t.Error("values within 10% band should converge")
	}
	det.Reset()
	for _, v := range []float64{100, 150, 100, 100} {
		converged = det.Observe(v)
	}
	if converged {
		t.Error("50% excursion should not converge")
	}
}

func TestConvergenceDetectorDefaults(t *testing.T) {
	det := NewConvergenceDetector(0, -1) // clamped to window 2, tol 0.05
	det.Observe(1)
	if !det.Observe(1) {
		t.Error("window-2 flat series should converge on second observation")
	}
}
