// Package stats provides small statistical helpers used across the AutoScale
// simulator: summary statistics, error metrics, normalization, and online
// accumulators. All functions are allocation-light and deterministic.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest element of xs and an error for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs and an error for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Variance returns the population variance of xs (0 for fewer than 2 samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns an error for empty input or
// p outside [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MAPE returns the mean absolute percentage error (in percent) of predictions
// pred against ground truth actual. Pairs whose actual value is zero are
// skipped; if every pair is skipped or the slices are empty or mismatched an
// error is returned.
func MAPE(actual, pred []float64) (float64, error) {
	if len(actual) == 0 || len(actual) != len(pred) {
		return 0, errors.New("stats: MAPE needs equal-length non-empty slices")
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((pred[i] - actual[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, errors.New("stats: MAPE has no nonzero ground-truth values")
	}
	return sum / float64(n) * 100, nil
}

// GeoMean returns the geometric mean of xs. All inputs must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean needs positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Normalize divides every element of xs by base and returns a new slice. A
// zero base yields a slice of zeros.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Welford is an online accumulator for mean and variance (Welford's
// algorithm). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations seen so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// ConvergenceDetector watches a noisy scalar series (e.g. per-episode reward)
// and reports convergence once the values in a sliding window stay within a
// relative band around the window mean. It mirrors the paper's notion of the
// reward "converging in 40-50 runs".
type ConvergenceDetector struct {
	window int
	relTol float64
	buf    []float64
}

// NewConvergenceDetector creates a detector using a sliding window of the
// given size and a relative tolerance band (e.g. 0.05 for ±5%). Window sizes
// below 2 are raised to 2; non-positive tolerances default to 0.05.
func NewConvergenceDetector(window int, relTol float64) *ConvergenceDetector {
	if window < 2 {
		window = 2
	}
	if relTol <= 0 {
		relTol = 0.05
	}
	return &ConvergenceDetector{window: window, relTol: relTol}
}

// Observe adds one value and reports whether the series is converged as of
// this observation.
func (c *ConvergenceDetector) Observe(x float64) bool {
	c.buf = append(c.buf, x)
	if len(c.buf) > c.window {
		c.buf = c.buf[len(c.buf)-c.window:]
	}
	return c.converged()
}

func (c *ConvergenceDetector) converged() bool {
	if len(c.buf) < c.window {
		return false
	}
	m := Mean(c.buf)
	scale := math.Abs(m)
	if scale < 1e-12 {
		scale = 1e-12
	}
	for _, v := range c.buf {
		if math.Abs(v-m) > c.relTol*scale {
			return false
		}
	}
	return true
}

// Reset clears the detector state.
func (c *ConvergenceDetector) Reset() { c.buf = c.buf[:0] }
