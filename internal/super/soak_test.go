package super

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"autoscale/internal/dnn"
	"autoscale/internal/fault"
	"autoscale/internal/policy"
	"autoscale/internal/router"
	"autoscale/internal/serve"
	"autoscale/internal/tracez"
)

// chaosHorizonS is the virtual span every generated storm fits inside; the
// run drives traffic until every surviving lane's clock clears it, so no
// fault window is still active at the final audit.
const chaosHorizonS = 6.0

// chaosResult is everything one supervised chaos run produces.
type chaosResult struct {
	digest    string
	viols     []string
	states    map[string]string
	phases    map[string]string
	requests  int
	responses int
	met       map[string]uint64
}

// runChaos drives one seeded chaos soak: a three-shard fleet under a
// Randomize-generated schedule mixing every fault kind, supervised and
// audited, driven sequentially on the virtual clock until the storm expires
// and the supervisor settles every shard to healthy or dead.
func runChaos(t *testing.T, seed int64, intensity float64, opts ...func(*router.Config)) chaosResult {
	t.Helper()
	shards := map[string][]string{
		"shard-a": {"lane-a0", "lane-a1"},
		"shard-b": {"lane-b0", "lane-b1"},
		"shard-c": {"lane-c0", "lane-c1"},
	}
	shardNames := []string{"shard-a", "shard-b", "shard-c"}
	laneNames := []string{"lane-a0", "lane-a1", "lane-b0", "lane-b1", "lane-c0", "lane-c1"}

	sched := fault.Randomize(seed, intensity, fault.RandomOpts{
		Devices: laneNames, Shards: shardNames, HorizonS: chaosHorizonS,
	})

	// The checkpoint plane runs through a fault sink so the storm's I/O
	// faults (write failure, slow fsync, disk full) hit every save; the
	// auditor sweeps the raw store underneath.
	fsink := &policy.FaultSink{}
	fl := buildFleet(t, seed, sched, shards, fsink, opts...)
	fsink.Inner = fl.store
	// The sink's clock must not call back into the router (its queries can
	// fire under the router's lock, during re-homing warm starts and drain
	// flushes) — feed it the virtual time sampled by the driving loop.
	var vclock atomic.Uint64
	bumpClock := func() {
		now := fl.rt.VirtualNow()
		for {
			old := vclock.Load()
			if math.Float64frombits(old) >= now || vclock.CompareAndSwap(old, math.Float64bits(now)) {
				return
			}
		}
	}
	fsink.Now = func() float64 { return math.Float64frombits(vclock.Load()) }
	// Injected checkpoint-I/O verdicts land in the flight recorder's event
	// ring when one is configured; Note on a nil recorder is a no-op.
	fsink.Events = fl.rt.Recorder().Note
	fsink.Verdict = func(dev string, tm float64) policy.IOVerdict {
		switch fl.inj.CheckpointIO(dev, tm) {
		case fault.IOSlowFsync:
			return policy.IOSlow
		case fault.IOWriteFail:
			return policy.IOFailWrite
		case fault.IODiskFull:
			return policy.IOFailAll
		}
		return policy.IOHealthy
	}

	sup, err := New(fl.rt, Config{
		IntervalS:       0.25,
		LatencyTargetS:  0.1,
		RestartBackoffS: 0.5,
		MaxRestarts:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	aud, err := NewAuditor(fl.rt, fl.store)
	if err != nil {
		t.Fatal(err)
	}

	m := dnn.MustByName("MobileNet v3")
	tenants := []string{"gold", "silver", "best"}
	h := fnv.New64a()
	res := chaosResult{states: map[string]string{}, phases: map[string]string{}}

	do := func(i int) {
		req := serve.Request{Model: m, Conditions: conds(), Tenant: tenants[i%len(tenants)]}
		if i%4 == 3 {
			// Pinned probes: they reach cordoned shards (lifting cordons
			// needs evidence) and advance lagging lane clocks.
			req.Device = laneNames[(i/4)%len(laneNames)]
		}
		r, _ := fl.rt.Do(req)
		res.requests++
		res.responses++ // Do returned exactly once, whatever the status
		bumpClock()
		fmt.Fprintf(h, "%d|%s|%x;", r.Status, r.Device,
			math.Float64bits(r.Decision.Measurement.LatencyS))
		if sup.MaybeTick(fl.rt.VirtualNow()) {
			aud.Observe()
		}
		if i%150 == 149 {
			fl.rt.SyncPolicies() // exercises partitions and checkpoint I/O
		}
	}

	// settled: the storm has expired at every surviving lane and the
	// supervisor has nothing pending (every shard ok or condemned).
	settled := func() bool {
		minClock := math.Inf(1)
		for _, sig := range fl.rt.ShardSignals() {
			if sig.State == "dead" || sig.State == "drained" {
				continue
			}
			if sig.VirtualS < minClock {
				minClock = sig.VirtualS
			}
		}
		if minClock < chaosHorizonS+0.1 {
			return false
		}
		for _, row := range sup.Status().Shards {
			if row.Phase != "ok" && row.Phase != "dead" {
				return false
			}
		}
		return true
	}

	i := 0
	for ; i < 20000 && !settled(); i++ {
		do(i)
	}
	if !settled() {
		t.Fatalf("chaos(seed=%d,i=%.1f) never settled in %d requests: states=%v phases=%v",
			seed, intensity, i, shardStates(fl), phaseMap(sup))
	}
	aud.Observe()
	res.states = shardStates(fl)
	res.phases = phaseMap(sup)
	for _, sig := range fl.rt.ShardSignals() {
		fmt.Fprintf(h, "S:%s=%s/%d@%x;", sig.Name, sig.State, sig.Incarnation,
			math.Float64bits(sig.VirtualS))
	}

	if err := fl.rt.Shutdown(context.Background()); err != nil {
		t.Fatalf("chaos(seed=%d,i=%.1f) shutdown: %v", seed, intensity, err)
	}
	aud.Final()
	res.viols = aud.Violations()

	met := fl.rt.RouterMetrics()
	res.met = map[string]uint64{
		"submitted": met.Submitted, "shed": met.Shed, "failed": met.Failed,
		"completed": met.Completed, "kills": met.ShardKills, "drains": met.ShardDrains,
		"cordons": met.Cordons, "revives": met.Revives, "rehomed": met.RehomedDevices,
	}
	merged := fl.rt.Snapshot()
	fmt.Fprintf(h, "M:%+v;served=%d;shed=%d;failed=%d;energy=%x",
		met, merged.Served, merged.Shed, merged.Failed, math.Float64bits(merged.Energy.Sum))
	res.digest = fmt.Sprintf("%x-n%d", h.Sum64(), res.requests)
	return res
}

func shardStates(fl *fleet) map[string]string {
	out := map[string]string{}
	for _, sig := range fl.rt.ShardSignals() {
		out[sig.Name] = sig.State
	}
	return out
}

func phaseMap(sup *Supervisor) map[string]string {
	out := map[string]string{}
	for _, row := range sup.Status().Shards {
		out[row.Name] = row.Phase
	}
	return out
}

// checkChaos asserts the invariants one run must satisfy.
func checkChaos(t *testing.T, seed int64, intensity float64, res chaosResult) {
	t.Helper()
	label := fmt.Sprintf("chaos(seed=%d,i=%.1f)", seed, intensity)
	if len(res.viols) != 0 {
		t.Errorf("%s: invariant violations: %v", label, res.viols)
	}
	if res.responses != res.requests {
		t.Errorf("%s: %d responses for %d requests", label, res.responses, res.requests)
	}
	if res.met["submitted"] != uint64(res.requests) {
		t.Errorf("%s: router saw %d submissions for %d requests", label, res.met["submitted"], res.requests)
	}
	// Every non-dead shard ends the storm healthy; dead means the
	// supervisor spent the shard's remediation budget, which the schedule
	// can legitimately force — but the phases must agree.
	for name, st := range res.states {
		switch st {
		case "healthy":
			if ph := res.phases[name]; ph != "ok" {
				t.Errorf("%s: %s healthy at the router but %q at the supervisor", label, name, ph)
			}
		case "dead":
			if ph := res.phases[name]; ph != "dead" {
				t.Errorf("%s: %s dead at the router but %q at the supervisor", label, name, ph)
			}
		default:
			t.Errorf("%s: shard %s ended the storm %q, want healthy or dead", label, name, st)
		}
	}
}

// TestChaosSoakTracing pins the observability acceptance bar: running the
// storm with causal tracing and a flight recorder attached (1) does not
// perturb a single decision — the response digest matches the untraced run
// bit for bit, because the tracer samples from its own stream — (2) replays
// byte-identically against a fresh tracer, and (3) the supervisor's
// remediations during the storm snapshot incident bundles whose decide
// provenance exposes Q-values, the applied mask, and the exploration flag.
func TestChaosSoakTracing(t *testing.T) {
	const seed, intensity = 101, 0.9

	plain := runChaos(t, seed, intensity)

	traceRun := func() (chaosResult, *tracez.Tracer, *tracez.FlightRecorder, string) {
		dir := t.TempDir()
		tr := tracez.New(tracez.Config{SampleRate: 0.25, Ring: 256, Seed: seed})
		rec := tracez.NewFlightRecorder(tr, dir, 0, 0)
		res := runChaos(t, seed, intensity, func(c *router.Config) {
			c.Tracer = tr
			c.Recorder = rec
		})
		return res, tr, rec, dir
	}
	traced, tr, rec, dir := traceRun()
	if traced.digest != plain.digest {
		t.Fatalf("tracing perturbed the storm: digest %s with tracing vs %s without",
			traced.digest, plain.digest)
	}
	retraced, _, _, _ := traceRun()
	if retraced.digest != traced.digest {
		t.Fatalf("traced replay diverged: %s vs %s", retraced.digest, traced.digest)
	}

	// The storm forces remediations (checkChaos proves shards cycle); each
	// cordon/drain/revive/condemn must have snapshotted a bundle.
	dumps, err := rec.Dumps()
	if err != nil {
		t.Fatalf("flight recorder dump error: %v", err)
	}
	if dumps == 0 {
		t.Fatal("storm completed without a single flight-recorder incident")
	}
	bundles, err := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if err != nil || len(bundles) == 0 {
		t.Fatalf("no incident bundles on disk (err=%v)", err)
	}

	// The event ring saw the non-trace sources: supervisor ladder edges at
	// minimum (breaker/planner/checkpoint events depend on the schedule).
	kinds := map[string]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	if kinds["super"] == 0 {
		t.Fatalf("no supervisor events in the flight ring: %v", kinds)
	}

	// Kept decide spans expose full provenance, and it survives into the
	// serialized bundle.
	withProv := 0
	for _, ct := range tr.Kept() {
		if ct.HasProv && len(ct.Prov.Q) > 0 && len(ct.Prov.Mask) > 0 {
			withProv++
		}
	}
	if withProv == 0 {
		t.Fatal("no kept trace carries decision provenance")
	}
	raw, err := os.ReadFile(bundles[len(bundles)-1])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"events"`, `"reason"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("incident bundle missing %s:\n%.400s", want, raw)
		}
	}
}

// TestChaosSoak is the capstone: seeded storms mixing every fault kind over
// a supervised three-shard fleet, with the invariant auditor asserting
// conservation, clock monotonicity, in-flight settling and checkpoint CRC
// integrity — plus byte-identical fixed-seed replay and cross-seed
// divergence. Short mode runs a small matrix (the `make chaos-short` /
// `make verify` gate); the full matrix is `make chaos`.
func TestChaosSoak(t *testing.T) {
	seeds := []int64{101, 102, 103, 104, 105}
	intensities := []float64{0.4, 0.9}
	if testing.Short() {
		seeds = seeds[:2]
		intensities = intensities[1:]
	}

	base := runtime.NumGoroutine()
	digests := map[string]string{}
	for _, seed := range seeds {
		for _, in := range intensities {
			res := runChaos(t, seed, in)
			checkChaos(t, seed, in, res)
			digests[fmt.Sprintf("%d/%.1f", seed, in)] = res.digest
		}
	}

	// Fixed-seed replay must be byte-identical (same digest over every
	// response and final counter); different seeds must diverge.
	re := runChaos(t, seeds[0], intensities[0])
	if want := digests[fmt.Sprintf("%d/%.1f", seeds[0], intensities[0])]; re.digest != want {
		t.Errorf("replay diverged: digest %s vs %s", re.digest, want)
	}
	k1 := fmt.Sprintf("%d/%.1f", seeds[0], intensities[0])
	k2 := fmt.Sprintf("%d/%.1f", seeds[1], intensities[0])
	if digests[k1] == digests[k2] {
		t.Errorf("different seeds produced identical storms: %s", digests[k1])
	}

	// No goroutine leaks: all gateways (including revived incarnations)
	// shut down, so the count settles back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d now vs %d at start\n%s", n, base, buf[:runtime.Stack(buf, true)])
	}
}
