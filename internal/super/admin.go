package super

import (
	"autoscale/internal/core"
	"autoscale/internal/serve"
	"autoscale/internal/serve/metrics"
)

// The supervisor fronts its router for the admin endpoint: point
// serve.ServeAdminSource at the supervisor and every router view works
// unchanged, plus /supervisor lights up and /metrics gains the
// autoscale_super_* series. All views are read-side only.

// Snapshot merges the shard registries (router view, unchanged).
func (s *Supervisor) Snapshot() metrics.Snapshot { return s.rt.Snapshot() }

// Health merges per-device learning health (router view, unchanged).
func (s *Supervisor) Health() map[string]core.Health { return s.rt.Health() }

// Closed reports whether the routing tier has shut down.
func (s *Supervisor) Closed() bool { return s.rt.Closed() }

// ShardStatuses delegates the /shards shard rows to the router.
func (s *Supervisor) ShardStatuses() []serve.ShardStatus { return s.rt.ShardStatuses() }

// TenantQueues delegates the /shards tenant rows to the router.
func (s *Supervisor) TenantQueues() []serve.TenantQueueStatus { return s.rt.TenantQueues() }

// SupervisorJSON renders the /supervisor document.
func (s *Supervisor) SupervisorJSON() ([]byte, error) { return s.StatusJSON() }
