package super

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"autoscale/internal/policy"
	"autoscale/internal/router"
)

// Auditor asserts the chaos-soak invariants, during the storm (Observe) and
// after it settles (Final). It is deliberately dumb: it recomputes every
// invariant from public accessors rather than trusting any component's own
// bookkeeping, so a conservation bug in the router or a CRC bug in the store
// surfaces as a violation instead of passing silently.
//
// Invariants checked:
//
//   - Virtual clocks are monotone per (shard, incarnation) — a revived
//     gateway legitimately restarts at zero, so the incarnation counter
//     scopes the check.
//   - Requests are conserved exactly once at the router:
//     Submitted == Shed + Failed + Completed when the system is quiet.
//   - The router's in-flight gauge returns to zero.
//   - Every surviving checkpoint envelope parses with a valid CRC (the
//     store's Latest either succeeds or reports ErrNoCheckpoint; anything
//     else means an undetected-corruption escape).
//
// Goroutine-leak and exactly-one-response-per-request checks live in the
// driving test, which owns the request futures and the process baseline.
type Auditor struct {
	rt    *router.Router
	store *policy.Store

	mu     sync.Mutex
	clocks map[string]clockMark
	viols  []string
}

type clockMark struct {
	incarnation int
	virtualS    float64
}

// NewAuditor builds an auditor over a router and (optionally) the raw
// checkpoint store backing it. Pass the *policy.Store itself, not a fault
// sink wrapping it — the final CRC sweep must see real I/O.
func NewAuditor(rt *router.Router, store *policy.Store) (*Auditor, error) {
	if rt == nil {
		return nil, errors.New("super: nil router")
	}
	return &Auditor{rt: rt, store: store, clocks: make(map[string]clockMark)}, nil
}

func (a *Auditor) violate(format string, args ...any) {
	a.viols = append(a.viols, fmt.Sprintf(format, args...))
}

// Observe samples the mid-storm invariants; call it from the driving loop as
// often as desired (each supervision tick is the natural cadence).
func (a *Auditor) Observe() {
	sigs := a.rt.ShardSignals()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, sig := range sigs {
		mark, ok := a.clocks[sig.Name]
		if ok && mark.incarnation == sig.Incarnation && sig.VirtualS < mark.virtualS {
			a.violate("shard %s incarnation %d: virtual clock moved backwards (%.6f -> %.6f)",
				sig.Name, sig.Incarnation, mark.virtualS, sig.VirtualS)
		}
		a.clocks[sig.Name] = clockMark{incarnation: sig.Incarnation, virtualS: sig.VirtualS}
	}
}

// Final checks the post-storm invariants. Call it only after the last
// request's response has been received and background work has stopped.
func (a *Auditor) Final() {
	a.mu.Lock()
	defer a.mu.Unlock()

	rm := a.rt.RouterMetrics()
	if rm.Submitted != rm.Shed+rm.Failed+rm.Completed {
		a.violate("router conservation broken: submitted %d != shed %d + failed %d + completed %d",
			rm.Submitted, rm.Shed, rm.Failed, rm.Completed)
	}
	if n := a.rt.Inflight(); n != 0 {
		a.violate("router in-flight gauge did not settle: %d", n)
	}

	if a.store != nil {
		devices, err := a.store.Devices()
		if err != nil {
			a.violate("checkpoint store unreadable: %v", err)
			return
		}
		sort.Strings(devices)
		for _, dev := range devices {
			if _, err := a.store.Latest(dev); err != nil && !errors.Is(err, policy.ErrNoCheckpoint) {
				a.violate("checkpoint sweep %s: %v", dev, err)
			}
		}
	}
}

// Violations returns every invariant breach recorded so far; empty means the
// storm was clean.
func (a *Auditor) Violations() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.viols...)
}
