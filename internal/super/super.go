// Package super is the fleet's self-healing tier: a supervision loop above
// internal/router that turns signals the system already emits — windowed
// latency histograms, breaker open-counts, crash counters, queue gauges and
// RL learning health — into one health score per shard, and autonomously
// remediates with hysteresis: probe → cordon (stop placing unpinned work) →
// drain + re-home over the checkpoint-warm-start path → restart with
// crash-loop exponential backoff, converging to dead when a bounded
// remediation budget runs out.
//
// Like the planner it sits next to, the supervisor runs on the virtual
// clock: MaybeTick is called from the driving loop with the current virtual
// time, every decision is a pure function of the tick sequence and the
// signals observed at each tick, and no wall-clock time or randomness enters
// the loop — so a fixed-seed chaos storm supervises byte-identically on
// every replay.
package super

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"autoscale/internal/obs"
	"autoscale/internal/router"
	"autoscale/internal/serve/metrics"
	"autoscale/internal/tracez"
)

// Config tunes a Supervisor. Zero values select the defaults.
type Config struct {
	// IntervalS is the tick period on the virtual clock (default 0.5s).
	IntervalS float64
	// LatencyTargetS is the windowed p95 the latency component scores
	// against (default 0.1s).
	LatencyTargetS float64
	// UnhealthyBelow is the score under which a tick counts as sick
	// (default 0.5); HealthyAbove the score over which a tick counts as
	// well (default 0.75). The gap between them is the hysteresis band.
	UnhealthyBelow float64
	HealthyAbove   float64
	// SickTicks is how many consecutive sick ticks cordon a shard
	// (default 2); WellTicks how many consecutive well ticks lift the
	// cordon (default 2).
	SickTicks int
	WellTicks int
	// DrainAfterTicks is how many cordoned-and-still-sick ticks escalate
	// to drain + restart (default 3).
	DrainAfterTicks int
	// RestartBackoffS is the first revive delay on the virtual clock; it
	// doubles per restart — the crash-loop backoff (default 2s).
	RestartBackoffS float64
	// MaxRestarts is the remediation budget: revive attempts per shard
	// before it is condemned dead (default 3).
	MaxRestarts int
	// DrainTimeout bounds each escalated drain (default 30s wall — the
	// drain itself is queue work, not virtual time).
	DrainTimeout time.Duration
}

func (c Config) intervalS() float64 {
	if c.IntervalS <= 0 {
		return 0.5
	}
	return c.IntervalS
}

func (c Config) latencyTargetS() float64 {
	if c.LatencyTargetS <= 0 {
		return 0.1
	}
	return c.LatencyTargetS
}

func (c Config) unhealthyBelow() float64 {
	if c.UnhealthyBelow <= 0 {
		return 0.5
	}
	return c.UnhealthyBelow
}

func (c Config) healthyAbove() float64 {
	if c.HealthyAbove <= 0 {
		return 0.75
	}
	return c.HealthyAbove
}

func (c Config) sickTicks() int {
	if c.SickTicks <= 0 {
		return 2
	}
	return c.SickTicks
}

func (c Config) wellTicks() int {
	if c.WellTicks <= 0 {
		return 2
	}
	return c.WellTicks
}

func (c Config) drainAfterTicks() int {
	if c.DrainAfterTicks <= 0 {
		return 3
	}
	return c.DrainAfterTicks
}

func (c Config) restartBackoffS() float64 {
	if c.RestartBackoffS <= 0 {
		return 2
	}
	return c.RestartBackoffS
}

func (c Config) maxRestarts() int {
	if c.MaxRestarts <= 0 {
		return 3
	}
	return c.MaxRestarts
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 30 * time.Second
	}
	return c.DrainTimeout
}

// phase is the supervisor's view of one shard — finer than the router's
// lifecycle because it carries the remediation ladder's position.
type phase int

const (
	phaseOK phase = iota
	phaseProbing
	phaseCordoned
	phaseDown // awaiting restart (drained or dead at the router)
	phaseDead // condemned: remediation budget exhausted
)

func (p phase) String() string {
	switch p {
	case phaseOK:
		return "ok"
	case phaseProbing:
		return "probing"
	case phaseCordoned:
		return "cordoned"
	case phaseDown:
		return "down"
	case phaseDead:
		return "dead"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// record is the supervisor's per-shard state.
type record struct {
	name        string
	phase       phase
	incarnation int

	sick, well  int
	cordonTicks int

	restarts      int
	backoffS      float64
	nextRestartAt float64

	lastScore   float64
	lastReason  string
	lastSampled bool

	// Windowed-delta baselines, reset on incarnation change (a revived
	// gateway's counters restart at zero).
	prevLat     metrics.HistogramSnapshot
	prevOpens   int64
	prevCrashes int64
}

// Action is one remediation the supervisor took, for the status document.
type Action struct {
	AtS    float64 `json:"at_s"`
	Shard  string  `json:"shard"`
	Action string  `json:"action"`
	Detail string  `json:"detail,omitempty"`
}

// maxActions bounds the remembered remediation log.
const maxActions = 64

// Supervisor is the self-healing loop over one router. MaybeTick is safe for
// concurrent callers, but determinism requires the same single driving
// goroutine discipline the planner uses.
type Supervisor struct {
	rt  *router.Router
	cfg Config

	mu       sync.Mutex
	primed   bool
	lastTick float64
	ticks    uint64
	recs     map[string]*record
	actions  []Action
}

// New builds a supervisor over a router.
func New(rt *router.Router, cfg Config) (*Supervisor, error) {
	if rt == nil {
		return nil, errors.New("super: nil router")
	}
	return &Supervisor{rt: rt, cfg: cfg, recs: make(map[string]*record)}, nil
}

// MaybeTick runs one supervision pass when the virtual clock has advanced a
// full interval past the last tick; otherwise it returns false without
// touching anything. Call it from the driving loop with the current virtual
// time, exactly like plan.Planner.MaybeTick.
func (s *Supervisor) MaybeTick(now float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.primed && now-s.lastTick < s.cfg.intervalS() {
		return false
	}
	s.primed = true
	s.lastTick = now
	s.ticks++
	s.tickLocked(now)
	return true
}

func (s *Supervisor) note(now float64, shard, action, detail string) {
	s.actions = append(s.actions, Action{AtS: now, Shard: shard, Action: action, Detail: detail})
	if len(s.actions) > maxActions {
		s.actions = s.actions[len(s.actions)-maxActions:]
	}
	// Every ladder edge lands in the flight recorder's event ring, and the
	// active interventions snapshot an incident bundle to disk — the black-box
	// dump an operator replays after the fleet healed itself.
	rec := s.rt.Recorder()
	msg := action
	if detail != "" {
		msg = action + ": " + detail
	}
	rec.Note(now, "super", shard, msg)
	switch action {
	case "cordon", "drain", "revive", "condemn":
		rec.Trigger(now, "super "+action+" "+shard)
	}
}

// Tracer exposes the router's causal tracer, so a supervised deployment's
// admin endpoint (ServeAdminSource over the Supervisor) lights up /traces.
func (s *Supervisor) Tracer() *tracez.Tracer { return s.rt.Tracer() }

func (s *Supervisor) tickLocked(now float64) {
	for _, sig := range s.rt.ShardSignals() {
		rec, ok := s.recs[sig.Name]
		if !ok {
			rec = &record{name: sig.Name, backoffS: s.cfg.restartBackoffS(), lastScore: 1}
			s.recs[sig.Name] = rec
		}
		if sig.Incarnation != rec.incarnation {
			// A fresh gateway: counters restarted, windows are meaningless.
			rec.incarnation = sig.Incarnation
			rec.prevLat = metrics.HistogramSnapshot{}
			rec.prevOpens, rec.prevCrashes = 0, 0
		}
		s.superviseShard(now, rec, sig)
	}
}

// superviseShard advances one shard's remediation ladder by one tick.
func (s *Supervisor) superviseShard(now float64, rec *record, sig router.ShardSignal) {
	if rec.phase == phaseDead {
		return
	}

	serving := sig.State == "healthy" || sig.State == "cordoned"
	if serving {
		rec.lastScore, rec.lastReason, rec.lastSampled = s.score(rec, sig)
	}

	switch {
	case rec.phase == phaseDown:
		if serving {
			// Someone revived it outside the supervisor; observe it fresh.
			rec.phase = phaseProbing
			rec.sick, rec.well = 0, 0
			return
		}
		if now < rec.nextRestartAt {
			return
		}
		if rec.restarts >= s.cfg.maxRestarts() {
			s.condemn(now, rec)
			return
		}
		rec.restarts++
		if err := s.rt.ReviveShard(rec.name); err != nil {
			s.note(now, rec.name, "revive-failed", err.Error())
			rec.nextRestartAt = now + rec.backoffS
			rec.backoffS *= 2
			if rec.restarts >= s.cfg.maxRestarts() {
				s.condemn(now, rec)
			}
			return
		}
		s.note(now, rec.name, "revive", fmt.Sprintf("restart %d/%d", rec.restarts, s.cfg.maxRestarts()))
		// Crash-loop backoff: the next failure waits twice as long.
		rec.backoffS *= 2
		rec.phase = phaseProbing
		rec.sick, rec.well, rec.cordonTicks = 0, 0, 0

	case sig.State == "dead" || sig.State == "drained":
		// Died since the last tick (crash drill or an external drain):
		// enter the restart path.
		s.note(now, rec.name, "down", "observed "+sig.State)
		rec.phase = phaseDown
		rec.nextRestartAt = now + rec.backoffS

	case sig.State == "draining":
		// Transient; re-judge next tick.

	case sig.State == "cordoned":
		rec.phase = phaseCordoned
		if !rec.lastSampled {
			// No probe traffic reached it this window: no evidence either
			// way, so the cordon neither lifts nor escalates. Pinned probes
			// (or breaker/crash deltas) are what move a cordoned shard.
			return
		}
		if rec.lastScore >= s.cfg.healthyAbove() {
			rec.well++
		} else {
			rec.well = 0
			rec.cordonTicks++
		}
		if rec.well >= s.cfg.wellTicks() {
			if err := s.rt.UncordonShard(rec.name); err == nil {
				s.note(now, rec.name, "uncordon", "")
				rec.phase = phaseOK
				rec.sick, rec.well, rec.cordonTicks = 0, 0, 0
			}
			return
		}
		if rec.cordonTicks >= s.cfg.drainAfterTicks() {
			// Still sick under cordon: drain it (checkpoints flush, lanes
			// re-home warm) and schedule a restart with backoff.
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
			err := s.rt.DrainShard(ctx, rec.name)
			cancel()
			if err != nil {
				s.note(now, rec.name, "drain-failed", err.Error())
			} else {
				s.note(now, rec.name, "drain", "cordon did not recover")
			}
			rec.phase = phaseDown
			rec.nextRestartAt = now + rec.backoffS
		}

	default: // healthy at the router
		if rec.lastScore < s.cfg.unhealthyBelow() {
			rec.sick++
			rec.well = 0
		} else {
			rec.sick = 0
		}
		if rec.sick >= s.cfg.sickTicks() {
			if err := s.rt.CordonShard(rec.name); err == nil {
				s.note(now, rec.name, "cordon", rec.lastReason)
				rec.phase = phaseCordoned
				rec.cordonTicks, rec.well = 0, 0
			}
			return
		}
		if rec.sick > 0 {
			rec.phase = phaseProbing
		} else {
			rec.phase = phaseOK
		}
	}
}

func (s *Supervisor) condemn(now float64, rec *record) {
	if err := s.rt.CondemnShard(rec.name); err != nil {
		s.note(now, rec.name, "condemn-failed", err.Error())
	} else {
		s.note(now, rec.name, "condemn", fmt.Sprintf("budget exhausted after %d restarts", rec.restarts))
	}
	rec.phase = phaseDead
}

// score computes one shard's health in [0, 1] from the signals the system
// already emits, over the window since the last tick. Components:
// windowed-p95 latency vs target (weight 0.45), breaker opens (0.2), worker
// crashes (0.2), queue depth (0.1) and RL TD-error health (0.05). A window
// with no served requests scores its latency component neutral — absence of
// traffic is not evidence of sickness — and reports sampled=false so the
// cordon logic can tell a probed-healthy window from an idle one. It also
// advances the windowed-delta baselines.
func (s *Supervisor) score(rec *record, sig router.ShardSignal) (float64, string, bool) {
	lat := 1.0
	sampled := false
	cur := sig.Snap.Latency
	if dCount := cur.Count - rec.prevLat.Count; dCount > 0 && len(cur.Counts) > 0 {
		sampled = true
		delta := metrics.HistogramSnapshot{
			Scheme: cur.Scheme,
			Counts: make([]int64, len(cur.Counts)),
			Count:  dCount,
			Max:    cur.Max,
		}
		for i, c := range cur.Counts {
			prev := int64(0)
			if i < len(rec.prevLat.Counts) {
				prev = rec.prevLat.Counts[i]
			}
			delta.Counts[i] = c - prev
		}
		if p95 := delta.Quantile(0.95); p95 > s.cfg.latencyTargetS() {
			lat = s.cfg.latencyTargetS() / p95
		}
	}

	opens := sig.Snap.BreakerOpens - rec.prevOpens
	if opens < 0 {
		opens = 0
	}
	brk := 1.0 / float64(1+opens)

	crashes := sig.Snap.WorkerCrashes - rec.prevCrashes
	if crashes < 0 {
		crashes = 0
	}
	crash := 1.0 / float64(1+2*crashes)

	queue := 1.0 / (1 + float64(sig.Snap.QueueDepth)/16)

	rl := 1.0
	if len(sig.Health) > 0 {
		td := 0.0
		for _, h := range sig.Health {
			td += h.TDErrorEMA
		}
		td /= float64(len(sig.Health))
		rl = 1.0 / (1 + td)
	}

	// Advance the window baselines.
	rec.prevLat = cur
	rec.prevOpens = sig.Snap.BreakerOpens
	rec.prevCrashes = sig.Snap.WorkerCrashes

	// Weighted geometric mean: unlike an additive mix, one catastrophic
	// component (a 30x gray latency multiplier, say) drags the whole score
	// below the sick threshold even while every other signal looks clean.
	score := math.Pow(lat, 0.45) * math.Pow(brk, 0.2) * math.Pow(crash, 0.2) *
		math.Pow(queue, 0.1) * math.Pow(rl, 0.05)
	reason := "latency"
	worst := lat
	for _, c := range []struct {
		name string
		v    float64
	}{{"breakers", brk}, {"crashes", crash}, {"queue", queue}, {"rl", rl}} {
		if c.v < worst {
			worst, reason = c.v, c.name
		}
	}
	if opens > 0 || crashes > 0 {
		sampled = true
	}
	if score >= s.cfg.healthyAbove() {
		reason = ""
	}
	return score, reason, sampled
}

// ShardStatus is one shard's row in the /supervisor document.
type ShardStatus struct {
	Name        string  `json:"name"`
	RouterState string  `json:"router_state"`
	Phase       string  `json:"phase"`
	Score       float64 `json:"score"`
	Reason      string  `json:"reason,omitempty"`
	SickTicks   int     `json:"sick_ticks,omitempty"`
	WellTicks   int     `json:"well_ticks,omitempty"`
	Restarts    int     `json:"restarts,omitempty"`
	Incarnation int     `json:"incarnation,omitempty"`
	NextRetryS  float64 `json:"next_retry_s,omitempty"`
}

// Status is the /supervisor document: the supervision loop's current view
// and its recent remediation log.
type Status struct {
	Ticks     uint64        `json:"ticks"`
	LastTickS float64       `json:"last_tick_s"`
	IntervalS float64       `json:"interval_s"`
	Shards    []ShardStatus `json:"shards"`
	Actions   []Action      `json:"actions,omitempty"`
}

// Status reports the supervisor's current state, shards in name order.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Ticks:     s.ticks,
		LastTickS: s.lastTick,
		IntervalS: s.cfg.intervalS(),
		Actions:   append([]Action(nil), s.actions...),
	}
	for _, sig := range s.rt.ShardSignals() {
		row := ShardStatus{Name: sig.Name, RouterState: sig.State, Phase: phaseOK.String(), Score: 1}
		if rec, ok := s.recs[sig.Name]; ok {
			row.Phase = rec.phase.String()
			row.Score = rec.lastScore
			row.Reason = rec.lastReason
			row.SickTicks = rec.sick
			row.WellTicks = rec.well
			row.Restarts = rec.restarts
			row.Incarnation = rec.incarnation
			if rec.phase == phaseDown {
				row.NextRetryS = rec.nextRestartAt
			}
		}
		st.Shards = append(st.Shards, row)
	}
	return st
}

// StatusJSON renders Status for the admin /supervisor handler.
func (s *Supervisor) StatusJSON() ([]byte, error) {
	return json.MarshalIndent(s.Status(), "", "  ")
}

// phaseValue encodes a phase for the Prometheus gauge.
func phaseValue(p string) float64 {
	switch p {
	case "probing":
		return 1
	case "cordoned":
		return 2
	case "down":
		return 3
	case "dead":
		return 4
	}
	return 0
}

// PromText renders the router's merged metrics body plus the supervisor's
// autoscale_super_* series, so a supervised deployment scrapes one endpoint.
func (s *Supervisor) PromText() []byte {
	body := s.rt.PromText()
	st := s.Status()
	var p obs.Prom
	p.Counter("autoscale_super_ticks_total", "Supervision passes run.", float64(st.Ticks))
	p.Gauge("autoscale_super_last_tick_seconds", "Virtual time of the last supervision pass.", st.LastTickS)
	for _, sh := range st.Shards {
		p.Gauge("autoscale_super_score", "Per-shard health score in [0,1].", sh.Score, "shard", sh.Name)
		p.Gauge("autoscale_super_phase", "Remediation phase: 0 ok, 1 probing, 2 cordoned, 3 down, 4 dead.",
			phaseValue(sh.Phase), "shard", sh.Name)
		p.Counter("autoscale_super_restarts_total", "Revive attempts consumed.", float64(sh.Restarts), "shard", sh.Name)
		p.Gauge("autoscale_super_incarnation", "Gateway rebuilds observed.", float64(sh.Incarnation), "shard", sh.Name)
	}
	return append(body, p.Bytes()...)
}
