package super

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/policy"
	"autoscale/internal/router"
	"autoscale/internal/serve"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func conds() sim.Conditions { return sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55} }

// fleet is a supervised test fleet: a sharded router whose ShardFactory can
// rebuild any shard deterministically (same per-lane seeds), over one
// checkpoint store and one compiled fault schedule.
type fleet struct {
	rt    *router.Router
	store *policy.Store
	inj   *fault.Injector
	lanes []string
}

// buildFleet stands up len(shards) gateways ("shard-a": lanes...) with
// Mi8Pro-backed lanes seeded seed, seed+1, ... in sorted shard/lane order,
// all sharing store and the compiled schedule. sink, when non-nil, replaces
// the raw store as the gateways' and router's checkpoint sink (fault-drill
// plumbing); the auditor still sweeps the raw store.
func buildFleet(t testing.TB, seed int64, sched *fault.Schedule, shards map[string][]string, sink policy.Sink, opts ...func(*router.Config)) *fleet {
	t.Helper()
	store, err := policy.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		sink = store
	} else if fs, ok := sink.(*policy.FaultSink); ok && fs.Inner == nil {
		// Chaos plumbing: the caller hands an empty fault sink and fills in
		// the verdict wiring once the router exists; the store slots in here
		// so construction-time warm starts already flow through it.
		fs.Inner = store
	}
	inj := fault.New(sched, exec.NewRoot(seed).Child("faults"))

	names := make([]string, 0, len(shards))
	for name := range shards {
		names = append(names, name)
	}
	sort.Strings(names)
	seeds := make(map[string]int64)
	var lanes []string
	next := seed
	for _, name := range names {
		for _, lane := range shards[name] {
			seeds[lane] = next
			lanes = append(lanes, lane)
			next++
		}
	}

	mkEngine := func(lane string) (*core.Engine, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seeds[lane]
		return core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seeds[lane]), cfg)
	}
	mkShard := func(name string, devs []string) (*serve.Gateway, error) {
		backends := make([]serve.Backend, 0, len(devs))
		for _, lane := range devs {
			e, err := mkEngine(lane)
			if err != nil {
				return nil, err
			}
			backends = append(backends, serve.Backend{Device: lane, Engine: e})
		}
		return serve.New(backends, serve.Config{
			Name: name, QueueDepth: 256, Checkpoints: sink, Faults: inj,
			PolicySync: policy.SyncConfig{Sleep: func(time.Duration) {}},
		})
	}

	gws := make([]router.ShardGateway, 0, len(names))
	for _, name := range names {
		gw, err := mkShard(name, shards[name])
		if err != nil {
			t.Fatal(err)
		}
		gws = append(gws, router.ShardGateway{Name: name, Gateway: gw})
	}
	rcfg := router.Config{
		Tenants:          []router.Tenant{{Name: "gold", Weight: 4}, {Name: "silver", Weight: 2}, {Name: "best", Weight: 1}},
		TenantQueueDepth: 1024,
		Checkpoints:      sink,
		Faults:           inj,
		PolicySync:       policy.SyncConfig{Sleep: func(time.Duration) {}},
		EngineFactory:    mkEngine,
		ShardFactory:     mkShard,
	}
	for _, opt := range opts {
		opt(&rcfg)
	}
	rt, err := router.New(gws, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fleet{rt: rt, store: store, inj: inj, lanes: lanes}
}

func p95(lat []float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	return s[len(s)*95/100]
}

// grayRun drives a two-shard fleet through a gray-degradation window on both
// of shard-b's lanes: no crash, no breaker trip — just a silent latency
// multiplier. It returns the post-onset latencies and the router's final
// view. Supervised runs tick a Supervisor (target calibrated from the
// healthy warmup); naive runs fly blind.
func grayRun(t *testing.T, seed int64, supervised bool) (healthy, degraded []float64, rt *router.Router) {
	t.Helper()
	const grayFrom = 1.5
	sched := &fault.Schedule{Name: "gray", Faults: []fault.Spec{
		{Kind: fault.KindGrayDegrade, Device: "lane-b0", StartS: grayFrom, EndS: 3600, Factor: 30},
		{Kind: fault.KindGrayDegrade, Device: "lane-b1", StartS: grayFrom, EndS: 3600, Factor: 30},
	}}
	fl := buildFleet(t, seed, sched, map[string][]string{
		"shard-a": {"lane-a0", "lane-a1"},
		"shard-b": {"lane-b0", "lane-b1"},
	}, nil)
	rt = fl.rt

	m := dnn.MustByName("MobileNet v3")
	do := func() float64 {
		r, err := rt.Do(serve.Request{Model: m, Conditions: conds(), Tenant: "gold"})
		if err != nil {
			t.Fatalf("request failed: %v (%+v)", err, r)
		}
		return r.Decision.Measurement.LatencyS
	}

	// Warmup: every lane clock past the gray onset means the fault holds for
	// the whole measured phase.
	for rt.VirtualNow() < grayFrom || len(healthy) < 80 {
		healthy = append(healthy, do())
		if len(healthy) > 2000 {
			t.Fatal("warmup never reached the gray onset")
		}
	}

	var sup *Supervisor
	if supervised {
		var err error
		sup, err = New(rt, Config{
			IntervalS:      0.25,
			LatencyTargetS: 2 * p95(healthy),
			SickTicks:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		sup.MaybeTick(rt.VirtualNow()) // prime the window baselines
	}
	for i := 0; i < 400; i++ {
		degraded = append(degraded, do())
		if sup != nil {
			sup.MaybeTick(rt.VirtualNow())
		}
	}
	return healthy, degraded, rt
}

// TestGrayFailureCordon is the gray-failure regression drill: a shard under
// a latency multiplier that never crashes must be cordoned by the
// supervisor, and the supervised fleet's tail latency must stay near
// healthy, while the naive fleet's p95 blows up by the full gray factor.
func TestGrayFailureCordon(t *testing.T) {
	const seed = 11
	healthyN, naive, rtN := grayRun(t, seed, false)
	healthyS, supervised, rtS := grayRun(t, seed, true)

	if st := rtN.ShardState("shard-b"); st != "healthy" {
		t.Fatalf("naive run moved shard-b to %q with no supervisor", st)
	}
	if st := rtS.ShardState("shard-b"); st != "cordoned" {
		t.Fatalf("supervised run left shard-b %q, want cordoned", st)
	}
	if m := rtS.RouterMetrics(); m.Cordons == 0 {
		t.Fatalf("no cordon recorded: %+v", m)
	}

	// Naive: half the unpinned traffic keeps landing on the gray shard, so
	// gold-class p95 explodes relative to the healthy baseline.
	base := p95(healthyN)
	if got := p95(naive); got < 5*base {
		t.Fatalf("gray fault too gentle: naive p95 %.1fms vs healthy %.1fms", got*1e3, base*1e3)
	}
	// Supervised: after the cordon (SickTicks * interval of exposure), the
	// tail of the run routes around the gray shard. Judge the second half.
	tail := supervised[len(supervised)/2:]
	if got, limit := p95(tail), 3*p95(healthyS); got > limit {
		t.Errorf("supervised tail p95 %.1fms exceeds %.1fms: cordon did not shield gold class",
			got*1e3, limit*1e3)
	}

	if err := rtN.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := rtS.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCrashLoopConvergesToDead pins the remediation budget: a shard that
// dies again after every revive must consume its restarts with exponential
// backoff and converge to dead — never a hot restart loop.
func TestCrashLoopConvergesToDead(t *testing.T) {
	fl := buildFleet(t, 21, nil, map[string][]string{
		"shard-a": {"lane-a0", "lane-a1"},
		"shard-b": {"lane-b0"},
	}, nil)
	const maxRestarts = 3
	sup, err := New(fl.rt, Config{
		IntervalS:       0.1,
		RestartBackoffS: 0.4,
		MaxRestarts:     maxRestarts,
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := fl.rt.KillShard("shard-b"); err != nil {
		t.Fatal(err)
	}

	phaseOf := func(shard string) string {
		for _, row := range sup.Status().Shards {
			if row.Name == shard {
				return row.Phase
			}
		}
		return ""
	}

	m := dnn.MustByName("MobileNet v3")
	var reviveAt []float64
	lastRevives := uint64(0)
	for i := 0; i < 3000 && phaseOf("shard-b") != "dead"; i++ {
		if _, err := fl.rt.Do(serve.Request{Model: m, Conditions: conds(), Tenant: "best"}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		sup.MaybeTick(fl.rt.VirtualNow())
		if rv := fl.rt.RouterMetrics().Revives; rv > lastRevives {
			lastRevives = rv
			reviveAt = append(reviveAt, fl.rt.VirtualNow())
			// The flap: the revived shard dies again immediately.
			if err := fl.rt.KillShard("shard-b"); err != nil {
				t.Fatalf("re-kill after revive %d: %v", rv, err)
			}
		}
	}

	if ph, st := phaseOf("shard-b"), fl.rt.ShardState("shard-b"); ph != "dead" || st != "dead" {
		t.Fatalf("flapping shard ended phase %q router-state %q, want dead/dead (revives %d)",
			ph, st, lastRevives)
	}
	if lastRevives != maxRestarts {
		t.Fatalf("revives = %d, want the full budget %d", lastRevives, maxRestarts)
	}
	// Exponential backoff: successive revive gaps must grow.
	if len(reviveAt) == maxRestarts {
		g1, g2 := reviveAt[1]-reviveAt[0], reviveAt[2]-reviveAt[1]
		if g2 < 1.5*g1 {
			t.Errorf("backoff not doubling: revive gaps %.2fs then %.2fs", g1, g2)
		}
	}
	st := sup.Status()
	var row *ShardStatus
	for i := range st.Shards {
		if st.Shards[i].Name == "shard-b" {
			row = &st.Shards[i]
		}
	}
	if row == nil || row.Phase != "dead" || row.Restarts != maxRestarts {
		t.Fatalf("supervisor status for shard-b: %+v", row)
	}
	condemned := false
	for _, a := range st.Actions {
		if a.Shard == "shard-b" && a.Action == "condemn" {
			condemned = true
		}
	}
	if !condemned {
		t.Fatalf("no condemn action in the log: %+v", st.Actions)
	}

	// Dead is terminal: more ticks must not resurrect it.
	for i := 0; i < 50; i++ {
		if _, err := fl.rt.Do(serve.Request{Model: m, Conditions: conds(), Tenant: "best"}); err != nil {
			t.Fatal(err)
		}
		sup.MaybeTick(fl.rt.VirtualNow())
	}
	if rv := fl.rt.RouterMetrics().Revives; rv != maxRestarts {
		t.Fatalf("condemned shard revived again: %d revives", rv)
	}
	if err := fl.rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorStatusJSONAndProm smoke-checks the admin surfaces.
func TestSupervisorStatusJSONAndProm(t *testing.T) {
	fl := buildFleet(t, 5, nil, map[string][]string{"shard-a": {"lane-a0"}}, nil)
	defer fl.rt.Shutdown(context.Background())
	sup, err := New(fl.rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sup.MaybeTick(0)
	js, err := sup.StatusJSON()
	if err != nil || len(js) == 0 {
		t.Fatalf("StatusJSON: %v (%d bytes)", err, len(js))
	}
	prom := string(sup.PromText())
	for _, want := range []string{"autoscale_super_ticks_total", "autoscale_super_score", "autoscale_super_phase"} {
		if !strings.Contains(prom, want) {
			t.Errorf("PromText missing %s:\n%s", want, prom)
		}
	}
}
