package fault

import (
	"fmt"

	"autoscale/internal/exec"
)

// RandomOpts parameterizes Randomize: the fleet topology the generated storm
// should target and the virtual horizon it should fit inside.
type RandomOpts struct {
	// Devices are the serving lane names device-scoped faults (crashes,
	// corruption drills, gray degradations, I/O faults, sync partitions)
	// pick from. Empty disables those kinds.
	Devices []string
	// Shards are the gateway shard names shard crashes pick from. Empty
	// disables shard crashes.
	Shards []string
	// HorizonS bounds every generated window/event to [0, HorizonS).
	// Defaults to 60 virtual seconds.
	HorizonS float64
}

func (o RandomOpts) horizon() float64 {
	if o.HorizonS > 0 {
		return o.HorizonS
	}
	return 60
}

// Randomize generates a chaos-soak schedule mixing every fault kind the
// engine knows, scaled by intensity in (0, 1]: higher intensity means more
// faults, longer windows and harsher factors. The schedule is a pure
// function of (seed, intensity, opts) — the same triple always yields a
// byte-identical schedule — and always validates. At least one fault of
// every applicable kind is included, so a soak exercises the full surface
// even at low intensity.
func Randomize(seed int64, intensity float64, opt RandomOpts) *Schedule {
	if intensity <= 0 {
		intensity = 0.1
	} else if intensity > 1 {
		intensity = 1
	}
	ctx := exec.NewRoot(seed).Child("fault.randomize")
	h := opt.horizon()
	s := &Schedule{Name: fmt.Sprintf("chaos-%d-i%02.0f", seed, intensity*100)}

	// count draws how many specs one fault family contributes: at least
	// one, growing with intensity.
	count := func(st *exec.Rand, max int) int {
		n := 1 + st.Intn(1+int(intensity*float64(max)))
		if n > max+1 {
			n = max + 1
		}
		return n
	}
	// win draws a window whose length scales with intensity, clamped to
	// the horizon.
	win := func(st *exec.Rand, maxFrac float64) (float64, float64) {
		length := h * maxFrac * (0.2 + 0.8*intensity) * (0.25 + 0.75*st.Float64())
		start := st.Float64() * (h - length)
		return start, start + length
	}
	pick := func(st *exec.Rand, from []string) string { return from[st.Intn(len(from))] }

	// Site-level faults: outages (solid and Markov), queue spikes.
	st := ctx.Stream("outage")
	for i := 0; i < count(st, 3); i++ {
		sp := Spec{Kind: KindOutage, Site: pick(st, []string{SiteCloud, SiteConnected})}
		sp.StartS, sp.EndS = win(st, 0.3)
		if st.Float64() < 0.5 { // Markov up/down alternation
			sp.MeanDownS = 0.05 + st.Float64()*0.5
			sp.MeanUpS = 0.05 + st.Float64()*0.5
		}
		s.Faults = append(s.Faults, sp)
	}
	st = ctx.Stream("spike")
	for i := 0; i < count(st, 2); i++ {
		sp := Spec{Kind: KindQueueSpike, Site: pick(st, []string{SiteCloud, SiteConnected}),
			ExtraServiceS: 0.005 + 0.05*intensity*st.Float64()}
		sp.StartS, sp.EndS = win(st, 0.25)
		s.Faults = append(s.Faults, sp)
	}

	// Link and device-wide analog faults: RSSI ramps, thermal throttles,
	// load surges.
	st = ctx.Stream("rssi")
	for i := 0; i < count(st, 2); i++ {
		sp := Spec{Kind: KindRSSIRamp, Link: pick(st, []string{LinkWLAN, LinkP2P}),
			DeltaDBm: -(5 + 25*intensity*st.Float64())}
		sp.StartS, sp.EndS = win(st, 0.3)
		s.Faults = append(s.Faults, sp)
	}
	st = ctx.Stream("thermal")
	for i := 0; i < count(st, 2); i++ {
		sp := Spec{Kind: KindThermal, Factor: 1.2 + 2*intensity*st.Float64()}
		sp.StartS, sp.EndS = win(st, 0.25)
		s.Faults = append(s.Faults, sp)
	}
	st = ctx.Stream("surge")
	for i := 0; i < count(st, 2); i++ {
		sp := Spec{Kind: KindLoadSurge, Factor: 1.2 + 2.5*intensity*st.Float64()}
		sp.StartS, sp.EndS = win(st, 0.25)
		s.Faults = append(s.Faults, sp)
	}

	// Device-scoped faults need lane names.
	if len(opt.Devices) > 0 {
		st = ctx.Stream("gray")
		for i := 0; i < count(st, 2); i++ {
			sp := Spec{Kind: KindGrayDegrade, Device: pick(st, opt.Devices),
				Factor: 2 + 8*intensity*st.Float64()}
			sp.StartS, sp.EndS = win(st, 0.3)
			s.Faults = append(s.Faults, sp)
		}
		st = ctx.Stream("ckptio")
		modes := []string{IOSlowFsync, IOWriteFail, IODiskFull}
		for i := 0; i < count(st, 2); i++ {
			sp := Spec{Kind: KindCheckpointIO, IOMode: pick(st, modes)}
			if st.Float64() < 0.5 { // half device-scoped, half store-wide
				sp.Device = pick(st, opt.Devices)
			}
			sp.StartS, sp.EndS = win(st, 0.25)
			s.Faults = append(s.Faults, sp)
		}
		st = ctx.Stream("partition")
		for i := 0; i < count(st, 2); i++ {
			sp := Spec{Kind: KindSyncPartition, Device: pick(st, opt.Devices)}
			sp.StartS, sp.EndS = win(st, 0.35)
			s.Faults = append(s.Faults, sp)
		}
		st = ctx.Stream("crash")
		for i := 0; i < count(st, 2); i++ {
			s.Faults = append(s.Faults, Spec{Kind: KindWorkerCrash,
				Device: pick(st, opt.Devices), StartS: st.Float64() * h})
		}
		st = ctx.Stream("corrupt")
		for i := 0; i < count(st, 1); i++ {
			s.Faults = append(s.Faults, Spec{Kind: KindCheckpointCorrupt,
				Device: pick(st, opt.Devices), StartS: st.Float64() * h})
		}
	}

	// Shard crashes need at least two shards so the routing tier retains
	// survivors to re-home onto; at most one crash per shard, never all.
	if len(opt.Shards) > 1 {
		st = ctx.Stream("shardcrash")
		perm := st.Perm(len(opt.Shards))
		n := count(st, len(opt.Shards)-1)
		if n > len(opt.Shards)-1 {
			n = len(opt.Shards) - 1
		}
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			s.Faults = append(s.Faults, Spec{Kind: KindShardCrash,
				Shard: opt.Shards[perm[i]], StartS: st.Float64() * h})
		}
	}

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("fault: Randomize produced invalid schedule: %v", err))
	}
	return s
}
