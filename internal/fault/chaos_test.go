package fault

import (
	"encoding/json"
	"testing"
)

// --- control-plane fault kinds ---------------------------------------------

func TestGrayDegradeFactor(t *testing.T) {
	s := &Schedule{Faults: []Spec{
		{Kind: KindGrayDegrade, Device: "phone-0", StartS: 2, EndS: 6, Factor: 3},
		{Kind: KindGrayDegrade, Device: "phone-0", StartS: 4, EndS: 8, Factor: 2},
		{Kind: KindGrayDegrade, Device: "phone-1", StartS: 0, EndS: 10, Factor: 5},
	}}
	inj := New(s, testCtx(1))
	cases := []struct {
		device string
		t      float64
		want   float64
	}{
		{"phone-0", 1.0, 1}, // before any window
		{"phone-0", 3.0, 3}, // first window only
		{"phone-0", 5.0, 6}, // overlap multiplies
		{"phone-0", 7.0, 2}, // second window only
		{"phone-0", 8.0, 1}, // end-exclusive
		{"phone-1", 5.0, 5}, // other device
		{"phone-2", 5.0, 1}, // unknown device
	}
	for _, c := range cases {
		if got := inj.GrayFactor(c.device, c.t); got != c.want {
			t.Errorf("GrayFactor(%s, %.1f) = %v, want %v", c.device, c.t, got, c.want)
		}
	}
	var nilInj *Injector
	if got := nilInj.GrayFactor("phone-0", 3); got != 1 {
		t.Errorf("nil injector GrayFactor = %v, want 1", got)
	}
}

func TestCheckpointIOSeverity(t *testing.T) {
	s := &Schedule{Faults: []Spec{
		{Kind: KindCheckpointIO, IOMode: IOSlowFsync, StartS: 0, EndS: 10}, // store-wide
		{Kind: KindCheckpointIO, Device: "phone-0", IOMode: IODiskFull, StartS: 2, EndS: 4},
		{Kind: KindCheckpointIO, Device: "phone-1", IOMode: IOWriteFail, StartS: 2, EndS: 4},
	}}
	inj := New(s, testCtx(1))
	cases := []struct {
		device string
		t      float64
		want   string
	}{
		{"phone-0", 1.0, IOSlowFsync}, // store-wide only
		{"phone-0", 3.0, IODiskFull},  // most severe wins over store-wide
		{"phone-1", 3.0, IOWriteFail},
		{"phone-1", 5.0, IOSlowFsync},
		{"phone-9", 3.0, IOSlowFsync}, // unknown device still store-wide
		{"phone-0", 11.0, ""},         // after everything
	}
	for _, c := range cases {
		if got := inj.CheckpointIO(c.device, c.t); got != c.want {
			t.Errorf("CheckpointIO(%s, %.1f) = %q, want %q", c.device, c.t, got, c.want)
		}
	}
	var nilInj *Injector
	if got := nilInj.CheckpointIO("phone-0", 3); got != "" {
		t.Errorf("nil injector CheckpointIO = %q, want empty", got)
	}
}

func TestSyncPartitionWindows(t *testing.T) {
	s := &Schedule{Faults: []Spec{
		{Kind: KindSyncPartition, Device: "phone-0", StartS: 1, EndS: 3},
	}}
	inj := New(s, testCtx(1))
	if inj.Partitioned("phone-0", 0.5) {
		t.Error("partitioned before window")
	}
	if !inj.Partitioned("phone-0", 2) {
		t.Error("not partitioned inside window")
	}
	if inj.Partitioned("phone-0", 3) {
		t.Error("partitioned at end (exclusive)")
	}
	if inj.Partitioned("phone-1", 2) {
		t.Error("other device partitioned")
	}
	if !inj.Active(2) {
		t.Error("Active misses sync partition windows")
	}
}

func TestChaosKindsValidation(t *testing.T) {
	cases := map[string]string{
		"gray no device":   `{"faults": [{"kind": "gray_degrade", "start_s": 0, "end_s": 1, "factor": 2}]}`,
		"gray factor 1":    `{"faults": [{"kind": "gray_degrade", "device": "d", "start_s": 0, "end_s": 1, "factor": 1}]}`,
		"io no mode":       `{"faults": [{"kind": "checkpoint_io", "start_s": 0, "end_s": 1}]}`,
		"io bad mode":      `{"faults": [{"kind": "checkpoint_io", "io_mode": "explode", "start_s": 0, "end_s": 1}]}`,
		"partition no dev": `{"faults": [{"kind": "sync_partition", "start_s": 0, "end_s": 1}]}`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, data)
		}
	}
	ok := `{"faults": [
		{"kind": "gray_degrade", "device": "d", "start_s": 0, "end_s": 1, "factor": 1.5},
		{"kind": "checkpoint_io", "io_mode": "slow_fsync", "start_s": 0, "end_s": 1},
		{"kind": "checkpoint_io", "device": "d", "io_mode": "disk_full", "start_s": 0, "end_s": 1},
		{"kind": "sync_partition", "device": "d", "start_s": 0, "end_s": 1}
	]}`
	if _, err := Parse([]byte(ok)); err != nil {
		t.Fatalf("Parse rejected valid chaos kinds: %v", err)
	}
}

// --- Randomize -------------------------------------------------------------

func TestRandomizeDeterministicAndComplete(t *testing.T) {
	opt := RandomOpts{
		Devices:  []string{"lane-0", "lane-1", "lane-2"},
		Shards:   []string{"shard-a", "shard-b"},
		HorizonS: 10,
	}
	a := Randomize(7, 0.5, opt)
	b := Randomize(7, 0.5, opt)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed diverged:\n%s\n%s", ja, jb)
	}
	c := Randomize(8, 0.5, opt)
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical schedules")
	}

	// Every applicable kind appears at least once, even at low intensity.
	low := Randomize(7, 0.05, opt)
	want := []Kind{KindOutage, KindQueueSpike, KindRSSIRamp, KindThermal, KindLoadSurge,
		KindGrayDegrade, KindCheckpointIO, KindSyncPartition, KindWorkerCrash,
		KindCheckpointCorrupt, KindShardCrash}
	for _, sched := range []*Schedule{a, low} {
		have := map[Kind]bool{}
		for _, sp := range sched.Faults {
			have[sp.Kind] = true
			if sp.StartS < 0 || sp.StartS >= 10 || (sp.EndS != 0 && sp.EndS > 10) {
				t.Errorf("%s: spec outside horizon: %+v", sched.Name, sp)
			}
		}
		for _, k := range want {
			if !have[k] {
				t.Errorf("%s: missing kind %s", sched.Name, k)
			}
		}
		if err := sched.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", sched.Name, err)
		}
	}
}

func TestRandomizeNeverKillsEveryShard(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		s := Randomize(seed, 1.0, RandomOpts{
			Devices: []string{"l0"}, Shards: []string{"s0", "s1"}, HorizonS: 5,
		})
		crashed := map[string]bool{}
		for _, sp := range s.Faults {
			if sp.Kind == KindShardCrash {
				crashed[sp.Shard] = true
			}
		}
		if len(crashed) >= 2 {
			t.Fatalf("seed %d crashed every shard: %v", seed, crashed)
		}
	}
	// A single-shard fleet never gets shard crashes at all.
	s := Randomize(1, 1.0, RandomOpts{Devices: []string{"l0"}, Shards: []string{"only"}})
	for _, sp := range s.Faults {
		if sp.Kind == KindShardCrash {
			t.Fatalf("single-shard fleet got a shard crash: %+v", sp)
		}
	}
}
