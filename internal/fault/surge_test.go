package fault

import (
	"math"
	"strings"
	"testing"
)

func TestLoadSurgeValidation(t *testing.T) {
	good := &Schedule{Faults: []Spec{
		{Kind: KindLoadSurge, StartS: 1, EndS: 3, Factor: 4},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid surge rejected: %v", err)
	}
	bad := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: KindLoadSurge, StartS: 1, EndS: 3, Factor: 1}, "factor > 1"},
		{Spec{Kind: KindLoadSurge, StartS: 1, EndS: 3, Factor: 0}, "factor > 1"},
		{Spec{Kind: KindLoadSurge, StartS: 3, EndS: 3, Factor: 4}, "is empty"},
		{Spec{Kind: KindLoadSurge, StartS: -1, EndS: 3, Factor: 4}, "negative time"},
	}
	for _, tc := range bad {
		s := &Schedule{Faults: []Spec{tc.spec}}
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %+v: err %v, want mention of %q", tc.spec, err, tc.want)
		}
	}
}

func TestSurgeFactorWindows(t *testing.T) {
	inj := New(&Schedule{Faults: []Spec{
		{Kind: KindLoadSurge, StartS: 2, EndS: 6, Factor: 3},
		{Kind: KindLoadSurge, StartS: 4, EndS: 8, Factor: 2},
	}}, testCtx(1))
	cases := []struct {
		t, want float64
	}{
		{0, 1},  // before any surge
		{2, 3},  // window start is inclusive
		{3, 3},  // first surge only
		{5, 6},  // overlap multiplies
		{6, 2},  // first window end is exclusive
		{7, 2},  // second surge only
		{8, 1},  // second window end is exclusive
		{10, 1}, // after everything
	}
	for _, tc := range cases {
		if got := inj.SurgeFactor(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("SurgeFactor(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	// A nil injector and a surge-free schedule both mean factor 1.
	var none *Injector
	if got := none.SurgeFactor(5); got != 1 {
		t.Errorf("nil injector SurgeFactor = %g, want 1", got)
	}
	quiet := New(&Schedule{}, testCtx(2))
	if got := quiet.SurgeFactor(5); got != 1 {
		t.Errorf("quiet schedule SurgeFactor = %g, want 1", got)
	}
}

func TestPeakSurgeLookahead(t *testing.T) {
	inj := New(&Schedule{Faults: []Spec{
		{Kind: KindLoadSurge, StartS: 2, EndS: 6, Factor: 3},
		{Kind: KindLoadSurge, StartS: 4, EndS: 8, Factor: 2},
	}}, testCtx(1))
	cases := []struct {
		from, to, want float64
		why            string
	}{
		{0, 1, 1, "horizon entirely before the surges"},
		{0, 3, 3, "first surge starts inside the horizon"},
		{0, 10, 6, "overlap boundary inside the horizon"},
		{3, 5, 6, "second surge start compounds the active first"},
		{5, 5, 6, "empty horizon degrades to SurgeFactor(from)"},
		{7, 9, 2, "already inside the tail surge"},
		{9, 20, 1, "quiet after all windows"},
		{0, 2, 1, "surge start at to is outside the half-open horizon"},
	}
	for _, tc := range cases {
		if got := inj.PeakSurge(tc.from, tc.to); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PeakSurge(%g, %g) = %g, want %g (%s)", tc.from, tc.to, got, tc.want, tc.why)
		}
	}
	var none *Injector
	if got := none.PeakSurge(0, 10); got != 1 {
		t.Errorf("nil injector PeakSurge = %g, want 1", got)
	}
}
