package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Parse decodes a JSON fault schedule and validates it. Unknown fields are
// rejected so a typoed key fails loudly instead of silently disarming a
// fault.
func Parse(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parse schedule: %w", err)
	}
	// Trailing garbage after the top-level object is a malformed file, not
	// a second schedule.
	if dec.More() {
		return nil, fmt.Errorf("fault: parse schedule: trailing data after schedule object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a JSON fault schedule from disk.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: load schedule: %w", err)
	}
	return Parse(data)
}
