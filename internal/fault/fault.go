// Package fault is the deterministic fault-injection engine for the
// edge–cloud world: a declarative Schedule of scripted fault specs — offload
// outage windows (solid or Markov up/down), RSSI degradation ramps, remote
// queueing spikes, thermal throttle events, worker crashes and checkpoint
// corruption drills — compiled by an exec.Context-seeded Injector into
// read-only timelines that the simulator and the serving gateway query at
// each request's virtual time.
//
// The paper's whole premise is stochastic runtime variance (co-running
// interference, wireless signal change); the original robustness extension
// modelled failures as a single per-request Bernoulli coin flip
// (sim.World.OutageProb). Real outages are time-correlated: an access point
// reboots and stays down for seconds, a signal fades over a walk down a
// corridor, a server queue spikes and drains. This package scripts those
// dynamics so experiments and the serving gateway's resilience layer
// (circuit breakers, retries, hedging) can be driven — and replayed
// byte-identically — from one (schedule, root seed) pair.
//
// Determinism: every stochastic choice (the Markov window durations) is
// drawn at compile time from named streams of the constructor's
// exec.Context, so an Injector's timelines are a pure function of
// (schedule, context identity). Queries are pure reads on immutable state
// and safe for any number of concurrent goroutines.
package fault

import (
	"fmt"

	"autoscale/internal/exec"
)

// Kind names a fault mechanism.
type Kind string

// Supported fault kinds.
const (
	// KindOutage takes an offload site (cloud or connected) down for a
	// window: solid [start, end), or Markov up/down alternation inside it
	// when MeanUpS/MeanDownS are set.
	KindOutage Kind = "outage"
	// KindRSSIRamp degrades a radio link's signal linearly from 0 dBm delta
	// at StartS to DeltaDBm at EndS (recovering instantly after EndS).
	KindRSSIRamp Kind = "rssi_ramp"
	// KindQueueSpike adds remote-side service time at a site for a window
	// (an overloaded server draining a deep queue).
	KindQueueSpike Kind = "queue_spike"
	// KindThermal multiplies local compute latency by Factor for a window
	// (a thermally throttled device).
	KindThermal Kind = "thermal"
	// KindWorkerCrash crashes a named serving worker at StartS: the worker
	// loses its in-memory Q-table and restarts from its latest checkpoint.
	KindWorkerCrash Kind = "worker_crash"
	// KindCheckpointCorrupt corrupts the named device's newest on-disk
	// checkpoint at StartS — the drill that proves the policy store's
	// quarantine-and-fall-back machinery works when it matters.
	KindCheckpointCorrupt Kind = "checkpoint_corrupt"
	// KindShardCrash kills a named gateway shard at StartS on that shard's
	// virtual clock: the routing tier must mask the shard, fail its queued
	// requests over to survivors, and re-home its devices from their latest
	// checkpoints.
	KindShardCrash Kind = "shard_crash"
	// KindLoadSurge multiplies the offered arrival rate by Factor for a
	// window. Unlike the other kinds it does not perturb execution: load
	// generators scale their inter-arrival draws by SurgeFactor, and the
	// capacity planner reads PeakSurge to scale worker pools ahead of the
	// wave.
	KindLoadSurge Kind = "load_surge"
	// KindGrayDegrade is a gray failure: the named serving worker stays
	// alive and keeps answering, but every inference it executes takes
	// Factor times longer while the window holds. Nothing crashes, no
	// breaker sees an error — only latency-sensitive health scoring can
	// catch it.
	KindGrayDegrade Kind = "gray_degrade"
	// KindCheckpointIO degrades the checkpoint store's I/O path for the
	// named device (or the whole store when Device is empty) while the
	// window holds. IOMode selects the failure: "write_fail" (saves error),
	// "slow_fsync" (saves succeed but are counted as slow), "disk_full"
	// (saves and reads both fail — the disk is unusable).
	KindCheckpointIO Kind = "checkpoint_io"
	// KindSyncPartition partitions the named device from the policy-sync
	// plane while the window holds: the federation Syncer cannot reach it
	// (checkpoint/merge passes fail for it) even though it keeps serving
	// traffic.
	KindSyncPartition Kind = "sync_partition"
)

// Checkpoint-store I/O failure modes for KindCheckpointIO specs.
const (
	IOWriteFail = "write_fail"
	IOSlowFsync = "slow_fsync"
	IODiskFull  = "disk_full"
)

// Offload sites and radio links a spec can target. Sites mirror
// sim.Location's remote values; links mirror the world's two radios.
const (
	SiteCloud     = "cloud"
	SiteConnected = "connected"
	LinkWLAN      = "wlan"
	LinkP2P       = "p2p"
)

// Spec is one scripted fault. Which fields apply depends on Kind; Validate
// rejects contradictory combinations. All times are virtual-clock seconds
// (the simulated time accumulated by executed inferences), not wall time.
type Spec struct {
	Kind Kind `json:"kind"`
	// Site targets outages and queue spikes ("cloud" or "connected").
	Site string `json:"site,omitempty"`
	// Link targets RSSI ramps ("wlan" or "p2p").
	Link string `json:"link,omitempty"`
	// Device targets worker crashes and checkpoint corruption drills.
	Device string `json:"device,omitempty"`
	// Shard targets shard crashes (the routing tier's gateway shards).
	Shard string `json:"shard,omitempty"`
	// StartS/EndS bound window faults; event faults (worker_crash,
	// checkpoint_corrupt) fire once at StartS and ignore EndS.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s,omitempty"`
	// MeanUpS/MeanDownS, when both positive, make an outage window a
	// Markov process: alternating exponentially distributed down and up
	// phases inside [StartS, EndS), starting down. Zero means solid-down.
	MeanUpS   float64 `json:"mean_up_s,omitempty"`
	MeanDownS float64 `json:"mean_down_s,omitempty"`
	// DeltaDBm is the signal degradation an RSSI ramp reaches at EndS
	// (negative for degradation).
	DeltaDBm float64 `json:"delta_dbm,omitempty"`
	// ExtraServiceS is the added remote service time of a queue spike.
	ExtraServiceS float64 `json:"extra_service_s,omitempty"`
	// Factor is the thermal throttle's local latency multiplier, the load
	// surge's arrival-rate multiplier, or the gray degradation's latency
	// multiplier (> 1 for all three).
	Factor float64 `json:"factor,omitempty"`
	// IOMode selects a checkpoint_io spec's failure mode: "write_fail",
	// "slow_fsync" or "disk_full".
	IOMode string `json:"io_mode,omitempty"`
}

// Schedule is a declarative list of scripted faults.
type Schedule struct {
	// Name labels the schedule in logs and summaries.
	Name string `json:"name,omitempty"`
	// Faults are the scripted specs; order is irrelevant except that the
	// Markov streams of outage specs derive from their index.
	Faults []Spec `json:"faults"`
}

// event reports whether a kind fires once instead of holding for a window.
func (k Kind) event() bool {
	return k == KindWorkerCrash || k == KindCheckpointCorrupt || k == KindShardCrash
}

// validSite reports whether s names an offload site.
func validSite(s string) bool { return s == SiteCloud || s == SiteConnected }

// validLink reports whether s names a radio link.
func validLink(s string) bool { return s == LinkWLAN || s == LinkP2P }

// Validate checks every spec for internal consistency.
func (s *Schedule) Validate() error {
	if s == nil {
		return fmt.Errorf("fault: nil schedule")
	}
	for i, sp := range s.Faults {
		if err := sp.validate(); err != nil {
			return fmt.Errorf("fault: spec %d: %w", i, err)
		}
	}
	return nil
}

func (sp Spec) validate() error {
	if sp.StartS < 0 {
		return fmt.Errorf("%s starts at negative time %g", sp.Kind, sp.StartS)
	}
	if !sp.Kind.event() && sp.EndS <= sp.StartS {
		return fmt.Errorf("%s window [%g, %g) is empty", sp.Kind, sp.StartS, sp.EndS)
	}
	switch sp.Kind {
	case KindOutage:
		if !validSite(sp.Site) {
			return fmt.Errorf("outage needs site %q or %q, got %q", SiteCloud, SiteConnected, sp.Site)
		}
		if (sp.MeanUpS > 0) != (sp.MeanDownS > 0) {
			return fmt.Errorf("Markov outage needs both mean_up_s and mean_down_s positive")
		}
		if sp.MeanUpS < 0 || sp.MeanDownS < 0 {
			return fmt.Errorf("negative Markov means")
		}
	case KindRSSIRamp:
		if !validLink(sp.Link) {
			return fmt.Errorf("rssi_ramp needs link %q or %q, got %q", LinkWLAN, LinkP2P, sp.Link)
		}
		if sp.DeltaDBm == 0 {
			return fmt.Errorf("rssi_ramp needs a non-zero delta_dbm")
		}
	case KindQueueSpike:
		if !validSite(sp.Site) {
			return fmt.Errorf("queue_spike needs site %q or %q, got %q", SiteCloud, SiteConnected, sp.Site)
		}
		if sp.ExtraServiceS <= 0 {
			return fmt.Errorf("queue_spike needs a positive extra_service_s")
		}
	case KindThermal:
		if sp.Factor <= 1 {
			return fmt.Errorf("thermal needs factor > 1, got %g", sp.Factor)
		}
	case KindLoadSurge:
		if sp.Factor <= 1 {
			return fmt.Errorf("load_surge needs factor > 1, got %g", sp.Factor)
		}
	case KindGrayDegrade:
		if sp.Device == "" {
			return fmt.Errorf("gray_degrade needs a device name")
		}
		if sp.Factor <= 1 {
			return fmt.Errorf("gray_degrade needs factor > 1, got %g", sp.Factor)
		}
	case KindCheckpointIO:
		switch sp.IOMode {
		case IOWriteFail, IOSlowFsync, IODiskFull:
		default:
			return fmt.Errorf("checkpoint_io needs io_mode %q, %q or %q, got %q",
				IOWriteFail, IOSlowFsync, IODiskFull, sp.IOMode)
		}
	case KindSyncPartition:
		if sp.Device == "" {
			return fmt.Errorf("sync_partition needs a device name")
		}
	case KindWorkerCrash, KindCheckpointCorrupt:
		if sp.Device == "" {
			return fmt.Errorf("%s needs a device name", sp.Kind)
		}
	case KindShardCrash:
		if sp.Shard == "" {
			return fmt.Errorf("shard_crash needs a shard name")
		}
	default:
		return fmt.Errorf("unknown fault kind %q", sp.Kind)
	}
	return nil
}

// maxMarkovWindows bounds the compiled window count of one Markov outage
// spec, so a schedule with a tiny mean cannot allocate unboundedly.
const maxMarkovWindows = 1 << 16

// compileOutage expands one outage spec into concrete down windows, drawing
// Markov phase durations from the spec's named stream.
func compileOutage(sp Spec, idx int, ctx *exec.Context) []window {
	if sp.MeanDownS <= 0 { // solid window
		return []window{{sp.StartS, sp.EndS}}
	}
	st := ctx.Stream("fault.markov", uint64(idx))
	var out []window
	t, down := sp.StartS, true
	for t < sp.EndS && len(out) < maxMarkovWindows {
		mean := sp.MeanUpS
		if down {
			mean = sp.MeanDownS
		}
		end := t + st.ExpFloat64()*mean
		if end > sp.EndS {
			end = sp.EndS
		}
		if down && end > t {
			out = append(out, window{t, end})
		}
		t, down = end, !down
	}
	return out
}
