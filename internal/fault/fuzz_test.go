package fault

import (
	"testing"

	"autoscale/internal/exec"
)

// FuzzScheduleParse hammers the JSON schedule parser: any input must either
// fail with an error or yield a schedule that validates and compiles
// without panicking. This is the `make fuzz-fault` smoke.
func FuzzScheduleParse(f *testing.F) {
	f.Add([]byte(`{"name":"s","faults":[{"kind":"outage","site":"cloud","start_s":1,"end_s":2}]}`))
	f.Add([]byte(`{"faults":[{"kind":"outage","site":"connected","start_s":0,"end_s":50,"mean_up_s":2,"mean_down_s":1}]}`))
	f.Add([]byte(`{"faults":[{"kind":"rssi_ramp","link":"wlan","start_s":0,"end_s":9,"delta_dbm":-20}]}`))
	f.Add([]byte(`{"faults":[{"kind":"queue_spike","site":"cloud","start_s":0,"end_s":3,"extra_service_s":0.1}]}`))
	f.Add([]byte(`{"faults":[{"kind":"thermal","start_s":0,"end_s":1,"factor":2}]}`))
	f.Add([]byte(`{"faults":[{"kind":"worker_crash","device":"d","start_s":5}]}`))
	f.Add([]byte(`{"faults":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"faults":[{"kind":"outage","site":"cloud","start_s":1e308,"end_s":1.7e308}]}`))

	ctx := exec.NewRoot(42).Child("fuzz")
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// A parsed schedule must validate (Parse already did) and compile.
		inj := New(s, ctx)
		// Queries must not panic on arbitrary compiled timelines.
		for _, ts := range []float64{0, 1, 1e6} {
			inj.Down(SiteCloud, ts)
			inj.RSSIDeltaDBm(LinkWLAN, ts)
			inj.ExtraServiceS(SiteConnected, ts)
			inj.ThrottleFactor(ts)
			inj.Active(ts)
		}
	})
}
