package fault

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"autoscale/internal/exec"
)

func testCtx(seed int64) *exec.Context { return exec.NewRoot(seed).Child("fault-test") }

func TestParseValidSchedule(t *testing.T) {
	data := []byte(`{
		"name": "storm",
		"faults": [
			{"kind": "outage", "site": "cloud", "start_s": 10, "end_s": 20},
			{"kind": "outage", "site": "connected", "start_s": 5, "end_s": 60,
			 "mean_up_s": 2, "mean_down_s": 3},
			{"kind": "rssi_ramp", "link": "wlan", "start_s": 20, "end_s": 30, "delta_dbm": -25},
			{"kind": "queue_spike", "site": "cloud", "start_s": 1, "end_s": 4, "extra_service_s": 0.05},
			{"kind": "thermal", "start_s": 0, "end_s": 8, "factor": 1.5},
			{"kind": "worker_crash", "device": "phone-0", "start_s": 12},
			{"kind": "checkpoint_corrupt", "device": "phone-0", "start_s": 11}
		]
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "storm" || len(s.Faults) != 7 {
		t.Fatalf("got name=%q faults=%d", s.Name, len(s.Faults))
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"faults": [], "bogus": 1}`,
		"unknown kind":     `{"faults": [{"kind": "meteor", "start_s": 0, "end_s": 1}]}`,
		"empty window":     `{"faults": [{"kind": "outage", "site": "cloud", "start_s": 5, "end_s": 5}]}`,
		"negative start":   `{"faults": [{"kind": "thermal", "start_s": -1, "end_s": 1, "factor": 2}]}`,
		"bad site":         `{"faults": [{"kind": "outage", "site": "moon", "start_s": 0, "end_s": 1}]}`,
		"bad link":         `{"faults": [{"kind": "rssi_ramp", "link": "lte", "start_s": 0, "end_s": 1, "delta_dbm": -5}]}`,
		"zero delta":       `{"faults": [{"kind": "rssi_ramp", "link": "wlan", "start_s": 0, "end_s": 1}]}`,
		"half markov":      `{"faults": [{"kind": "outage", "site": "cloud", "start_s": 0, "end_s": 9, "mean_down_s": 1}]}`,
		"factor too small": `{"faults": [{"kind": "thermal", "start_s": 0, "end_s": 1, "factor": 1}]}`,
		"zero spike":       `{"faults": [{"kind": "queue_spike", "site": "cloud", "start_s": 0, "end_s": 1}]}`,
		"crash no device":  `{"faults": [{"kind": "worker_crash", "start_s": 1}]}`,
		"trailing data":    `{"faults": []} {"faults": []}`,
		"not json":         `faults: []`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, data)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	body := []byte(`{"name":"x","faults":[{"kind":"outage","site":"cloud","start_s":1,"end_s":2}]}`)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Name != "x" || len(s.Faults) != 1 {
		t.Fatalf("unexpected schedule: %+v", s)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Down(SiteCloud, 5) {
		t.Error("nil injector reports a site down")
	}
	if d := inj.RSSIDeltaDBm(LinkWLAN, 5); d != 0 {
		t.Errorf("nil injector RSSI delta = %g", d)
	}
	if e := inj.ExtraServiceS(SiteCloud, 5); e != 0 {
		t.Errorf("nil injector extra service = %g", e)
	}
	if f := inj.ThrottleFactor(5); f != 1 {
		t.Errorf("nil injector throttle = %g", f)
	}
	if ev := inj.Events("any"); ev != nil {
		t.Errorf("nil injector events = %v", ev)
	}
	if inj.Active(0) {
		t.Error("nil injector active")
	}
	if inj.Name() != "" {
		t.Error("nil injector has a name")
	}
}

func TestSolidOutageWindow(t *testing.T) {
	s := &Schedule{Faults: []Spec{{Kind: KindOutage, Site: SiteCloud, StartS: 10, EndS: 20}}}
	inj := New(s, testCtx(1))
	for _, tc := range []struct {
		t    float64
		down bool
	}{{9.99, false}, {10, true}, {15, true}, {19.999, true}, {20, false}, {25, false}} {
		if got := inj.Down(SiteCloud, tc.t); got != tc.down {
			t.Errorf("Down(cloud, %g) = %v, want %v", tc.t, got, tc.down)
		}
	}
	if inj.Down(SiteConnected, 15) {
		t.Error("outage leaked onto the connected site")
	}
}

func TestMarkovOutageDeterministicAndBounded(t *testing.T) {
	s := &Schedule{Faults: []Spec{{
		Kind: KindOutage, Site: SiteCloud,
		StartS: 0, EndS: 100, MeanUpS: 2, MeanDownS: 3,
	}}}
	a := New(s, testCtx(7))
	b := New(s, testCtx(7))
	c := New(s, testCtx(8))

	var downA, downB, downC int
	diff := false
	for i := 0; i < 10_000; i++ {
		ts := float64(i) * 0.01
		da, db, dc := a.Down(SiteCloud, ts), b.Down(SiteCloud, ts), c.Down(SiteCloud, ts)
		if da {
			downA++
		}
		if db {
			downB++
		}
		if dc {
			downC++
		}
		if da != db {
			t.Fatalf("same seed diverged at t=%g", ts)
		}
		if da != dc {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical Markov timelines")
	}
	// Starts down, so t=0 is inside the first down phase.
	if !a.Down(SiteCloud, 0) {
		t.Error("Markov outage does not start down")
	}
	// Expected down fraction is mean_down/(mean_down+mean_up) = 0.6; with
	// ~20 phase alternations over 100 s allow a generous band.
	frac := float64(downA) / 10_000
	if frac < 0.2 || frac > 0.95 {
		t.Errorf("down fraction %.2f implausible for means (3 down, 2 up)", frac)
	}
	// Nothing leaks outside the scripted window.
	if a.Down(SiteCloud, 100) || a.Down(SiteCloud, 1e6) {
		t.Error("Markov outage active past end_s")
	}
}

func TestMarkovTinyMeansBounded(t *testing.T) {
	// Pathologically small means must not hang or allocate unboundedly.
	s := &Schedule{Faults: []Spec{{
		Kind: KindOutage, Site: SiteCloud,
		StartS: 0, EndS: 1e9, MeanUpS: 1e-12, MeanDownS: 1e-12,
	}}}
	inj := New(s, testCtx(3))
	if got := len(inj.outages[SiteCloud]); got > maxMarkovWindows {
		t.Fatalf("compiled %d windows, cap is %d", got, maxMarkovWindows)
	}
}

func TestRSSIRampShape(t *testing.T) {
	s := &Schedule{Faults: []Spec{{
		Kind: KindRSSIRamp, Link: LinkWLAN, StartS: 10, EndS: 20, DeltaDBm: -30,
	}}}
	inj := New(s, testCtx(1))
	for _, tc := range []struct{ t, want float64 }{
		{5, 0}, {10, 0}, {15, -15}, {19.999, -29.997}, {20, 0}, {30, 0},
	} {
		if got := inj.RSSIDeltaDBm(LinkWLAN, tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("RSSIDeltaDBm(wlan, %g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if d := inj.RSSIDeltaDBm(LinkP2P, 15); d != 0 {
		t.Errorf("ramp leaked onto p2p: %g", d)
	}
}

func TestQueueSpikeAndThermal(t *testing.T) {
	s := &Schedule{Faults: []Spec{
		{Kind: KindQueueSpike, Site: SiteCloud, StartS: 0, EndS: 10, ExtraServiceS: 0.05},
		{Kind: KindQueueSpike, Site: SiteCloud, StartS: 5, EndS: 15, ExtraServiceS: 0.02},
		{Kind: KindThermal, StartS: 2, EndS: 4, Factor: 1.5},
		{Kind: KindThermal, StartS: 3, EndS: 5, Factor: 2},
	}}
	inj := New(s, testCtx(1))
	if got := inj.ExtraServiceS(SiteCloud, 7); math.Abs(got-0.07) > 1e-12 {
		t.Errorf("overlapping spikes sum to %g, want 0.07", got)
	}
	if got := inj.ExtraServiceS(SiteCloud, 12); got != 0.02 {
		t.Errorf("tail spike = %g, want 0.02", got)
	}
	if got := inj.ExtraServiceS(SiteConnected, 7); got != 0 {
		t.Errorf("spike leaked onto connected: %g", got)
	}
	if got := inj.ThrottleFactor(3.5); got != 3 {
		t.Errorf("overlapping throttles multiply to %g, want 3", got)
	}
	if got := inj.ThrottleFactor(10); got != 1 {
		t.Errorf("throttle outside window = %g", got)
	}
}

func TestEventsOrderedPerDevice(t *testing.T) {
	s := &Schedule{Faults: []Spec{
		{Kind: KindWorkerCrash, Device: "a", StartS: 9},
		{Kind: KindCheckpointCorrupt, Device: "a", StartS: 3},
		{Kind: KindWorkerCrash, Device: "b", StartS: 1},
	}}
	inj := New(s, testCtx(1))
	ev := inj.Events("a")
	if len(ev) != 2 || ev[0].Kind != KindCheckpointCorrupt || ev[0].AtS != 3 ||
		ev[1].Kind != KindWorkerCrash || ev[1].AtS != 9 {
		t.Fatalf("device a events out of order: %+v", ev)
	}
	if got := len(inj.Events("b")); got != 1 {
		t.Fatalf("device b events = %d", got)
	}
	if inj.Events("c") != nil {
		t.Fatal("unknown device has events")
	}
}

func TestActive(t *testing.T) {
	s := &Schedule{Name: "n", Faults: []Spec{
		{Kind: KindOutage, Site: SiteCloud, StartS: 10, EndS: 20},
		{Kind: KindWorkerCrash, Device: "d", StartS: 30},
	}}
	inj := New(s, testCtx(1))
	if !inj.Active(0) || !inj.Active(25) {
		t.Error("injector inactive before its faults played out")
	}
	if inj.Active(31) {
		t.Error("injector active after all faults played out")
	}
	if inj.Name() != "n" {
		t.Errorf("Name = %q", inj.Name())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid schedule")
		}
	}()
	New(&Schedule{Faults: []Spec{{Kind: "meteor"}}}, testCtx(1))
}

func TestNewNilSchedule(t *testing.T) {
	if inj := New(nil, testCtx(1)); inj != nil {
		t.Fatal("New(nil) built an injector")
	}
}
