package fault

import (
	"sort"

	"autoscale/internal/exec"
)

// window is a half-open [start, end) interval on the virtual clock.
type window struct {
	start, end float64
}

func (w window) contains(t float64) bool { return t >= w.start && t < w.end }

// ramp is one RSSI degradation: delta grows linearly from 0 at start to
// deltaDBm at end, then snaps back to 0 (signal recovered).
type ramp struct {
	window
	deltaDBm float64
}

// spike is one remote queueing spike: extraS of added service time while
// the window holds.
type spike struct {
	window
	extraS float64
}

// throttle is one thermal event: local latency multiplied by factor.
type throttle struct {
	window
	factor float64
}

// surge is one load wave: offered arrival rate multiplied by factor.
type surge struct {
	window
	factor float64
}

// gray is one gray degradation: a device's inference latency multiplied by
// factor while the window holds, with no crash and no error.
type gray struct {
	window
	factor float64
}

// ioFault is one checkpoint-store I/O degradation window with its mode.
type ioFault struct {
	window
	mode string
}

// Event is a one-shot fault (worker crash, checkpoint corruption, shard
// crash) firing at AtS on the virtual clock.
type Event struct {
	Kind   Kind
	Device string
	Shard  string
	AtS    float64
}

// Injector is a Schedule compiled against an execution context: immutable
// fault timelines answering point-in-time queries. All methods are safe on
// a nil receiver (reporting "no fault"), so callers need no guards, and
// safe for concurrent use — compilation happens once in New and queries
// never mutate.
type Injector struct {
	name      string
	outages   map[string][]window // site -> down windows, sorted by start
	ramps     map[string][]ramp   // link -> ramps, sorted by start
	spikes    map[string][]spike  // site -> spikes, sorted by start
	throttles []throttle
	surges    []surge
	grays     map[string][]gray    // device -> gray degradations
	ioFaults  map[string][]ioFault // device ("" = whole store) -> I/O faults
	partits   map[string][]window  // device -> sync-partition windows
	events    map[string][]Event   // device -> one-shot events, sorted by time
	shardEvs  map[string][]Event   // shard -> one-shot events, sorted by time
}

// New compiles a schedule into an injector, drawing any Markov window
// durations from named streams of ctx. The same (schedule, ctx identity)
// pair always compiles to identical timelines. The schedule must already
// validate; New panics on an invalid one so a malformed programmatic
// schedule cannot silently inject nothing.
func New(s *Schedule, ctx *exec.Context) *Injector {
	if s == nil {
		return nil
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	inj := &Injector{
		name:     s.Name,
		outages:  map[string][]window{},
		ramps:    map[string][]ramp{},
		spikes:   map[string][]spike{},
		grays:    map[string][]gray{},
		ioFaults: map[string][]ioFault{},
		partits:  map[string][]window{},
		events:   map[string][]Event{},
		shardEvs: map[string][]Event{},
	}
	for i, sp := range s.Faults {
		switch sp.Kind {
		case KindOutage:
			inj.outages[sp.Site] = append(inj.outages[sp.Site], compileOutage(sp, i, ctx)...)
		case KindRSSIRamp:
			inj.ramps[sp.Link] = append(inj.ramps[sp.Link], ramp{window{sp.StartS, sp.EndS}, sp.DeltaDBm})
		case KindQueueSpike:
			inj.spikes[sp.Site] = append(inj.spikes[sp.Site], spike{window{sp.StartS, sp.EndS}, sp.ExtraServiceS})
		case KindThermal:
			inj.throttles = append(inj.throttles, throttle{window{sp.StartS, sp.EndS}, sp.Factor})
		case KindLoadSurge:
			inj.surges = append(inj.surges, surge{window{sp.StartS, sp.EndS}, sp.Factor})
		case KindGrayDegrade:
			inj.grays[sp.Device] = append(inj.grays[sp.Device], gray{window{sp.StartS, sp.EndS}, sp.Factor})
		case KindCheckpointIO:
			inj.ioFaults[sp.Device] = append(inj.ioFaults[sp.Device], ioFault{window{sp.StartS, sp.EndS}, sp.IOMode})
		case KindSyncPartition:
			inj.partits[sp.Device] = append(inj.partits[sp.Device], window{sp.StartS, sp.EndS})
		case KindWorkerCrash, KindCheckpointCorrupt:
			inj.events[sp.Device] = append(inj.events[sp.Device],
				Event{Kind: sp.Kind, Device: sp.Device, AtS: sp.StartS})
		case KindShardCrash:
			inj.shardEvs[sp.Shard] = append(inj.shardEvs[sp.Shard],
				Event{Kind: sp.Kind, Shard: sp.Shard, AtS: sp.StartS})
		}
	}
	for site := range inj.outages {
		ws := inj.outages[site]
		sort.Slice(ws, func(a, b int) bool { return ws[a].start < ws[b].start })
	}
	for dev := range inj.events {
		es := inj.events[dev]
		sort.Slice(es, func(a, b int) bool { return es[a].AtS < es[b].AtS })
	}
	for sh := range inj.shardEvs {
		es := inj.shardEvs[sh]
		sort.Slice(es, func(a, b int) bool { return es[a].AtS < es[b].AtS })
	}
	return inj
}

// Name returns the compiled schedule's label ("" for a nil injector).
func (inj *Injector) Name() string {
	if inj == nil {
		return ""
	}
	return inj.name
}

// Down reports whether the offload site is inside a scripted outage window
// at virtual time t.
func (inj *Injector) Down(site string, t float64) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.outages[site] {
		if w.contains(t) {
			return true
		}
		if w.start > t { // sorted: no later window can contain t
			break
		}
	}
	return false
}

// RSSIDeltaDBm returns the scripted signal degradation (typically negative)
// on the link at virtual time t; 0 when no ramp is active. Overlapping
// ramps sum.
func (inj *Injector) RSSIDeltaDBm(link string, t float64) float64 {
	if inj == nil {
		return 0
	}
	var delta float64
	for _, r := range inj.ramps[link] {
		if r.contains(t) {
			delta += r.deltaDBm * (t - r.start) / (r.end - r.start)
		}
	}
	return delta
}

// ExtraServiceS returns the added remote service time at the site at
// virtual time t; overlapping spikes sum.
func (inj *Injector) ExtraServiceS(site string, t float64) float64 {
	if inj == nil {
		return 0
	}
	var extra float64
	for _, s := range inj.spikes[site] {
		if s.contains(t) {
			extra += s.extraS
		}
	}
	return extra
}

// ThrottleFactor returns the local-compute latency multiplier at virtual
// time t (>= 1; overlapping throttles multiply).
func (inj *Injector) ThrottleFactor(t float64) float64 {
	f := 1.0
	if inj == nil {
		return f
	}
	for _, th := range inj.throttles {
		if th.contains(t) {
			f *= th.factor
		}
	}
	return f
}

// SurgeFactor returns the offered arrival-rate multiplier at virtual time t
// (>= 1; overlapping surges multiply). Load generators divide their
// inter-arrival draws by this factor.
func (inj *Injector) SurgeFactor(t float64) float64 {
	f := 1.0
	if inj == nil {
		return f
	}
	for _, s := range inj.surges {
		if s.contains(t) {
			f *= s.factor
		}
	}
	return f
}

// PeakSurge returns the largest surge factor anywhere in [from, to) — the
// capacity planner's lookahead query, letting it scale pools before a
// scripted wave lands rather than reacting after. Overlapping surges
// multiply, evaluated at every window boundary inside the horizon.
func (inj *Injector) PeakSurge(from, to float64) float64 {
	peak := inj.SurgeFactor(from)
	if inj == nil || to <= from {
		return peak
	}
	for _, s := range inj.surges {
		if s.start >= from && s.start < to {
			if f := inj.SurgeFactor(s.start); f > peak {
				peak = f
			}
		}
	}
	return peak
}

// GrayFactor returns the device's gray-degradation latency multiplier at
// virtual time t (>= 1; overlapping degradations multiply).
func (inj *Injector) GrayFactor(device string, t float64) float64 {
	f := 1.0
	if inj == nil {
		return f
	}
	for _, g := range inj.grays[device] {
		if g.contains(t) {
			f *= g.factor
		}
	}
	return f
}

// ioSeverity orders checkpoint I/O modes from benign to fatal so overlapping
// windows resolve to the most severe one.
func ioSeverity(mode string) int {
	switch mode {
	case IOSlowFsync:
		return 1
	case IOWriteFail:
		return 2
	case IODiskFull:
		return 3
	}
	return 0
}

// CheckpointIO returns the checkpoint store's active I/O failure mode for the
// device at virtual time t ("" when the store is healthy). Store-wide specs
// (empty Device) apply to every device; when windows overlap, the most severe
// mode wins (disk_full > write_fail > slow_fsync).
func (inj *Injector) CheckpointIO(device string, t float64) string {
	if inj == nil {
		return ""
	}
	mode := ""
	for _, scope := range []string{device, ""} {
		for _, f := range inj.ioFaults[scope] {
			if f.contains(t) && ioSeverity(f.mode) > ioSeverity(mode) {
				mode = f.mode
			}
		}
		if device == "" {
			break
		}
	}
	return mode
}

// Partitioned reports whether the device is cut off from the policy-sync
// plane at virtual time t (still serving traffic, unreachable to the Syncer).
func (inj *Injector) Partitioned(device string, t float64) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.partits[device] {
		if w.contains(t) {
			return true
		}
	}
	return false
}

// Events returns the device's one-shot faults (crashes, corruption drills)
// in firing order. The returned slice is shared immutable state: read-only.
func (inj *Injector) Events(device string) []Event {
	if inj == nil {
		return nil
	}
	return inj.events[device]
}

// ShardEvents returns the shard's one-shot faults (shard crashes) in firing
// order. The returned slice is shared immutable state: read-only.
func (inj *Injector) ShardEvents(shard string) []Event {
	if inj == nil {
		return nil
	}
	return inj.shardEvs[shard]
}

// Active reports whether any fault timeline could still be (or become)
// active at or after virtual time t — used by summaries to note whether a
// schedule has fully played out.
func (inj *Injector) Active(t float64) bool {
	if inj == nil {
		return false
	}
	for _, ws := range inj.outages {
		for _, w := range ws {
			if w.end > t {
				return true
			}
		}
	}
	for _, rs := range inj.ramps {
		for _, r := range rs {
			if r.end > t {
				return true
			}
		}
	}
	for _, ss := range inj.spikes {
		for _, s := range ss {
			if s.end > t {
				return true
			}
		}
	}
	for _, th := range inj.throttles {
		if th.end > t {
			return true
		}
	}
	for _, s := range inj.surges {
		if s.end > t {
			return true
		}
	}
	for _, gs := range inj.grays {
		for _, g := range gs {
			if g.end > t {
				return true
			}
		}
	}
	for _, fs := range inj.ioFaults {
		for _, f := range fs {
			if f.end > t {
				return true
			}
		}
	}
	for _, ws := range inj.partits {
		for _, w := range ws {
			if w.end > t {
				return true
			}
		}
	}
	for _, es := range inj.events {
		for _, e := range es {
			if e.AtS >= t {
				return true
			}
		}
	}
	for _, es := range inj.shardEvs {
		for _, e := range es {
			if e.AtS >= t {
				return true
			}
		}
	}
	return false
}
