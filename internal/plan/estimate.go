package plan

// Counter-delta estimators: the planner never sees individual requests, only
// monotonic counters sampled at tick boundaries on the virtual arrival
// clock. Each estimator turns (time, counter) pairs into an EWMA-smoothed
// rate or mean, seeding from the first complete window so a cold planner
// does not ramp from zero.

// rateEstimator smooths d(count)/d(t) across observations.
type rateEstimator struct {
	alpha  float64
	rate   float64
	last   uint64
	lastT  float64
	primed bool
}

// observe folds in a counter sample at virtual time t and returns the
// updated rate estimate. Zero-length or backwards windows and counter
// resets leave the estimate unchanged.
func (e *rateEstimator) observe(t float64, count uint64) float64 {
	if !e.primed {
		e.last, e.lastT, e.primed = count, t, true
		return e.rate
	}
	dt := t - e.lastT
	if dt <= 0 || count < e.last {
		return e.rate
	}
	inst := float64(count-e.last) / dt
	if e.rate == 0 {
		e.rate = inst
	} else {
		e.rate += e.alpha * (inst - e.rate)
	}
	e.last, e.lastT = count, t
	return e.rate
}

// meanEstimator smooths d(sum)/d(count) — e.g. mean service seconds from a
// latency histogram's running (count, sum).
type meanEstimator struct {
	alpha   float64
	mean    float64
	lastN   int64
	lastSum float64
	primed  bool
}

// observe folds in a (count, sum) sample and returns the updated mean.
// Windows with no new observations leave the estimate unchanged.
func (e *meanEstimator) observe(count int64, sum float64) float64 {
	if !e.primed {
		e.lastN, e.lastSum, e.primed = count, sum, true
		return e.mean
	}
	dn := count - e.lastN
	if dn <= 0 {
		return e.mean
	}
	inst := (sum - e.lastSum) / float64(dn)
	if inst < 0 {
		inst = 0
	}
	if e.mean == 0 {
		e.mean = inst
	} else {
		e.mean += e.alpha * (inst - e.mean)
	}
	e.lastN, e.lastSum = count, sum
	return e.mean
}
