package plan

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/router"
	"autoscale/internal/serve"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func conds() sim.Conditions { return sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55} }

// newTestRouter builds a one-shard router with the given lane count and a
// tenant per default class.
func newTestRouter(t testing.TB, lanes int, seed int64) *router.Router {
	t.Helper()
	backends := make([]serve.Backend, 0, lanes)
	for i := 0; i < lanes; i++ {
		w, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seed+int64(i)), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, serve.Backend{Device: "lane-" + string(rune('a'+i)), Engine: w})
	}
	gw, err := serve.New(backends, serve.Config{Name: "shard-a"})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.New([]router.ShardGateway{{Name: "shard-a", Gateway: gw}}, router.Config{
		Tenants: Tenants(DefaultClasses()),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Shutdown(context.Background()) })
	return rt
}

func doReq(t testing.TB, rt *router.Router, tenant string, arrivalS float64) serve.Response {
	t.Helper()
	r, err := rt.Do(serve.Request{
		Model:      dnn.MustByName("MobileNet v3"),
		Conditions: conds(),
		Tenant:     tenant,
		ArrivalS:   arrivalS,
	})
	if err != nil {
		t.Fatalf("request (tenant=%s arrival=%.2f): %v", tenant, arrivalS, err)
	}
	return r
}

func TestNewAppliesClassPolicy(t *testing.T) {
	rt := newTestRouter(t, 2, 11)
	if _, err := New(rt, Config{Classes: DefaultClasses()}); err != nil {
		t.Fatal(err)
	}
	want := map[string]Class{}
	for _, c := range DefaultClasses() {
		want[c.Name] = c
	}
	seen := 0
	for _, tq := range rt.TenantQueues() {
		c, ok := want[tq.Tenant]
		if !ok {
			continue
		}
		seen++
		if tq.Weight != c.Weight {
			t.Errorf("class %s weight = %d, want %d", c.Name, tq.Weight, c.Weight)
		}
		if tq.MaxVWaitS != c.MaxQueueS {
			t.Errorf("class %s admission gate = %g, want %g", c.Name, tq.MaxVWaitS, c.MaxQueueS)
		}
	}
	if seen != len(want) {
		t.Fatalf("only %d of %d classes have router tenants", seen, len(want))
	}
}

func TestNewRejectsUnknownTenant(t *testing.T) {
	rt := newTestRouter(t, 1, 12)
	_, err := New(rt, Config{Classes: []Class{{Name: "platinum", TargetP95S: 0.1, Weight: 8, MaxQueueS: 4}}})
	if err == nil {
		t.Fatal("New accepted a class with no router tenant")
	}
}

func TestMaybeTickInterval(t *testing.T) {
	rt := newTestRouter(t, 2, 13)
	p, err := New(rt, Config{Classes: DefaultClasses(), IntervalS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d, ticked := p.MaybeTick(0); !ticked || d.Generation != 1 {
		t.Fatalf("first tick: ticked=%v gen=%d, want true/1", ticked, d.Generation)
	}
	if _, ticked := p.MaybeTick(0.5); ticked {
		t.Fatal("mid-interval call recomputed")
	}
	if d, ticked := p.MaybeTick(1.0); !ticked || d.Generation != 2 {
		t.Fatalf("interval-boundary tick: ticked=%v gen=%d, want true/2", ticked, d.Generation)
	}
	if d := p.Decision(); d.Generation != 2 {
		t.Fatalf("Decision() generation = %d, want 2", d.Generation)
	}
}

func TestPlannerHoldsWithoutEstimates(t *testing.T) {
	rt := newTestRouter(t, 4, 14)
	rt.SetActiveLanes(2)
	p, err := New(rt, Config{Classes: DefaultClasses()})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := p.MaybeTick(0)
	if !d.Held {
		t.Fatalf("tick with no traffic not held: %+v", d)
	}
	if got := rt.ActiveLanes(); got != 2 {
		t.Fatalf("held tick moved active lanes to %d", got)
	}
}

// TestPlannerScalesUpRateLimited drives saturating gold traffic through a
// deliberately under-provisioned router and checks the planner scales active
// lanes toward capacity — but never faster than MaxStepFactor per tick — and
// keeps the budget and per-class queue depths in step.
func TestPlannerScalesUpRateLimited(t *testing.T) {
	rt := newTestRouter(t, 4, 15)
	rt.SetActiveLanes(1)
	p, err := New(rt, Config{Classes: DefaultClasses(), IntervalS: 1, MaxStepFactor: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Probe the simulated service time so the offered load saturates the
	// fleet regardless of the hardware model's absolute speed.
	for i := 0; i < 20; i++ {
		doReq(t, rt, "gold", 0.001*float64(i+1))
	}
	snap := rt.Snapshot()
	svc := snap.Latency.Sum / float64(snap.Latency.Count)
	if svc <= 0 {
		t.Fatalf("probe measured service time %g", svc)
	}
	p.MaybeTick(0.5) // prime estimators past the probe traffic

	// Arrivals at 2x a single lane's service rate: past the utilization
	// ceiling for anything under four lanes, so the model wants all of
	// them. (Not so hot that the sequential driver builds enough virtual
	// backlog to trip the gold admission gate.)
	lambda := 2 / svc
	n := int(lambda)
	drive := func(from float64) {
		arrival := from
		for i := 0; i < n; i++ {
			arrival += 1 / lambda
			doReq(t, rt, "gold", arrival)
		}
	}
	drive(0.5)
	d, ticked := p.MaybeTick(1.5)
	if !ticked || d.Held {
		t.Fatalf("loaded tick did not plan: ticked=%v %+v", ticked, d)
	}
	if d.TotalRateHz < lambda/2 {
		t.Fatalf("estimated rate %.1f/s for %d arrivals in 1s", d.TotalRateHz, n)
	}
	if d.ActiveLanes != 2 {
		t.Fatalf("first loaded tick applied %d lanes, want 2 (rate-limited from 1)", d.ActiveLanes)
	}
	if got := rt.ActiveLanes(); got != 2 {
		t.Fatalf("router active lanes = %d, want 2", got)
	}
	if d.Budget != 4 {
		t.Fatalf("budget = %d, want 2x lanes = 4", d.Budget)
	}
	if len(d.QueueDepth) != len(DefaultClasses()) {
		t.Fatalf("queue depths for %d classes, want %d", len(d.QueueDepth), len(DefaultClasses()))
	}

	// A second loaded window keeps demand high; the next tick doubles again.
	drive(1.5)
	d, _ = p.MaybeTick(2.5)
	if d.ActiveLanes != 4 {
		t.Fatalf("second loaded tick applied %d lanes, want 4", d.ActiveLanes)
	}
	if d.PredictedOccupancy <= 0 || d.PredictedOccupancy > 1 {
		t.Fatalf("predicted occupancy %g out of (0,1]", d.PredictedOccupancy)
	}
	if d.MeasuredOccupancy <= 0 {
		t.Fatalf("measured occupancy %g, want > 0 after a served window", d.MeasuredOccupancy)
	}
}

func TestPlannerSurgeLookahead(t *testing.T) {
	sched := &fault.Schedule{Name: "surge", Faults: []fault.Spec{
		{Kind: fault.KindLoadSurge, StartS: 10, EndS: 20, Factor: 4},
	}}
	inj := fault.New(sched, exec.NewRoot(1).Child("faults"))
	rt := newTestRouter(t, 4, 16)
	p, err := New(rt, Config{Classes: DefaultClasses(), IntervalS: 1, SurgeLookaheadS: 2, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := p.MaybeTick(0)
	if d.SurgeFactor != 1 {
		t.Fatalf("surge factor %g with the surge 10s away", d.SurgeFactor)
	}
	// At t=9 the lookahead window [9, 11) contains the surge start.
	d, _ = p.MaybeTick(9)
	if d.SurgeFactor != 4 {
		t.Fatalf("surge factor %g at t=9 with lookahead 2, want 4", d.SurgeFactor)
	}
}

// TestPlanAdmin checks the planner as an admin source: /plan serves the
// status document, /metrics carries the autoscale_plan_* series, and every
// plan series renders its HELP/TYPE header exactly once.
func TestPlanAdmin(t *testing.T) {
	rt := newTestRouter(t, 2, 17)
	p, err := New(rt, Config{Classes: DefaultClasses()})
	if err != nil {
		t.Fatal(err)
	}
	doReq(t, rt, "gold", 0.01)
	p.MaybeTick(1)

	a, err := serve.ServeAdminSource(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + a.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/plan")
	if code != http.StatusOK {
		t.Fatalf("/plan status %d: %s", code, body)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/plan is not a Status document: %v", err)
	}
	if st.Decision.Generation != 1 || len(st.Classes) != 3 {
		t.Fatalf("/plan decision gen=%d classes=%d, want 1/3", st.Decision.Generation, len(st.Classes))
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	assertHeadersOnce(t, body, "autoscale_plan_")
	for _, name := range []string{
		"autoscale_plan_generation", "autoscale_plan_active_lanes",
		"autoscale_plan_budget", "autoscale_plan_surge_factor",
		"autoscale_plan_class_target_p95_seconds",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// assertHeadersOnce fails if any metric with the given name prefix renders
// its HELP or TYPE header more (or fewer) than exactly once, or samples a
// name with no header at all.
func assertHeadersOnce(t *testing.T, body, prefix string) {
	t.Helper()
	help := map[string]int{}
	typ := map[string]int{}
	sampled := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line[len("# HELP "):])[0]
			help[name]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line[len("# TYPE "):])[0]
			typ[name]++
			continue
		}
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i > 0 {
			name = line[:i]
		}
		// Histogram sample suffixes share their base metric's header.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && help[base] > 0 {
				name = base
				break
			}
		}
		sampled[name] = true
	}
	for name := range sampled {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if help[name] != 1 {
			t.Errorf("metric %s: %d HELP lines, want exactly 1", name, help[name])
		}
		if typ[name] != 1 {
			t.Errorf("metric %s: %d TYPE lines, want exactly 1", name, typ[name])
		}
	}
	if len(sampled) == 0 {
		t.Fatalf("no %s* samples in body; test is vacuous", prefix)
	}
}

func BenchmarkPlannerRecompute(b *testing.B) {
	rt := newTestRouter(b, 4, 18)
	p, err := New(rt, Config{Classes: DefaultClasses(), IntervalS: 1})
	if err != nil {
		b.Fatal(err)
	}
	arrival := 0.0
	for i := 0; i < 200; i++ {
		arrival += 0.01
		doReq(b, rt, DefaultClasses()[i%3].Name, arrival)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each call crosses an interval boundary, so every iteration is a
		// full estimation -> model -> actuation recompute.
		p.MaybeTick(float64(i + 1))
	}
}
