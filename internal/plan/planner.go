package plan

import (
	"fmt"
	"math"
	"sync"

	"autoscale/internal/fault"
	"autoscale/internal/router"
	"autoscale/internal/tracez"
)

// Config tunes a Planner.
type Config struct {
	// Classes are the SLO tiers the planner provisions for. Required, at
	// least one. Each class must match a router tenant (provision the
	// router with Tenants(classes)).
	Classes []Class
	// IntervalS is the recompute period on the virtual arrival clock
	// (default 1s). MaybeTick calls inside a window are free no-ops.
	IntervalS float64
	// EWMAAlpha smooths the arrival-rate and service-time estimators
	// (default 0.35): higher reacts faster, lower rides out bursts.
	EWMAAlpha float64
	// UtilizationTarget caps planned per-lane occupancy (default 0.7):
	// lanes are added until predicted ρ falls under it, independent of the
	// wait target.
	UtilizationTarget float64
	// Headroom over-provisions the modeled lane requirement by a fraction
	// (non-positive means the default 0.15) so estimation lag does not
	// translate into queueing.
	Headroom float64
	// MaxStepFactor rate-limits actuation (default 2.0): each tick may at
	// most multiply or divide the active-lane count by this factor, so a
	// noisy estimate cannot slam the fleet between extremes.
	MaxStepFactor float64
	// MinLanes / MaxLanes clamp the planned active-lane count. MinLanes
	// defaults to 1; MaxLanes defaults to the router's TotalLanes.
	MinLanes int
	MaxLanes int
	// MinBudget / MaxBudget clamp the planned global in-flight budget
	// (default: no floor beyond 1, no ceiling). The budget tracks
	// 2x active lanes — one serving plus one queued per lane.
	MinBudget int
	MaxBudget int
	// SurgeLookaheadS is how far ahead the planner scans the fault schedule
	// for load surges (default 2x IntervalS): capacity is provisioned for
	// the peak surge factor in [now, now+lookahead), so scale-up lands
	// before the surge does.
	SurgeLookaheadS float64
	// Faults, when non-nil, is the schedule the lookahead scans.
	Faults *fault.Injector
}

func (c Config) intervalS() float64 {
	if c.IntervalS <= 0 {
		return 1
	}
	return c.IntervalS
}

func (c Config) alpha() float64 {
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		return 0.35
	}
	return c.EWMAAlpha
}

func (c Config) utilization() float64 {
	if c.UtilizationTarget <= 0 || c.UtilizationTarget >= 1 {
		return 0.7
	}
	return c.UtilizationTarget
}

func (c Config) headroom() float64 {
	if c.Headroom <= 0 {
		return 0.15
	}
	return c.Headroom
}

func (c Config) stepFactor() float64 {
	if c.MaxStepFactor < 1 {
		return 2.0
	}
	return c.MaxStepFactor
}

func (c Config) lookaheadS() float64 {
	if c.SurgeLookaheadS <= 0 {
		return 2 * c.intervalS()
	}
	return c.SurgeLookaheadS
}

// Decision is one recompute's output: the estimates it saw, the model it
// fit, and the actuation it applied. Map keys are class names; Go's JSON
// encoder sorts them, so a marshaled decision is deterministic.
type Decision struct {
	// Generation counts recomputes since the planner was built.
	Generation int64 `json:"generation"`
	// AtS is the virtual arrival-clock time of the recompute.
	AtS float64 `json:"at_s"`
	// RateHz is the EWMA-estimated offered arrival rate per class
	// (admitted plus shed, before surge scaling).
	RateHz map[string]float64 `json:"rate_hz"`
	// TotalRateHz sums RateHz across classes.
	TotalRateHz float64 `json:"total_rate_hz"`
	// SurgeFactor is the peak scheduled load multiplier in the lookahead
	// window (1 when no surge is scheduled).
	SurgeFactor float64 `json:"surge_factor"`
	// PlanRateHz = TotalRateHz x SurgeFactor — the arrival rate capacity
	// was provisioned for.
	PlanRateHz float64 `json:"plan_rate_hz"`
	// ServiceS is the EWMA-estimated mean service time per request.
	ServiceS float64 `json:"service_s"`
	// Held reports a tick with no usable estimate yet (no completed
	// requests, or zero arrival rate): the planner records but does not
	// actuate.
	Held bool `json:"held,omitempty"`
	// RequiredLanes is the raw M/M/c lane requirement before headroom,
	// clamping and rate limiting; ActiveLanes is what was applied.
	RequiredLanes int `json:"required_lanes"`
	ActiveLanes   int `json:"active_lanes"`
	TotalLanes    int `json:"total_lanes"`
	// Budget is the applied global in-flight budget.
	Budget int `json:"budget"`
	// QueueDepth is the applied per-class router queue bound.
	QueueDepth map[string]int `json:"queue_depth"`
	// PredictedWaitS / PredictedOccupancy are the M/M/c model's outputs at
	// the applied lane count (capped at 1 occupancy for reporting).
	PredictedWaitS     float64 `json:"predicted_wait_s"`
	PredictedOccupancy float64 `json:"predicted_occupancy"`
	// MeasuredOccupancy is busy-seconds per active-lane-second over the
	// last window (service-sum delta / lanes x wall delta), and
	// CalibrationError the relative gap |predicted-measured|/measured
	// between the previous decision's prediction and this measurement.
	// Report-only: calibration never feeds back into actuation.
	MeasuredOccupancy float64 `json:"measured_occupancy"`
	CalibrationError  float64 `json:"calibration_error"`
}

// ClassStatus is one SLO class's attainment row.
type ClassStatus struct {
	Name       string  `json:"name"`
	TargetP95S float64 `json:"target_p95_s"`
	// AchievedP95S is the measured p95 virtual response time (vwait plus
	// execution latency) for the class's tenant; zero before any request.
	AchievedP95S float64 `json:"achieved_p95_s"`
	// Attained reports AchievedP95S <= TargetP95S (true while unmeasured).
	Attained  bool    `json:"attained"`
	Weight    int     `json:"weight"`
	MaxQueueS float64 `json:"max_queue_s"`
	Admitted  uint64  `json:"admitted"`
	Shed      uint64  `json:"shed"`
	Queued    int     `json:"queued"`
	Depth     int     `json:"depth"`
}

// Status is the /plan document: the latest decision plus per-class SLO
// attainment.
type Status struct {
	Decision Decision      `json:"decision"`
	Classes  []ClassStatus `json:"classes"`
}

// Planner closes the slow control loop: it estimates per-class arrival
// rates and the fleet mean service time from the router's counters, fits an
// M/M/c occupancy model, and actuates lanes, budgets and queue depths
// through the router's clamped setters. Building a planner immediately
// applies the static class policy (DRR weights and admission gates);
// capacity moves only on MaybeTick.
type Planner struct {
	rt  *router.Router
	cfg Config

	mu         sync.Mutex
	rates      map[string]*rateEstimator
	svc        meanEstimator
	lastTick   float64
	primed     bool
	lastLanes  int
	lastBudget int
	// calibration window state: previous snapshot's service-time sum, tick
	// time, lane count and predicted occupancy.
	prevSum   float64
	prevAt    float64
	prevLanes int
	prevPred  float64
	last      Decision
}

// New validates the classes, applies their static router policy (weights
// and admission-wait gates, strictly class-ordered sheds) and returns a
// planner ready to tick. The router must have been configured with a tenant
// per class (see Tenants).
func New(rt *router.Router, cfg Config) (*Planner, error) {
	if rt == nil {
		return nil, fmt.Errorf("plan: nil router")
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("plan: no SLO classes")
	}
	seen := map[string]bool{}
	for _, c := range cfg.Classes {
		if err := c.validate(); err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("plan: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
	}
	p := &Planner{
		rt:        rt,
		cfg:       cfg,
		rates:     make(map[string]*rateEstimator, len(cfg.Classes)),
		svc:       meanEstimator{alpha: cfg.alpha()},
		lastLanes: rt.ActiveLanes(),
	}
	for _, c := range cfg.Classes {
		p.rates[c.Name] = &rateEstimator{alpha: cfg.alpha()}
		if err := rt.SetTenantWeight(c.Name, c.Weight); err != nil {
			return nil, fmt.Errorf("plan: class %q has no router tenant: %w", c.Name, err)
		}
		if err := rt.SetAdmissionWait(c.Name, c.MaxQueueS); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Router returns the routing tier the planner actuates — the front door
// callers submit requests through.
func (p *Planner) Router() *router.Router { return p.rt }

// Decision returns the latest plan decision (zero before the first tick).
func (p *Planner) Decision() Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

// MaybeTick recomputes the plan if a full interval has elapsed on the
// virtual arrival clock since the last recompute. It returns the decision
// and whether this call produced it. Drive it from the admission path
// (per-request, with the request's arrival stamp) or a replay loop: ticks
// are pure arithmetic on counters — no wall clock, no randomness — so a
// fixed-seed run re-plans identically.
func (p *Planner) MaybeTick(now float64) (Decision, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.primed && now-p.lastTick < p.cfg.intervalS() {
		return p.last, false
	}
	d := p.recomputeLocked(now)
	p.lastTick = now
	p.primed = true
	p.last = d
	return d, true
}

// recomputeLocked runs one estimation -> model -> actuation pass at virtual
// time now. Callers hold p.mu.
func (p *Planner) recomputeLocked(now float64) Decision {
	d := Decision{
		Generation: p.last.Generation + 1,
		AtS:        now,
		RateHz:     make(map[string]float64, len(p.cfg.Classes)),
		QueueDepth: make(map[string]int, len(p.cfg.Classes)),
	}

	// Estimation: per-class offered rate from the router's admission
	// counters, fleet mean service time from the latency histogram.
	snap := p.rt.Snapshot()
	svc := p.svc.observe(snap.Latency.Count, snap.Latency.Sum)
	byTenant := map[string]struct {
		offered uint64
		queued  int
	}{}
	for _, tq := range p.rt.TenantQueues() {
		byTenant[tq.Tenant] = struct {
			offered uint64
			queued  int
		}{tq.Admitted + tq.Shed, tq.Queued}
	}
	total := 0.0
	for _, c := range p.cfg.Classes {
		est := p.rates[c.Name]
		rate := est.observe(now, byTenant[c.Name].offered)
		d.RateHz[c.Name] = rate
		total += rate
	}
	d.TotalRateHz = total
	d.ServiceS = svc

	// Lookahead: provision for the worst surge scheduled inside the
	// horizon, so lanes come up before the wave hits.
	d.SurgeFactor = 1
	if p.cfg.Faults != nil {
		d.SurgeFactor = p.cfg.Faults.PeakSurge(now, now+p.cfg.lookaheadS())
	}
	d.PlanRateHz = total * d.SurgeFactor

	d.TotalLanes = p.rt.TotalLanes()
	d.ActiveLanes = p.rt.ActiveLanes()
	d.Budget = p.rt.GlobalBudget()

	// Calibration: compare the previous prediction against the occupancy
	// the fleet actually measured over the window just ended.
	if p.prevAt > 0 && now > p.prevAt && p.prevLanes > 0 {
		busy := snap.Latency.Sum - p.prevSum
		d.MeasuredOccupancy = busy / (float64(p.prevLanes) * (now - p.prevAt))
		if d.MeasuredOccupancy > 0 {
			d.CalibrationError = math.Abs(p.prevPred-d.MeasuredOccupancy) / d.MeasuredOccupancy
		}
	}

	if d.PlanRateHz <= 0 || svc <= 0 {
		// No usable estimate yet: hold capacity, record the tick.
		d.Held = true
		p.noteWindow(now, snap.Latency.Sum, d.ActiveLanes, d.PredictedOccupancy)
		return d
	}
	mu := 1 / svc

	// Model: lanes to meet the strictest class's wait budget, then the
	// utilization ceiling, then headroom.
	strictest := math.Inf(1)
	for _, c := range p.cfg.Classes {
		if c.TargetP95S < strictest {
			strictest = c.TargetP95S
		}
	}
	waitBudget := strictest - svc
	if waitBudget < strictest/4 {
		waitBudget = strictest / 4
	}
	maxLanes := d.TotalLanes
	if p.cfg.MaxLanes > 0 && p.cfg.MaxLanes < maxLanes {
		maxLanes = p.cfg.MaxLanes
	}
	need := RequiredServers(d.PlanRateHz, mu, waitBudget, maxLanes)
	if byUtil := int(math.Ceil(d.PlanRateHz / (mu * p.cfg.utilization()))); byUtil > need {
		need = byUtil
	}
	d.RequiredLanes = need
	lanes := int(math.Ceil(float64(need) * (1 + p.cfg.headroom())))

	// Clamp and rate-limit against the previous applied lane count.
	minLanes := p.cfg.MinLanes
	if minLanes < 1 {
		minLanes = 1
	}
	if lanes < minLanes {
		lanes = minLanes
	}
	if lanes > maxLanes {
		lanes = maxLanes
	}
	if prev := p.lastLanes; prev > 0 {
		step := p.cfg.stepFactor()
		if up := int(math.Ceil(float64(prev) * step)); lanes > up {
			lanes = up
		}
		if down := int(math.Floor(float64(prev) / step)); lanes < down {
			lanes = down
		}
	}

	// Actuation, all through clamped router setters. Capacity moves land in
	// the flight recorder's event ring — only actual changes, so a steady
	// plan does not flood the ring with per-tick noise.
	applied := p.rt.SetActiveLanes(lanes)
	if applied > 0 && applied != p.lastLanes {
		p.rt.Recorder().Note(now, "plan", "lanes",
			fmt.Sprintf("active lanes %d -> %d (required %d)", p.lastLanes, applied, need))
	}
	if applied > 0 {
		p.lastLanes = applied
	}
	d.ActiveLanes = applied
	budget := 2 * applied
	if p.cfg.MinBudget > 0 && budget < p.cfg.MinBudget {
		budget = p.cfg.MinBudget
	}
	if p.cfg.MaxBudget > 0 && budget > p.cfg.MaxBudget {
		budget = p.cfg.MaxBudget
	}
	d.Budget = p.rt.SetGlobalBudget(budget)
	if d.Budget != p.lastBudget {
		if p.lastBudget != 0 {
			p.rt.Recorder().Note(now, "plan", "budget",
				fmt.Sprintf("global budget %d -> %d", p.lastBudget, d.Budget))
		}
		p.lastBudget = d.Budget
	}
	for _, c := range p.cfg.Classes {
		// Depth: the queue a class may accumulate before its admission
		// gate bites anyway — its surged arrival share for MaxQueueS.
		depth := int(math.Ceil(d.RateHz[c.Name]*d.SurgeFactor*c.MaxQueueS)) + 1
		if depth < 4 {
			depth = 4
		}
		if depth > 4096 {
			depth = 4096
		}
		if _, err := p.rt.SetTenantQueueDepth(c.Name, depth); err == nil {
			d.QueueDepth[c.Name] = depth
		}
	}

	m := MMC{LambdaHz: d.PlanRateHz, MuHz: mu, Servers: applied}
	d.PredictedWaitS = m.MeanWaitS()
	if math.IsInf(d.PredictedWaitS, 1) {
		d.PredictedWaitS = -1 // unstable: no finite wait to report
	}
	d.PredictedOccupancy = math.Min(m.Occupancy(), 1)
	p.noteWindow(now, snap.Latency.Sum, applied, d.PredictedOccupancy)
	return d
}

// noteWindow records the calibration baseline for the next tick.
func (p *Planner) noteWindow(now, latencySum float64, lanes int, pred float64) {
	p.prevAt = now
	p.prevSum = latencySum
	p.prevLanes = lanes
	p.prevPred = pred
}

// Status assembles the /plan document: latest decision plus per-class SLO
// attainment measured from the per-tenant response histograms.
// Tracer exposes the routing tier's causal tracer so a planner-fronted
// admin endpoint serves the /traces surface; nil when tracing is off.
func (p *Planner) Tracer() *tracez.Tracer { return p.rt.Tracer() }

func (p *Planner) Status() Status {
	p.mu.Lock()
	last := p.last
	p.mu.Unlock()
	snap := p.rt.Snapshot()
	rows := map[string]ClassStatus{}
	for _, tq := range p.rt.TenantQueues() {
		rows[tq.Tenant] = ClassStatus{
			Admitted: tq.Admitted,
			Shed:     tq.Shed,
			Queued:   tq.Queued,
			Depth:    tq.Depth,
			Weight:   tq.Weight,
		}
	}
	st := Status{Decision: last, Classes: make([]ClassStatus, 0, len(p.cfg.Classes))}
	for _, c := range p.cfg.Classes {
		row := rows[c.Name]
		row.Name = c.Name
		row.TargetP95S = c.TargetP95S
		row.MaxQueueS = c.MaxQueueS
		if h, ok := snap.ByTenant[c.Name]; ok && h.Count > 0 {
			row.AchievedP95S = h.Quantile(0.95)
		}
		row.Attained = row.AchievedP95S <= c.TargetP95S
		st.Classes = append(st.Classes, row)
	}
	return st
}
