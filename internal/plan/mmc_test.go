package plan

import (
	"math"
	"testing"

	"autoscale/internal/exec"
)

func TestErlangKnownValues(t *testing.T) {
	// Erlang-B single server: B(1, a) = a/(1+a).
	for _, a := range []float64{0.1, 0.5, 1, 2, 5} {
		want := a / (1 + a)
		if got := ErlangB(1, a); math.Abs(got-want) > 1e-12 {
			t.Errorf("ErlangB(1, %g) = %g, want %g", a, got, want)
		}
	}
	// Erlang-C single server is the M/M/1 wait probability: C(1, rho) = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); math.Abs(got-rho) > 1e-12 {
			t.Errorf("ErlangC(1, %g) = %g, want %g", rho, got, rho)
		}
	}
	// Textbook value: C(4, 3) for lambda=3, mu=1, c=4.
	if got := ErlangC(4, 3); math.Abs(got-0.509434) > 1e-3 {
		t.Errorf("ErlangC(4, 3) = %g, want ~0.5094", got)
	}
	// Degenerate and unstable systems saturate at 1.
	for _, got := range []float64{ErlangC(0, 1), ErlangC(4, 4), ErlangC(4, 9), ErlangB(0, 1)} {
		if got != 1 {
			t.Errorf("degenerate Erlang value = %g, want 1", got)
		}
	}
}

func TestMMCWaitLaw(t *testing.T) {
	m := MMC{LambdaHz: 3, MuHz: 1, Servers: 4}
	if !m.Stable() {
		t.Fatal("lambda=3 mu=1 c=4 must be stable")
	}
	if got, want := m.Occupancy(), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("occupancy = %g, want %g", got, want)
	}
	// Wq = C/(c*mu - lambda) = C/1.
	if got, want := m.MeanWaitS(), m.WaitProbability(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean wait = %g, want %g", got, want)
	}
	// Quantiles: below the no-wait mass they are 0, above they grow.
	if got := m.WaitQuantileS(0.3); got != 0 {
		t.Errorf("q30 wait = %g, want 0 (P(wait) ~ 0.51)", got)
	}
	q95 := m.WaitQuantileS(0.95)
	q99 := m.WaitQuantileS(0.99)
	if q95 <= 0 || q99 <= q95 {
		t.Errorf("wait quantiles not increasing: q95=%g q99=%g", q95, q99)
	}
	// Unstable system: infinite waits.
	bad := MMC{LambdaHz: 5, MuHz: 1, Servers: 4}
	if !math.IsInf(bad.MeanWaitS(), 1) || !math.IsInf(bad.WaitQuantileS(0.5), 1) {
		t.Error("unstable system must report infinite waits")
	}
}

func TestRequiredServers(t *testing.T) {
	// Stability alone: lambda=3, mu=1 needs 4 servers.
	if got := RequiredServers(3, 1, 0, 16); got != 4 {
		t.Errorf("RequiredServers(3, 1, stability) = %d, want 4", got)
	}
	// A tight wait target needs more than bare stability.
	loose := RequiredServers(3, 1, 1.0, 16)
	tight := RequiredServers(3, 1, 0.01, 16)
	if tight <= loose {
		t.Errorf("tight target %d servers <= loose target %d", tight, loose)
	}
	// The cap wins when even maxServers cannot meet the target.
	if got := RequiredServers(30, 1, 0.001, 8); got != 8 {
		t.Errorf("capped RequiredServers = %d, want 8", got)
	}
	if got := RequiredServers(0, 1, 0.1, 8); got != 1 {
		t.Errorf("no-load RequiredServers = %d, want 1", got)
	}
}

// TestMMCCalibration is the model-accuracy acceptance gate: an event-driven
// M/M/c simulation (Poisson arrivals, exponential service, c FIFO servers,
// fixed seed) must land within 15% of the Erlang-C model on both occupancy
// and mean wait.
func TestMMCCalibration(t *testing.T) {
	const (
		lambda = 3.0
		mu     = 1.0
		c      = 4
		n      = 20000
	)
	rng := exec.NewRand(1887)
	free := make([]float64, c) // next-free time per server
	arrival := 0.0
	var busySum, waitSum, lastDone float64
	for i := 0; i < n; i++ {
		arrival += rng.ExpFloat64() / lambda
		// Earliest-free server takes the head of the FIFO queue.
		srv := 0
		for j := 1; j < c; j++ {
			if free[j] < free[srv] {
				srv = j
			}
		}
		start := arrival
		if free[srv] > start {
			start = free[srv]
		}
		waitSum += start - arrival
		svc := rng.ExpFloat64() / mu
		busySum += svc
		free[srv] = start + svc
		if free[srv] > lastDone {
			lastDone = free[srv]
		}
	}
	m := MMC{LambdaHz: lambda, MuHz: mu, Servers: c}

	measuredOcc := busySum / (float64(c) * lastDone)
	if gap := math.Abs(m.Occupancy()-measuredOcc) / measuredOcc; gap > 0.15 {
		t.Errorf("predicted occupancy %.4f vs measured %.4f: %.1f%% off (budget 15%%)",
			m.Occupancy(), measuredOcc, gap*100)
	}
	measuredWait := waitSum / n
	if gap := math.Abs(m.MeanWaitS()-measuredWait) / measuredWait; gap > 0.15 {
		t.Errorf("predicted mean wait %.4fs vs measured %.4fs: %.1f%% off (budget 15%%)",
			m.MeanWaitS(), measuredWait, gap*100)
	}
}
