// Package plan is the model-driven capacity planner above the routing tier:
// the slow control loop that decides how much capacity should exist while
// the per-request RL scheduler (internal/core) decides how to spend it.
//
// Three pieces close the loop. Estimation reads per-class arrival rates and
// the fleet-wide mean service time from the routing tier's admission
// counters and the seqlock metrics registry — pure counter deltas smoothed
// by EWMA, no instrumentation of its own. An Erlang-C/M/M/c occupancy model
// maps (λ, 1/μ, c lanes) to predicted wait and occupancy, and is calibrated
// against measured lane occupancy with a reported error. Actuation applies
// the plan through the router's narrow setters: active worker lanes, the
// global in-flight budget, per-class queue depths, DRR weights and
// admission-wait gates — each clamped and rate-limited, never mid-request.
//
// Determinism: the planner ticks on the caller-supplied virtual arrival
// clock, draws no random numbers and reads no wall clock, so a fixed-seed
// run replays its plan decisions byte-identically.
package plan

import "math"

// ErlangB returns the Erlang-B blocking probability for c servers at
// offered load a = λ/μ, via the standard stable recurrence
// B(0) = 1, B(k) = a·B(k-1) / (k + a·B(k-1)).
func ErlangB(c int, a float64) float64 {
	if c <= 0 || a <= 0 {
		return 1
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the probability an arrival waits (all c servers busy) in
// an M/M/c queue at offered load a = λ/μ. Returns 1 for an unstable or
// degenerate system (a >= c).
func ErlangC(c int, a float64) float64 {
	if c <= 0 || a <= 0 {
		return 1
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1
	}
	b := ErlangB(c, a)
	return b / (1 - rho + rho*b)
}

// MMC is one M/M/c queueing scenario: Poisson arrivals at LambdaHz,
// exponential service at rate MuHz per server, Servers parallel servers.
// Worker lanes map to servers: each lane is a single-server FIFO on the
// virtual clock, and unpinned routing spreads arrivals across active lanes.
type MMC struct {
	LambdaHz float64
	MuHz     float64
	Servers  int
}

// OfferedLoad returns a = λ/μ in Erlangs.
func (m MMC) OfferedLoad() float64 {
	if m.MuHz <= 0 {
		return math.Inf(1)
	}
	return m.LambdaHz / m.MuHz
}

// Occupancy returns ρ = λ/(c·μ), the predicted busy fraction per server.
// May exceed 1 for an overloaded system.
func (m MMC) Occupancy() float64 {
	if m.Servers <= 0 || m.MuHz <= 0 {
		return math.Inf(1)
	}
	return m.LambdaHz / (float64(m.Servers) * m.MuHz)
}

// Stable reports whether the queue has a steady state (ρ < 1).
func (m MMC) Stable() bool { return m.Occupancy() < 1 }

// WaitProbability returns P(wait > 0), the Erlang-C probability.
func (m MMC) WaitProbability() float64 { return ErlangC(m.Servers, m.OfferedLoad()) }

// MeanWaitS returns the expected queueing delay Wq = C(c,a)/(c·μ − λ)
// seconds; +Inf for an unstable system.
func (m MMC) MeanWaitS() float64 {
	if !m.Stable() {
		return math.Inf(1)
	}
	drain := float64(m.Servers)*m.MuHz - m.LambdaHz
	return m.WaitProbability() / drain
}

// WaitQuantileS returns the q-quantile (0..1) of the queueing delay, using
// the M/M/c wait law P(W > t) = Pw·exp(−(c·μ−λ)·t): zero when the quantile
// falls in the no-wait mass, +Inf for an unstable system.
func (m MMC) WaitQuantileS(q float64) float64 {
	if !m.Stable() {
		return math.Inf(1)
	}
	pw := m.WaitProbability()
	tail := 1 - q
	if tail <= 0 {
		return math.Inf(1)
	}
	if tail >= pw {
		return 0
	}
	drain := float64(m.Servers)*m.MuHz - m.LambdaHz
	return math.Log(pw/tail) / drain
}

// RequiredServers returns the smallest server count whose predicted mean
// wait meets targetWaitS at arrival rate lambdaHz and per-server service
// rate muHz, capped at maxServers (returned when even that many cannot meet
// the target — the caller clamps to physical capacity anyway). A
// non-positive target asks only for stability.
func RequiredServers(lambdaHz, muHz, targetWaitS float64, maxServers int) int {
	if lambdaHz <= 0 || muHz <= 0 {
		return 1
	}
	if maxServers < 1 {
		maxServers = 1
	}
	for c := 1; c <= maxServers; c++ {
		m := MMC{LambdaHz: lambdaHz, MuHz: muHz, Servers: c}
		if !m.Stable() {
			continue
		}
		if targetWaitS <= 0 || m.MeanWaitS() <= targetWaitS {
			return c
		}
	}
	return maxServers
}
