package plan

import (
	"encoding/json"

	"autoscale/internal/core"
	"autoscale/internal/obs"
	"autoscale/internal/serve"
	"autoscale/internal/serve/metrics"
)

// The planner fronts its router for the admin endpoint: point
// serve.ServeAdminSource at the planner and every router view works
// unchanged, plus /plan lights up and /metrics gains the autoscale_plan_*
// series. All views are read-side only.

// Snapshot merges the shard registries (router view, unchanged).
func (p *Planner) Snapshot() metrics.Snapshot { return p.rt.Snapshot() }

// Health merges per-device learning health (router view, unchanged).
func (p *Planner) Health() map[string]core.Health { return p.rt.Health() }

// Closed reports whether the routing tier has shut down.
func (p *Planner) Closed() bool { return p.rt.Closed() }

// ShardStatuses delegates the /shards shard rows to the router.
func (p *Planner) ShardStatuses() []serve.ShardStatus { return p.rt.ShardStatuses() }

// TenantQueues delegates the /shards tenant rows to the router.
func (p *Planner) TenantQueues() []serve.TenantQueueStatus { return p.rt.TenantQueues() }

// PlanJSON renders the /plan document.
func (p *Planner) PlanJSON() ([]byte, error) {
	return json.MarshalIndent(p.Status(), "", "  ")
}

// PromText renders the router's merged metrics body plus the planner's own
// series.
func (p *Planner) PromText() []byte {
	body := p.rt.PromText()
	st := p.Status()
	d := st.Decision
	var pr obs.Prom
	pr.Counter("autoscale_plan_generation", "Plan recomputes since the planner was built.", float64(d.Generation))
	pr.Gauge("autoscale_plan_active_lanes", "Active worker lanes the plan applied.", float64(d.ActiveLanes))
	pr.Gauge("autoscale_plan_total_lanes", "Worker lanes available across healthy shards.", float64(d.TotalLanes))
	pr.Gauge("autoscale_plan_budget", "Global in-flight budget the plan applied.", float64(d.Budget))
	pr.Gauge("autoscale_plan_total_arrival_rate_hz", "EWMA-estimated offered arrival rate, all classes.", d.TotalRateHz)
	pr.Gauge("autoscale_plan_service_seconds", "EWMA-estimated mean service time per request.", d.ServiceS)
	pr.Gauge("autoscale_plan_surge_factor", "Peak scheduled load multiplier in the lookahead window.", d.SurgeFactor)
	pr.Gauge("autoscale_plan_predicted_wait_seconds", "M/M/c predicted mean queueing delay (-1 when unstable).", d.PredictedWaitS)
	pr.Gauge("autoscale_plan_predicted_occupancy", "M/M/c predicted per-lane occupancy (capped at 1).", d.PredictedOccupancy)
	pr.Gauge("autoscale_plan_measured_occupancy", "Measured busy-seconds per active-lane-second last window.", d.MeasuredOccupancy)
	pr.Gauge("autoscale_plan_calibration_error", "Relative gap between predicted and measured occupancy.", d.CalibrationError)
	for _, c := range st.Classes {
		pr.Gauge("autoscale_plan_arrival_rate_hz", "EWMA-estimated offered arrival rate per class.", d.RateHz[c.Name], "class", c.Name)
		pr.Gauge("autoscale_plan_class_target_p95_seconds", "Configured p95 virtual response-time target.", c.TargetP95S, "class", c.Name)
		pr.Gauge("autoscale_plan_class_achieved_p95_seconds", "Measured p95 virtual response time.", c.AchievedP95S, "class", c.Name)
		pr.Gauge("autoscale_plan_class_attained", "1 when achieved p95 meets the target.", boolGauge(c.Attained), "class", c.Name)
		pr.Gauge("autoscale_plan_class_max_queue_seconds", "Admission-gate backlog bound per class.", c.MaxQueueS, "class", c.Name)
		pr.Gauge("autoscale_plan_class_queue_depth", "Router queue bound the plan applied per class.", float64(c.Depth), "class", c.Name)
	}
	return append(body, pr.Bytes()...)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
