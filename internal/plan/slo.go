package plan

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"autoscale/internal/router"
)

// Class is one SLO tier: a router tenant with a latency target and a shed
// priority. The paper's scenarios treat all traffic alike; SLO classes are
// the scenario family a capacity plan exists for — gold pays for headroom,
// best-effort absorbs overload first.
type Class struct {
	// Name is the router tenant the class bills to.
	Name string
	// TargetP95S is the class's p95 virtual response-time target (vwait plus
	// execution latency, seconds) — what attainment is judged on.
	TargetP95S float64
	// Weight is the class's DRR fairness weight.
	Weight int
	// MaxQueueS is the class's admission gate: arrival-stamped requests are
	// shed while the estimated backlog exceeds it. Strictly larger bounds
	// for more-protected classes make overload shed in class order —
	// best-effort first, gold last — regardless of latency targets.
	MaxQueueS float64
}

func (c Class) validate() error {
	if c.Name == "" {
		return fmt.Errorf("plan: class with empty name")
	}
	if c.TargetP95S <= 0 {
		return fmt.Errorf("plan: class %q needs a positive latency target", c.Name)
	}
	if c.Weight < 1 {
		return fmt.Errorf("plan: class %q needs weight >= 1", c.Name)
	}
	if c.MaxQueueS <= 0 {
		return fmt.Errorf("plan: class %q needs a positive max-queue bound", c.Name)
	}
	return nil
}

// DefaultClasses returns the canonical gold/silver/best-effort tiering:
// targets tighten and shed protection grows with the tier.
func DefaultClasses() []Class {
	return []Class{
		{Name: "gold", TargetP95S: 0.25, Weight: 4, MaxQueueS: 2.0},
		{Name: "silver", TargetP95S: 0.5, Weight: 2, MaxQueueS: 0.5},
		{Name: "best", TargetP95S: 1.0, Weight: 1, MaxQueueS: 0.1},
	}
}

// ParseClasses parses a CLI class spec: comma-separated
// "name:target[:weight[:maxqueue]]" entries, targets and queue bounds as Go
// durations (e.g. "gold:250ms:4:2s,silver:500ms:2,best:1s:1"). A missing
// weight defaults to 1. Missing queue bounds are derived from the listing
// order — each class's bound is 4x the next one's, 100ms for the last — so
// classes listed most-protected first shed strictly in reverse order.
func ParseClasses(spec string) ([]Class, error) {
	parts := strings.Split(spec, ",")
	classes := make([]Class, 0, len(parts))
	missing := []int{}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("plan: class %q: want name:target[:weight[:maxqueue]]", part)
		}
		target, err := time.ParseDuration(fields[1])
		if err != nil || target <= 0 {
			return nil, fmt.Errorf("plan: class %q: bad target %q", fields[0], fields[1])
		}
		c := Class{Name: fields[0], TargetP95S: target.Seconds(), Weight: 1}
		if len(fields) >= 3 {
			w, err := strconv.Atoi(fields[2])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("plan: class %q: bad weight %q", fields[0], fields[2])
			}
			c.Weight = w
		}
		if len(fields) == 4 {
			mq, err := time.ParseDuration(fields[3])
			if err != nil || mq <= 0 {
				return nil, fmt.Errorf("plan: class %q: bad maxqueue %q", fields[0], fields[3])
			}
			c.MaxQueueS = mq.Seconds()
		} else {
			missing = append(missing, len(classes))
		}
		classes = append(classes, c)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("plan: empty class spec %q", spec)
	}
	for _, idx := range missing {
		classes[idx].MaxQueueS = 0.1 * math4pow(len(classes)-1-idx)
	}
	seen := map[string]bool{}
	for _, c := range classes {
		if seen[c.Name] {
			return nil, fmt.Errorf("plan: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	return classes, nil
}

// math4pow returns 4^n for small non-negative n.
func math4pow(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 4
	}
	return out
}

// Tenants maps the classes to router fairness tenants, so a planned router
// can be provisioned in one call.
func Tenants(classes []Class) []router.Tenant {
	out := make([]router.Tenant, 0, len(classes))
	for _, c := range classes {
		out = append(out, router.Tenant{Name: c.Name, Weight: c.Weight})
	}
	return out
}
