package plan

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/router"
	"autoscale/internal/serve"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
	"autoscale/internal/trace"
)

// The surge acceptance drill: gold/silver/best-effort traffic at a steady
// base rate, then a fault-scheduled 12x arrival surge. A planned fleet must
// (a) scale active lanes to capacity *before* the surge lands (lookahead,
// not reaction), (b) shed strictly in best -> silver order while gold never
// sheds, (c) keep gold's p95 virtual response inside its SLO target while a
// statically-provisioned fleet (same four lanes, no planner) misses it, and
// (d) replay byte-identically under a fixed seed.

// surgeClasses are the drill's SLO tiers. Targets are generous relative to
// the admission gates (0.1s best < 0.5s silver < 2.0s gold) because gates,
// not targets, decide shed order.
func surgeClasses() []Class {
	return []Class{
		{Name: "gold", TargetP95S: 1.0, Weight: 4, MaxQueueS: 2.0},
		{Name: "silver", TargetP95S: 1.2, Weight: 2, MaxQueueS: 0.5},
		{Name: "best", TargetP95S: 1.5, Weight: 1, MaxQueueS: 0.1},
	}
}

const (
	surgeStartS  = 4.0
	surgeEndS    = 6.0
	surgeFactor  = 12.0
	surgeRunEndS = 8.0
	baseLoad     = 0.75 // Erlangs offered to a single lane between surges
)

func surgeSchedule() *fault.Schedule {
	return &fault.Schedule{Name: "surge-drill", Faults: []fault.Spec{
		{Kind: fault.KindLoadSurge, StartS: surgeStartS, EndS: surgeEndS, Factor: surgeFactor},
	}}
}

type surgeRun struct {
	trace     []byte
	decisions []byte // JSON of every applied decision, for replay compare
	statuses  []serve.Status
	arrivals  []float64
	tenants   []string
	goldP95   float64
	// firstShed maps tenant -> request index of its first shed (-1 none).
	firstShed map[string]int
	sheds     map[string]int
	// fourLanesAtS is the virtual time of the first decision that applied
	// all four lanes (-1 if never).
	fourLanesAtS float64
}

// probeServiceS measures the mean simulated service time on a throwaway
// gateway, so the drill's offered load scales with the hardware model
// without advancing any drill lane's clock.
func probeServiceS(t testing.TB, seed int64) float64 {
	t.Helper()
	eng, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seed+100), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gw, err := serve.New([]serve.Backend{{Device: "probe", Engine: eng}}, serve.Config{Name: "probe"})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Shutdown(context.Background())
	for i := 0; i < 30; i++ {
		if _, err := gw.Do(serve.Request{Model: dnn.MustByName("MobileNet v3"), Conditions: conds()}); err != nil {
			t.Fatal(err)
		}
	}
	s := gw.Snapshot()
	if s.Latency.Count == 0 || s.Latency.Sum <= 0 {
		t.Fatal("probe gateway measured no service time")
	}
	return s.Latency.Sum / float64(s.Latency.Count)
}

// runSurge drives one full drill pass and returns its record. planned picks
// between the planner-driven and the static configuration; everything else
// — lanes, seeds, offered traffic — is identical.
func runSurge(t testing.TB, seed int64, planned bool) surgeRun {
	t.Helper()
	m := probeServiceS(t, seed)
	inj := fault.New(surgeSchedule(), exec.NewRoot(seed).Child("faults"))

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	backends := make([]serve.Backend, 0, 4)
	for i := 0; i < 4; i++ {
		eng, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seed+int64(i)), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, serve.Backend{Device: "lane-" + string(rune('a'+i)), Engine: eng})
	}
	gw, err := serve.New(backends, serve.Config{Name: "shard-a", Trace: tw})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.New([]router.ShardGateway{{Name: "shard-a", Gateway: gw}}, router.Config{
		Tenants: Tenants(surgeClasses()),
	})
	if err != nil {
		t.Fatal(err)
	}

	var p *Planner
	if planned {
		rt.SetActiveLanes(1)
		p, err = New(rt, Config{
			Classes:         surgeClasses(),
			IntervalS:       0.5,
			SurgeLookaheadS: 1.5,
			MaxStepFactor:   2,
			Faults:          inj,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	res := surgeRun{
		firstShed:    map[string]int{"gold": -1, "silver": -1, "best": -1},
		sheds:        map[string]int{},
		fourLanesAtS: -1,
	}
	model := dnn.MustByName("MobileNet v3")
	tenants := []string{"gold", "silver", "best"}
	baseGap := m / baseLoad
	arrival := 0.0
	var decisions []Decision
	for i := 0; arrival < surgeRunEndS; i++ {
		arrival += baseGap / inj.SurgeFactor(arrival)
		if p != nil {
			if d, ticked := p.MaybeTick(arrival); ticked {
				decisions = append(decisions, d)
				if res.fourLanesAtS < 0 && d.ActiveLanes == 4 {
					res.fourLanesAtS = d.AtS
				}
			}
		}
		tenant := tenants[i%len(tenants)]
		r, _ := rt.Do(serve.Request{
			Model: model, Conditions: conds(), Tenant: tenant, ArrivalS: arrival,
		})
		res.statuses = append(res.statuses, r.Status)
		res.arrivals = append(res.arrivals, arrival)
		res.tenants = append(res.tenants, tenant)
		if r.Status == serve.StatusShed {
			res.sheds[tenant]++
			if res.firstShed[tenant] < 0 {
				res.firstShed[tenant] = i
			}
		}
	}

	if h, ok := rt.Snapshot().ByTenant["gold"]; ok && h.Count > 0 {
		res.goldP95 = h.Quantile(0.95)
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	res.trace = append([]byte(nil), buf.Bytes()...)
	if res.decisions, err = json.Marshal(decisions); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSurgeAcceptance(t *testing.T) {
	const seed = 1887
	goldTarget := surgeClasses()[0].TargetP95S

	plannedRun := runSurge(t, seed, true)
	staticRun := runSurge(t, seed, false)

	// SLO attainment: the planned fleet holds gold inside its target, the
	// static fleet — same four lanes, no planner — misses it.
	if plannedRun.goldP95 <= 0 {
		t.Fatal("planned run measured no gold responses")
	}
	if plannedRun.goldP95 > goldTarget {
		t.Errorf("planned gold p95 = %.3fs, want <= target %.2fs", plannedRun.goldP95, goldTarget)
	}
	if staticRun.goldP95 <= goldTarget {
		t.Errorf("static gold p95 = %.3fs already meets %.2fs: the surge is too gentle to discriminate",
			staticRun.goldP95, goldTarget)
	}

	// Strict class-ordered shedding under the surge: best-effort first,
	// then silver, gold never.
	if plannedRun.sheds["gold"] != 0 {
		t.Errorf("planned run shed %d gold requests, want 0", plannedRun.sheds["gold"])
	}
	if plannedRun.sheds["best"] == 0 || plannedRun.sheds["silver"] == 0 {
		t.Fatalf("surge shed best=%d silver=%d, want both > 0", plannedRun.sheds["best"], plannedRun.sheds["silver"])
	}
	if plannedRun.firstShed["best"] >= plannedRun.firstShed["silver"] {
		t.Errorf("first best shed at index %d, first silver at %d: want best strictly first",
			plannedRun.firstShed["best"], plannedRun.firstShed["silver"])
	}

	// Proactive scaling: all four lanes were active before the surge began
	// — and therefore before the first shed.
	if plannedRun.fourLanesAtS < 0 || plannedRun.fourLanesAtS >= surgeStartS {
		t.Errorf("four lanes applied at t=%.2fs, want before the surge at %.1fs",
			plannedRun.fourLanesAtS, surgeStartS)
	}
	if first := plannedRun.firstShed["best"]; first >= 0 && plannedRun.arrivals[first] <= plannedRun.fourLanesAtS {
		t.Errorf("first shed (t=%.2fs) before scale-up completed (t=%.2fs): planner reacted, not planned",
			plannedRun.arrivals[first], plannedRun.fourLanesAtS)
	}

	// The static fleet sheds nothing — it has no admission gates — which is
	// exactly why its gold p95 blows through the target.
	for tenant, n := range staticRun.sheds {
		if n != 0 {
			t.Errorf("static run shed %d %s requests, want 0", n, tenant)
		}
	}

	// Fixed-seed replay is byte-identical: traces, decisions, outcomes.
	replay := runSurge(t, seed, true)
	if !bytes.Equal(plannedRun.trace, replay.trace) {
		t.Errorf("replay trace diverged: %d vs %d bytes", len(plannedRun.trace), len(replay.trace))
	}
	if !bytes.Equal(plannedRun.decisions, replay.decisions) {
		t.Errorf("replay plan decisions diverged:\n%s\nvs\n%s", plannedRun.decisions, replay.decisions)
	}
	if len(plannedRun.statuses) != len(replay.statuses) {
		t.Fatalf("replay request count %d vs %d", len(replay.statuses), len(plannedRun.statuses))
	}
	for i := range plannedRun.statuses {
		if plannedRun.statuses[i] != replay.statuses[i] {
			t.Fatalf("replay outcome diverged at request %d: %v vs %v",
				i, replay.statuses[i], plannedRun.statuses[i])
		}
	}
}
