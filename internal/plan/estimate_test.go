package plan

import "testing"

func TestRateEstimator(t *testing.T) {
	e := &rateEstimator{alpha: 0.5}
	// First sample primes without producing a rate.
	if got := e.observe(0, 0); got != 0 {
		t.Fatalf("priming observe = %g, want 0", got)
	}
	// First complete window seeds the EWMA directly.
	if got := e.observe(1, 10); got != 10 {
		t.Fatalf("seed window rate = %g, want 10", got)
	}
	// Subsequent windows smooth: 10 + 0.5*(20-10) = 15.
	if got := e.observe(2, 30); got != 15 {
		t.Fatalf("smoothed rate = %g, want 15", got)
	}
	// Zero-length windows and counter regressions leave the estimate alone.
	if got := e.observe(2, 40); got != 15 {
		t.Fatalf("zero-dt observe moved the rate to %g", got)
	}
	if got := e.observe(3, 5); got != 15 {
		t.Fatalf("counter-reset observe moved the rate to %g", got)
	}
}

func TestMeanEstimator(t *testing.T) {
	e := &meanEstimator{alpha: 0.5}
	if got := e.observe(0, 0); got != 0 {
		t.Fatalf("priming observe = %g, want 0", got)
	}
	// 10 observations summing 5s -> 0.5s mean, seeded directly.
	if got := e.observe(10, 5); got != 0.5 {
		t.Fatalf("seed mean = %g, want 0.5", got)
	}
	// Next window mean 1.0 -> 0.5 + 0.5*(1.0-0.5) = 0.75.
	if got := e.observe(20, 15); got != 0.75 {
		t.Fatalf("smoothed mean = %g, want 0.75", got)
	}
	// No new observations: unchanged.
	if got := e.observe(20, 15); got != 0.75 {
		t.Fatalf("empty-window observe moved the mean to %g", got)
	}
}
