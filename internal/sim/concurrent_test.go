package sim

import (
	"sync"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/soc"
)

// TestExecuteCtxConcurrentDeterminism is the determinism contract of the
// execution-context refactor: a request's stochastic draws are a pure
// function of (root seed, request identity), so N goroutines issuing the
// same derived contexts produce exactly the Measurements a serial loop does,
// regardless of interleaving. Run with -race to also certify the hot path
// free of data races.
func TestExecuteCtxConcurrentDeterminism(t *testing.T) {
	const n = 256
	m := dnn.MustByName("MobileNet v2")
	tgt := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	c := strongCond()

	run := func(parallel bool) []Measurement {
		w := NewWorld(soc.Mi8Pro(), 1)
		w.OutageProb = 0.2 // exercise both streams: outage and noise draws
		root := exec.NewRoot(99)
		out := make([]Measurement, n)
		if !parallel {
			for i := 0; i < n; i++ {
				meas, err := w.ExecuteCtx(root.Child("req", uint64(i)), m, tgt, c)
				if err != nil {
					t.Error(err)
				}
				out[i] = meas
			}
			return out
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				meas, err := w.ExecuteCtx(root.Child("req", uint64(i)), m, tgt, c)
				if err != nil {
					t.Error(err)
				}
				out[i] = meas
			}(i)
		}
		wg.Wait()
		return out
	}

	serial := run(false)
	concurrent := run(true)
	var outages int
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Fatalf("request %d diverged: serial %+v, concurrent %+v", i, serial[i], concurrent[i])
		}
		if serial[i].Target.Location == Local {
			outages++ // outage fallback reruns locally; the request asked for Cloud
		}
	}
	if outages == 0 || outages == n {
		t.Errorf("outage draws degenerate (%d/%d): both stream branches should occur", outages, n)
	}
}

// TestExecuteCtxIndependentOfSequence checks that explicit contexts bypass
// the world's internal request counter: interleaving counter-driven Execute
// calls must not shift the draws of context-driven requests.
func TestExecuteCtxIndependentOfSequence(t *testing.T) {
	m := dnn.MustByName("MobileNet v2")
	tgt := Target{Location: Local, Kind: soc.CPU, Step: 0, Prec: dnn.FP32}
	c := strongCond()
	root := exec.NewRoot(7)
	ctx := root.Child("req", 42)

	w1 := NewWorld(soc.Mi8Pro(), 1)
	a, err := w1.ExecuteCtx(ctx, m, tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWorld(soc.Mi8Pro(), 1)
	for i := 0; i < 10; i++ {
		if _, err := w2.Execute(m, tgt, c); err != nil {
			t.Fatal(err)
		}
	}
	b, err := w2.ExecuteCtx(ctx, m, tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("context-driven request shifted by counter traffic: %+v vs %+v", a, b)
	}
}
