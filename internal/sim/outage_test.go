package sim

import (
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/soc"
)

func TestOutageDisabledByDefault(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	if w.OutageProb != 0 {
		t.Error("outages must be off by default")
	}
	m := dnn.MustByName("ResNet 50")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	for i := 0; i < 50; i++ {
		meas, err := w.Execute(m, cloud, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if meas.Target.Location != Cloud {
			t.Fatal("no outage expected")
		}
	}
}

func TestOutageFallsBackToLocalCPU(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 2)
	w.OutageProb = 1 // every offload fails
	m := dnn.MustByName("Inception v1")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	meas, err := w.Execute(m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != Local || meas.Target.Kind != soc.CPU {
		t.Fatalf("fallback target = %v, want local CPU", meas.Target)
	}
	// The failed attempt charges the timeout and the radio.
	local, err := w.Expected(m, meas.Target, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.LatencyS < local.LatencyS+w.OutageTimeoutS {
		t.Errorf("outage latency %v missing the timeout", meas.LatencyS)
	}
	if meas.Breakdown.Radio <= 0 {
		t.Error("the wasted transmission must cost radio energy")
	}
	if meas.EnergyJ <= local.EnergyJ {
		t.Error("outage must cost more than clean local execution")
	}
}

func TestOutageDoesNotAffectLocal(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 3)
	w.OutageProb = 1
	m := dnn.MustByName("MobileNet v1")
	local := Target{Location: Local, Kind: soc.DSP, Prec: dnn.INT8}
	meas, err := w.Execute(m, local, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target != local {
		t.Error("local execution must never trip the outage path")
	}
}

func TestOutageProbability(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 4)
	w.OutageProb = 0.3
	m := dnn.MustByName("ResNet 50")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	outages := 0
	const n = 1000
	for i := 0; i < n; i++ {
		meas, err := w.Execute(m, cloud, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if meas.Target.Location == Local {
			outages++
		}
	}
	rate := float64(outages) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("outage rate = %v, want ~0.3", rate)
	}
}

// faultWorld builds a world carrying the given compiled schedule.
func faultWorld(seed int64, s *fault.Schedule) *World {
	w := NewWorld(soc.Mi8Pro(), seed)
	w.Faults = fault.New(s, exec.NewRoot(seed).Child("faults"))
	return w
}

func TestScriptedOutageWindow(t *testing.T) {
	w := faultWorld(10, &fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0, EndS: 5},
	}})
	m := dnn.MustByName("Inception v1")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}

	root := exec.NewRoot(10)
	var wasted []float64
	ctx := root.Child("req", 1).WithHook(func(e exec.Event) {
		if e.Name == "sim.outage.wasted_j" {
			wasted = append(wasted, e.Value)
		}
	})
	before := ctx.Now()
	meas, err := w.ExecuteCtx(ctx, m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != Local {
		t.Fatalf("inside the window the offload must fall back, got %v", meas.Target)
	}
	if meas.WastedJ <= 0 {
		t.Error("scripted outage must attribute wasted energy")
	}
	if len(wasted) != 1 || wasted[0] != meas.WastedJ {
		t.Errorf("sim.outage.wasted_j hook = %v, want one event equal to WastedJ %v", wasted, meas.WastedJ)
	}
	if got := ctx.Now() - before; got != meas.LatencyS {
		t.Errorf("outage path advanced the clock by %v, want the full episode %v", got, meas.LatencyS)
	}

	// Past the window the same target serves cleanly.
	root.Child("skip").Advance(6 - root.Child("skip").Now())
	meas, err = w.ExecuteCtx(root.Child("req", 2), m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != Cloud {
		t.Fatalf("after the window the offload must succeed, got %v", meas.Target)
	}
	if meas.WastedJ != 0 {
		t.Errorf("clean offload attributed WastedJ = %v", meas.WastedJ)
	}
}

func TestScriptedFaultStretchMeasurements(t *testing.T) {
	m := dnn.MustByName("Inception v1")
	cases := []struct {
		name   string
		spec   fault.Spec
		target Target
	}{
		{
			name:   "queue spike stretches remote",
			spec:   fault.Spec{Kind: fault.KindQueueSpike, Site: fault.SiteCloud, StartS: 0, EndS: 5, ExtraServiceS: 0.05},
			target: Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32},
		},
		{
			name:   "thermal throttle stretches local",
			spec:   fault.Spec{Kind: fault.KindThermal, StartS: 0, EndS: 5, Factor: 2},
			target: Target{Location: Local, Kind: soc.CPU, Step: 0, Prec: dnn.FP32},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := faultWorld(11, &fault.Schedule{Faults: []fault.Spec{tc.spec}})
			w.NoiseFrac = 0
			clean, err := w.Expected(m, tc.target, strongCond())
			if err != nil {
				t.Fatal(err)
			}
			meas, err := w.ExecuteCtx(exec.NewRoot(11).Child("req", 1), m, tc.target, strongCond())
			if err != nil {
				t.Fatal(err)
			}
			if meas.LatencyS <= clean.LatencyS {
				t.Errorf("faulted latency %v not above clean %v", meas.LatencyS, clean.LatencyS)
			}
			if meas.EnergyJ <= clean.EnergyJ {
				t.Errorf("faulted energy %v not above clean %v (stall idles the platform)", meas.EnergyJ, clean.EnergyJ)
			}
			// Past the window the stretch disappears.
			late := exec.NewRoot(11).Child("req", 2)
			late.Advance(6)
			meas, err = w.ExecuteCtx(late, m, tc.target, strongCond())
			if err != nil {
				t.Fatal(err)
			}
			if meas.LatencyS != clean.LatencyS {
				t.Errorf("after the window latency = %v, want clean %v", meas.LatencyS, clean.LatencyS)
			}
		})
	}
}

func TestRSSIRampDegradesOffload(t *testing.T) {
	w := faultWorld(12, &fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindRSSIRamp, Link: fault.LinkWLAN, StartS: 0, EndS: 10, DeltaDBm: -40},
	}})
	w.NoiseFrac = 0
	m := dnn.MustByName("Inception v1")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}

	early := exec.NewRoot(12).Child("req", 1)
	early.Advance(0.5)
	first, err := w.ExecuteCtx(early, m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	late := exec.NewRoot(12).Child("req", 2)
	late.Advance(9.5)
	second, err := w.ExecuteCtx(late, m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if second.LatencyS <= first.LatencyS {
		t.Errorf("deep into the ramp latency %v must exceed early-ramp %v", second.LatencyS, first.LatencyS)
	}
	// The agent's observation must see the same degradation execution does.
	obs := w.ObservedConditions(late, strongCond())
	if obs.RSSIWLAN >= strongCond().RSSIWLAN {
		t.Errorf("observed WLAN RSSI %v not degraded", obs.RSSIWLAN)
	}
}

func TestBestTargetAtAvoidsDownSites(t *testing.T) {
	w := faultWorld(13, &fault.Schedule{Faults: []fault.Spec{
		{Kind: fault.KindOutage, Site: fault.SiteCloud, StartS: 0, EndS: 5},
		{Kind: fault.KindOutage, Site: fault.SiteConnected, StartS: 0, EndS: 5},
	}})
	m := dnn.MustByName("Inception v1")
	qos := 1.0 // generous: everything is feasible, so the oracle is free to offload

	tgt, _, err := w.BestTargetAt(2, m, strongCond(), qos, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Location != Local {
		t.Fatalf("with both remotes down the oracle chose %v, want local", tgt.Location)
	}
	tgt, _, err = w.BestTargetAt(6, m, strongCond(), qos, 0)
	if err != nil {
		t.Fatal(err)
	}
	blind, _, err := w.BestTarget(m, strongCond(), qos, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tgt != blind {
		t.Errorf("past the windows BestTargetAt = %v, want the unfiltered choice %v", tgt, blind)
	}
}

func TestExpectedIgnoresOutage(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 5)
	w.OutageProb = 1
	m := dnn.MustByName("ResNet 50")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	meas, err := w.Expected(m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != Cloud {
		t.Error("Expected must stay outage-free (the oracle plans on averages)")
	}
}
