package sim

import (
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/soc"
)

func TestOutageDisabledByDefault(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	if w.OutageProb != 0 {
		t.Error("outages must be off by default")
	}
	m := dnn.MustByName("ResNet 50")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	for i := 0; i < 50; i++ {
		meas, err := w.Execute(m, cloud, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if meas.Target.Location != Cloud {
			t.Fatal("no outage expected")
		}
	}
}

func TestOutageFallsBackToLocalCPU(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 2)
	w.OutageProb = 1 // every offload fails
	m := dnn.MustByName("Inception v1")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	meas, err := w.Execute(m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != Local || meas.Target.Kind != soc.CPU {
		t.Fatalf("fallback target = %v, want local CPU", meas.Target)
	}
	// The failed attempt charges the timeout and the radio.
	local, err := w.Expected(m, meas.Target, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.LatencyS < local.LatencyS+w.OutageTimeoutS {
		t.Errorf("outage latency %v missing the timeout", meas.LatencyS)
	}
	if meas.Breakdown.Radio <= 0 {
		t.Error("the wasted transmission must cost radio energy")
	}
	if meas.EnergyJ <= local.EnergyJ {
		t.Error("outage must cost more than clean local execution")
	}
}

func TestOutageDoesNotAffectLocal(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 3)
	w.OutageProb = 1
	m := dnn.MustByName("MobileNet v1")
	local := Target{Location: Local, Kind: soc.DSP, Prec: dnn.INT8}
	meas, err := w.Execute(m, local, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target != local {
		t.Error("local execution must never trip the outage path")
	}
}

func TestOutageProbability(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 4)
	w.OutageProb = 0.3
	m := dnn.MustByName("ResNet 50")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	outages := 0
	const n = 1000
	for i := 0; i < n; i++ {
		meas, err := w.Execute(m, cloud, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if meas.Target.Location == Local {
			outages++
		}
	}
	rate := float64(outages) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("outage rate = %v, want ~0.3", rate)
	}
}

func TestExpectedIgnoresOutage(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 5)
	w.OutageProb = 1
	m := dnn.MustByName("ResNet 50")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	meas, err := w.Expected(m, cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Target.Location != Cloud {
		t.Error("Expected must stay outage-free (the oracle plans on averages)")
	}
}
