package sim

import (
	"fmt"

	"autoscale/internal/exec"
	"autoscale/internal/interfere"
	"autoscale/internal/radio"
)

// Environment is one of the Table IV execution environments: a co-runner
// workload plus signal-strength processes for the two radio links. Calling
// Sample yields the runtime-variance conditions of the next inference.
type Environment struct {
	// ID is the Table IV label (S1..S5, D1..D4).
	ID string
	// Desc is the Table IV description.
	Desc string
	// Dynamic marks the D* environments.
	Dynamic bool

	app  interfere.App
	wlan radio.SignalProcess
	p2p  radio.SignalProcess
}

// Sample draws the conditions of the next inference.
func (e *Environment) Sample() Conditions {
	return Conditions{
		Load:     e.app.Next(),
		RSSIWLAN: e.wlan.Next(),
		RSSIP2P:  e.p2p.Next(),
	}
}

// String returns "ID: Desc".
func (e *Environment) String() string { return fmt.Sprintf("%s: %s", e.ID, e.Desc) }

// Environment IDs of Table IV.
const (
	EnvS1 = "S1"
	EnvS2 = "S2"
	EnvS3 = "S3"
	EnvS4 = "S4"
	EnvS5 = "S5"
	EnvD1 = "D1"
	EnvD2 = "D2"
	EnvD3 = "D3"
	EnvD4 = "D4"
)

// NewEnvironment constructs the Table IV environment with the given ID,
// using seed to derive all of its stochastic processes. Unknown IDs return
// an error.
func NewEnvironment(id string, seed int64) (*Environment, error) {
	return NewEnvironmentCtx(id, exec.NewRoot(seed))
}

// NewEnvironmentCtx constructs the Table IV environment with the given ID,
// deriving every stochastic process from a named child of ctx — each
// environment's co-runner and RSSI streams are independent by construction,
// even when several environments share one root seed.
func NewEnvironmentCtx(id string, ctx *exec.Context) (*Environment, error) {
	ectx := ctx.Child("env." + id)
	regW := radio.Fixed(radio.RegularRSSI)
	regP := radio.Fixed(radio.RegularRSSI)
	switch id {
	case EnvS1:
		return &Environment{ID: id, Desc: "No runtime variance",
			app: interfere.None(), wlan: regW, p2p: regP}, nil
	case EnvS2:
		return &Environment{ID: id, Desc: "CPU-intensive co-running app",
			app: interfere.CPUHog(), wlan: regW, p2p: regP}, nil
	case EnvS3:
		return &Environment{ID: id, Desc: "Memory-intensive co-running app",
			app: interfere.MemHog(), wlan: regW, p2p: regP}, nil
	case EnvS4:
		return &Environment{ID: id, Desc: "Weak Wi-Fi signal",
			app: interfere.None(), wlan: radio.Fixed(radio.WeakRSSI), p2p: regP}, nil
	case EnvS5:
		return &Environment{ID: id, Desc: "Weak Wi-Fi Direct signal",
			app: interfere.None(), wlan: regW, p2p: radio.Fixed(radio.WeakRSSI)}, nil
	case EnvD1:
		return &Environment{ID: id, Desc: "Co-running app: music player", Dynamic: true,
			app: interfere.MusicPlayer(ectx), wlan: regW, p2p: regP}, nil
	case EnvD2:
		return &Environment{ID: id, Desc: "Co-running app: web browser", Dynamic: true,
			app: interfere.WebBrowser(ectx), wlan: regW, p2p: regP}, nil
	case EnvD3:
		return &Environment{ID: id, Desc: "Random Wi-Fi signal", Dynamic: true,
			app: interfere.None(), wlan: radio.NewGaussian(-72, 10, ectx), p2p: regP}, nil
	case EnvD4:
		return &Environment{ID: id, Desc: "Varying co-running apps", Dynamic: true,
			app: interfere.VaryingApps(ectx), wlan: regW, p2p: regP}, nil
	}
	return nil, fmt.Errorf("sim: unknown environment %q", id)
}

// StaticEnvIDs returns the Table IV static environment IDs in order.
func StaticEnvIDs() []string { return []string{EnvS1, EnvS2, EnvS3, EnvS4, EnvS5} }

// DynamicEnvIDs returns the Table IV dynamic environment IDs in order.
func DynamicEnvIDs() []string { return []string{EnvD1, EnvD2, EnvD3, EnvD4} }

// AllEnvIDs returns every Table IV environment ID in order.
func AllEnvIDs() []string { return append(StaticEnvIDs(), DynamicEnvIDs()...) }

// MustEnvironment is NewEnvironment for statically known IDs.
func MustEnvironment(id string, seed int64) *Environment {
	e, err := NewEnvironment(id, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// QoS targets of the application scenarios (Section V-B).
const (
	// QoSNonStreamingS: single-shot camera inference; 50 ms interactive
	// response bound.
	QoSNonStreamingS = 0.050
	// QoSStreamingS: real-time video inference; 30 FPS frame budget.
	QoSStreamingS = 1.0 / 30
	// QoSTranslationS: keyboard translation; 100 ms bound.
	QoSTranslationS = 0.100
)

// Intensity distinguishes the computer-vision usage modes.
type Intensity int

// Usage intensities.
const (
	// NonStreaming issues one inference per user action.
	NonStreaming Intensity = iota
	// Streaming issues inference on every video frame.
	Streaming
)

// String returns the intensity name.
func (i Intensity) String() string {
	if i == Streaming {
		return "streaming"
	}
	return "non-streaming"
}

// QoSFor returns the latency target for a task and intensity, per the
// Android-application scenarios of Section V-B.
func QoSFor(taskIsTranslation bool, intensity Intensity) float64 {
	if taskIsTranslation {
		return QoSTranslationS
	}
	if intensity == Streaming {
		return QoSStreamingS
	}
	return QoSNonStreamingS
}
