package sim

import (
	"testing"

	"autoscale/internal/radio"
)

func TestAllEnvironmentsConstruct(t *testing.T) {
	ids := AllEnvIDs()
	if len(ids) != 9 {
		t.Fatalf("environment count = %d, want 9", len(ids))
	}
	for _, id := range ids {
		env, err := NewEnvironment(id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if env.ID != id {
			t.Errorf("env ID = %s, want %s", env.ID, id)
		}
		c := env.Sample()
		if c.Load.CPUUtil < 0 || c.Load.CPUUtil > 1 || c.Load.MemUtil < 0 || c.Load.MemUtil > 1 {
			t.Errorf("%s load out of range: %+v", id, c.Load)
		}
		if c.RSSIWLAN < radio.MinRSSI || c.RSSIWLAN > radio.MaxRSSI {
			t.Errorf("%s WLAN RSSI out of range: %v", id, c.RSSIWLAN)
		}
	}
}

func TestUnknownEnvironment(t *testing.T) {
	if _, err := NewEnvironment("S9", 1); err == nil {
		t.Error("unknown environment must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEnvironment must panic on unknown IDs")
		}
	}()
	MustEnvironment("S9", 1)
}

func TestStaticDynamicSplit(t *testing.T) {
	for _, id := range StaticEnvIDs() {
		if MustEnvironment(id, 1).Dynamic {
			t.Errorf("%s marked dynamic", id)
		}
	}
	for _, id := range DynamicEnvIDs() {
		if !MustEnvironment(id, 1).Dynamic {
			t.Errorf("%s not marked dynamic", id)
		}
	}
}

func TestEnvironmentShapes(t *testing.T) {
	s1 := MustEnvironment(EnvS1, 1).Sample()
	if s1.Load.CPUUtil != 0 || s1.Load.MemUtil != 0 {
		t.Error("S1 must have no co-runner load")
	}
	if s1.RSSIWLAN <= radio.WeakThresholdRSSI {
		t.Error("S1 must have a regular Wi-Fi signal")
	}
	s2 := MustEnvironment(EnvS2, 1).Sample()
	if s2.Load.CPUUtil < 0.5 {
		t.Error("S2 must be CPU-intensive")
	}
	s3 := MustEnvironment(EnvS3, 1).Sample()
	if s3.Load.MemUtil < 0.5 {
		t.Error("S3 must be memory-intensive")
	}
	s4 := MustEnvironment(EnvS4, 1).Sample()
	if s4.RSSIWLAN > radio.WeakThresholdRSSI {
		t.Error("S4 must have a weak Wi-Fi signal")
	}
	if s4.RSSIP2P <= radio.WeakThresholdRSSI {
		t.Error("S4 must keep a regular Wi-Fi Direct signal")
	}
	s5 := MustEnvironment(EnvS5, 1).Sample()
	if s5.RSSIP2P > radio.WeakThresholdRSSI {
		t.Error("S5 must have a weak Wi-Fi Direct signal")
	}
}

func TestD3Varies(t *testing.T) {
	env := MustEnvironment(EnvD3, 5)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		seen[env.Sample().RSSIWLAN] = true
	}
	if len(seen) < 10 {
		t.Error("D3 Wi-Fi signal must vary")
	}
}

func TestQoSFor(t *testing.T) {
	if QoSFor(true, NonStreaming) != QoSTranslationS {
		t.Error("translation QoS wrong")
	}
	if QoSFor(false, NonStreaming) != QoSNonStreamingS {
		t.Error("non-streaming QoS wrong")
	}
	if QoSFor(false, Streaming) != QoSStreamingS {
		t.Error("streaming QoS wrong")
	}
	// The paper's values: 50 ms, 33.3 ms, 100 ms.
	if QoSNonStreamingS != 0.050 || QoSTranslationS != 0.100 {
		t.Error("QoS constants drifted from the paper")
	}
	if QoSStreamingS < 0.033 || QoSStreamingS > 0.034 {
		t.Error("streaming QoS must be the 30 FPS frame budget")
	}
}

func TestIntensityString(t *testing.T) {
	if NonStreaming.String() != "non-streaming" || Streaming.String() != "streaming" {
		t.Error("intensity names wrong")
	}
}
