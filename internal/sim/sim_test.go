package sim

import (
	"math"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/interfere"
	"autoscale/internal/radio"
	"autoscale/internal/soc"
)

func strongCond() Conditions {
	return Conditions{RSSIWLAN: radio.RegularRSSI, RSSIP2P: radio.RegularRSSI}
}

func TestTargetsCount(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("ResNet 50")
	// Mi8Pro: CPU 23 steps x {FP32, INT8} + GPU 7 x {FP32, FP16} + DSP 1
	// + connected {CPU, GPU, DSP} + cloud {CPU, GPU} = 66 actions — the
	// paper's "~66 actions" (Section V-C / footnote 8).
	if got := len(w.Targets(m)); got != 66 {
		t.Errorf("Mi8Pro targets = %d, want 66", got)
	}
	bert := dnn.MustByName("MobileBERT")
	// MobileBERT: no mobile GPU/DSP, no connected GPU/DSP.
	// CPU 23x2 + connected CPU + cloud CPU + cloud GPU = 49.
	if got := len(w.Targets(bert)); got != 49 {
		t.Errorf("Mi8Pro BERT targets = %d, want 49", got)
	}
}

func TestFeasibility(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	bert := dnn.MustByName("MobileBERT")
	if w.Feasible(bert, Target{Location: Local, Kind: soc.GPU, Prec: dnn.FP32}) {
		t.Error("BERT on mobile GPU must be infeasible")
	}
	if w.Feasible(bert, Target{Location: Local, Kind: soc.DSP, Prec: dnn.INT8}) {
		t.Error("BERT on mobile DSP must be infeasible")
	}
	if !w.Feasible(bert, Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}) {
		t.Error("BERT on cloud GPU must be feasible")
	}
	resnet := dnn.MustByName("ResNet 50")
	if w.Feasible(resnet, Target{Location: Local, Kind: soc.CPU, Step: 99, Prec: dnn.FP32}) {
		t.Error("out-of-range DVFS step must be infeasible")
	}
	if w.Feasible(resnet, Target{Location: Local, Kind: soc.GPU, Step: 0, Prec: dnn.INT8}) {
		t.Error("GPU INT8 must be infeasible")
	}
	s10e := NewWorld(soc.GalaxyS10e(), 1)
	if s10e.Feasible(resnet, Target{Location: Local, Kind: soc.DSP, Prec: dnn.INT8}) {
		t.Error("S10e has no DSP")
	}
}

func TestExpectedDeterministic(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("Inception v1")
	tgt := Target{Location: Local, Kind: soc.DSP, Prec: dnn.INT8}
	a, err := w.Expected(m, tgt, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Expected(m, tgt, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyS != b.LatencyS || a.EnergyJ != b.EnergyJ {
		t.Error("Expected must be deterministic")
	}
	if a.LatencyS <= 0 || a.EnergyJ <= 0 {
		t.Error("measurement must be positive")
	}
	if a.Accuracy != m.Accuracy(dnn.INT8) {
		t.Error("accuracy must follow the precision")
	}
	if math.Abs(a.EnergyJ-a.Breakdown.Total()) > 1e-12 {
		t.Error("energy must equal the breakdown total")
	}
}

func TestExecuteNoise(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 42)
	m := dnn.MustByName("Inception v1")
	tgt := Target{Location: Local, Kind: soc.GPU, Step: 6, Prec: dnn.FP32}
	exp, err := w.Expected(m, tgt, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	differs := false
	const n = 200
	for i := 0; i < n; i++ {
		meas, err := w.Execute(m, tgt, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		if meas.LatencyS != exp.LatencyS {
			differs = true
		}
		sum += meas.LatencyS
	}
	if !differs {
		t.Error("Execute must be noisy")
	}
	if mean := sum / n; math.Abs(mean-exp.LatencyS)/exp.LatencyS > 0.02 {
		t.Errorf("noise is not zero-mean: %v vs %v", mean, exp.LatencyS)
	}
}

func TestOffloadBreakdown(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("ResNet 50")
	meas, err := w.Expected(m, Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if meas.TTXSeconds <= 0 || meas.TRXSeconds <= 0 {
		t.Error("offload must have transfer times")
	}
	if meas.Breakdown.Radio <= 0 {
		t.Error("offload must spend radio energy")
	}
	if meas.Breakdown.Compute != 0 {
		t.Error("offload must not spend local compute energy")
	}
	if meas.LatencyS <= meas.TTXSeconds+meas.TRXSeconds {
		t.Error("total must exceed transfer alone")
	}
}

func TestWeakSignalHurtsOffload(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("ResNet 50")
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	strong, _ := w.Expected(m, cloud, strongCond())
	weak, err := w.Expected(m, cloud, Conditions{RSSIWLAN: radio.WeakRSSI, RSSIP2P: radio.RegularRSSI})
	if err != nil {
		t.Fatal(err)
	}
	if weak.LatencyS < strong.LatencyS*2 {
		t.Errorf("weak signal should blow up cloud latency: %v vs %v", weak.LatencyS, strong.LatencyS)
	}
	if weak.EnergyJ <= strong.EnergyJ {
		t.Error("weak signal must cost more energy")
	}
	// Local execution is unaffected by signal strength.
	local := Target{Location: Local, Kind: soc.DSP, Prec: dnn.INT8}
	a, _ := w.Expected(m, local, strongCond())
	b, _ := w.Expected(m, local, Conditions{RSSIWLAN: -95, RSSIP2P: -95})
	if a.LatencyS != b.LatencyS {
		t.Error("local execution must ignore the radios")
	}
}

func TestInterferenceHurtsLocalOnly(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("MobileNet v3")
	cpuT := Target{Location: Local, Kind: soc.CPU, Step: 22, Prec: dnn.FP32}
	base, _ := w.Expected(m, cpuT, strongCond())
	loaded := strongCond()
	loaded.Load = interfere.CPUHog().Next()
	hit, _ := w.Expected(m, cpuT, loaded)
	if hit.LatencyS <= base.LatencyS {
		t.Error("interference must slow local CPU execution")
	}
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	a, _ := w.Expected(m, cloud, strongCond())
	b, _ := w.Expected(m, cloud, loaded)
	if a.LatencyS != b.LatencyS {
		t.Error("cloud execution must ignore local interference")
	}
}

func TestBestTargetRespectsConstraints(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("Inception v1")
	c := strongCond()
	tgt, meas, err := w.BestTarget(m, c, QoSNonStreamingS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meas.LatencyS > QoSNonStreamingS {
		t.Errorf("best target %v violates QoS", tgt)
	}
	// No cheaper feasible satisfying target exists.
	for _, u := range w.Targets(m) {
		um, err := w.Expected(m, u, c)
		if err != nil {
			t.Fatal(err)
		}
		if um.LatencyS <= QoSNonStreamingS && um.EnergyJ < meas.EnergyJ-1e-12 {
			t.Errorf("target %v (%.4g J) beats Opt %v (%.4g J)", u, um.EnergyJ, tgt, meas.EnergyJ)
		}
	}
	// With an accuracy target the chosen precision must comply.
	_, meas65, err := w.BestTarget(m, c, QoSNonStreamingS, 65)
	if err != nil {
		t.Fatal(err)
	}
	if meas65.Accuracy < 65 {
		t.Errorf("accuracy-constrained best target has accuracy %v", meas65.Accuracy)
	}
	if meas65.EnergyJ < meas.EnergyJ {
		t.Error("a tighter constraint cannot reduce energy")
	}
}

func TestBestTargetFallbacks(t *testing.T) {
	w := NewWorld(soc.MotoXForce(), 1)
	m := dnn.MustByName("MobileBERT")
	// With an impossible QoS nothing satisfies: fall back to min latency
	// among accuracy-satisfying targets.
	tgt, meas, err := w.BestTarget(m, strongCond(), 1e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range w.Targets(m) {
		um, _ := w.Expected(m, u, strongCond())
		if um.LatencyS < meas.LatencyS-1e-12 {
			t.Errorf("fallback %v is not min-latency (%v beats it)", tgt, u)
		}
	}
	// With an impossible accuracy target fall back to max accuracy.
	_, meas2, err := w.BestTarget(m, strongCond(), QoSTranslationS, 99.9)
	if err != nil {
		t.Fatal(err)
	}
	if meas2.Accuracy != m.Accuracy(dnn.FP32) {
		t.Errorf("accuracy fallback returned %v", meas2.Accuracy)
	}
}

func TestExecuteInfeasibleTarget(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	bert := dnn.MustByName("MobileBERT")
	if _, err := w.Execute(bert, Target{Location: Local, Kind: soc.GPU, Prec: dnn.FP32}, strongCond()); err == nil {
		t.Error("executing an infeasible target must fail")
	}
}

func TestPPW(t *testing.T) {
	m := Measurement{EnergyJ: 0.05}
	if math.Abs(m.PPW()-20) > 1e-9 {
		t.Errorf("PPW = %v, want 20", m.PPW())
	}
	if (Measurement{}).PPW() != 0 {
		t.Error("zero-energy PPW must be 0")
	}
}

func TestTargetString(t *testing.T) {
	local := Target{Location: Local, Kind: soc.CPU, Step: 17, Prec: dnn.INT8}
	if local.String() != "local/CPU@17/INT8" {
		t.Errorf("local target string = %q", local.String())
	}
	cloud := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	if cloud.String() != "cloud/GPU/FP32" {
		t.Errorf("cloud target string = %q", cloud.String())
	}
}
