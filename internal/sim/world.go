// Package sim assembles the substrates into the paper's edge–cloud execution
// world: a mobile device, a locally connected tablet reachable over Wi-Fi
// Direct, and a cloud server reachable over Wi-Fi — and executes inferences
// on any feasible target, producing latency/energy/accuracy measurements.
// It also defines the Table IV static and dynamic environments and the
// application scenarios (non-streaming, streaming, translation).
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/interfere"
	"autoscale/internal/perf"
	"autoscale/internal/power"
	"autoscale/internal/radio"
	"autoscale/internal/soc"
)

// Location says where an inference executes.
type Location int

// Execution locations (Section IV-A actions).
const (
	// Local runs on the mobile device itself.
	Local Location = iota
	// Connected runs on the locally connected edge device (tablet) over
	// Wi-Fi Direct.
	Connected
	// Cloud runs on the server over Wi-Fi.
	Cloud
)

// String returns the location name.
func (l Location) String() string {
	switch l {
	case Local:
		return "local"
	case Connected:
		return "connected"
	case Cloud:
		return "cloud"
	}
	return fmt.Sprintf("Location(%d)", int(l))
}

// Target is one fully specified execution action: where, on which engine, at
// which DVFS step (local only; remote systems run their engines at the top
// step) and precision. This is exactly the action space of Section V-C.
type Target struct {
	Location Location
	Kind     soc.Kind
	// Step is the local DVFS step; ignored for Connected/Cloud.
	Step int
	Prec dnn.Precision
}

// String renders the target compactly, e.g. "local/CPU@17/INT8".
func (t Target) String() string {
	if t.Location == Local {
		return fmt.Sprintf("%s/%s@%d/%s", t.Location, t.Kind, t.Step, t.Prec)
	}
	return fmt.Sprintf("%s/%s/%s", t.Location, t.Kind, t.Prec)
}

// Conditions captures the stochastic runtime variance at one inference: the
// co-runner load on the local device and the two radio signal strengths.
type Conditions struct {
	Load     interfere.Load
	RSSIWLAN float64
	RSSIP2P  float64
}

// Measurement is the observed outcome of one inference.
type Measurement struct {
	Target   Target
	LatencyS float64
	EnergyJ  float64
	// Breakdown itemizes the mobile-side energy.
	Breakdown power.Breakdown
	// Accuracy is the inference accuracy (percent) delivered by the
	// target's precision.
	Accuracy float64
	// TTXSeconds/TRXSeconds are the transfer times (zero when local).
	TTXSeconds float64
	TRXSeconds float64
	// WastedJ is the energy burned on a failed offload attempt before the
	// local fallback ran (zero on clean executions). It is already included
	// in EnergyJ; the field exists so accounting can attribute it.
	WastedJ float64
}

// PPW returns the performance-per-watt figure of merit the paper optimizes:
// inferences per joule (1/latency divided by average power = 1/energy).
func (m Measurement) PPW() float64 {
	if m.EnergyJ <= 0 {
		return 0
	}
	return 1 / m.EnergyJ
}

// World is the full edge–cloud system around one mobile device.
type World struct {
	Device *soc.Device
	Tablet *soc.Device
	Server *soc.Device
	WiFi   *radio.Link
	P2P    *radio.Link

	// CloudServiceS / TabletServiceS are remote-side service overheads
	// (request handling, queueing) added to remote compute time.
	CloudServiceS  float64
	TabletServiceS float64

	// NoiseFrac is the relative sigma of multiplicative measurement noise
	// applied by Execute; Expected applies none.
	NoiseFrac float64

	// OutageProb is the per-request probability that an offload attempt
	// fails (AP handoff, server hiccup, link drop). On an outage the
	// runtime waits out OutageTimeoutS with the radio up, then falls back
	// to the local CPU at top frequency. This Bernoulli coin flip is the
	// original robustness extension, kept as a compatibility shim; the
	// scripted, time-correlated fault model lives in Faults. Zero (the
	// default) disables it. Expected is always outage-free: the oracle
	// plans on averages.
	OutageProb     float64
	OutageTimeoutS float64

	// Faults is an optional scripted fault injector (outage windows, RSSI
	// ramps, queue spikes, thermal throttles) evaluated against each
	// request context's virtual clock. Nil disables scripted faults; the
	// injector itself is immutable and safe to share across worlds.
	Faults *fault.Injector

	// root is the world's execution context; legacy Execute calls derive a
	// per-request child from it using seq, so each request's draws come
	// from its own named stream regardless of goroutine interleaving.
	root *exec.Context
	seq  atomic.Uint64

	// latMu/latMemo cache interference-free model latencies. ModelLatency
	// walks every layer of the network; for remote targets (always top
	// step, no interference) and unloaded local targets the result depends
	// only on (model, processor, step, precision), so the per-request walk
	// on the serving hot path collapses to one map read. Loaded local
	// executions bypass the cache — their penalties vary per request.
	latMu   sync.RWMutex
	latMemo map[latKey]float64
}

// latKey identifies one interference-free (model, engine placement) pair.
type latKey struct {
	m    *dnn.Model
	proc *soc.Processor
	step int
	prec dnn.Precision
}

// modelLatency computes perf.ModelLatency, memoizing interference-free
// results (see latMemo).
func (w *World) modelLatency(e perf.Exec, m *dnn.Model, pen interfere.Penalties) float64 {
	if pen != perf.NoInterference() {
		return perf.ModelLatency(e, m, pen)
	}
	k := latKey{m: m, proc: e.Proc, step: e.Step, prec: e.Prec}
	w.latMu.RLock()
	v, ok := w.latMemo[k]
	w.latMu.RUnlock()
	if ok {
		return v
	}
	v = perf.ModelLatency(e, m, pen)
	w.latMu.Lock()
	if w.latMemo == nil {
		w.latMemo = make(map[latKey]float64)
	}
	w.latMemo[k] = v
	w.latMu.Unlock()
	return v
}

// NewWorld builds the standard evaluation world around the given phone, with
// the Galaxy Tab S6 as the connected edge and the Xeon+P100 server as the
// cloud, using the given seed for measurement noise.
func NewWorld(device *soc.Device, seed int64) *World {
	return &World{
		Device:         device,
		Tablet:         soc.GalaxyTabS6(),
		Server:         soc.CloudServer(),
		WiFi:           radio.WiFi(),
		P2P:            radio.WiFiDirect(),
		CloudServiceS:  0.005,
		TabletServiceS: 0.003,
		NoiseFrac:      0.025,
		OutageTimeoutS: 0.200,
		root:           exec.NewRoot(seed).Child("world"),
	}
}

// systemAt returns the device serving a location.
func (w *World) systemAt(loc Location) *soc.Device {
	switch loc {
	case Connected:
		return w.Tablet
	case Cloud:
		return w.Server
	default:
		return w.Device
	}
}

// linkTo returns the radio link used to reach a remote location (nil for
// Local).
func (w *World) linkTo(loc Location) *radio.Link {
	switch loc {
	case Connected:
		return w.P2P
	case Cloud:
		return w.WiFi
	default:
		return nil
	}
}

// rssiFor picks the relevant signal strength from the conditions.
func (c Conditions) rssiFor(loc Location) float64 {
	if loc == Cloud {
		return c.RSSIWLAN
	}
	return c.RSSIP2P
}

// serviceOverhead returns the remote-side service overhead for a location.
func (w *World) serviceOverhead(loc Location) float64 {
	switch loc {
	case Cloud:
		return w.CloudServiceS
	case Connected:
		return w.TabletServiceS
	default:
		return 0
	}
}

// Feasible reports whether target t can execute model m in this world.
func (w *World) Feasible(m *dnn.Model, t Target) bool {
	sys := w.systemAt(t.Location)
	p := sys.Processor(t.Kind)
	if p == nil {
		return false
	}
	if t.Location == Local {
		if t.Step < 0 || t.Step >= p.Steps {
			return false
		}
	}
	return p.CanRun(m, t.Prec)
}

// Targets enumerates every feasible action for model m: each local engine at
// each DVFS step and supported precision, plus the remote engines at their
// supported precisions (FP32 for cloud per Section V-C; the connected DSP is
// INT8). This is the ~66-action augmented space of the paper.
func (w *World) Targets(m *dnn.Model) []Target {
	var out []Target
	for _, p := range w.Device.Processors {
		for _, prec := range p.Precisions {
			if !p.CanRun(m, prec) {
				continue
			}
			for step := 0; step < p.Steps; step++ {
				out = append(out, Target{Location: Local, Kind: p.Kind, Step: step, Prec: prec})
			}
		}
	}
	for _, loc := range []Location{Connected, Cloud} {
		sys := w.systemAt(loc)
		for _, p := range sys.Processors {
			prec := remotePrecision(loc, p)
			if !p.CanRun(m, prec) {
				continue
			}
			out = append(out, Target{Location: loc, Kind: p.Kind, Prec: prec})
		}
	}
	return out
}

// remotePrecision picks the precision used on a remote engine: FP32
// everywhere the paper uses it (cloud CPU/GPU/TPU, connected CPU/GPU), INT8
// on the fixed-function edge accelerators (DSP, NPU).
func remotePrecision(loc Location, p *soc.Processor) dnn.Precision {
	if p.Kind == soc.DSP || p.Kind == soc.NPU {
		return dnn.INT8
	}
	return dnn.FP32
}

// Expected computes the noise-free outcome of executing m on t under c.
// This is what the Opt oracle exhaustively enumerates.
func (w *World) Expected(m *dnn.Model, t Target, c Conditions) (Measurement, error) {
	if !w.Feasible(m, t) {
		return Measurement{}, fmt.Errorf("sim: target %v cannot run %s", t, m.Name)
	}
	sys := w.systemAt(t.Location)
	proc := sys.Processor(t.Kind)

	meas := Measurement{Target: t, Accuracy: m.Accuracy(t.Prec)}

	if t.Location == Local {
		pen := interfere.PenaltiesFor(c.Load)
		lat := w.modelLatency(perf.Exec{Proc: proc, Step: t.Step, Prec: t.Prec}, m, pen)
		bd, err := power.OnDevice(proc, t.Step, lat, w.Device.PlatformIdleW)
		if err != nil {
			return Measurement{}, err
		}
		meas.LatencyS = lat
		meas.Breakdown = bd
		meas.EnergyJ = bd.Total()
		return meas, nil
	}

	// Remote execution: transfer input, compute at the remote top step
	// with no interference, transfer output back (eq 4 energy model).
	link := w.linkTo(t.Location)
	rssi := c.rssiFor(t.Location)
	tTX := link.TransferSeconds(m.InputBytes, rssi)
	tRX := link.TransferSeconds(m.OutputBytes, rssi)
	remote := w.modelLatency(perf.Exec{Proc: proc, Step: proc.Steps - 1, Prec: t.Prec}, m, perf.NoInterference())
	total := tTX + remote + w.serviceOverhead(t.Location) + tRX

	bd, err := power.Offload(link, rssi, tTX, tRX, total, w.Device.PlatformIdleW)
	if err != nil {
		return Measurement{}, err
	}
	meas.LatencyS = total
	meas.TTXSeconds = tTX
	meas.TRXSeconds = tRX
	meas.Breakdown = bd
	meas.EnergyJ = bd.Total()
	return meas, nil
}

// Execute runs one inference with multiplicative measurement noise on
// latency (and correspondingly on energy), modelling run-to-run variance of
// a real system. When OutageProb is set, offload attempts may fail and fall
// back to local CPU execution after the outage timeout.
//
// Execute is the legacy sequential entry point: it derives a fresh
// request context from the world's root using an atomic sequence number,
// so concurrent callers are race-free, and a fixed call order reproduces
// a fixed draw sequence. Callers that need draws to be a pure function of
// request identity (independent of interleaving) should derive their own
// context and call ExecuteCtx.
func (w *World) Execute(m *dnn.Model, t Target, c Conditions) (Measurement, error) {
	return w.ExecuteCtx(w.nextCtx(), m, t, c)
}

// ExecuteCtx is Execute with an explicit request context: the outage and
// noise draws come from the context's "sim.request" stream, making the
// measurement a pure function of (context identity, model, target,
// conditions). A nil ctx falls back to the world's internal sequence.
//
// Scripted faults (w.Faults) are evaluated at the context's virtual time:
// RSSI ramps degrade the observed signal, outage windows force the offload
// failure path, queue spikes stretch remote service, thermal throttles
// stretch local compute. The scripted timeline needs no random draw, so a
// faulted request consumes exactly the streams an unfaulted one would.
func (w *World) ExecuteCtx(ctx *exec.Context, m *dnn.Model, t Target, c Conditions) (Measurement, error) {
	if ctx == nil {
		ctx = w.nextCtx()
	}
	now := ctx.Now()
	c = w.conditionsAt(now, c)
	if t.Location != Local {
		if w.SiteDown(now, t.Location) {
			ctx.Emit("sim.outage", 1)
			return w.executeOutage(ctx, m, t, c)
		}
		if w.OutageProb > 0 {
			st := ctx.GetStream("sim.request")
			down := st.Float64() < w.OutageProb
			exec.PutStream(st)
			if down {
				ctx.Emit("sim.outage", 1)
				return w.executeOutage(ctx, m, t, c)
			}
		}
	}
	meas, err := w.Expected(m, t, c)
	if err != nil {
		return Measurement{}, err
	}
	w.applyWindowFaults(now, &meas)
	if w.NoiseFrac > 0 {
		st := ctx.GetStream("sim.request")
		f := 1 + w.NoiseFrac*st.NormFloat64()
		exec.PutStream(st)
		if f < 0.5 {
			f = 0.5
		}
		ctx.Emit("sim.noise", f)
		meas.LatencyS *= f
		meas.EnergyJ *= f
		meas.Breakdown.Compute *= f
		meas.Breakdown.Radio *= f
		meas.Breakdown.Idle *= f
	}
	ctx.Advance(meas.LatencyS)
	return meas, nil
}

// siteName maps a remote location to the fault schedule's site key.
func siteName(loc Location) string {
	switch loc {
	case Cloud:
		return fault.SiteCloud
	case Connected:
		return fault.SiteConnected
	default:
		return ""
	}
}

// SiteDown reports whether the remote location is inside a scripted outage
// window at virtual time now. Local is never down.
func (w *World) SiteDown(now float64, loc Location) bool {
	if loc == Local {
		return false
	}
	return w.Faults.Down(siteName(loc), now)
}

// conditionsAt applies scripted RSSI degradation to the observed
// conditions at virtual time now. With no injector it returns c unchanged.
func (w *World) conditionsAt(now float64, c Conditions) Conditions {
	if w.Faults == nil {
		return c
	}
	c.RSSIWLAN += w.Faults.RSSIDeltaDBm(fault.LinkWLAN, now)
	c.RSSIP2P += w.Faults.RSSIDeltaDBm(fault.LinkP2P, now)
	return c
}

// ObservedConditions returns the conditions as the runtime actually sees
// them at the context's virtual time — scripted RSSI ramps applied — so an
// agent's state observation matches what execution will experience. A nil
// ctx uses c as-is at time zero semantics (no faults are keyed on the
// legacy path's clockless requests).
func (w *World) ObservedConditions(ctx *exec.Context, c Conditions) Conditions {
	if ctx == nil || w.Faults == nil {
		return c
	}
	return w.conditionsAt(ctx.Now(), c)
}

// applyWindowFaults stretches a clean measurement for any queue-spike or
// thermal-throttle window active at virtual time now. The added stall is
// spent with the platform idling (remote: device waits on the radio path;
// local: the throttled engine holds the platform awake longer).
func (w *World) applyWindowFaults(now float64, meas *Measurement) {
	if w.Faults == nil {
		return
	}
	var stall float64
	if meas.Target.Location != Local {
		stall = w.Faults.ExtraServiceS(siteName(meas.Target.Location), now)
	} else if f := w.Faults.ThrottleFactor(now); f > 1 {
		stall = meas.LatencyS * (f - 1)
	}
	if stall <= 0 {
		return
	}
	meas.LatencyS += stall
	meas.Breakdown.Idle += stall * w.Device.PlatformIdleW
	meas.EnergyJ = meas.Breakdown.Total()
}

// nextCtx derives the context for one legacy Execute call.
func (w *World) nextCtx() *exec.Context {
	return w.root.Child("req", w.seq.Add(1))
}

// executeOutage models a failed offload: the device transmits until the
// timeout with no answer, then reruns the inference on the local CPU at top
// frequency. The returned measurement charges both phases, attributes the
// burned offload energy as WastedJ, emits it on the context's observation
// hook, and advances the virtual clock past the whole episode.
func (w *World) executeOutage(ctx *exec.Context, m *dnn.Model, t Target, c Conditions) (Measurement, error) {
	link := w.linkTo(t.Location)
	rssi := c.rssiFor(t.Location)
	cpu := w.Device.Processor(soc.CPU)
	if cpu == nil {
		return Measurement{}, fmt.Errorf("sim: outage fallback needs a CPU")
	}
	fallback := Target{Location: Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	local, err := w.Expected(m, fallback, c)
	if err != nil {
		return Measurement{}, err
	}
	wasted, err := power.Offload(link, rssi, w.OutageTimeoutS, 0, w.OutageTimeoutS, w.Device.PlatformIdleW)
	if err != nil {
		return Measurement{}, err
	}
	local.LatencyS += w.OutageTimeoutS
	local.Breakdown.Radio += wasted.Radio
	local.Breakdown.Idle += wasted.Idle
	local.EnergyJ = local.Breakdown.Total()
	local.WastedJ = wasted.Radio + wasted.Idle
	local.Target = fallback
	ctx.Emit("sim.outage.wasted_j", local.WastedJ)
	ctx.Advance(local.LatencyS)
	return local, nil
}

// BestTarget exhaustively searches the action space for the feasible target
// with maximum PPW subject to the latency QoS and accuracy constraints,
// using noise-free expectations — the paper's Opt oracle. If no target meets
// both constraints it relaxes to: meet accuracy and minimize latency; if
// accuracy is unreachable it maximizes accuracy.
func (w *World) BestTarget(m *dnn.Model, c Conditions, qosS, accTarget float64) (Target, Measurement, error) {
	return w.bestTarget(m, c, qosS, accTarget, nil)
}

// BestTargetAt is BestTarget with fault awareness: conditions are degraded
// by any active RSSI ramp and targets whose site is inside a scripted
// outage window at virtual time now are excluded from the search (unless
// everything remote is down and no local target exists, which cannot
// happen in practice since every device has a CPU).
func (w *World) BestTargetAt(now float64, m *dnn.Model, c Conditions, qosS, accTarget float64) (Target, Measurement, error) {
	c = w.conditionsAt(now, c)
	return w.bestTarget(m, c, qosS, accTarget, func(t Target) bool {
		return w.SiteDown(now, t.Location)
	})
}

func (w *World) bestTarget(m *dnn.Model, c Conditions, qosS, accTarget float64, skip func(Target) bool) (Target, Measurement, error) {
	targets := w.Targets(m)
	if len(targets) == 0 {
		return Target{}, Measurement{}, fmt.Errorf("sim: no feasible target for %s", m.Name)
	}
	var (
		best        Target
		bestMeas    Measurement
		haveBest    bool
		fallback    Target
		fbMeas      Measurement
		haveFB      bool
		accBest     Target
		accBestMeas Measurement
		haveAcc     bool
	)
	for _, t := range targets {
		if skip != nil && skip(t) {
			continue
		}
		meas, err := w.Expected(m, t, c)
		if err != nil {
			return Target{}, Measurement{}, err
		}
		if meas.Accuracy >= accTarget {
			if meas.LatencyS <= qosS {
				if !haveBest || meas.PPW() > bestMeas.PPW() {
					best, bestMeas, haveBest = t, meas, true
				}
			}
			if !haveFB || meas.LatencyS < fbMeas.LatencyS {
				fallback, fbMeas, haveFB = t, meas, true
			}
		}
		if !haveAcc || meas.Accuracy > accBestMeas.Accuracy {
			accBest, accBestMeas, haveAcc = t, meas, true
		}
	}
	switch {
	case haveBest:
		return best, bestMeas, nil
	case haveFB:
		return fallback, fbMeas, nil
	case haveAcc:
		return accBest, accBestMeas, nil
	default:
		return Target{}, Measurement{}, fmt.Errorf("sim: every feasible target for %s is down", m.Name)
	}
}
