package sim

import (
	"fmt"

	"autoscale/internal/dnn"
	"autoscale/internal/interfere"
	"autoscale/internal/perf"
	"autoscale/internal/power"
	"autoscale/internal/soc"
)

// This file adds layer-granularity execution modes used by the prior-work
// comparators of Fig 9: NeuroSurgeon-style edge–cloud partitioning (run a
// model prefix locally, ship the intermediate activation, finish remotely)
// and MOSAIC-style on-device slicing (assign layer segments to different
// local engines, paying a context switch at each boundary). AutoScale itself
// offloads at model granularity (Section IV footnote 4); these modes exist
// so the comparison is faithful.

// switchOverheadS is the fixed cost of migrating execution between two
// engines of the same SoC (runtime handoff, cache/DMA setup).
const switchOverheadS = 1.5e-3

// expectedPartitioned computes the noise-free outcome of running layers
// [0,cut) of m on the local target and layers [cut,len) at the remote
// location's best-suited engine (at its top DVFS step), transferring the
// boundary activation out and the result back. cut == len(m.Layers)
// degenerates to fully local execution; cut == 0 to a full offload.
func (w *World) expectedPartitioned(m *dnn.Model, cut int, local Target, remoteLoc Location, c Conditions) (Measurement, error) {
	if remoteLoc == Local {
		return Measurement{}, fmt.Errorf("sim: partition remote location must not be local")
	}
	if cut < 0 || cut > len(m.Layers) {
		return Measurement{}, fmt.Errorf("sim: partition cut %d out of range", cut)
	}
	if local.Location != Local {
		return Measurement{}, fmt.Errorf("sim: partition local target must be local")
	}

	pen := interfere.PenaltiesFor(c.Load)
	localProc := w.Device.Processor(local.Kind)
	if localProc == nil || !localProc.SupportsPrecision(local.Prec) {
		return Measurement{}, fmt.Errorf("sim: invalid local target %v", local)
	}

	// Local prefix.
	var localLat float64
	prefixHasRC := false
	for _, l := range m.Layers[:cut] {
		if l.Type == dnn.RC {
			prefixHasRC = true
		}
		localLat += perf.LayerLatency(perf.Exec{Proc: localProc, Step: local.Step, Prec: local.Prec}, l, pen)
	}
	if prefixHasRC && !localProc.SupportsRC {
		return Measurement{}, fmt.Errorf("sim: local prefix has RC layers unsupported by %s", localProc.Name)
	}

	// Fully local degenerate case.
	if cut == len(m.Layers) {
		bd, err := power.OnDevice(localProc, local.Step, localLat, w.Device.PlatformIdleW)
		if err != nil {
			return Measurement{}, err
		}
		return Measurement{
			Target: local, LatencyS: localLat, Breakdown: bd,
			EnergyJ: bd.Total(), Accuracy: m.Accuracy(local.Prec),
		}, nil
	}

	// Boundary payload: the input itself when nothing ran locally, else
	// the activation produced by the last local layer.
	payload := m.InputBytes
	if cut > 0 {
		payload = m.Layers[cut-1].ActivationBytes
		if payload <= 0 {
			payload = m.InputBytes * 0.1
		}
	}

	remoteSys := w.systemAt(remoteLoc)
	remoteProc := bestRemoteEngine(remoteSys, m.Layers[cut:])
	remotePrec := remotePrecision(remoteLoc, remoteProc)
	var remoteLat float64
	for _, l := range m.Layers[cut:] {
		remoteLat += perf.LayerLatency(perf.Exec{Proc: remoteProc, Step: remoteProc.Steps - 1, Prec: remotePrec}, l, perf.NoInterference())
	}

	link := w.linkTo(remoteLoc)
	rssi := c.rssiFor(remoteLoc)
	tTX := link.TransferSeconds(payload, rssi)
	tRX := link.TransferSeconds(m.OutputBytes, rssi)
	total := localLat + tTX + remoteLat + w.serviceOverhead(remoteLoc) + tRX

	localBD, err := power.OnDevice(localProc, local.Step, localLat, 0)
	if err != nil {
		return Measurement{}, err
	}
	offBD, err := power.Offload(link, rssi, tTX, tRX, total-localLat, w.Device.PlatformIdleW)
	if err != nil {
		return Measurement{}, err
	}
	bd := power.Breakdown{
		Compute: localBD.Compute,
		Radio:   offBD.Radio,
		Idle:    offBD.Idle + w.Device.PlatformIdleW*localLat,
	}
	// Accuracy follows the lower-precision stage.
	acc := m.Accuracy(local.Prec)
	if cut == 0 || m.Accuracy(remotePrec) < acc {
		acc = m.Accuracy(remotePrec)
	}
	if cut == 0 {
		acc = m.Accuracy(remotePrec)
	}
	return Measurement{
		Target:     Target{Location: remoteLoc, Kind: remoteProc.Kind, Prec: remotePrec},
		LatencyS:   total,
		EnergyJ:    bd.Total(),
		Breakdown:  bd,
		Accuracy:   acc,
		TTXSeconds: tTX,
		TRXSeconds: tRX,
	}, nil
}

// Partitioned is the exported form used by the NeuroSurgeon comparator: the
// remote engine is chosen automatically.
func (w *World) Partitioned(m *dnn.Model, cut int, local Target, remoteLoc Location, c Conditions) (Measurement, error) {
	return w.expectedPartitioned(m, cut, local, remoteLoc, c)
}

// bestRemoteEngine picks the remote engine for a layer suffix: the GPU when
// it can run every layer (RC support), otherwise the CPU.
func bestRemoteEngine(sys *soc.Device, layers []dnn.Layer) *soc.Processor {
	hasRC := false
	for _, l := range layers {
		if l.Type == dnn.RC {
			hasRC = true
			break
		}
	}
	if gpu := sys.Processor(soc.GPU); gpu != nil && (!hasRC || gpu.SupportsRC) {
		return gpu
	}
	return sys.Processor(soc.CPU)
}

// Slice is one segment of a MOSAIC-style on-device slicing plan: layers
// [From,To) run on the local engine described by Target (which must be a
// Local target).
type Slice struct {
	From, To int
	Target   Target
}

// ExpectedSliced computes the noise-free outcome of running m across the
// given on-device slices in order, paying a context switch (fixed handoff
// plus moving the boundary activation through DRAM) at each boundary.
func (w *World) ExpectedSliced(m *dnn.Model, slices []Slice, c Conditions) (Measurement, error) {
	if len(slices) == 0 {
		return Measurement{}, fmt.Errorf("sim: empty slicing plan")
	}
	pen := interfere.PenaltiesFor(c.Load)
	var (
		total   float64
		compute float64
		minAcc  = 101.0
	)
	next := 0
	for i, sl := range slices {
		if sl.From != next || sl.To <= sl.From || sl.To > len(m.Layers) {
			return Measurement{}, fmt.Errorf("sim: slice %d [%d,%d) not contiguous", i, sl.From, sl.To)
		}
		next = sl.To
		if sl.Target.Location != Local {
			return Measurement{}, fmt.Errorf("sim: slice %d is not local", i)
		}
		proc := w.Device.Processor(sl.Target.Kind)
		if proc == nil || !proc.SupportsPrecision(sl.Target.Prec) {
			return Measurement{}, fmt.Errorf("sim: slice %d has invalid target %v", i, sl.Target)
		}
		var segLat float64
		for _, l := range m.Layers[sl.From:sl.To] {
			if l.Type == dnn.RC && !proc.SupportsRC {
				return Measurement{}, fmt.Errorf("sim: slice %d routes RC layers to %s", i, proc.Name)
			}
			segLat += perf.LayerLatency(perf.Exec{Proc: proc, Step: sl.Target.Step, Prec: sl.Target.Prec}, l, pen)
		}
		if i > 0 {
			boundary := m.Layers[sl.From-1].ActivationBytes
			segLat += switchOverheadS + boundary/(proc.MemBWGBs*1e9)*pen.MemSlowdown
		}
		total += segLat
		bd, err := power.OnDevice(proc, sl.Target.Step, segLat, 0)
		if err != nil {
			return Measurement{}, err
		}
		compute += bd.Compute
		if a := m.Accuracy(sl.Target.Prec); a < minAcc {
			minAcc = a
		}
	}
	if next != len(m.Layers) {
		return Measurement{}, fmt.Errorf("sim: slicing plan covers %d of %d layers", next, len(m.Layers))
	}
	bd := power.Breakdown{Compute: compute, Idle: w.Device.PlatformIdleW * total}
	return Measurement{
		Target:    slices[len(slices)-1].Target,
		LatencyS:  total,
		EnergyJ:   bd.Total(),
		Breakdown: bd,
		Accuracy:  minAcc,
	}, nil
}
