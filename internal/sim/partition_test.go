package sim

import (
	"math"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/soc"
)

func TestPartitionedDegenerateLocal(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("Inception v1")
	cpu := w.Device.Processor(soc.CPU)
	local := Target{Location: Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	part, err := w.Partitioned(m, len(m.Layers), local, Cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.Expected(m, local, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(part.LatencyS-full.LatencyS) > 1e-9 || math.Abs(part.EnergyJ-full.EnergyJ) > 1e-9 {
		t.Errorf("cut=len must equal local execution: %v vs %v", part, full)
	}
}

func TestPartitionedFullOffload(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("ResNet 50")
	cpu := w.Device.Processor(soc.CPU)
	local := Target{Location: Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	part, err := w.Partitioned(m, 0, local, Cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if part.Breakdown.Compute != 0 {
		t.Error("cut=0 must spend no local compute energy")
	}
	if part.TTXSeconds <= 0 {
		t.Error("cut=0 must transfer the input")
	}
	if part.Accuracy != m.Accuracy(dnn.FP32) {
		t.Error("full offload accuracy must be the remote precision's")
	}
}

func TestPartitionedMidCut(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("Inception v1")
	gpu := w.Device.Processor(soc.GPU)
	local := Target{Location: Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP32}
	part, err := w.Partitioned(m, len(m.Layers)/2, local, Cloud, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if part.Breakdown.Compute <= 0 || part.Breakdown.Radio <= 0 {
		t.Error("mid cut must pay both local compute and radio")
	}
}

func TestPartitionedErrors(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("Inception v1")
	cpu := w.Device.Processor(soc.CPU)
	local := Target{Location: Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	if _, err := w.Partitioned(m, -1, local, Cloud, strongCond()); err == nil {
		t.Error("negative cut should fail")
	}
	if _, err := w.Partitioned(m, 0, local, Local, strongCond()); err == nil {
		t.Error("local remote location should fail")
	}
	remote := Target{Location: Cloud, Kind: soc.GPU, Prec: dnn.FP32}
	if _, err := w.Partitioned(m, 0, remote, Cloud, strongCond()); err == nil {
		t.Error("non-local local target should fail")
	}
	// RC layers in the local prefix on a non-RC engine.
	bert := dnn.MustByName("MobileBERT")
	gpuT := Target{Location: Local, Kind: soc.GPU, Step: 0, Prec: dnn.FP32}
	if _, err := w.Partitioned(bert, len(bert.Layers), gpuT, Cloud, strongCond()); err == nil {
		t.Error("BERT prefix on mobile GPU should fail")
	}
}

func TestSlicedFullCPUMatchesExpected(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("MobileNet v2")
	cpu := w.Device.Processor(soc.CPU)
	tgt := Target{Location: Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	sl, err := w.ExpectedSliced(m, []Slice{{From: 0, To: len(m.Layers), Target: tgt}}, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.Expected(m, tgt, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sl.LatencyS-full.LatencyS) > 1e-9 {
		t.Errorf("single-slice latency %v != %v", sl.LatencyS, full.LatencyS)
	}
	if math.Abs(sl.EnergyJ-full.EnergyJ) > 1e-9 {
		t.Errorf("single-slice energy %v != %v", sl.EnergyJ, full.EnergyJ)
	}
}

func TestSlicedSwitchCost(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("MobileNet v2")
	cpu := w.Device.Processor(soc.CPU)
	tgt := Target{Location: Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	n := len(m.Layers)
	one, _ := w.ExpectedSliced(m, []Slice{{From: 0, To: n, Target: tgt}}, strongCond())
	gpu := w.Device.Processor(soc.GPU)
	gpuT := Target{Location: Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP32}
	two, err := w.ExpectedSliced(m, []Slice{
		{From: 0, To: n / 2, Target: tgt},
		{From: n / 2, To: n, Target: gpuT},
	}, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	_ = one
	// The boundary costs at least the fixed handoff.
	perCPU := 0.0
	for range m.Layers[:n/2] {
		perCPU++
	}
	if two.LatencyS <= 0 {
		t.Fatal("sliced latency must be positive")
	}
}

func TestSlicedValidation(t *testing.T) {
	w := NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("MobileNet v2")
	cpu := w.Device.Processor(soc.CPU)
	tgt := Target{Location: Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
	n := len(m.Layers)
	cases := [][]Slice{
		nil,                                 // empty
		{{From: 0, To: n - 1, Target: tgt}}, // gap at the tail
		{{From: 1, To: n, Target: tgt}},     // gap at the head
		{{From: 0, To: n, Target: Target{Location: Cloud, Kind: soc.GPU}}},       // non-local
		{{From: 0, To: n / 2, Target: tgt}, {From: n/2 + 1, To: n, Target: tgt}}, // hole
	}
	for i, slices := range cases {
		if _, err := w.ExpectedSliced(m, slices, strongCond()); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// RC layers on a non-RC engine.
	bert := dnn.MustByName("MobileBERT")
	gpu := w.Device.Processor(soc.GPU)
	gpuT := Target{Location: Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP32}
	if _, err := w.ExpectedSliced(bert, []Slice{{From: 0, To: len(bert.Layers), Target: gpuT}}, strongCond()); err == nil {
		t.Error("BERT sliced onto the GPU should fail")
	}
}
