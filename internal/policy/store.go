package policy

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is the crash-safe checkpoint store: one directory per device, one
// envelope file per generation. Writes go through a temp file, fsync and an
// atomic rename, so a crash mid-save leaves at worst an ignored temp file
// and never a torn checkpoint under a live name. Loads verify the envelope
// checksum and quarantine corrupt files (renamed to *.corrupt) so the next
// valid generation is used instead. A Store is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	retain int
}

// DefaultRetain is the number of generations kept per device when Open is
// given a non-positive retention.
const DefaultRetain = 5

const (
	ckptExt       = ".ckpt"
	quarantineExt = ".corrupt"
	tmpPrefix     = ".tmp-"
	genPrefix     = "gen-"
)

// Open creates (or reopens) a store rooted at dir, keeping the last retain
// generations per device (<=0 means DefaultRetain).
func Open(dir string, retain int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("policy: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("policy: open store: %w", err)
	}
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Store{dir: dir, retain: retain}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Sink is the store surface the gateway and syncer depend on; tests
// substitute failing or counting implementations. *Store satisfies it.
type Sink interface {
	// SaveNext persists a checkpoint under the device's next generation
	// and returns the generation assigned.
	SaveNext(c *Checkpoint) (uint64, error)
	// Latest returns the newest valid checkpoint for a device
	// (ErrNoCheckpoint when there is none).
	Latest(device string) (*Checkpoint, error)
}

var _ Sink = (*Store)(nil)

// Corrupter is the optional drill surface a sink may implement: damage the
// newest on-disk checkpoint in place. The fault injector's
// checkpoint_corrupt events use it to prove, in a live gateway, that the
// quarantine-and-fall-back machinery actually recovers.
type Corrupter interface {
	// CorruptLatest flips bytes inside the device's newest checkpoint file
	// and returns the generation damaged (ErrNoCheckpoint when the device
	// has none).
	CorruptLatest(device string) (uint64, error)
}

var _ Corrupter = (*Store)(nil)

// CorruptLatest damages the device's newest on-disk checkpoint by flipping
// a byte in the middle of the payload — simulating silent media corruption.
// The next Latest call will fail verification on it, quarantine it to
// *.corrupt, and fall back to the previous generation.
func (s *Store) CorruptLatest(device string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.deviceDir(device)
	gens := generationsLocked(dir)
	if len(gens) == 0 {
		return 0, fmt.Errorf("%w for device %s", ErrNoCheckpoint, device)
	}
	gen := gens[len(gens)-1]
	path := filepath.Join(dir, genFile(gen))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("policy: corrupt drill: %w", err)
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("policy: corrupt drill: %s is empty", path)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("policy: corrupt drill: %w", err)
	}
	return gen, nil
}

// sanitizeDevice maps a device name onto a safe directory name. Latest and
// History match on the device name stored in the envelope, so two names that
// sanitize to the same directory still resolve correctly.
func sanitizeDevice(device string) string {
	var b strings.Builder
	for _, r := range device {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_device"
	}
	return b.String()
}

func (s *Store) deviceDir(device string) string {
	return filepath.Join(s.dir, sanitizeDevice(device))
}

func genFile(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", genPrefix, gen, ckptExt)
}

// parseGen extracts the generation from a checkpoint file name, or ok=false
// for temp files, quarantined files and strangers.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, ckptExt) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, genPrefix), ckptExt)
	gen, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// generationsLocked lists the on-disk generations of a device dir ascending.
func generationsLocked(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		if gen, ok := parseGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// Save persists a checkpoint under its explicit generation. It refuses
// generations at or below the device's newest on-disk generation
// (ErrStaleGeneration) — the guard that keeps a delayed or replayed writer
// from clobbering fresher learning.
func (s *Store) Save(c *Checkpoint) error {
	if c == nil || c.Device == "" {
		return fmt.Errorf("policy: save needs a named checkpoint")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked(c, c.Generation)
}

// SaveNext persists a checkpoint under the device's next generation
// (newest on disk + 1, or 1) and returns the generation assigned.
func (s *Store) SaveNext(c *Checkpoint) (uint64, error) {
	if c == nil || c.Device == "" {
		return 0, fmt.Errorf("policy: save needs a named checkpoint")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := uint64(1)
	if gens := generationsLocked(s.deviceDir(c.Device)); len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	if err := s.saveLocked(c, gen); err != nil {
		return 0, err
	}
	return gen, nil
}

func (s *Store) saveLocked(c *Checkpoint, gen uint64) error {
	dir := s.deviceDir(c.Device)
	if gens := generationsLocked(dir); len(gens) > 0 && gen <= gens[len(gens)-1] {
		return fmt.Errorf("%w: generation %d <= newest on disk %d (device %s)",
			ErrStaleGeneration, gen, gens[len(gens)-1], c.Device)
	}
	stamped := *c
	stamped.Generation = gen
	data, err := Encode(&stamped)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("policy: save: %w", err)
	}

	// Crash safety: temp file in the same directory, fsync, atomic rename,
	// then best-effort directory sync so the rename itself is durable.
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*"+ckptExt)
	if err != nil {
		return fmt.Errorf("policy: save: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("policy: save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("policy: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("policy: save: %w", err)
	}
	final := filepath.Join(dir, genFile(gen))
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return fmt.Errorf("policy: save: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}

	c.Generation = gen
	s.retireLocked(dir)
	return nil
}

// retireLocked enforces retention (keep the newest s.retain generations) and
// sweeps stale temp files left by crashed writers.
func (s *Store) retireLocked(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	gens := generationsLocked(dir)
	for len(gens) > s.retain {
		os.Remove(filepath.Join(dir, genFile(gens[0])))
		gens = gens[1:]
	}
}

// Latest returns the newest valid checkpoint for a device. Files that fail
// envelope verification (torn, truncated, bit-flipped, wrong version) or
// that belong to a different device (directory-name collision) are skipped;
// verification failures are additionally quarantined by renaming to
// *.corrupt so they stop shadowing older valid generations. When nothing
// valid remains, Latest returns ErrNoCheckpoint.
func (s *Store) Latest(device string) (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.deviceDir(device)
	gens := generationsLocked(dir)
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(dir, genFile(gens[i]))
		ck, err := s.loadLocked(path)
		if err != nil {
			os.Rename(path, path+quarantineExt)
			continue
		}
		if ck.Device != device {
			continue
		}
		return ck, nil
	}
	return nil, fmt.Errorf("%w for device %s", ErrNoCheckpoint, device)
}

// LatestGeneration returns the newest valid generation for a device (0 when
// none exists). Unlike Latest it never quarantines: it is a read-only probe.
func (s *Store) LatestGeneration(device string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.deviceDir(device)
	gens := generationsLocked(dir)
	for i := len(gens) - 1; i >= 0; i-- {
		ck, err := s.loadLocked(filepath.Join(dir, genFile(gens[i])))
		if err == nil && ck.Device == device {
			return ck.Generation
		}
	}
	return 0
}

func (s *Store) loadLocked(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return ck, nil
}

// History returns the metadata of every valid on-disk checkpoint for a
// device, ascending by generation. Corrupt files are skipped (not
// quarantined — History is read-only).
func (s *Store) History(device string) ([]Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.deviceDir(device)
	var out []Meta
	for _, gen := range generationsLocked(dir) {
		ck, err := s.loadLocked(filepath.Join(dir, genFile(gen)))
		if err != nil || ck.Device != device {
			continue
		}
		out = append(out, ck.Meta)
	}
	return out, nil
}

// Devices lists every device name with at least one valid checkpoint,
// sorted. Merged fleet policies appear under their FleetDevice names.
func (s *Store) Devices() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("policy: devices: %w", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.dir, e.Name())
		for _, gen := range generationsLocked(dir) {
			if ck, err := s.loadLocked(filepath.Join(dir, genFile(gen))); err == nil {
				seen[ck.Device] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}
