package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// The on-disk envelope is a single JSON document:
//
//	{"magic":"ASPOLICY","version":1,"crc32":<IEEE over body bytes>,"body":{...}}
//
// where body carries the metadata and the base64-encoded rl snapshot. The
// CRC is computed over the exact serialized body bytes, which json.RawMessage
// preserves verbatim on decode, so any bit flip or truncation inside the
// body fails verification; flips in the framing fields break the magic,
// version or CRC comparison instead. Decode never returns a checkpoint
// unless the checksum, schema version and payload all verify.

// Magic identifies a policy checkpoint envelope.
const Magic = "ASPOLICY"

// Version is the envelope schema version this build reads and writes.
const Version = 1

type fileEnvelope struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	CRC32   uint32          `json:"crc32"`
	Body    json.RawMessage `json:"body"`
}

type fileBody struct {
	Meta     Meta   `json:"meta"`
	Snapshot []byte `json:"snapshot"`
}

// Encode serializes a checkpoint into its envelope bytes.
func Encode(c *Checkpoint) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("policy: encode nil checkpoint")
	}
	body, err := json.Marshal(fileBody{Meta: c.Meta, Snapshot: c.Snapshot})
	if err != nil {
		return nil, fmt.Errorf("policy: encode: %w", err)
	}
	env := fileEnvelope{Magic: Magic, Version: Version, CRC32: crc32.ChecksumIEEE(body), Body: body}
	return json.Marshal(env)
}

// Decode verifies and parses envelope bytes into a checkpoint. It
// distinguishes "this is not an envelope at all" (ErrNotEnvelope — callers
// may fall back to a legacy format) from "this is a damaged or unsupported
// envelope" (ErrCorrupt / ErrVersion — callers must fail loudly). The
// payload is fully validated as a restorable rl snapshot, so a successful
// Decode can never hand garbage to an engine.
func Decode(data []byte) (*Checkpoint, error) {
	var env fileEnvelope
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&env); err != nil || env.Magic != Magic {
		return nil, ErrNotEnvelope
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after envelope", ErrCorrupt)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("%w: file version %d, supported %d", ErrVersion, env.Version, Version)
	}
	if got := crc32.ChecksumIEEE(env.Body); got != env.CRC32 {
		return nil, fmt.Errorf("%w: CRC32 mismatch (file %08x, computed %08x)", ErrCorrupt, env.CRC32, got)
	}
	var body fileBody
	if err := json.Unmarshal(env.Body, &body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrCorrupt, err)
	}
	ck := &Checkpoint{Meta: body.Meta, Snapshot: body.Snapshot}
	ag, err := ck.Agent()
	if err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if ag.NumActions() != ck.Actions {
		return nil, fmt.Errorf("%w: metadata says %d actions, payload has %d",
			ErrCorrupt, ck.Actions, ag.NumActions())
	}
	return ck, nil
}

// WriteFile encodes a checkpoint to a standalone envelope file (no store
// semantics — for the CLI tools; use Store for durable fleet state).
func WriteFile(path string, c *Checkpoint) error {
	data, err := Encode(c)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile decodes a standalone envelope file.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("policy: %s: %w", path, err)
	}
	return c, nil
}
