package policy

import (
	"fmt"

	"autoscale/internal/rl"
)

// Merge federates compatible Q-tables into one shared fleet policy — the
// paper's Section VI-C learning transfer generalized from one donor to a
// whole fleet. Every input must carry the same ConfigHash and action-space
// cardinality; Merge refuses heterogeneous groups (the Syncer forms the
// groups).
//
// Row semantics: a state materialized on only one device passes through
// unchanged; a state known to several devices is averaged per action with
// each device's row weighted by that device's visit count for the state (a
// device that faced a state a thousand times outvotes one that saw it twice).
// Rows with zero recorded visits weigh as one visit so legacy tables still
// participate. Merged visit counts are the sums, so iterated merges stay
// properly weighted.
//
// The merged checkpoint is filed under FleetDevice(hash), lists its source
// devices, keeps the first input's hyperparameters (value semantics do not
// depend on exploration knobs), and carries generation 0 until saved.
func Merge(cks []*Checkpoint) (*Checkpoint, error) {
	if len(cks) == 0 {
		return nil, fmt.Errorf("policy: merge needs at least one checkpoint")
	}
	hash, actions := cks[0].ConfigHash, cks[0].Actions
	agents := make([]*rl.Agent, len(cks))
	for i, ck := range cks {
		if ck.ConfigHash != hash {
			return nil, fmt.Errorf("policy: merge: %s has config hash %s, group has %s",
				ck.Device, ck.ConfigHash, hash)
		}
		if ck.Actions != actions {
			return nil, fmt.Errorf("policy: merge: %s has %d actions, group has %d",
				ck.Device, ck.Actions, actions)
		}
		ag, err := ck.Agent()
		if err != nil {
			return nil, fmt.Errorf("policy: merge: %s: %w", ck.Device, err)
		}
		agents[i] = ag
	}

	type contribution struct {
		row    []float64
		weight float64
		visits int
	}
	byState := make(map[rl.State][]contribution)
	for _, ag := range agents {
		visits := ag.VisitCounts()
		for s, row := range ag.Rows() {
			n := visits[s]
			w := float64(n)
			if w <= 0 {
				w = 1
			}
			byState[s] = append(byState[s], contribution{row: row, weight: w, visits: n})
		}
	}

	mergedQ := make(map[rl.State][]float64, len(byState))
	mergedVisits := make(map[rl.State]int, len(byState))
	for s, contribs := range byState {
		row := make([]float64, actions)
		totalW, totalN := 0.0, 0
		for _, c := range contribs {
			totalW += c.weight
			totalN += c.visits
		}
		for _, c := range contribs {
			f := c.weight / totalW
			for i, q := range c.row {
				row[i] += f * q
			}
		}
		mergedQ[s] = row
		mergedVisits[s] = totalN
	}

	merged, err := rl.NewAgentFromTable(agents[0].Config(), actions, mergedQ, mergedVisits)
	if err != nil {
		return nil, fmt.Errorf("policy: merge: %w", err)
	}
	snapshot, err := merged.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("policy: merge: %w", err)
	}
	ck, err := NewCheckpoint(FleetDevice(hash), hash, snapshot)
	if err != nil {
		return nil, err
	}
	ck.Sources = sortedDevices(cks)
	return ck, nil
}
