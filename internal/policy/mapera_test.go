package policy_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/policy"
	"autoscale/internal/rl"
)

// TestMapEraEnvelopeRoundTrip proves the dense-table agent is envelope
// byte-compatible with the historical map-backed table: a hand-built
// map-era snapshot (string-keyed Q and visit maps, exactly what the old
// agent serialized) wrapped in a checkpoint envelope warm-starts a dense
// agent on the engine's state-space interner, and the agent re-emits the
// identical snapshot — and hence an identical envelope, CRC and all.
func TestMapEraEnvelopeRoundTrip(t *testing.T) {
	// mapSnapshot mirrors the map-era agent's serialized shape.
	type mapSnapshot struct {
		Config  rl.Config              `json:"config"`
		Actions int                    `json:"actions"`
		Q       map[rl.State][]float64 `json:"q"`
		Visits  map[rl.State]int       `json:"visits"`
	}
	const actions = 4
	// Two real Table I grid keys (interned on the dense base) plus one
	// alien key that must survive through the overflow interner.
	q := map[rl.State][]float64{
		"0|1|0|1|0|0|1|1": {0.5, -1.25, 3.75, 0.1},
		"3|0|1|2|3|2|0|0": {-0.9, 2.5, 0.25, -4.5},
		"foreign|key":     {1.5, 1.5, -0.75, 0.3},
	}
	visits := map[rl.State]int{
		"0|1|0|1|0|0|1|1": 17,
		"3|0|1|2|3|2|0|0": 3,
		"foreign|key":     1,
	}
	snapBytes, err := json.Marshal(mapSnapshot{
		Config: rl.DefaultConfig(), Actions: actions, Q: q, Visits: visits,
	})
	if err != nil {
		t.Fatal(err)
	}

	ck := &policy.Checkpoint{
		Meta:     policy.Meta{Device: "phone-0", ConfigHash: "h", Actions: actions, States: len(q)},
		Snapshot: snapBytes,
	}
	env, err := policy.Encode(ck)
	if err != nil {
		t.Fatal(err)
	}

	dec, err := policy.Decode(env)
	if err != nil {
		t.Fatal(err)
	}

	// Warm-start the dense agent on the full Table I interner — grid keys
	// land on their arithmetic indices, the alien key in the overflow.
	ag, err := rl.RestoreInterned(dec.Snapshot, core.NewStateSpace())
	if err != nil {
		t.Fatal(err)
	}
	for s, want := range visits {
		if got := ag.Visits(s); got != want {
			t.Fatalf("Visits(%q) = %d, want %d", s, got, want)
		}
	}

	resnap, err := ag.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resnap, snapBytes) {
		t.Fatalf("dense agent re-emitted a different snapshot:\n got %s\nwant %s", resnap, snapBytes)
	}

	env2, err := policy.Encode(&policy.Checkpoint{Meta: dec.Meta, Snapshot: resnap})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env2, env) {
		t.Fatalf("re-encoded envelope differs (CRC contents changed):\n got %s\nwant %s", env2, env)
	}
}
