// Package policy is the fleet learning plane: durable, versioned storage for
// the Q-tables the engines learn online, and federation of those tables
// across a heterogeneous fleet.
//
// The paper shows AutoScale's learned policy transfers across devices and
// networks (Section VI-C); this package operationalizes that result for a
// production fleet. It has two layers:
//
//   - Checkpoint store (store.go): crash-safe snapshots — temp-file +
//     atomic-rename writes, CRC32-checksummed schema-versioned envelopes,
//     per-device monotonic generation numbers, retention of the last N
//     generations, and quarantine of corrupt files on load so a torn or
//     bit-flipped latest checkpoint falls back to the previous one instead
//     of feeding garbage to an engine.
//
//   - Federation (merge.go, sync.go): visit-count-weighted merging of
//     compatible Q-tables into a shared fleet policy, and a background
//     Syncer that periodically checkpoints every node, refreshes the merged
//     policy, and warm-starts new or restarted nodes from it — with
//     retry/backoff on store errors and staleness guards so an old
//     generation never overwrites a newer one.
//
// Compatibility is decided by core's engine ConfigHash: two tables merge (or
// warm-start one another) only when their action spaces, state
// discretizations, algorithm and reward parameterization agree.
package policy

import (
	"errors"
	"fmt"
	"sort"

	"autoscale/internal/rl"
)

// Sentinel errors of the policy plane.
var (
	// ErrNotEnvelope marks data that is not a policy checkpoint envelope
	// (e.g. a legacy raw rl snapshot, or arbitrary junk).
	ErrNotEnvelope = errors.New("policy: not a checkpoint envelope")
	// ErrCorrupt marks an envelope whose checksum or structure fails
	// verification — truncated, bit-flipped, or torn files.
	ErrCorrupt = errors.New("policy: corrupt checkpoint")
	// ErrVersion marks an envelope written by an unknown schema version.
	ErrVersion = errors.New("policy: unsupported checkpoint version")
	// ErrNoCheckpoint is returned by Latest when a device has no valid
	// checkpoint on disk.
	ErrNoCheckpoint = errors.New("policy: no checkpoint")
	// ErrStaleGeneration marks a Save whose generation is not newer than
	// what the store already holds for the device.
	ErrStaleGeneration = errors.New("policy: stale generation")
)

// Meta is the checkpoint metadata carried in the envelope, inspectable
// without decoding the Q-table payload.
type Meta struct {
	// Device names the fleet node the table was learned on. Merged fleet
	// policies use the reserved FleetDevice name of their config hash.
	Device string `json:"device"`
	// ConfigHash is the engine compatibility fingerprint
	// (core.Engine.ConfigHash); only matching tables merge or warm-start.
	ConfigHash string `json:"config_hash"`
	// Generation is the per-device monotonic checkpoint counter, assigned
	// by the store at save time.
	Generation uint64 `json:"generation"`
	// Actions is the action-space cardinality of the table.
	Actions int `json:"actions"`
	// States is the number of materialized Q rows.
	States int `json:"states"`
	// Visits maps each state key to its visit count — the experience
	// weights federation averages by.
	Visits map[string]int `json:"visits,omitempty"`
	// Sources lists the contributing device names of a merged policy
	// (empty for a single-device checkpoint).
	Sources []string `json:"sources,omitempty"`
}

// TotalVisits sums the per-state visit counts.
func (m Meta) TotalVisits() int {
	total := 0
	for _, n := range m.Visits {
		total += n
	}
	return total
}

// Checkpoint is one durable policy snapshot: envelope metadata plus the raw
// rl agent snapshot payload.
type Checkpoint struct {
	Meta
	// Snapshot is the rl.Agent snapshot (Q-table, visit counts, config).
	Snapshot []byte
}

// NewCheckpoint validates an rl snapshot payload and wraps it in checkpoint
// metadata (generation 0 — the store assigns the real generation at save).
func NewCheckpoint(device, configHash string, snapshot []byte) (*Checkpoint, error) {
	if device == "" {
		return nil, errors.New("policy: checkpoint needs a device name")
	}
	ag, err := rl.Restore(snapshot)
	if err != nil {
		return nil, fmt.Errorf("policy: invalid snapshot for %s: %w", device, err)
	}
	visits := make(map[string]int)
	for s, n := range ag.VisitCounts() {
		visits[string(s)] = n
	}
	return &Checkpoint{
		Meta: Meta{
			Device:     device,
			ConfigHash: configHash,
			Actions:    ag.NumActions(),
			States:     len(ag.States()),
			Visits:     visits,
		},
		Snapshot: snapshot,
	}, nil
}

// Agent decodes the checkpoint's payload into a live rl agent.
func (c *Checkpoint) Agent() (*rl.Agent, error) { return rl.Restore(c.Snapshot) }

// FleetDevice is the reserved store device name under which the merged
// policy for one compatibility group (config hash) is filed. It starts with
// an underscore so it can never collide with a real gateway device name
// produced by sanitization of user input — real names keep their own
// characters, and Latest/History match on the full stored name anyway.
func FleetDevice(configHash string) string { return "_fleet-" + configHash }

// sortedDevices returns the checkpoint device names in sorted order.
func sortedDevices(cks []*Checkpoint) []string {
	out := make([]string, 0, len(cks))
	for _, c := range cks {
		out = append(out, c.Device)
	}
	sort.Strings(out)
	return out
}
