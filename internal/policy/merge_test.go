package policy

import (
	"math"
	"reflect"
	"testing"

	"autoscale/internal/rl"
)

func mergeCk(t testing.TB, device, hash string, actions int,
	q map[rl.State][]float64, visits map[rl.State]int) *Checkpoint {
	t.Helper()
	ck, err := NewCheckpoint(device, hash, testSnapshot(t, actions, q, visits))
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestMergeWeightsByVisits(t *testing.T) {
	const hash = "cafebabe00000000"
	a := mergeCk(t, "edge-a", hash, 2,
		map[rl.State][]float64{
			"shared": {1.0, 10.0},
			"only-a": {7.0, 8.0},
		},
		map[rl.State]int{"shared": 3, "only-a": 4})
	b := mergeCk(t, "edge-b", hash, 2,
		map[rl.State][]float64{"shared": {5.0, 20.0}},
		map[rl.State]int{"shared": 1})

	merged, err := Merge([]*Checkpoint{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Device != FleetDevice(hash) || merged.ConfigHash != hash {
		t.Fatalf("merged identity: %+v", merged.Meta)
	}
	if !reflect.DeepEqual(merged.Sources, []string{"edge-a", "edge-b"}) {
		t.Fatalf("sources: %v", merged.Sources)
	}
	ag, err := merged.Agent()
	if err != nil {
		t.Fatal(err)
	}
	// shared: (3*1 + 1*5)/4 = 2, (3*10 + 1*20)/4 = 12.5; visits sum to 4.
	if q := ag.Q("shared", 0); math.Abs(q-2.0) > 1e-12 {
		t.Errorf("merged Q(shared,0) = %v, want 2", q)
	}
	if q := ag.Q("shared", 1); math.Abs(q-12.5) > 1e-12 {
		t.Errorf("merged Q(shared,1) = %v, want 12.5", q)
	}
	if v := ag.Visits("shared"); v != 4 {
		t.Errorf("merged visits(shared) = %d, want 4", v)
	}
	// only-a passes through unchanged.
	if q := ag.Q("only-a", 1); q != 8.0 {
		t.Errorf("pass-through Q(only-a,1) = %v, want 8", q)
	}
	if v := ag.Visits("only-a"); v != 4 {
		t.Errorf("pass-through visits(only-a) = %d, want 4", v)
	}
}

// TestMergeZeroVisitRowsWeighAsOne: a row with no recorded visits (legacy
// snapshot) still participates with weight one instead of dividing by zero.
func TestMergeZeroVisitRowsWeighAsOne(t *testing.T) {
	const hash = "cafebabe00000000"
	a := mergeCk(t, "a", hash, 1,
		map[rl.State][]float64{"s": {2.0}}, map[rl.State]int{"s": 0})
	b := mergeCk(t, "b", hash, 1,
		map[rl.State][]float64{"s": {4.0}}, map[rl.State]int{"s": 0})
	merged, err := Merge([]*Checkpoint{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := merged.Agent()
	if err != nil {
		t.Fatal(err)
	}
	if q := ag.Q("s", 0); math.Abs(q-3.0) > 1e-12 {
		t.Fatalf("equal-weight merge Q = %v, want 3", q)
	}
}

func TestMergeRefusesIncompatible(t *testing.T) {
	base := mergeCk(t, "a", "cafebabe00000000", 2,
		map[rl.State][]float64{"s": {1, 2}}, nil)
	otherHash := mergeCk(t, "b", "deadbeef00000000", 2,
		map[rl.State][]float64{"s": {1, 2}}, nil)
	if _, err := Merge([]*Checkpoint{base, otherHash}); err == nil {
		t.Fatal("merge accepted mismatched config hashes")
	}
	otherActions := mergeCk(t, "c", "cafebabe00000000", 3,
		map[rl.State][]float64{"s": {1, 2, 3}}, nil)
	if _, err := Merge([]*Checkpoint{base, otherActions}); err == nil {
		t.Fatal("merge accepted mismatched action spaces")
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("merge accepted an empty group")
	}
}

// TestMergeIterated: merging a merged policy with a new device stays
// visit-weighted, because merged visit counts are sums.
func TestMergeIterated(t *testing.T) {
	const hash = "cafebabe00000000"
	a := mergeCk(t, "a", hash, 1,
		map[rl.State][]float64{"s": {0.0}}, map[rl.State]int{"s": 1})
	b := mergeCk(t, "b", hash, 1,
		map[rl.State][]float64{"s": {0.0}}, map[rl.State]int{"s": 1})
	ab, err := Merge([]*Checkpoint{a, b})
	if err != nil {
		t.Fatal(err)
	}
	c := mergeCk(t, "c", hash, 1,
		map[rl.State][]float64{"s": {6.0}}, map[rl.State]int{"s": 2})
	all, err := Merge([]*Checkpoint{ab, c})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := all.Agent()
	if err != nil {
		t.Fatal(err)
	}
	// (2*0 + 2*6)/4 = 3 — identical to merging a, b, c in one shot.
	if q := ag.Q("s", 0); math.Abs(q-3.0) > 1e-12 {
		t.Fatalf("iterated merge Q = %v, want 3", q)
	}
	if v := ag.Visits("s"); v != 4 {
		t.Fatalf("iterated merge visits = %d, want 4", v)
	}
}
