package policy

import (
	"errors"
	"testing"
	"time"
)

// scriptedVerdict builds a FaultSink clock/verdict pair from a fixed ruling
// the test flips at will.
type scriptedVerdict struct {
	now float64
	v   IOVerdict
}

func (s *scriptedVerdict) wire(f *FaultSink) {
	f.Now = func() float64 { return s.now }
	f.Verdict = func(string, float64) IOVerdict { return s.v }
}

func TestFaultSinkTransparentWhenHealthy(t *testing.T) {
	store, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &FaultSink{Inner: store} // no Verdict/Now: transparent proxy
	e := syncEngine(t, 1)
	learn(t, e, 5)
	snap, err := e.SnapshotQTable()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := NewCheckpoint("phone-0", e.ConfigHash(), snap)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := f.SaveNext(ck)
	if err != nil || gen != 1 {
		t.Fatalf("healthy save: gen=%d err=%v", gen, err)
	}
	got, err := f.Latest("phone-0")
	if err != nil || got.Generation != 1 {
		t.Fatalf("healthy read: %+v err=%v", got, err)
	}
}

func TestFaultSinkInjectedFailures(t *testing.T) {
	store, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := &scriptedVerdict{}
	f := &FaultSink{Inner: store}
	sv.wire(f)
	e := syncEngine(t, 2)
	learn(t, e, 5)
	snap, _ := e.SnapshotQTable()
	ck, err := NewCheckpoint("phone-0", e.ConfigHash(), snap)
	if err != nil {
		t.Fatal(err)
	}

	// Generation 1 lands while healthy.
	if _, err := f.SaveNext(ck); err != nil {
		t.Fatal(err)
	}

	// write_fail: saves rejected, reads still serve the prior generation.
	sv.v = IOFailWrite
	if _, err := f.SaveNext(ck); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("write under write_fail: %v, want ErrInjectedIO", err)
	}
	if got, err := f.Latest("phone-0"); err != nil || got.Generation != 1 {
		t.Fatalf("read under write_fail: %+v err=%v", got, err)
	}

	// disk_full: everything fails; the store underneath is untouched.
	sv.v = IOFailAll
	if _, err := f.SaveNext(ck); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("write under disk_full: %v", err)
	}
	if _, err := f.Latest("phone-0"); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("read under disk_full: %v", err)
	}
	if got, err := store.Latest("phone-0"); err != nil || got.Generation != 1 {
		t.Fatalf("raw store lost the table: %+v err=%v", got, err)
	}

	// slow_fsync: saves succeed and are counted.
	sv.v = IOSlow
	if _, err := f.SaveNext(ck); err != nil {
		t.Fatalf("write under slow_fsync: %v", err)
	}
	slow, failedW, failedR := f.Stats()
	if slow != 1 || failedW != 2 || failedR != 1 {
		t.Fatalf("stats = (%d slow, %d failed writes, %d failed reads), want (1, 2, 1)",
			slow, failedW, failedR)
	}
}

// TestFaultSinkRetryFallsBackToStore pins the quarantine/fallback behavior
// the chaos soak leans on: SaveWithRetry against a failing sink surfaces the
// injected error after its attempts, the prior generation survives in the
// raw store, and once the fault clears the next save resumes the generation
// sequence (the generation guard stays intact).
func TestFaultSinkRetryFallsBackToStore(t *testing.T) {
	store, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sv := &scriptedVerdict{}
	f := &FaultSink{Inner: store}
	sv.wire(f)
	e := syncEngine(t, 3)
	learn(t, e, 5)
	snap, _ := e.SnapshotQTable()
	ck, err := NewCheckpoint("phone-0", e.ConfigHash(), snap)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SyncConfig{MaxAttempts: 3, Sleep: func(time.Duration) {}}

	if _, err := SaveWithRetry(f, ck, cfg); err != nil {
		t.Fatal(err)
	}
	sv.v = IOFailWrite
	if _, err := SaveWithRetry(f, ck, cfg); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("retry under persistent write_fail: %v", err)
	}
	// Fault clears: next save is generation 2, no gap, no stale guard trip.
	sv.v = IOHealthy
	gen, err := SaveWithRetry(f, ck, cfg)
	if err != nil || gen != 2 {
		t.Fatalf("post-fault save: gen=%d err=%v", gen, err)
	}
	if got, err := store.Latest("phone-0"); err != nil || got.Generation != 2 {
		t.Fatalf("store after recovery: %+v err=%v", got, err)
	}
}

// TestSyncerHealthTracking pins the sync-plane failure surface: consecutive
// failure counting, last-error capture, reset on a clean pass, and the
// OnPass hook (what the serving tier exports to /healthz).
func TestSyncerHealthTracking(t *testing.T) {
	store, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := syncEngine(t, 4)
	learn(t, e, 5)

	partitioned := true
	var passed []bool
	s, err := NewSyncer(store, staticNodes(Node{Device: "phone-0", Engine: e}), SyncConfig{
		Sleep:       func(time.Duration) {},
		Unreachable: func(string) bool { return partitioned },
		OnPass:      func(rep Report) { passed = append(passed, rep.Err() == nil) },
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		rep := s.SyncOnce()
		if !errors.Is(rep.Err(), ErrPartitioned) {
			t.Fatalf("pass %d: %v, want ErrPartitioned", i, rep.Err())
		}
	}
	h := s.Health()
	if h.Passes != 3 || h.Failures != 3 || h.ConsecutiveFailures != 3 {
		t.Fatalf("health after 3 failures: %+v", h)
	}
	if h.LastError == "" {
		t.Fatal("no last error recorded")
	}

	// Partition heals: the pass succeeds and the consecutive counter resets.
	partitioned = false
	if rep := s.SyncOnce(); rep.Err() != nil {
		t.Fatalf("healed pass: %v", rep.Err())
	}
	h = s.Health()
	if h.Passes != 4 || h.Failures != 3 || h.ConsecutiveFailures != 0 || h.LastError != "" {
		t.Fatalf("health after heal: %+v", h)
	}
	if len(passed) != 4 || passed[0] || !passed[3] {
		t.Fatalf("OnPass sequence: %v", passed)
	}
}

// TestSyncPartitionSkipsDeviceButServesOthers checks a partitioned node is
// skipped (reported, not synced) while the rest of the fleet still
// checkpoints.
func TestSyncPartitionSkipsDeviceButServesOthers(t *testing.T) {
	store, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := syncEngine(t, 5), syncEngine(t, 6)
	learn(t, ea, 5)
	learn(t, eb, 5)
	s, err := NewSyncer(store, staticNodes(
		Node{Device: "phone-a", Engine: ea},
		Node{Device: "phone-b", Engine: eb},
	), SyncConfig{
		Sleep:       func(time.Duration) {},
		Unreachable: func(dev string) bool { return dev == "phone-b" },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.SyncOnce()
	if !errors.Is(rep.Err(), ErrPartitioned) {
		t.Fatalf("report: %v", rep.Err())
	}
	if _, err := store.Latest("phone-a"); err != nil {
		t.Fatalf("reachable device not checkpointed: %v", err)
	}
	if _, err := store.Latest("phone-b"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("partitioned device was checkpointed: %v", err)
	}
}
