package policy

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// flakySink fails the first failures SaveNext calls per device, then
// delegates to a real store.
type flakySink struct {
	store    *Store
	failures int
	calls    map[string]int
	stale    map[string]bool
}

func (f *flakySink) SaveNext(c *Checkpoint) (uint64, error) {
	if f.calls == nil {
		f.calls = map[string]int{}
	}
	f.calls[c.Device]++
	if f.stale[c.Device] {
		return 0, fmt.Errorf("replayed writer: %w", ErrStaleGeneration)
	}
	if f.calls[c.Device] <= f.failures {
		return 0, errors.New("disk on fire")
	}
	return f.store.SaveNext(c)
}

func (f *flakySink) Latest(device string) (*Checkpoint, error) { return f.store.Latest(device) }

func syncEngine(t testing.TB, seed int64) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seed), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// learn drives n inferences through an engine so its table holds real
// experience.
func learn(t testing.TB, e *core.Engine, n int) {
	t.Helper()
	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < n; i++ {
		if _, err := e.RunInference(m, sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}); err != nil {
			t.Fatal(err)
		}
	}
}

func staticNodes(nodes ...Node) func() []Node {
	return func() []Node { return nodes }
}

func TestSaveWithRetryBacksOff(t *testing.T) {
	st := testStore(t, 0)
	var slept []time.Duration
	cfg := SyncConfig{MaxAttempts: 3, Backoff: 10 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}

	sink := &flakySink{store: st, failures: 2}
	gen, err := SaveWithRetry(sink, ckWithQ(t, "dev", 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("gen = %d, want 1", gen)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff schedule: %v, want [10ms 20ms]", slept)
	}

	// Persistent failure exhausts attempts and reports the cause.
	slept = nil
	dead := &flakySink{store: st, failures: 1 << 30}
	if _, err := SaveWithRetry(dead, ckWithQ(t, "dev", 1), cfg); err == nil {
		t.Fatal("persistent store failure reported as success")
	} else if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("error hides the cause: %v", err)
	}
	if dead.calls["dev"] != 3 {
		t.Fatalf("attempts = %d, want 3", dead.calls["dev"])
	}
}

func TestSaveWithRetryStaleIsTerminal(t *testing.T) {
	st := testStore(t, 0)
	sink := &flakySink{store: st, stale: map[string]bool{"dev": true}}
	var slept int
	cfg := SyncConfig{MaxAttempts: 5, Backoff: time.Millisecond,
		Sleep: func(time.Duration) { slept++ }}
	if _, err := SaveWithRetry(sink, ckWithQ(t, "dev", 1), cfg); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("err = %v, want ErrStaleGeneration", err)
	}
	if sink.calls["dev"] != 1 || slept != 0 {
		t.Fatalf("stale save retried: %d calls, %d sleeps", sink.calls["dev"], slept)
	}
}

// TestSyncOnceCheckpointsMergesWarmStarts is the federation round trip: two
// experienced nodes and one cold node of the same configuration; one pass
// must checkpoint the experienced pair, publish a merged fleet policy, and
// seed the cold node from it.
func TestSyncOnceCheckpointsMergesWarmStarts(t *testing.T) {
	st := testStore(t, 0)
	veteran1, veteran2, rookie := syncEngine(t, 1), syncEngine(t, 2), syncEngine(t, 3)
	learn(t, veteran1, 25)
	learn(t, veteran2, 25)
	if rookie.Agent().TotalVisits() != 0 {
		t.Fatal("rookie not cold")
	}

	syncer, err := NewSyncer(st, staticNodes(
		Node{Device: "edge-1", Engine: veteran1},
		Node{Device: "edge-2", Engine: veteran2},
		Node{Device: "edge-3", Engine: rookie},
	), SyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := syncer.SyncOnce()
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpointed) != 3 {
		t.Fatalf("checkpointed %v, want all three", rep.Checkpointed)
	}
	if rep.MergedGroups != 1 {
		t.Fatalf("merged groups = %d, want 1", rep.MergedGroups)
	}
	if len(rep.WarmStarted) != 1 || rep.WarmStarted[0] != "edge-3" {
		t.Fatalf("warm-started %v, want [edge-3]", rep.WarmStarted)
	}

	// The rookie now carries the fleet's experience.
	if rookie.Agent().TotalVisits() == 0 {
		t.Fatal("rookie still cold after warm-start")
	}
	hash := veteran1.ConfigHash()
	if rookie.ConfigHash() != hash {
		t.Fatal("config hash not deterministic across same-config engines")
	}
	fleet, err := st.Latest(FleetDevice(hash))
	if err != nil {
		t.Fatalf("merged fleet policy not persisted: %v", err)
	}
	if len(fleet.Sources) != 3 {
		t.Fatalf("fleet sources: %v", fleet.Sources)
	}
	if fleet.States == 0 || fleet.Meta.TotalVisits() == 0 {
		t.Fatalf("empty fleet policy: %+v", fleet.Meta)
	}

	// A second pass bumps generations; warm-start does not repeat.
	rep = syncer.SyncOnce()
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.WarmStarted) != 0 {
		t.Fatalf("second pass warm-started %v", rep.WarmStarted)
	}
	if g := st.LatestGeneration("edge-1"); g != 2 {
		t.Fatalf("edge-1 generation after two passes = %d, want 2", g)
	}
}

// TestSyncOnceSickStoreDoesNotStallFleet: persistence failures land in
// Report.Errs but the pass still merges in-memory tables and warm-starts.
func TestSyncOnceSickStoreDoesNotStallFleet(t *testing.T) {
	st := testStore(t, 0)
	veteran, rookie := syncEngine(t, 1), syncEngine(t, 2)
	learn(t, veteran, 25)

	sink := &flakySink{store: st, failures: 1 << 30}
	syncer, err := NewSyncer(sink, staticNodes(
		Node{Device: "edge-1", Engine: veteran},
		Node{Device: "edge-2", Engine: rookie},
	), SyncConfig{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := syncer.SyncOnce()
	if rep.Err() == nil {
		t.Fatal("sick store produced a clean report")
	}
	if len(rep.Checkpointed) != 0 {
		t.Fatalf("checkpointed through a dead sink: %v", rep.Checkpointed)
	}
	// Federation still happened in memory.
	if len(rep.WarmStarted) != 1 || rep.WarmStarted[0] != "edge-2" {
		t.Fatalf("warm-started %v, want [edge-2] despite store failure", rep.WarmStarted)
	}
	if rookie.Agent().TotalVisits() == 0 {
		t.Fatal("rookie still cold")
	}
}

func TestSyncerStartStop(t *testing.T) {
	st := testStore(t, 0)
	engine := syncEngine(t, 1)
	learn(t, engine, 5)
	syncer, err := NewSyncer(st, staticNodes(Node{Device: "edge-1", Engine: engine}),
		SyncConfig{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	syncer.Start()
	syncer.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for st.LatestGeneration("edge-1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background syncer never checkpointed")
		}
		time.Sleep(time.Millisecond)
	}
	syncer.Stop()
	syncer.Stop() // idempotent
	gen := st.LatestGeneration("edge-1")
	time.Sleep(20 * time.Millisecond)
	if g := st.LatestGeneration("edge-1"); g != gen {
		t.Fatalf("syncer still running after Stop: gen %d -> %d", gen, g)
	}
}
