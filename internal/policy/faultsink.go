package policy

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// IOVerdict classifies the checkpoint store's injected I/O state at one
// instant. The fault plane (internal/fault) cannot be imported here — core's
// simulator already depends on it, so policy importing fault would cycle —
// which is why the verdict is delivered through a callback the wiring layer
// builds from the injector.
type IOVerdict int

const (
	// IOHealthy: the store behaves normally.
	IOHealthy IOVerdict = iota
	// IOSlow: saves succeed but each fsync is pathologically slow; the sink
	// counts them so health scoring can see the latency, without blocking
	// the virtual-clock run on wall time.
	IOSlow
	// IOFailWrite: every save fails (a flaky disk rejecting writes); reads
	// still serve the prior generations.
	IOFailWrite
	// IOFailAll: the disk is full or gone — saves and reads both fail, and
	// restores must fall back to nothing (warm-start is best-effort).
	IOFailAll
)

// ErrInjectedIO marks a checkpoint-store failure injected by the fault
// plane, so tests and auditors can distinguish scripted damage from real
// bugs.
var ErrInjectedIO = errors.New("policy: injected checkpoint I/O fault")

// FaultSink wraps a Sink with scripted I/O damage evaluated on the virtual
// clock. It is the checkpoint-store analog of the gateway's fault events:
// Verdict(device, Now()) decides per call whether a save fails, is counted
// slow, or a read is refused — exercising the store's quarantine/fallback
// machinery under load without touching the store itself. The zero Verdict
// / Now are treated as always-healthy, so a FaultSink with only Inner set
// is a transparent proxy.
type FaultSink struct {
	// Inner is the real store.
	Inner Sink
	// Now supplies the virtual time verdicts are evaluated at. It MUST NOT
	// call back into the serving tier that uses this sink (for example
	// Router.VirtualNow): saves and restores run under those components'
	// locks — during re-homing warm starts and drain flushes — and a
	// re-entrant clock deadlocks. Feed it a clock sampled outside the lock
	// (an atomic the driving loop updates).
	Now func() float64
	// Verdict maps (device, virtual time) to the injected I/O state.
	Verdict func(device string, t float64) IOVerdict
	// Events, when set, receives one call per non-healthy verdict that
	// actually altered an operation (a failed save, a slow save, a refused
	// read). The wiring layer typically points it at a flight recorder's
	// Note so checkpoint I/O damage lands in the incident event ring; it is
	// a plain function so policy does not import the tracing plane.
	Events func(atS float64, kind, subject, detail string)

	slowSaves   atomic.Uint64
	failedOps   atomic.Uint64
	failedReads atomic.Uint64
}

var _ Sink = (*FaultSink)(nil)

func (f *FaultSink) verdict(device string) (IOVerdict, float64) {
	if f.Verdict == nil || f.Now == nil {
		return IOHealthy, 0
	}
	t := f.Now()
	return f.Verdict(device, t), t
}

func (f *FaultSink) note(atS float64, subject, detail string) {
	if f.Events != nil {
		f.Events(atS, "checkpoint-io", subject, detail)
	}
}

// SaveNext persists through the inner sink unless the injected verdict says
// the write must fail; IOSlow saves succeed and are counted.
func (f *FaultSink) SaveNext(c *Checkpoint) (uint64, error) {
	switch v, t := f.verdict(c.Device); v {
	case IOFailWrite:
		f.failedOps.Add(1)
		f.note(t, c.Device, "save failed: write failure")
		return 0, fmt.Errorf("save %s: write failure: %w", c.Device, ErrInjectedIO)
	case IOFailAll:
		f.failedOps.Add(1)
		f.note(t, c.Device, "save failed: disk full")
		return 0, fmt.Errorf("save %s: disk full: %w", c.Device, ErrInjectedIO)
	case IOSlow:
		f.slowSaves.Add(1)
		f.note(t, c.Device, "slow save")
	}
	return f.Inner.SaveNext(c)
}

// Latest reads through the inner sink unless the disk is injected as fully
// unusable (IOFailAll).
func (f *FaultSink) Latest(device string) (*Checkpoint, error) {
	if v, t := f.verdict(device); v == IOFailAll {
		f.failedReads.Add(1)
		f.note(t, device, "read refused: disk full")
		return nil, fmt.Errorf("latest %s: disk full: %w", device, ErrInjectedIO)
	}
	return f.Inner.Latest(device)
}

// CorruptLatest passes corruption drills through to the inner store when it
// supports them, so a FaultSink-wrapped store still honors
// checkpoint_corrupt events.
func (f *FaultSink) CorruptLatest(device string) (uint64, error) {
	if c, ok := f.Inner.(Corrupter); ok {
		return c.CorruptLatest(device)
	}
	return 0, fmt.Errorf("policy: inner sink cannot corrupt checkpoints")
}

// Stats reports how much injected damage the sink has dealt: slow saves,
// failed writes, refused reads.
func (f *FaultSink) Stats() (slowSaves, failedWrites, failedReads uint64) {
	return f.slowSaves.Load(), f.failedOps.Load(), f.failedReads.Load()
}
