package policy

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autoscale/internal/rl"
)

func testStore(t testing.TB, retain int) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), retain)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// ckWithQ builds a checkpoint whose single row carries a recognizable value,
// so generations can be told apart after reload.
func ckWithQ(t testing.TB, device string, q float64) *Checkpoint {
	t.Helper()
	snap := testSnapshot(t, 2, map[rl.State][]float64{"s": {q, 0}}, map[rl.State]int{"s": 1})
	ck, err := NewCheckpoint(device, "feedface00000000", snap)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func qOf(t testing.TB, ck *Checkpoint) float64 {
	t.Helper()
	ag, err := ck.Agent()
	if err != nil {
		t.Fatal(err)
	}
	return ag.Q("s", 0)
}

func TestStoreSaveNextAndLatest(t *testing.T) {
	st := testStore(t, 0)
	if _, err := st.Latest("Mi8Pro"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Latest: %v, want ErrNoCheckpoint", err)
	}
	for i, q := range []float64{1, 2, 3} {
		gen, err := st.SaveNext(ckWithQ(t, "Mi8Pro", q))
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(i+1) {
			t.Fatalf("generation %d assigned, want %d", gen, i+1)
		}
	}
	ck, err := st.Latest("Mi8Pro")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Generation != 3 || qOf(t, ck) != 3 {
		t.Fatalf("Latest = gen %d q %v, want gen 3 q 3", ck.Generation, qOf(t, ck))
	}
	if g := st.LatestGeneration("Mi8Pro"); g != 3 {
		t.Fatalf("LatestGeneration = %d, want 3", g)
	}
	history, err := st.History("Mi8Pro")
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 3 || history[0].Generation != 1 || history[2].Generation != 3 {
		t.Fatalf("history: %+v", history)
	}
	devices, err := st.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 1 || devices[0] != "Mi8Pro" {
		t.Fatalf("devices: %v", devices)
	}
}

func TestStoreStaleGenerationGuard(t *testing.T) {
	st := testStore(t, 0)
	ck := ckWithQ(t, "dev", 1)
	ck.Generation = 5
	if err := st.Save(ck); err != nil {
		t.Fatal(err)
	}
	for _, gen := range []uint64{5, 4, 1} {
		stale := ckWithQ(t, "dev", 9)
		stale.Generation = gen
		if err := st.Save(stale); !errors.Is(err, ErrStaleGeneration) {
			t.Fatalf("Save(gen %d) after gen 5: %v, want ErrStaleGeneration", gen, err)
		}
	}
	// The newer learning survives.
	ck6 := ckWithQ(t, "dev", 6)
	ck6.Generation = 6
	if err := st.Save(ck6); err != nil {
		t.Fatal(err)
	}
	latest, err := st.Latest("dev")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Generation != 6 || qOf(t, latest) != 6 {
		t.Fatalf("latest = gen %d q %v", latest.Generation, qOf(t, latest))
	}
}

func TestStoreRetention(t *testing.T) {
	st := testStore(t, 2)
	for q := 1.0; q <= 5; q++ {
		if _, err := st.SaveNext(ckWithQ(t, "dev", q)); err != nil {
			t.Fatal(err)
		}
	}
	history, err := st.History("dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 || history[0].Generation != 4 || history[1].Generation != 5 {
		t.Fatalf("retention kept: %+v", history)
	}
}

// TestStoreCorruptLatestFallsBack is the crash-recovery contract: a
// corrupted newest checkpoint is quarantined and the previous valid
// generation is served instead — never garbage, never a hard failure.
func TestStoreCorruptLatestFallsBack(t *testing.T) {
	st := testStore(t, 0)
	for q := 1.0; q <= 3; q++ {
		if _, err := st.SaveNext(ckWithQ(t, "dev", q)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt generation 3 on disk (overwrite the middle of the file).
	path := filepath.Join(st.Dir(), "dev", genFile(3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[len(data)/2:], "XXXXXXXXXXXXXXXX")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err := st.Latest("dev")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Generation != 2 || qOf(t, ck) != 2 {
		t.Fatalf("fallback = gen %d q %v, want gen 2 q 2", ck.Generation, qOf(t, ck))
	}
	if _, err := os.Stat(path + quarantineExt); err != nil {
		t.Errorf("corrupt file not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt file still live under its checkpoint name")
	}
	// A truncated-to-zero latest (torn write) behaves the same. The
	// quarantine freed generation 3's filename, so SaveNext reuses it.
	gen, err := st.SaveNext(ckWithQ(t, "dev", 4))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("SaveNext after quarantine assigned gen %d, want 3", gen)
	}
	empty := filepath.Join(st.Dir(), "dev", genFile(gen))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err = st.Latest("dev")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Generation != 2 {
		t.Fatalf("fallback past empty file = gen %d, want 2", ck.Generation)
	}
}

func TestStoreSanitizesDeviceNames(t *testing.T) {
	st := testStore(t, 0)
	device := "rack-1/phone:A é"
	if _, err := st.SaveNext(ckWithQ(t, device, 1)); err != nil {
		t.Fatal(err)
	}
	ck, err := st.Latest(device)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Device != device {
		t.Fatalf("device round-trip: %q", ck.Device)
	}
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.ContainsAny(e.Name(), "/:") {
			t.Fatalf("unsafe directory name %q", e.Name())
		}
	}
}

func TestStoreSweepsTempFiles(t *testing.T) {
	st := testStore(t, 0)
	dir := filepath.Join(st.Dir(), "dev")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A leftover from a crashed writer.
	leftover := filepath.Join(dir, tmpPrefix+"crashed"+ckptExt)
	if err := os.WriteFile(leftover, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveNext(ckWithQ(t, "dev", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatal("crashed temp file not swept")
	}
	// The leftover never counted as a checkpoint.
	if g := st.LatestGeneration("dev"); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
}
