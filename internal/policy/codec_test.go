package policy

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/crc32"
	"testing"

	"autoscale/internal/rl"
)

// testSnapshot builds a raw rl snapshot with the given rows and visits.
func testSnapshot(t testing.TB, actions int, q map[rl.State][]float64, visits map[rl.State]int) []byte {
	t.Helper()
	ag, err := rl.NewAgentFromTable(rl.DefaultConfig(), actions, q, visits)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ag.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testCk(t testing.TB, device string) *Checkpoint {
	t.Helper()
	snap := testSnapshot(t, 3,
		map[rl.State][]float64{"s1": {1, 2, 3}, "s2": {-1, 0, 1}},
		map[rl.State]int{"s1": 5, "s2": 2})
	ck, err := NewCheckpoint(device, "cafebabe00000000", snap)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestCodecRoundTrip(t *testing.T) {
	ck := testCk(t, "Mi8Pro")
	ck.Generation = 7
	ck.Sources = []string{"a", "b"}
	data, err := Encode(ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != "Mi8Pro" || got.Generation != 7 || got.ConfigHash != ck.ConfigHash {
		t.Fatalf("meta mangled: %+v", got.Meta)
	}
	if got.Actions != 3 || got.States != 2 || got.Meta.TotalVisits() != 7 {
		t.Fatalf("meta counts wrong: %+v", got.Meta)
	}
	ag, err := got.Agent()
	if err != nil {
		t.Fatal(err)
	}
	if q := ag.Q("s1", 2); q != 3 {
		t.Fatalf("payload Q(s1,2) = %v, want 3", q)
	}
	if v := ag.Visits("s2"); v != 2 {
		t.Fatalf("payload visits(s2) = %d, want 2", v)
	}
}

// TestDecodeRejectsEveryBitFlip flips every bit of a valid envelope, one at
// a time, and requires Decode to either fail or return a checkpoint
// byte-identical to the original: no single-bit corruption may ever load an
// altered table. (Flips inside JSON *key names* can still decode — Go's
// unmarshaler matches keys case-insensitively — but the CRC guarantees the
// body content is untouched, so such decodes must be exact.)
func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	orig := testCk(t, "Mi8Pro")
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mutated := append([]byte(nil), data...)
			mutated[i] ^= 1 << bit
			got, err := Decode(mutated)
			if err != nil {
				continue
			}
			if got.Device != orig.Device || got.ConfigHash != orig.ConfigHash ||
				got.Actions != orig.Actions || got.States != orig.States ||
				!bytes.Equal(got.Snapshot, orig.Snapshot) {
				t.Fatalf("bit flip at byte %d bit %d decoded to an ALTERED checkpoint", i, bit)
			}
		}
	}
}

// TestDecodeRejectsEveryTruncation cuts the envelope at every length and
// requires a loud failure — a torn write must never load as a smaller table.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	data, err := Encode(testCk(t, "Mi8Pro"))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(data))
		}
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	body, err := json.Marshal(fileBody{Meta: testCk(t, "x").Meta, Snapshot: testCk(t, "x").Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(fileEnvelope{Magic: Magic, Version: Version + 1,
		CRC32: crc32.ChecksumIEEE(body), Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(env); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

func TestDecodeNotEnvelope(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("garbage"),
		testSnapshot(t, 2, map[rl.State][]float64{"s": {1, 2}}, nil), // legacy raw snapshot
		[]byte(`{"magic":"WRONG","version":1,"crc32":0,"body":{}}`),
	} {
		if _, err := Decode(data); !errors.Is(err, ErrNotEnvelope) {
			t.Errorf("Decode(%.30q) = %v, want ErrNotEnvelope", data, err)
		}
	}
}

func TestDecodeTrailingData(t *testing.T) {
	data, err := Encode(testCk(t, "Mi8Pro"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, " {}"...)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing data: err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeMetaPayloadMismatch covers an envelope whose (CRC-valid) body
// lies about its payload: metadata action count disagreeing with the table.
func TestDecodeMetaPayloadMismatch(t *testing.T) {
	ck := testCk(t, "Mi8Pro")
	ck.Actions = 99
	data, err := Encode(ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("meta/payload mismatch: err = %v, want ErrCorrupt", err)
	}
}

// FuzzDecode asserts Decode never panics and never returns an unverifiable
// checkpoint, whatever bytes it is fed.
func FuzzDecode(f *testing.F) {
	valid, err := Encode(testCk(f, "Mi8Pro"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"magic":"ASPOLICY","version":1,"crc32":0,"body":{}}`))
	f.Add([]byte(`{"config":{},"actions":0,"q":{}}`))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must yield a restorable agent that matches
		// its own metadata.
		ag, err := ck.Agent()
		if err != nil {
			t.Fatalf("Decode accepted a checkpoint with unrestorable payload: %v", err)
		}
		if ag.NumActions() != ck.Actions {
			t.Fatalf("Decode accepted mismatched action counts: meta %d, payload %d",
				ck.Actions, ag.NumActions())
		}
	})
}
