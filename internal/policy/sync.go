package policy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"autoscale/internal/core"
)

// Node is one fleet member the Syncer manages: a named device and its live
// engine.
type Node struct {
	Device string
	Engine *core.Engine
}

// SyncConfig tunes a Syncer.
type SyncConfig struct {
	// Interval is the background sync period (default 30s).
	Interval time.Duration
	// MaxAttempts bounds save attempts per checkpoint, including the first
	// (default 3).
	MaxAttempts int
	// Backoff is the first retry delay; it doubles per attempt
	// (default 100ms).
	Backoff time.Duration
	// Sleep overrides the backoff wait (tests; default time.Sleep).
	Sleep func(time.Duration)
	// OnPass, when set, observes every completed sync pass (background and
	// synchronous alike) — the hook the serving tier uses to export sync
	// failure state into its metrics registry. Called outside the syncer's
	// lock, after the pass's failure accounting has been recorded.
	OnPass func(Report)
	// Unreachable, when set, reports whether a device is partitioned from
	// the sync plane right now: the syncer skips it (recording an
	// ErrPartitioned failure) while the device keeps serving traffic.
	Unreachable func(device string) bool
}

// ErrPartitioned marks a device the syncer could not reach this pass.
var ErrPartitioned = errors.New("policy: device partitioned from sync plane")

func (c SyncConfig) interval() time.Duration {
	if c.Interval <= 0 {
		return 30 * time.Second
	}
	return c.Interval
}

func (c SyncConfig) attempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

func (c SyncConfig) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.Backoff
}

func (c SyncConfig) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// SaveWithRetry saves a checkpoint through a sink, retrying transient store
// errors with exponential backoff. Staleness rejections are not retried:
// a newer generation on disk means someone else already persisted fresher
// learning, which is success from the fleet's point of view.
func SaveWithRetry(sink Sink, c *Checkpoint, cfg SyncConfig) (uint64, error) {
	var lastErr error
	delay := cfg.backoff()
	for attempt := 0; attempt < cfg.attempts(); attempt++ {
		if attempt > 0 {
			cfg.sleep(delay)
			delay *= 2
		}
		gen, err := sink.SaveNext(c)
		if err == nil {
			return gen, nil
		}
		if errors.Is(err, ErrStaleGeneration) {
			return 0, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("policy: save %s failed after %d attempts: %w",
		c.Device, cfg.attempts(), lastErr)
}

// Report summarizes one sync pass.
type Report struct {
	// Checkpointed lists devices whose tables were saved this pass.
	Checkpointed []string
	// MergedGroups counts the compatibility groups that produced a merged
	// fleet policy.
	MergedGroups int
	// WarmStarted lists devices seeded from the merged policy this pass.
	WarmStarted []string
	// Errs carries per-device persistence failures; the pass continues past
	// them so one sick device cannot stall the fleet.
	Errs []error
}

// Err joins the pass's failures (nil on a clean pass).
func (r Report) Err() error { return errors.Join(r.Errs...) }

// Syncer is the federation loop: each pass checkpoints every node's current
// Q-table, merges each compatibility group into a fleet policy checkpoint,
// and warm-starts nodes that have not learned anything yet (new or wiped
// devices) from their group's merged policy. Generation monotonicity is
// enforced by the store; save failures retry with backoff and are reported,
// never fatal.
type Syncer struct {
	sink  Sink
	nodes func() []Node
	cfg   SyncConfig

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	done    chan struct{}

	// Failure state, guarded by mu: how the sync plane has been doing.
	passes      uint64
	failures    uint64
	consecFails uint64
	lastErr     string
}

// SyncHealth is a point-in-time summary of the sync plane's failure state.
type SyncHealth struct {
	// Passes counts completed sync passes; Failures counts the ones that
	// reported at least one error.
	Passes, Failures uint64
	// ConsecutiveFailures counts failed passes since the last clean one —
	// the signal health endpoints alarm on.
	ConsecutiveFailures uint64
	// LastError is the most recent pass failure ("" after a clean pass).
	LastError string
}

// Health reports the syncer's current failure state.
func (s *Syncer) Health() SyncHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SyncHealth{
		Passes:              s.passes,
		Failures:            s.failures,
		ConsecutiveFailures: s.consecFails,
		LastError:           s.lastErr,
	}
}

// notePass records one pass's outcome and fires the OnPass hook.
func (s *Syncer) notePass(rep Report) {
	s.mu.Lock()
	s.passes++
	if err := rep.Err(); err != nil {
		s.failures++
		s.consecFails++
		s.lastErr = err.Error()
	} else {
		s.consecFails = 0
		s.lastErr = ""
	}
	s.mu.Unlock()
	if s.cfg.OnPass != nil {
		s.cfg.OnPass(rep)
	}
}

// NewSyncer builds a syncer over a checkpoint sink and a node source (called
// fresh every pass, so fleets may grow or shrink between passes).
func NewSyncer(sink Sink, nodes func() []Node, cfg SyncConfig) (*Syncer, error) {
	if sink == nil {
		return nil, errors.New("policy: syncer needs a sink")
	}
	if nodes == nil {
		return nil, errors.New("policy: syncer needs a node source")
	}
	return &Syncer{sink: sink, nodes: nodes, cfg: cfg}, nil
}

// SyncOnce runs one full pass synchronously and reports what happened.
func (s *Syncer) SyncOnce() Report {
	rep := s.syncOnce()
	s.notePass(rep)
	return rep
}

func (s *Syncer) syncOnce() Report {
	var rep Report
	type saved struct {
		node Node
		ck   *Checkpoint
	}
	groups := make(map[string][]saved)

	for _, n := range s.nodes() {
		if n.Engine == nil || n.Device == "" {
			continue
		}
		if s.cfg.Unreachable != nil && s.cfg.Unreachable(n.Device) {
			rep.Errs = append(rep.Errs, fmt.Errorf("sync %s: %w", n.Device, ErrPartitioned))
			continue
		}
		snap, err := n.Engine.SnapshotQTable()
		if err != nil {
			rep.Errs = append(rep.Errs, fmt.Errorf("policy: snapshot %s: %w", n.Device, err))
			continue
		}
		hash := n.Engine.ConfigHash()
		ck, err := NewCheckpoint(n.Device, hash, snap)
		if err != nil {
			rep.Errs = append(rep.Errs, err)
			continue
		}
		if _, err := SaveWithRetry(s.sink, ck, s.cfg); err != nil && !errors.Is(err, ErrStaleGeneration) {
			rep.Errs = append(rep.Errs, err)
			// The in-memory table is still mergeable even if persisting it
			// failed; keep it in the group.
		} else if err == nil {
			rep.Checkpointed = append(rep.Checkpointed, n.Device)
		}
		groups[hash] = append(groups[hash], saved{node: n, ck: ck})
	}

	for _, hash := range sortedGroupKeys(groups) {
		group := groups[hash]
		cks := make([]*Checkpoint, len(group))
		for i, g := range group {
			cks[i] = g.ck
		}
		merged, err := Merge(cks)
		if err != nil {
			rep.Errs = append(rep.Errs, err)
			continue
		}
		if merged.States > 0 {
			if _, err := SaveWithRetry(s.sink, merged, s.cfg); err != nil && !errors.Is(err, ErrStaleGeneration) {
				rep.Errs = append(rep.Errs, err)
			} else if err == nil {
				rep.MergedGroups++
			}
		}

		// Warm-start: a node that has never made a decision inherits the
		// fleet's merged experience instead of starting from random rows.
		for _, g := range group {
			if merged.States == 0 || g.node.Engine.Agent().TotalVisits() > 0 {
				continue
			}
			if err := g.node.Engine.RestoreQTable(merged.Snapshot); err != nil {
				rep.Errs = append(rep.Errs, fmt.Errorf("policy: warm-start %s: %w", g.node.Device, err))
				continue
			}
			rep.WarmStarted = append(rep.WarmStarted, g.node.Device)
		}
	}
	return rep
}

func sortedGroupKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Start launches the background loop (one pass every Interval) until Stop.
// Starting a started syncer is a no-op.
func (s *Syncer) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run(s.stop, s.done)
}

func (s *Syncer) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(s.cfg.interval())
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.SyncOnce()
		}
	}
}

// Stop halts the background loop and waits for the in-flight pass to finish.
// Stopping a stopped (or never started) syncer is a no-op.
func (s *Syncer) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}
