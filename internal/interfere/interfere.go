// Package interfere models on-device interference from co-running
// applications (Section III-B of the paper). Each application produces a
// time series of CPU-utilization / memory-usage loads; the performance model
// converts those into latency and throttling penalties, and AutoScale
// observes them as the SCo_CPU / SCo_MEM state features.
package interfere

import (
	"math"

	"autoscale/internal/exec"
)

// Load is the resource pressure exerted by co-running applications at one
// inference: fractions (0..1) of the device's CPU capacity and memory
// bandwidth consumed by everything except the inference itself.
type Load struct {
	CPUUtil float64
	MemUtil float64
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Clamped returns the load with both components clamped to [0,1].
func (l Load) Clamped() Load {
	return Load{CPUUtil: clamp01(l.CPUUtil), MemUtil: clamp01(l.MemUtil)}
}

// App generates the interference load sample observed at each inference.
type App interface {
	// Name identifies the workload (used in environment descriptions).
	Name() string
	// Next returns the load at the next inference request.
	Next() Load
}

// none is the empty co-runner (environment S1).
type none struct{}

func (none) Name() string { return "none" }
func (none) Next() Load   { return Load{} }

// None returns the no-co-runner app.
func None() App { return none{} }

// fixedApp emits a constant load (the paper's synthetic hogs, environments
// S2 and S3, hold CPU and memory usage constant).
type fixedApp struct {
	name string
	load Load
}

func (f *fixedApp) Name() string { return f.name }
func (f *fixedApp) Next() Load   { return f.load }

// Fixed returns an app with a constant load.
func Fixed(name string, cpu, mem float64) App {
	return &fixedApp{name: name, load: Load{CPUUtil: cpu, MemUtil: mem}.Clamped()}
}

// CPUHog returns the CPU-intensive synthetic co-runner of environment S2:
// high CPU pressure, little memory traffic.
func CPUHog() App { return Fixed("cpu-hog", 0.85, 0.10) }

// MemHog returns the memory-intensive synthetic co-runner of environment S3:
// saturating memory traffic with modest CPU use.
func MemHog() App { return Fixed("mem-hog", 0.20, 0.85) }

// jitterApp perturbs a base load with bounded Gaussian jitter, modelling
// lightly varying real applications.
type jitterApp struct {
	name     string
	base     Load
	cpuSigma float64
	memSigma float64
	rng      *exec.Rand
}

func (j *jitterApp) Name() string { return j.name }

func (j *jitterApp) Next() Load {
	return Load{
		CPUUtil: j.base.CPUUtil + j.cpuSigma*j.rng.NormFloat64(),
		MemUtil: j.base.MemUtil + j.memSigma*j.rng.NormFloat64(),
	}.Clamped()
}

// MusicPlayer returns the D1 co-runner: a real-world music player with a
// small, steady decode load. Its jitter draws come from the context's
// "interfere.music" stream.
func MusicPlayer(ctx *exec.Context) App {
	return &jitterApp{
		name:     "music-player",
		base:     Load{CPUUtil: 0.12, MemUtil: 0.15},
		cpuSigma: 0.03, memSigma: 0.03,
		rng: ctx.Stream("interfere.music"),
	}
}

// browser replays a scripted interaction trace: idle reading punctuated by
// page loads and scrolling bursts, as the paper generates with an automatic
// input generator (Section V-B). The phase sequence is deterministic for a
// given context.
type browser struct {
	rng   *exec.Rand
	phase int // remaining samples in the current phase
	burst bool
}

func (b *browser) Name() string { return "web-browser" }

func (b *browser) Next() Load {
	if b.phase == 0 {
		b.burst = !b.burst
		if b.burst {
			b.phase = 2 + b.rng.Intn(4) // page-load burst
		} else {
			b.phase = 4 + b.rng.Intn(8) // reading/scrolling
		}
	}
	b.phase--
	if b.burst {
		return Load{
			CPUUtil: 0.55 + 0.15*b.rng.Float64(),
			MemUtil: 0.45 + 0.20*b.rng.Float64(),
		}.Clamped()
	}
	return Load{
		CPUUtil: 0.15 + 0.10*b.rng.Float64(),
		MemUtil: 0.25 + 0.10*b.rng.Float64(),
	}.Clamped()
}

// WebBrowser returns the D2 co-runner, drawing its interaction trace from
// the context's "interfere.browser" stream.
func WebBrowser(ctx *exec.Context) App {
	return &browser{rng: ctx.Stream("interfere.browser")}
}

// alternating switches between a list of apps every period samples
// (environment D4: varying co-running apps, music player to web browser).
type alternating struct {
	name   string
	apps   []App
	period int
	n      int
}

func (a *alternating) Name() string { return a.name }

func (a *alternating) Next() Load {
	app := a.apps[(a.n/a.period)%len(a.apps)]
	a.n++
	return app.Next()
}

// Alternating returns an app that cycles through apps, switching every
// period samples. Period values below 1 are raised to 1.
func Alternating(name string, period int, apps ...App) App {
	if period < 1 {
		period = 1
	}
	if len(apps) == 0 {
		apps = []App{None()}
	}
	return &alternating{name: name, apps: apps, period: period}
}

// VaryingApps returns the D4 co-runner: the music player and the web browser
// in alternation. The two constituents draw from independent named streams
// of the same context, so they never share (or collide on) a seed.
func VaryingApps(ctx *exec.Context) App {
	return Alternating("varying-apps", 25, MusicPlayer(ctx), WebBrowser(ctx))
}

// Penalties converts a load into the simulator's slowdown factors.
//
// A CPU co-runner steals cycles from inference on the CPU (the inference
// time-shares what remains) and raises sustained utilization (feeding the
// thermal model); a memory co-runner slows every engine because all of them
// share the DRAM controller (Section III-B: "energy efficiency of all
// on-device processors is degraded").
type Penalties struct {
	// CPUShare is the fraction of CPU throughput left for inference.
	CPUShare float64
	// MemSlowdown multiplies memory-traffic time on every engine.
	MemSlowdown float64
	// CPUComputeSlowdown multiplies CPU compute time under memory
	// pressure (cache thrashing and DRAM stalls hit compute too).
	CPUComputeSlowdown float64
	// CoprocSlowdown multiplies compute time on GPU/DSP (DMA contention).
	CoprocSlowdown float64
	// SustainedCPUUtil is the total CPU pressure seen by the thermal
	// governor while inference runs alongside the co-runner.
	SustainedCPUUtil float64
}

// PenaltiesFor derives the slowdown factors from a load.
func PenaltiesFor(l Load) Penalties {
	l = l.Clamped()
	return Penalties{
		// The inference thread contends for cores: an 85%-CPU co-runner
		// leaves a bit under half of the machine's effective throughput.
		CPUShare: math.Max(0.25, 1-0.65*l.CPUUtil),
		// Memory pressure lengthens every byte moved and stalls compute
		// on every engine (Section III-B: "the energy efficiency of all
		// on-device processors is degraded").
		MemSlowdown:        1 + 1.2*l.MemUtil,
		CPUComputeSlowdown: 1 + 1.5*l.MemUtil,
		CoprocSlowdown:     1 + 1.5*l.MemUtil,
		SustainedCPUUtil:   math.Min(1, l.CPUUtil+0.5),
	}
}
