package interfere

import (
	"testing"
	"testing/quick"

	"autoscale/internal/exec"
)

func TestLoadClamping(t *testing.T) {
	l := Load{CPUUtil: 1.5, MemUtil: -0.5}.Clamped()
	if l.CPUUtil != 1 || l.MemUtil != 0 {
		t.Errorf("Clamped = %+v", l)
	}
}

func TestNone(t *testing.T) {
	app := None()
	if app.Name() != "none" {
		t.Error("name wrong")
	}
	for i := 0; i < 5; i++ {
		if l := app.Next(); l.CPUUtil != 0 || l.MemUtil != 0 {
			t.Fatal("None must emit zero load")
		}
	}
}

func TestHogs(t *testing.T) {
	cpu := CPUHog().Next()
	if cpu.CPUUtil < 0.7 || cpu.MemUtil > 0.3 {
		t.Errorf("CPUHog load = %+v", cpu)
	}
	mem := MemHog().Next()
	if mem.MemUtil < 0.7 || mem.CPUUtil > 0.3 {
		t.Errorf("MemHog load = %+v", mem)
	}
	// Hogs are constant (static environments S2/S3).
	h := CPUHog()
	first := h.Next()
	for i := 0; i < 10; i++ {
		if h.Next() != first {
			t.Fatal("hog load must be constant")
		}
	}
}

func TestAppsStayInRange(t *testing.T) {
	apps := []App{MusicPlayer(exec.NewRoot(1)), WebBrowser(exec.NewRoot(2)), VaryingApps(exec.NewRoot(3))}
	for _, app := range apps {
		for i := 0; i < 500; i++ {
			l := app.Next()
			if l.CPUUtil < 0 || l.CPUUtil > 1 || l.MemUtil < 0 || l.MemUtil > 1 {
				t.Fatalf("%s emitted out-of-range load %+v", app.Name(), l)
			}
		}
	}
}

func TestMusicPlayerIsLight(t *testing.T) {
	app := MusicPlayer(exec.NewRoot(4))
	var cpuSum float64
	const n = 500
	for i := 0; i < n; i++ {
		cpuSum += app.Next().CPUUtil
	}
	if avg := cpuSum / n; avg > 0.25 {
		t.Errorf("music player mean CPU = %v, want light", avg)
	}
}

func TestWebBrowserIsBursty(t *testing.T) {
	app := WebBrowser(exec.NewRoot(5))
	var lo, hi int
	for i := 0; i < 500; i++ {
		l := app.Next()
		if l.CPUUtil > 0.5 {
			hi++
		}
		if l.CPUUtil < 0.3 {
			lo++
		}
	}
	if hi == 0 || lo == 0 {
		t.Errorf("browser not bursty: hi=%d lo=%d", hi, lo)
	}
}

func TestAlternatingSwitches(t *testing.T) {
	a := Alternating("alt", 3, Fixed("a", 0.1, 0.1), Fixed("b", 0.9, 0.9))
	var seq []float64
	for i := 0; i < 12; i++ {
		seq = append(seq, a.Next().CPUUtil)
	}
	for i := 0; i < 3; i++ {
		if seq[i] != 0.1 || seq[i+3] != 0.9 || seq[i+6] != 0.1 {
			t.Fatalf("alternation broken: %v", seq)
		}
	}
}

func TestAlternatingDegenerate(t *testing.T) {
	a := Alternating("empty", 0)
	if l := a.Next(); l.CPUUtil != 0 {
		t.Error("empty alternating must behave like None")
	}
}

func TestDeterministicSeeds(t *testing.T) {
	a, b := WebBrowser(exec.NewRoot(7)), WebBrowser(exec.NewRoot(7))
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed browsers must agree")
		}
	}
}

func TestPenaltiesNoLoad(t *testing.T) {
	p := PenaltiesFor(Load{})
	if p.CPUShare != 1 || p.MemSlowdown != 1 || p.CPUComputeSlowdown != 1 || p.CoprocSlowdown != 1 {
		t.Errorf("no-load penalties = %+v", p)
	}
}

func TestPenaltiesMonotone(t *testing.T) {
	prev := PenaltiesFor(Load{})
	for u := 0.1; u <= 1.0; u += 0.1 {
		p := PenaltiesFor(Load{CPUUtil: u, MemUtil: u})
		if p.CPUShare > prev.CPUShare {
			t.Errorf("CPUShare increased at u=%v", u)
		}
		if p.MemSlowdown < prev.MemSlowdown || p.CoprocSlowdown < prev.CoprocSlowdown ||
			p.CPUComputeSlowdown < prev.CPUComputeSlowdown {
			t.Errorf("slowdowns decreased at u=%v", u)
		}
		prev = p
	}
}

func TestPenaltiesBoundsProperty(t *testing.T) {
	f := func(cu, mu float64) bool {
		p := PenaltiesFor(Load{CPUUtil: cu, MemUtil: mu})
		return p.CPUShare >= 0.25 && p.CPUShare <= 1 &&
			p.MemSlowdown >= 1 && p.CoprocSlowdown >= 1 &&
			p.CPUComputeSlowdown >= 1 &&
			p.SustainedCPUUtil >= 0 && p.SustainedCPUUtil <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPenaltiesHogShapes(t *testing.T) {
	// Section III-B shapes: a CPU hog mostly hurts the CPU path; a memory
	// hog hurts everything.
	cpuHog := PenaltiesFor(CPUHog().Next())
	memHog := PenaltiesFor(MemHog().Next())
	if cpuHog.CPUShare > 0.5 {
		t.Errorf("CPU hog leaves CPUShare %v, want significant contention", cpuHog.CPUShare)
	}
	if cpuHog.CoprocSlowdown > 1.2 {
		t.Errorf("CPU hog should barely touch co-processors, got %v", cpuHog.CoprocSlowdown)
	}
	if memHog.CoprocSlowdown < 1.5 || memHog.CPUComputeSlowdown < 1.5 {
		t.Errorf("memory hog must slow all engines: %+v", memHog)
	}
}
