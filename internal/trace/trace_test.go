package trace

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Seq: 0, Model: "MobileNet v1", State: "0|0|0|0|0|0|1|1", Target: "local/DSP@0/INT8",
			Location: "local", LatencyS: 0.008, EnergyJ: 0.024, Reward: -19,
			Phases: map[string]float64{"execute": 0.008}},
		{Seq: 1, Model: "MobileBERT", Target: "cloud/GPU/FP32", Location: "cloud",
			LatencyS: 0.031, EnergyJ: 0.076, Reward: -60, QoSViolated: true},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

// TestWriterConcurrent is the -race regression test for the gateway's shared
// audit trail: many workers appending to one Writer must not interleave
// records or lose counts.
func TestWriterConcurrent(t *testing.T) {
	const workers, each = 10, 200
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.Append(Record{Seq: g*each + i, Model: "M", Location: "local",
					LatencyS: 0.01, EnergyJ: 0.02}); err != nil {
					t.Error(err)
					return
				}
				_ = w.Count()
			}
		}(g)
	}
	wg.Wait()
	if w.Count() != workers*each {
		t.Fatalf("count = %d, want %d", w.Count(), workers*each)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("concurrent appends corrupted the log: %v", err)
	}
	if len(recs) != workers*each {
		t.Fatalf("log has %d records, want %d", len(recs), workers*each)
	}
	seen := make(map[int]bool, len(recs))
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

// TestRecordingPolicyConcurrent exercises the gateway's TracedPolicy path —
// one engine, one writer, many callers — under -race.
func TestRecordingPolicyConcurrent(t *testing.T) {
	e, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), 1), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p := &RecordingPolicy{Engine: e, Out: NewWriter(&buf)}
	m := dnn.MustByName("MobileNet v1")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := p.Run(m, c); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := p.Out.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*each {
		t.Fatalf("trace has %d records, want %d", len(recs), workers*each)
	}
	seen := make(map[int]bool, len(recs))
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{\"seq\":0}\nnot json\n")); err == nil {
		t.Error("garbage line should fail")
	}
	got, err := ReadAll(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Error("empty trace must read cleanly")
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Model: "A", Location: "local", LatencyS: 0.010, EnergyJ: 0.02},
		{Model: "A", Location: "cloud", LatencyS: 0.030, EnergyJ: 0.06, QoSViolated: true},
		{Model: "B", Location: "local", LatencyS: 0.020, EnergyJ: 0.04},
		{Model: "B", Location: "local", LatencyS: 0.020, EnergyJ: 0.04},
	}
	s := Summarize(recs)
	if s.Records != 4 {
		t.Errorf("records = %d", s.Records)
	}
	if s.ViolationRatio != 0.25 {
		t.Errorf("violations = %v", s.ViolationRatio)
	}
	if s.ByLocation["local"] != 0.75 || s.ByLocation["cloud"] != 0.25 {
		t.Errorf("location shares = %v", s.ByLocation)
	}
	if s.ByModel["A"] != 2 || s.ByModel["B"] != 2 {
		t.Errorf("model counts = %v", s.ByModel)
	}
	if s.TotalEnergyJ != 0.16 {
		t.Errorf("energy = %v", s.TotalEnergyJ)
	}
	if s.MeanLatencyS != 0.02 {
		t.Errorf("mean latency = %v", s.MeanLatencyS)
	}
	empty := Summarize(nil)
	if empty.Records != 0 || empty.ViolationRatio != 0 {
		t.Error("empty summary must be zero")
	}
}

func TestRecordingPolicy(t *testing.T) {
	e, err := core.NewEngine(sim.NewWorld(soc.Mi8Pro(), 1), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p := &RecordingPolicy{Engine: e, Out: NewWriter(&buf)}
	if p.Name() != "AutoScale (traced)" {
		t.Error("name wrong")
	}
	m := dnn.MustByName("MobileNet v1")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	for i := 0; i < 25; i++ {
		if _, err := p.Run(m, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Out.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Fatalf("trace has %d records, want 25", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Model != m.Name || r.State == "" || r.Target == "" {
			t.Fatalf("record %d incomplete: %+v", i, r)
		}
		if r.EnergyJ <= 0 || r.LatencyS <= 0 {
			t.Fatalf("record %d lacks measurements", i)
		}
	}
	sum := Summarize(recs)
	if sum.ByModel[m.Name] != 25 {
		t.Error("summary model count wrong")
	}
}

// TestSchemaV1Compat pins the schema-versioning contract: records written
// before the v2 shard/tenant fields existed (no "v" key) must keep parsing
// and summarizing unchanged, while v2 records round-trip their attribution.
func TestSchemaV1Compat(t *testing.T) {
	v1 := `{"seq":0,"model":"MobileNet v1","state":"0|0|0|0|0|0|1|1","target":"local/CPU@0/FP32","location":"local","latency_s":0.02,"energy_j":0.05,"reward":-40,"qos_violated":false}
{"seq":1,"model":"MobileNet v1","state":"0|0|0|0|0|0|1|1","target":"cloud/GPU/FP32","location":"cloud","latency_s":0.09,"energy_j":0.02,"reward":-20,"qos_violated":true,"device":"Mi8Pro"}
`
	recs, err := ReadAll(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 trace no longer parses: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("v1 trace yields %d records", len(recs))
	}
	for i, r := range recs {
		if r.V != 0 {
			t.Errorf("record %d: v1 record reports schema %d", i, r.V)
		}
		if r.Shard != "" || r.Tenant != "" {
			t.Errorf("record %d: v1 record grew attribution %q/%q", i, r.Shard, r.Tenant)
		}
	}
	sum := Summarize(recs)
	if sum.Records != 2 || sum.ViolationRatio != 0.5 {
		t.Errorf("v1 summary drifted: %+v", sum)
	}

	// v2 records carry shard/tenant through a write-read cycle, and the
	// version stamp survives.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := Record{V: SchemaV, Seq: 0, Model: "MobileNet v1", Target: "local/CPU@0/FP32",
		Location: "local", LatencyS: 0.01, EnergyJ: 0.02, Reward: -10,
		Device: "lane-0", Shard: "shard-1", Tenant: "gold"}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].V != SchemaV || got[0].Shard != "shard-1" || got[0].Tenant != "gold" {
		t.Fatalf("v2 attribution lost in round trip: %+v", got)
	}
}

// TestSchemaV4Compat pins the v4 contract: v1-v3 fixtures keep parsing
// unchanged with TraceID zero, and a v4 record round-trips its trace link.
func TestSchemaV4Compat(t *testing.T) {
	fixtures := []struct {
		name, raw string
		wantV     int
	}{
		{"v1", `{"seq":0,"model":"MobileNet v1","state":"0|0|0|0|0|0|1|1","target":"local/CPU@0/FP32","location":"local","latency_s":0.02,"energy_j":0.05,"reward":-40,"qos_violated":false}`, 0},
		{"v2", `{"v":2,"seq":1,"model":"ResNet50 v1","state":"1|0|0|0|0|0|1|1","target":"edge/GPU/FP16","location":"edge","latency_s":0.04,"energy_j":0.03,"reward":-25,"qos_violated":false,"device":"lane-0","shard":"shard-1","tenant":"gold"}`, 2},
		{"v3", `{"v":3,"seq":2,"model":"Inception v4","state":"2|0|0|0|0|0|1|1","target":"cloud/GPU/FP32","location":"cloud","latency_s":0.08,"energy_j":0.02,"reward":-18,"qos_violated":true,"vwait_s":0.005,"phases":{"execute":0.08}}`, 3},
	}
	for _, fx := range fixtures {
		recs, err := ReadAll(strings.NewReader(fx.raw + "\n"))
		if err != nil {
			t.Fatalf("%s fixture no longer parses: %v", fx.name, err)
		}
		if len(recs) != 1 {
			t.Fatalf("%s fixture yields %d records", fx.name, len(recs))
		}
		r := recs[0]
		if r.V != fx.wantV {
			t.Errorf("%s fixture reports schema %d, want %d", fx.name, r.V, fx.wantV)
		}
		if r.TraceID != 0 {
			t.Errorf("%s fixture grew a trace link %d", fx.name, r.TraceID)
		}
	}
	// The v3 fixture's deterministic extras must survive untouched.
	recs, _ := ReadAll(strings.NewReader(fixtures[2].raw + "\n"))
	if recs[0].VWaitS != 0.005 || recs[0].Phases["execute"] != 0.08 {
		t.Fatalf("v3 fields drifted: %+v", recs[0])
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := Record{V: SchemaV, Seq: 3, Model: "MobileNet v1", Target: "local/CPU@0/FP32",
		Location: "local", LatencyS: 0.01, EnergyJ: 0.02, Reward: -10, TraceID: 42}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].V != 4 || got[0].TraceID != 42 {
		t.Fatalf("v4 trace link lost in round trip: %+v", got)
	}
}
