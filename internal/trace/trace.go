// Package trace records and replays AutoScale decision streams as JSON
// Lines. A deployed scheduler wants an audit trail — which target served
// each request, what it cost, whether QoS held — that survives the process
// and can be summarized offline; this package provides the writer, reader
// and summarizer, and the engine's Decision converts straight into a Record.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/sim"
)

// SchemaV is the current record schema version. Version 2 added the Shard
// and Tenant attribution fields for the cluster-scale routing tier; version
// 3 added VWaitS, the virtual queue wait of arrival-stamped requests;
// version 4 added TraceID, linking the audit record to its causal span tree
// in the tracez plane. Records without a "v" field are version 1; every
// earlier-version record is a valid current-version record with the new
// fields zero, so old traces keep parsing and summarizing unchanged.
const SchemaV = 4

// Record is one scheduled inference, flattened for the log.
type Record struct {
	// V is the record schema version (see SchemaV). Zero means version 1 —
	// a record written before the field existed.
	V int `json:"v,omitempty"`
	// Seq is the request sequence number within the trace.
	Seq int `json:"seq"`
	// Model is the network name.
	Model string `json:"model"`
	// State is the Q-table state key observed (Table I bins).
	State string `json:"state"`
	// Target is the executed action (e.g. "local/DSP@0/INT8").
	Target string `json:"target"`
	// Location is the coarse execution location.
	Location string `json:"location"`
	// LatencyS, EnergyJ and Reward are the measured outcome.
	LatencyS float64 `json:"latency_s"`
	EnergyJ  float64 `json:"energy_j"`
	Reward   float64 `json:"reward"`
	// QoSViolated / AccuracyMissed flag constraint misses.
	QoSViolated    bool `json:"qos_violated"`
	AccuracyMissed bool `json:"accuracy_missed,omitempty"`
	// Device is the serving worker (gateway traces only).
	Device string `json:"device,omitempty"`
	// Shard is the gateway shard that served the request (routing-tier
	// traces only), so per-request phase decomposition attributes latency to
	// the shard that produced it. Tenant is the fairness class the request
	// was admitted under. Both are schema v2 fields.
	Shard  string `json:"shard,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Outage / Retries / Hedged / Degraded describe the resilience path a
	// gateway request took: a simulated offload outage, the offload retries
	// it triggered, whether a local hedge leg raced the remote, and whether
	// the worker was serving with a breaker open.
	Outage   bool `json:"outage,omitempty"`
	Retries  int  `json:"retries,omitempty"`
	Hedged   bool `json:"hedged,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// WastedJ is the energy burned on failed or superseded offload
	// attempts, already included in EnergyJ.
	WastedJ float64 `json:"wasted_j,omitempty"`
	// VWaitS is the request's virtual queue wait (lane clock minus arrival
	// stamp at execution start) — deterministic, so it stays in the
	// byte-identical replay surface. Zero for unstamped requests. Schema v3.
	VWaitS float64 `json:"vwait_s,omitempty"`
	// Phases decomposes the request's execution into per-phase seconds
	// (obs.Phases names the keys). Only deterministic virtual-clock legs are
	// recorded — wall-clock waits stay out so replayed traces stay
	// byte-identical. Absent for records without phase instrumentation.
	Phases map[string]float64 `json:"phases,omitempty"`
	// TraceID links this record to its span tree in the tracez causal
	// tracing plane (the /traces admin endpoints). Zero for untraced
	// requests. Schema v4.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// FromDecision flattens an engine decision into a Record.
func FromDecision(seq int, model string, d core.Decision) Record {
	return Record{
		V:              SchemaV,
		Seq:            seq,
		Model:          model,
		State:          string(d.State),
		Target:         d.Target.String(),
		Location:       d.Target.Location.String(),
		LatencyS:       d.Measurement.LatencyS,
		EnergyJ:        d.Measurement.EnergyJ,
		Reward:         d.Reward,
		QoSViolated:    d.QoSViolated,
		AccuracyMissed: d.AccuracyMissed,
		WastedJ:        d.Measurement.WastedJ,
	}
}

// Writer appends records as JSON Lines. It is safe for concurrent use: a
// gateway's workers all log through one audit trail, so Append serializes
// internally and records never interleave mid-line.
//
// Write errors are sticky: once the underlying writer fails, every later
// Append, Flush and Close reports the first failure, so a trace whose tail
// was dropped can never pass for complete — the gateway surfaces the error
// at Shutdown instead of silently losing the audit tail.
type Writer struct {
	mu  sync.Mutex
	dst io.Writer
	w   *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{dst: w, w: bw, enc: json.NewEncoder(bw)}
}

// Append writes one record.
func (t *Writer) Append(r Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.enc.Encode(r); err != nil {
		t.err = fmt.Errorf("trace: append: %w", err)
		return t.err
	}
	t.n++
	return nil
}

// AppendBatch writes a slice of records under one lock acquisition — the
// gateway's workers buffer records per request batch and drain them here,
// so a loaded trace pays the writer's mutex once per batch instead of once
// per record. Records land contiguously: no other worker's records can
// interleave inside a batch. On a write error the batch stops at the
// failing record and the error sticks, exactly as if the records had been
// appended one at a time.
func (t *Writer) AppendBatch(recs []Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	for i := range recs {
		if err := t.enc.Encode(recs[i]); err != nil {
			t.err = fmt.Errorf("trace: append: %w", err)
			return t.err
		}
		t.n++
	}
	return nil
}

// Count returns the number of records appended.
func (t *Writer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the sticky write error, if any.
func (t *Writer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush drains the buffer to the underlying writer. It reports the first
// error the writer ever hit, so a final Flush is a completeness check for
// the whole trace, not just the buffered tail.
func (t *Writer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Writer) flushLocked() error {
	if t.err != nil {
		return t.err
	}
	if err := t.w.Flush(); err != nil {
		t.err = fmt.Errorf("trace: flush: %w", err)
	}
	return t.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes it.
// Like Flush it surfaces the sticky error; a failed close also sticks, and
// repeated Closes report the same result.
func (t *Writer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	flushErr := t.flushLocked()
	if c, ok := t.dst.(io.Closer); ok {
		t.dst = nil // close once
		if err := c.Close(); err != nil && t.err == nil {
			t.err = fmt.Errorf("trace: close: %w", err)
		}
	}
	if flushErr != nil {
		return flushErr
	}
	return t.err
}

// ReadAll decodes a JSON Lines trace.
func ReadAll(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// Summary aggregates a trace.
type Summary struct {
	Records        int
	TotalEnergyJ   float64
	MeanLatencyS   float64
	ViolationRatio float64
	// ByLocation is the decision share per execution location.
	ByLocation map[string]float64
	// ByModel is the record count per model.
	ByModel map[string]int
}

// Summarize computes the aggregate view of a trace.
func Summarize(records []Record) Summary {
	s := Summary{
		ByLocation: make(map[string]float64),
		ByModel:    make(map[string]int),
	}
	if len(records) == 0 {
		return s
	}
	var latency float64
	var viol int
	for _, r := range records {
		s.TotalEnergyJ += r.EnergyJ
		latency += r.LatencyS
		if r.QoSViolated {
			viol++
		}
		s.ByLocation[r.Location]++
		s.ByModel[r.Model]++
	}
	s.Records = len(records)
	s.MeanLatencyS = latency / float64(len(records))
	s.ViolationRatio = float64(viol) / float64(len(records))
	for loc := range s.ByLocation {
		s.ByLocation[loc] /= float64(len(records))
	}
	return s
}

// RecordingPolicy adapts an engine to the sched.Policy interface while
// appending every decision to a trace. Like the Writer it wraps, it is safe
// for concurrent use; sequence numbers are unique but records may land in
// the log out of sequence order under concurrency.
type RecordingPolicy struct {
	Engine *core.Engine
	Out    *Writer
	seq    atomic.Int64
}

// Name implements sched.Policy.
func (p *RecordingPolicy) Name() string { return "AutoScale (traced)" }

// Run implements sched.Policy: one engine step, recorded.
func (p *RecordingPolicy) Run(m *dnn.Model, c sim.Conditions) (sim.Measurement, error) {
	d, err := p.Engine.RunInference(m, c)
	if err != nil {
		return sim.Measurement{}, err
	}
	rec := FromDecision(int(p.seq.Add(1)-1), m.Name, d)
	if err := p.Out.Append(rec); err != nil {
		return sim.Measurement{}, err
	}
	return d.Measurement, nil
}
