package trace

import (
	"errors"
	"strings"
	"testing"
)

// failAfterWriter accepts n bytes, then fails every write. closeErr, when
// set, is returned by Close.
type failAfterWriter struct {
	n        int
	written  int
	failErr  error
	closeErr error
	closed   int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, w.failErr
	}
	w.written += len(p)
	return len(p), nil
}

func (w *failAfterWriter) Close() error {
	w.closed++
	return w.closeErr
}

func TestWriterStickyFlushError(t *testing.T) {
	sink := &failAfterWriter{n: 0, failErr: errors.New("disk full")}
	w := NewWriter(sink)
	// The record fits the bufio buffer, so Append succeeds...
	if err := w.Append(Record{Seq: 1, Model: "m"}); err != nil {
		t.Fatalf("buffered append failed early: %v", err)
	}
	// ...and the failure surfaces at Flush, where Shutdown checks it.
	err := w.Flush()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush = %v, want the underlying write error", err)
	}
	// The error is sticky: later appends and flushes refuse with the same
	// failure instead of pretending the trace is intact.
	if err2 := w.Append(Record{Seq: 2}); !errors.Is(err2, err) && err2.Error() != err.Error() {
		t.Fatalf("Append after failure = %v, want sticky %v", err2, err)
	}
	if err2 := w.Flush(); err2.Error() != err.Error() {
		t.Fatalf("re-Flush = %v, want sticky %v", err2, err)
	}
	if w.Err() == nil {
		t.Fatal("Err() lost the sticky error")
	}
	// Close still reports the failure too.
	if err2 := w.Close(); err2 == nil || !strings.Contains(err2.Error(), "disk full") {
		t.Fatalf("Close = %v, want flush failure", err2)
	}
}

func TestWriterCloseClosesOnceAndSurfacesCloseError(t *testing.T) {
	sink := &failAfterWriter{n: 1 << 20, closeErr: errors.New("fsync lost")}
	w := NewWriter(sink)
	if err := w.Append(Record{Seq: 1, Model: "m"}); err != nil {
		t.Fatal(err)
	}
	err := w.Close()
	if err == nil || !strings.Contains(err.Error(), "fsync lost") {
		t.Fatalf("Close = %v, want the close error", err)
	}
	if sink.closed != 1 {
		t.Fatalf("underlying writer closed %d times", sink.closed)
	}
	// A second Close must not close the sink again but keeps reporting.
	if err2 := w.Close(); err2 == nil {
		t.Fatal("second Close forgot the error")
	}
	if sink.closed != 1 {
		t.Fatalf("second Close re-closed the sink (%d)", sink.closed)
	}
	if sink.written == 0 {
		t.Fatal("Close did not flush the buffered record")
	}
}

func TestWriterCloseWithoutCloserJustFlushes(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := w.Append(Record{Seq: 1, Model: "m"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close over a plain writer = %v", err)
	}
	if !strings.Contains(sb.String(), `"model":"m"`) {
		t.Fatalf("record not flushed: %q", sb.String())
	}
}
