package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/serve"
)

func adminGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestRouterAdmin scrapes a sharded deployment's admin endpoint: /shards must
// document every shard and tenant queue, and /metrics must serve the merged
// per-shard registries plus the router's own series.
func TestRouterAdmin(t *testing.T) {
	gwA := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{})
	gwB := testShard(t, "shard-b", []string{"lane-b"}, 2, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gwA}, {"shard-b", gwB}}, Config{
		Tenants: []Tenant{{"gold", 4}, {"silver", 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background()) //nolint:errcheck

	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 8; i++ {
		if r, err := rt.Do(serve.Request{Model: m, Conditions: conds(), Tenant: "gold"}); err != nil || r.Status != serve.StatusServed {
			t.Fatalf("request %d: %v %+v", i, err, r)
		}
	}

	adm, err := serve.ServeAdminSource(rt, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close() //nolint:errcheck
	base := "http://" + adm.Addr()

	// /shards: per-shard lifecycle rows plus tenant fairness queues.
	code, body := adminGet(t, base+"/shards")
	if code != http.StatusOK {
		t.Fatalf("/shards status %d: %s", code, body)
	}
	var doc struct {
		Shards  []serve.ShardStatus       `json:"shards"`
		Tenants []serve.TenantQueueStatus `json:"tenants"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/shards not JSON: %v\n%s", err, body)
	}
	if len(doc.Shards) != 2 || doc.Shards[0].Name != "shard-a" || doc.Shards[1].Name != "shard-b" {
		t.Fatalf("/shards rows %+v", doc.Shards)
	}
	var servedTotal int64
	for _, s := range doc.Shards {
		if s.State != "healthy" {
			t.Errorf("shard %s state %q, want healthy", s.Name, s.State)
		}
		if len(s.Devices) != 1 {
			t.Errorf("shard %s devices %v, want one lane", s.Name, s.Devices)
		}
		servedTotal += s.Served
	}
	if servedTotal != 8 {
		t.Errorf("/shards served total %d, want 8", servedTotal)
	}
	tenants := map[string]serve.TenantQueueStatus{}
	for _, tq := range doc.Tenants {
		tenants[tq.Tenant] = tq
	}
	if tq, ok := tenants["gold"]; !ok || tq.Weight != 4 || tq.Admitted != 8 {
		t.Errorf("gold tenant row %+v (present=%v)", tenants["gold"], ok)
	}
	if _, ok := tenants[DefaultTenant]; !ok {
		t.Error("/shards missing the default tenant row")
	}

	// /metrics: the merged serving series plus the router's own.
	code, body = adminGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	text := string(body)
	for _, series := range []string{
		"autoscale_requests_submitted_total", // merged shard registries
		"autoscale_router_submitted_total",
		"autoscale_router_dispatched_total",
		"autoscale_router_shards_alive 2",
		`autoscale_router_tenant_weight{tenant="gold"} 4`,
		`autoscale_router_shard_state{shard="shard-a"} 0`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	// The standalone surface still answers through the source indirection.
	if code, body := adminGet(t, base+"/healthz"); code != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, _ := adminGet(t, base+"/snapshot.json"); code != http.StatusOK {
		t.Errorf("/snapshot.json status %d", code)
	}
}

// TestAdminShardsNotSharded checks a plain single-gateway admin endpoint
// answers /shards with 404 rather than pretending to be a fleet.
func TestAdminShardsNotSharded(t *testing.T) {
	gw := testShard(t, "", []string{"lane-a"}, 1, serve.Config{})
	defer gw.Shutdown(context.Background()) //nolint:errcheck
	adm, err := serve.ServeAdmin(gw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close() //nolint:errcheck
	if code, _ := adminGet(t, "http://"+adm.Addr()+"/shards"); code != http.StatusNotFound {
		t.Errorf("/shards on a plain gateway: status %d, want 404", code)
	}
}
