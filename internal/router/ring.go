package router

import (
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over shard names: each shard contributes
// vnodes virtual points, and a device maps to the shard owning the first
// point at or clockwise after the device's hash. Lookups are allocation-free
// (an inlined FNV-1a plus a binary search), and the ring is immutable once
// built — shard lifecycle rebuilds it over the surviving set, which is what
// gives re-homing its minimal-movement property: devices on live shards keep
// their owners, only the dead shard's arc redistributes.
type ring struct {
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash  uint32
	shard string
}

// fnv1a is the 32-bit FNV-1a hash, inlined so ring lookups never allocate.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// newRing builds the ring over the given shard names with vnodes virtual
// points each. An empty shard list yields an empty ring (lookup returns "").
func newRing(shards []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(shards)*vnodes)}
	for _, s := range shards {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: fnv1a(s + "#" + strconv.Itoa(i)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between vnodes are broken by name so the ring is
		// identical regardless of input order.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// lookup returns the shard owning key, or "" on an empty ring.
func (r *ring) lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv1a(key)
	// First point with hash >= h, wrapping to the ring's start.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].shard
}

// loadBound is the bounded-load ceiling: no shard may own more than
// ceil(factor * devices / shards) devices. factor <= 1 degenerates to a
// perfectly even split ceiling.
func loadBound(factor float64, devices, shards int) int {
	if shards <= 0 {
		return 0
	}
	if factor < 1 {
		factor = 1
	}
	bound := int(factor * float64(devices) / float64(shards))
	if float64(bound) < factor*float64(devices)/float64(shards) {
		bound++
	}
	if bound < 1 {
		bound = 1
	}
	return bound
}

// placeDevices assigns each device a shard: consistent-hash placement first,
// overflowing to the least-loaded shard (fewest devices, name tiebreak) when
// the hash owner is already at the bounded-load ceiling. Devices are placed
// in sorted order so the assignment is a pure function of the inputs. counts
// carries pre-existing per-shard device loads (may be nil) and is updated in
// place.
func placeDevices(devices, shards []string, counts map[string]int, vnodes int, factor float64) map[string]string {
	if counts == nil {
		counts = make(map[string]int, len(shards))
	}
	sortedDevs := append([]string(nil), devices...)
	sort.Strings(sortedDevs)
	sortedShards := append([]string(nil), shards...)
	sort.Strings(sortedShards)
	r := newRing(sortedShards, vnodes)

	total := len(sortedDevs)
	for _, s := range sortedShards {
		total += counts[s]
	}
	bound := loadBound(factor, total, len(sortedShards))

	homes := make(map[string]string, len(sortedDevs))
	for _, dev := range sortedDevs {
		target := r.lookup(dev)
		if target == "" {
			continue
		}
		if counts[target]+1 > bound {
			// Bounded-load overflow: spill to the least-loaded shard.
			least := ""
			for _, s := range sortedShards {
				if least == "" || counts[s] < counts[least] {
					least = s
				}
			}
			target = least
		}
		homes[dev] = target
		counts[target]++
	}
	return homes
}
