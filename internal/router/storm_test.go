package router

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/fault"
	"autoscale/internal/policy"
	"autoscale/internal/serve"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
	"autoscale/internal/trace"
)

// shardStormSchedule scripts the routing-tier acceptance drill: shard-b is
// killed outright once its virtual clock reaches 2 s of served inference.
func shardStormSchedule() *fault.Schedule {
	return &fault.Schedule{Name: "shard-storm", Faults: []fault.Spec{
		{Kind: fault.KindShardCrash, Shard: "shard-b", StartS: 2.0},
	}}
}

// stormResult is everything one shard-kill storm pass produces.
type stormResult struct {
	met       RouterSnapshot
	trace     []byte // shard-a then shard-b trace bytes
	responses []serve.Response
	killedAt  int // request index after which the kill was observed
	warm      map[string]uint64
	homes     map[string]string
}

// stormLanes maps each device lane to its hardware and per-lane seed offset.
var stormLanes = []struct {
	lane  string
	shard string
	hw    func() *soc.Device
	off   int64
}{
	{"lane-a0", "shard-a", soc.Mi8Pro, 0},
	{"lane-a1", "shard-a", soc.GalaxyS10e, 1},
	{"lane-b0", "shard-b", soc.Mi8Pro, 2},
	{"lane-b1", "shard-b", soc.GalaxyS10e, 3},
}

// runShardStorm drives a two-shard router sequentially until the scripted
// shard crash fires, then 200 requests further, and returns the full record
// of the run. Sequential driving keeps the run deterministic: the drill
// fires at the same request index and the per-shard traces are byte-stable
// for a fixed seed.
func runShardStorm(t *testing.T, seed int64) stormResult {
	t.Helper()
	store, err := policy.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(shardStormSchedule(), exec.NewRoot(seed).Child("faults"))

	engine := func(lane string) *core.Engine {
		for _, l := range stormLanes {
			if l.lane == lane {
				cfg := core.DefaultConfig()
				cfg.Seed = seed + l.off
				return testEngine(t, l.hw(), seed+l.off, cfg)
			}
		}
		t.Fatalf("unknown storm lane %q", lane)
		return nil
	}

	var bufA, bufB bytes.Buffer
	twA, twB := trace.NewWriter(&bufA), trace.NewWriter(&bufB)
	mkShard := func(name string, tw *trace.Writer) *serve.Gateway {
		var backends []serve.Backend
		for _, l := range stormLanes {
			if l.shard == name {
				backends = append(backends, serve.Backend{Device: l.lane, Engine: engine(l.lane)})
			}
		}
		gw, err := serve.New(backends, serve.Config{Name: name, Trace: tw, Checkpoints: store})
		if err != nil {
			t.Fatal(err)
		}
		return gw
	}
	gwA, gwB := mkShard("shard-a", twA), mkShard("shard-b", twB)

	rt, err := New([]ShardGateway{{"shard-a", gwA}, {"shard-b", gwB}}, Config{
		Tenants:     []Tenant{{"gold", 4}, {"silver", 2}, {"best", 1}},
		Checkpoints: store,
		Faults:      inj,
		EngineFactory: func(lane string) (*core.Engine, error) {
			return engine(lane), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	m := dnn.MustByName("MobileNet v3")
	lanes := []string{"lane-a0", "lane-b0", "lane-a1", "lane-b1"}
	tenants := []string{"gold", "silver", "best"}
	res := stormResult{killedAt: -1}
	const syncAt, tail, maxN = 30, 200, 4000
	for i := 0; i < maxN; i++ {
		if i == syncAt {
			// One federation pass before the crash so every lane has a fresh
			// checkpoint to warm-start from when it re-homes.
			if rt.RouterMetrics().ShardKills != 0 {
				t.Fatal("shard crash fired before the federation pass; lower StartS headroom")
			}
			if _, err := rt.SyncPolicies(); err != nil {
				t.Fatal(err)
			}
		}
		r, err := rt.Do(serve.Request{
			Model: m, Conditions: conds(),
			Device: lanes[i%len(lanes)], Tenant: tenants[i%len(tenants)],
		})
		if err != nil {
			t.Fatalf("request %d: %v (%+v)", i, err, r)
		}
		res.responses = append(res.responses, r)
		if res.killedAt < 0 && rt.RouterMetrics().ShardKills > 0 {
			res.killedAt = i
		}
		if res.killedAt >= 0 && i >= res.killedAt+tail {
			break
		}
	}
	if res.killedAt < 0 {
		t.Fatalf("scripted shard crash never fired in %d requests (shard-b virtual clock %.2fs)",
			maxN, gwB.VirtualNow())
	}

	res.met = rt.RouterMetrics()
	res.warm = gwA.WarmStarts()
	res.homes = map[string]string{}
	for _, l := range stormLanes {
		res.homes[l.lane] = rt.Home(l.lane)
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The killed shard's writer never flushed (crash semantics); flush both
	// so the comparison sees every record each shard produced.
	if err := twA.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := twB.Flush(); err != nil {
		t.Fatal(err)
	}
	res.trace = append(append([]byte(nil), bufA.Bytes()...), bufB.Bytes()...)
	return res
}

// TestShardKillStorm is the routing-tier acceptance storm: a scripted
// shard_crash drill kills shard-b mid-traffic. The dead shard's lanes must
// re-home onto the survivor with checkpoint warm-start, every request must
// still be served (none lost without a shed or failover record), post-crash
// QoS must stay bounded, and a fixed-seed replay must be byte-identical.
func TestShardKillStorm(t *testing.T) {
	const seed = 47
	res := runShardStorm(t, seed)

	// Lifecycle: exactly one kill, both lanes re-homed onto the survivor.
	if res.met.ShardKills != 1 {
		t.Fatalf("shard kills = %d, want 1", res.met.ShardKills)
	}
	if res.met.RehomedDevices != 2 {
		t.Fatalf("re-homed devices = %d, want 2", res.met.RehomedDevices)
	}
	for _, lane := range []string{"lane-b0", "lane-b1"} {
		if res.homes[lane] != "shard-a" {
			t.Errorf("lane %s homed on %q after the crash, want shard-a", lane, res.homes[lane])
		}
		if gen, ok := res.warm[lane]; !ok || gen < 1 {
			t.Errorf("lane %s did not warm-start from a checkpoint (gen=%d present=%v)", lane, gen, ok)
		}
	}

	// No request lost: sequential driving means everything was served, and
	// the router's books balance — submissions either dispatched or were
	// shed, and nothing failed.
	for i, r := range res.responses {
		if r.Status != serve.StatusServed {
			t.Fatalf("request %d not served mid-storm: %+v", i, r)
		}
	}
	if res.met.Failed != 0 || res.met.Shed != 0 {
		t.Fatalf("storm lost requests: %+v", res.met)
	}
	if res.met.Submitted != uint64(len(res.responses)) {
		t.Fatalf("submitted %d != responses %d", res.met.Submitted, len(res.responses))
	}

	// Bounded degraded QoS: the survivor absorbs the dead shard's lanes, so
	// post-crash latency may degrade but must stay bounded — mean latency
	// after the kill within 4x of before.
	meanLat := func(rs []serve.Response) float64 {
		var sum float64
		for _, r := range rs {
			sum += r.Decision.Measurement.LatencyS
		}
		return sum / float64(len(rs))
	}
	pre, post := meanLat(res.responses[:res.killedAt]), meanLat(res.responses[res.killedAt:])
	if post > 4*pre {
		t.Errorf("post-crash mean latency %.1f ms vs %.1f ms pre-crash: degradation unbounded",
			post*1e3, pre*1e3)
	}

	// The traces carry the v2 attribution: every record names its shard and
	// tenant, and the survivor's trace shows the re-homed lanes serving.
	records, err := trace.ReadAll(bytes.NewReader(res.trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(res.responses) {
		t.Fatalf("traces carry %d records for %d served requests", len(records), len(res.responses))
	}
	rehomedServed := false
	for _, rec := range records {
		if rec.Shard == "" || rec.Tenant == "" {
			t.Fatalf("record %d missing attribution: shard=%q tenant=%q", rec.Seq, rec.Shard, rec.Tenant)
		}
		if rec.Shard == "shard-a" && (rec.Device == "lane-b0" || rec.Device == "lane-b1") {
			rehomedServed = true
		}
	}
	if !rehomedServed {
		t.Error("survivor trace shows no re-homed lane serving")
	}

	// Deterministic replay: same seed, byte-identical traces across the kill;
	// different seed, different storm.
	res2 := runShardStorm(t, seed)
	if res2.killedAt != res.killedAt {
		t.Fatalf("replay kill index %d vs %d", res2.killedAt, res.killedAt)
	}
	if !bytes.Equal(res.trace, res2.trace) {
		t.Fatalf("replay diverged: trace sizes %d vs %d bytes", len(res.trace), len(res2.trace))
	}
	other := runShardStorm(t, seed+1)
	if bytes.Equal(res.trace, other.trace) {
		t.Error("different seeds produced identical storm traces")
	}
}

// TestRouterKillConcurrent crashes a shard under concurrent unpinned load and
// checks the accounting invariant: every submitted request terminates with
// exactly one response — served, shed, or failed — and in-flight work on the
// dead shard either fails over or is accounted as failed, never lost.
func TestRouterKillConcurrent(t *testing.T) {
	gwA := testShard(t, "shard-a", []string{"lane-a0", "lane-a1"}, 1, serve.Config{QueueDepth: 256})
	gwB := testShard(t, "shard-b", []string{"lane-b0", "lane-b1"}, 3, serve.Config{QueueDepth: 256})
	rt, err := New([]ShardGateway{{"shard-a", gwA}, {"shard-b", gwB}}, Config{
		GlobalBudget:     32,
		TenantQueueDepth: 1000,
		EngineFactory: func(lane string) (*core.Engine, error) {
			return core.NewEngine(sim.NewWorld(soc.Mi8Pro(), 9), core.DefaultConfig())
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 8, 60
	m := dnn.MustByName("MobileNet v3")
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[serve.Status]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				r, _ := rt.Do(serve.Request{Model: m, Conditions: conds()})
				mu.Lock()
				counts[r.Status]++
				mu.Unlock()
			}
		}()
	}
	// Kill shard-b mid-flood: queued and in-flight requests there bounce and
	// fail over to shard-a.
	if err := rt.KillShard("shard-b"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, n := range counts {
		total += n
	}
	if total != clients*perClient {
		t.Fatalf("%d responses for %d requests", total, clients*perClient)
	}
	met := rt.RouterMetrics()
	if met.Submitted != uint64(total) {
		t.Fatalf("router saw %d submissions for %d requests", met.Submitted, total)
	}
	if met.ShardKills != 1 || met.RehomedDevices != 2 {
		t.Fatalf("kill accounting %+v", met)
	}
	// Everything terminated: served plus shed plus failed covers the flood,
	// and the shards' own books agree on the served count.
	served := int64(counts[serve.StatusServed])
	if got := rt.Snapshot().Served; got < served {
		t.Fatalf("shards served %d but %d responses claim served", got, served)
	}
	if counts[serve.StatusFailed] > 0 && met.Failovers == 0 {
		t.Error("requests failed with no failover attempt recorded")
	}
}
